// Package zkrownn is a from-scratch Go implementation of ZKROWNN
// ("Zero Knowledge Right of Ownership for Neural Networks", DAC 2023):
// an end-to-end framework that lets a model owner prove, in zero
// knowledge, that a deployed neural network contains their DeepSigns
// watermark — without revealing the trigger keys, the projection matrix,
// or the watermark bits.
//
// The pipeline, mirroring the paper's Figure 1:
//
//  1. Train a model and embed a watermark (EmbedWatermark).
//  2. Build the zero-knowledge extraction circuit for the suspect model
//     (BuildOwnershipCircuit) — Algorithm 1: zkFeedForward → zkAverage →
//     zkSigmoid → zkHardThresholding → zkBER.
//  3. Run the one-time trusted setup (Setup), producing a proving key
//     for the owner and a small verifying key for everyone else.
//  4. Generate the ownership proof (ProveOwnership) — a 128-byte
//     Groth16 proof.
//  5. Any third party verifies in milliseconds (VerifyOwnership).
//
// Everything below the API — the BN254 pairing curve, the Groth16
// proof system, the circuit frontend, the DNN substrate, and DeepSigns
// watermarking — is implemented in this repository using only the Go
// standard library.
package zkrownn

import (
	"errors"
	"io"
	"math/rand"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/ipp"
	"zkrownn/internal/core"
	"zkrownn/internal/dataset"
	"zkrownn/internal/engine"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
	"zkrownn/internal/service"
	"zkrownn/internal/watermark"
)

// Re-exported substrate types. Aliases keep the public surface thin
// while the implementations stay in internal packages.
type (
	// Model is a trainable feed-forward network.
	Model = nn.Network
	// QuantizedModel is the fixed-point image of a Model, the exact
	// arithmetic the zkSNARK circuit evaluates.
	QuantizedModel = nn.QuantizedNetwork
	// WatermarkKey is the owner's secret watermark material (triggers,
	// projection matrix, signature, embedded layer).
	WatermarkKey = watermark.Key
	// FixedPoint selects the fixed-point format shared by circuits and
	// the reference extraction pipeline.
	FixedPoint = fixpoint.Params
	// Proof is a 128-byte Groth16 ownership proof.
	Proof = groth16.Proof
	// ProvingKey is the owner's share of the structured reference string.
	ProvingKey = groth16.ProvingKey
	// VerifyingKey is the public verification material any third party
	// needs to check ownership proofs.
	VerifyingKey = groth16.VerifyingKey
	// Instance is a JSON-marshalable public-input vector (versioned hex
	// envelope) — the instance half of a proof-service API payload.
	Instance = groth16.PublicInputs
	// Circuit is a compiled extraction circuit (CSR constraint matrices
	// plus a recorded witness solver) together with its build-time input
	// assignment and witness. Compile once per architecture; prove many.
	Circuit = core.Artifact
	// Dataset is a labelled sample collection.
	Dataset = dataset.Dataset
	// PipelineMetrics reports Table I-style measurements for one circuit.
	PipelineMetrics = core.Metrics
)

// DefaultFixedPoint is the 16-fraction-bit format used throughout the
// paper-scale benchmarks.
var DefaultFixedPoint = fixpoint.Default16

// NewMNISTMLP builds the paper's Table II MNIST architecture
// (784 - FC512 - FC512 - FC10).
func NewMNISTMLP(rng *rand.Rand) *Model { return nn.NewMNISTMLP(rng) }

// NewCIFAR10CNN builds the paper's Table II CIFAR-10 architecture.
func NewCIFAR10CNN(rng *rand.Rand) *Model { return nn.NewCIFAR10CNN(rng) }

// NewMLP builds an arbitrary ReLU multilayer perceptron.
func NewMLP(in int, hidden []int, classes int, rng *rand.Rand) *Model {
	return nn.NewMLP(nn.MLPConfig{In: in, Hidden: hidden, Classes: classes}, rng)
}

// SyntheticMNIST generates a deterministic MNIST-shaped synthetic
// dataset (the offline substitution documented in DESIGN.md).
func SyntheticMNIST(samples int, seed int64) (*Dataset, error) {
	return dataset.Generate(dataset.MNISTLike(samples, seed))
}

// SyntheticCIFAR generates a CIFAR-shaped synthetic dataset.
func SyntheticCIFAR(samples int, seed int64) (*Dataset, error) {
	return dataset.Generate(dataset.CIFARLike(samples, seed))
}

// TrainOptions configures plain task training.
type TrainOptions struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	Logf         func(format string, args ...any)
}

// Train fits the model to the dataset with SGD.
func Train(m *Model, ds *Dataset, opt TrainOptions, rng *rand.Rand) {
	cfg := nn.TrainConfig{
		Epochs:       opt.Epochs,
		BatchSize:    opt.BatchSize,
		LearningRate: opt.LearningRate,
		Silent:       opt.Logf == nil,
		Logf:         opt.Logf,
	}
	m.Train(ds.X, ds.Y, cfg, rng)
}

// KeyOptions configures watermark key generation.
type KeyOptions struct {
	// LayerIndex is l_wm (the activation read by extraction), normally
	// the ReLU after the first hidden layer — index 1 in this package's
	// model builders.
	LayerIndex int
	// TargetClass selects the Gaussian class carrying the watermark.
	TargetClass int
	// Bits is the signature length (the paper embeds 32 bits).
	Bits int
	// Triggers is the trigger-set size |X_key|.
	Triggers int
}

// GenerateKey draws a fresh watermark key for the model over the
// dataset's TargetClass samples.
func GenerateKey(m *Model, ds *Dataset, opt KeyOptions, rng *rand.Rand) (*WatermarkKey, error) {
	if opt.LayerIndex <= 0 {
		opt.LayerIndex = 1
	}
	if opt.Bits <= 0 {
		opt.Bits = 32
	}
	if opt.Triggers <= 0 {
		opt.Triggers = 4
	}
	actDim := m.Layers[opt.LayerIndex].OutputSize()
	return watermark.GenerateKey(rng, opt.LayerIndex, opt.TargetClass,
		actDim, opt.Bits, opt.Triggers, ds.OfClass(opt.TargetClass))
}

// EmbedOptions configures watermark embedding (DeepSigns fine-tuning).
type EmbedOptions struct {
	Epochs       int
	LearningRate float64
	LambdaWM     float64
	Logf         func(format string, args ...any)
}

// EmbedWatermark fine-tunes the model until the watermark extracts with
// zero bit error rate and a quantization-robust margin.
func EmbedWatermark(m *Model, key *WatermarkKey, ds *Dataset, opt EmbedOptions, rng *rand.Rand) error {
	cfg := watermark.DefaultEmbedConfig()
	if opt.Epochs > 0 {
		cfg.Epochs = opt.Epochs
	}
	if opt.LearningRate > 0 {
		cfg.LearningRate = opt.LearningRate
	}
	if opt.LambdaWM > 0 {
		cfg.LambdaWM = opt.LambdaWM
	}
	if opt.Logf != nil {
		cfg.Silent = false
		cfg.Logf = opt.Logf
	}
	return watermark.Embed(m, key, ds.X, ds.Y, cfg, rng)
}

// ExtractWatermark runs plain (out-of-circuit) extraction, returning the
// recovered bits and BER — the reference the zero-knowledge proof
// attests to.
func ExtractWatermark(m *Model, key *WatermarkKey) (bits []int, ber float64) {
	return watermark.Extract(m, key)
}

// Quantize converts a model to the fixed-point form used in circuits.
func Quantize(m *Model, p FixedPoint) (*QuantizedModel, error) {
	return nn.Quantize(m, p)
}

// BuildOwnershipCircuit compiles Algorithm 1 for the given quantized
// model and key. maxErrors is the BER tolerance θ·N (0 demands an exact
// watermark match). The suspect model's weights become public inputs;
// the key material stays private.
//
// Compilation happens once per architecture: the returned Circuit holds
// a compiled constraint system (CSR matrices plus a recorded witness
// solver) that can be proven repeatedly — against the build-time inputs
// or, via BindSuspectModel, against other models of the same
// architecture — without being rebuilt.
func BuildOwnershipCircuit(q *QuantizedModel, key *WatermarkKey, maxErrors int) (*Circuit, error) {
	ck := core.QuantizeKey(key, q.Params)
	return core.ExtractionCircuit(q, ck, maxErrors)
}

// BindSuspectModel rebinds a compiled (non-committed) ownership
// circuit's public weight inputs to a suspect model of the same
// architecture, returning an engine request that re-derives the witness
// with the circuit's recorded solver program and proves it — the
// solve-many path: no circuit recompilation, however many suspects are
// proved. rng overrides the engine's randomness (nil for the default).
func BindSuspectModel(c *Circuit, q *QuantizedModel, rng io.Reader) (ProveRequest, error) {
	asg, err := core.BindSuspectInputs(c, q)
	if err != nil {
		return ProveRequest{}, err
	}
	return c.RequestFor(asg, rng), nil
}

// BuildBatchedOwnershipCircuit compiles Algorithm 1 with `slots`
// suspect-model weight slots sharing one secret watermark key: ONE
// Groth16 proof then attests `slots` independent ownership claims. All
// slots start bound to q's weights; BindSuspectModels rebinds
// individual slots to same-architecture suspects without recompiling.
// The last `slots` public inputs are the per-slot claim bits
// (OwnershipClaims decodes them). slots = 1 is exactly
// BuildOwnershipCircuit.
func BuildBatchedOwnershipCircuit(q *QuantizedModel, key *WatermarkKey, maxErrors, slots int) (*Circuit, error) {
	ck := core.QuantizeKey(key, q.Params)
	return core.BatchedExtractionCircuit(q, ck, maxErrors, slots)
}

// BindSuspectModels rebinds a batched ownership circuit's per-slot
// weight inputs — suspects[s] replaces slot s, nil keeps the model the
// circuit was compiled with — and returns the engine request proving
// the whole bundle. len(suspects) must equal c.Slots().
func BindSuspectModels(c *Circuit, suspects []*QuantizedModel, rng io.Reader) (ProveRequest, error) {
	asg, err := core.BindSuspectSlots(c, suspects)
	if err != nil {
		return ProveRequest{}, err
	}
	return c.RequestFor(asg, rng), nil
}

// OwnershipClaims decodes the per-slot ownership verdicts from a
// (batched) extraction instance: the trailing c.Slots() public inputs,
// in slot order.
func OwnershipClaims(c *Circuit, public []fr.Element) ([]bool, error) {
	return core.ClaimBits(public, c.Slots())
}

// VerifyBatchedOwnership checks one proof carrying many ownership
// claims: the Groth16 verification must pass, and the returned slice
// reports each slot's claim bit. A nil error with a false entry means
// "the watermark did not extract from that suspect" — a sound proof of
// a failed claim, exactly what an arbiter wants for that slot.
func VerifyBatchedOwnership(vk *VerifyingKey, proof *Proof, public []fr.Element, slots int) ([]bool, error) {
	if err := groth16.Verify(vk, proof, public); err != nil {
		return nil, err
	}
	return core.ClaimBits(public, slots)
}

// Setup runs the one-time Groth16 trusted setup for a circuit.
// rng supplies the toxic-waste randomness (crypto/rand when nil).
func Setup(c *Circuit, rng io.Reader) (*ProvingKey, *VerifyingKey, error) {
	return groth16.Setup(c.System, rng)
}

// ProveOwnership generates the ownership proof for a circuit whose
// witness was built from the owner's private key material.
func ProveOwnership(c *Circuit, pk *ProvingKey, rng io.Reader) (*Proof, error) {
	return groth16.Prove(c.System, pk, c.Witness, rng)
}

// PublicInputs returns the circuit's instance (model weights and the
// claim bit) in the order VerifyOwnership expects.
func PublicInputs(c *Circuit) []fr.Element { return c.PublicInputs() }

// VerifyOwnership checks an ownership proof: the proof must verify and
// the public claim bit must be 1. Any third party holding the verifying
// key and the public model can run this in milliseconds.
func VerifyOwnership(vk *VerifyingKey, proof *Proof, public []fr.Element) (bool, error) {
	return core.VerifyClaim(vk, proof, public)
}

// RunPipeline executes setup → prove → verify for any circuit and
// collects the paper's Table I metrics.
func RunPipeline(c *Circuit, rng io.Reader) (*PipelineMetrics, error) {
	pl, err := core.RunPipeline(c, rng)
	if err != nil {
		return nil, err
	}
	return &pl.Metrics, nil
}

// SaveModel / LoadModel persist models as JSON.
func SaveModel(m *Model, w io.Writer) error { return m.Save(w) }
func LoadModel(r io.Reader) (*Model, error) { return nn.Load(r) }

// ErrNotWatermarked is returned by helpers when extraction fails on a
// model that was expected to carry the watermark.
var ErrNotWatermarked = errors.New("zkrownn: watermark does not extract with BER 0")

// ProveModelOwnership is the one-call convenience path: quantize, build
// the circuit, set up, prove, and return everything a dispute needs.
// It fails with ErrNotWatermarked when the fixed-point extraction does
// not reproduce the signature (maxErrors = 0).
func ProveModelOwnership(m *Model, key *WatermarkKey, p FixedPoint, rng io.Reader) (*Circuit, *ProvingKey, *VerifyingKey, *Proof, error) {
	q, err := nn.Quantize(m, p)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if _, nbErr, err := watermark.ExtractQuantized(q, key); err != nil {
		return nil, nil, nil, nil, err
	} else if nbErr != 0 {
		return nil, nil, nil, nil, ErrNotWatermarked
	}
	circuit, err := BuildOwnershipCircuit(q, key, 0)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pk, vk, err := Setup(circuit, rng)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	proof, err := ProveOwnership(circuit, pk, rng)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return circuit, pk, vk, proof, nil
}

// --- Extensions beyond the paper ---

// BuildCommittedOwnershipCircuit compiles the committed-model variant of
// Algorithm 1: the suspect model's weights stay private, bound to a
// public Fiat-Shamir digest that verifiers recompute from the public
// model. Verifying keys become constant-size (~500 B) and verification
// takes ~10 ms regardless of model size, removing the paper's noted
// VK-growth drawback (its MNIST-MLP verifying key is 16 MB).
func BuildCommittedOwnershipCircuit(q *QuantizedModel, key *WatermarkKey, maxErrors int) (*Circuit, error) {
	ck := core.QuantizeKey(key, q.Params)
	return core.CommittedExtractionCircuit(q, ck, maxErrors)
}

// ModelDigest returns the Fiat-Shamir digest binding a committed-model
// proof to the public model prefix (layers 0..layerIndex). Verifiers
// compare it against the first public input of a committed proof.
func ModelDigest(q *QuantizedModel, layerIndex int) (fr.Element, error) {
	_, d, err := core.ModelDigest(q, layerIndex)
	return d, err
}

// VerifyCommittedOwnership verifies a committed-model ownership proof
// against the public model: the Groth16 check plus the digest and claim
// checks.
func VerifyCommittedOwnership(vk *VerifyingKey, proof *Proof, public []fr.Element, q *QuantizedModel, layerIndex int) error {
	if err := groth16.Verify(vk, proof, public); err != nil {
		return err
	}
	return core.VerifyCommittedPublicInputs(q, layerIndex, public)
}

// --- Prover-engine service entry points ---
//
// The one-shot helpers above re-run trusted setup on every call. A
// long-lived service — a dispute-resolution endpoint proving ownership
// for many models of the same architecture, say — should instead hold an
// Engine: keys are cached by circuit digest (in memory, and on disk when
// EngineOptions.CacheDir is set), proofs fan out over a worker pool, and
// verification batches into one pairing product.

type (
	// Engine is the concurrent, cache-aware prover engine.
	Engine = engine.Engine
	// EngineOptions configures NewEngine (cache bounds, persistence
	// directory, worker count, randomness source).
	EngineOptions = engine.Options
	// ProveRequest is one proving job for Engine.ProveMany.
	ProveRequest = engine.Request
	// ProveResult reports one job's proof, keys, and per-stage timings.
	ProveResult = engine.Result
	// EngineStats snapshots the engine's cache and timing counters.
	EngineStats = engine.Stats
)

// NewEngine builds a prover engine. The zero Options value gives a
// memory-only cache and one prover worker per core.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// EngineRequest converts a finalized circuit into an engine proving
// request. rng overrides the engine's randomness for this job (nil for
// the engine default).
func EngineRequest(c *Circuit, rng io.Reader) ProveRequest { return c.Request(rng) }

// ProveOwnershipMany proves a batch of ownership circuits on the
// engine's worker pool. Circuits sharing an architecture (and therefore
// a circuit digest) share one trusted setup. One Result per circuit,
// order-preserving; per-job failures land in Result.Err.
func ProveOwnershipMany(e *Engine, circuits []*Circuit) []*ProveResult {
	reqs := make([]ProveRequest, len(circuits))
	for i, c := range circuits {
		reqs[i] = c.Request(nil)
	}
	return e.ProveMany(reqs)
}

// ErrEngineClosed is the sentinel every Engine entry point returns
// after Close — the signal a service front-end maps to "shutting down".
var ErrEngineClosed = engine.ErrClosed

// --- Proof service ---
//
// The proof service puts the engine on the network: an HTTP JSON API
// with a digest-keyed model/VK registry, an async prove-job queue with
// backpressure, and micro-batched verification. cmd/zkrownn-server is
// the standalone binary; zkrownn/client is the Go client;
// examples/proof_service shows the full owner → verifier round trip.

type (
	// ProofService is the HTTP ownership-proof server (an http.Handler).
	ProofService = service.Server
	// ProofServiceOptions configures NewProofService (registry
	// directory, queue depth, verify batching window, engine options).
	ProofServiceOptions = service.Options
)

// NewProofService builds a proof service and starts its job
// dispatcher. Mount it on any mux / http.Server and remember to call
// Close for a graceful drain.
func NewProofService(opts ProofServiceOptions) (*ProofService, error) {
	return service.New(opts)
}

// BatchVerifyOwnership verifies many proofs under one verifying key with
// a single combined pairing product (~3× faster than verifying each
// proof individually) and then checks every claim bit.
func BatchVerifyOwnership(vk *VerifyingKey, proofs []*Proof, publicInputs [][]fr.Element, rng io.Reader) (bool, error) {
	if err := groth16.BatchVerify(vk, proofs, publicInputs, rng); err != nil {
		return false, err
	}
	var one fr.Element
	one.SetOne()
	for _, pub := range publicInputs {
		if len(pub) == 0 || !pub[len(pub)-1].Equal(&one) {
			return false, nil
		}
	}
	return true, nil
}

// --- Proof aggregation ---

type (
	// AggregateProof is an O(log N) SnarkPack-style fold of N ownership
	// proofs under one verifying key — the auditable artifact a registry
	// files instead of N separate proofs.
	AggregateProof = groth16.AggregateProof
	// AggregateVerifierKey is the inner-pairing-product commitment key an
	// aggregation artifact must be checked against; the engine/service
	// ships it alongside every artifact it issues.
	AggregateVerifierKey = ipp.VerifierKey
)

// AggregateOwnership folds N proofs for one verifying key into a single
// aggregation artifact on a prover engine (which owns the aggregation
// SRS), verifying the artifact before returning it. The returned key
// pairs with the artifact for VerifyAggregateOwnership.
func AggregateOwnership(e *Engine, vk *VerifyingKey, proofs []*Proof, publicInputs [][]fr.Element) (*AggregateProof, *AggregateVerifierKey, error) {
	return e.AggregateMany(vk, proofs, publicInputs)
}

// VerifyAggregateOwnership checks a proof-of-proofs: the artifact is
// accepted exactly when every folded proof verifies under vk with its
// instance — the O(log N) equivalent of BatchVerifyOwnership.
func VerifyAggregateOwnership(svk *AggregateVerifierKey, vk *VerifyingKey, agg *AggregateProof, publicInputs [][]fr.Element) error {
	return groth16.VerifyAggregate(svk, vk, agg, publicInputs)
}
