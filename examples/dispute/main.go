// Dispute: the paper's motivating legal scenario (Figure 1 and §I).
//
// Alice trains and watermarks a model. Mallory steals it and deploys it
// as her own. Alice — the prover P — generates ONE non-interactive
// ownership proof; because Groth16 proofs are publicly verifiable, the
// judge, Mallory's counsel, and any number of expert witnesses — the
// verifiers V — each check it independently from the serialized
// artifacts alone, in milliseconds, without Alice revealing her trigger
// keys or watermark and without any further interaction.
//
// The example also shows the negative case: Mallory cannot produce a
// claim-1 proof against Bob's unrelated model with her own key.
//
//	go run ./examples/dispute
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"zkrownn"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/groth16"
)

func main() {
	rng := rand.New(rand.NewSource(1234))

	fmt.Println("── Act 1: Alice trains and watermarks her model ──")
	ds, err := zkrownn.SyntheticMNIST(400, 99)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ds.X {
		ds.X[i] = ds.X[i][:32] // compact demo dimensions
	}
	ds.Dim = 32
	alice := zkrownn.NewMLP(ds.Dim, []int{48}, ds.Classes, rng)
	zkrownn.Train(alice, ds, zkrownn.TrainOptions{Epochs: 10, BatchSize: 16, LearningRate: 0.1}, rng)
	aliceKey, err := zkrownn.GenerateKey(alice, ds, zkrownn.KeyOptions{Bits: 16, Triggers: 4}, rng)
	if err != nil {
		log.Fatal(err)
	}
	if err := zkrownn.EmbedWatermark(alice, aliceKey, ds, zkrownn.EmbedOptions{Epochs: 80}, rng); err != nil {
		log.Fatal(err)
	}
	_, ber := zkrownn.ExtractWatermark(alice, aliceKey)
	fmt.Printf("   watermark embedded, BER = %.3f\n", ber)

	fmt.Println("── Act 2: Mallory deploys a stolen copy; Alice proves ownership ──")
	stolen := copyModel(alice) // Mallory's deployment M' = M
	circuit, _, vk, proof, err := zkrownn.ProveModelOwnership(stolen, aliceKey, zkrownn.DefaultFixedPoint, nil)
	if err != nil {
		log.Fatal(err)
	}
	public := zkrownn.PublicInputs(circuit)

	// Alice publishes exactly three artifacts.
	var proofWire, vkWire bytes.Buffer
	if _, err := proof.WriteTo(&proofWire); err != nil {
		log.Fatal(err)
	}
	if _, err := vk.WriteTo(&vkWire); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   Alice sends: proof (%d B), verifying key (%.1f KB), public inputs (%d field elements)\n",
		proofWire.Len(), float64(vkWire.Len())/1e3, len(public))

	fmt.Println("── Act 3: every party verifies independently ──")
	for _, party := range []string{"judge", "Mallory's counsel", "expert witness"} {
		// Each party deserializes from the wire — no shared state with
		// Alice, no interaction.
		var p2 groth16.Proof
		if _, err := p2.ReadFrom(bytes.NewReader(proofWire.Bytes())); err != nil {
			log.Fatal(err)
		}
		var vk2 groth16.VerifyingKey
		if _, err := vk2.ReadFrom(bytes.NewReader(vkWire.Bytes())); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ok, err := zkrownn.VerifyOwnership(&vk2, &p2, public)
		if err != nil {
			log.Fatalf("%s: %v", party, err)
		}
		fmt.Printf("   %-18s accepts=%v (%.1f ms)\n", party, ok, float64(time.Since(start).Microseconds())/1e3)
	}

	fmt.Println("── Act 4: the claim fails against an innocent model ──")
	bobRng := rand.New(rand.NewSource(777))
	bob := zkrownn.NewMLP(ds.Dim, []int{48}, ds.Classes, bobRng)
	zkrownn.Train(bob, ds, zkrownn.TrainOptions{Epochs: 10, BatchSize: 16, LearningRate: 0.1}, bobRng)
	_, _, _, _, err = zkrownn.ProveModelOwnership(bob, aliceKey, zkrownn.DefaultFixedPoint, nil)
	if err == zkrownn.ErrNotWatermarked {
		fmt.Println("   Alice's key does not extract from Bob's model: no claim-1 proof exists ✓")
	} else if err != nil {
		log.Fatal(err)
	} else {
		log.Fatal("ownership proof against an innocent model should not exist")
	}

	fmt.Println("── Act 5: a forged claim bit is rejected ──")
	// Mallory tries to pass Alice's proof with tampered public inputs.
	forged := append([]fr.Element(nil), public...)
	forged[len(forged)-1].SetUint64(1) // claim stays 1 but weights differ
	forged[0].SetUint64(424242)
	ok, err := zkrownn.VerifyOwnership(vk, proof, forged)
	if err == nil && ok {
		log.Fatal("forged public inputs accepted")
	}
	fmt.Println("   tampered public inputs rejected by the pairing check ✓")
}

// copyModel round-trips a model through serialization — exactly what a
// model thief obtains.
func copyModel(m *zkrownn.Model) *zkrownn.Model {
	var buf bytes.Buffer
	if err := zkrownn.SaveModel(m, &buf); err != nil {
		log.Fatal(err)
	}
	out, err := zkrownn.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
