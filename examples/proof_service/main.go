// Proof service demo: the ZKROWNN ownership flow over the wire.
//
//	go run ./examples/proof_service
//
// An in-process proof service is started (pass -connect to target a
// running zkrownn-server instead), then:
//
//  1. The owner trains a small model, embeds a DeepSigns watermark,
//     and registers the ownership circuit — the service compiles
//     Algorithm 1 and runs trusted setup once.
//  2. The owner submits async proof jobs; they fan into the engine's
//     worker pool and every one hits the registration's key cache.
//  3. A third-party verifier checks the proof over the wire,
//     concurrently — the service folds the simultaneous requests into
//     one batched pairing product (watch batch_size / the stats).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"

	"zkrownn"
	"zkrownn/client"
)

func main() {
	connect := flag.String("connect", "", "URL of a running zkrownn-server (default: start one in-process)")
	flag.Parse()

	baseURL := *connect
	if baseURL == "" {
		srv, err := zkrownn.NewProofService(zkrownn.ProofServiceOptions{
			// A generous window so the demo's concurrent verifies
			// visibly coalesce.
			VerifyWindow: 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go func() { _ = http.Serve(ln, srv) }()
		baseURL = "http://" + ln.Addr().String()
		fmt.Println("in-process proof service on", baseURL)
	}

	ctx := context.Background()
	c, err := client.New(baseURL)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// --- The owner's side: model, watermark, registration ---

	rng := rand.New(rand.NewSource(42))
	ds, err := zkrownn.SyntheticMNIST(400, 7)
	if err != nil {
		log.Fatal(err)
	}
	model := zkrownn.NewMLP(ds.Dim, []int{48}, ds.Classes, rng)
	fmt.Println("training", model.String(), "...")
	zkrownn.Train(model, ds, zkrownn.TrainOptions{Epochs: 10, BatchSize: 16, LearningRate: 0.1}, rng)

	key, err := zkrownn.GenerateKey(model, ds, zkrownn.KeyOptions{Bits: 16, Triggers: 4}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding a %d-bit watermark...\n", len(key.Signature))
	if err := zkrownn.EmbedWatermark(model, key, ds, zkrownn.EmbedOptions{Epochs: 80}, rng); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	reg, err := c.RegisterModel(ctx, model, key, client.RegisterOptions{Name: "demo-mlp"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered circuit %s… (%d constraints) in %.1fs — VK filed by the service\n",
		reg.ModelID[:12], reg.Constraints, time.Since(start).Seconds())

	// --- Async proving: three jobs, one trusted setup ---

	const jobs = 3
	tickets := make([]*client.ProveTicket, 0, jobs)
	for i := 0; i < jobs; i++ {
		t, err := c.SubmitProve(ctx, reg.ModelID, nil)
		if err != nil {
			log.Fatal(err)
		}
		tickets = append(tickets, t)
	}
	fmt.Printf("submitted %d async proof jobs\n", jobs)
	var lastJob *client.JobStatus
	for _, t := range tickets {
		job, err := c.WaitForProof(ctx, t.JobID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: proved in %.2fs (queued %.0fms, setup cache hit %v)\n",
			job.JobID, job.ProveMS/1e3, job.QueuedMS, job.SetupCached)
		lastJob = job
	}

	// --- The verifier's side: concurrent checks, one pairing product ---

	fmt.Printf("verifying over the wire ×4 concurrently...\n")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Verify(ctx, reg.ModelID, lastJob.Proof, lastJob.PublicInputs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  verifier %d: valid=%v claim=%v (folded into a batch of %d)\n",
				i, v.Valid, v.Claim, v.BatchSize)
		}(i)
	}
	wg.Wait()

	stats, err := c.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nservice stats: %d setup(s), %d prove(s), %d verifies; "+
		"%d batch-verify call(s) covering %d requests (max batch %d)\n",
		stats.Engine.Setups, stats.Engine.Proves, stats.Engine.Verifies,
		stats.Service.VerifyBatchCalls, stats.Service.VerifyBatchedRequests,
		stats.Service.VerifyMaxBatch)
	fmt.Println("\nownership settled over the wire — the verifier never saw the")
	fmt.Println("trigger keys, the projection matrix, or the watermark bits.")
}
