// Quickstart: the shortest path from a trained model to a verified
// zero-knowledge ownership proof.
//
//	go run ./examples/quickstart
//
// A small MLP is trained on synthetic data, a 16-bit DeepSigns watermark
// is embedded, and ZKROWNN proves ownership to a third-party verifier
// with a single 128-byte proof.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"zkrownn"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. Data + model: a 24-dimensional, 4-class synthetic task.
	ds, err := zkrownn.SyntheticMNIST(400, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Use a compact MLP so the whole demo runs in seconds; swap in
	// zkrownn.NewMNISTMLP for the paper-scale architecture.
	model := zkrownn.NewMLP(ds.Dim, []int{48}, ds.Classes, rng)
	fmt.Println("training", model.String(), "...")
	zkrownn.Train(model, ds, zkrownn.TrainOptions{
		Epochs: 10, BatchSize: 16, LearningRate: 0.1,
	}, rng)

	// 2. Watermark: generate a secret key and embed the signature.
	key, err := zkrownn.GenerateKey(model, ds, zkrownn.KeyOptions{
		Bits: 16, Triggers: 4,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedding a %d-bit watermark (layer %d, %d triggers)...\n",
		len(key.Signature), key.LayerIndex, len(key.Triggers))
	if err := zkrownn.EmbedWatermark(model, key, ds, zkrownn.EmbedOptions{Epochs: 80}, rng); err != nil {
		log.Fatal(err)
	}
	bits, ber := zkrownn.ExtractWatermark(model, key)
	fmt.Printf("plain extraction: bits=%v BER=%.3f\n", bits, ber)

	// 3. Zero-knowledge ownership proof: quantize, compile Algorithm 1,
	// one-time trusted setup, prove.
	fmt.Println("building circuit + trusted setup + proof...")
	start := time.Now()
	circuit, _, vk, proof, err := zkrownn.ProveModelOwnership(model, key, zkrownn.DefaultFixedPoint, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prover done in %.1fs — circuit has %d constraints, proof is %d bytes\n",
		time.Since(start).Seconds(), circuit.System.NbConstraints(), proof.PayloadSize())

	// 4. Third-party verification: needs only vk, the proof, and the
	// public inputs (the suspect model's weights + the claim bit).
	start = time.Now()
	ok, err := zkrownn.VerifyOwnership(vk, proof, zkrownn.PublicInputs(circuit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verifier: ownership=%v in %.1fms — without learning the triggers, the projection, or the watermark\n",
		ok, float64(time.Since(start).Microseconds())/1e3)
}
