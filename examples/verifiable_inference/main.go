// Verifiable inference: the paper closes by noting that ZKROWNN's
// individual circuits "can be combined to perform a myriad of tasks,
// including verifiable machine learning inference". This example does
// exactly that: a server proves that its (public) model classifies a
// client's (private) input as a particular (public) class — running the
// entire MLP feed-forward plus an in-circuit argmax — without revealing
// the input.
//
//	go run ./examples/verifiable_inference
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"zkrownn"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/frontend"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
)

func main() {
	rng := rand.New(rand.NewSource(77))
	p := fixpoint.Params{FracBits: 12, MagBits: 40}

	// A trained model (public) and a private input.
	ds, err := zkrownn.SyntheticMNIST(300, 77)
	if err != nil {
		log.Fatal(err)
	}
	for i := range ds.X {
		ds.X[i] = ds.X[i][:32]
	}
	ds.Dim = 32
	model := zkrownn.NewMLP(32, []int{24}, ds.Classes, rng)
	zkrownn.Train(model, ds, zkrownn.TrainOptions{Epochs: 10, BatchSize: 16, LearningRate: 0.1}, rng)

	input := ds.X[0]
	label := model.Predict(input)
	fmt.Printf("model predicts class %d for the private input\n", label)

	q, err := nn.Quantize(model, p)
	if err != nil {
		log.Fatal(err)
	}

	// Build the inference circuit: public weights, private input, public
	// claimed class; the circuit asserts the claimed class has the
	// maximal logit.
	c := gadgets.NewCtx(p)

	// Public model parameters.
	var weightVars [][]frontend.Variable // per dense layer: flat weights
	var biasVars [][]frontend.Variable
	for li, l := range q.Layers {
		if l.Kind != "dense" {
			continue
		}
		wv := make([]frontend.Variable, len(l.W))
		for i, w := range l.W {
			wv[i] = c.B.PublicInput(fmt.Sprintf("w%d", li), fixpoint.ToField(w))
		}
		bv := make([]frontend.Variable, len(l.B))
		for i, b := range l.B {
			bv[i] = c.B.PublicInput(fmt.Sprintf("b%d", li), fixpoint.ToField(b))
		}
		weightVars = append(weightVars, wv)
		biasVars = append(biasVars, bv)
	}

	// Private input.
	xq := p.EncodeSlice(input)
	cur := make([]frontend.Variable, len(xq))
	for i, v := range xq {
		cur[i] = c.B.SecretInput("x", fixpoint.ToField(v))
	}

	// Feed forward through every layer using the §III-B gadgets.
	denseIdx := 0
	for _, l := range q.Layers {
		switch l.Kind {
		case "dense":
			rows := make([][]frontend.Variable, l.Out)
			for o := 0; o < l.Out; o++ {
				rows[o] = weightVars[denseIdx][o*l.In : (o+1)*l.In]
			}
			cur = c.Dense(rows, cur, biasVars[denseIdx], true, p.MagBits)
			denseIdx++
		case "relu":
			cur = c.ReLUVec(cur, p.MagBits)
		}
	}

	// In-circuit argmax assertion: logit[label] ≥ logit[j] for all j.
	checks := make([]frontend.Variable, 0, len(cur)-1)
	for j := range cur {
		if j == label {
			continue
		}
		checks = append(checks, c.GreaterEq(cur[label], cur[j], p.MagBits))
	}
	allOk := c.B.Sum(checks...)
	c.B.AssertEqual(allOk, c.B.ConstUint64(uint64(len(checks))))

	// Publish the claimed class.
	claimed := c.B.PublicInput("class", fixpoint.ToField(int64(label)))
	c.B.AssertEqual(claimed, c.B.ConstUint64(uint64(label)))

	res, err := c.B.Compile()
	if err != nil {
		log.Fatal(err)
	}
	sys := res.System
	fmt.Printf("inference circuit: %d constraints\n", sys.NbConstraints())

	start := time.Now()
	pk, vk, err := groth16.Setup(sys, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Compile-once / solve-many: the witness is re-derived from the
	// recorded inputs by the solver program — the same call a server
	// would make per request with fresh private inputs.
	witness, err := sys.SolveAssignment(res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	proof, err := groth16.Prove(sys, pk, witness, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("setup+prove: %.1fs, proof %d B\n", time.Since(start).Seconds(), proof.PayloadSize())

	public := sys.PublicValues(witness)
	start = time.Now()
	if err := groth16.Verify(vk, proof, public); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified in %.1fms: the public model assigns class %d to SOME input the prover knows —\n",
		float64(time.Since(start).Microseconds())/1e3, label)
	fmt.Println("the input itself never leaves the prover (verifiable private inference)")
}
