// The paper's CIFAR10-CNN benchmark (Table I, row "CIFAR10-CNN"): a CNN
// whose first layer is C(32,3,2) over a 3×32×32 volume (Table II),
// watermarked after the first convolution's ReLU. The extraction
// circuit evaluates only that prefix — which is why the paper's CNN row
// is cheaper than its MLP row despite the bigger network.
//
//	go run ./examples/cifar10_cnn          # reduced (3×16×16, 8 channels)
//	go run ./examples/cifar10_cnn -paper   # full 3×32×32, 32 channels
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"zkrownn"
	"zkrownn/internal/nn"
)

func main() {
	paper := flag.Bool("paper", false, "run the full 3×32×32 / 32-channel first layer")
	triggers := flag.Int("triggers", 2, "trigger-set size |X_key|")
	flag.Parse()

	inHW, outC, samples := 16, 8, 400
	if *paper {
		inHW, outC, samples = 32, 32, 800
	}
	rng := rand.New(rand.NewSource(21))

	fmt.Printf("=== ZKROWNN CIFAR10-CNN (input 3×%d×%d, %d channels, triggers=%d) ===\n",
		inHW, inHW, outC, *triggers)

	ds, err := zkrownn.SyntheticCIFAR(samples, 21)
	if err != nil {
		log.Fatal(err)
	}
	if !*paper {
		// Center-crop the synthetic 3×32×32 volumes to 3×inHW×inHW.
		off := (32 - inHW) / 2
		for i := range ds.X {
			crop := make([]float64, 3*inHW*inHW)
			for c := 0; c < 3; c++ {
				for h := 0; h < inHW; h++ {
					for w := 0; w < inHW; w++ {
						crop[(c*inHW+h)*inHW+w] = ds.X[i][(c*32+h+off)*32+w+off]
					}
				}
			}
			ds.X[i] = crop
		}
		ds.Dim = 3 * inHW * inHW
	}

	model := &zkrownn.Model{}
	*model = *buildCNN(inHW, outC, ds.Classes, rng)
	fmt.Println("training", model.String())
	zkrownn.Train(model, ds, zkrownn.TrainOptions{
		Epochs: 5, BatchSize: 16, LearningRate: 0.03,
		Logf: func(f string, a ...any) { fmt.Printf(f, a...) },
	}, rng)

	key, err := zkrownn.GenerateKey(model, ds, zkrownn.KeyOptions{
		Bits: 32, Triggers: *triggers,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("embedding the 32-bit watermark after the first convolution (DeepSigns)")
	if err := zkrownn.EmbedWatermark(model, key, ds, zkrownn.EmbedOptions{Epochs: 60}, rng); err != nil {
		log.Fatal(err)
	}
	_, ber := zkrownn.ExtractWatermark(model, key)
	fmt.Printf("float extraction BER: %.3f\n", ber)
	if ber != 0 {
		log.Fatal("embedding did not converge; rerun with more epochs")
	}

	fmt.Println("compiling the conv-prefix extraction circuit and proving...")
	circuit, _, vk, proof, err := zkrownn.ProveModelOwnership(model, key, zkrownn.DefaultFixedPoint, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d constraints, %d public inputs\n",
		circuit.System.NbConstraints(), circuit.System.NbPublic-1)
	fmt.Printf("proof: %d bytes, VK %.1f KB\n", proof.PayloadSize(), float64(vk.SizeBytes())/1e3)

	ok, err := zkrownn.VerifyOwnership(vk, proof, zkrownn.PublicInputs(circuit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("third-party verification: ownership=%v\n", ok)
}

// buildCNN assembles the first-conv prefix of the Table II CNN (plus a
// small classification head so it can be trained). At -paper scale the
// first layer matches Table II's C(32,3,2) exactly.
func buildCNN(inHW, outC, classes int, rng *rand.Rand) *nn.Network {
	return nn.NewSmallCNN(nn.SmallCNNConfig{
		InC: 3, InH: inHW, InW: inHW,
		OutC: outC, K: 3, S: 2,
		Hidden: 64, Classes: classes,
	}, rng)
}
