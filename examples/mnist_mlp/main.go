// The paper's MNIST-MLP benchmark (Table I, row "MNIST-MLP"): train the
// Table II MLP (784-FC512-FC512-FC10) on MNIST-shaped synthetic data,
// embed a 32-bit DeepSigns watermark in the first hidden layer, and run
// the full ZKROWNN pipeline over the first-layer extraction circuit.
//
//	go run ./examples/mnist_mlp            # reduced dimensions (~1 min)
//	go run ./examples/mnist_mlp -paper     # full 784-512 first layer
//
// The -paper circuit exceeds 1.6M constraints; expect multi-minute
// setup/prover times and several GB of memory on small machines (the
// paper used a 64-core AMD 3990X and reports 68s setup / 45s prove).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"zkrownn"
)

func main() {
	paper := flag.Bool("paper", false, "run the full 784-512 first layer")
	triggers := flag.Int("triggers", 2, "trigger-set size |X_key|")
	flag.Parse()

	inDim, hidden, samples := 196, 64, 600
	if *paper {
		inDim, hidden, samples = 784, 512, 1200
	}
	rng := rand.New(rand.NewSource(11))

	fmt.Printf("=== ZKROWNN MNIST-MLP (in=%d, hidden=%d, triggers=%d) ===\n", inDim, hidden, *triggers)
	ds, err := zkrownn.SyntheticMNIST(samples, 11)
	if err != nil {
		log.Fatal(err)
	}
	if !*paper {
		// Downsample the 784-d inputs to the reduced dimension.
		for i := range ds.X {
			ds.X[i] = ds.X[i][:inDim]
		}
		ds.Dim = inDim
	}

	model := zkrownn.NewMLP(inDim, []int{hidden, hidden}, ds.Classes, rng)
	fmt.Println("training", model.String())
	zkrownn.Train(model, ds, zkrownn.TrainOptions{
		Epochs: 8, BatchSize: 16, LearningRate: 0.05,
		Logf: func(f string, a ...any) { fmt.Printf(f, a...) },
	}, rng)

	key, err := zkrownn.GenerateKey(model, ds, zkrownn.KeyOptions{
		Bits: 32, Triggers: *triggers,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("embedding the 32-bit watermark in the first hidden layer (DeepSigns)")
	if err := zkrownn.EmbedWatermark(model, key, ds, zkrownn.EmbedOptions{
		Epochs: 60,
		Logf: func(f string, a ...any) {
			// quiet per-epoch spam; Embed logs only when Logf set
		},
	}, rng); err != nil {
		log.Fatal(err)
	}
	_, ber := zkrownn.ExtractWatermark(model, key)
	fmt.Printf("float extraction BER: %.3f\n", ber)
	if ber != 0 {
		log.Fatal("embedding did not converge; rerun with more epochs")
	}

	fmt.Println("compiling Algorithm 1 and running the Groth16 pipeline...")
	circuit, _, vk, proof, err := zkrownn.ProveModelOwnership(model, key, zkrownn.DefaultFixedPoint, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d constraints, %d public inputs (the model weights)\n",
		circuit.System.NbConstraints(), circuit.System.NbPublic-1)
	fmt.Printf("proof: %d bytes\n", proof.PayloadSize())
	fmt.Printf("verifying key: %.1f KB (grows with the public model, cf. the paper's 16 MB at full scale)\n",
		float64(vk.SizeBytes())/1e3)

	ok, err := zkrownn.VerifyOwnership(vk, proof, zkrownn.PublicInputs(circuit))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("third-party verification: ownership=%v\n", ok)
}
