// Command zkrownn is the end-to-end ZKROWNN workflow driver:
//
//	zkrownn train    — train a model on the synthetic dataset
//	zkrownn keygen   — generate a secret watermark key for a model
//	zkrownn embed    — embed the watermark (DeepSigns fine-tuning)
//	zkrownn extract  — plain extraction (float and fixed-point paths)
//	zkrownn prove    — build the zk circuit, run setup, emit vk + proof
//	zkrownn verify   — third-party verification of an ownership proof
//
// Artifacts are files: models and keys are JSON; verifying keys and
// proofs use the compact binary encoding of internal/groth16; public
// inputs are hex JSON. Datasets are deterministic given (-data-seed,
// -data-samples, shape), so every command regenerates them on demand —
// see DESIGN.md for the synthetic-data substitution rationale.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"zkrownn/client"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/ipp"
	"zkrownn/internal/core"
	"zkrownn/internal/dataset"
	"zkrownn/internal/engine"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
	"zkrownn/internal/obs"
	"zkrownn/internal/watermark"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "keygen":
		err = cmdKeygen(os.Args[2:])
	case "embed":
		err = cmdEmbed(os.Args[2:])
	case "extract":
		err = cmdExtract(os.Args[2:])
	case "prove":
		err = cmdProve(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "zkrownn: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zkrownn:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: zkrownn <command> [flags]

commands:
  train    train a model on the synthetic dataset
  keygen   generate a watermark key
  embed    embed the watermark into a trained model
  extract  extract the watermark outside the circuit
  prove    produce a zero-knowledge ownership proof
  verify   verify an ownership proof

run "zkrownn <command> -h" for per-command flags`)
}

// dataFlags are the deterministic-dataset parameters shared by commands.
type dataFlags struct {
	samples *int
	seed    *int64
	dim     *int
	classes *int
}

func addDataFlags(fs *flag.FlagSet) dataFlags {
	return dataFlags{
		samples: fs.Int("data-samples", 600, "synthetic dataset size"),
		seed:    fs.Int64("data-seed", 7, "synthetic dataset seed"),
		dim:     fs.Int("data-dim", 64, "synthetic input dimension"),
		classes: fs.Int("data-classes", 10, "synthetic class count"),
	}
}

func (d dataFlags) generate() (*dataset.Dataset, error) {
	return dataset.Generate(dataset.Config{
		Samples: *d.samples, Dim: *d.dim, Classes: *d.classes,
		ClusterStd: 0.3, Seed: *d.seed,
	})
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	hidden := fs.Int("hidden", 64, "hidden layer width (MLP)")
	epochs := fs.Int("epochs", 15, "training epochs")
	lr := fs.Float64("lr", 0.1, "learning rate")
	seed := fs.Int64("seed", 1, "weight-init seed")
	out := fs.String("out", "model.json", "output model path")
	df := addDataFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := df.generate()
	if err != nil {
		return err
	}
	train, test := ds.Split(0.2)
	rng := rand.New(rand.NewSource(*seed))
	net := nn.NewMLP(nn.MLPConfig{In: ds.Dim, Hidden: []int{*hidden}, Classes: ds.Classes}, rng)
	fmt.Printf("training %s on %d samples...\n", net.String(), len(train.X))
	net.Train(train.X, train.Y, nn.TrainConfig{
		Epochs: *epochs, BatchSize: 16, LearningRate: *lr,
		Silent: false, Logf: func(f string, a ...any) { fmt.Printf(f, a...) },
	}, rng)
	fmt.Printf("test accuracy: %.3f\n", net.Accuracy(test.X, test.Y))
	return writeFileWith(*out, net.Save)
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "model path")
	bits := fs.Int("bits", 32, "watermark bits")
	triggers := fs.Int("triggers", 4, "trigger-set size")
	layer := fs.Int("layer", 1, "embedded layer index l_wm")
	class := fs.Int("class", 0, "target Gaussian class")
	seed := fs.Int64("seed", 2, "key randomness seed")
	out := fs.String("out", "wmkey.json", "output key path")
	df := addDataFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	ds, err := df.generate()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	actDim := net.Layers[*layer].OutputSize()
	key, err := watermark.GenerateKey(rng, *layer, *class, actDim, *bits, *triggers, ds.OfClass(*class))
	if err != nil {
		return err
	}
	fmt.Printf("generated %d-bit watermark key (layer %d, class %d, %d triggers)\n",
		*bits, *layer, *class, *triggers)
	return writeJSON(*out, key)
}

func cmdEmbed(args []string) error {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "model path")
	keyPath := fs.String("key", "wmkey.json", "watermark key path")
	epochs := fs.Int("epochs", 50, "fine-tuning epochs")
	seed := fs.Int64("seed", 3, "embedding seed")
	out := fs.String("out", "model-wm.json", "output watermarked model path")
	df := addDataFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	ds, err := df.generate()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	cfg := watermark.DefaultEmbedConfig()
	cfg.Epochs = *epochs
	cfg.Silent = false
	cfg.Logf = func(f string, a ...any) { fmt.Printf(f, a...) }
	if err := watermark.Embed(net, key, ds.X, ds.Y, cfg, rng); err != nil {
		return err
	}
	_, ber := watermark.Extract(net, key)
	fmt.Printf("embedding done, float BER = %.3f\n", ber)
	return writeFileWith(*out, net.Save)
}

func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	modelPath := fs.String("model", "model-wm.json", "model path")
	keyPath := fs.String("key", "wmkey.json", "watermark key path")
	fracBits := fs.Int("frac-bits", 16, "fixed-point fraction bits")
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	bits, ber := watermark.Extract(net, key)
	fmt.Printf("float extraction:      bits=%v BER=%.3f\n", bits, ber)

	p := fixpoint.Params{FracBits: *fracBits, MagBits: 44}
	q, err := nn.Quantize(net, p)
	if err != nil {
		return err
	}
	qbits, nbErr, err := watermark.ExtractQuantized(q, key)
	if err != nil {
		return err
	}
	fmt.Printf("fixed-point (circuit): bits=%v errors=%d\n", qbits, nbErr)
	return nil
}

func cmdProve(args []string) error {
	fs := flag.NewFlagSet("prove", flag.ExitOnError)
	modelPath := fs.String("model", "model-wm.json", "suspect model path (public)")
	keyPath := fs.String("key", "wmkey.json", "watermark key path (private)")
	outDir := fs.String("out", "ownership", "output directory for vk/proof/public artifacts")
	savePK := fs.Bool("save-pk", false, "also write the (large) proving key")
	maxErrors := fs.Int("max-errors", 0, "BER tolerance θ·N")
	fracBits := fs.Int("frac-bits", 16, "fixed-point fraction bits")
	committed := fs.Bool("committed", false, "use the committed-model circuit (constant-size VK; weights bound by digest instead of public inputs)")
	keyCache := fs.String("keycache", "", "key-cache directory: reuse trusted-setup keys across runs for the same circuit architecture")
	server := fs.String("server", "", "proof-service URL: register + prove remotely (zkrownn-server) instead of proving in-process")
	suspectsFlag := fs.String("suspects", "", `comma-separated suspect model paths: prove one BATCHED claim per suspect with a single proof ("-" keeps the registered model in that slot)`)
	traceOut := fs.String("trace", "", "write a Chrome trace-event JSON timeline of the prover phases to this file (load in chrome://tracing or Perfetto)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	key, err := loadKey(*keyPath)
	if err != nil {
		return err
	}
	suspectPaths, err := splitSuspects(*suspectsFlag)
	if err != nil {
		return err
	}
	if len(suspectPaths) > 0 && *committed {
		return fmt.Errorf("-suspects needs the rebindable circuit; it cannot be combined with -committed")
	}
	if *server != "" {
		if *savePK {
			fmt.Fprintln(os.Stderr, "warning: -save-pk is ignored with -server (the service keeps proving keys)")
		}
		if *keyCache != "" {
			fmt.Fprintln(os.Stderr, "warning: -keycache is ignored with -server (configure the server's -keycache instead)")
		}
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, `warning: -trace is ignored with -server (submit with "trace": true and fetch GET /v1/jobs/{id}/trace instead)`)
		}
		return remoteProve(*server, net, key, *outDir, *maxErrors, *fracBits, *committed, suspectPaths)
	}
	p := fixpoint.Params{FracBits: *fracBits, MagBits: 44}
	q, err := nn.Quantize(net, p)
	if err != nil {
		return err
	}
	ck := core.QuantizeKey(key, p)
	slots := 1
	if len(suspectPaths) > 0 {
		slots = len(suspectPaths)
	}
	fmt.Println("building extraction circuit...")
	var art *core.Artifact
	if *committed {
		art, err = core.CommittedExtractionCircuit(q, ck, *maxErrors)
	} else {
		art, err = core.BatchedExtractionCircuit(q, ck, *maxErrors, slots)
	}
	if err != nil {
		return err
	}
	fmt.Printf("circuit: %d constraints, %d public inputs, %d claim slot(s)\n",
		art.System.NbConstraints(), art.System.NbPublic-1, art.Slots())

	req := art.Request(nil)
	if len(suspectPaths) > 0 {
		suspects, lerr := loadSuspects(suspectPaths, p)
		if lerr != nil {
			return lerr
		}
		// An all-"-" list degenerates to proving the registered model in
		// every slot (matching the server's all-null bundle semantics);
		// binding only happens when at least one real suspect is named.
		if anySuspect(suspects) {
			asg, berr := core.BindSuspectSlots(art, suspects)
			if berr != nil {
				return berr
			}
			req = art.RequestFor(asg, nil)
		}
	}

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		req.Ctx = obs.ContextWithTrace(context.Background(), tr)
	}

	eng := engine.New(engine.Options{CacheDir: *keyCache})
	res, err := eng.Prove(req)
	if err != nil {
		return err
	}
	if tr != nil {
		if terr := writeFileWith(*traceOut, tr.WriteChrome); terr != nil {
			return fmt.Errorf("writing trace: %w", terr)
		}
		fmt.Printf("trace written to %s (load in chrome://tracing or Perfetto)\n", *traceOut)
	}
	pk, vk, proof := res.Keys.PK, res.Keys.VK, res.Proof
	pkSize := res.Keys.PKSizeBytes()
	if res.CacheHit {
		fmt.Printf("setup:  cache hit %s (keys for digest %s, PK %.1f MB, VK %.1f KB)\n",
			res.SetupTime, res.Digest[:12], float64(pkSize)/1e6, float64(vk.SizeBytes())/1e3)
	} else {
		fmt.Printf("setup:  %.2fs (PK %.1f MB, VK %.1f KB)\n",
			res.SetupTime.Seconds(), float64(pkSize)/1e6, float64(vk.SizeBytes())/1e3)
		switch {
		case res.PersistErr != nil:
			fmt.Printf("        warning: key cache write failed: %v\n", res.PersistErr)
		case *keyCache != "":
			fmt.Printf("        keys cached under %s/%s.{pk,vk}\n", *keyCache, res.Digest)
		}
	}
	fmt.Printf("prove:  %.2fs (proof %d B)\n", res.ProveTime.Seconds(), proof.PayloadSize())
	public := res.PublicInputs
	// Surface the verdicts whenever suspects were bound (a single-slot
	// suspect prove very plausibly yields claim=0 — say so here, not at
	// some later verify).
	if claims, cerr := core.ClaimBits(public, art.Slots()); cerr == nil && (art.Slots() > 1 || len(suspectPaths) > 0) {
		printClaims(claims, suspectPaths)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	if err := writeFileWith(filepath.Join(*outDir, "vk.bin"), func(w io.Writer) error {
		_, err := vk.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	if err := writeFileWith(filepath.Join(*outDir, "proof.bin"), func(w io.Writer) error {
		_, err := proof.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(*outDir, "public.json"), encodePublic(public)); err != nil {
		return err
	}
	meta := proveMeta{Committed: *committed, LayerIndex: key.LayerIndex, FracBits: *fracBits, BundleSlots: art.Slots()}
	if err := writeJSON(filepath.Join(*outDir, "meta.json"), meta); err != nil {
		return err
	}
	if *savePK {
		if err := writeFileWith(filepath.Join(*outDir, "pk.bin"), func(w io.Writer) error {
			_, err := pk.WriteTo(w)
			return err
		}); err != nil {
			return err
		}
	}
	fmt.Printf("artifacts written to %s/ (vk.bin, proof.bin, public.json)\n", *outDir)
	return nil
}

// proveMeta records which circuit variant produced the artifacts and,
// for remote proves, the proof-service model ID. BundleSlots > 1 marks
// a batched multi-claim proof.
type proveMeta struct {
	Committed   bool   `json:"committed"`
	LayerIndex  int    `json:"layer_index"`
	FracBits    int    `json:"frac_bits"`
	BundleSlots int    `json:"bundle_slots,omitempty"`
	ModelID     string `json:"model_id,omitempty"`
}

// splitSuspects parses the -suspects flag into per-slot model paths
// (empty flag → none; "-" keeps the registered model in that slot).
func splitSuspects(value string) ([]string, error) {
	return splitPaths("-suspects", value)
}

// splitPaths parses a comma-separated path flag, rejecting empty
// entries: a trailing or doubled comma would otherwise silently shift
// every later slot (or bind a registered-model slot the caller never
// asked for), so it fails loudly at flag level instead.
func splitPaths(flagName, value string) ([]string, error) {
	if value == "" {
		return nil, nil
	}
	parts := strings.Split(value, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
		if parts[i] == "" {
			return nil, fmt.Errorf(`%s: entry %d is empty (trailing or doubled comma?); use "-" to keep the registered model in a slot`, flagName, i)
		}
	}
	return parts, nil
}

// anySuspect reports whether at least one slot names a real suspect.
func anySuspect(suspects []*nn.QuantizedNetwork) bool {
	for _, s := range suspects {
		if s != nil {
			return true
		}
	}
	return false
}

// loadSuspects loads and quantizes the per-slot suspect models ("-"
// entries stay nil: registered model). Empty entries are rejected at
// flag parse; the check here mirrors it for programmatic callers.
func loadSuspects(paths []string, p fixpoint.Params) ([]*nn.QuantizedNetwork, error) {
	out := make([]*nn.QuantizedNetwork, len(paths))
	for i, path := range paths {
		if path == "-" {
			continue
		}
		if path == "" {
			return nil, fmt.Errorf(`suspect slot %d: empty model path (use "-" to keep the registered model)`, i)
		}
		net, err := loadModel(path)
		if err != nil {
			return nil, fmt.Errorf("suspect slot %d: %w", i, err)
		}
		q, err := nn.Quantize(net, p)
		if err != nil {
			return nil, fmt.Errorf("suspect slot %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}

// printClaims renders per-slot bundle verdicts. suspectPaths labels the
// slots when known (the prover side); verifiers pass nil.
func printClaims(claims []bool, suspectPaths []string) {
	for s, c := range claims {
		label := ""
		if len(suspectPaths) > 0 {
			label = " registered model"
			if s < len(suspectPaths) && suspectPaths[s] != "" && suspectPaths[s] != "-" {
				label = " " + suspectPaths[s]
			}
		}
		verdict := "claim=0 (watermark did not extract)"
		if c {
			verdict = "claim=1 (ownership holds)"
		}
		fmt.Printf("  slot %d %-28s %s\n", s, label, verdict)
	}
}

// remoteProve registers the model + key with a running proof service
// and runs the ownership proof there, writing the same artifact set as
// a local prove (vk.bin, proof.bin, public.json, meta.json). A
// non-empty suspectPaths registers a batched circuit with one claim
// slot per suspect and submits the whole bundle as one job.
func remoteProve(serverURL string, net *nn.Network, key *watermark.Key, outDir string, maxErrors, fracBits int, committed bool, suspectPaths []string) error {
	ctx := context.Background()
	c, err := client.New(serverURL)
	if err != nil {
		return err
	}
	if err := c.Health(ctx); err != nil {
		return err
	}
	slots := 0
	if len(suspectPaths) > 0 {
		slots = len(suspectPaths)
	}
	fmt.Printf("registering circuit with %s...\n", serverURL)
	reg, err := c.RegisterModel(ctx, net, key, client.RegisterOptions{
		FracBits: fracBits, MaxErrors: maxErrors, Committed: committed, BundleSlots: slots,
	})
	if err != nil {
		return err
	}
	state := "setup executed"
	if reg.SetupCached {
		state = "setup cached"
	}
	fmt.Printf("model %s registered (%d constraints, %d claim slot(s), %s)\n",
		reg.ModelID[:12], reg.Constraints, reg.BundleSlots, state)

	var ticket *client.ProveTicket
	if len(suspectPaths) > 0 {
		suspects := make([]*nn.Network, len(suspectPaths))
		for i, path := range suspectPaths {
			if path == "-" {
				continue
			}
			if path == "" {
				return fmt.Errorf(`suspect slot %d: empty model path (use "-" to keep the registered model)`, i)
			}
			if suspects[i], err = loadModel(path); err != nil {
				return fmt.Errorf("suspect slot %d: %w", i, err)
			}
		}
		ticket, err = c.SubmitProveBundle(ctx, reg.ModelID, suspects)
	} else {
		ticket, err = c.SubmitProve(ctx, reg.ModelID, nil)
	}
	if err != nil {
		return err
	}
	fmt.Printf("job %s queued, polling...\n", ticket.JobID)
	job, err := c.WaitForProof(ctx, ticket.JobID)
	if err != nil {
		return err
	}
	fmt.Printf("prove:  %.2fs server-side (proof %d B, setup cache hit %v)\n",
		job.ProveMS/1e3, job.Proof.PayloadSize(), job.SetupCached)
	if len(job.Claims) > 1 || (len(job.Claims) > 0 && len(suspectPaths) > 0) {
		printClaims(job.Claims, suspectPaths)
	}

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	if err := writeFileWith(filepath.Join(outDir, "vk.bin"), func(w io.Writer) error {
		_, err := reg.VK.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	if err := writeFileWith(filepath.Join(outDir, "proof.bin"), func(w io.Writer) error {
		_, err := job.Proof.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(outDir, "public.json"), encodePublic(job.PublicInputs)); err != nil {
		return err
	}
	meta := proveMeta{Committed: committed, LayerIndex: key.LayerIndex, FracBits: fracBits, BundleSlots: reg.BundleSlots, ModelID: reg.ModelID}
	if err := writeJSON(filepath.Join(outDir, "meta.json"), meta); err != nil {
		return err
	}
	fmt.Printf("artifacts written to %s/ (vk.bin, proof.bin, public.json)\n", outDir)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "ownership", "artifact directory (vk.bin, proof.bin, public.json)")
	modelPath := fs.String("model", "model-wm.json", "public suspect model (needed for committed-mode digest checks)")
	server := fs.String("server", "", "proof-service URL: verify remotely against the service's registered verifying key")
	modelID := fs.String("model-id", "", "proof-service model ID (default: meta.json of -dir)")
	aggregate := fs.Bool("aggregate", false, "with -server: fold the artifact directories' proofs into one O(log N) aggregate via /v1/aggregate, audit it locally against vk.bin, and save aggregate.json; without -server: re-verify a saved aggregate.json")
	dirsFlag := fs.String("dirs", "", "comma-separated artifact directories to aggregate (default: -dir alone); each needs proof.bin + public.json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dirsFlag != "" && !*aggregate {
		return fmt.Errorf("-dirs only makes sense with -aggregate")
	}
	if *aggregate {
		dirs := []string{*dir}
		if *dirsFlag != "" {
			var derr error
			if dirs, derr = splitPaths("-dirs", *dirsFlag); derr != nil {
				return derr
			}
		}
		if *server != "" {
			return remoteAggregate(*server, dirs, *modelID)
		}
		if *dirsFlag != "" {
			return fmt.Errorf("offline -aggregate re-verifies one saved aggregate.json; -dirs needs -server")
		}
		return verifyAggregateFile(*dir)
	}
	if *server != "" {
		return remoteVerify(*server, *dir, *modelID)
	}

	var vk groth16.VerifyingKey
	if err := readFileWith(filepath.Join(*dir, "vk.bin"), func(f io.Reader) error {
		_, err := vk.ReadFrom(f)
		return err
	}); err != nil {
		return err
	}
	var proof groth16.Proof
	if err := readFileWith(filepath.Join(*dir, "proof.bin"), func(f io.Reader) error {
		_, err := proof.ReadFrom(f)
		return err
	}); err != nil {
		return err
	}
	var hexPub []string
	if err := readJSON(filepath.Join(*dir, "public.json"), &hexPub); err != nil {
		return err
	}
	public, err := decodePublic(hexPub)
	if err != nil {
		return err
	}

	var meta proveMeta
	_ = readJSON(filepath.Join(*dir, "meta.json"), &meta) // absent for old artifacts

	start := time.Now()
	var ok bool
	if meta.BundleSlots > 1 {
		// Batched proof: one Groth16 check, then the per-slot verdicts.
		if verr := groth16.Verify(&vk, &proof, public); verr != nil {
			err = verr
		} else if claims, cerr := core.ClaimBits(public, meta.BundleSlots); cerr != nil {
			err = cerr
		} else {
			ok = true
			printClaims(claims, nil)
			for _, c := range claims {
				ok = ok && c
			}
		}
	} else if meta.Committed {
		net, lerr := loadModel(*modelPath)
		if lerr != nil {
			return fmt.Errorf("committed proof needs the public model: %w", lerr)
		}
		p := fixpoint.Params{FracBits: meta.FracBits, MagBits: 44}
		q, qerr := nn.Quantize(net, p)
		if qerr != nil {
			return qerr
		}
		if verr := groth16.Verify(&vk, &proof, public); verr != nil {
			err = verr
		} else if derr := core.VerifyCommittedPublicInputs(q, meta.LayerIndex, public); derr != nil {
			err = derr
		} else {
			ok = true
		}
	} else {
		ok, err = core.VerifyClaim(&vk, &proof, public)
	}
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf("verification FAILED in %.1fms: %v\n", float64(elapsed.Microseconds())/1e3, err)
		return err
	}
	if !ok {
		fmt.Printf("proof valid but ownership claim is 0 (watermark did not extract)\n")
		os.Exit(1)
	}
	fmt.Printf("ownership VERIFIED in %.1fms\n", float64(elapsed.Microseconds())/1e3)
	return nil
}

// remoteVerify submits local proof artifacts to a running proof
// service, which checks them against its registered verifying key
// (micro-batching concurrent requests server-side).
func remoteVerify(serverURL, dir, modelID string) error {
	if modelID == "" {
		var meta proveMeta
		if err := readJSON(filepath.Join(dir, "meta.json"), &meta); err != nil || meta.ModelID == "" {
			return fmt.Errorf("no -model-id given and %s/meta.json has none (was the proof made with prove -server?)", dir)
		}
		modelID = meta.ModelID
	}
	var proof groth16.Proof
	if err := readFileWith(filepath.Join(dir, "proof.bin"), func(f io.Reader) error {
		_, err := proof.ReadFrom(f)
		return err
	}); err != nil {
		return err
	}
	var hexPub []string
	if err := readJSON(filepath.Join(dir, "public.json"), &hexPub); err != nil {
		return err
	}
	public, err := decodePublic(hexPub)
	if err != nil {
		return err
	}

	c, err := client.New(serverURL)
	if err != nil {
		return err
	}
	start := time.Now()
	verdict, err := c.Verify(context.Background(), modelID, &proof, public)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if verdict.Valid && len(verdict.Claims) > 1 {
		printClaims(verdict.Claims, nil)
	}
	switch {
	case !verdict.Valid:
		fmt.Printf("verification FAILED in %.1fms: %s\n", float64(elapsed.Microseconds())/1e3, verdict.Error)
		os.Exit(1)
	case !verdict.Claim:
		fmt.Printf("proof valid but ownership claim is 0 (watermark did not extract)\n")
		os.Exit(1)
	}
	fmt.Printf("ownership VERIFIED in %.1fms over the wire (server batch size %d)\n",
		float64(elapsed.Microseconds())/1e3, verdict.BatchSize)
	return nil
}

// aggregateMeta is the self-contained aggregate.json artifact: the
// O(log N) proof-of-proofs, the SRS verifier key it pairs with, and the
// per-proof instances — everything an offline re-verification needs
// besides vk.bin.
type aggregateMeta struct {
	ModelID      string                  `json:"model_id,omitempty"`
	Count        int                     `json:"count"`
	Aggregate    *groth16.AggregateProof `json:"aggregate"`
	SRSKey       *ipp.VerifierKey        `json:"srs_key"`
	PublicInputs [][]string              `json:"public_inputs"`
}

// remoteAggregate folds the artifact directories' proofs into one
// aggregate via /v1/aggregate, audits the returned artifact locally
// against the first directory's vk.bin (the service's verdict is never
// trusted), and saves aggregate.json alongside the first proof.
func remoteAggregate(serverURL string, dirs []string, modelID string) error {
	if modelID == "" {
		var meta proveMeta
		if err := readJSON(filepath.Join(dirs[0], "meta.json"), &meta); err != nil || meta.ModelID == "" {
			return fmt.Errorf("no -model-id given and %s/meta.json has none (was the proof made with prove -server?)", dirs[0])
		}
		modelID = meta.ModelID
	}

	proofs := make([]*groth16.Proof, len(dirs))
	publics := make([][]fr.Element, len(dirs))
	hexPublics := make([][]string, len(dirs))
	for i, d := range dirs {
		proofs[i] = new(groth16.Proof)
		if err := readFileWith(filepath.Join(d, "proof.bin"), func(f io.Reader) error {
			_, err := proofs[i].ReadFrom(f)
			return err
		}); err != nil {
			return fmt.Errorf("dir %s: %w", d, err)
		}
		if err := readJSON(filepath.Join(d, "public.json"), &hexPublics[i]); err != nil {
			return fmt.Errorf("dir %s: %w", d, err)
		}
		var err error
		if publics[i], err = decodePublic(hexPublics[i]); err != nil {
			return fmt.Errorf("dir %s: %w", d, err)
		}
	}
	var vk groth16.VerifyingKey
	if err := readFileWith(filepath.Join(dirs[0], "vk.bin"), func(f io.Reader) error {
		_, err := vk.ReadFrom(f)
		return err
	}); err != nil {
		return err
	}

	c, err := client.New(serverURL)
	if err != nil {
		return err
	}
	instances := make([]groth16.PublicInputs, len(publics))
	for i := range publics {
		instances[i] = publics[i]
	}
	start := time.Now()
	res, err := c.Aggregate(context.Background(), modelID, proofs, instances)
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if !res.Valid || res.Aggregate == nil || res.SRSKey == nil {
		return fmt.Errorf("aggregation rejected: %s", res.Error)
	}
	// Audit locally: accept only an artifact that verifies against the
	// on-disk verifying key and the returned SRS key.
	if err := groth16.VerifyAggregate(res.SRSKey, &vk, res.Aggregate, publics); err != nil {
		return fmt.Errorf("server artifact failed local audit: %w", err)
	}

	out := filepath.Join(dirs[0], "aggregate.json")
	am := aggregateMeta{
		ModelID:      modelID,
		Count:        res.Count,
		Aggregate:    res.Aggregate,
		SRSKey:       res.SRSKey,
		PublicInputs: hexPublics,
	}
	if err := writeJSON(out, am); err != nil {
		return err
	}
	if !res.Claim {
		fmt.Printf("aggregate of %d proofs valid but at least one ownership claim is 0\n", res.Count)
	}
	fmt.Printf("aggregated %d proofs in %.1fms over the wire (window %d); artifact locally audited, written to %s (%d B vs %d B unaggregated)\n",
		res.Count, float64(elapsed.Microseconds())/1e3, res.BatchSize, out,
		res.Aggregate.SizeBytes(), len(proofs)*proofs[0].PayloadSize())
	return nil
}

// verifyAggregateFile re-verifies a saved aggregate.json offline
// against the directory's vk.bin.
func verifyAggregateFile(dir string) error {
	var am aggregateMeta
	if err := readJSON(filepath.Join(dir, "aggregate.json"), &am); err != nil {
		return fmt.Errorf("no saved aggregate (run verify -aggregate -server first): %w", err)
	}
	if am.Aggregate == nil || am.SRSKey == nil {
		return fmt.Errorf("%s/aggregate.json is incomplete", dir)
	}
	var vk groth16.VerifyingKey
	if err := readFileWith(filepath.Join(dir, "vk.bin"), func(f io.Reader) error {
		_, err := vk.ReadFrom(f)
		return err
	}); err != nil {
		return err
	}
	publics := make([][]fr.Element, len(am.PublicInputs))
	for i, hexPub := range am.PublicInputs {
		var err error
		if publics[i], err = decodePublic(hexPub); err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
	}

	start := time.Now()
	err := groth16.VerifyAggregate(am.SRSKey, &vk, am.Aggregate, publics)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Printf("aggregate verification FAILED in %.1fms: %v\n", float64(elapsed.Microseconds())/1e3, err)
		return err
	}
	fmt.Printf("aggregate of %d proofs VERIFIED in %.1fms (%.2fms per proof)\n",
		am.Count, float64(elapsed.Microseconds())/1e3,
		float64(elapsed.Microseconds())/1e3/float64(max(am.Count, 1)))
	return nil
}

// --- file helpers ---

func loadModel(path string) (*nn.Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nn.Load(f)
}

func loadKey(path string) (*watermark.Key, error) {
	var k watermark.Key
	if err := readJSON(path, &k); err != nil {
		return nil, err
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &k, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	return enc.Encode(v)
}

func readJSON(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewDecoder(f).Decode(v)
}

func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readFileWith(path string, fn func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func encodePublic(pub []fr.Element) []string {
	out := make([]string, len(pub))
	for i := range pub {
		b := pub[i].Bytes()
		out[i] = fmt.Sprintf("%x", b[:])
	}
	return out
}

func decodePublic(hexPub []string) ([]fr.Element, error) {
	out := make([]fr.Element, len(hexPub))
	for i, h := range hexPub {
		raw, err := hex.DecodeString(h)
		if err != nil {
			return nil, fmt.Errorf("public input %d: %w", i, err)
		}
		if err := out[i].SetBytesCanonical(raw); err != nil {
			return nil, fmt.Errorf("public input %d: %w", i, err)
		}
	}
	return out, nil
}
