// Command zkrownn-bench regenerates the paper's evaluation artifacts:
//
//	Table I  — per-circuit zkSNARK metrics (#constraints, setup/prove/
//	           verify runtimes, key and proof sizes) for every individual
//	           circuit and both end-to-end extraction circuits.
//	Table II — the DNN benchmark architectures.
//
// Absolute runtimes depend on the host (the paper used a 64-core
// AMD 3990X); the shapes — constant 128 B proofs, millisecond verification,
// VK growing with the public inputs, prover/setup dominating — reproduce
// at any scale. Three scales are provided:
//
//	-scale tiny    seconds-fast smoke sizes (CI)
//	-scale default paper shapes at reduced dimensions (minutes)
//	-scale paper   the paper's exact dimensions (hours on small hosts,
//	               heavy memory: the MLP circuit exceeds 2M constraints)
//
// Use -row to run a single row and -table2 to print the architectures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/core"
	"zkrownn/internal/engine"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/groth16"
	"zkrownn/internal/obs"
	"zkrownn/internal/r1cs"
)

type rowSpec struct {
	name  string
	build func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error)
}

type sizes struct {
	matN     int // MatMult: N×N
	convIn   int // Conv3D: convIn×convIn×3
	convOut  int
	vecN     int // 1-D ops
	avgN     int // Average2D: N×N
	sigN     int
	mlpIn    int
	mlpHid   int
	bits     int
	triggers int
	cnnIn    int
	cnnOut   int
}

func scaleSizes(scale string) (sizes, error) {
	switch scale {
	case "tiny":
		return sizes{
			matN: 8, convIn: 8, convOut: 4, vecN: 16, avgN: 8, sigN: 8,
			mlpIn: 32, mlpHid: 16, bits: 8, triggers: 2, cnnIn: 8, cnnOut: 4,
		}, nil
	case "default":
		return sizes{
			matN: 32, convIn: 16, convOut: 8, vecN: 128, avgN: 32, sigN: 32,
			mlpIn: 196, mlpHid: 64, bits: 32, triggers: 2, cnnIn: 16, cnnOut: 8,
		}, nil
	case "paper":
		// Table I: 128×128 2-D ops, length-128 1-D ops, 32×32×3 conv with
		// 32 channels / 3×3 / stride 2; MLP 784-512; CNN per Table II.
		return sizes{
			matN: 128, convIn: 32, convOut: 32, vecN: 128, avgN: 128, sigN: 128,
			mlpIn: 784, mlpHid: 512, bits: 32, triggers: 4, cnnIn: 32, cnnOut: 32,
		}, nil
	}
	return sizes{}, fmt.Errorf("unknown scale %q (tiny|default|paper)", scale)
}

func main() {
	var (
		scale     = flag.String("scale", "default", "benchmark scale: tiny, default, or paper")
		row       = flag.String("row", "", `comma-separated Table I rows to run (matmult, conv3d, relu, average2d, sigmoid, threshold, ber, mnist-mlp, cifar10-cnn, batched-extraction-k1, batched-extraction-k4, aggregate-n16, aggregate-n256; paper scale adds paper-mlp-1m); empty runs all`)
		compareTo = flag.String("compare", "", "print per-row prove/setup/RSS deltas of this run against a previous report (e.g. the committed BENCH_groth16.json)")
		table2    = flag.Bool("table2", false, "print Table II (benchmark architectures) and exit")
		seed      = flag.Int64("seed", 1, "deterministic workload seed")
		fracBits  = flag.Int("frac-bits", 16, "fixed-point fraction bits")
		magBits   = flag.Int("mag-bits", 44, "fixed-point magnitude bound bits (range-check width)")
		triggers  = flag.Int("triggers", 0, "override the trigger-set size of the end-to-end rows")
		repeat    = flag.Int("repeat", 1, "run each row this many times; repeats reuse keys via the engine's digest cache")
		jsonOut   = flag.String("json", "BENCH_groth16.json", `write machine-readable per-row metrics to this file ("" disables)`)
		keyCache  = flag.String("keycache", "", "key-cache directory shared across bench invocations")
		procs     = flag.String("procs", "", `comma-separated GOMAXPROCS values to run the whole table at (e.g. "1,4"); empty keeps the ambient setting`)
		stream    = flag.Bool("stream", false, "prove out-of-core: spill proving keys to disk and stream them back in bounded windows (engine memory budget of 1 byte)")
		memBudget = flag.Int64("mem-budget", 0, "engine per-circuit key memory budget in bytes; circuits whose raw proving key exceeds it stream from disk (0 disables; -stream is shorthand for 1)")
		phases    = flag.Bool("phases", false, "trace each run and record per-phase prover timings (phase_ms) in the JSON report")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON timeline of the last sampled run to this file (implies per-run tracing)")
	)
	flag.Parse()

	procsList, err := parseProcs(*procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *table2 {
		printTableII()
		return
	}

	sz, err := scaleSizes(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *triggers > 0 {
		sz.triggers = *triggers
	}
	p := fixpoint.Params{FracBits: *fracBits, MagBits: *magBits}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	rows := []rowSpec{
		{"matmult", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.MatMultCircuit(p, sz.matN, rng)
		}},
		{"conv3d", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.Conv3DCircuit(p, gadgets.Conv3DShape{
				InC: 3, InH: sz.convIn, InW: sz.convIn, OutC: sz.convOut, K: 3, S: 2,
			}, rng)
		}},
		{"relu", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.ReLUCircuit(p, sz.vecN, rng)
		}},
		{"average2d", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.Average2DCircuit(p, sz.avgN, rng)
		}},
		{"sigmoid", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.SigmoidCircuit(p, sz.sigN, rng)
		}},
		{"threshold", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.HardThresholdingCircuit(p, sz.vecN, rng)
		}},
		{"ber", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.BERCircuit(p, sz.vecN, 2, rng)
		}},
		{"mnist-mlp", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.BenchMLPExtractionCircuit(p, sz.mlpIn, sz.mlpHid, sz.bits, sz.triggers, rng)
		}},
		{"cifar10-cnn", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.BenchCNNExtractionCircuit(p, gadgets.Conv3DShape{
				InC: 3, InH: sz.cnnIn, InW: sz.cnnIn, OutC: sz.cnnOut, K: 3, S: 2,
			}, sz.bits, sz.triggers, rng)
		}},
		// Batched multi-claim rows: one proof carrying K ownership claims
		// over the MNIST-MLP architecture. prove_per_claim_seconds is the
		// amortization headline — the k=1 row is the in-family baseline.
		{"batched-extraction-k1", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.BenchBatchedMLPExtractionCircuit(p, sz.mlpIn, sz.mlpHid, sz.bits, sz.triggers, 1, rng)
		}},
		{"batched-extraction-k4", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			return core.BenchBatchedMLPExtractionCircuit(p, sz.mlpIn, sz.mlpHid, sz.bits, sz.triggers, 4, rng)
		}},
	}
	if *scale == "paper" {
		// The paper-tier headline: a 1024×1024 dense layer, so the
		// extraction circuit binds 1,048,576 suspect-model weights
		// (≈5.5M constraints, ~750 MiB raw proving key). One trigger
		// keeps the forward-pass share small; the weight extraction
		// dominates. Run it alone with -row paper-mlp-1m under an
		// explicit -mem-budget so the whole pipeline stays out-of-core.
		rows = append(rows, rowSpec{"paper-mlp-1m", func(p fixpoint.Params, rng *rand.Rand) (*core.Artifact, error) {
			art, err := core.BenchMLPExtractionCircuit(p, 1024, 1024, sz.bits, 1, rng)
			if err != nil {
				return nil, err
			}
			art.Name = "paper-mlp-1m"
			return art, nil
		}})
	}

	rowFilter, err := parseRowFilter(*row, rows, "aggregate-n16", "aggregate-n256")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// -repeat runs of one row are adjacent, so a 2-entry cache serves
	// every repeat while keeping at most two (potentially huge) proving
	// keys resident during a full-table run. A -procs sweep revisits
	// every row once per setting, so it needs the whole table resident:
	// only the first pass then pays trusted setup and the sweep compares
	// prove/verify times against identical keys.
	cacheEntries := 2
	if len(procsList) > 1 {
		cacheEntries = len(rows)
	}
	budget := *memBudget
	if *stream && budget <= 0 {
		budget = 1
	}
	eng := engine.New(engine.Options{
		CacheDir:     *keyCache,
		CacheEntries: cacheEntries,
		MemoryBudget: budget,
	})
	defer eng.Close()
	report := benchReport{
		Scale:      *scale,
		FracBits:   *fracBits,
		GoMaxProcs: procsList[0],
		Streamed:   budget > 0,
		Rows:       []benchRecord{},
	}
	// lastTrace keeps the most recent run's span timeline for -trace; each
	// run records into a fresh trace so phase_ms stays per-run.
	var lastTrace *obs.Trace
	for _, np := range procsList {
		runtime.GOMAXPROCS(np)
		fmt.Printf("ZKROWNN Table I reproduction — scale=%s, fixed-point f=%d, GOMAXPROCS=%d\n",
			*scale, *fracBits, runtime.GOMAXPROCS(0))
		fmt.Println(core.Header())
		fmt.Println(strings.Repeat("-", 112))
		for _, spec := range rows {
			if rowFilter != nil && !rowFilter[strings.ToLower(spec.name)] {
				continue
			}
			rng := rand.New(rand.NewSource(*seed))
			// Compile once per row; every repeat reuses the compiled
			// system and re-derives its witness with the recorded solver
			// program (solve_ms), so the JSON records both halves of the
			// compile-once / solve-many split.
			compileStart := time.Now()
			art, err := spec.build(p, rng)
			compileTime := time.Since(compileStart)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: build: %v\n", spec.name, err)
				os.Exit(1)
			}
			pkRaw, err := groth16.RawPKSizeBytes(art.System)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: raw key size: %v\n", spec.name, err)
				os.Exit(1)
			}
			csrRaw := r1cs.CSRRawSizeBytes(art.System)
			// The pipeline re-solves from the recorded solver program;
			// the builder's eager witness would only pad peak RSS
			// (NbWires×32 bytes held across every sampled repeat).
			art.Witness = nil
			for r := 0; r < *repeat; r++ {
				// In streamed mode the disk tier is the authoritative key
				// store, so evicting the memory tier before sampling costs
				// only a re-index of the spilled key — and stops an earlier
				// row's retained compiled system from padding this row's
				// peak. (In-memory mode keeps the cache: without a disk
				// tier, eviction would mean re-running trusted setup.)
				if budget > 0 {
					eng.DropMemoryCache()
				}
				// Return freed pages to the OS so each run's peak-RSS
				// sample reflects its own allocations, not a previous
				// row's high-water mark the runtime is still holding.
				debug.FreeOSMemory()
				var tr *obs.Trace
				if *phases || *traceOut != "" {
					tr = obs.NewTrace()
				}
				sampler := startRSSSampler()
				pl, err := core.RunPipelineTraced(eng, art, rng, tr)
				peakRSS := sampler.Stop()
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s: pipeline: %v\n", spec.name, err)
					os.Exit(1)
				}
				pl.Metrics.CompileTime = compileTime
				fmt.Println(pl.Metrics.String())
				rec := recordOf(&pl.Metrics)
				rec.Scale = *scale
				rec.GoMaxProcs = runtime.GOMAXPROCS(0)
				rec.PKRawBytes = pkRaw
				rec.CSRRawBytes = csrRaw
				rec.PeakRSSBytes = peakRSS
				rec.Streamed = pl.Metrics.Streamed
				if tr != nil {
					rec.PhaseMS = phaseMS(tr)
					lastTrace = tr
				}
				report.Rows = append(report.Rows, rec)
				// After a fully out-of-core first repeat the engine's disk
				// tier holds the CSR section file, and later repeats only
				// solve and stream — so release this process's resident CSR
				// arrays (keeping the solver tape) and let the steady-state
				// repeats measure the prover's true bounded footprint.
				if r == 0 && *repeat > 1 && !art.System.Stripped() && eng.SpillsConstraintSystem(art.System) {
					art.System = art.System.StripForSolve()
				}
			}
		}
	}

	// Registry-scale aggregation rows: N proofs of the BER circuit
	// folded into one O(log N) SnarkPack-style artifact. prove_seconds
	// records the fold (aggregation + the engine's self-check) and
	// verify_per_proof_seconds the amortized aggregate verification; the
	// headline is verify_per_proof_seconds dropping below the same
	// circuit's single-proof verify_seconds as N grows.
	for _, n := range []int{16, 256} {
		name := fmt.Sprintf("aggregate-n%d", n)
		if rowFilter != nil && !rowFilter[name] {
			continue
		}
		rec, err := runAggregateRow(eng, p, sz, n, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		rec.Name = name
		rec.Scale = *scale
		rec.GoMaxProcs = runtime.GOMAXPROCS(0)
		fmt.Printf("%-24s fold %6.3fs  aggregate verify %.4fs over %3d proofs (%.5fs/proof vs %.5fs single, artifact %d B)\n",
			name, rec.ProveSeconds, rec.VerifyPerProofSeconds*float64(n), n,
			rec.VerifyPerProofSeconds, rec.VerifySeconds, rec.ProofBytes)
		report.Rows = append(report.Rows, rec)
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %d setups (%.2fs), %d cache hits (%d mem, %d disk), %d proofs (%.2fs, %d streamed, %d spilled), %d verifies (%.3fs)\n",
		st.Setups, st.SetupTime.Seconds(), st.MemHits+st.DiskHits, st.MemHits, st.DiskHits,
		st.Proves, st.ProveTime.Seconds(), st.StreamProves, st.SpillProves, st.Verifies, st.VerifyTime.Seconds())

	if *compareTo != "" {
		if err := printComparison(*compareTo, &report); err != nil {
			fmt.Fprintf(os.Stderr, "-compare %s: %v\n", *compareTo, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, &report, rowFilter != nil); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *jsonOut)
	}
	if *traceOut != "" {
		if lastTrace == nil {
			fmt.Fprintf(os.Stderr, "-trace: no run sampled, nothing to write\n")
			os.Exit(1)
		}
		if err := writeTrace(*traceOut, lastTrace); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (load in chrome://tracing or Perfetto)\n", *traceOut)
	}
}

// phaseMS flattens a run's span totals into the phase_ms JSON map,
// keeping only phase-level spans (at most one '/' in the name — e.g.
// engine/prove, msm/A, quotient/ifft-a) and dropping the per-window,
// per-level, and per-chunk task spans, whose lane-parallel durations sum
// to CPU time rather than wall time.
func phaseMS(tr *obs.Trace) map[string]float64 {
	out := make(map[string]float64)
	for name, d := range tr.Totals() {
		if strings.Count(name, "/") > 1 {
			continue
		}
		out[name] = float64(d.Microseconds()) / 1e3
	}
	return out
}

func writeTrace(path string, tr *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseRowFilter parses the -row flag into a lowercase name set, nil
// when the flag is empty (run everything). Unknown names are an error —
// a typo would otherwise silently benchmark nothing.
func parseRowFilter(s string, rows []rowSpec, extra ...string) (map[string]bool, error) {
	if s == "" {
		return nil, nil
	}
	known := make(map[string]bool, len(rows)+len(extra))
	for _, r := range rows {
		known[strings.ToLower(r.name)] = true
	}
	for _, name := range extra {
		known[strings.ToLower(name)] = true
	}
	out := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		name := strings.ToLower(strings.TrimSpace(part))
		if name == "" {
			continue
		}
		if !known[name] {
			return nil, fmt.Errorf("-row: unknown row %q (paper-mlp-1m needs -scale paper)", name)
		}
		out[name] = true
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-row: no row names in %q", s)
	}
	return out, nil
}

// parseProcs parses the -procs flag into the GOMAXPROCS sweep; an empty
// flag keeps the ambient setting as a single run.
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return []int{runtime.GOMAXPROCS(0)}, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("-procs: %q is not a positive integer", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// benchReport is the machine-readable Table I artifact tracked across
// PRs (BENCH_groth16.json). The top-level gomaxprocs records the first
// run of a -procs sweep; each row carries the setting it ran at.
type benchReport struct {
	Scale      string `json:"scale"`
	FracBits   int    `json:"frac_bits"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Streamed records whether the run had an engine memory budget
	// (rows whose raw proving key exceeded it proved out-of-core).
	Streamed bool          `json:"streamed"`
	Rows     []benchRecord `json:"rows"`
}

type benchRecord struct {
	Name string `json:"name"`
	// Scale is the -scale tier this row ran at. Rows from different
	// tiers coexist in one report: a -row–filtered run merges into the
	// existing file by (name, scale, gomaxprocs) instead of replacing
	// it, so the paper-tier rows survive a default-tier regeneration.
	Scale       string `json:"scale,omitempty"`
	Constraints int    `json:"constraints"`
	NbPublic    int    `json:"nb_public"`
	NbPrivate   int    `json:"nb_private"`
	GoMaxProcs  int    `json:"gomaxprocs"`
	// CompileMS is the one-time circuit-synthesis cost (builder →
	// CompiledSystem) of the row, paid once per architecture; SolveMS is
	// the per-proof witness generation (solver-program replay). The
	// compile-once / solve-many split shows as solve_ms ≪ compile_ms.
	CompileMS     float64 `json:"compile_ms"`
	SolveMS       float64 `json:"solve_ms"`
	SetupSeconds  float64 `json:"setup_seconds"`
	SetupCached   bool    `json:"setup_cached"`
	ProveSeconds  float64 `json:"prove_seconds"`
	VerifySeconds float64 `json:"verify_seconds"`
	// BundleSlots is the row's ownership-claim count (K for the
	// batched-extraction rows, 1 elsewhere); ProvePerClaimSeconds is
	// prove_seconds / bundle_slots — the amortized cost one suspect-model
	// claim pays inside a batch.
	BundleSlots          int     `json:"bundle_slots"`
	ProvePerClaimSeconds float64 `json:"prove_per_claim_seconds"`
	// VerifyPerProofSeconds (aggregate-n* rows) is the amortized cost of
	// checking one member through the O(log N) aggregate: aggregate
	// verification time / N. The headline is this dropping below the
	// same circuit's single-proof verify_seconds.
	VerifyPerProofSeconds float64 `json:"verify_per_proof_seconds,omitempty"`
	PKBytes               int64   `json:"pk_bytes"`
	VKBytes               int64   `json:"vk_bytes"`
	ProofBytes            int     `json:"proof_bytes"`
	// PKRawBytes is the raw uncompressed proving-key encoding size —
	// the prover's full working set if it held the key in RAM, and the
	// baseline peak_rss_bytes is judged against in streamed mode.
	PKRawBytes int64 `json:"pk_raw_bytes"`
	// CSRRawBytes is the section-framed on-disk encoding size of the
	// row's compiled constraint system (the CSR file the out-of-core
	// prover streams row windows from). Together with pk_raw_bytes it
	// is the resident footprint a fully in-memory prover would carry.
	CSRRawBytes int64 `json:"csr_raw_bytes"`
	// PeakRSSBytes is the process's peak resident-set size sampled over
	// this row's setup+prove+verify run (0 where /proc is unavailable).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	// Streamed marks rows proved out-of-core.
	Streamed bool `json:"streamed"`
	// FieldBackend names the scalar-field multiplication backend the row
	// ran on ("adx" for the amd64 assembly kernels, "generic" for the
	// portable core) — numbers are only comparable across runs with the
	// same backend.
	FieldBackend string `json:"field_backend"`
	// PhaseMS breaks the row's wall time down by prover phase (-phases):
	// span-name → milliseconds, e.g. engine/solve, keys/setup, msm/A,
	// quotient/ifft-a, verify/pairing. Nested phases overlap their
	// parents (msm/A runs inside engine/prove), so entries do not sum to
	// a total.
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`
}

// runAggregateRow proves one BER-circuit proof, duplicates it N ways
// (aggregation is indifferent to duplicates — each slot is a full
// member), folds the set on the engine, and measures the three costs a
// registry cares about: the fold, the single-proof baseline check, and
// the aggregate check. The aggregation SRS is warmed with an untimed
// fold so prove_seconds measures the fold itself, not the one-time
// commitment-key build.
func runAggregateRow(eng *engine.Engine, p fixpoint.Params, sz sizes, n int, seed int64) (benchRecord, error) {
	rng := rand.New(rand.NewSource(seed))
	art, err := core.BERCircuit(p, sz.vecN, 2, rng)
	if err != nil {
		return benchRecord{}, err
	}
	res, err := eng.Prove(art.Request(nil))
	if err != nil {
		return benchRecord{}, err
	}
	vk := res.Keys.VK
	proofs := make([]*groth16.Proof, n)
	publics := make([][]fr.Element, n)
	for i := range proofs {
		proofs[i] = res.Proof
		publics[i] = res.PublicInputs
	}

	start := time.Now()
	if err := groth16.Verify(vk, res.Proof, res.PublicInputs); err != nil {
		return benchRecord{}, err
	}
	single := time.Since(start)

	if _, _, err := eng.AggregateMany(vk, proofs, publics); err != nil {
		return benchRecord{}, err
	}
	start = time.Now()
	agg, svk, err := eng.AggregateMany(vk, proofs, publics)
	if err != nil {
		return benchRecord{}, err
	}
	fold := time.Since(start)

	start = time.Now()
	if err := groth16.VerifyAggregate(svk, vk, agg, publics); err != nil {
		return benchRecord{}, err
	}
	aggVerify := time.Since(start)

	return benchRecord{
		Constraints:           art.System.NbConstraints(),
		NbPublic:              art.System.NbPublic - 1,
		SetupCached:           res.CacheHit,
		SetupSeconds:          res.SetupTime.Seconds(),
		BundleSlots:           1,
		ProveSeconds:          fold.Seconds(),
		ProvePerClaimSeconds:  fold.Seconds(),
		VerifySeconds:         single.Seconds(),
		VerifyPerProofSeconds: aggVerify.Seconds() / float64(n),
		ProofBytes:            int(agg.SizeBytes()),
		VKBytes:               vk.SizeBytes(),
		FieldBackend:          fr.MulBackend(),
	}, nil
}

func recordOf(m *core.Metrics) benchRecord {
	slots := m.Slots
	if slots < 1 {
		slots = 1
	}
	return benchRecord{
		Name:                 m.Name,
		Constraints:          m.NbConstraints,
		NbPublic:             m.NbPublic,
		NbPrivate:            m.NbPrivate,
		CompileMS:            float64(m.CompileTime.Microseconds()) / 1e3,
		SolveMS:              float64(m.SolveTime.Microseconds()) / 1e3,
		SetupSeconds:         m.SetupTime.Seconds(),
		SetupCached:          m.SetupCached,
		ProveSeconds:         m.ProveTime.Seconds(),
		VerifySeconds:        m.VerifyTime.Seconds(),
		BundleSlots:          slots,
		ProvePerClaimSeconds: m.ProveTime.Seconds() / float64(slots),
		PKBytes:              m.PKSize,
		VKBytes:              m.VKSize,
		ProofBytes:           m.ProofSize,
		FieldBackend:         fr.MulBackend(),
	}
}

// rssSampler polls the process resident-set size on a short tick while
// one benchmark row runs, tracking the high-water mark. Sampling reads
// /proc/self/statm (resident pages × page size) — the streamed prover
// deliberately reads key files with pread rather than mmap so that key
// bytes flow through the kernel page cache without counting against the
// process RSS this sampler measures.
type rssSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Int64
}

func startRSSSampler() *rssSampler {
	s := &rssSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			if r := currentRSS(); r > s.peak.Load() {
				s.peak.Store(r)
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// Stop halts sampling (taking one final sample) and returns the peak
// observed RSS in bytes.
func (s *rssSampler) Stop() int64 {
	close(s.stop)
	<-s.done
	return s.peak.Load()
}

// currentRSS returns the resident-set size in bytes, or 0 on platforms
// without /proc.
func currentRSS() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

func readReport(path string) (*benchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// rowScale resolves a row's scale tier, falling back to the report
// header for rows written before the per-row field existed.
func rowScale(rep *benchReport, r *benchRecord) string {
	if r.Scale != "" {
		return r.Scale
	}
	return rep.Scale
}

func mergeKey(rep *benchReport, r *benchRecord) string {
	return fmt.Sprintf("%s|%s|%d", strings.ToLower(r.Name), rowScale(rep, r), r.GoMaxProcs)
}

// writeReport writes the report to path. A full-table run replaces the
// file wholesale; a -row–filtered run (merge) splices its rows into the
// existing report by (name, scale, gomaxprocs) — every repeat of a
// matched key is replaced in place, unmatched existing rows (other
// tiers, other rows) survive, and brand-new keys append at the end. The
// header keeps the existing full run's metadata in merge mode.
func writeReport(path string, rep *benchReport, merge bool) error {
	out := rep
	if merge {
		if old, err := readReport(path); err == nil {
			out = mergeReports(old, rep)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("merging into existing report: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func mergeReports(old, fresh *benchReport) *benchReport {
	byKey := make(map[string][]benchRecord)
	var order []string
	for i := range fresh.Rows {
		k := mergeKey(fresh, &fresh.Rows[i])
		if _, seen := byKey[k]; !seen {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], fresh.Rows[i])
	}
	merged := *old
	merged.Rows = nil
	spliced := make(map[string]bool)
	for i := range old.Rows {
		k := mergeKey(old, &old.Rows[i])
		rows, replace := byKey[k]
		if !replace {
			merged.Rows = append(merged.Rows, old.Rows[i])
			continue
		}
		if !spliced[k] {
			spliced[k] = true
			merged.Rows = append(merged.Rows, rows...)
		}
	}
	for _, k := range order {
		if !spliced[k] {
			merged.Rows = append(merged.Rows, byKey[k]...)
		}
	}
	return &merged
}

// rowStats aggregates one merge key's repeats for comparison: fastest
// prove and verify, the uncached setup if any repeat paid one, and the
// lowest peak RSS (later repeats skip setup, so their peak reflects the
// steady-state prover footprint).
type rowStats struct {
	name    string
	scale   string
	procs   int
	prove   float64
	setup   float64
	peakRSS int64
}

func collectStats(rep *benchReport) (map[string]*rowStats, []string) {
	stats := make(map[string]*rowStats)
	var order []string
	for i := range rep.Rows {
		r := &rep.Rows[i]
		k := fmt.Sprintf("%s|%d", strings.ToLower(r.Name), r.GoMaxProcs)
		s, ok := stats[k]
		if !ok {
			s = &rowStats{name: r.Name, scale: rowScale(rep, r), procs: r.GoMaxProcs,
				prove: r.ProveSeconds, peakRSS: r.PeakRSSBytes}
			stats[k] = s
			order = append(order, k)
		}
		if r.ProveSeconds < s.prove {
			s.prove = r.ProveSeconds
		}
		if !r.SetupCached && (s.setup == 0 || r.SetupSeconds < s.setup) {
			s.setup = r.SetupSeconds
		}
		if r.PeakRSSBytes > 0 && (s.peakRSS == 0 || r.PeakRSSBytes < s.peakRSS) {
			s.peakRSS = r.PeakRSSBytes
		}
	}
	return stats, order
}

// printComparison prints per-row prove/setup/peak-RSS deltas of this
// run against a previous report, matching rows by (name, gomaxprocs).
// Scale or fixed-point mismatches don't suppress the table — they are
// loudly warned instead, since cross-tier deltas are not regressions.
func printComparison(oldPath string, fresh *benchReport) error {
	old, err := readReport(oldPath)
	if err != nil {
		return err
	}
	fmt.Printf("\ncomparison vs %s\n", oldPath)
	if old.Scale != fresh.Scale {
		fmt.Printf("  warning: scale mismatch (%s vs this run's %s) — deltas below compare different circuit sizes\n",
			old.Scale, fresh.Scale)
	}
	if old.FracBits != fresh.FracBits {
		fmt.Printf("  warning: frac_bits mismatch (%d vs %d)\n", old.FracBits, fresh.FracBits)
	}
	if old.Streamed != fresh.Streamed {
		fmt.Printf("  warning: streamed mismatch (%v vs %v) — memory numbers are not comparable\n",
			old.Streamed, fresh.Streamed)
	}
	oldStats, oldOrder := collectStats(old)
	newStats, newOrder := collectStats(fresh)

	delta := func(o, n float64) string {
		if o == 0 {
			return "     -"
		}
		return fmt.Sprintf("%+5.1f%%", 100*(n-o)/o)
	}
	matched := false
	for _, k := range newOrder {
		n := newStats[k]
		o, ok := oldStats[k]
		if !ok {
			continue
		}
		if !matched {
			matched = true
			fmt.Printf("  %-24s %4s  %21s  %21s  %23s\n",
				"row", "np", "prove(s) old->new", "setup(s) old->new", "peakRSS(MiB) old->new")
		}
		if o.scale != n.scale {
			fmt.Printf("  warning: %s ran at scale %s before, %s now\n", n.name, o.scale, n.scale)
		}
		fmt.Printf("  %-24s %4d  %6.2f->%-6.2f %6s  %6.2f->%-6.2f %6s  %7d->%-7d %6s\n",
			n.name, n.procs,
			o.prove, n.prove, delta(o.prove, n.prove),
			o.setup, n.setup, delta(o.setup, n.setup),
			o.peakRSS>>20, n.peakRSS>>20, delta(float64(o.peakRSS), float64(n.peakRSS)))
	}
	if !matched {
		fmt.Println("  no rows in common (by name and gomaxprocs)")
	}
	for _, k := range newOrder {
		if _, ok := oldStats[k]; !ok {
			fmt.Printf("  new row (not in %s): %s @ gomaxprocs=%d\n", oldPath, newStats[k].name, newStats[k].procs)
		}
	}
	// Baseline rows absent from this run are not regressions, but
	// silently dropping them would let a sweep that quietly stopped
	// covering a tier read as "all clear" — name each one.
	for _, k := range oldOrder {
		if _, ok := newStats[k]; !ok {
			fmt.Printf("  baseline row not re-run (in %s only): %s @ gomaxprocs=%d\n",
				oldPath, oldStats[k].name, oldStats[k].procs)
		}
	}
	return nil
}

func printTableII() {
	fmt.Println("Table II — DNN benchmark architectures (paper notation)")
	fmt.Println()
	fmt.Println("Dataset   Architecture")
	fmt.Println("MNIST     784 - FC(512) - FC(512) - FC(10)")
	fmt.Println("CIFAR10   3x32x32 - C(32,3,2) - C(32,3,1) - MP(2,1)")
	fmt.Println("          C(64,3,1) - C(64,3,1) - MP(2,1) - FC(512) - FC(10)")
	fmt.Println()
	fmt.Println("Both models are constructed by internal/nn (NewMNISTMLP /")
	fmt.Println("NewCIFAR10CNN); the watermark is embedded after the first")
	fmt.Println("hidden layer, so the extraction circuits evaluate that prefix.")
}
