// Command zkrownn-server runs the ZKROWNN proof service: an HTTP JSON
// API exposing the prover engine as an online ownership-proof endpoint.
//
//	zkrownn-server -addr :8080 -registry registry -keycache keys
//
// Endpoints (see README "Running the proof service" for the full API):
//
//	GET  /healthz                  liveness
//	GET  /v1/stats                 engine + queue + batcher counters
//	POST /v1/models                register an ownership circuit
//	GET  /v1/models                list the registry
//	GET  /v1/models/{id}           one entry + verifying key
//	POST /v1/models/{id}/prove     submit an async proof job (202/429)
//	GET  /v1/jobs/{id}             poll a job
//	GET  /v1/jobs/{id}/proof       fetch the finished proof (binary)
//	GET  /v1/jobs/{id}/trace       Chrome trace-event timeline (trace=true jobs)
//	POST /v1/models/{id}/verify    verify a proof (micro-batched)
//	GET  /metrics                  Prometheus text exposition
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/.
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight HTTP requests and
// prove jobs finish, queued jobs are failed with a shutdown error, and
// the engine flushes its disk-cache writes before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zkrownn/internal/engine"
	"zkrownn/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	registryDir := flag.String("registry", "", "directory persisting verifying keys + model metadata across restarts (empty: memory only)")
	keyCache := flag.String("keycache", "", "prover-engine key cache directory (empty: memory only)")
	cacheEntries := flag.Int("cache-entries", 16, "in-memory key cache entries (negative: unbounded)")
	memBudget := flag.Int64("mem-budget", 0, "per-circuit prover memory budget in bytes: circuits whose raw proving key exceeds it stream from disk, and when the constraint system + witness exceed it too the prover runs fully out-of-core (0 disables)")
	workers := flag.Int("workers", 0, "prover worker pool size (0: GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "async prove queue depth (overflow answers 429)")
	proveBatch := flag.Int("prove-batch", 8, "max queued jobs folded into one ProveMany batch")
	verifyWindow := flag.Duration("verify-window", 2*time.Millisecond, "micro-batch window for concurrent verifications")
	verifyBatch := flag.Int("verify-batch", 32, "max verifications folded into one BatchVerify")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON (default: logfmt-style text)")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	flag.Parse()

	logf := log.Printf
	var logger *slog.Logger
	if *quiet {
		logf = func(string, ...any) {}
	} else if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	srv, err := service.New(service.Options{
		EngineOptions: engine.Options{
			CacheDir:     *keyCache,
			CacheEntries: *cacheEntries,
			MemoryBudget: *memBudget,
			Workers:      *workers,
		},
		RegistryDir:  *registryDir,
		QueueDepth:   *queueDepth,
		ProveBatch:   *proveBatch,
		VerifyWindow: *verifyWindow,
		VerifyBatch:  *verifyBatch,
		Logf:         logf,
		Logger:       logger,
		EnablePprof:  *pprofOn,
	})
	if err != nil {
		log.Fatalf("zkrownn-server: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("zkrownn-server: %v", err)
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Serve returns ErrServerClosed as soon as Shutdown is *called*, so
	// main must wait for Shutdown to *finish* draining in-flight
	// requests before tearing down the job queue and engine behind them.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		logf("zkrownn-server: shutdown signal, draining (budget %s)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logf("zkrownn-server: http shutdown: %v", err)
		}
	}()

	fmt.Printf("zkrownn-server: proof service listening on %s\n", ln.Addr())
	err = httpSrv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("zkrownn-server: %v", err)
	}
	stop() // unblock the shutdown goroutine if Serve ended on its own
	<-shutdownDone
	// In-flight HTTP work is done; drain the job queue and the engine.
	if err := srv.Close(); err != nil {
		log.Fatalf("zkrownn-server: close: %v", err)
	}
	logf("zkrownn-server: drained, bye")
}
