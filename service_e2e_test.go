package zkrownn_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"zkrownn"
	"zkrownn/client"
)

// TestProofServiceEndToEnd drives the whole networked flow through the
// public surface only — zkrownn.NewProofService on the server side, the
// zkrownn/client package on the wire — which pins the client DTOs to
// the server's JSON API. Owner registers + proves; a third party
// verifies concurrently and the verifies must coalesce into one
// batched pairing product (asserted via /v1/stats).
func TestProofServiceEndToEnd(t *testing.T) {
	srv, err := zkrownn.NewProofService(zkrownn.ProofServiceOptions{
		VerifyWindow: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rng := rand.New(rand.NewSource(11))
	ds, err := zkrownn.SyntheticMNIST(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	model := zkrownn.NewMLP(ds.Dim, []int{4}, ds.Classes, rng)
	key, err := zkrownn.GenerateKey(model, ds, zkrownn.KeyOptions{Bits: 4, Triggers: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}

	// Owner: register once (trusted setup happens here)...
	reg, err := c.RegisterModel(ctx, model, key, client.RegisterOptions{
		Name: "e2e-mlp", MaxErrors: len(key.Signature),
	})
	if err != nil {
		t.Fatal(err)
	}
	if reg.ModelID == "" || reg.VK == nil || reg.Constraints == 0 {
		t.Fatalf("registration incomplete: %+v", reg)
	}

	// ...then prove asynchronously. Setup must come from the key cache.
	ticket, err := c.SubmitProve(ctx, reg.ModelID, nil)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.WaitForProof(ctx, ticket.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !job.SetupCached {
		t.Fatal("prove job missed the key cache despite registration")
	}
	if job.Proof == nil || len(job.PublicInputs) == 0 {
		t.Fatal("job finished without proof material")
	}

	// The binary download must match the JSON envelope.
	raw, err := c.FetchProofBinary(ctx, ticket.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !raw.Ar.Equal(&job.Proof.Ar) || !raw.Bs.Equal(&job.Proof.Bs) || !raw.Krs.Equal(&job.Proof.Krs) {
		t.Fatal("binary proof differs from JSON proof")
	}

	// Third party: concurrent verifications, which must micro-batch.
	const verifiers = 3
	verdicts := make([]*client.VerifyResult, verifiers)
	var wg sync.WaitGroup
	for i := 0; i < verifiers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Verify(ctx, reg.ModelID, job.Proof, job.PublicInputs)
			if err != nil {
				t.Errorf("verify %d: %v", i, err)
				return
			}
			verdicts[i] = v
		}(i)
	}
	wg.Wait()
	coalesced := false
	for i, v := range verdicts {
		if v == nil {
			t.Fatalf("verifier %d got no verdict", i)
		}
		if !v.Valid || !v.Claim {
			t.Fatalf("verifier %d rejected honest proof: %+v", i, v)
		}
		if v.BatchSize >= 2 {
			coalesced = true
		}
	}
	if !coalesced {
		t.Fatal("concurrent verifies did not coalesce")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Service.VerifyBatchCalls < 1 || stats.Service.VerifyMaxBatch < 2 {
		t.Fatalf("stats show no batched verification: %+v", stats.Service)
	}
	if stats.Engine.Setups != 1 {
		t.Fatalf("engine ran %d setups, want exactly 1 (registration)", stats.Engine.Setups)
	}

	// Queue-full surfaces as the typed sentinel. Depth is generous here,
	// so just check the registry listing instead of forcing a 429.
	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || models[0].ModelID != reg.ModelID || !models[0].CanProve {
		t.Fatalf("registry listing wrong: %+v", models)
	}
}

// TestProofServiceBundleEndToEnd pins the bundle wire shapes between
// zkrownn/client and the server: a K-slot registration, one bundle job
// carrying distinct suspects, per-slot verdicts in the job status and
// the verify response — all through the public surface only.
func TestProofServiceBundleEndToEnd(t *testing.T) {
	const slots = 2
	srv, err := zkrownn.NewProofService(zkrownn.ProofServiceOptions{
		VerifyWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rng := rand.New(rand.NewSource(12))
	ds, err := zkrownn.SyntheticMNIST(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	model := zkrownn.NewMLP(ds.Dim, []int{4}, ds.Classes, rng)
	suspect := zkrownn.NewMLP(ds.Dim, []int{4}, ds.Classes, rng) // same arch, fresh weights
	key, err := zkrownn.GenerateKey(model, ds, zkrownn.KeyOptions{Bits: 4, Triggers: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := c.RegisterModel(ctx, model, key, client.RegisterOptions{
		Name: "e2e-bundle", MaxErrors: len(key.Signature), BundleSlots: slots,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reg.BundleSlots != slots {
		t.Fatalf("registered bundle_slots %d, want %d", reg.BundleSlots, slots)
	}

	// Slot 0 keeps the registered model, slot 1 gets the suspect.
	ticket, err := c.SubmitProveBundle(ctx, reg.ModelID, []*zkrownn.Model{nil, suspect})
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.WaitForProof(ctx, ticket.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Claims) != slots {
		t.Fatalf("job reports %d claims, want %d", len(job.Claims), slots)
	}
	for s, claim := range job.Claims {
		if !claim {
			t.Fatalf("slot %d claim 0 under full BER tolerance", s)
		}
	}

	v, err := c.Verify(ctx, reg.ModelID, job.Proof, job.PublicInputs)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid || !v.Claim || len(v.Claims) != slots {
		t.Fatalf("bundle verify verdict wrong: %+v", v)
	}

	// The whole bundle compiled one circuit and proved once.
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Service.CircuitsCompiled != 1 || stats.Engine.Proves != 1 {
		t.Fatalf("bundle cost: %d compiles / %d proves, want 1 / 1", stats.Service.CircuitsCompiled, stats.Engine.Proves)
	}
}
