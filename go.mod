module zkrownn

go 1.24
