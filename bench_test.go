// Benchmark harness: one testing.B benchmark per Table I row (and per
// pipeline phase), at dimensions small enough for `go test -bench=.` to
// finish on a laptop. cmd/zkrownn-bench regenerates the full table,
// including -scale paper for the paper's exact dimensions.
package zkrownn

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"zkrownn/internal/core"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/groth16"
)

var benchP = fixpoint.Params{FracBits: 16, MagBits: 44}

// benchPipeline measures the three Groth16 phases for one circuit.
func benchPipeline(b *testing.B, build func(rng *rand.Rand) (*core.Artifact, error)) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	art, err := build(rng)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("%s: %d constraints, %d public inputs",
		art.Name, art.System.NbConstraints(), art.System.NbPublic-1)

	var pk *groth16.ProvingKey
	var vk *groth16.VerifyingKey
	b.Run("Setup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pk, vk, err = groth16.Setup(art.System, rng)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if pk == nil {
		pk, vk, err = groth16.Setup(art.System, rng)
		if err != nil {
			b.Fatal(err)
		}
	}

	var proof *groth16.Proof
	b.Run("Prove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			proof, err = groth16.Prove(art.System, pk, art.Witness, rng)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if proof == nil {
		proof, err = groth16.Prove(art.System, pk, art.Witness, rng)
		if err != nil {
			b.Fatal(err)
		}
	}

	public := art.PublicInputs()
	b.Run("Verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := groth16.Verify(vk, proof, public); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTableI_MatMult is Table I row 1 (paper: 128×128 inputs,
// 1.10M constraints; here 16×16 for bench runtimes).
func BenchmarkTableI_MatMult(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.MatMultCircuit(benchP, 16, rng)
	})
}

// BenchmarkTableI_Conv3D is Table I row 2 (paper: 32×32×3, 32 channels,
// 3×3, stride 2; here 12×12×3 with 4 channels).
func BenchmarkTableI_Conv3D(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.Conv3DCircuit(benchP, gadgets.Conv3DShape{
			InC: 3, InH: 12, InW: 12, OutC: 4, K: 3, S: 2,
		}, rng)
	})
}

// BenchmarkTableI_ReLU is Table I row 3 (length-128 input, same as the
// paper).
func BenchmarkTableI_ReLU(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.ReLUCircuit(benchP, 128, rng)
	})
}

// BenchmarkTableI_Average2D is Table I row 4 (paper: 128×128; here
// 32×32).
func BenchmarkTableI_Average2D(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.Average2DCircuit(benchP, 32, rng)
	})
}

// BenchmarkTableI_Sigmoid is Table I row 5 (paper: length 128; here 16 —
// each sigmoid costs ~700 constraints).
func BenchmarkTableI_Sigmoid(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.SigmoidCircuit(benchP, 16, rng)
	})
}

// BenchmarkTableI_HardThresholding is Table I row 6 (length 128, as in
// the paper).
func BenchmarkTableI_HardThresholding(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.HardThresholdingCircuit(benchP, 128, rng)
	})
}

// BenchmarkTableI_BER is Table I row 7 (128-bit strings, as in the
// paper).
func BenchmarkTableI_BER(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.BERCircuit(benchP, 128, 2, rng)
	})
}

// BenchmarkTableI_MNISTMLP is Table I row 8 (paper: 784-512 first layer,
// 2.09M constraints; here 64-32 with 2 triggers).
func BenchmarkTableI_MNISTMLP(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.BenchMLPExtractionCircuit(benchP, 64, 32, 16, 2, rng)
	})
}

// BenchmarkTableI_CIFAR10CNN is Table I row 9 (paper: C(32,3,2) over
// 3×32×32, 591k constraints; here 3×12×12 with 4 channels).
func BenchmarkTableI_CIFAR10CNN(b *testing.B) {
	benchPipeline(b, func(rng *rand.Rand) (*core.Artifact, error) {
		return core.BenchCNNExtractionCircuit(benchP, gadgets.Conv3DShape{
			InC: 3, InH: 12, InW: 12, OutC: 4, K: 3, S: 2,
		}, 16, 2, rng)
	})
}

// BenchmarkProverScaling pins GOMAXPROCS and measures trusted setup and
// proving for the MNIST-MLP extraction circuit, demonstrating that the
// FFT / Setup / Prove hot paths scale with cores. Compare procs=1
// against the widest setting the host offers:
//
//	go test -bench ProverScaling -benchtime 3x
func BenchmarkProverScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	art, err := core.BenchMLPExtractionCircuit(benchP, 196, 64, 32, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("%s: %d constraints", art.Name, art.System.NbConstraints())
	for _, procs := range []int{1, 2, 4, 8} {
		if procs > 2*runtime.NumCPU() && procs != 1 {
			continue
		}
		b.Run(fmt.Sprintf("Setup/procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				if _, _, err := groth16.Setup(art.System, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	pk, _, err := groth16.Setup(art.System, rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, procs := range []int{1, 2, 4, 8} {
		if procs > 2*runtime.NumCPU() && procs != 1 {
			continue
		}
		b.Run(fmt.Sprintf("Prove/procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				if _, err := groth16.Prove(art.System, pk, art.Witness, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCachedProve measures the engine path end-to-end: the
// first iteration pays trusted setup, every subsequent one hits the key
// cache, so the steady-state number is prove-only.
func BenchmarkEngineCachedProve(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	art, err := core.BenchMLPExtractionCircuit(benchP, 64, 32, 16, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(EngineOptions{Rand: rng})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Prove(EngineRequest(art, nil)); err != nil {
			b.Fatal(err)
		}
	}
	st := eng.Stats()
	b.Logf("engine: %d setups, %d cache hits across %d proves", st.Setups, st.MemHits+st.DiskHits, st.Proves)
}

// BenchmarkAblationFracBits sweeps the fixed-point precision (DESIGN.md
// ablation 3): constraint counts and prover cost grow with range-check
// width, trading extraction fidelity for speed.
func BenchmarkAblationFracBits(b *testing.B) {
	for _, f := range []int{8, 12, 16, 20} {
		p := fixpoint.Params{FracBits: f, MagBits: f + 28}
		b.Run(frName(f), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			art, err := core.SigmoidCircuit(p, 8, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("f=%d: %d constraints", f, art.System.NbConstraints())
			pk, _, err := groth16.Setup(art.System, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := groth16.Prove(art.System, pk, art.Witness, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func frName(f int) string {
	return "f=" + string(rune('0'+f/10)) + string(rune('0'+f%10))
}

// BenchmarkAblationTriggers sweeps the trigger-set size (the dominant
// end-to-end cost factor: the feed-forward prefix is replicated per
// trigger).
func BenchmarkAblationTriggers(b *testing.B) {
	for _, t := range []int{1, 2, 4} {
		b.Run("T="+string(rune('0'+t)), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			art, err := core.BenchMLPExtractionCircuit(benchP, 32, 16, 8, t, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("T=%d: %d constraints", t, art.System.NbConstraints())
			pk, _, err := groth16.Setup(art.System, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := groth16.Prove(art.System, pk, art.Witness, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
