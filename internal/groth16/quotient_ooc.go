package groth16

import (
	"errors"
	"fmt"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/par"
	"zkrownn/internal/poly"
	"zkrownn/internal/r1cs"
)

// Out-of-core quotient: the in-memory quotient holds two domain-sized
// vectors resident (tens of MB each at paper scale). quotientOOC keeps
// every domain-sized vector in a disk file instead, bounding resident
// memory to HALF a domain vector (the bounded-memory FFT's scratch)
// plus fixed streaming windows:
//
//	A·w  → file, IFFT, coset FFT            (out-of-core transforms)
//	B·w  → file, IFFT, coset FFT, fold A·B  (streamed pointwise merge)
//	C·w  → file, IFFT, coset FFT, fold (AB-C)/Z
//	IFFT coset → h coefficient file
//
// Field arithmetic is exact and fr encodings are canonical, so the h
// file holds bit for bit the coefficients the in-memory quotient would
// produce; the Z-section MSM then streams its scalars straight from the
// file, so h is never resident either.
//
// tr, when non-nil, records one span per stage (matrix evaluation,
// each out-of-core transform with its split/mem/combine phases, the
// streamed pointwise merges) under an "ooc/" prefix.
func quotientOOC(sys r1cs.Constraints, domainSize uint64, witness *witnessSrc, dir string, tr *obs.Trace) (*poly.VecFile, error) {
	domain, err := poly.NewDomain(domainSize)
	if err != nil {
		return nil, err
	}
	if domain.N != domainSize {
		return nil, fmt.Errorf("groth16: domain size %d is not a power of two", domainSize)
	}
	n := int(domain.N)
	nbCons := sys.Dims().NbConstraints
	// FFT scratch shared by every transform: a quarter domain peels two
	// decimation levels out-of-core, quartering the prover's largest
	// resident vector at the cost of one extra streaming pass.
	buf := make([]fr.Element, n/4)

	spAll := tr.Span("ooc/quotient")
	defer spAll.End()

	// cosetEval evaluates one constraint matrix against the witness into
	// a fresh disk vector (rows [nbCons, n) zero) and carries it to the
	// coset, exactly as the in-memory quotient does. The matrix streams
	// in bounded row windows (a no-op view for resident systems); rows
	// evaluate in parallel when the witness is resident, serially when
	// it reads through the spill store's single-goroutine page cache.
	cosetEval := func(ms r1cs.MatrixStream, name string) (*poly.VecFile, error) {
		vf, err := poly.CreateVecFile(dir, n)
		if err != nil {
			return nil, err
		}
		var sp *obs.Span
		if tr != nil {
			sp = tr.Span("ooc/eval-" + name)
		}
		w := vf.NewWriter()
		win := &r1cs.RowWindow{}
		var evals []fr.Element
		for start := 0; start < nbCons; {
			end := ms.EndRowForTerms(start, r1cs.DefaultRowWindowTerms)
			if err := ms.LoadRows(win, start, end); err != nil {
				vf.Close()
				return nil, err
			}
			spw := tr.Span("csr/row-window")
			rows := end - start
			if cap(evals) < rows {
				evals = make([]fr.Element, rows)
			}
			ev := evals[:rows]
			if witness.mem != nil {
				par.Range(rows, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						ev[i] = win.RowEval(i, witness.mem)
					}
				})
			} else {
				for i := 0; i < rows; i++ {
					ev[i] = rowEvalSrc(win, i, witness)
				}
			}
			for i := range ev {
				w.Append(&ev[i])
			}
			spw.End()
			start = end
		}
		if err := witness.fileErr(); err != nil {
			vf.Close()
			return nil, err
		}
		var zero fr.Element
		for i := nbCons; i < n; i++ {
			w.Append(&zero)
		}
		if err := w.Flush(); err != nil {
			vf.Close()
			return nil, fmt.Errorf("groth16: quotient eval spill: %w", err)
		}
		sp.End()
		var ifftLabel, fftLabel string
		if tr != nil {
			ifftLabel = "ooc/ifft-" + name
			fftLabel = "ooc/fft-coset-" + name
		}
		if err := domain.IFFTFileTraced(vf, buf, tr, ifftLabel); err != nil {
			vf.Close()
			return nil, err
		}
		if err := domain.FFTCosetFileTraced(vf, buf, tr, fftLabel); err != nil {
			vf.Close()
			return nil, err
		}
		return vf, nil
	}

	va, err := cosetEval(sys.MatA(), "A")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*poly.VecFile, error) {
		va.Close()
		return nil, err
	}

	vb, err := cosetEval(sys.MatB(), "B")
	if err != nil {
		return fail(err)
	}
	sp := tr.Span("ooc/mul-ab")
	err = va.StreamMerge(vb, func(dst, b []fr.Element) {
		fr.MulVecInto(dst, dst, b)
	})
	sp.End()
	vb.Close()
	if err != nil {
		return fail(err)
	}

	vc, err := cosetEval(sys.MatC(), "C")
	if err != nil {
		return fail(err)
	}
	// On the coset, Z is the non-zero constant g^n - 1.
	zc := domain.VanishingOnCoset()
	var zcInv fr.Element
	zcInv.Inverse(&zc)
	sp = tr.Span("ooc/divide-z")
	err = va.StreamMerge(vc, func(dst, c []fr.Element) {
		fr.SubScalarMulVecInto(dst, dst, c, &zcInv)
	})
	sp.End()
	vc.Close()
	if err != nil {
		return fail(err)
	}

	if err := domain.IFFTCosetFileTraced(va, buf, tr, "ooc/ifft-coset"); err != nil {
		return fail(err)
	}

	// deg h ≤ n-2, so the top coefficient must vanish.
	var top [1]fr.Element
	if err := va.ReadAt(top[:], n-1); err != nil {
		return fail(err)
	}
	if !top[0].IsZero() {
		return fail(errors.New("groth16: quotient has unexpected degree; witness inconsistent"))
	}
	return va, nil
}
