package groth16

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/pairing"
)

// Binary framing: a 4-byte magic, a format version, then length-prefixed
// compressed points. All integers are little-endian uint32.
var (
	magicProof = [4]byte{'Z', 'K', 'P', 'F'}
	magicPK    = [4]byte{'Z', 'K', 'P', 'K'}
	magicPKRaw = [4]byte{'Z', 'K', 'P', 'R'}
	magicVK    = [4]byte{'Z', 'K', 'V', 'K'}
)

const formatVersion = 1

type countingWriter struct {
	n int64
	w io.Writer
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeHeader(w io.Writer, magic [4]byte) error {
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint32(formatVersion))
}

func readHeader(r io.Reader, magic [4]byte) error {
	var got [4]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return err
	}
	if got != magic {
		return fmt.Errorf("groth16: bad magic %q", got[:])
	}
	var ver uint32
	if err := binary.Read(r, binary.LittleEndian, &ver); err != nil {
		return err
	}
	if ver != formatVersion {
		return fmt.Errorf("groth16: unsupported format version %d", ver)
	}
	return nil
}

func writeG1(w io.Writer, p *curve.G1Affine) error {
	b := p.Bytes()
	_, err := w.Write(b[:])
	return err
}

func readG1(r io.Reader, p *curve.G1Affine) error {
	var b [curve.G1CompressedSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	return p.SetBytes(b[:])
}

func writeG2(w io.Writer, p *curve.G2Affine) error {
	b := p.Bytes()
	_, err := w.Write(b[:])
	return err
}

func readG2(r io.Reader, p *curve.G2Affine) error {
	var b [curve.G2CompressedSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	return p.SetBytes(b[:])
}

func writeG1Slice(w io.Writer, ps []curve.G1Affine) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ps))); err != nil {
		return err
	}
	for i := range ps {
		if err := writeG1(w, &ps[i]); err != nil {
			return err
		}
	}
	return nil
}

func readG1Slice(r io.Reader) ([]curve.G1Affine, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, errors.New("groth16: implausible G1 slice length")
	}
	out := make([]curve.G1Affine, n)
	for i := range out {
		if err := readG1(r, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func writeG2Slice(w io.Writer, ps []curve.G2Affine) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ps))); err != nil {
		return err
	}
	for i := range ps {
		if err := writeG2(w, &ps[i]); err != nil {
			return err
		}
	}
	return nil
}

func readG2Slice(r io.Reader) ([]curve.G2Affine, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, errors.New("groth16: implausible G2 slice length")
	}
	out := make([]curve.G2Affine, n)
	for i := range out {
		if err := readG2(r, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteTo serializes the proof (exactly 3 compressed points after the
// 8-byte header: 128 bytes of cryptographic material).
func (p *Proof) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := writeHeader(cw, magicProof); err != nil {
		return cw.n, err
	}
	if err := writeG1(cw, &p.Ar); err != nil {
		return cw.n, err
	}
	if err := writeG2(cw, &p.Bs); err != nil {
		return cw.n, err
	}
	if err := writeG1(cw, &p.Krs); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a proof, validating curve/subgroup membership of
// every point.
func (p *Proof) ReadFrom(r io.Reader) (int64, error) {
	if err := readHeader(r, magicProof); err != nil {
		return 0, err
	}
	if err := readG1(r, &p.Ar); err != nil {
		return 0, err
	}
	if err := readG2(r, &p.Bs); err != nil {
		return 0, err
	}
	if err := readG1(r, &p.Krs); err != nil {
		return 0, err
	}
	return 8 + curve.G1CompressedSize*2 + curve.G2CompressedSize, nil
}

// PayloadSize returns the size of the cryptographic payload in bytes
// (excluding framing), i.e. the "proof size" a protocol would transmit.
func (p *Proof) PayloadSize() int {
	return 2*curve.G1CompressedSize + curve.G2CompressedSize
}

// WriteTo serializes the verifying key.
func (vk *VerifyingKey) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := writeHeader(cw, magicVK); err != nil {
		return cw.n, err
	}
	if err := writeG1(cw, &vk.AlphaG1); err != nil {
		return cw.n, err
	}
	if err := writeG2(cw, &vk.BetaG2); err != nil {
		return cw.n, err
	}
	if err := writeG2(cw, &vk.GammaG2); err != nil {
		return cw.n, err
	}
	if err := writeG2(cw, &vk.DeltaG2); err != nil {
		return cw.n, err
	}
	if err := writeG1Slice(cw, vk.IC); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a verifying key.
func (vk *VerifyingKey) ReadFrom(r io.Reader) (int64, error) {
	if err := readHeader(r, magicVK); err != nil {
		return 0, err
	}
	if err := readG1(r, &vk.AlphaG1); err != nil {
		return 0, err
	}
	if err := readG2(r, &vk.BetaG2); err != nil {
		return 0, err
	}
	if err := readG2(r, &vk.GammaG2); err != nil {
		return 0, err
	}
	if err := readG2(r, &vk.DeltaG2); err != nil {
		return 0, err
	}
	ic, err := readG1Slice(r)
	if err != nil {
		return 0, err
	}
	vk.IC = ic
	// Re-derive the cached e(α, β) (it is not serialized — the points
	// are the authoritative material) so deserialized keys verify on the
	// 3-pairing fast path.
	vk.AlphaBeta = pairing.Pair(&vk.AlphaG1, &vk.BetaG2)
	return 0, nil
}

// WriteTo serializes the proving key.
func (pk *ProvingKey) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := writeHeader(cw, magicPK); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, pk.DomainSize); err != nil {
		return cw.n, err
	}
	for _, pt := range []*curve.G1Affine{&pk.AlphaG1, &pk.BetaG1, &pk.DeltaG1} {
		if err := writeG1(cw, pt); err != nil {
			return cw.n, err
		}
	}
	for _, pt := range []*curve.G2Affine{&pk.BetaG2, &pk.DeltaG2} {
		if err := writeG2(cw, pt); err != nil {
			return cw.n, err
		}
	}
	for _, s := range [][]curve.G1Affine{pk.A, pk.B1, pk.K, pk.Z} {
		if err := writeG1Slice(cw, s); err != nil {
			return cw.n, err
		}
	}
	if err := writeG2Slice(cw, pk.B2); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFrom deserializes a proving key.
func (pk *ProvingKey) ReadFrom(r io.Reader) (int64, error) {
	if err := readHeader(r, magicPK); err != nil {
		return 0, err
	}
	if err := binary.Read(r, binary.LittleEndian, &pk.DomainSize); err != nil {
		return 0, err
	}
	for _, pt := range []*curve.G1Affine{&pk.AlphaG1, &pk.BetaG1, &pk.DeltaG1} {
		if err := readG1(r, pt); err != nil {
			return 0, err
		}
	}
	for _, pt := range []*curve.G2Affine{&pk.BetaG2, &pk.DeltaG2} {
		if err := readG2(r, pt); err != nil {
			return 0, err
		}
	}
	var err error
	if pk.A, err = readG1Slice(r); err != nil {
		return 0, err
	}
	if pk.B1, err = readG1Slice(r); err != nil {
		return 0, err
	}
	if pk.K, err = readG1Slice(r); err != nil {
		return 0, err
	}
	if pk.Z, err = readG1Slice(r); err != nil {
		return 0, err
	}
	if pk.B2, err = readG2Slice(r); err != nil {
		return 0, err
	}
	return 0, nil
}

// WriteRawTo serializes the proving key with uncompressed points — about
// twice the bytes of WriteTo, but ReadRawFrom skips the per-point square
// root of compressed decoding, making deserialization orders of
// magnitude faster. This is the format of the prover engine's local key
// cache; use WriteTo for keys that cross a trust boundary.
func (pk *ProvingKey) WriteRawTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := writeHeader(cw, magicPKRaw); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, pk.DomainSize); err != nil {
		return cw.n, err
	}
	for _, pt := range []*curve.G1Affine{&pk.AlphaG1, &pk.BetaG1, &pk.DeltaG1} {
		b := pt.BytesRaw()
		if _, err := cw.Write(b[:]); err != nil {
			return cw.n, err
		}
	}
	for _, pt := range []*curve.G2Affine{&pk.BetaG2, &pk.DeltaG2} {
		b := pt.BytesRaw()
		if _, err := cw.Write(b[:]); err != nil {
			return cw.n, err
		}
	}
	for _, s := range [][]curve.G1Affine{pk.A, pk.B1, pk.K, pk.Z} {
		if err := binary.Write(cw, binary.LittleEndian, uint32(len(s))); err != nil {
			return cw.n, err
		}
		for i := range s {
			b := s[i].BytesRaw()
			if _, err := cw.Write(b[:]); err != nil {
				return cw.n, err
			}
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(pk.B2))); err != nil {
		return cw.n, err
	}
	for i := range pk.B2 {
		b := pk.B2[i].BytesRaw()
		if _, err := cw.Write(b[:]); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadRawFrom deserializes a proving key written by WriteRawTo. Points
// are checked on-curve but G2 subgroup membership is NOT verified — the
// raw format is for locally trusted material only.
func (pk *ProvingKey) ReadRawFrom(r io.Reader) (int64, error) {
	if err := readHeader(r, magicPKRaw); err != nil {
		return 0, err
	}
	if err := binary.Read(r, binary.LittleEndian, &pk.DomainSize); err != nil {
		return 0, err
	}
	var g1buf [curve.G1UncompressedSize]byte
	var g2buf [curve.G2UncompressedSize]byte
	readG1Raw := func(p *curve.G1Affine) error {
		if _, err := io.ReadFull(r, g1buf[:]); err != nil {
			return err
		}
		return p.SetBytesRaw(g1buf[:])
	}
	readG2Raw := func(p *curve.G2Affine) error {
		if _, err := io.ReadFull(r, g2buf[:]); err != nil {
			return err
		}
		return p.SetBytesRaw(g2buf[:])
	}
	for _, pt := range []*curve.G1Affine{&pk.AlphaG1, &pk.BetaG1, &pk.DeltaG1} {
		if err := readG1Raw(pt); err != nil {
			return 0, err
		}
	}
	for _, pt := range []*curve.G2Affine{&pk.BetaG2, &pk.DeltaG2} {
		if err := readG2Raw(pt); err != nil {
			return 0, err
		}
	}
	readG1RawSlice := func() ([]curve.G1Affine, error) {
		var n uint32
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n > 1<<28 {
			return nil, errors.New("groth16: implausible G1 slice length")
		}
		out := make([]curve.G1Affine, n)
		for i := range out {
			if err := readG1Raw(&out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var err error
	if pk.A, err = readG1RawSlice(); err != nil {
		return 0, err
	}
	if pk.B1, err = readG1RawSlice(); err != nil {
		return 0, err
	}
	if pk.K, err = readG1RawSlice(); err != nil {
		return 0, err
	}
	if pk.Z, err = readG1RawSlice(); err != nil {
		return 0, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, err
	}
	if n > 1<<28 {
		return 0, errors.New("groth16: implausible G2 slice length")
	}
	pk.B2 = make([]curve.G2Affine, n)
	for i := range pk.B2 {
		if err := readG2Raw(&pk.B2[i]); err != nil {
			return 0, err
		}
	}
	return 0, nil
}

// SizeBytes returns the serialized size of the proving key.
func (pk *ProvingKey) SizeBytes() int64 {
	cw := &countingWriter{w: io.Discard}
	_, _ = pk.WriteTo(cw)
	return cw.n
}

// SizeBytes returns the serialized size of the verifying key.
func (vk *VerifyingKey) SizeBytes() int64 {
	cw := &countingWriter{w: io.Discard}
	_, _ = vk.WriteTo(cw)
	return cw.n
}
