package groth16

import (
	"bytes"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"zkrownn/internal/bn254/fr"
)

// JSON wire envelopes. API payloads wrap the canonical binary encodings
// (WriteTo/ReadFrom, which carry their own magic + format-version
// header) in base64 inside a small versioned JSON object, so the shape
// of a proof or key on the wire is stable across releases: old clients
// reject newer envelope versions with a clear error instead of
// misparsing bytes.
//
//	{"format": 1, "data": "<base64 of the binary encoding>"}
//
// Public inputs use hex field elements instead of an opaque blob —
// they are the part of a payload humans and dispute transcripts need
// to read:
//
//	{"format": 1, "elements": ["00..01", ...]}

// jsonEnvelopeVersion is the wire-envelope version byte. Bump it when
// the envelope structure (not the inner binary format, which has its
// own version) changes incompatibly.
const jsonEnvelopeVersion = 1

type jsonEnvelope struct {
	Format int    `json:"format"`
	Data   string `json:"data"`
}

func marshalEnvelope(writeTo func(*bytes.Buffer) error) ([]byte, error) {
	var buf bytes.Buffer
	if err := writeTo(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(jsonEnvelope{
		Format: jsonEnvelopeVersion,
		Data:   base64.StdEncoding.EncodeToString(buf.Bytes()),
	})
}

func unmarshalEnvelope(b []byte, what string, readFrom func(*bytes.Reader) error) error {
	var env jsonEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return fmt.Errorf("groth16: %s envelope: %w", what, err)
	}
	if env.Format != jsonEnvelopeVersion {
		return fmt.Errorf("groth16: unsupported %s envelope version %d (want %d)",
			what, env.Format, jsonEnvelopeVersion)
	}
	raw, err := base64.StdEncoding.DecodeString(env.Data)
	if err != nil {
		return fmt.Errorf("groth16: %s envelope: %w", what, err)
	}
	r := bytes.NewReader(raw)
	if err := readFrom(r); err != nil {
		return fmt.Errorf("groth16: %s envelope: %w", what, err)
	}
	if r.Len() != 0 {
		return fmt.Errorf("groth16: %s envelope has %d trailing bytes", what, r.Len())
	}
	return nil
}

// MarshalJSON encodes the proof as a versioned base64 envelope of its
// binary WriteTo encoding.
func (p *Proof) MarshalJSON() ([]byte, error) {
	return marshalEnvelope(func(buf *bytes.Buffer) error {
		_, err := p.WriteTo(buf)
		return err
	})
}

// UnmarshalJSON decodes a proof envelope, running the full ReadFrom
// validation (curve and subgroup membership of every point): a
// tampered proof fails here, before any verifier work.
func (p *Proof) UnmarshalJSON(b []byte) error {
	return unmarshalEnvelope(b, "proof", func(r *bytes.Reader) error {
		_, err := p.ReadFrom(r)
		return err
	})
}

// MarshalJSON encodes the verifying key as a versioned base64 envelope
// of its binary WriteTo encoding.
func (vk *VerifyingKey) MarshalJSON() ([]byte, error) {
	return marshalEnvelope(func(buf *bytes.Buffer) error {
		_, err := vk.WriteTo(buf)
		return err
	})
}

// UnmarshalJSON decodes a verifying key envelope (full ReadFrom
// validation, including the e(α,β) re-derivation).
func (vk *VerifyingKey) UnmarshalJSON(b []byte) error {
	return unmarshalEnvelope(b, "verifying key", func(r *bytes.Reader) error {
		_, err := vk.ReadFrom(r)
		return err
	})
}

// PublicInputs is a JSON-marshalable public-input vector: the instance
// part of an API payload. Elements travel as 32-byte big-endian hex in
// a versioned envelope.
type PublicInputs []fr.Element

type publicInputsEnvelope struct {
	Format   int      `json:"format"`
	Elements []string `json:"elements"`
}

// MarshalJSON encodes the vector as versioned hex field elements.
func (pi PublicInputs) MarshalJSON() ([]byte, error) {
	env := publicInputsEnvelope{
		Format:   jsonEnvelopeVersion,
		Elements: make([]string, len(pi)),
	}
	for i := range pi {
		b := pi[i].Bytes()
		env.Elements[i] = fmt.Sprintf("%x", b[:])
	}
	return json.Marshal(env)
}

// UnmarshalJSON decodes a public-input envelope, rejecting
// non-canonical (≥ modulus) elements.
func (pi *PublicInputs) UnmarshalJSON(b []byte) error {
	var env publicInputsEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return fmt.Errorf("groth16: public inputs envelope: %w", err)
	}
	if env.Format != jsonEnvelopeVersion {
		return fmt.Errorf("groth16: unsupported public inputs envelope version %d (want %d)",
			env.Format, jsonEnvelopeVersion)
	}
	out := make([]fr.Element, len(env.Elements))
	for i, h := range env.Elements {
		// hex.DecodeString is strict (Sscanf %x would silently stop at
		// the first non-hex rune and accept a trailing-garbage payload).
		raw, err := hex.DecodeString(h)
		if err != nil {
			return fmt.Errorf("groth16: public input %d: %w", i, err)
		}
		if err := out[i].SetBytesCanonical(raw); err != nil {
			return fmt.Errorf("groth16: public input %d: %w", i, err)
		}
	}
	*pi = out
	return nil
}
