package groth16

import (
	"bytes"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/r1cs"
)

// cubicSystem builds the classic toy circuit: prove knowledge of x with
// x³ + x + 5 = out, out public — hand-built as an eager System, then
// compiled to CSR through the FromSystem adapter.
//
// Wires: 0 = one, 1 = out (public), 2 = x, 3 = x², 4 = x³.
func cubicSystem() *r1cs.CompiledSystem {
	cs, err := r1cs.FromSystem(cubicEager())
	if err != nil {
		panic(err)
	}
	return cs
}

func cubicEager() *r1cs.System {
	one := func() fr.Element { var e fr.Element; e.SetOne(); return e }
	five := func() fr.Element { var e fr.Element; e.SetUint64(5); return e }
	lc := func(terms ...r1cs.Term) r1cs.LinearCombination { return terms }

	sys := &r1cs.System{NbPublic: 2, NbWires: 5}
	// x·x = x²
	sys.Constraints = append(sys.Constraints, r1cs.Constraint{
		A: lc(r1cs.Term{Wire: 2, Coeff: one()}),
		B: lc(r1cs.Term{Wire: 2, Coeff: one()}),
		C: lc(r1cs.Term{Wire: 3, Coeff: one()}),
	})
	// x²·x = x³
	sys.Constraints = append(sys.Constraints, r1cs.Constraint{
		A: lc(r1cs.Term{Wire: 3, Coeff: one()}),
		B: lc(r1cs.Term{Wire: 2, Coeff: one()}),
		C: lc(r1cs.Term{Wire: 4, Coeff: one()}),
	})
	// (x³ + x + 5)·1 = out
	sys.Constraints = append(sys.Constraints, r1cs.Constraint{
		A: lc(
			r1cs.Term{Wire: 4, Coeff: one()},
			r1cs.Term{Wire: 2, Coeff: one()},
			r1cs.Term{Wire: 0, Coeff: five()},
		),
		B: lc(r1cs.Term{Wire: 0, Coeff: one()}),
		C: lc(r1cs.Term{Wire: 1, Coeff: one()}),
	})
	return sys
}

// cubicWitness returns the wire assignment for a given x.
func cubicWitness(x uint64) []fr.Element {
	w := make([]fr.Element, 5)
	w[0].SetOne()
	w[2].SetUint64(x)
	w[3].Mul(&w[2], &w[2])
	w[4].Mul(&w[3], &w[2])
	w[1].Add(&w[4], &w[2])
	var five fr.Element
	five.SetUint64(5)
	w[1].Add(&w[1], &five)
	return w
}

func TestSatisfiedWitness(t *testing.T) {
	sys := cubicSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(3)
	if ok, bad := sys.IsSatisfied(w); !ok {
		t.Fatalf("honest witness rejected at constraint %d", bad)
	}
	// Tamper.
	w[3].SetUint64(99)
	if ok, _ := sys.IsSatisfied(w); ok {
		t.Fatal("tampered witness accepted")
	}
}

func TestProveVerifyRoundTrip(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(70))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(3)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := w[1:sys.NbPublic]
	if err := Verify(vk, proof, public); err != nil {
		t.Fatalf("honest proof rejected: %v", err)
	}
}

// TestAlphaBetaCache checks the cached-e(α,β) verification fast path:
// Setup populates the cache, the 3-pairing and 4-pairing checks agree
// on both honest and corrupted proofs, and PrecomputeAlphaBeta restores
// the cache on a key that lost it.
func TestAlphaBetaCache(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(71))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	if vk.AlphaBeta.IsZero() {
		t.Fatal("Setup did not populate the e(α,β) cache")
	}
	w := cubicWitness(4)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := w[1:sys.NbPublic]
	if err := Verify(vk, proof, public); err != nil {
		t.Fatalf("cached-path verify rejected honest proof: %v", err)
	}

	// Strip the cache: the 4-pairing fallback must agree.
	var stripped VerifyingKey
	stripped = *vk
	stripped.AlphaBeta.SetZero()
	if err := Verify(&stripped, proof, public); err != nil {
		t.Fatalf("fallback verify rejected honest proof: %v", err)
	}
	got := PrecomputeAlphaBeta(&stripped)
	if got.IsZero() || !stripped.AlphaBeta.Equal(&vk.AlphaBeta) {
		t.Fatal("PrecomputeAlphaBeta did not restore the cache")
	}

	// Both paths must still reject corruption.
	bad := *proof
	bad.Ar.Neg(&bad.Ar)
	if err := Verify(vk, &bad, public); err == nil {
		t.Fatal("cached path accepted corrupted proof")
	}
	if err := Verify(&stripped, &bad, public); err == nil {
		t.Fatal("fallback path accepted corrupted proof")
	}

	// A deserialized key re-derives the cache from its points.
	var buf bytes.Buffer
	if _, err := vk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var vk2 VerifyingKey
	if _, err := vk2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if vk2.AlphaBeta.IsZero() || !vk2.AlphaBeta.Equal(&vk.AlphaBeta) {
		t.Fatal("ReadFrom did not repopulate the e(α,β) cache")
	}
	if err := Verify(&vk2, proof, public); err != nil {
		t.Fatalf("deserialized key rejected honest proof: %v", err)
	}
}

func TestVerifyRejectsWrongPublicInput(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(71))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(3)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	var wrong fr.Element
	wrong.SetUint64(36) // true out is 35
	if err := Verify(vk, proof, []fr.Element{wrong}); err == nil {
		t.Fatal("proof verified against wrong public input")
	}
	// Wrong arity.
	if err := Verify(vk, proof, nil); err == nil {
		t.Fatal("proof verified with missing public inputs")
	}
}

func TestVerifyRejectsCorruptedProof(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(72))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(4)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := w[1:sys.NbPublic]

	// Swap A and C (both G1): still valid points, wrong equation.
	bad := *proof
	bad.Ar, bad.Krs = proof.Krs, proof.Ar
	if err := Verify(vk, &bad, public); err == nil {
		t.Fatal("corrupted proof accepted")
	}
}

func TestProveRejectsBadWitness(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(73))
	pk, _, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(3)
	w[4].SetUint64(1234)
	if _, err := Prove(sys, pk, w, rng); err == nil {
		t.Fatal("prover accepted an unsatisfiable witness")
	}
	if _, err := Prove(sys, pk, w[:3], rng); err == nil {
		t.Fatal("prover accepted a short witness")
	}
}

func TestProofsAreRandomized(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(74))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(3)
	p1, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Ar.Equal(&p2.Ar) {
		t.Fatal("two proofs share the A element; zero-knowledge randomization broken")
	}
	public := w[1:sys.NbPublic]
	if err := Verify(vk, p1, public); err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, p2, public); err != nil {
		t.Fatal(err)
	}
}

func TestProofSerialization(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(75))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(5)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := proof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	wantLen := 8 + proof.PayloadSize()
	if buf.Len() != wantLen {
		t.Fatalf("serialized proof is %d bytes, want %d", buf.Len(), wantLen)
	}
	if proof.PayloadSize() != 128 {
		t.Fatalf("proof payload is %d bytes, want 128 (paper: ~127.4B)", proof.PayloadSize())
	}

	var dec Proof
	if _, err := dec.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !dec.Ar.Equal(&proof.Ar) || !dec.Bs.Equal(&proof.Bs) || !dec.Krs.Equal(&proof.Krs) {
		t.Fatal("proof round trip mismatch")
	}
	if err := Verify(vk, &dec, w[1:sys.NbPublic]); err != nil {
		t.Fatal("deserialized proof rejected")
	}
}

func TestKeySerialization(t *testing.T) {
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(76))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}

	var vkBuf bytes.Buffer
	if _, err := vk.WriteTo(&vkBuf); err != nil {
		t.Fatal(err)
	}
	var vk2 VerifyingKey
	if _, err := vk2.ReadFrom(&vkBuf); err != nil {
		t.Fatal(err)
	}

	var pkBuf bytes.Buffer
	if _, err := pk.WriteTo(&pkBuf); err != nil {
		t.Fatal(err)
	}
	var pk2 ProvingKey
	if _, err := pk2.ReadFrom(&pkBuf); err != nil {
		t.Fatal(err)
	}

	// The deserialized keys must be fully functional.
	w := cubicWitness(7)
	proof, err := Prove(sys, &pk2, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(&vk2, proof, w[1:sys.NbPublic]); err != nil {
		t.Fatal("round-tripped keys fail to prove/verify")
	}

	// SizeBytes must match what WriteTo produced. Note pkBuf was drained
	// by ReadFrom, so re-serialize.
	var pkBuf2 bytes.Buffer
	if _, err := pk.WriteTo(&pkBuf2); err != nil {
		t.Fatal(err)
	}
	if pk.SizeBytes() != int64(pkBuf2.Len()) {
		t.Fatalf("SizeBytes %d != serialized %d", pk.SizeBytes(), pkBuf2.Len())
	}
	if vk.SizeBytes() <= 0 {
		t.Fatal("vk.SizeBytes not positive")
	}
}

func TestProofGarbageRejected(t *testing.T) {
	var p Proof
	if _, err := p.ReadFrom(bytes.NewReader([]byte("nonsense"))); err == nil {
		t.Fatal("garbage accepted as proof")
	}
	// Valid header, invalid point.
	buf := append([]byte{'Z', 'K', 'P', 'F', 1, 0, 0, 0}, make([]byte, 128)...)
	if _, err := p.ReadFrom(bytes.NewReader(buf)); err == nil {
		t.Fatal("invalid point bytes accepted")
	}
}
