package groth16

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Golden wire-format vectors.
//
// The registry persists verifying keys, the client exchanges JSON
// envelopes, and dispute transcripts file binary proofs — all of which
// break SILENTLY if an encoding changes shape while still round-
// tripping through the current code. These tests pin every public
// encoding against byte-exact vectors checked in under testdata/golden:
// any drift fails loudly with instructions instead of shipping a
// registry/client incompatibility.
//
// The fixture is deterministic: math/rand drives both the trusted setup
// and the prover (fr.SetRandom consumes the byte stream via rejection
// sampling, which is platform-independent), so the artifacts are
// reproducible from the seed alone. Regenerate after an INTENTIONAL
// format change with:
//
//	ZKROWNN_UPDATE_GOLDEN=1 go test ./internal/groth16/ -run TestGoldenWireFormats

const goldenSeed = 0x5eed

// goldenArtifacts deterministically produces one proof + key pair over
// the cubic fixture system.
func goldenArtifacts(t *testing.T) (*ProvingKey, *VerifyingKey, *Proof, PublicInputs) {
	t.Helper()
	rng := rand.New(rand.NewSource(goldenSeed))
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := cubicWitness(3)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	return pk, vk, proof, PublicInputs(w[1:2])
}

// goldenCheck compares got against testdata/golden/<name>, rewriting
// the file in update mode.
func goldenCheck(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if os.Getenv("ZKROWNN_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden vector missing: %v (run with ZKROWNN_UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("WIRE FORMAT DRIFT in %s: the %s encoding no longer matches the pinned vector.\n"+
			"This breaks persisted registries, key caches, and deployed clients.\n"+
			"If the change is intentional, bump the format version and regenerate with ZKROWNN_UPDATE_GOLDEN=1.\n"+
			"got  (%d bytes): %.96x...\nwant (%d bytes): %.96x...",
			path, name, len(got), got, len(want), want)
	}
}

// hexDump renders binary encodings as line-wrapped hex so the pinned
// vectors stay text-diffable.
func hexDump(raw []byte) []byte {
	const width = 64
	s := hex.EncodeToString(raw)
	var buf bytes.Buffer
	for len(s) > width {
		buf.WriteString(s[:width])
		buf.WriteByte('\n')
		s = s[width:]
	}
	buf.WriteString(s)
	buf.WriteByte('\n')
	return buf.Bytes()
}

func TestGoldenWireFormats(t *testing.T) {
	pk, vk, proof, public := goldenArtifacts(t)

	// Determinism sanity: a second run from the same seed must produce
	// identical artifacts, otherwise the vectors would be un-pinnable.
	{
		pk2, _, proof2, _ := goldenArtifacts(t)
		var a, b bytes.Buffer
		if _, err := pk.WriteTo(&a); err != nil {
			t.Fatal(err)
		}
		if _, err := pk2.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("trusted setup is not deterministic under a seeded rng")
		}
		if !proof.Ar.Equal(&proof2.Ar) || !proof.Bs.Equal(&proof2.Bs) || !proof.Krs.Equal(&proof2.Krs) {
			t.Fatal("prover is not deterministic under a seeded rng")
		}
	}

	// JSON envelopes (the proof-service / client wire shapes).
	proofJSON, err := proof.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "proof.json", proofJSON)
	vkJSON, err := vk.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "vk.json", vkJSON)
	publicJSON, err := public.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "public.json", publicJSON)

	// Binary encodings (registry persistence, CLI artifacts) and the raw
	// key encodings (the engine's disk cache tier).
	var buf bytes.Buffer
	if _, err := proof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "proof.bin.hex", hexDump(buf.Bytes()))
	buf.Reset()
	if _, err := vk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "vk.bin.hex", hexDump(buf.Bytes()))
	buf.Reset()
	if _, err := pk.WriteRawTo(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "pk.raw.hex", hexDump(buf.Bytes()))
}

// TestGoldenVectorsStillVerify decodes the PINNED vectors (not freshly
// generated ones) and runs the full verification path: the encodings on
// disk must stay semantically valid, not just byte-stable.
func TestGoldenVectorsStillVerify(t *testing.T) {
	if os.Getenv("ZKROWNN_UPDATE_GOLDEN") != "" {
		t.Skip("regenerating vectors")
	}
	read := func(name string) []byte {
		b, err := os.ReadFile(filepath.Join("testdata", "golden", name))
		if err != nil {
			t.Fatalf("golden vector missing: %v", err)
		}
		return b
	}
	unhex := func(dump []byte) []byte {
		raw, err := hex.DecodeString(string(bytes.ReplaceAll(bytes.TrimSpace(dump), []byte("\n"), nil)))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	var proof Proof
	if err := proof.UnmarshalJSON(read("proof.json")); err != nil {
		t.Fatal(err)
	}
	var vk VerifyingKey
	if err := vk.UnmarshalJSON(read("vk.json")); err != nil {
		t.Fatal(err)
	}
	var public PublicInputs
	if err := public.UnmarshalJSON(read("public.json")); err != nil {
		t.Fatal(err)
	}
	if err := Verify(&vk, &proof, public); err != nil {
		t.Fatalf("pinned JSON artifacts no longer verify: %v", err)
	}

	// The binary forms must decode to the same artifacts.
	var binProof Proof
	if _, err := binProof.ReadFrom(bytes.NewReader(unhex(read("proof.bin.hex")))); err != nil {
		t.Fatal(err)
	}
	if !binProof.Ar.Equal(&proof.Ar) || !binProof.Bs.Equal(&proof.Bs) || !binProof.Krs.Equal(&proof.Krs) {
		t.Fatal("binary proof vector disagrees with the JSON envelope")
	}
	var binVK VerifyingKey
	if _, err := binVK.ReadFrom(bytes.NewReader(unhex(read("vk.bin.hex")))); err != nil {
		t.Fatal(err)
	}
	if err := Verify(&binVK, &binProof, public); err != nil {
		t.Fatalf("pinned binary artifacts no longer verify: %v", err)
	}
	var rawPK ProvingKey
	if _, err := rawPK.ReadRawFrom(bytes.NewReader(unhex(read("pk.raw.hex")))); err != nil {
		t.Fatalf("pinned raw proving key no longer decodes: %v", err)
	}
	// The decoded proving key must still prove.
	rng := rand.New(rand.NewSource(goldenSeed + 1))
	sys := cubicSystem()
	reproof, err := Prove(sys, &rawPK, cubicWitness(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(&vk, reproof, public); err != nil {
		t.Fatalf("proof from the pinned raw proving key rejected: %v", err)
	}
}
