package groth16

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

func TestBatchVerifyAccepts(t *testing.T) {
	rng := rand.New(rand.NewSource(710))
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var proofs []*Proof
	var publics [][]fr.Element
	for _, x := range []uint64{2, 3, 5, 11} {
		w := cubicWitness(x)
		proof, err := Prove(sys, pk, w, rng)
		if err != nil {
			t.Fatal(err)
		}
		proofs = append(proofs, proof)
		publics = append(publics, w[1:sys.NbPublic])
	}
	if err := BatchVerify(vk, proofs, publics, rng); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
}

func TestBatchVerifyRejectsOneBadProof(t *testing.T) {
	rng := rand.New(rand.NewSource(711))
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	var proofs []*Proof
	var publics [][]fr.Element
	for _, x := range []uint64{2, 3, 5} {
		w := cubicWitness(x)
		proof, err := Prove(sys, pk, w, rng)
		if err != nil {
			t.Fatal(err)
		}
		proofs = append(proofs, proof)
		publics = append(publics, w[1:sys.NbPublic])
	}
	// Corrupt the middle proof's public input (claim a different output).
	publics[1][0].SetUint64(999)
	if err := BatchVerify(vk, proofs, publics, rng); err == nil {
		t.Fatal("batch with one invalid member accepted")
	}
}

func TestBatchVerifyRejectsSwappedProofs(t *testing.T) {
	rng := rand.New(rand.NewSource(712))
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w2 := cubicWitness(2)
	w3 := cubicWitness(3)
	p2, err := Prove(sys, pk, w2, rng)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := Prove(sys, pk, w3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Swap public inputs between the two proofs.
	if err := BatchVerify(vk, []*Proof{p2, p3},
		[][]fr.Element{w3[1:sys.NbPublic], w2[1:sys.NbPublic]}, rng); err == nil {
		t.Fatal("batch with swapped instances accepted")
	}
}

func TestBatchVerifyEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(713))
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := BatchVerify(vk, nil, nil, rng); err == nil {
		t.Fatal("empty batch accepted")
	}
	w := cubicWitness(4)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Single-proof batch must agree with plain Verify.
	if err := BatchVerify(vk, []*Proof{proof}, [][]fr.Element{w[1:sys.NbPublic]}, rng); err != nil {
		t.Fatal(err)
	}
	// Length mismatch.
	if err := BatchVerify(vk, []*Proof{proof}, nil, rng); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Arity mismatch.
	if err := BatchVerify(vk, []*Proof{proof}, [][]fr.Element{nil}, rng); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func BenchmarkVerifySingle(b *testing.B) {
	rng := rand.New(rand.NewSource(714))
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		b.Fatal(err)
	}
	w := cubicWitness(3)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		b.Fatal(err)
	}
	pub := w[1:sys.NbPublic]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(vk, proof, pub); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchVerify8(b *testing.B) {
	rng := rand.New(rand.NewSource(715))
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		b.Fatal(err)
	}
	var proofs []*Proof
	var publics [][]fr.Element
	for x := uint64(2); x < 10; x++ {
		w := cubicWitness(x)
		proof, err := Prove(sys, pk, w, rng)
		if err != nil {
			b.Fatal(err)
		}
		proofs = append(proofs, proof)
		publics = append(publics, w[1:sys.NbPublic])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := BatchVerify(vk, proofs, publics, rng); err != nil {
			b.Fatal(err)
		}
	}
}
