package groth16

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/r1cs"
)

// chainSystem builds a squaring chain of n constraints — wire 2 is the
// secret x, each constraint squares the previous intermediate, and the
// last value is copied to the public output. Big enough chains give the
// prover a realistic FFT/MSM workload for overhead measurement.
func chainSystem(n int) *r1cs.CompiledSystem {
	one := func() fr.Element { var e fr.Element; e.SetOne(); return e }
	lc := func(terms ...r1cs.Term) r1cs.LinearCombination { return terms }

	sys := &r1cs.System{NbPublic: 2, NbWires: n + 3}
	for i := 0; i < n; i++ {
		sys.Constraints = append(sys.Constraints, r1cs.Constraint{
			A: lc(r1cs.Term{Wire: i + 2, Coeff: one()}),
			B: lc(r1cs.Term{Wire: i + 2, Coeff: one()}),
			C: lc(r1cs.Term{Wire: i + 3, Coeff: one()}),
		})
	}
	// last intermediate · 1 = out
	sys.Constraints = append(sys.Constraints, r1cs.Constraint{
		A: lc(r1cs.Term{Wire: n + 2, Coeff: one()}),
		B: lc(r1cs.Term{Wire: 0, Coeff: one()}),
		C: lc(r1cs.Term{Wire: 1, Coeff: one()}),
	})
	cs, err := r1cs.FromSystem(sys)
	if err != nil {
		panic(err)
	}
	return cs
}

func chainWitness(n int, x uint64) []fr.Element {
	w := make([]fr.Element, n+3)
	w[0].SetOne()
	w[2].SetUint64(x)
	for i := 0; i < n; i++ {
		w[i+3].Mul(&w[i+2], &w[i+2])
	}
	w[1] = w[n+2]
	return w
}

// TestProveTracedMatchesProve pins that tracing is observational: a
// traced prove verifies exactly like an untraced one and records spans
// covering every prover phase.
func TestProveTracedMatchesProve(t *testing.T) {
	rng := rand.New(rand.NewSource(820))
	sys := chainSystem(64)
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := chainWitness(64, 3)

	tr := obs.NewTrace()
	proof, err := ProveTraced(sys, pk, w, rng, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, proof, w[1:sys.NbPublic]); err != nil {
		t.Fatalf("traced proof rejected: %v", err)
	}
	totals := tr.Totals()
	for _, phase := range []string{"prove/satisfy", "prove/recode", "quotient",
		"msm/A", "msm/B1", "msm/B2", "msm/K", "msm/Z"} {
		if _, ok := totals[phase]; !ok {
			t.Errorf("traced prove recorded no %q span (got %d span names)", phase, len(totals))
		}
	}

	vtr := obs.NewTrace()
	if err := VerifyTraced(vk, proof, w[1:sys.NbPublic], vtr); err != nil {
		t.Fatalf("traced verify rejected: %v", err)
	}
	vt := vtr.Totals()
	if _, ok := vt["verify/pairing"]; !ok {
		t.Error("traced verify recorded no verify/pairing span")
	}
}

// BenchmarkProveTelemetryOff / BenchmarkProveTelemetryOn are the
// telemetry overhead guard: compare ns/op with tracing disabled (the
// production default — nil-trace fast path) against a live span
// recorder. The instrumentation budget is ≤1% prove-time overhead;
// rerun both after touching the hot paths:
//
//	go test ./internal/groth16/ -run xx -bench 'ProveTelemetry' -benchtime 10x
func BenchmarkProveTelemetryOff(b *testing.B) {
	benchmarkProveTelemetry(b, false)
}

func BenchmarkProveTelemetryOn(b *testing.B) {
	benchmarkProveTelemetry(b, true)
}

func benchmarkProveTelemetry(b *testing.B, traced bool) {
	const n = 1 << 14
	rng := rand.New(rand.NewSource(821))
	sys := chainSystem(n)
	pk, _, err := Setup(sys, rng)
	if err != nil {
		b.Fatal(err)
	}
	w := chainWitness(n, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr *obs.Trace
		if traced {
			tr = obs.NewTrace()
		}
		if _, err := ProveTraced(sys, pk, w, rng, tr); err != nil {
			b.Fatal(err)
		}
	}
}
