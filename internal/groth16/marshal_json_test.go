package groth16

import (
	"encoding/base64"
	"encoding/json"
	"strings"
	"testing"
)

func TestProofJSONRoundTrip(t *testing.T) {
	_, vk, proof := marshalFixture(t)

	b, err := json.Marshal(proof)
	if err != nil {
		t.Fatal(err)
	}
	var got Proof
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Ar.Equal(&proof.Ar) || !got.Bs.Equal(&proof.Bs) || !got.Krs.Equal(&proof.Krs) {
		t.Fatal("proof points differ after JSON round trip")
	}

	public := cubicWitness(3)[1:cubicSystem().NbPublic]
	if err := Verify(vk, &got, public); err != nil {
		t.Fatalf("round-tripped proof rejected: %v", err)
	}
}

func TestVerifyingKeyJSONRoundTrip(t *testing.T) {
	_, vk, proof := marshalFixture(t)

	b, err := json.Marshal(vk)
	if err != nil {
		t.Fatal(err)
	}
	var got VerifyingKey
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.AlphaBeta.IsZero() {
		t.Fatal("e(α,β) cache not re-derived from JSON envelope")
	}
	public := cubicWitness(3)[1:cubicSystem().NbPublic]
	if err := Verify(&got, proof, public); err != nil {
		t.Fatalf("proof rejected under round-tripped vk: %v", err)
	}
}

func TestPublicInputsJSONRoundTrip(t *testing.T) {
	public := PublicInputs(cubicWitness(3)[1:cubicSystem().NbPublic])
	b, err := json.Marshal(public)
	if err != nil {
		t.Fatal(err)
	}
	var got PublicInputs
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(public) {
		t.Fatalf("length %d != %d", len(got), len(public))
	}
	for i := range got {
		if !got[i].Equal(&public[i]) {
			t.Fatalf("element %d differs after round trip", i)
		}
	}
}

func TestProofJSONRejectsTampering(t *testing.T) {
	_, _, proof := marshalFixture(t)
	b, err := json.Marshal(proof)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte of cryptographic material inside the base64 blob:
	// the decoded point must fail curve/subgroup validation.
	var env jsonEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	raw, err := base64.StdEncoding.DecodeString(env.Data)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	env.Data = base64.StdEncoding.EncodeToString(raw)
	tampered, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var got Proof
	if err := json.Unmarshal(tampered, &got); err == nil {
		t.Fatal("tampered proof envelope accepted")
	}

	// Truncated payload.
	env.Data = base64.StdEncoding.EncodeToString(raw[:len(raw)-4])
	truncated, _ := json.Marshal(env)
	if err := json.Unmarshal(truncated, &got); err == nil {
		t.Fatal("truncated proof envelope accepted")
	}

	// Unknown envelope version.
	versioned := strings.Replace(string(b), `"format":1`, `"format":9`, 1)
	if err := json.Unmarshal([]byte(versioned), &got); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future envelope version not rejected: %v", err)
	}

	// Trailing garbage after the binary encoding.
	if err := json.Unmarshal(b, &env); err != nil {
		t.Fatal(err)
	}
	raw, _ = base64.StdEncoding.DecodeString(env.Data)
	env.Data = base64.StdEncoding.EncodeToString(append(raw, 0xaa))
	trailing, _ := json.Marshal(env)
	if err := json.Unmarshal(trailing, &got); err == nil {
		t.Fatal("proof envelope with trailing bytes accepted")
	}
}

func TestPublicInputsJSONRejectsNonCanonical(t *testing.T) {
	// r (the field modulus) is not a canonical encoding of any element.
	over := `{"format":1,"elements":["30644e72e131a029b85045b68181585d2833e84879b9709143e1f593f0000001"]}`
	var got PublicInputs
	if err := json.Unmarshal([]byte(over), &got); err == nil {
		t.Fatal("non-canonical field element accepted")
	}
	// A valid 64-digit prefix followed by garbage must be rejected, not
	// silently truncated at the first non-hex rune.
	trailing := `{"format":1,"elements":["0000000000000000000000000000000000000000000000000000000000000001ZZ"]}`
	if err := json.Unmarshal([]byte(trailing), &got); err == nil {
		t.Fatal("hex element with trailing garbage accepted")
	}
	// Odd-length hex is malformed.
	odd := `{"format":1,"elements":["abc"]}`
	if err := json.Unmarshal([]byte(odd), &got); err == nil {
		t.Fatal("odd-length hex element accepted")
	}
}
