package groth16

import (
	"bytes"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/curve"
)

// marshalFixture runs setup+prove once for the cubic toy circuit and
// hands the three artifacts to the round-trip tests.
func marshalFixture(t *testing.T) (*ProvingKey, *VerifyingKey, *Proof) {
	t.Helper()
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(42))
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(sys, pk, cubicWitness(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	return pk, vk, proof
}

func g1Equal(a, b []curve.G1Affine) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(&b[i]) {
			return false
		}
	}
	return true
}

func g2Equal(a, b []curve.G2Affine) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(&b[i]) {
			return false
		}
	}
	return true
}

func assertPKEqual(t *testing.T, want, got *ProvingKey) {
	t.Helper()
	if got.DomainSize != want.DomainSize {
		t.Fatalf("DomainSize %d != %d", got.DomainSize, want.DomainSize)
	}
	if !got.AlphaG1.Equal(&want.AlphaG1) || !got.BetaG1.Equal(&want.BetaG1) || !got.DeltaG1.Equal(&want.DeltaG1) {
		t.Fatal("G1 setup points differ after round trip")
	}
	if !got.BetaG2.Equal(&want.BetaG2) || !got.DeltaG2.Equal(&want.DeltaG2) {
		t.Fatal("G2 setup points differ after round trip")
	}
	if !g1Equal(want.A, got.A) || !g1Equal(want.B1, got.B1) || !g1Equal(want.K, got.K) || !g1Equal(want.Z, got.Z) {
		t.Fatal("G1 query slices differ after round trip")
	}
	if !g2Equal(want.B2, got.B2) {
		t.Fatal("B2 slice differs after round trip")
	}
}

func TestProvingKeyRoundTrip(t *testing.T) {
	pk, _, _ := marshalFixture(t)
	var buf bytes.Buffer
	if _, err := pk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != pk.SizeBytes() {
		t.Fatalf("WriteTo wrote %d bytes, SizeBytes says %d", buf.Len(), pk.SizeBytes())
	}
	var got ProvingKey
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	assertPKEqual(t, pk, &got)
}

func TestProvingKeyRawRoundTrip(t *testing.T) {
	pk, _, _ := marshalFixture(t)
	var buf bytes.Buffer
	if _, err := pk.WriteRawTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got ProvingKey
	if _, err := got.ReadRawFrom(&buf); err != nil {
		t.Fatal(err)
	}
	assertPKEqual(t, pk, &got)
}

// TestRawKeyProvesIdentically is the behavioral check: a proving key
// deserialized from the raw cache format must produce proofs the
// original verifying key accepts.
func TestRawKeyProvesIdentically(t *testing.T) {
	pk, vk, _ := marshalFixture(t)
	var buf bytes.Buffer
	if _, err := pk.WriteRawTo(&buf); err != nil {
		t.Fatal(err)
	}
	var restored ProvingKey
	if _, err := restored.ReadRawFrom(&buf); err != nil {
		t.Fatal(err)
	}
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(7))
	proof, err := Prove(sys, &restored, cubicWitness(4), rng)
	if err != nil {
		t.Fatal(err)
	}
	public := cubicWitness(4)[1:2]
	if err := Verify(vk, proof, public); err != nil {
		t.Fatalf("proof from deserialized key rejected: %v", err)
	}
}

func TestVerifyingKeyRoundTrip(t *testing.T) {
	pk, vk, _ := marshalFixture(t)
	var buf bytes.Buffer
	if _, err := vk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != vk.SizeBytes() {
		t.Fatalf("WriteTo wrote %d bytes, SizeBytes says %d", buf.Len(), vk.SizeBytes())
	}
	var got VerifyingKey
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !got.AlphaG1.Equal(&vk.AlphaG1) || !got.BetaG2.Equal(&vk.BetaG2) ||
		!got.GammaG2.Equal(&vk.GammaG2) || !got.DeltaG2.Equal(&vk.DeltaG2) {
		t.Fatal("VK setup points differ after round trip")
	}
	if !g1Equal(vk.IC, got.IC) {
		t.Fatal("IC slice differs after round trip")
	}
	// Behavioral: the restored VK verifies a fresh proof.
	sys := cubicSystem()
	rng := rand.New(rand.NewSource(8))
	proof, err := Prove(sys, pk, cubicWitness(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(&got, proof, cubicWitness(5)[1:2]); err != nil {
		t.Fatalf("restored VK rejects valid proof: %v", err)
	}
}

func TestProofRoundTrip(t *testing.T) {
	_, vk, proof := marshalFixture(t)
	var buf bytes.Buffer
	if _, err := proof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Proof
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !got.Ar.Equal(&proof.Ar) || !got.Bs.Equal(&proof.Bs) || !got.Krs.Equal(&proof.Krs) {
		t.Fatal("proof points differ after round trip")
	}
	if err := Verify(vk, &got, cubicWitness(3)[1:2]); err != nil {
		t.Fatalf("round-tripped proof rejected: %v", err)
	}
}

func TestMarshalRejectsWrongMagic(t *testing.T) {
	pk, _, _ := marshalFixture(t)
	var buf bytes.Buffer
	if _, err := pk.WriteRawTo(&buf); err != nil {
		t.Fatal(err)
	}
	// A raw-format stream must not parse as the compressed format.
	var got ProvingKey
	if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("compressed reader accepted raw-format stream")
	}
	var got2 Proof
	if _, err := got2.ReadFrom(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("proof reader accepted proving-key stream")
	}
}
