// Package groth16 implements the Groth16 zkSNARK (Jens Groth, "On the
// Size of Pairing-Based Non-interactive Arguments", EUROCRYPT 2016) over
// BN254, the protocol/curve combination used by ZKROWNN's libsnark
// backend.
//
// The implementation follows the paper's notation: the circuit is a QAP
// {uⱼ, vⱼ, wⱼ} over an FFT-friendly domain H, the trusted setup samples
// (τ, α, β, γ, δ), and a proof is the triple (A, B, C) ∈ G1 × G2 × G1
// verified with a single pairing-product equation
//
//	e(A, B) = e(α, β) · e(Σ xⱼ·ICⱼ, γ) · e(C, δ).
package groth16

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/pairing"
	"zkrownn/internal/par"
	"zkrownn/internal/poly"
	"zkrownn/internal/r1cs"
)

// ProvingKey holds the prover's share of the structured reference string.
type ProvingKey struct {
	AlphaG1, BetaG1, DeltaG1 curve.G1Affine
	BetaG2, DeltaG2          curve.G2Affine

	// A[j] = [uⱼ(τ)]₁ for every wire j.
	A []curve.G1Affine
	// B1[j] = [vⱼ(τ)]₁, B2[j] = [vⱼ(τ)]₂ for every wire j.
	B1 []curve.G1Affine
	B2 []curve.G2Affine
	// K[j-ℓ-1] = [(β·uⱼ(τ) + α·vⱼ(τ) + wⱼ(τ))/δ]₁ for private wires j.
	K []curve.G1Affine
	// Z[i] = [τⁱ·Z_H(τ)/δ]₁ for i = 0..n-2.
	Z []curve.G1Affine

	// DomainSize is the FFT domain order n used at setup.
	DomainSize uint64
}

// VerifyingKey holds the public verification material.
type VerifyingKey struct {
	AlphaG1 curve.G1Affine
	BetaG2  curve.G2Affine
	GammaG2 curve.G2Affine
	DeltaG2 curve.G2Affine
	// IC[j] = [(β·uⱼ(τ) + α·vⱼ(τ) + wⱼ(τ))/γ]₁ for public wires
	// j = 0..ℓ (IC[0] is the constant wire).
	IC []curve.G1Affine
	// AlphaBeta caches e(α, β), the proof-independent pairing of the
	// verification equation: with it, single-proof Verify needs 3 Miller
	// loops instead of 4. Setup, ReadFrom, and PrecomputeAlphaBeta
	// populate it; the zero value (never a valid pairing output) means
	// "not computed" and Verify falls back to the 4-pairing check.
	// Populate before sharing the key across goroutines.
	AlphaBeta GTElement
}

// Proof is a Groth16 proof: 2 G1 points and 1 G2 point, 128 bytes
// compressed — matching the paper's constant "127.375 B" proof size.
type Proof struct {
	Ar  curve.G1Affine
	Bs  curve.G2Affine
	Krs curve.G1Affine
}

// Setup runs the trusted setup for the given compiled constraint
// system. rng supplies toxic-waste randomness (crypto/rand if nil). The
// returned keys are circuit-specific; re-run Setup whenever the circuit
// changes (in ZKROWNN the circuit is static, so this cost is paid once
// per architecture and shared by every solve-many proof).
func Setup(sys *r1cs.CompiledSystem, rng io.Reader) (*ProvingKey, *VerifyingKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	nbCons := sys.NbConstraints()
	if nbCons == 0 {
		return nil, nil, errors.New("groth16: empty constraint system")
	}
	domain, err := poly.NewDomain(uint64(nbCons))
	if err != nil {
		return nil, nil, err
	}

	tau, err := randFr(rng)
	if err != nil {
		return nil, nil, err
	}
	alpha, err := randFr(rng)
	if err != nil {
		return nil, nil, err
	}
	beta, err := randFr(rng)
	if err != nil {
		return nil, nil, err
	}
	gamma, err := randFr(rng)
	if err != nil {
		return nil, nil, err
	}
	delta, err := randFr(rng)
	if err != nil {
		return nil, nil, err
	}

	// QAP polynomials evaluated at τ via the Lagrange basis. The
	// per-constraint accumulation lands in per-wire slots, so each CSR
	// matrix is transposed first: wireIndex buckets every (constraint,
	// coeff) term by wire, and the field multiplications then parallelize
	// over disjoint wire ranges with no locking and no redundant scans.
	// The transposes walk the flat CSR arrays directly.
	lag := domain.LagrangeBasisAt(&tau)
	m := sys.NbWires
	var uIdx, vIdx, wIdx wireIndex
	var idxWg sync.WaitGroup
	idxWg.Add(3)
	go func() {
		defer idxWg.Done()
		uIdx = buildWireIndex(&sys.A, m)
	}()
	go func() {
		defer idxWg.Done()
		vIdx = buildWireIndex(&sys.B, m)
	}()
	go func() {
		defer idxWg.Done()
		wIdx = buildWireIndex(&sys.C, m)
	}()
	idxWg.Wait()

	uTau := make([]fr.Element, m)
	vTau := make([]fr.Element, m)
	wTau := make([]fr.Element, m)
	par.Range(m, func(lo, hi int) {
		uIdx.accumulate(lo, hi, lag, uTau)
		vIdx.accumulate(lo, hi, lag, vTau)
		wIdx.accumulate(lo, hi, lag, wTau)
	})

	var gammaInv, deltaInv fr.Element
	gammaInv.Inverse(&gamma)
	deltaInv.Inverse(&delta)

	// K-query scalars (private wires) and IC scalars (public wires):
	// (β·uⱼ + α·vⱼ + wⱼ) scaled by 1/δ or 1/γ. Disjoint writes per wire.
	ell := sys.NbPublic // wires 0..ell-1 public
	icScalars := make([]fr.Element, ell)
	kScalars := make([]fr.Element, m-ell)
	par.Range(m, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var acc, t fr.Element
			acc.Mul(&beta, &uTau[j])
			t.Mul(&alpha, &vTau[j])
			acc.Add(&acc, &t)
			acc.Add(&acc, &wTau[j])
			if j < ell {
				icScalars[j].Mul(&acc, &gammaInv)
			} else {
				kScalars[j-ell].Mul(&acc, &deltaInv)
			}
		}
	})

	// Z-query scalars: τⁱ·Z(τ)/δ for i = 0..n-2, each chunk seeded with
	// Z(τ)/δ·τ^start.
	n := domain.N
	zTau := domain.VanishingEval(&tau)
	var zOverDelta fr.Element
	zOverDelta.Mul(&zTau, &deltaInv)
	zScalars := make([]fr.Element, n-1)
	par.Range(len(zScalars), func(lo, hi int) {
		cur := zOverDelta
		var tpow fr.Element
		tpow.Exp(&tau, big.NewInt(int64(lo)))
		cur.Mul(&cur, &tpow)
		for i := lo; i < hi; i++ {
			zScalars[i] = cur
			cur.Mul(&cur, &tau)
		}
	})

	// Fixed-base tables amortize the ~4m+n generator multiplications.
	g1 := curve.G1Generator()
	g2 := curve.G2Generator()
	t1 := curve.NewG1FixedBaseTable(&g1)
	t2 := curve.NewG2FixedBaseTable(&g2)

	pk := &ProvingKey{DomainSize: n}
	vk := &VerifyingKey{}

	pk.A = t1.MulBatch(uTau)
	pk.B1 = t1.MulBatch(vTau)
	pk.B2 = t2.MulBatch(vTau)
	pk.K = t1.MulBatch(kScalars)
	pk.Z = t1.MulBatch(zScalars)
	vk.IC = t1.MulBatch(icScalars)

	single1 := func(k *fr.Element) curve.G1Affine {
		j := t1.Mul(k)
		var a curve.G1Affine
		a.FromJacobian(&j)
		return a
	}
	single2 := func(k *fr.Element) curve.G2Affine {
		j := t2.Mul(k)
		var a curve.G2Affine
		a.FromJacobian(&j)
		return a
	}
	pk.AlphaG1 = single1(&alpha)
	pk.BetaG1 = single1(&beta)
	pk.DeltaG1 = single1(&delta)
	pk.BetaG2 = single2(&beta)
	pk.DeltaG2 = single2(&delta)
	vk.AlphaG1 = pk.AlphaG1
	vk.BetaG2 = pk.BetaG2
	vk.GammaG2 = single2(&gamma)
	vk.DeltaG2 = single2(&delta)
	vk.AlphaBeta = pairing.Pair(&vk.AlphaG1, &vk.BetaG2)

	return pk, vk, nil
}

// Prove produces a proof that the witness satisfies the system. The
// witness is the full wire assignment (constant wire first); callers
// normally obtain it from CompiledSystem.Solve (or the frontend's eager
// compile result).
func Prove(sys *r1cs.CompiledSystem, pk *ProvingKey, witness []fr.Element, rng io.Reader) (*Proof, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if len(witness) != sys.NbWires {
		return nil, fmt.Errorf("groth16: witness has %d wires, system expects %d", len(witness), sys.NbWires)
	}
	if ok, bad := sys.IsSatisfied(witness); !ok {
		return nil, fmt.Errorf("groth16: witness does not satisfy constraint %d", bad)
	}

	rScalar, err := randFr(rng)
	if err != nil {
		return nil, err
	}
	sScalar, err := randFr(rng)
	if err != nil {
		return nil, err
	}

	// The A, B1 (G1) and B2 (G2) queries all multiply the same witness
	// vector, so its signed-digit recoding is computed once and shared —
	// digits depend only on the scalars, not the group.
	wDec := curve.DecomposeScalars(witness, curve.MSMWindowSize(len(witness)))

	// A = α + Σ wⱼ·[uⱼ(τ)]₁ + r·δ
	aJac := curve.MultiExpG1Decomposed(pk.A, wDec)
	var term curve.G1Jac
	var aAlpha curve.G1Jac
	aAlpha.FromAffine(&pk.AlphaG1)
	aJac.AddAssign(&aAlpha)
	term.FromAffine(&pk.DeltaG1)
	term.ScalarMul(&term, &rScalar)
	aJac.AddAssign(&term)

	// B2 = β + Σ wⱼ·[vⱼ(τ)]₂ + s·δ  (and its G1 shadow for C).
	b2Jac := curve.MultiExpG2Decomposed(pk.B2, wDec)
	var b2Beta curve.G2Jac
	b2Beta.FromAffine(&pk.BetaG2)
	b2Jac.AddAssign(&b2Beta)
	var term2 curve.G2Jac
	term2.FromAffine(&pk.DeltaG2)
	term2.ScalarMul(&term2, &sScalar)
	b2Jac.AddAssign(&term2)

	b1Jac := curve.MultiExpG1Decomposed(pk.B1, wDec)
	var b1Beta curve.G1Jac
	b1Beta.FromAffine(&pk.BetaG1)
	b1Jac.AddAssign(&b1Beta)
	term.FromAffine(&pk.DeltaG1)
	term.ScalarMul(&term, &sScalar)
	b1Jac.AddAssign(&term)

	// Quotient polynomial h = (A·B - C)/Z via coset FFTs.
	h, err := quotient(sys, pk.DomainSize, witness)
	if err != nil {
		return nil, err
	}

	// C = Σ_priv wⱼ·Kⱼ + Σ hᵢ·Zᵢ + s·A + r·B1 - r·s·δ
	privWitness := witness[sys.NbPublic:]
	cJac := curve.MultiExpG1(pk.K, privWitness)
	hMSM := curve.MultiExpG1(pk.Z, h)
	cJac.AddAssign(&hMSM)

	var sA curve.G1Jac
	sA.Set(&aJac)
	sA.ScalarMul(&sA, &sScalar)
	cJac.AddAssign(&sA)

	var rB curve.G1Jac
	rB.Set(&b1Jac)
	rB.ScalarMul(&rB, &rScalar)
	cJac.AddAssign(&rB)

	var rs fr.Element
	rs.Mul(&rScalar, &sScalar)
	term.FromAffine(&pk.DeltaG1)
	term.ScalarMul(&term, &rs)
	term.Neg(&term)
	cJac.AddAssign(&term)

	proof := &Proof{}
	proof.Ar.FromJacobian(&aJac)
	proof.Bs.FromJacobian(&b2Jac)
	proof.Krs.FromJacobian(&cJac)
	return proof, nil
}

// wireIndex is the transpose of one R1CS matrix: for each wire, the
// (constraint, coefficient) terms in which it appears, stored as CSR
// (offs[w]..offs[w+1] index into cons/coef).
type wireIndex struct {
	offs []uint32
	cons []uint32
	coef []fr.Element
}

// buildWireIndex transposes one CSR matrix in two O(#terms) passes
// (count + fill) over its flat term arrays.
func buildWireIndex(mx *r1cs.Matrix, m int) wireIndex {
	offs := make([]uint32, m+1)
	for _, w := range mx.Wires {
		offs[w+1]++
	}
	for w := 0; w < m; w++ {
		offs[w+1] += offs[w]
	}
	idx := wireIndex{
		offs: offs,
		cons: make([]uint32, offs[m]),
		coef: make([]fr.Element, offs[m]),
	}
	cursor := make([]uint32, m)
	copy(cursor, offs[:m])
	for i := 0; i < mx.NbRows(); i++ {
		for k := mx.RowOffs[i]; k < mx.RowOffs[i+1]; k++ {
			w := mx.Wires[k]
			c := cursor[w]
			cursor[w]++
			idx.cons[c] = uint32(i)
			idx.coef[c] = mx.Coeffs[k]
		}
	}
	return idx
}

// accumulate adds Σ coeff·lag[constraint] into dst[w] for every wire w
// in [lo, hi). Disjoint wire ranges touch disjoint dst entries.
func (x *wireIndex) accumulate(lo, hi int, lag, dst []fr.Element) {
	for w := lo; w < hi; w++ {
		for k := x.offs[w]; k < x.offs[w+1]; k++ {
			var term fr.Element
			term.Mul(&x.coef[k], &lag[x.cons[k]])
			dst[w].Add(&dst[w], &term)
		}
	}
}

// quotient computes the coefficients of h(X) = (A(X)·B(X) - C(X))/Z(X),
// returning n-1 coefficients. Constraint evaluations stream through the
// flat CSR arrays — contiguous loads instead of per-constraint slice
// headers.
func quotient(sys *r1cs.CompiledSystem, domainSize uint64, witness []fr.Element) ([]fr.Element, error) {
	domain, err := poly.NewDomain(domainSize)
	if err != nil {
		return nil, err
	}
	if domain.N != domainSize {
		return nil, fmt.Errorf("groth16: domain size %d is not a power of two", domainSize)
	}
	n := int(domain.N)
	a := make([]fr.Element, n)
	b := make([]fr.Element, n)
	c := make([]fr.Element, n)
	par.Range(sys.NbConstraints(), func(start, end int) {
		for i := start; i < end; i++ {
			a[i] = sys.A.RowEval(i, witness)
			b[i] = sys.B.RowEval(i, witness)
			c[i] = sys.C.RowEval(i, witness)
		}
	})

	// To coefficients.
	domain.IFFT(a)
	domain.IFFT(b)
	domain.IFFT(c)
	// To the coset, where Z is the non-zero constant g^n - 1.
	domain.FFTCoset(a)
	domain.FFTCoset(b)
	domain.FFTCoset(c)

	zc := domain.VanishingOnCoset()
	var zcInv fr.Element
	zcInv.Inverse(&zc)
	par.Range(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i].Mul(&a[i], &b[i])
			a[i].Sub(&a[i], &c[i])
			a[i].Mul(&a[i], &zcInv)
		}
	})
	domain.IFFTCoset(a)

	// deg h ≤ n-2, so the top coefficient must vanish.
	if !a[n-1].IsZero() {
		return nil, errors.New("groth16: quotient has unexpected degree; witness inconsistent")
	}
	return a[:n-1], nil
}

// Verify checks a proof against the public inputs (the instance,
// excluding the constant wire; len must equal NbPublic-1).
func Verify(vk *VerifyingKey, proof *Proof, publicInputs []fr.Element) error {
	if len(publicInputs) != len(vk.IC)-1 {
		return fmt.Errorf("groth16: got %d public inputs, verifying key expects %d",
			len(publicInputs), len(vk.IC)-1)
	}
	// acc = IC₀ + Σ xⱼ·IC_{j+1}
	acc := curve.MultiExpG1(vk.IC[1:], publicInputs)
	var ic0 curve.G1Jac
	ic0.FromAffine(&vk.IC[0])
	acc.AddAssign(&ic0)
	var accAff curve.G1Affine
	accAff.FromJacobian(&acc)

	// e(-A, B) · e(α, β) · e(acc, γ) · e(C, δ) == 1. With e(α, β) cached
	// on the key, its Miller loop is replaced by one GT multiplication
	// and the check needs 3 pairings instead of 4.
	var negA curve.G1Affine
	negA.Neg(&proof.Ar)
	var ok bool
	if !vk.AlphaBeta.IsZero() {
		ok = pairing.PairingCheckMul(
			[]*curve.G1Affine{&negA, &accAff, &proof.Krs},
			[]*curve.G2Affine{&proof.Bs, &vk.GammaG2, &vk.DeltaG2},
			&vk.AlphaBeta,
		)
	} else {
		ok = pairing.PairingCheck(
			[]*curve.G1Affine{&negA, &vk.AlphaG1, &accAff, &proof.Krs},
			[]*curve.G2Affine{&proof.Bs, &vk.BetaG2, &vk.GammaG2, &vk.DeltaG2},
		)
	}
	if !ok {
		return errors.New("groth16: invalid proof")
	}
	return nil
}

// randFr draws a uniform scalar, retrying the negligible zero case so
// toxic waste is always invertible.
func randFr(rng io.Reader) (fr.Element, error) {
	for {
		var e fr.Element
		if _, err := e.SetRandom(rng); err != nil {
			return e, err
		}
		if !e.IsZero() {
			return e, nil
		}
	}
}

// GTElement re-exports the target-group type for callers that want to
// cache e(α, β).
type GTElement = ext.E12

// PrecomputeAlphaBeta returns e(α, β), caching it on the key so
// subsequent Verify/BatchVerify calls take the 3-pairing fast path.
// Keys produced by Setup or deserialized by ReadFrom arrive with the
// cache already populated; call this (before sharing the key across
// goroutines) for keys assembled by hand.
func PrecomputeAlphaBeta(vk *VerifyingKey) GTElement {
	if vk.AlphaBeta.IsZero() {
		vk.AlphaBeta = pairing.Pair(&vk.AlphaG1, &vk.BetaG2)
	}
	return vk.AlphaBeta
}
