// Package groth16 implements the Groth16 zkSNARK (Jens Groth, "On the
// Size of Pairing-Based Non-interactive Arguments", EUROCRYPT 2016) over
// BN254, the protocol/curve combination used by ZKROWNN's libsnark
// backend.
//
// The implementation follows the paper's notation: the circuit is a QAP
// {uⱼ, vⱼ, wⱼ} over an FFT-friendly domain H, the trusted setup samples
// (τ, α, β, γ, δ), and a proof is the triple (A, B, C) ∈ G1 × G2 × G1
// verified with a single pairing-product equation
//
//	e(A, B) = e(α, β) · e(Σ xⱼ·ICⱼ, γ) · e(C, δ).
package groth16

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/pairing"
	"zkrownn/internal/obs"
	"zkrownn/internal/par"
	"zkrownn/internal/poly"
	"zkrownn/internal/r1cs"
)

// ProvingKey holds the prover's share of the structured reference string.
type ProvingKey struct {
	AlphaG1, BetaG1, DeltaG1 curve.G1Affine
	BetaG2, DeltaG2          curve.G2Affine

	// A[j] = [uⱼ(τ)]₁ for every wire j.
	A []curve.G1Affine
	// B1[j] = [vⱼ(τ)]₁, B2[j] = [vⱼ(τ)]₂ for every wire j.
	B1 []curve.G1Affine
	B2 []curve.G2Affine
	// K[j-ℓ-1] = [(β·uⱼ(τ) + α·vⱼ(τ) + wⱼ(τ))/δ]₁ for private wires j.
	K []curve.G1Affine
	// Z[i] = [τⁱ·Z_H(τ)/δ]₁ for i = 0..n-2.
	Z []curve.G1Affine

	// DomainSize is the FFT domain order n used at setup.
	DomainSize uint64
}

// VerifyingKey holds the public verification material.
type VerifyingKey struct {
	AlphaG1 curve.G1Affine
	BetaG2  curve.G2Affine
	GammaG2 curve.G2Affine
	DeltaG2 curve.G2Affine
	// IC[j] = [(β·uⱼ(τ) + α·vⱼ(τ) + wⱼ(τ))/γ]₁ for public wires
	// j = 0..ℓ (IC[0] is the constant wire).
	IC []curve.G1Affine
	// AlphaBeta caches e(α, β), the proof-independent pairing of the
	// verification equation: with it, single-proof Verify needs 3 Miller
	// loops instead of 4. Setup, ReadFrom, and PrecomputeAlphaBeta
	// populate it; the zero value (never a valid pairing output) means
	// "not computed" and Verify falls back to the 4-pairing check.
	// Populate before sharing the key across goroutines.
	AlphaBeta GTElement
}

// Proof is a Groth16 proof: 2 G1 points and 1 G2 point, 128 bytes
// compressed — matching the paper's constant "127.375 B" proof size.
type Proof struct {
	Ar  curve.G1Affine
	Bs  curve.G2Affine
	Krs curve.G1Affine
}

// Setup runs the trusted setup for the given compiled constraint
// system. rng supplies toxic-waste randomness (crypto/rand if nil). The
// returned keys are circuit-specific; re-run Setup whenever the circuit
// changes (in ZKROWNN the circuit is static, so this cost is paid once
// per architecture and shared by every solve-many proof). sys may be a
// resident *r1cs.CompiledSystem or a disk-backed
// *r1cs.CompiledSystemFile — the QAP accumulation then streams the
// matrices in bounded row windows and the key material is identical.
func Setup(sys r1cs.Constraints, rng io.Reader) (*ProvingKey, *VerifyingKey, error) {
	sc, err := computeSetupScalars(sys, rng)
	if err != nil {
		return nil, nil, err
	}

	// Fixed-base tables amortize the ~4m+n generator multiplications.
	g1 := curve.G1Generator()
	g2 := curve.G2Generator()
	t1 := curve.NewG1FixedBaseTable(&g1)
	t2 := curve.NewG2FixedBaseTable(&g2)

	pk := &ProvingKey{DomainSize: sc.domain.N}
	vk := &VerifyingKey{}

	pk.A = t1.MulBatch(sc.uTau)
	pk.B1 = t1.MulBatch(sc.vTau)
	pk.B2 = t2.MulBatch(sc.vTau)
	pk.K = t1.MulBatch(sc.kScalars)
	pk.Z = t1.MulBatch(sc.zScalars)

	pk.AlphaG1 = singleG1(t1, &sc.alpha)
	pk.BetaG1 = singleG1(t1, &sc.beta)
	pk.DeltaG1 = singleG1(t1, &sc.delta)
	pk.BetaG2 = singleG2(t2, &sc.beta)
	pk.DeltaG2 = singleG2(t2, &sc.delta)
	*vk = sc.verifyingKey(t1, t2)
	return pk, vk, nil
}

// setupScalars is the scalar half of trusted setup: every query section
// of the key, still in exponent form. Setup materializes the whole key
// from it; SetupStreamed spills each section to disk as it multiplies.
// Both consume identical randomness in identical order, so a seeded rng
// yields identical key material in either mode.
type setupScalars struct {
	domain                    *poly.Domain
	alpha, beta, gamma, delta fr.Element
	uTau, vTau                []fr.Element
	icScalars, kScalars       []fr.Element
	zScalars                  []fr.Element
}

func computeSetupScalars(sys r1cs.Constraints, rng io.Reader) (*setupScalars, error) {
	if rng == nil {
		rng = rand.Reader
	}
	// Resident systems validate structurally; file-backed systems were
	// validated when written and carry a CRC checked at open.
	if cs, ok := sys.(*r1cs.CompiledSystem); ok {
		if err := cs.Validate(); err != nil {
			return nil, err
		}
	}
	d := sys.Dims()
	nbCons := d.NbConstraints
	if nbCons == 0 {
		return nil, errors.New("groth16: empty constraint system")
	}
	domain, err := poly.NewDomain(uint64(nbCons))
	if err != nil {
		return nil, err
	}

	tau, err := randFr(rng)
	if err != nil {
		return nil, err
	}
	alpha, err := randFr(rng)
	if err != nil {
		return nil, err
	}
	beta, err := randFr(rng)
	if err != nil {
		return nil, err
	}
	gamma, err := randFr(rng)
	if err != nil {
		return nil, err
	}
	delta, err := randFr(rng)
	if err != nil {
		return nil, err
	}

	// QAP polynomials evaluated at τ via the Lagrange basis. For a
	// resident system the per-constraint accumulation lands in per-wire
	// slots after a transpose: wireIndex buckets every (constraint,
	// coeff) term by wire, and the field multiplications parallelize
	// over disjoint wire ranges with no locking and no redundant scans.
	// The transpose costs 8 bytes per term, though — GBs at paper scale
	// — so a file-backed system instead streams each matrix in bounded
	// row windows (per-term products in parallel, a serial scatter-add
	// into the per-wire slots), trading setup CPU for a fixed resident
	// budget. Field addition is commutative and associative over the
	// same exact term products, but accumulation ORDER matters for
	// bit-identical scalars: both paths add row-major per wire (the
	// transpose preserves row order within a wire; the window walk is
	// row-major), so the key material matches.
	lag := domain.LagrangeBasisAt(&tau)
	m := d.NbWires
	uTau := make([]fr.Element, m)
	vTau := make([]fr.Element, m)
	wTau := make([]fr.Element, m)
	if cs, ok := sys.(*r1cs.CompiledSystem); ok {
		var uIdx, vIdx, wIdx wireIndex
		var idxWg sync.WaitGroup
		idxWg.Add(3)
		go func() {
			defer idxWg.Done()
			uIdx = buildWireIndex(&cs.A, m)
		}()
		go func() {
			defer idxWg.Done()
			vIdx = buildWireIndex(&cs.B, m)
		}()
		go func() {
			defer idxWg.Done()
			wIdx = buildWireIndex(&cs.C, m)
		}()
		idxWg.Wait()
		par.Range(m, func(lo, hi int) {
			uIdx.accumulate(lo, hi, lag, uTau)
			vIdx.accumulate(lo, hi, lag, vTau)
			wIdx.accumulate(lo, hi, lag, wTau)
		})
	} else {
		var accWg sync.WaitGroup
		var accErr [3]error
		for i, job := range []struct {
			ms  r1cs.MatrixStream
			dst []fr.Element
		}{{sys.MatA(), uTau}, {sys.MatB(), vTau}, {sys.MatC(), wTau}} {
			accWg.Add(1)
			go func() {
				defer accWg.Done()
				accErr[i] = qapAccumulateStream(job.ms, lag, job.dst)
			}()
		}
		accWg.Wait()
		for _, err := range accErr {
			if err != nil {
				return nil, err
			}
		}
	}

	var gammaInv, deltaInv fr.Element
	gammaInv.Inverse(&gamma)
	deltaInv.Inverse(&delta)

	// K-query scalars (private wires) and IC scalars (public wires):
	// (β·uⱼ + α·vⱼ + wⱼ) scaled by 1/δ or 1/γ. Disjoint writes per wire.
	ell := d.NbPublic // wires 0..ell-1 public
	icScalars := make([]fr.Element, ell)
	kScalars := make([]fr.Element, m-ell)
	par.Range(m, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			var acc, t fr.Element
			acc.Mul(&beta, &uTau[j])
			t.Mul(&alpha, &vTau[j])
			acc.Add(&acc, &t)
			acc.Add(&acc, &wTau[j])
			if j < ell {
				icScalars[j].Mul(&acc, &gammaInv)
			} else {
				kScalars[j-ell].Mul(&acc, &deltaInv)
			}
		}
	})

	// Z-query scalars: τⁱ·Z(τ)/δ for i = 0..n-2, each chunk seeded with
	// Z(τ)/δ·τ^start.
	n := domain.N
	zTau := domain.VanishingEval(&tau)
	var zOverDelta fr.Element
	zOverDelta.Mul(&zTau, &deltaInv)
	zScalars := make([]fr.Element, n-1)
	par.Range(len(zScalars), func(lo, hi int) {
		cur := zOverDelta
		var tpow fr.Element
		tpow.Exp(&tau, big.NewInt(int64(lo)))
		cur.Mul(&cur, &tpow)
		for i := lo; i < hi; i++ {
			zScalars[i] = cur
			cur.Mul(&cur, &tau)
		}
	})

	return &setupScalars{
		domain: domain,
		alpha:  alpha, beta: beta, gamma: gamma, delta: delta,
		uTau: uTau, vTau: vTau,
		icScalars: icScalars, kScalars: kScalars, zScalars: zScalars,
	}, nil
}

// verifyingKey assembles the (small) verifying key from the setup
// scalars.
func (sc *setupScalars) verifyingKey(t1 *curve.G1FixedBaseTable, t2 *curve.G2FixedBaseTable) VerifyingKey {
	vk := VerifyingKey{IC: t1.MulBatch(sc.icScalars)}
	vk.AlphaG1 = singleG1(t1, &sc.alpha)
	vk.BetaG2 = singleG2(t2, &sc.beta)
	vk.GammaG2 = singleG2(t2, &sc.gamma)
	vk.DeltaG2 = singleG2(t2, &sc.delta)
	vk.AlphaBeta = pairing.Pair(&vk.AlphaG1, &vk.BetaG2)
	return vk
}

func singleG1(t *curve.G1FixedBaseTable, k *fr.Element) curve.G1Affine {
	j := t.Mul(k)
	var a curve.G1Affine
	a.FromJacobian(&j)
	return a
}

func singleG2(t *curve.G2FixedBaseTable, k *fr.Element) curve.G2Affine {
	j := t.Mul(k)
	var a curve.G2Affine
	a.FromJacobian(&j)
	return a
}

// Prove produces a proof that the witness satisfies the system. The
// witness is the full wire assignment (constant wire first); callers
// normally obtain it from CompiledSystem.Solve (or the frontend's eager
// compile result).
func Prove(sys *r1cs.CompiledSystem, pk *ProvingKey, witness []fr.Element, rng io.Reader) (*Proof, error) {
	return prove(sys, pk, memWitness(witness), rng, nil)
}

// ProveTraced is Prove recording per-phase spans (witness check, scalar
// recoding, each query MSM, the quotient pipeline) on tr. A nil tr is
// the untraced fast path — identical to Prove.
func ProveTraced(sys *r1cs.CompiledSystem, pk *ProvingKey, witness []fr.Element, rng io.Reader, tr *obs.Trace) (*Proof, error) {
	return prove(sys, pk, memWitness(witness), rng, tr)
}

// pkHeader is the handful of single points every prover backend exposes
// alongside its query sections.
type pkHeader struct {
	AlphaG1, BetaG1, DeltaG1 curve.G1Affine
	BetaG2, DeltaG2          curve.G2Affine
	DomainSize               uint64
}

// proverKey abstracts the structured reference string the prover
// consumes: the fully in-memory ProvingKey and the disk-backed
// StreamedProvingKey both implement it, so the two modes share one
// prove flow and cannot drift. Chunking only changes the order partial
// sums fold in — MSM linearity plus canonical affine normalization make
// the resulting proofs byte-identical across backends.
type proverKey interface {
	header() pkHeader
	// checkShape verifies the key's query sections match the system's
	// dimensions before any randomness is drawn.
	checkShape(d r1cs.Dims) error
	// prepWitness binds the witness for the three wire-query MSMs,
	// choosing the backend's recoding strategy. Backends that cannot
	// serve the witness's residency (the in-memory key with a spilled
	// witness) reject here, before randomness is drawn.
	prepWitness(w *witnessSrc) (witnessExp, error)
	// The exp methods record their spans on tr (nil disables tracing at
	// zero cost — the *Trace methods are nil-receiver no-ops).
	expA(w witnessExp, tr *obs.Trace) (curve.G1Jac, error)
	expB1(w witnessExp, tr *obs.Trace) (curve.G1Jac, error)
	expB2(w witnessExp, tr *obs.Trace) (curve.G2Jac, error)
	// expK runs the private-wire query over wires [nbPublic, NbWires).
	expK(w witnessExp, nbPublic int, tr *obs.Trace) (curve.G1Jac, error)
	// expZQuotient computes h = (A·B - C)/Z and immediately folds it
	// into the Z-query MSM, choosing the backend's memory strategy: two
	// resident domain vectors in memory, or the out-of-core pipeline
	// (disk-resident vectors, bounded-memory FFTs, MSM scalars streamed
	// from the h file). Field arithmetic is exact and fr encodings are
	// canonical, so h — and the proof — is bit-equal either way. Fusing
	// the two steps lets the streamed backend never materialize h.
	expZQuotient(sys r1cs.Constraints, domainSize uint64, w *witnessSrc, tr *obs.Trace) (curve.G1Jac, error)
}

// witnessExp carries the witness for the A, B1, and B2 queries. The
// in-memory backend recodes the whole vector once up front (dec is
// shared across the three MSMs — digits depend only on the scalars, not
// the group); the streamed backend leaves dec nil and recodes lazily
// chunk by chunk inside each MSM, keeping resident digit memory at one
// chunk's worth instead of two bytes per window per wire.
type witnessExp struct {
	src *witnessSrc
	dec *curve.ScalarDecomposition
}

func (pk *ProvingKey) header() pkHeader {
	return pkHeader{
		AlphaG1: pk.AlphaG1, BetaG1: pk.BetaG1, DeltaG1: pk.DeltaG1,
		BetaG2: pk.BetaG2, DeltaG2: pk.DeltaG2,
		DomainSize: pk.DomainSize,
	}
}

func (pk *ProvingKey) checkShape(d r1cs.Dims) error {
	m := d.NbWires
	if len(pk.A) != m || len(pk.B1) != m || len(pk.B2) != m {
		return fmt.Errorf("groth16: key wire sections sized %d/%d/%d, system has %d wires",
			len(pk.A), len(pk.B1), len(pk.B2), m)
	}
	if len(pk.K) != m-d.NbPublic {
		return fmt.Errorf("groth16: key K section sized %d, system has %d private wires",
			len(pk.K), m-d.NbPublic)
	}
	return nil
}

func (pk *ProvingKey) prepWitness(w *witnessSrc) (witnessExp, error) {
	if w.mem == nil {
		// The fully materialized key dwarfs the witness; pairing it with
		// a spilled witness would be a configuration bug, not a memory
		// win.
		return witnessExp{}, errors.New("groth16: in-memory proving key requires a resident witness")
	}
	return witnessExp{
		src: w,
		dec: curve.DecomposeScalars(w.mem, curve.MSMWindowSize(len(w.mem))),
	}, nil
}

func (pk *ProvingKey) expA(w witnessExp, tr *obs.Trace) (curve.G1Jac, error) {
	return curve.MultiExpG1DecomposedTraced(pk.A, w.dec, tr, "msm/A"), nil
}

func (pk *ProvingKey) expB1(w witnessExp, tr *obs.Trace) (curve.G1Jac, error) {
	return curve.MultiExpG1DecomposedTraced(pk.B1, w.dec, tr, "msm/B1"), nil
}

func (pk *ProvingKey) expB2(w witnessExp, tr *obs.Trace) (curve.G2Jac, error) {
	return curve.MultiExpG2DecomposedTraced(pk.B2, w.dec, tr, "msm/B2"), nil
}

func (pk *ProvingKey) expK(w witnessExp, nbPublic int, tr *obs.Trace) (curve.G1Jac, error) {
	return curve.MultiExpG1Traced(pk.K, w.src.mem[nbPublic:], tr, "msm/K"), nil
}

func (pk *ProvingKey) expZQuotient(sys r1cs.Constraints, domainSize uint64, w *witnessSrc, tr *obs.Trace) (curve.G1Jac, error) {
	cs, ok := sys.(*r1cs.CompiledSystem)
	if !ok || w.mem == nil {
		return curve.G1Jac{}, errors.New("groth16: in-memory proving key requires a resident system and witness")
	}
	h, err := quotient(cs, domainSize, w.mem, tr)
	if err != nil {
		return curve.G1Jac{}, err
	}
	res := curve.MultiExpG1Traced(pk.Z, h, tr, "msm/Z")
	releaseQuotient(h)
	return res, nil
}

// prove is the backend-agnostic prover core shared by Prove and
// ProveStreamed. Randomness is drawn in a fixed order (r then s), so a
// seeded rng yields identical proofs from either backend. tr, when
// non-nil, receives one span per prover phase.
func prove(sys r1cs.Constraints, pk proverKey, w *witnessSrc, rng io.Reader, tr *obs.Trace) (*Proof, error) {
	if rng == nil {
		rng = rand.Reader
	}
	d := sys.Dims()
	if w.len() != d.NbWires {
		return nil, fmt.Errorf("groth16: witness has %d wires, system expects %d", w.len(), d.NbWires)
	}
	sp := tr.Span("prove/satisfy")
	ok, bad, err := checkSatisfied(sys, w, tr)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("groth16: satisfy check: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("groth16: witness does not satisfy constraint %d", bad)
	}
	if err := pk.checkShape(d); err != nil {
		return nil, err
	}
	hdr := pk.header()

	rScalar, err := randFr(rng)
	if err != nil {
		return nil, err
	}
	sScalar, err := randFr(rng)
	if err != nil {
		return nil, err
	}

	sp = tr.Span("prove/recode")
	wExp, err := pk.prepWitness(w)
	sp.End()
	if err != nil {
		return nil, err
	}

	// A = α + Σ wⱼ·[uⱼ(τ)]₁ + r·δ
	aJac, err := pk.expA(wExp, tr)
	if err != nil {
		return nil, err
	}
	var term curve.G1Jac
	var aAlpha curve.G1Jac
	aAlpha.FromAffine(&hdr.AlphaG1)
	aJac.AddAssign(&aAlpha)
	term.FromAffine(&hdr.DeltaG1)
	term.ScalarMul(&term, &rScalar)
	aJac.AddAssign(&term)

	// B2 = β + Σ wⱼ·[vⱼ(τ)]₂ + s·δ  (and its G1 shadow for C).
	b2Jac, err := pk.expB2(wExp, tr)
	if err != nil {
		return nil, err
	}
	var b2Beta curve.G2Jac
	b2Beta.FromAffine(&hdr.BetaG2)
	b2Jac.AddAssign(&b2Beta)
	var term2 curve.G2Jac
	term2.FromAffine(&hdr.DeltaG2)
	term2.ScalarMul(&term2, &sScalar)
	b2Jac.AddAssign(&term2)

	b1Jac, err := pk.expB1(wExp, tr)
	if err != nil {
		return nil, err
	}
	var b1Beta curve.G1Jac
	b1Beta.FromAffine(&hdr.BetaG1)
	b1Jac.AddAssign(&b1Beta)
	term.FromAffine(&hdr.DeltaG1)
	term.ScalarMul(&term, &sScalar)
	b1Jac.AddAssign(&term)

	// C = Σ_priv wⱼ·Kⱼ + Σ hᵢ·Zᵢ + s·A + r·B1 - r·s·δ, where h is the
	// quotient polynomial (A·B - C)/Z computed via coset FFTs.
	cJac, err := pk.expK(wExp, d.NbPublic, tr)
	if err != nil {
		return nil, err
	}
	hMSM, err := pk.expZQuotient(sys, hdr.DomainSize, w, tr)
	if err != nil {
		return nil, err
	}
	cJac.AddAssign(&hMSM)

	var sA curve.G1Jac
	sA.Set(&aJac)
	sA.ScalarMul(&sA, &sScalar)
	cJac.AddAssign(&sA)

	var rB curve.G1Jac
	rB.Set(&b1Jac)
	rB.ScalarMul(&rB, &rScalar)
	cJac.AddAssign(&rB)

	var rs fr.Element
	rs.Mul(&rScalar, &sScalar)
	term.FromAffine(&hdr.DeltaG1)
	term.ScalarMul(&term, &rs)
	term.Neg(&term)
	cJac.AddAssign(&term)

	proof := &Proof{}
	proof.Ar.FromJacobian(&aJac)
	proof.Bs.FromJacobian(&b2Jac)
	proof.Krs.FromJacobian(&cJac)
	return proof, nil
}

// wireIndex is the transpose of one R1CS matrix: for each wire, the
// (constraint, coefficient) terms in which it appears, stored as CSR
// (offs[w]..offs[w+1] index into cons/coef). Coefficients stay
// dictionary-compressed (dict aliases the matrix's dictionary), so the
// transpose costs 8 bytes per term rather than 36 — it is a transient
// structure but sits squarely inside setup's peak memory.
type wireIndex struct {
	offs []uint32
	cons []uint32
	coef []uint32
	dict []fr.Element
}

// buildWireIndex transposes one CSR matrix in two O(#terms) passes
// (count + fill) over its flat term arrays.
func buildWireIndex(mx *r1cs.Matrix, m int) wireIndex {
	offs := make([]uint32, m+1)
	for _, w := range mx.Wires {
		offs[w+1]++
	}
	for w := 0; w < m; w++ {
		offs[w+1] += offs[w]
	}
	idx := wireIndex{
		offs: offs,
		cons: make([]uint32, offs[m]),
		coef: make([]uint32, offs[m]),
		dict: mx.Dict,
	}
	cursor := make([]uint32, m)
	copy(cursor, offs[:m])
	for i := 0; i < mx.NbRows(); i++ {
		for k := mx.RowOffs[i]; k < mx.RowOffs[i+1]; k++ {
			w := mx.Wires[k]
			c := cursor[w]
			cursor[w]++
			idx.cons[c] = uint32(i)
			idx.coef[c] = mx.CoeffIdx[k]
		}
	}
	return idx
}

// setupWindowTerms bounds one QAP-accumulation row window: 64Ki terms
// keep the per-term product scratch at 2 MiB per matrix (the three
// matrices accumulate concurrently) — far below the transpose's 8
// bytes per term over the whole matrix.
const setupWindowTerms = 1 << 16

// qapAccumulateStream adds Σ coeff·lag[row] into dst[wire] for every
// term of a streamed matrix, without the wireIndex transpose: each row
// window computes its per-term products in parallel (disjoint scratch
// slots), then a serial scatter-add folds them into the shared per-wire
// accumulators (wires repeat across rows, so scattering cannot
// parallelize without per-worker vectors). The walk is row-major —
// the same per-wire addition order as the transpose path — so the
// accumulated scalars are bit-identical.
func qapAccumulateStream(ms r1cs.MatrixStream, lag, dst []fr.Element) error {
	win := &r1cs.RowWindow{}
	var prod []fr.Element
	for start, n := 0, ms.NbRows(); start < n; {
		end := ms.EndRowForTerms(start, setupWindowTerms)
		if err := ms.LoadRows(win, start, end); err != nil {
			return err
		}
		nt := win.NbTerms()
		if cap(prod) < nt {
			prod = make([]fr.Element, nt)
		}
		p := prod[:nt]
		base := win.Offs[0]
		par.Range(win.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				l := &lag[win.Start+i]
				for k := win.Offs[i] - base; k < win.Offs[i+1]-base; k++ {
					p[k].Mul(&win.Dict[win.CoeffIdx[k]], l)
				}
			}
		})
		for k, wi := range win.Wires {
			dst[wi].Add(&dst[wi], &p[k])
		}
		start = end
	}
	return nil
}

// accumulate adds Σ coeff·lag[constraint] into dst[w] for every wire w
// in [lo, hi). Disjoint wire ranges touch disjoint dst entries.
func (x *wireIndex) accumulate(lo, hi int, lag, dst []fr.Element) {
	for w := lo; w < hi; w++ {
		for k := x.offs[w]; k < x.offs[w+1]; k++ {
			var term fr.Element
			term.Mul(&x.dict[x.coef[k]], &lag[x.cons[k]])
			dst[w].Add(&dst[w], &term)
		}
	}
}

// quotientVecs recycles the domain-sized working vectors of the
// quotient pipeline across proofs: a long-lived prover (the engine's
// worker pool) stops churning multi-MB allocations, and concurrent
// proofs over the same circuit share a small steady-state set.
var quotientVecs poly.VecPool

// releaseQuotient returns a quotient coefficient vector obtained from
// quotient to the pool once its MSM has consumed it.
func releaseQuotient(h []fr.Element) { quotientVecs.Put(h) }

// quotient computes the coefficients of h(X) = (A(X)·B(X) - C(X))/Z(X),
// returning n-1 coefficients. Constraint evaluations stream through the
// flat CSR arrays — contiguous loads instead of per-constraint slice
// headers.
//
// The pipeline is bounded to two domain-sized vectors (both pooled):
// each of A, B, C is evaluated and transformed to the coset in turn,
// folding into the accumulator pointwise, instead of materializing all
// three at once. Every vector undergoes exactly the transform sequence
// of the naive three-vector form, so the output is bit-identical. The
// caller must hand the returned slice to releaseQuotient after use.
//
// tr, when non-nil, records one span per pipeline stage (matrix
// evaluation, each transform with its per-level breakdown, the
// pointwise folds) under a "quotient/" prefix.
func quotient(sys *r1cs.CompiledSystem, domainSize uint64, witness []fr.Element, tr *obs.Trace) ([]fr.Element, error) {
	domain, err := poly.NewDomain(domainSize)
	if err != nil {
		return nil, err
	}
	if domain.N != domainSize {
		return nil, fmt.Errorf("groth16: domain size %d is not a power of two", domainSize)
	}
	n := int(domain.N)
	nbCons := sys.NbConstraints()
	ab := quotientVecs.Get(n)
	tmp := quotientVecs.Get(n)
	defer quotientVecs.Put(tmp)

	spAll := tr.Span("quotient")
	defer spAll.End()

	// cosetEval evaluates one constraint matrix against the witness and
	// carries it to the coset: dst holds M·w on the coset g·H. Rows
	// [nbCons, n) stay zero (Get returns zeroed vectors; reuse of tmp
	// clears the tail explicitly).
	cosetEval := func(mx *r1cs.Matrix, dst []fr.Element, name string) {
		var sp *obs.Span
		if tr != nil {
			sp = tr.Span("quotient/eval-" + name)
		}
		par.Range(nbCons, func(start, end int) {
			for i := start; i < end; i++ {
				dst[i] = mx.RowEval(i, witness)
			}
		})
		sp.End()
		if tr != nil {
			domain.IFFTTraced(dst, tr, "quotient/ifft-"+name)
			domain.FFTCosetTraced(dst, tr, "quotient/fft-coset-"+name)
		} else {
			domain.IFFT(dst)
			domain.FFTCoset(dst)
		}
	}

	cosetEval(&sys.A, ab, "A")
	cosetEval(&sys.B, tmp, "B")
	sp := tr.Span("quotient/mul-ab")
	par.Range(n, func(lo, hi int) {
		fr.MulVecInto(ab[lo:hi], ab[lo:hi], tmp[lo:hi])
	})
	sp.End()

	// tmp is dense after the FFTs; re-zero the tail the C evaluation
	// won't overwrite before reusing it.
	clear(tmp[nbCons:])
	cosetEval(&sys.C, tmp, "C")

	// On the coset, Z is the non-zero constant g^n - 1.
	zc := domain.VanishingOnCoset()
	var zcInv fr.Element
	zcInv.Inverse(&zc)
	sp = tr.Span("quotient/divide-z")
	par.Range(n, func(lo, hi int) {
		fr.SubScalarMulVecInto(ab[lo:hi], ab[lo:hi], tmp[lo:hi], &zcInv)
	})
	sp.End()
	domain.IFFTCosetTraced(ab, tr, "quotient/ifft-coset")

	// deg h ≤ n-2, so the top coefficient must vanish.
	if !ab[n-1].IsZero() {
		quotientVecs.Put(ab)
		return nil, errors.New("groth16: quotient has unexpected degree; witness inconsistent")
	}
	return ab[:n-1], nil
}

// Verify checks a proof against the public inputs (the instance,
// excluding the constant wire; len must equal NbPublic-1).
func Verify(vk *VerifyingKey, proof *Proof, publicInputs []fr.Element) error {
	return VerifyTraced(vk, proof, publicInputs, nil)
}

// VerifyTraced is Verify recording the IC multi-exponentiation and the
// pairing check as spans on tr. A nil tr is the untraced fast path.
func VerifyTraced(vk *VerifyingKey, proof *Proof, publicInputs []fr.Element, tr *obs.Trace) error {
	if len(publicInputs) != len(vk.IC)-1 {
		return fmt.Errorf("groth16: got %d public inputs, verifying key expects %d",
			len(publicInputs), len(vk.IC)-1)
	}
	// acc = IC₀ + Σ xⱼ·IC_{j+1}
	acc := curve.MultiExpG1Traced(vk.IC[1:], publicInputs, tr, "verify/msm-ic")
	var ic0 curve.G1Jac
	ic0.FromAffine(&vk.IC[0])
	acc.AddAssign(&ic0)
	var accAff curve.G1Affine
	accAff.FromJacobian(&acc)

	// e(-A, B) · e(α, β) · e(acc, γ) · e(C, δ) == 1. With e(α, β) cached
	// on the key, its Miller loop is replaced by one GT multiplication
	// and the check needs 3 pairings instead of 4.
	var negA curve.G1Affine
	negA.Neg(&proof.Ar)
	sp := tr.Span("verify/pairing")
	var ok bool
	if !vk.AlphaBeta.IsZero() {
		ok = pairing.PairingCheckMul(
			[]*curve.G1Affine{&negA, &accAff, &proof.Krs},
			[]*curve.G2Affine{&proof.Bs, &vk.GammaG2, &vk.DeltaG2},
			&vk.AlphaBeta,
		)
	} else {
		ok = pairing.PairingCheck(
			[]*curve.G1Affine{&negA, &vk.AlphaG1, &accAff, &proof.Krs},
			[]*curve.G2Affine{&proof.Bs, &vk.BetaG2, &vk.GammaG2, &vk.DeltaG2},
		)
	}
	sp.End()
	if !ok {
		return errors.New("groth16: invalid proof")
	}
	return nil
}

// randFr draws a uniform scalar, retrying the negligible zero case so
// toxic waste is always invertible.
func randFr(rng io.Reader) (fr.Element, error) {
	for {
		var e fr.Element
		if _, err := e.SetRandom(rng); err != nil {
			return e, err
		}
		if !e.IsZero() {
			return e, nil
		}
	}
}

// GTElement re-exports the target-group type for callers that want to
// cache e(α, β).
type GTElement = ext.E12

// PrecomputeAlphaBeta returns e(α, β), caching it on the key so
// subsequent Verify/BatchVerify calls take the 3-pairing fast path.
// Keys produced by Setup or deserialized by ReadFrom arrive with the
// cache already populated; call this (before sharing the key across
// goroutines) for keys assembled by hand.
func PrecomputeAlphaBeta(vk *VerifyingKey) GTElement {
	if vk.AlphaBeta.IsZero() {
		vk.AlphaBeta = pairing.Pair(&vk.AlphaG1, &vk.BetaG2)
	}
	return vk.AlphaBeta
}
