package groth16

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
	"math/bits"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/ipp"
	"zkrownn/internal/bn254/pairing"
	"zkrownn/internal/par"
)

// SnarkPack-style aggregation (Gailly–Maller–Nitulescu over the
// Bünz et al. inner-pairing-product argument): N Groth16 proofs under
// ONE verifying key fold into a single O(log N) AggregateProof whose
// verification costs one pairing-product check plus O(log N) target-
// group work — a registry auditing N ownership claims checks one
// object instead of N proofs.
//
// Protocol shape (TIPP for the e(Aᵢ,Bᵢ) products, MIPP for Σ rⁱ·Cᵢ,
// fused so both share one transcript and one set of commitment keys):
//
//  1. Commit to the proof vectors under the two-trapdoor SRS keys:
//     T_AB = Πe(Aᵢ,v1ᵢ)·Πe(w1ᵢ,Bᵢ), U_AB likewise under (v2,w2),
//     T_C = Πe(Cᵢ,v1ᵢ), U_C = Πe(Cᵢ,v2ᵢ).
//  2. Draw the Fiat–Shamir challenge r binding vk, instance, and the
//     commitments; rescale Aᵢ ← rⁱ·Aᵢ, Cᵢ ← rⁱ·Cᵢ and the v-keys by
//     r⁻ⁱ (the commitments are unchanged: the scalings cancel inside
//     each pairing), and send Z_AB = Πe(Aᵢ,Bᵢ)^rⁱ, Z_C = Σ rⁱ·Cᵢ.
//  3. log N GIPA halving rounds: cross terms per round seed a
//     challenge x, vectors fold as A←A_L+x·A_R, B←B_L+x⁻¹·B_R (keys
//     fold opposite their vectors).
//  4. The surviving size-1 vectors are checked directly; the folded
//     commitment keys are bound to the SRS by KZG openings of their
//     structured polynomials at a transcript point z.
//  5. The original Z_AB, Z_C satisfy the r-powered sum of the N
//     Groth16 equations: Z_AB = e(α,β)^Σrⁱ · e(Σrⁱ·ICᵢ, γ) · e(Z_C, δ).
//
// Soundness of the whole object reduces to the inner-pairing-product
// assumptions on the SRS plus standard Groth16 soundness; a registry
// accepts an aggregate exactly when it would have accepted the batch.

// AggregateProof is the O(log N) aggregation artifact. Count is the
// real (pre-padding) number of proofs; sets whose size is not a power
// of two are padded by repeating the last proof, which the verifier
// reproduces from the public inputs alone.
type AggregateProof struct {
	Count uint32

	// Vector commitments (bound before the challenge r).
	TAB, UAB, TC, UC GTElement
	// Aggregated products under r: Z_AB = Πe(Aᵢ,Bᵢ)^rⁱ, Z_C = Σrⁱ·Cᵢ.
	ZAB GTElement
	ZC  curve.G1Affine

	// One entry per GIPA halving round (log₂ of the padded size).
	Rounds []AggregateRound

	// The fully folded vectors and commitment keys.
	FinalA, FinalC   curve.G1Affine
	FinalB           curve.G2Affine
	FinalV1, FinalV2 curve.G2Affine
	FinalW1, FinalW2 curve.G1Affine

	// KZG openings binding the folded keys to the SRS at the
	// transcript point z.
	PiV1, PiV2 curve.G2Affine
	PiW1, PiW2 curve.G1Affine
}

// AggregateRound carries one GIPA round's cross terms.
type AggregateRound struct {
	ZL, ZR             GTElement // TIPP product cross terms
	TL, TR, UL, UR     GTElement // TIPP commitment cross terms
	TCL, TCR, UCL, UCR GTElement // MIPP commitment cross terms
	ZCL, ZCR           curve.G1Affine
}

const aggregateLabel = "zkrownn/aggregate/v1"

// ErrAggregateSize rejects proof sets larger than the SRS supports.
var ErrAggregateSize = errors.New("groth16: proof set exceeds aggregation SRS capacity")

// AggregateProofs folds N same-VK proofs into one AggregateProof under
// the given aggregation SRS. The set is padded to a power of two by
// repeating the last proof; padding is recomputable by the verifier and
// sound (a duplicated valid proof satisfies its own equation).
func AggregateProofs(srs *ipp.SRS, vk *VerifyingKey, proofs []*Proof, publicInputs [][]fr.Element) (*AggregateProof, error) {
	N := len(proofs)
	if N == 0 {
		return nil, errors.New("groth16: empty aggregation set")
	}
	if N != len(publicInputs) {
		return nil, fmt.Errorf("groth16: %d proofs but %d public-input sets", N, len(publicInputs))
	}
	for i, pub := range publicInputs {
		if len(pub) != len(vk.IC)-1 {
			return nil, fmt.Errorf("groth16: proof %d has %d public inputs, vk expects %d",
				i, len(pub), len(vk.IC)-1)
		}
	}
	n := ipp.NextPow2(N)
	if n > srs.MaxN {
		return nil, fmt.Errorf("%w: %d proofs pad to %d > %d", ErrAggregateSize, N, n, srs.MaxN)
	}
	v1SRS, v2SRS, w1SRS, w2SRS, err := srs.Keys(n)
	if err != nil {
		return nil, err
	}

	// Padded working vectors.
	A := make([]curve.G1Affine, n)
	B := make([]curve.G2Affine, n)
	C := make([]curve.G1Affine, n)
	for i := 0; i < n; i++ {
		p := proofs[min(i, N-1)]
		A[i], B[i], C[i] = p.Ar, p.Bs, p.Krs
	}
	w1 := append([]curve.G1Affine(nil), w1SRS...)
	w2 := append([]curve.G1Affine(nil), w2SRS...)

	agg := &AggregateProof{Count: uint32(N)}

	// Commitments under the unrescaled keys.
	agg.TAB = ipp.PairProduct2(A, v1SRS, w1, B)
	agg.UAB = ipp.PairProduct2(A, v2SRS, w2, B)
	agg.TC = ipp.PairProduct(C, v1SRS)
	agg.UC = ipp.PairProduct(C, v2SRS)

	t := newAggregateTranscript(vk, uint32(N), n, publicInputs)
	t.AppendGT("t-ab", &agg.TAB)
	t.AppendGT("u-ab", &agg.UAB)
	t.AppendGT("t-c", &agg.TC)
	t.AppendGT("u-c", &agg.UC)
	r := t.Challenge("r")
	var rInv fr.Element
	rInv.Inverse(&r)

	// Rescale: Aᵢ ← rⁱAᵢ, Cᵢ ← rⁱCᵢ, v-keys by r⁻ⁱ. The commitments
	// above are unchanged under this rescaling, so GIPA can run on the
	// rescaled vectors against the same T/U values.
	rPow := powerSeries(&r, n)
	rInvPow := powerSeries(&rInv, n)
	A = scaleG1(A, rPow)
	C = scaleG1(C, rPow)
	v1 := scaleG2(v1SRS, rInvPow)
	v2 := scaleG2(v2SRS, rInvPow)

	agg.ZAB = ipp.PairProduct(A, B)
	var zc curve.G1Jac
	zc.SetInfinity()
	for i := range C {
		zc.AddMixed(&C[i])
	}
	agg.ZC.FromJacobian(&zc)
	t.AppendGT("z-ab", &agg.ZAB)
	t.AppendG1("z-c", &agg.ZC)

	// GIPA halving rounds.
	var (
		xs []fr.Element
		y  fr.Element
	)
	y.SetOne()
	for m := n; m > 1; m /= 2 {
		half := m / 2
		var rd AggregateRound
		rd.ZL = ipp.PairProduct(A[:half], B[half:m])
		rd.ZR = ipp.PairProduct(A[half:m], B[:half])
		rd.TL = ipp.PairProduct2(A[:half], v1[half:m], w1[:half], B[half:m])
		rd.TR = ipp.PairProduct2(A[half:m], v1[:half], w1[half:m], B[:half])
		rd.UL = ipp.PairProduct2(A[:half], v2[half:m], w2[:half], B[half:m])
		rd.UR = ipp.PairProduct2(A[half:m], v2[:half], w2[half:m], B[:half])
		rd.TCL = ipp.PairProduct(C[:half], v1[half:m])
		rd.TCR = ipp.PairProduct(C[half:m], v1[:half])
		rd.UCL = ipp.PairProduct(C[:half], v2[half:m])
		rd.UCR = ipp.PairProduct(C[half:m], v2[:half])
		rd.ZCL = sumScaledG1(C[:half], &y)
		rd.ZCR = sumScaledG1(C[half:m], &y)

		appendRound(t, &rd)
		x := t.Challenge("x")
		var xInv fr.Element
		xInv.Inverse(&x)

		A = foldG1(A[:m], &x)
		B = foldG2(B[:m], &xInv)
		C = foldG1(C[:m], &x)
		v1 = foldG2(v1[:m], &xInv)
		v2 = foldG2(v2[:m], &xInv)
		w1 = foldG1(w1[:m], &x)
		w2 = foldG1(w2[:m], &x)
		var onePlusXInv fr.Element
		onePlusXInv.SetOne()
		onePlusXInv.Add(&onePlusXInv, &xInv)
		y.Mul(&y, &onePlusXInv)

		xs = append(xs, x)
		agg.Rounds = append(agg.Rounds, rd)
	}

	agg.FinalA, agg.FinalB, agg.FinalC = A[0], B[0], C[0]
	agg.FinalV1, agg.FinalV2 = v1[0], v2[0]
	agg.FinalW1, agg.FinalW2 = w1[0], w2[0]

	appendFinals(t, agg)
	z := t.Challenge("z")

	// KZG openings of the folded-key polynomials at z.
	fCoeffs, pCoeffs := finalKeyPolys(n, xs, &rInv)
	agg.PiV1 = kzgOpenG2(srs.G2A, fCoeffs, &z)
	agg.PiV2 = kzgOpenG2(srs.G2B, fCoeffs, &z)
	agg.PiW1 = kzgOpenG1(srs.G1A, pCoeffs, &z)
	agg.PiW2 = kzgOpenG1(srs.G1B, pCoeffs, &z)
	return agg, nil
}

// VerifyAggregate checks an AggregateProof against the SRS verifier key
// and the same per-proof public inputs the individual verifications
// would have used. It accepts exactly the proof sets BatchVerify
// accepts (up to the challenge soundness error).
func VerifyAggregate(svk *ipp.VerifierKey, vk *VerifyingKey, agg *AggregateProof, publicInputs [][]fr.Element) error {
	N := int(agg.Count)
	if N < 1 {
		return errors.New("groth16: aggregate proof has zero count")
	}
	if N != len(publicInputs) {
		return fmt.Errorf("groth16: aggregate covers %d proofs but %d public-input sets given", N, len(publicInputs))
	}
	for i, pub := range publicInputs {
		if len(pub) != len(vk.IC)-1 {
			return fmt.Errorf("groth16: instance %d has %d public inputs, vk expects %d",
				i, len(pub), len(vk.IC)-1)
		}
	}
	n := ipp.NextPow2(N)
	k := bits.TrailingZeros(uint(n))
	if len(agg.Rounds) != k {
		return fmt.Errorf("groth16: aggregate has %d rounds, size %d needs %d", len(agg.Rounds), n, k)
	}

	// Replay the transcript.
	t := newAggregateTranscript(vk, agg.Count, n, publicInputs)
	t.AppendGT("t-ab", &agg.TAB)
	t.AppendGT("u-ab", &agg.UAB)
	t.AppendGT("t-c", &agg.TC)
	t.AppendGT("u-c", &agg.UC)
	r := t.Challenge("r")
	var rInv fr.Element
	rInv.Inverse(&r)
	t.AppendGT("z-ab", &agg.ZAB)
	t.AppendG1("z-c", &agg.ZC)

	// Fold the commitments through the rounds:
	// V' = V · L^{x⁻¹} · R^{x} (and the G1 analogue for Z_C).
	// Generic (non-cyclotomic) exponentiation throughout: round
	// elements are prover-supplied and unchecked, so the cyclotomic
	// shortcuts' subgroup assumptions do not hold.
	zab, tab, uab, tc, uc := agg.ZAB, agg.TAB, agg.UAB, agg.TC, agg.UC
	var zcJac curve.G1Jac
	zcJac.FromAffine(&agg.ZC)
	var y fr.Element
	y.SetOne()
	xs := make([]fr.Element, k)
	for j := range agg.Rounds {
		rd := &agg.Rounds[j]
		appendRound(t, rd)
		x := t.Challenge("x")
		var xInv fr.Element
		xInv.Inverse(&x)
		xs[j] = x
		xBig, xInvBig := x.ToBigInt(), xInv.ToBigInt()

		foldGT(&zab, &rd.ZL, &rd.ZR, xInvBig, xBig)
		foldGT(&tab, &rd.TL, &rd.TR, xInvBig, xBig)
		foldGT(&uab, &rd.UL, &rd.UR, xInvBig, xBig)
		foldGT(&tc, &rd.TCL, &rd.TCR, xInvBig, xBig)
		foldGT(&uc, &rd.UCL, &rd.UCR, xInvBig, xBig)

		var p curve.G1Jac
		p.FromAffine(&rd.ZCL)
		p.ScalarMul(&p, &xInv)
		zcJac.AddAssign(&p)
		p.FromAffine(&rd.ZCR)
		p.ScalarMul(&p, &x)
		zcJac.AddAssign(&p)

		var onePlusXInv fr.Element
		onePlusXInv.SetOne()
		onePlusXInv.Add(&onePlusXInv, &xInv)
		y.Mul(&y, &onePlusXInv)
	}
	appendFinals(t, agg)
	z := t.Challenge("z")

	// Folded-vector openings: the size-1 vectors must reproduce the
	// folded commitments.
	oneG1 := func(p curve.G1Affine) []curve.G1Affine { return []curve.G1Affine{p} }
	oneG2 := func(p curve.G2Affine) []curve.G2Affine { return []curve.G2Affine{p} }
	if got := ipp.PairProduct2(oneG1(agg.FinalA), oneG2(agg.FinalV1), oneG1(agg.FinalW1), oneG2(agg.FinalB)); !got.Equal(&tab) {
		return errors.New("groth16: aggregate verification failed (T_AB opening)")
	}
	if got := ipp.PairProduct2(oneG1(agg.FinalA), oneG2(agg.FinalV2), oneG1(agg.FinalW2), oneG2(agg.FinalB)); !got.Equal(&uab) {
		return errors.New("groth16: aggregate verification failed (U_AB opening)")
	}
	if got := pairing.Pair(&agg.FinalA, &agg.FinalB); !got.Equal(&zab) {
		return errors.New("groth16: aggregate verification failed (Z_AB opening)")
	}
	if got := pairing.Pair(&agg.FinalC, &agg.FinalV1); !got.Equal(&tc) {
		return errors.New("groth16: aggregate verification failed (T_C opening)")
	}
	if got := pairing.Pair(&agg.FinalC, &agg.FinalV2); !got.Equal(&uc) {
		return errors.New("groth16: aggregate verification failed (U_C opening)")
	}
	var zcWant curve.G1Jac
	zcWant.FromAffine(&agg.FinalC)
	zcWant.ScalarMul(&zcWant, &y)
	var zcGot, zcWantAff curve.G1Affine
	zcGot.FromJacobian(&zcJac)
	zcWantAff.FromJacobian(&zcWant)
	if !zcGot.Equal(&zcWantAff) {
		return errors.New("groth16: aggregate verification failed (Z_C opening)")
	}

	// KZG checks bind the folded keys to the SRS. The folded-key
	// polynomials evaluate in O(log n):
	//   f_v(z) = Π (1 + xⱼ⁻¹·(z/r)^{dⱼ}),  p_w(z) = zⁿ·Π (1 + xⱼ·z^{dⱼ}).
	fz, pz := evalFinalKeyPolys(n, xs, &rInv, &z)
	g1 := curve.G1GeneratorAffine()
	g2 := curve.G2GeneratorAffine()
	if !kzgCheckG2(&g1, &svk.GA, &agg.FinalV1, &agg.PiV1, &fz, &z) {
		return errors.New("groth16: aggregate verification failed (v1 key opening)")
	}
	if !kzgCheckG2(&g1, &svk.GB, &agg.FinalV2, &agg.PiV2, &fz, &z) {
		return errors.New("groth16: aggregate verification failed (v2 key opening)")
	}
	if !kzgCheckG1(&g2, &svk.HA, &agg.FinalW1, &agg.PiW1, &pz, &z) {
		return errors.New("groth16: aggregate verification failed (w1 key opening)")
	}
	if !kzgCheckG1(&g2, &svk.HB, &agg.FinalW2, &agg.PiW2, &pz, &z) {
		return errors.New("groth16: aggregate verification failed (w2 key opening)")
	}

	// The aggregated Groth16 relation over the ORIGINAL (unfolded)
	// Z_AB, Z_C: Z_AB = e(α,β)^Σrⁱ · e(Σrⁱ·ICᵢ, γ) · e(Z_C, δ).
	rPow := powerSeries(&r, n)
	var sumR fr.Element
	icScalars := make([]fr.Element, len(vk.IC)-1)
	for i := 0; i < n; i++ {
		sumR.Add(&sumR, &rPow[i])
		pub := publicInputs[min(i, N-1)]
		for j := range icScalars {
			var tmp fr.Element
			tmp.Mul(&rPow[i], &pub[j])
			icScalars[j].Add(&icScalars[j], &tmp)
		}
	}
	var icAgg curve.G1Jac
	icAgg.SetInfinity()
	if len(icScalars) > 0 {
		icAgg = curve.MultiExpG1(vk.IC[1:], icScalars)
	}
	var ic0 curve.G1Jac
	ic0.FromAffine(&vk.IC[0])
	ic0.ScalarMul(&ic0, &sumR)
	icAgg.AddAssign(&ic0)
	var icAff curve.G1Affine
	icAff.FromJacobian(&icAgg)

	var alphaBeta ext.E12
	if !vk.AlphaBeta.IsZero() {
		alphaBeta.CyclotomicExp(&vk.AlphaBeta, sumR.ToBigInt())
	} else {
		ab := pairing.Pair(&vk.AlphaG1, &vk.BetaG2)
		alphaBeta.CyclotomicExp(&ab, sumR.ToBigInt())
	}
	var zabInv ext.E12
	zabInv.Inverse(&agg.ZAB)
	alphaBeta.Mul(&alphaBeta, &zabInv)
	if !pairing.PairingCheckMul(
		[]*curve.G1Affine{&icAff, &agg.ZC},
		[]*curve.G2Affine{&vk.GammaG2, &vk.DeltaG2},
		&alphaBeta,
	) {
		return errors.New("groth16: aggregate verification failed (Groth16 relation)")
	}
	return nil
}

// newAggregateTranscript binds the context every challenge depends on:
// the verifying key, the real and padded sizes, and every instance.
func newAggregateTranscript(vk *VerifyingKey, count uint32, n int, publicInputs [][]fr.Element) *ipp.Transcript {
	t := ipp.NewTranscript(aggregateLabel)
	h := sha256.New()
	if _, err := vk.WriteTo(h); err != nil {
		// Hash-writer never errors; keep the transcript total regardless.
		panic(err)
	}
	t.AppendBytes("vk", h.Sum(nil))
	t.AppendUint32("count", count)
	t.AppendUint32("n", uint32(n))
	for _, pub := range publicInputs {
		for i := range pub {
			t.AppendFr("pub", &pub[i])
		}
	}
	return t
}

func appendRound(t *ipp.Transcript, rd *AggregateRound) {
	t.AppendGT("z-l", &rd.ZL)
	t.AppendGT("z-r", &rd.ZR)
	t.AppendGT("t-l", &rd.TL)
	t.AppendGT("t-r", &rd.TR)
	t.AppendGT("u-l", &rd.UL)
	t.AppendGT("u-r", &rd.UR)
	t.AppendGT("tc-l", &rd.TCL)
	t.AppendGT("tc-r", &rd.TCR)
	t.AppendGT("uc-l", &rd.UCL)
	t.AppendGT("uc-r", &rd.UCR)
	t.AppendG1("zc-l", &rd.ZCL)
	t.AppendG1("zc-r", &rd.ZCR)
}

func appendFinals(t *ipp.Transcript, agg *AggregateProof) {
	t.AppendG1("final-a", &agg.FinalA)
	t.AppendG2("final-b", &agg.FinalB)
	t.AppendG1("final-c", &agg.FinalC)
	t.AppendG2("final-v1", &agg.FinalV1)
	t.AppendG2("final-v2", &agg.FinalV2)
	t.AppendG1("final-w1", &agg.FinalW1)
	t.AppendG1("final-w2", &agg.FinalW2)
}

// foldGT folds one commitment through a round: v ← v · L^eL · R^eR.
func foldGT(v, l, r *ext.E12, eL, eR *big.Int) {
	var le, re ext.E12
	le.Exp(l, eL)
	re.Exp(r, eR)
	v.Mul(v, &le)
	v.Mul(v, &re)
}

// scaleG1 returns out[i] = s[i]·v[i].
func scaleG1(v []curve.G1Affine, s []fr.Element) []curve.G1Affine {
	jac := make([]curve.G1Jac, len(v))
	par.Each(len(v), func(i int) {
		var p curve.G1Jac
		p.FromAffine(&v[i])
		p.ScalarMul(&p, &s[i])
		jac[i] = p
	})
	return curve.BatchJacToAffineG1(jac)
}

func scaleG2(v []curve.G2Affine, s []fr.Element) []curve.G2Affine {
	jac := make([]curve.G2Jac, len(v))
	par.Each(len(v), func(i int) {
		var p curve.G2Jac
		p.FromAffine(&v[i])
		p.ScalarMul(&p, &s[i])
		jac[i] = p
	})
	return curve.BatchJacToAffineG2(jac)
}

// foldG1 halves a vector: out[i] = v[i] + x·v[half+i].
func foldG1(v []curve.G1Affine, x *fr.Element) []curve.G1Affine {
	half := len(v) / 2
	jac := make([]curve.G1Jac, half)
	par.Each(half, func(i int) {
		var p curve.G1Jac
		p.FromAffine(&v[half+i])
		p.ScalarMul(&p, x)
		p.AddMixed(&v[i])
		jac[i] = p
	})
	return curve.BatchJacToAffineG1(jac)
}

func foldG2(v []curve.G2Affine, x *fr.Element) []curve.G2Affine {
	half := len(v) / 2
	jac := make([]curve.G2Jac, half)
	par.Each(half, func(i int) {
		var p curve.G2Jac
		p.FromAffine(&v[half+i])
		p.ScalarMul(&p, x)
		p.AddMixed(&v[i])
		jac[i] = p
	})
	return curve.BatchJacToAffineG2(jac)
}

// sumScaledG1 returns s·Σvᵢ.
func sumScaledG1(v []curve.G1Affine, s *fr.Element) curve.G1Affine {
	var acc curve.G1Jac
	acc.SetInfinity()
	for i := range v {
		acc.AddMixed(&v[i])
	}
	acc.ScalarMul(&acc, s)
	var out curve.G1Affine
	out.FromJacobian(&acc)
	return out
}

// powerSeries returns [1, x, …, x^{k-1}].
func powerSeries(x *fr.Element, k int) []fr.Element {
	out := make([]fr.Element, k)
	out[0].SetOne()
	for i := 1; i < k; i++ {
		out[i].Mul(&out[i-1], x)
	}
	return out
}

// finalKeyPolys expands the coefficient vectors of the folded-key
// polynomials. With dⱼ = n/2^{j+1} for round j (0-based):
//
//	f_v(X) = Π (1 + xⱼ⁻¹·r⁻ᵈʲ·Xᵈʲ)   (degree n-1, the v-key poly)
//	p_w(X) = Xⁿ·Π (1 + xⱼ·Xᵈʲ)       (degree 2n-1, the w-key poly)
func finalKeyPolys(n int, xs []fr.Element, rInv *fr.Element) (fv, pw []fr.Element) {
	k := len(xs)
	cv := make([]fr.Element, k)
	cw := make([]fr.Element, k)
	ds := make([]int, k)
	rInvPow := powerSeries(rInv, n)
	for j := 0; j < k; j++ {
		d := n >> (j + 1)
		ds[j] = d
		var xInv fr.Element
		xInv.Inverse(&xs[j])
		cv[j].Mul(&xInv, &rInvPow[d])
		cw[j] = xs[j]
	}
	fv = expandBinomialProduct(cv, ds, n)
	tail := expandBinomialProduct(cw, ds, n)
	pw = make([]fr.Element, 2*n)
	copy(pw[n:], tail) // the Xⁿ shift
	return fv, pw
}

// expandBinomialProduct expands Π (1 + cⱼ·X^{dⱼ}) into dense
// coefficients of length size (Σdⱼ = size-1).
func expandBinomialProduct(cs []fr.Element, ds []int, size int) []fr.Element {
	coeffs := make([]fr.Element, size)
	coeffs[0].SetOne()
	deg := 0
	for j := range cs {
		d := ds[j]
		for i := deg; i >= 0; i-- {
			if coeffs[i].IsZero() {
				continue
			}
			var t fr.Element
			t.Mul(&coeffs[i], &cs[j])
			coeffs[i+d].Add(&coeffs[i+d], &t)
		}
		deg += d
	}
	return coeffs
}

// evalFinalKeyPolys evaluates both folded-key polynomials at z in
// O(log n).
func evalFinalKeyPolys(n int, xs []fr.Element, rInv, z *fr.Element) (fz, pz fr.Element) {
	fz.SetOne()
	pz.SetOne()
	// zPow[j] = z^{dⱼ}; build z^n along the way: n = Σdⱼ + 1… compute
	// z^d by repeated squaring from z^{n/2} downward instead: d halves
	// each round, so z^{d_{j+1}} = sqrt — not available. Iterate dⱼ
	// directly with Exp-by-squaring per round (k ≤ 30 rounds).
	for j := range xs {
		d := n >> (j + 1)
		zd := powScalar(z, d)
		var xInv, term fr.Element
		xInv.Inverse(&xs[j])
		rd := powScalar(rInv, d)
		term.Mul(&xInv, &rd)
		term.Mul(&term, &zd)
		var one fr.Element
		one.SetOne()
		term.Add(&term, &one)
		fz.Mul(&fz, &term)

		var termW fr.Element
		termW.Mul(&xs[j], &zd)
		termW.Add(&termW, &one)
		pz.Mul(&pz, &termW)
	}
	zn := powScalar(z, n)
	pz.Mul(&pz, &zn)
	return fz, pz
}

// powScalar computes x^d for a small non-negative integer d.
func powScalar(x *fr.Element, d int) fr.Element {
	var out fr.Element
	out.SetOne()
	base := *x
	for e := d; e > 0; e >>= 1 {
		if e&1 == 1 {
			out.Mul(&out, &base)
		}
		base.Square(&base)
	}
	return out
}

// synthDiv divides f by (X - z): f(X) = q(X)·(X-z) + f(z).
func synthDiv(f []fr.Element, z *fr.Element) (q []fr.Element, rem fr.Element) {
	deg := len(f) - 1
	if deg < 0 {
		return nil, rem
	}
	q = make([]fr.Element, deg)
	carry := f[deg]
	for i := deg - 1; i >= 0; i-- {
		q[i] = carry
		carry.Mul(&carry, z)
		carry.Add(&carry, &f[i])
	}
	return q, carry
}

// kzgOpenG2 produces the G2 opening h^{q(τ)} of the polynomial with the
// given coefficients at z, over the given trapdoor-power basis.
func kzgOpenG2(powers []curve.G2Affine, coeffs []fr.Element, z *fr.Element) curve.G2Affine {
	q, _ := synthDiv(coeffs, z)
	var out curve.G2Affine
	if len(q) == 0 {
		return out // constant polynomial: zero quotient, infinity opening
	}
	jac := curve.MultiExpG2(powers[:len(q)], q)
	out.FromJacobian(&jac)
	return out
}

func kzgOpenG1(powers []curve.G1Affine, coeffs []fr.Element, z *fr.Element) curve.G1Affine {
	q, _ := synthDiv(coeffs, z)
	var out curve.G1Affine
	if len(q) == 0 {
		return out
	}
	jac := curve.MultiExpG1(powers[:len(q)], q)
	out.FromJacobian(&jac)
	return out
}

// kzgCheckG2 verifies a G2 commitment opening: e(g, V·h^{-fz}) ==
// e(g^τ·g^{-z}, π), rearranged into one pairing-product check.
func kzgCheckG2(g1 *curve.G1Affine, gTau *curve.G1Affine, v, pi *curve.G2Affine, fz, z *fr.Element) bool {
	// D = V - fz·h  (G2)
	var d curve.G2Jac
	gen2 := curve.G2Generator()
	d.ScalarMul(&gen2, fz)
	d.Neg(&d)
	d.AddMixed(v)
	var dAff curve.G2Affine
	dAff.FromJacobian(&d)
	// S = g^τ - z·g  (G1), negated for the product form.
	var s curve.G1Jac
	gen1 := curve.G1Generator()
	s.ScalarMul(&gen1, z)
	var tau curve.G1Jac
	tau.FromAffine(gTau)
	tau.SubAssign(&s)
	tau.Neg(&tau)
	var sAff curve.G1Affine
	sAff.FromJacobian(&tau)
	// e(g, D) · e(-(g^τ - z·g), π) == 1
	return pairing.PairingCheck(
		[]*curve.G1Affine{g1, &sAff},
		[]*curve.G2Affine{&dAff, pi},
	)
}

// kzgCheckG1 verifies a G1 commitment opening: e(W·g^{-pz}, h) ==
// e(π, h^τ·h^{-z}).
func kzgCheckG1(g2 *curve.G2Affine, hTau *curve.G2Affine, w, pi *curve.G1Affine, pz, z *fr.Element) bool {
	// D = W - pz·g  (G1)
	gen1 := curve.G1Generator()
	var d curve.G1Jac
	d.ScalarMul(&gen1, pz)
	d.Neg(&d)
	d.AddMixed(w)
	var dAff curve.G1Affine
	dAff.FromJacobian(&d)
	// S = h^τ - z·h  (G2)
	gen2 := curve.G2Generator()
	var s curve.G2Jac
	s.ScalarMul(&gen2, z)
	s.Neg(&s)
	var tau curve.G2Jac
	tau.FromAffine(hTau)
	tau.AddAssign(&s)
	var sAff curve.G2Affine
	sAff.FromJacobian(&tau)
	var piNeg curve.G1Affine
	piNeg.Neg(pi)
	// e(D, h) · e(-π, h^τ - z·h) == 1
	return pairing.PairingCheck(
		[]*curve.G1Affine{&dAff, &piNeg},
		[]*curve.G2Affine{g2, &sAff},
	)
}

// --- Wire format ---

var magicAggregate = [4]byte{'Z', 'K', 'A', 'G'}

func writeGT(w io.Writer, v *GTElement) error {
	b := v.Bytes()
	_, err := w.Write(b[:])
	return err
}

func readGT(r io.Reader, v *GTElement) error {
	var b [ext.E12Bytes]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return err
	}
	return v.SetBytesCanonical(b[:])
}

// WriteTo serializes the aggregate proof: header, count, then the
// commitments, rounds, finals, and KZG openings.
func (a *AggregateProof) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	if err := writeHeader(cw, magicAggregate); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, a.Count); err != nil {
		return cw.n, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint32(len(a.Rounds))); err != nil {
		return cw.n, err
	}
	for _, gt := range []*GTElement{&a.TAB, &a.UAB, &a.TC, &a.UC, &a.ZAB} {
		if err := writeGT(cw, gt); err != nil {
			return cw.n, err
		}
	}
	if err := writeG1(cw, &a.ZC); err != nil {
		return cw.n, err
	}
	for i := range a.Rounds {
		rd := &a.Rounds[i]
		for _, gt := range []*GTElement{&rd.ZL, &rd.ZR, &rd.TL, &rd.TR, &rd.UL, &rd.UR, &rd.TCL, &rd.TCR, &rd.UCL, &rd.UCR} {
			if err := writeGT(cw, gt); err != nil {
				return cw.n, err
			}
		}
		if err := writeG1(cw, &rd.ZCL); err != nil {
			return cw.n, err
		}
		if err := writeG1(cw, &rd.ZCR); err != nil {
			return cw.n, err
		}
	}
	for _, p := range []*curve.G1Affine{&a.FinalA, &a.FinalC, &a.FinalW1, &a.FinalW2, &a.PiW1, &a.PiW2} {
		if err := writeG1(cw, p); err != nil {
			return cw.n, err
		}
	}
	for _, p := range []*curve.G2Affine{&a.FinalB, &a.FinalV1, &a.FinalV2, &a.PiV1, &a.PiV2} {
		if err := writeG2(cw, p); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadFrom deserializes an aggregate proof, validating curve and
// subgroup membership of every group point and canonicality of every
// target-group coefficient.
func (a *AggregateProof) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	if err := readHeader(cr, magicAggregate); err != nil {
		return cr.n, err
	}
	if err := binary.Read(cr, binary.LittleEndian, &a.Count); err != nil {
		return cr.n, err
	}
	var nRounds uint32
	if err := binary.Read(cr, binary.LittleEndian, &nRounds); err != nil {
		return cr.n, err
	}
	if a.Count < 1 {
		return cr.n, errors.New("groth16: aggregate proof has zero count")
	}
	if nRounds > 40 {
		return cr.n, errors.New("groth16: implausible aggregate round count")
	}
	wantRounds := bits.TrailingZeros(uint(ipp.NextPow2(int(a.Count))))
	if int(nRounds) != wantRounds {
		return cr.n, fmt.Errorf("groth16: aggregate count %d needs %d rounds, encoding has %d",
			a.Count, wantRounds, nRounds)
	}
	for _, gt := range []*GTElement{&a.TAB, &a.UAB, &a.TC, &a.UC, &a.ZAB} {
		if err := readGT(cr, gt); err != nil {
			return cr.n, err
		}
	}
	if err := readG1(cr, &a.ZC); err != nil {
		return cr.n, err
	}
	a.Rounds = make([]AggregateRound, nRounds)
	for i := range a.Rounds {
		rd := &a.Rounds[i]
		for _, gt := range []*GTElement{&rd.ZL, &rd.ZR, &rd.TL, &rd.TR, &rd.UL, &rd.UR, &rd.TCL, &rd.TCR, &rd.UCL, &rd.UCR} {
			if err := readGT(cr, gt); err != nil {
				return cr.n, err
			}
		}
		if err := readG1(cr, &rd.ZCL); err != nil {
			return cr.n, err
		}
		if err := readG1(cr, &rd.ZCR); err != nil {
			return cr.n, err
		}
	}
	for _, p := range []*curve.G1Affine{&a.FinalA, &a.FinalC, &a.FinalW1, &a.FinalW2, &a.PiW1, &a.PiW2} {
		if err := readG1(cr, p); err != nil {
			return cr.n, err
		}
	}
	for _, p := range []*curve.G2Affine{&a.FinalB, &a.FinalV1, &a.FinalV2, &a.PiV1, &a.PiV2} {
		if err := readG2(cr, p); err != nil {
			return cr.n, err
		}
	}
	return cr.n, nil
}

// SizeBytes reports the serialized size of the aggregate proof.
func (a *AggregateProof) SizeBytes() int64 {
	n, _ := a.WriteTo(io.Discard)
	return n
}

// MarshalJSON encodes the aggregate proof as a versioned base64
// envelope of its binary encoding (the shared wire-envelope shape).
func (a *AggregateProof) MarshalJSON() ([]byte, error) {
	return marshalEnvelope(func(buf *bytes.Buffer) error {
		_, err := a.WriteTo(buf)
		return err
	})
}

// UnmarshalJSON decodes an aggregate-proof envelope with full point
// validation.
func (a *AggregateProof) UnmarshalJSON(b []byte) error {
	return unmarshalEnvelope(b, "aggregate proof", func(r *bytes.Reader) error {
		_, err := a.ReadFrom(r)
		return err
	})
}

type countingReader struct {
	n int64
	r io.Reader
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
