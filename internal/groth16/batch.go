package groth16

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/pairing"
)

// BatchVerify checks many proofs under the same verifying key with a
// single combined pairing product. Each proof's equation
//
//	e(Aᵢ, Bᵢ) = e(α, β) · e(ICᵢ, γ) · e(Cᵢ, δ)
//
// is scaled by an independent uniform challenge rᵢ and summed: a batch
// with any invalid member passes with probability ≤ 1/r. The combined
// check needs k+3 Miller loops and one final exponentiation instead of
// 4k pairings — roughly a 3× verifier speedup for large batches.
//
// rng supplies the challenges (crypto/rand when nil); it must be
// unpredictable to the prover.
func BatchVerify(vk *VerifyingKey, proofs []*Proof, publicInputs [][]fr.Element, rng io.Reader) error {
	if len(proofs) == 0 {
		return errors.New("groth16: empty batch")
	}
	if len(proofs) != len(publicInputs) {
		return fmt.Errorf("groth16: %d proofs but %d public-input sets", len(proofs), len(publicInputs))
	}
	if rng == nil {
		rng = rand.Reader
	}

	var sumR fr.Element         // Σ rᵢ
	var icAcc, cAcc curve.G1Jac // Σ rᵢ·ICᵢ, Σ rᵢ·Cᵢ
	icAcc.SetInfinity()
	cAcc.SetInfinity()

	ps := make([]*curve.G1Affine, 0, len(proofs)+3)
	qs := make([]*curve.G2Affine, 0, len(proofs)+3)

	for i, proof := range proofs {
		if len(publicInputs[i]) != len(vk.IC)-1 {
			return fmt.Errorf("groth16: proof %d has %d public inputs, vk expects %d",
				i, len(publicInputs[i]), len(vk.IC)-1)
		}
		ri, err := randFr(rng)
		if err != nil {
			return err
		}
		sumR.Add(&sumR, &ri)

		// ICᵢ = IC₀ + Σ xⱼ·IC_{j+1}, then scale by rᵢ.
		ic := curve.MultiExpG1(vk.IC[1:], publicInputs[i])
		var ic0 curve.G1Jac
		ic0.FromAffine(&vk.IC[0])
		ic.AddAssign(&ic0)
		ic.ScalarMul(&ic, &ri)
		icAcc.AddAssign(&ic)

		var ci curve.G1Jac
		ci.FromAffine(&proof.Krs)
		ci.ScalarMul(&ci, &ri)
		cAcc.AddAssign(&ci)

		// e(-rᵢ·Aᵢ, Bᵢ) term.
		var ai curve.G1Jac
		ai.FromAffine(&proof.Ar)
		ai.ScalarMul(&ai, &ri)
		ai.Neg(&ai)
		aAff := new(curve.G1Affine)
		aAff.FromJacobian(&ai)
		ps = append(ps, aAff)
		qs = append(qs, &proof.Bs)
	}

	icAff := new(curve.G1Affine)
	icAff.FromJacobian(&icAcc)
	cAff := new(curve.G1Affine)
	cAff.FromJacobian(&cAcc)

	ps = append(ps, icAff, cAff)
	qs = append(qs, &vk.GammaG2, &vk.DeltaG2)

	// The α-β term e((Σrᵢ)·α, β): with e(α, β) cached on the key it is a
	// cyclotomic exponentiation e(α, β)^Σrᵢ — one Miller loop fewer —
	// otherwise a pairing of the scaled point like any other term.
	if !vk.AlphaBeta.IsZero() {
		var ab ext.E12
		ab.CyclotomicExp(&vk.AlphaBeta, sumR.ToBigInt())
		if !pairing.PairingCheckMul(ps, qs, &ab) {
			return errors.New("groth16: batch verification failed")
		}
		return nil
	}
	var alphaScaled curve.G1Jac
	alphaScaled.FromAffine(&vk.AlphaG1)
	alphaScaled.ScalarMul(&alphaScaled, &sumR)
	alphaAff := new(curve.G1Affine)
	alphaAff.FromJacobian(&alphaScaled)
	ps = append(ps, alphaAff)
	qs = append(qs, &vk.BetaG2)

	if !pairing.PairingCheck(ps, qs) {
		return errors.New("groth16: batch verification failed")
	}
	return nil
}

// GTOne returns the identity of the target group (exposed for tests
// probing the batching algebra).
func GTOne() ext.E12 {
	var one ext.E12
	one.SetOne()
	return one
}
