package groth16

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/ipp"
)

// aggregateFixture produces a deterministic SRS, key pair, and N valid
// cubic proofs with their instances.
func aggregateFixture(t testing.TB, seed int64, n int) (*ipp.SRS, *VerifyingKey, []*Proof, [][]fr.Element) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	srs, err := ipp.NewSRS(16, rng)
	if err != nil {
		t.Fatal(err)
	}
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	proofs := make([]*Proof, 0, n)
	publics := make([][]fr.Element, 0, n)
	for i := 0; i < n; i++ {
		w := cubicWitness(uint64(2 + i))
		proof, err := Prove(sys, pk, w, rng)
		if err != nil {
			t.Fatal(err)
		}
		proofs = append(proofs, proof)
		publics = append(publics, w[1:sys.NbPublic])
	}
	return srs, vk, proofs, publics
}

func TestAggregateRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		srs, vk, proofs, publics := aggregateFixture(t, 0x1000+int64(n), n)
		agg, err := AggregateProofs(srs, vk, proofs, publics)
		if err != nil {
			t.Fatalf("n=%d: aggregation failed: %v", n, err)
		}
		if err := VerifyAggregate(&srs.VK, vk, agg, publics); err != nil {
			t.Fatalf("n=%d: valid aggregate rejected: %v", n, err)
		}
	}
}

// TestAggregateOracle cross-checks the aggregate verdict against
// BatchVerify on the same sets: the aggregate path must accept exactly
// the sets the batch verifier accepts.
func TestAggregateOracle(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, 0x2000, 4)
	rng := rand.New(rand.NewSource(0x2001))

	// Valid set: both accept.
	if err := BatchVerify(vk, proofs, publics, rng); err != nil {
		t.Fatalf("oracle rejected valid set: %v", err)
	}
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, agg, publics); err != nil {
		t.Fatalf("aggregate rejected set the oracle accepts: %v", err)
	}

	// Tampered instance: both must reject. The prover happily
	// aggregates (it does not verify), but verification must fail.
	bad := make([][]fr.Element, len(publics))
	for i := range publics {
		bad[i] = append([]fr.Element(nil), publics[i]...)
	}
	bad[2][0].SetUint64(999)
	if err := BatchVerify(vk, proofs, bad, rng); err == nil {
		t.Fatal("oracle accepted tampered set")
	}
	aggBad, err := AggregateProofs(srs, vk, proofs, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, aggBad, bad); err == nil {
		t.Fatal("aggregate accepted set the oracle rejects")
	}

	// Swapped instances across proofs: both must reject.
	swapped := append([][]fr.Element(nil), publics...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if err := BatchVerify(vk, proofs, swapped, rng); err == nil {
		t.Fatal("oracle accepted swapped instances")
	}
	aggSwap, err := AggregateProofs(srs, vk, proofs, swapped)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, aggSwap, swapped); err == nil {
		t.Fatal("aggregate accepted swapped instances")
	}
}

// TestAggregateSingleAgreesWithVerify pins the degenerate n=1 case to
// plain Verify on both the accept and reject sides.
func TestAggregateSingleAgreesWithVerify(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, 0x3000, 1)
	if err := Verify(vk, proofs[0], publics[0]); err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, agg, publics); err != nil {
		t.Fatalf("single-proof aggregate rejected: %v", err)
	}

	bad := [][]fr.Element{append([]fr.Element(nil), publics[0]...)}
	bad[0][0].SetUint64(7777)
	if err := Verify(vk, proofs[0], bad[0]); err == nil {
		t.Fatal("plain Verify accepted tampered instance")
	}
	aggBad, err := AggregateProofs(srs, vk, proofs, bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, aggBad, bad); err == nil {
		t.Fatal("single-proof aggregate accepted tampered instance")
	}
}

// TestAggregateRejectsMixedVK ensures an aggregate bound to one
// verifying key does not verify under another (the transcript hashes
// the vk, so every challenge diverges).
func TestAggregateRejectsMixedVK(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, 0x4000, 2)
	rng := rand.New(rand.NewSource(0x4001))
	sys := cubicSystem()
	_, vk2, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk2, agg, publics); err == nil {
		t.Fatal("aggregate verified under a different verifying key")
	}
}

// TestAggregateRejectsWrongSRSKey ensures verification fails under a
// verifier key from an unrelated trusted setup.
func TestAggregateRejectsWrongSRSKey(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, 0x4100, 2)
	rng := rand.New(rand.NewSource(0x4101))
	srs2, err := ipp.NewSRS(16, rng)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs2.VK, vk, agg, publics); err == nil {
		t.Fatal("aggregate verified under an unrelated SRS verifier key")
	}
}

// TestAggregateRejectsBitFlips serializes a valid aggregate, flips one
// bit at a spread of offsets, and requires every mutation to be caught
// at decode (canonicality/subgroup checks) or at verification.
func TestAggregateRejectsBitFlips(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, 0x5000, 4)
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := agg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(0x5001))
	for trial := 0; trial < 24; trial++ {
		pos := rng.Intn(len(raw))
		bit := byte(1) << uint(rng.Intn(8))
		mut := append([]byte(nil), raw...)
		mut[pos] ^= bit
		var dec AggregateProof
		if _, err := dec.ReadFrom(bytes.NewReader(mut)); err != nil {
			continue // rejected at decode: good
		}
		if err := VerifyAggregate(&srs.VK, vk, &dec, publics); err == nil {
			t.Fatalf("bit flip at byte %d bit %d produced an accepting aggregate", pos, bit)
		}
	}
}

// TestAggregateInputValidation exercises the argument checks on both
// the prover and verifier entry points.
func TestAggregateInputValidation(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, 0x6000, 2)
	if _, err := AggregateProofs(srs, vk, nil, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := AggregateProofs(srs, vk, proofs, publics[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := AggregateProofs(srs, vk, proofs, [][]fr.Element{nil, nil}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Capacity: 16-slot SRS cannot aggregate 17 proofs.
	big := make([]*Proof, 17)
	bigPub := make([][]fr.Element, 17)
	for i := range big {
		big[i] = proofs[0]
		bigPub[i] = publics[0]
	}
	if _, err := AggregateProofs(srs, vk, big, bigPub); err == nil {
		t.Fatal("over-capacity set accepted")
	}

	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, agg, publics[:1]); err == nil {
		t.Fatal("verifier accepted instance-count mismatch")
	}
	agg.Count = 3 // claims a different set size than the rounds encode
	if err := VerifyAggregate(&srs.VK, vk, agg, append(publics, publics[0])); err == nil {
		t.Fatal("verifier accepted count/rounds mismatch")
	}
}

func TestAggregateWireRoundTrip(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, 0x7000, 3)
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := agg.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if got := agg.SizeBytes(); got != n {
		t.Fatalf("SizeBytes %d != encoded size %d", got, n)
	}
	var dec AggregateProof
	if _, err := dec.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := dec.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("binary round trip is not byte-identical")
	}
	if err := VerifyAggregate(&srs.VK, vk, &dec, publics); err != nil {
		t.Fatalf("decoded aggregate rejected: %v", err)
	}

	// JSON envelope round trip.
	js, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	var dec2 AggregateProof
	if err := json.Unmarshal(js, &dec2); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, &dec2, publics); err != nil {
		t.Fatalf("JSON round-tripped aggregate rejected: %v", err)
	}

	// SRS verifier key JSON envelope round trip.
	vkJS, err := json.Marshal(&srs.VK)
	if err != nil {
		t.Fatal(err)
	}
	var svk ipp.VerifierKey
	if err := json.Unmarshal(vkJS, &svk); err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&svk, vk, agg, publics); err != nil {
		t.Fatalf("aggregate rejected under round-tripped SRS key: %v", err)
	}
}

// TestGoldenAggregateWireFormat pins the AggregateProof binary and JSON
// encodings (see golden_test.go for the drift policy).
func TestGoldenAggregateWireFormat(t *testing.T) {
	srs, vk, proofs, publics := aggregateFixture(t, goldenSeed, 2)
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyAggregate(&srs.VK, vk, agg, publics); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := agg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "aggregate.bin.hex", hexDump(buf.Bytes()))
	js, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "aggregate.json", append(js, '\n'))

	var svkBuf bytes.Buffer
	if _, err := srs.VK.WriteTo(&svkBuf); err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "srs_vk.bin.hex", hexDump(svkBuf.Bytes()))
}

func BenchmarkAggregate16(b *testing.B) {
	srs, vk, proofs, publics := aggregateFixture(b, 0x8000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AggregateProofs(srs, vk, proofs, publics); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyAggregate16(b *testing.B) {
	srs, vk, proofs, publics := aggregateFixture(b, 0x8001, 16)
	agg, err := AggregateProofs(srs, vk, proofs, publics)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyAggregate(&srs.VK, vk, agg, publics); err != nil {
			b.Fatal(err)
		}
	}
}
