package groth16

import (
	"bytes"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/r1cs"
)

// openStreamed wraps a raw proving-key buffer in a StreamedProvingKey
// with a tiny chunk so the 5-wire cubic system actually exercises the
// chunked MSM path (multiple partial chunks per section).
func openStreamed(t *testing.T, raw []byte, chunk int) *StreamedProvingKey {
	t.Helper()
	spk, err := OpenStreamedProvingKey(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("OpenStreamedProvingKey: %v", err)
	}
	spk.Chunk = chunk
	return spk
}

// TestSetupStreamedMatchesSetup pins the spilled-setup encoding: from
// the same seeded rng, SetupStreamed must emit byte-for-byte the same
// raw file as Setup followed by WriteRawTo, and the same verifying key.
func TestSetupStreamedMatchesSetup(t *testing.T) {
	sys := cubicSystem()

	pk, vk, err := Setup(sys, rand.New(rand.NewSource(90)))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := pk.WriteRawTo(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	svk, err := SetupStreamed(sys, rand.New(rand.NewSource(90)), &got)
	if err != nil {
		t.Fatalf("SetupStreamed: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("SetupStreamed bytes diverge from Setup+WriteRawTo (%d vs %d bytes)", got.Len(), want.Len())
	}

	var vkBuf, svkBuf bytes.Buffer
	if _, err := vk.WriteTo(&vkBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := svk.WriteTo(&svkBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vkBuf.Bytes(), svkBuf.Bytes()) {
		t.Fatal("SetupStreamed verifying key diverges from Setup")
	}
}

// TestRawPKSizeBytes checks the size predictor against an actual
// serialized key — the engine's streaming decision rides on it.
func TestRawPKSizeBytes(t *testing.T) {
	sys := cubicSystem()
	pk, _, err := Setup(sys, rand.New(rand.NewSource(91)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := pk.WriteRawTo(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := RawPKSizeBytes(sys)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != want {
		t.Fatalf("RawPKSizeBytes = %d, actual encoding = %d", want, buf.Len())
	}

	spk := openStreamed(t, buf.Bytes(), 2)
	if spk.SizeBytes() != want {
		t.Fatalf("StreamedProvingKey.SizeBytes = %d, want %d", spk.SizeBytes(), want)
	}
	if spk.DomainSize() != pk.DomainSize {
		t.Fatalf("DomainSize = %d, want %d", spk.DomainSize(), pk.DomainSize)
	}
}

// TestProveStreamedMatchesProve is the bit-identity oracle at the
// groth16 layer: with the same prover randomness, the streamed prover
// must emit exactly the proof bytes of the in-memory prover, across
// chunk sizes that fragment the 5-point sections differently.
func TestProveStreamedMatchesProve(t *testing.T) {
	sys := cubicSystem()
	pk, vk, err := Setup(sys, rand.New(rand.NewSource(92)))
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if _, err := pk.WriteRawTo(&raw); err != nil {
		t.Fatal(err)
	}
	witness := cubicWitness(3)

	want, err := Prove(sys, pk, witness, rand.New(rand.NewSource(93)))
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if _, err := want.WriteTo(&wantBuf); err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []int{1, 2, 3, 64} {
		spk := openStreamed(t, raw.Bytes(), chunk)
		got, err := ProveStreamed(sys, spk, witness, rand.New(rand.NewSource(93)))
		if err != nil {
			t.Fatalf("chunk=%d: ProveStreamed: %v", chunk, err)
		}
		var gotBuf bytes.Buffer
		if _, err := got.WriteTo(&gotBuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
			t.Fatalf("chunk=%d: streamed proof bytes diverge from in-memory prover", chunk)
		}
		if err := Verify(vk, got, sys.PublicValues(witness)); err != nil {
			t.Fatalf("chunk=%d: streamed proof rejected: %v", chunk, err)
		}
	}
}

// TestOpenStreamedProvingKeyTruncated checks that a key file cut short
// anywhere — header, mid-section, or one byte shy of the end — is
// rejected at open time, not at prove time.
func TestOpenStreamedProvingKeyTruncated(t *testing.T) {
	sys := cubicSystem()
	pk, _, err := Setup(sys, rand.New(rand.NewSource(94)))
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if _, err := pk.WriteRawTo(&raw); err != nil {
		t.Fatal(err)
	}
	full := raw.Bytes()
	for _, cut := range []int{0, 3, 100, rawPKFixedHeaderSize, len(full) / 2, len(full) - 1} {
		if _, err := OpenStreamedProvingKey(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(full))
		}
	}
}

// TestStreamedCheckShape verifies the streamed key refuses a circuit it
// wasn't set up for, same as the in-memory key.
func TestStreamedCheckShape(t *testing.T) {
	sys := cubicSystem()
	pk, _, err := Setup(sys, rand.New(rand.NewSource(95)))
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if _, err := pk.WriteRawTo(&raw); err != nil {
		t.Fatal(err)
	}
	spk := openStreamed(t, raw.Bytes(), 2)

	// A cubic system with one extra private wire: wire counts no longer
	// match the key's section lengths.
	eager := cubicEager()
	eager.NbWires++
	other, err := r1cs.FromSystem(eager)
	if err != nil {
		t.Fatal(err)
	}
	witness := make([]fr.Element, other.NbWires)
	copy(witness, cubicWitness(3))
	witness[0].SetOne()
	if _, err := ProveStreamed(other, spk, witness, rand.New(rand.NewSource(96))); err == nil {
		t.Fatal("ProveStreamed accepted a key with mismatched shape")
	}
}
