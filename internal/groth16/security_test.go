package groth16

import (
	"bytes"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/r1cs"
)

// squareSystem: x² = out (public out).
func squareSystem() *r1cs.CompiledSystem {
	cs, err := r1cs.FromSystem(squareEager())
	if err != nil {
		panic(err)
	}
	return cs
}

func squareEager() *r1cs.System {
	one := func() fr.Element { var e fr.Element; e.SetOne(); return e }
	return &r1cs.System{
		NbPublic: 2,
		NbWires:  3,
		Constraints: []r1cs.Constraint{{
			A: r1cs.LinearCombination{{Wire: 2, Coeff: one()}},
			B: r1cs.LinearCombination{{Wire: 2, Coeff: one()}},
			C: r1cs.LinearCombination{{Wire: 1, Coeff: one()}},
		}},
	}
}

func squareWitness(x uint64) []fr.Element {
	w := make([]fr.Element, 3)
	w[0].SetOne()
	w[2].SetUint64(x)
	w[1].Mul(&w[2], &w[2])
	return w
}

// TestCrossCircuitProofRejected: a proof generated for one circuit must
// not verify under another circuit's verifying key, even with matching
// public-input arity.
func TestCrossCircuitProofRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	sysA := cubicSystem()
	sysB := squareSystem()

	pkA, _, err := Setup(sysA, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, vkB, err := Setup(sysB, rng)
	if err != nil {
		t.Fatal(err)
	}

	wA := cubicWitness(3)
	proofA, err := Prove(sysA, pkA, wA, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Same arity (1 public input), different circuit.
	if err := Verify(vkB, proofA, wA[1:2]); err == nil {
		t.Fatal("cross-circuit proof accepted")
	}
}

// TestCrossSetupProofRejected: two setups of the SAME circuit use
// different toxic waste; proofs are not transferable between them.
func TestCrossSetupProofRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	sys := squareSystem()
	pk1, _, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, vk2, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := squareWitness(6)
	proof, err := Prove(sys, pk1, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk2, proof, w[1:2]); err == nil {
		t.Fatal("proof accepted under a different setup's keys")
	}
}

// TestRandomGroupElementsRejected: a "proof" of random valid curve
// points must fail the pairing equation.
func TestRandomGroupElementsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	sys := squareSystem()
	_, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := squareWitness(5)

	var k1, k2, k3 fr.Element
	k1.SetUint64(uint64(rng.Int63()))
	k2.SetUint64(uint64(rng.Int63()))
	k3.SetUint64(uint64(rng.Int63()))
	g1 := curve.G1Generator()
	g2 := curve.G2Generator()
	var forged Proof
	var j1, j3 curve.G1Jac
	var j2 curve.G2Jac
	j1.ScalarMul(&g1, &k1)
	j2.ScalarMul(&g2, &k2)
	j3.ScalarMul(&g1, &k3)
	forged.Ar.FromJacobian(&j1)
	forged.Bs.FromJacobian(&j2)
	forged.Krs.FromJacobian(&j3)

	if err := Verify(vk, &forged, w[1:2]); err == nil {
		t.Fatal("random group elements accepted as a proof")
	}
}

// TestZeroKnowledgePublicOnly: the verifier only ever touches the
// public inputs — witness length beyond the instance must not matter to
// verification (sanity on the instance/witness split).
func TestZeroKnowledgePublicOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	sys := squareSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Two witnesses with the same public square (x and -x).
	wPos := squareWitness(9)
	wNeg := make([]fr.Element, 3)
	wNeg[0].SetOne()
	wNeg[2].SetUint64(9)
	wNeg[2].Neg(&wNeg[2])
	wNeg[1].Mul(&wNeg[2], &wNeg[2])

	pPos, err := Prove(sys, pk, wPos, rng)
	if err != nil {
		t.Fatal(err)
	}
	pNeg, err := Prove(sys, pk, wNeg, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := wPos[1:2]
	if err := Verify(vk, pPos, public); err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, pNeg, public); err != nil {
		t.Fatal("witness -x proves the same public statement; must verify")
	}
}

// TestSetupValidation covers malformed-system rejection.
func TestSetupValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	empty, err := r1cs.FromSystem(&r1cs.System{NbPublic: 1, NbWires: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Setup(empty, rng); err == nil {
		t.Fatal("empty system accepted")
	}
	badEager := squareEager()
	badEager.Constraints[0].A[0].Wire = 99
	if _, err := r1cs.FromSystem(badEager); err == nil {
		t.Fatal("invalid wire index accepted by the compile adapter")
	}
	bad := squareSystem()
	bad.A.Wires[0] = 99
	if _, _, err := Setup(bad, rng); err == nil {
		t.Fatal("invalid wire index accepted by Setup")
	}
}

// twoPublicSystem: private x, publics [x², x² + x] — an asymmetric
// instance where swapping the two public values changes the statement.
func twoPublicSystem() *r1cs.CompiledSystem {
	one := func() fr.Element { var e fr.Element; e.SetOne(); return e }
	sys := &r1cs.System{
		NbPublic: 3,
		NbWires:  4,
		Constraints: []r1cs.Constraint{
			{ // x·x = pub1
				A: r1cs.LinearCombination{{Wire: 3, Coeff: one()}},
				B: r1cs.LinearCombination{{Wire: 3, Coeff: one()}},
				C: r1cs.LinearCombination{{Wire: 1, Coeff: one()}},
			},
			{ // (pub1 + x)·1 = pub2
				A: r1cs.LinearCombination{{Wire: 1, Coeff: one()}, {Wire: 3, Coeff: one()}},
				B: r1cs.LinearCombination{{Wire: 0, Coeff: one()}},
				C: r1cs.LinearCombination{{Wire: 2, Coeff: one()}},
			},
		},
	}
	cs, err := r1cs.FromSystem(sys)
	if err != nil {
		panic(err)
	}
	return cs
}

func twoPublicWitness(x uint64) []fr.Element {
	w := make([]fr.Element, 4)
	w[0].SetOne()
	w[3].SetUint64(x)
	w[1].Mul(&w[3], &w[3])
	w[2].Add(&w[1], &w[3])
	return w
}

// TestBitFlippedProofBytesRejected: every single-bit corruption of the
// 128-byte wire proof must either fail deserialization (point off the
// curve / outside its subgroup / bad framing) or fail verification —
// never verify.
func TestBitFlippedProofBytesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(710))
	sys := squareSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := squareWitness(7)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := w[1:2]
	if err := Verify(vk, proof, public); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := proof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for bit := 0; bit < len(raw)*8; bit++ {
		flipped := append([]byte(nil), raw...)
		flipped[bit/8] ^= 1 << (bit % 8)
		var p Proof
		if _, err := p.ReadFrom(bytes.NewReader(flipped)); err != nil {
			continue // rejected at the decoding layer, good
		}
		if err := Verify(vk, &p, public); err == nil {
			t.Fatalf("proof with bit %d flipped passed verification", bit)
		}
	}
}

// TestTruncatedProofStreamRejected: every strict prefix of the wire
// proof must fail ReadFrom, never decode to a partial proof.
func TestTruncatedProofStreamRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(711))
	sys := squareSystem()
	pk, _, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Prove(sys, pk, squareWitness(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := proof.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n++ {
		var p Proof
		if _, err := p.ReadFrom(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncated proof stream (%d of %d bytes) decoded", n, len(raw))
		}
	}
}

// TestSwappedPublicInputsRejected: reordering public inputs states a
// different (false) instance and must fail the pairing check.
func TestSwappedPublicInputsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(712))
	sys := twoPublicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := twoPublicWitness(5) // publics [25, 30]
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := w[1:3]
	if err := Verify(vk, proof, public); err != nil {
		t.Fatal(err)
	}
	swapped := []fr.Element{public[1], public[0]}
	if err := Verify(vk, proof, swapped); err == nil {
		t.Fatal("swapped public inputs accepted")
	}
}

// TestPublicInputArityRejected: truncated or padded instances must be
// rejected by length, before any curve arithmetic.
func TestPublicInputArityRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(713))
	sys := twoPublicSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := twoPublicWitness(4)
	proof, err := Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := w[1:3]
	if err := Verify(vk, proof, public[:1]); err == nil {
		t.Fatal("truncated public inputs accepted")
	}
	if err := Verify(vk, proof, append(append([]fr.Element(nil), public...), fr.Element{})); err == nil {
		t.Fatal("padded public inputs accepted")
	}
	if err := Verify(vk, proof, nil); err == nil {
		t.Fatal("empty public inputs accepted")
	}
}

// TestQuotientDegreeGuard: an inconsistent witness that satisfies the
// constraint rows but breaks the global polynomial identity cannot
// occur through the public API; this checks the internal guard fires on
// unsatisfied witnesses before any expensive work.
func TestQuotientDegreeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	sys := squareSystem()
	pk, _, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := squareWitness(4)
	w[1].SetUint64(999) // break the square
	if _, err := Prove(sys, pk, w, rng); err == nil {
		t.Fatal("prover produced a proof for a false statement")
	}
}
