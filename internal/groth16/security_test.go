package groth16

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/r1cs"
)

// squareSystem: x² = out (public out).
func squareSystem() *r1cs.CompiledSystem {
	cs, err := r1cs.FromSystem(squareEager())
	if err != nil {
		panic(err)
	}
	return cs
}

func squareEager() *r1cs.System {
	one := func() fr.Element { var e fr.Element; e.SetOne(); return e }
	return &r1cs.System{
		NbPublic: 2,
		NbWires:  3,
		Constraints: []r1cs.Constraint{{
			A: r1cs.LinearCombination{{Wire: 2, Coeff: one()}},
			B: r1cs.LinearCombination{{Wire: 2, Coeff: one()}},
			C: r1cs.LinearCombination{{Wire: 1, Coeff: one()}},
		}},
	}
}

func squareWitness(x uint64) []fr.Element {
	w := make([]fr.Element, 3)
	w[0].SetOne()
	w[2].SetUint64(x)
	w[1].Mul(&w[2], &w[2])
	return w
}

// TestCrossCircuitProofRejected: a proof generated for one circuit must
// not verify under another circuit's verifying key, even with matching
// public-input arity.
func TestCrossCircuitProofRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	sysA := cubicSystem()
	sysB := squareSystem()

	pkA, _, err := Setup(sysA, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, vkB, err := Setup(sysB, rng)
	if err != nil {
		t.Fatal(err)
	}

	wA := cubicWitness(3)
	proofA, err := Prove(sysA, pkA, wA, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Same arity (1 public input), different circuit.
	if err := Verify(vkB, proofA, wA[1:2]); err == nil {
		t.Fatal("cross-circuit proof accepted")
	}
}

// TestCrossSetupProofRejected: two setups of the SAME circuit use
// different toxic waste; proofs are not transferable between them.
func TestCrossSetupProofRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	sys := squareSystem()
	pk1, _, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	_, vk2, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := squareWitness(6)
	proof, err := Prove(sys, pk1, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk2, proof, w[1:2]); err == nil {
		t.Fatal("proof accepted under a different setup's keys")
	}
}

// TestRandomGroupElementsRejected: a "proof" of random valid curve
// points must fail the pairing equation.
func TestRandomGroupElementsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	sys := squareSystem()
	_, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := squareWitness(5)

	var k1, k2, k3 fr.Element
	k1.SetUint64(uint64(rng.Int63()))
	k2.SetUint64(uint64(rng.Int63()))
	k3.SetUint64(uint64(rng.Int63()))
	g1 := curve.G1Generator()
	g2 := curve.G2Generator()
	var forged Proof
	var j1, j3 curve.G1Jac
	var j2 curve.G2Jac
	j1.ScalarMul(&g1, &k1)
	j2.ScalarMul(&g2, &k2)
	j3.ScalarMul(&g1, &k3)
	forged.Ar.FromJacobian(&j1)
	forged.Bs.FromJacobian(&j2)
	forged.Krs.FromJacobian(&j3)

	if err := Verify(vk, &forged, w[1:2]); err == nil {
		t.Fatal("random group elements accepted as a proof")
	}
}

// TestZeroKnowledgePublicOnly: the verifier only ever touches the
// public inputs — witness length beyond the instance must not matter to
// verification (sanity on the instance/witness split).
func TestZeroKnowledgePublicOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	sys := squareSystem()
	pk, vk, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Two witnesses with the same public square (x and -x).
	wPos := squareWitness(9)
	wNeg := make([]fr.Element, 3)
	wNeg[0].SetOne()
	wNeg[2].SetUint64(9)
	wNeg[2].Neg(&wNeg[2])
	wNeg[1].Mul(&wNeg[2], &wNeg[2])

	pPos, err := Prove(sys, pk, wPos, rng)
	if err != nil {
		t.Fatal(err)
	}
	pNeg, err := Prove(sys, pk, wNeg, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := wPos[1:2]
	if err := Verify(vk, pPos, public); err != nil {
		t.Fatal(err)
	}
	if err := Verify(vk, pNeg, public); err != nil {
		t.Fatal("witness -x proves the same public statement; must verify")
	}
}

// TestSetupValidation covers malformed-system rejection.
func TestSetupValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	empty, err := r1cs.FromSystem(&r1cs.System{NbPublic: 1, NbWires: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Setup(empty, rng); err == nil {
		t.Fatal("empty system accepted")
	}
	badEager := squareEager()
	badEager.Constraints[0].A[0].Wire = 99
	if _, err := r1cs.FromSystem(badEager); err == nil {
		t.Fatal("invalid wire index accepted by the compile adapter")
	}
	bad := squareSystem()
	bad.A.Wires[0] = 99
	if _, _, err := Setup(bad, rng); err == nil {
		t.Fatal("invalid wire index accepted by Setup")
	}
}

// TestQuotientDegreeGuard: an inconsistent witness that satisfies the
// constraint rows but breaks the global polynomial identity cannot
// occur through the public API; this checks the internal guard fires on
// unsatisfied witnesses before any expensive work.
func TestQuotientDegreeGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	sys := squareSystem()
	pk, _, err := Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := squareWitness(4)
	w[1].SetUint64(999) // break the square
	if _, err := Prove(sys, pk, w, rng); err == nil {
		t.Fatal("prover produced a proof for a false statement")
	}
}
