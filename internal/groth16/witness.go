package groth16

import (
	"sync/atomic"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/par"
	"zkrownn/internal/r1cs"
)

// witnessSrc is the prover's view of a full wire assignment: exactly
// one of mem (resident slice) or file (spilled r1cs.WitnessFile) is
// set. The streamed backend reads a spilled witness through the same
// ScalarSource path it already uses for disk-resident quotient
// scalars, so neither side of a wire-query MSM need be resident.
type witnessSrc struct {
	mem  []fr.Element
	file *r1cs.WitnessFile
}

func memWitness(w []fr.Element) *witnessSrc { return &witnessSrc{mem: w} }

func (w *witnessSrc) len() int {
	if w.mem != nil {
		return len(w.mem)
	}
	return w.file.Len()
}

// at returns wire i — the slow-path single-element read used outside
// hot loops (the constant-wire check).
func (w *witnessSrc) at(i uint32) fr.Element {
	if w.mem != nil {
		return w.mem[i]
	}
	return w.file.Get(i)
}

// source adapts wires [off, len) to a curve.ScalarSource. The spilled
// path records one "witness/stream" span per chunk read; the resident
// path copies (only reached when a resident witness meets a streamed
// key's scalar-source MSM, which the backends avoid).
func (w *witnessSrc) source(off int, tr *obs.Trace) curve.ScalarSource {
	if w.mem != nil {
		scalars := w.mem[off:]
		return func(dst []fr.Element, start int) error {
			copy(dst, scalars[start:start+len(dst)])
			return nil
		}
	}
	return func(dst []fr.Element, start int) error {
		sp := tr.Span("witness/stream")
		err := w.file.ReadRange(dst, off+start)
		sp.End()
		return err
	}
}

// rowEvalSrc computes ⟨window row i, w⟩ for either witness residency.
func rowEvalSrc(win *r1cs.RowWindow, i int, w *witnessSrc) fr.Element {
	if w.mem != nil {
		return win.RowEval(i, w.mem)
	}
	wires, coeffs := win.Row(i)
	var acc, t fr.Element
	for k := range wires {
		wv := w.file.Get(wires[k])
		t.Mul(&win.Dict[coeffs[k]], &wv)
		acc.Add(&acc, &t)
	}
	return acc
}

// errSatisfyStop aborts the window walk once a violation is found.
var errSatisfyStop = &satisfyStopError{}

type satisfyStopError struct{}

func (*satisfyStopError) Error() string { return "groth16: satisfy walk stopped" }

// checkSatisfied verifies A·w ∘ B·w = C·w row by row. Resident system
// with resident witness takes the existing parallel CSR fast path;
// otherwise the three matrices stream through lockstep row windows
// (one "csr/row-window" span each), with rows parallel when the
// witness is resident and serial when it reads through the spill
// store's single-goroutine page cache. On failure the returned index
// is the first violated constraint, matching IsSatisfied.
func checkSatisfied(sys r1cs.Constraints, w *witnessSrc, tr *obs.Trace) (bool, int, error) {
	if cs, ok := sys.(*r1cs.CompiledSystem); ok && w.mem != nil {
		ok, bad := cs.IsSatisfied(w.mem)
		return ok, bad, nil
	}
	if one := w.at(0); !one.IsOne() {
		return false, -1, w.fileErr()
	}
	bad := -1
	err := r1cs.ForRowWindows(r1cs.DefaultRowWindowTerms,
		[]r1cs.MatrixStream{sys.MatA(), sys.MatB(), sys.MatC()},
		func(wins []*r1cs.RowWindow) error {
			sp := tr.Span("csr/row-window")
			defer sp.End()
			wa, wb, wc := wins[0], wins[1], wins[2]
			n := wa.Rows
			if w.mem != nil {
				var first atomic.Int64
				first.Store(int64(n))
				par.Range(n, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						a := wa.RowEval(i, w.mem)
						b := wb.RowEval(i, w.mem)
						c := wc.RowEval(i, w.mem)
						var ab fr.Element
						ab.Mul(&a, &b)
						if !ab.Equal(&c) {
							for {
								cur := first.Load()
								if int64(i) >= cur || first.CompareAndSwap(cur, int64(i)) {
									break
								}
							}
							return
						}
					}
				})
				if v := first.Load(); v < int64(n) {
					bad = wa.Start + int(v)
					return errSatisfyStop
				}
				return nil
			}
			for i := 0; i < n; i++ {
				a := rowEvalSrc(wa, i, w)
				b := rowEvalSrc(wb, i, w)
				c := rowEvalSrc(wc, i, w)
				var ab fr.Element
				ab.Mul(&a, &b)
				if !ab.Equal(&c) {
					bad = wa.Start + i
					return errSatisfyStop
				}
			}
			return w.fileErr()
		})
	if err == errSatisfyStop {
		return false, bad, w.fileErr()
	}
	if err != nil {
		return false, 0, err
	}
	return true, 0, w.fileErr()
}

func (w *witnessSrc) fileErr() error {
	if w.file != nil {
		return w.file.Err()
	}
	return nil
}
