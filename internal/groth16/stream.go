package groth16

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/poly"
	"zkrownn/internal/r1cs"
)

// Out-of-core proving: at paper scale the proving key dominates memory
// (three G1 points and one G2 point per wire, plus the Z query), while
// everything else the prover touches — witness, recoded digits, FFT
// vectors — is a few dozen bytes per wire. The streamed backend leaves
// the key in its raw uncompressed file (the WriteRawTo layout) and walks
// each query section once per proof through a bounded double-buffered
// point window, so peak prover memory is independent of key size.
//
// Raw layout (all integers little-endian), as written by WriteRawTo and
// SetupStreamed:
//
//	offset 0    magic "ZKPR" (4) · version uint32 (4) · DomainSize uint64 (8)
//	offset 16   AlphaG1, BetaG1, DeltaG1   3 × 64 B uncompressed G1
//	offset 208  BetaG2, DeltaG2            2 × 128 B uncompressed G2
//	offset 464  section A   uint32 count · count × 64 B
//	            section B1  uint32 count · count × 64 B
//	            section K   uint32 count · count × 64 B
//	            section Z   uint32 count · count × 64 B
//	            section B2  uint32 count · count × 128 B
const rawPKFixedHeaderSize = 16 + 3*curve.G1UncompressedSize + 2*curve.G2UncompressedSize

// RawPKSizeBytes returns the size of the raw uncompressed proving-key
// encoding (WriteRawTo / SetupStreamed output) for the given system
// without materializing the key — the quantity a memory budget is
// compared against when deciding whether to stream.
func RawPKSizeBytes(sys r1cs.Constraints) (int64, error) {
	d := sys.Dims()
	nbCons := d.NbConstraints
	if nbCons == 0 {
		return 0, errors.New("groth16: empty constraint system")
	}
	domain, err := poly.NewDomain(uint64(nbCons))
	if err != nil {
		return 0, err
	}
	m := int64(d.NbWires)
	ell := int64(d.NbPublic)
	n := int64(domain.N)
	g1Points := m + m + (m - ell) + (n - 1) // A + B1 + K + Z
	return rawPKFixedHeaderSize + 5*4 +
		g1Points*curve.G1UncompressedSize +
		m*curve.G2UncompressedSize, nil
}

// rawSection locates one query section inside the raw key file: the
// byte offset of its first point (past the uint32 count) and the point
// count.
type rawSection struct {
	off int64
	n   int
}

// StreamedProvingKey is a proving key that stays on disk: it holds the
// handful of header points in memory plus the offsets of the five query
// sections in an io.ReaderAt over the raw encoding. It implements the
// same prover backend interface as ProvingKey, so ProveStreamed yields
// byte-identical proofs while reading each section once per proof
// through a bounded window.
//
// The ReaderAt must serve overlapping lifetimes: a StreamedProvingKey
// may be shared across goroutines (ReaderAt is required to be safe for
// concurrent use), but each individual MSM streams its section through
// a private buffer.
type StreamedProvingKey struct {
	r   io.ReaderAt
	hdr pkHeader

	secA, secB1, secK, secZ, secB2 rawSection

	// Chunk is the number of points per streamed window (0 means
	// curve.DefaultStreamChunk). Peak per-MSM point memory is twice
	// this (double buffering) plus one chunk of decoded affine points.
	Chunk int

	// SpillDir is where the out-of-core quotient pipeline writes its
	// short-lived intermediate vectors (empty means the system temp
	// directory). Callers that already manage a scratch directory for
	// spilled keys (the prover engine) point this at it.
	SpillDir string
}

// OpenStreamedProvingKey indexes a raw proving key (the WriteRawTo
// layout) served by r without loading its query sections: it decodes
// the fixed header points and records each section's offset. Section
// point data is validated lazily, chunk by chunk, as proofs stream it.
func OpenStreamedProvingKey(r io.ReaderAt) (*StreamedProvingKey, error) {
	head := make([]byte, rawPKFixedHeaderSize)
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("groth16: raw key header: %w", err)
	}
	if [4]byte(head[0:4]) != magicPKRaw {
		return nil, fmt.Errorf("groth16: bad magic %q", head[0:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != formatVersion {
		return nil, fmt.Errorf("groth16: unsupported format version %d", v)
	}
	pk := &StreamedProvingKey{r: r}
	pk.hdr.DomainSize = binary.LittleEndian.Uint64(head[8:16])
	cur := 16
	for _, pt := range []*curve.G1Affine{&pk.hdr.AlphaG1, &pk.hdr.BetaG1, &pk.hdr.DeltaG1} {
		if err := pt.SetBytesRaw(head[cur : cur+curve.G1UncompressedSize]); err != nil {
			return nil, fmt.Errorf("groth16: raw key header point: %w", err)
		}
		cur += curve.G1UncompressedSize
	}
	for _, pt := range []*curve.G2Affine{&pk.hdr.BetaG2, &pk.hdr.DeltaG2} {
		if err := pt.SetBytesRaw(head[cur : cur+curve.G2UncompressedSize]); err != nil {
			return nil, fmt.Errorf("groth16: raw key header point: %w", err)
		}
		cur += curve.G2UncompressedSize
	}

	off := int64(rawPKFixedHeaderSize)
	section := func(sec *rawSection, pointSize int64) error {
		var cnt [4]byte
		if _, err := r.ReadAt(cnt[:], off); err != nil {
			return fmt.Errorf("groth16: raw key section count at %d: %w", off, err)
		}
		n := binary.LittleEndian.Uint32(cnt[:])
		if n > 1<<28 {
			return errors.New("groth16: implausible raw section length")
		}
		sec.off = off + 4
		sec.n = int(n)
		off = sec.off + int64(n)*pointSize
		return nil
	}
	for _, sec := range []*rawSection{&pk.secA, &pk.secB1, &pk.secK, &pk.secZ} {
		if err := section(sec, curve.G1UncompressedSize); err != nil {
			return nil, err
		}
	}
	if err := section(&pk.secB2, curve.G2UncompressedSize); err != nil {
		return nil, err
	}
	// Probe the final byte so a file truncated mid-section surfaces at
	// open time rather than mid-proof.
	if off > int64(rawPKFixedHeaderSize) {
		var b [1]byte
		if _, err := r.ReadAt(b[:], off-1); err != nil {
			return nil, fmt.Errorf("groth16: raw key truncated (want %d bytes): %w", off, err)
		}
	}
	return pk, nil
}

// DomainSize returns the FFT domain order recorded in the key.
func (pk *StreamedProvingKey) DomainSize() uint64 { return pk.hdr.DomainSize }

// SizeBytes returns the raw encoding's total size in bytes.
func (pk *StreamedProvingKey) SizeBytes() int64 {
	return pk.secB2.off + int64(pk.secB2.n)*curve.G2UncompressedSize
}

func (pk *StreamedProvingKey) chunkSize() int {
	if pk.Chunk > 0 {
		return pk.Chunk
	}
	return curve.DefaultStreamChunk
}

func (pk *StreamedProvingKey) header() pkHeader { return pk.hdr }

func (pk *StreamedProvingKey) checkShape(d r1cs.Dims) error {
	m := d.NbWires
	if pk.secA.n != m || pk.secB1.n != m || pk.secB2.n != m {
		return fmt.Errorf("groth16: streamed key wire sections sized %d/%d/%d, system has %d wires",
			pk.secA.n, pk.secB1.n, pk.secB2.n, m)
	}
	if pk.secK.n != m-d.NbPublic {
		return fmt.Errorf("groth16: streamed key K section sized %d, system has %d private wires",
			pk.secK.n, m-d.NbPublic)
	}
	if pk.secZ.n != int(pk.hdr.DomainSize)-1 {
		return fmt.Errorf("groth16: streamed key Z section sized %d, domain size %d expects %d",
			pk.secZ.n, pk.hdr.DomainSize, pk.hdr.DomainSize-1)
	}
	return nil
}

// prepWitness leaves the shared decomposition nil: the streamed MSMs
// recode each chunk's scalars on the fly, so digit memory stays bounded
// by the chunk size instead of scaling with the wire count. Both
// witness residencies work — a spilled witness streams through the
// scalar-source path below.
func (pk *StreamedProvingKey) prepWitness(w *witnessSrc) (witnessExp, error) {
	return witnessExp{src: w}, nil
}

// streamG1 runs one G1 query section through the chunked MSM with lazy
// per-chunk scalar recoding, streaming the scalars from the spill file
// when the witness is not resident. off is the first wire the section
// covers (NbPublic for the K query, 0 otherwise); n is the section's
// scalar count.
func (pk *StreamedProvingKey) streamG1(sec rawSection, w witnessExp, off, n int, tr *obs.Trace, label string) (curve.G1Jac, error) {
	c := curve.StreamWindowSize(n, pk.chunkSize())
	src := curve.NewG1RawSource(pk.r, sec.off)
	if w.src.mem != nil {
		return curve.MultiExpG1StreamScalarsTraced(src, w.src.mem[off:off+n], c, pk.chunkSize(), tr, label)
	}
	return curve.MultiExpG1StreamScalarSourceTraced(src, w.src.source(off, tr), n, c, pk.chunkSize(), tr, label)
}

func (pk *StreamedProvingKey) expA(w witnessExp, tr *obs.Trace) (curve.G1Jac, error) {
	return pk.streamG1(pk.secA, w, 0, w.src.len(), tr, "stream/A")
}

func (pk *StreamedProvingKey) expB1(w witnessExp, tr *obs.Trace) (curve.G1Jac, error) {
	return pk.streamG1(pk.secB1, w, 0, w.src.len(), tr, "stream/B1")
}

func (pk *StreamedProvingKey) expB2(w witnessExp, tr *obs.Trace) (curve.G2Jac, error) {
	n := w.src.len()
	c := curve.StreamWindowSize(n, pk.chunkSize())
	src := curve.NewG2RawSource(pk.r, pk.secB2.off)
	if w.src.mem != nil {
		return curve.MultiExpG2StreamScalarsTraced(src, w.src.mem, c, pk.chunkSize(), tr, "stream/B2")
	}
	return curve.MultiExpG2StreamScalarSourceTraced(src, w.src.source(0, tr), n, c, pk.chunkSize(), tr, "stream/B2")
}

func (pk *StreamedProvingKey) expK(w witnessExp, nbPublic int, tr *obs.Trace) (curve.G1Jac, error) {
	return pk.streamG1(pk.secK, w, nbPublic, w.src.len()-nbPublic, tr, "stream/K")
}

// expZQuotient runs the fully out-of-core tail of the proof: the
// quotient pipeline leaves h in a disk file (bounded-memory FFTs, at
// most half a domain vector resident), and the Z-section MSM streams
// both its points (from the raw key) and its scalars (from the h file)
// in bounded chunks. h never exists in memory.
func (pk *StreamedProvingKey) expZQuotient(sys r1cs.Constraints, domainSize uint64, w *witnessSrc, tr *obs.Trace) (curve.G1Jac, error) {
	hf, err := quotientOOC(sys, domainSize, w, pk.SpillDir, tr)
	if err != nil {
		return curve.G1Jac{}, err
	}
	defer hf.Close()
	nScalars := hf.Len() - 1 // deg h ≤ n-2: the key's Z section has n-1 points
	c := curve.StreamWindowSize(nScalars, pk.chunkSize())
	return curve.MultiExpG1StreamScalarSourceTraced(
		curve.NewG1RawSource(pk.r, pk.secZ.off),
		func(dst []fr.Element, start int) error { return hf.ReadAt(dst, start) },
		nScalars, c, pk.chunkSize(), tr, "stream/Z")
}

// ProveStreamed produces a proof using a disk-backed key. With the same
// system, witness, and seeded rng it returns proofs byte-identical to
// Prove with the fully materialized key: chunking only reassociates the
// MSM partial sums, and affine normalization is canonical. sys may be a
// resident *r1cs.CompiledSystem or a *r1cs.CompiledSystemFile — the
// satisfy and quotient-eval loops then stream the matrices in bounded
// row windows.
func ProveStreamed(sys r1cs.Constraints, pk *StreamedProvingKey, witness []fr.Element, rng io.Reader) (*Proof, error) {
	return prove(sys, pk, memWitness(witness), rng, nil)
}

// ProveStreamedTraced is ProveStreamed recording per-phase spans —
// including the out-of-core quotient stages and the per-chunk
// read/recode/msm breakdown of each streamed section — on tr. A nil tr
// is the untraced fast path.
func ProveStreamedTraced(sys r1cs.Constraints, pk *StreamedProvingKey, witness []fr.Element, rng io.Reader, tr *obs.Trace) (*Proof, error) {
	return prove(sys, pk, memWitness(witness), rng, tr)
}

// ProveStreamedSpilled is ProveStreamed with the witness in a spilled
// store instead of RAM: constraint evaluation reads wires through the
// store's bounded page cache and every MSM streams witness scalars
// from the file, so neither the key, the matrices (with a file-backed
// sys), the witness, nor the quotient is ever fully resident. The
// store must hold a finished solve (r1cs.CompiledSystem.SolveSpilled).
// Proofs are byte-identical to the resident path under the same seeded
// rng — the spill roundtrip preserves encodings bit for bit and MSM
// chunking is exact.
func ProveStreamedSpilled(sys r1cs.Constraints, pk *StreamedProvingKey, wf *r1cs.WitnessFile, rng io.Reader, tr *obs.Trace) (*Proof, error) {
	return prove(sys, pk, &witnessSrc{file: wf}, rng, tr)
}

// setupSpillChunk is the number of scalars multiplied per batch while
// SetupStreamed spills a query section — bounding the resident slice of
// fresh G1/G2 points the same way the prover bounds its read window.
const setupSpillChunk = curve.DefaultStreamChunk

// SetupStreamed runs trusted setup writing the proving key directly to
// w in the raw uncompressed layout (exactly the bytes WriteRawTo would
// produce for the in-memory key from the same seeded rng), without ever
// holding a full query section of points in memory: each section is
// generated and spilled in bounded batches. Only the verifying key —
// a handful of points plus one G1 per public input — is returned in
// memory. Setup randomness is drawn in the same order as Setup, so a
// seeded rng yields identical key material in either mode.
//
// The scalar side of setup (a few field elements per wire) still lives
// in RAM; it is the group elements, an order of magnitude larger, that
// are spilled. sys may be file-backed (see Setup), in which case the
// QAP accumulation streams the matrices too and nothing
// circuit-proportional beyond the scalar vectors is resident.
func SetupStreamed(sys r1cs.Constraints, rng io.Reader, w io.Writer) (*VerifyingKey, error) {
	sc, err := computeSetupScalars(sys, rng)
	if err != nil {
		return nil, err
	}
	g1 := curve.G1Generator()
	g2 := curve.G2Generator()
	t1 := curve.NewG1FixedBaseTable(&g1)
	t2 := curve.NewG2FixedBaseTable(&g2)

	if err := writeHeader(w, magicPKRaw); err != nil {
		return nil, err
	}
	if err := binary.Write(w, binary.LittleEndian, sc.domain.N); err != nil {
		return nil, err
	}
	for _, k := range []*fr.Element{&sc.alpha, &sc.beta, &sc.delta} {
		p := singleG1(t1, k)
		b := p.BytesRaw()
		if _, err := w.Write(b[:]); err != nil {
			return nil, err
		}
	}
	for _, k := range []*fr.Element{&sc.beta, &sc.delta} {
		p := singleG2(t2, k)
		b := p.BytesRaw()
		if _, err := w.Write(b[:]); err != nil {
			return nil, err
		}
	}

	spillG1 := func(scalars []fr.Element) error {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(scalars))); err != nil {
			return err
		}
		for start := 0; start < len(scalars); start += setupSpillChunk {
			end := min(start+setupSpillChunk, len(scalars))
			pts := t1.MulBatch(scalars[start:end])
			for i := range pts {
				b := pts[i].BytesRaw()
				if _, err := w.Write(b[:]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	spillG2 := func(scalars []fr.Element) error {
		if err := binary.Write(w, binary.LittleEndian, uint32(len(scalars))); err != nil {
			return err
		}
		for start := 0; start < len(scalars); start += setupSpillChunk {
			end := min(start+setupSpillChunk, len(scalars))
			pts := t2.MulBatch(scalars[start:end])
			for i := range pts {
				b := pts[i].BytesRaw()
				if _, err := w.Write(b[:]); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Section order matches WriteRawTo: A, B1, K, Z in G1, then B2 in
	// G2. Scalar slices are dropped as soon as their last section is
	// written (vTau feeds both B1 and B2, so it survives to the end).
	if err := spillG1(sc.uTau); err != nil {
		return nil, err
	}
	sc.uTau = nil
	if err := spillG1(sc.vTau); err != nil {
		return nil, err
	}
	if err := spillG1(sc.kScalars); err != nil {
		return nil, err
	}
	sc.kScalars = nil
	if err := spillG1(sc.zScalars); err != nil {
		return nil, err
	}
	sc.zScalars = nil
	if err := spillG2(sc.vTau); err != nil {
		return nil, err
	}
	sc.vTau = nil

	vk := sc.verifyingKey(t1, t2)
	return &vk, nil
}
