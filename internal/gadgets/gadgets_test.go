package gadgets

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/frontend"
	"zkrownn/internal/groth16"
)

var testParams = fixpoint.Params{FracBits: 8, MagBits: 30}

func secret(c *Ctx, v int64) frontend.Variable {
	return c.B.SecretInput("", fixpoint.ToField(v))
}

func secretVec(c *Ctx, vs []int64) []frontend.Variable {
	out := make([]frontend.Variable, len(vs))
	for i, v := range vs {
		out[i] = secret(c, v)
	}
	return out
}

func valOf(t *testing.T, v frontend.Variable) int64 {
	t.Helper()
	e := v.Value()
	got, err := fixpoint.FromField(&e)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func checkSatisfied(t *testing.T, c *Ctx) {
	t.Helper()
	sys, w, err := c.B.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := sys.IsSatisfied(w); !ok {
		t.Fatalf("constraint %d violated", bad)
	}
}

func TestRescaleBitsMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	c := NewCtx(testParams)
	for i := 0; i < 200; i++ {
		v := rng.Int63n(1<<29) - (1 << 28)
		want := testParams.Rescale(v)
		got := valOf(t, c.Rescale(secret(c, v), 30))
		if got != want {
			t.Fatalf("Rescale(%d) = %d, want %d", v, got, want)
		}
	}
	// Explicit negative floor cases.
	for _, v := range []int64{-1, -255, -256, -257, 255, 256, 0} {
		want := testParams.Rescale(v)
		got := valOf(t, c.Rescale(secret(c, v), 30))
		if got != want {
			t.Fatalf("Rescale(%d) = %d, want %d", v, got, want)
		}
	}
	checkSatisfied(t, c)
}

func TestMulRescaleMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	c := NewCtx(testParams)
	for i := 0; i < 100; i++ {
		a := rng.Int63n(1<<14) - (1 << 13)
		b := rng.Int63n(1<<14) - (1 << 13)
		want := testParams.MulRescale(a, b)
		got := valOf(t, c.MulRescale(secret(c, a), secret(c, b), 30))
		if got != want {
			t.Fatalf("MulRescale(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	checkSatisfied(t, c)
}

func TestReLUMatchesSimulator(t *testing.T) {
	c := NewCtx(testParams)
	for _, v := range []int64{-1000, -1, 0, 1, 12345, -(1 << 20), 1 << 20} {
		want := fixpoint.ReLU(v)
		got := valOf(t, c.ReLU(secret(c, v), 25))
		if got != want {
			t.Fatalf("ReLU(%d) = %d, want %d", v, got, want)
		}
	}
	checkSatisfied(t, c)
}

func TestHardThresholdMatchesSimulator(t *testing.T) {
	c := NewCtx(testParams)
	beta := testParams.Encode(0.5)
	for _, v := range []int64{beta - 1, beta, beta + 1, 0, -beta, 10 * beta} {
		want := fixpoint.HardThreshold(v, beta)
		got := valOf(t, c.HardThreshold(secret(c, v), beta, 25))
		if got != want {
			t.Fatalf("HardThreshold(%d) = %d, want %d", v, got, want)
		}
	}
	checkSatisfied(t, c)
}

func TestGreaterEq(t *testing.T) {
	c := NewCtx(testParams)
	cases := []struct{ a, b, want int64 }{
		{5, 3, 1}, {3, 5, 0}, {4, 4, 1}, {-2, -7, 1}, {-7, -2, 0}, {0, 0, 1},
	}
	for _, tc := range cases {
		got := valOf(t, c.GreaterEq(secret(c, tc.a), secret(c, tc.b), 20))
		if got != tc.want {
			t.Fatalf("GreaterEq(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	checkSatisfied(t, c)
}

func TestMatMulMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	const m, n, l = 3, 4, 2
	a := make([][]int64, m)
	b := make([][]int64, n)
	for i := range a {
		a[i] = make([]int64, n)
		for j := range a[i] {
			a[i][j] = rng.Int63n(1<<12) - (1 << 11)
		}
	}
	for i := range b {
		b[i] = make([]int64, l)
		for j := range b[i] {
			b[i][j] = rng.Int63n(1<<12) - (1 << 11)
		}
	}
	// Reference with rescale.
	want := make([][]int64, m)
	for i := 0; i < m; i++ {
		want[i] = make([]int64, l)
		for j := 0; j < l; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += a[i][k] * b[k][j]
			}
			want[i][j] = testParams.Rescale(acc)
		}
	}

	c := NewCtx(testParams)
	av := make([][]frontend.Variable, m)
	for i := range av {
		av[i] = secretVec(c, a[i])
	}
	bv := make([][]frontend.Variable, n)
	for i := range bv {
		bv[i] = secretVec(c, b[i])
	}
	out := c.MatMul(av, bv, true, 30)
	for i := 0; i < m; i++ {
		for j := 0; j < l; j++ {
			if got := valOf(t, out[i][j]); got != want[i][j] {
				t.Fatalf("matmul[%d][%d] = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	checkSatisfied(t, c)
}

func TestDenseWithBias(t *testing.T) {
	c := NewCtx(testParams)
	// 2x3 weights, input length 3, bias length 2; all f-fraction values.
	w := [][]int64{{256, -256, 512}, {128, 128, 0}} // 1.0, -1.0, 2.0 / 0.5, 0.5, 0
	x := []int64{256, 512, 256}                     // 1.0, 2.0, 1.0
	bias := []int64{256, -128}                      // 1.0, -0.5
	// row0: 1·1 - 1·2 + 2·1 + 1 = 2.0 → 512 ; row1: 0.5+1+0-0.5 = 1.0 → 256
	wv := make([][]frontend.Variable, len(w))
	for i := range w {
		wv[i] = secretVec(c, w[i])
	}
	out := c.Dense(wv, secretVec(c, x), secretVec(c, bias), true, 30)
	if got := valOf(t, out[0]); got != 512 {
		t.Fatalf("dense[0] = %d, want 512", got)
	}
	if got := valOf(t, out[1]); got != 256 {
		t.Fatalf("dense[1] = %d, want 256", got)
	}
	checkSatisfied(t, c)
}

// refConv3D is the im2col reference in plain integers.
func refConv3D(p fixpoint.Params, shape Conv3DShape, input [][][]int64, kernels [][][][]int64, rescale bool) [][][]int64 {
	oh, ow := shape.OutH(), shape.OutW()
	out := make([][][]int64, shape.OutC)
	for o := 0; o < shape.OutC; o++ {
		out[o] = make([][]int64, oh)
		for i := 0; i < oh; i++ {
			out[o][i] = make([]int64, ow)
			for j := 0; j < ow; j++ {
				var acc int64
				for ch := 0; ch < shape.InC; ch++ {
					for kh := 0; kh < shape.K; kh++ {
						for kw := 0; kw < shape.K; kw++ {
							acc += input[ch][i*shape.S+kh][j*shape.S+kw] * kernels[o][ch][kh][kw]
						}
					}
				}
				if rescale {
					acc = p.Rescale(acc)
				}
				out[o][i][j] = acc
			}
		}
	}
	return out
}

func TestConv3DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	shape := Conv3DShape{InC: 2, InH: 6, InW: 6, OutC: 3, K: 3, S: 2}
	input := make([][][]int64, shape.InC)
	for ch := range input {
		input[ch] = make([][]int64, shape.InH)
		for i := range input[ch] {
			input[ch][i] = make([]int64, shape.InW)
			for j := range input[ch][i] {
				input[ch][i][j] = rng.Int63n(1<<10) - (1 << 9)
			}
		}
	}
	kernels := make([][][][]int64, shape.OutC)
	for o := range kernels {
		kernels[o] = make([][][]int64, shape.InC)
		for ch := range kernels[o] {
			kernels[o][ch] = make([][]int64, shape.K)
			for kh := range kernels[o][ch] {
				kernels[o][ch][kh] = make([]int64, shape.K)
				for kw := range kernels[o][ch][kh] {
					kernels[o][ch][kh][kw] = rng.Int63n(1<<10) - (1 << 9)
				}
			}
		}
	}
	want := refConv3D(testParams, shape, input, kernels, true)

	c := NewCtx(testParams)
	iv := make([][][]frontend.Variable, shape.InC)
	for ch := range input {
		iv[ch] = make([][]frontend.Variable, shape.InH)
		for i := range input[ch] {
			iv[ch][i] = secretVec(c, input[ch][i])
		}
	}
	kv := make([][][][]frontend.Variable, shape.OutC)
	for o := range kernels {
		kv[o] = make([][][]frontend.Variable, shape.InC)
		for ch := range kernels[o] {
			kv[o][ch] = make([][]frontend.Variable, shape.K)
			for kh := range kernels[o][ch] {
				kv[o][ch][kh] = secretVec(c, kernels[o][ch][kh])
			}
		}
	}
	out := c.Conv3D(shape, iv, kv, nil, true, 30)
	for o := 0; o < shape.OutC; o++ {
		for i := 0; i < shape.OutH(); i++ {
			for j := 0; j < shape.OutW(); j++ {
				if got := valOf(t, out[o][i][j]); got != want[o][i][j] {
					t.Fatalf("conv[%d][%d][%d] = %d, want %d", o, i, j, got, want[o][i][j])
				}
			}
		}
	}
	checkSatisfied(t, c)
}

func TestAverageMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, n := range []int{1, 3, 4, 7, 16} {
		c := NewCtx(testParams)
		vs := make([]int64, n)
		for i := range vs {
			vs[i] = rng.Int63n(1<<16) - (1 << 15)
		}
		want := testParams.Average(vs)
		got := valOf(t, c.Average(secretVec(c, vs), 35))
		if got != want {
			t.Fatalf("Average(n=%d) = %d, want %d", n, got, want)
		}
		checkSatisfied(t, c)
	}
}

func TestSigmoidMatchesSimulatorExactly(t *testing.T) {
	c := NewCtx(testParams)
	for _, x := range []float64{-4, -2.5, -1, -0.1, 0, 0.1, 1, 2.5, 4} {
		v := testParams.Encode(x)
		want := testParams.SigmoidPoly(v)
		got := valOf(t, c.Sigmoid(secret(c, v), 45))
		if got != want {
			t.Fatalf("Sigmoid(%v): circuit %d vs simulator %d", x, got, want)
		}
	}
	checkSatisfied(t, c)
}

func TestBER(t *testing.T) {
	c := NewCtx(testParams)
	wm := []int64{1, 0, 1, 1, 0, 0, 1, 0}
	same := secretVec(c, wm)
	wmV := secretVec(c, wm)
	ok := c.BER(wmV, same, 0)
	if got := valOf(t, ok); got != 1 {
		t.Fatal("BER of identical strings with θ=0 should pass")
	}

	// Two flipped bits: fails θ=1, passes θ=2.
	flipped := append([]int64(nil), wm...)
	flipped[0] ^= 1
	flipped[5] ^= 1
	wmV2 := secretVec(c, wm)
	flipV := secretVec(c, flipped)
	fail := c.BER(wmV2, flipV, 1)
	if got := valOf(t, fail); got != 0 {
		t.Fatal("BER with 2 errors should fail θ=1")
	}
	wmV3 := secretVec(c, wm)
	flipV2 := secretVec(c, flipped)
	pass := c.BER(wmV3, flipV2, 2)
	if got := valOf(t, pass); got != 1 {
		t.Fatal("BER with 2 errors should pass θ=2")
	}
	checkSatisfied(t, c)
}

func TestBERNonBooleanInputRejected(t *testing.T) {
	c := NewCtx(testParams)
	wm := secretVec(c, []int64{2, 0}) // 2 is not a bit
	other := secretVec(c, []int64{1, 0})
	_ = c.BER(wm, other, 1)
	sys, w, err := c.B.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := sys.IsSatisfied(w); ok {
		t.Fatal("non-boolean watermark bit accepted")
	}
}

func TestMaxAndMaxPool(t *testing.T) {
	c := NewCtx(testParams)
	if got := valOf(t, c.Max(secret(c, 5), secret(c, -3), 20)); got != 5 {
		t.Fatal("Max wrong")
	}
	if got := valOf(t, c.Max(secret(c, -5), secret(c, -3), 20)); got != -3 {
		t.Fatal("Max of negatives wrong")
	}

	plane := [][]int64{
		{1, 5, 2, 0},
		{3, 4, 1, 1},
		{0, 2, 9, 8},
		{1, 1, 7, 6},
	}
	pv := make([][]frontend.Variable, 4)
	for i := range plane {
		pv[i] = secretVec(c, plane[i])
	}
	pooled := c.MaxPool2D(pv, 2, 2, 20)
	want := [][]int64{{5, 2}, {2, 9}}
	for i := range want {
		for j := range want[i] {
			if got := valOf(t, pooled[i][j]); got != want[i][j] {
				t.Fatalf("maxpool[%d][%d] = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	checkSatisfied(t, c)
}

func TestGadgetsAreDataOblivious(t *testing.T) {
	build := func(seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		c := NewCtx(testParams)
		xs := make([]int64, 8)
		for i := range xs {
			xs[i] = rng.Int63n(1 << 12)
		}
		v := secretVec(c, xs)
		r := c.ReLUVec(v, 25)
		s := c.SigmoidVec(r[:4], 45)
		th := c.HardThresholdVec(s, testParams.Encode(0.5), 25)
		_ = c.BER(th, th, 1)
		_ = c.Average(v, 30)
		return c.B.NbConstraints()
	}
	if build(1) != build(2) {
		t.Fatal("constraint count depends on input values; circuits not data-oblivious")
	}
}

// TestGadgetProveVerify runs a small matmul circuit through the full
// Groth16 pipeline: private inputs, public outputs, honest and tampered.
func TestGadgetProveVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	c := NewCtx(testParams)

	a := [][]int64{{256, 512}, {-256, 128}}
	b := [][]int64{{512, 0}, {256, 256}}
	av := make([][]frontend.Variable, 2)
	bv := make([][]frontend.Variable, 2)
	for i := 0; i < 2; i++ {
		av[i] = secretVec(c, a[i])
		bv[i] = secretVec(c, b[i])
	}
	out := c.MatMul(av, bv, true, 30)
	// Publish the outputs (private inputs, public outputs — Table I's
	// standalone-circuit convention).
	for i := range out {
		for j := range out[i] {
			c.B.PublicOutput("out", out[i][j])
		}
	}
	res, err := c.B.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sys, w := res.System, res.Witness
	pk, vk, err := groth16.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := groth16.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	pub := sys.PublicValues(w)
	if err := groth16.Verify(vk, proof, pub); err != nil {
		t.Fatal(err)
	}
	// Claiming a different output must fail.
	bad := append([]fr.Element(nil), pub...)
	bad[0].SetUint64(123456)
	if err := groth16.Verify(vk, proof, bad); err == nil {
		t.Fatal("wrong public output accepted")
	}
}
