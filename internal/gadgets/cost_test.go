package gadgets

import (
	"testing"

	"zkrownn/internal/fixpoint"
	"zkrownn/internal/frontend"
)

// TestConstraintCostContracts pins the per-gadget constraint costs that
// the doc comments advertise, so documentation and implementation cannot
// drift apart. boundBits = 30 throughout.
func TestConstraintCostContracts(t *testing.T) {
	const bound = 30
	p := fixpoint.Params{FracBits: 8, MagBits: bound}

	// RescaleBits: boundBits+2 — ToBinary(boundBits+1) emits one
	// booleanity constraint per bit plus one recomposition equality.
	{
		c := NewCtx(p)
		x := secret(c, 1000)
		before := c.B.NbConstraints()
		c.Rescale(x, bound)
		if d := c.B.NbConstraints() - before; d != bound+2 {
			t.Errorf("Rescale cost %d, want %d", d, bound+2)
		}
	}

	// IsNonNegative: boundBits+2 (one shifted bit decomposition).
	{
		c := NewCtx(p)
		x := secret(c, -5)
		before := c.B.NbConstraints()
		c.IsNonNegative(x, bound)
		if d := c.B.NbConstraints() - before; d != bound+2 {
			t.Errorf("IsNonNegative cost %d, want %d", d, bound+2)
		}
	}

	// ReLU: boundBits+3 (comparison + one product with the sign bit).
	{
		c := NewCtx(p)
		x := secret(c, -5)
		before := c.B.NbConstraints()
		c.ReLU(x, bound)
		if d := c.B.NbConstraints() - before; d != bound+3 {
			t.Errorf("ReLU cost %d, want %d", d, bound+3)
		}
	}

	// InnerProduct of length n: n multiplications + 1 reduction.
	{
		c := NewCtx(p)
		a := secretVec(c, []int64{1, 2, 3, 4, 5})
		b := secretVec(c, []int64{5, 4, 3, 2, 1})
		before := c.B.NbConstraints()
		c.InnerProduct(a, b)
		if d := c.B.NbConstraints() - before; d != 6 {
			t.Errorf("InnerProduct(5) cost %d, want 6", d)
		}
	}

	// MatMul m×n × n×l without rescale: m·l·(n+1).
	{
		c := NewCtx(p)
		aM := matVars(c, [][]int64{{1, 2, 3}, {4, 5, 6}})
		bM := matVars(c, [][]int64{{1, 0}, {0, 1}, {1, 1}})
		before := c.B.NbConstraints()
		c.MatMul(aM, bM, false, bound)
		want := 2 * 2 * (3 + 1)
		if d := c.B.NbConstraints() - before; d != want {
			t.Errorf("MatMul cost %d, want %d", d, want)
		}
	}

	// Dense with bias and rescale over (out=2, in=3):
	// out·(in + 1 + rescale) where rescale = bound+3.
	{
		c := NewCtx(p)
		w := matVars(c, [][]int64{{1, 2, 3}, {4, 5, 6}})
		x := secretVec(c, []int64{1, 1, 1})
		bias := secretVec(c, []int64{1, 2})
		before := c.B.NbConstraints()
		c.Dense(w, x, bias, true, bound)
		want := 2 * (3 + 1 + bound + 2)
		if d := c.B.NbConstraints() - before; d != want {
			t.Errorf("Dense cost %d, want %d", d, want)
		}
	}

	// Average of n values: the constant scaling is free, so the cost is
	// exactly one rescale — bound+2.
	{
		c := NewCtx(p)
		xs := secretVec(c, []int64{10, 20, 30, 40})
		before := c.B.NbConstraints()
		c.Average(xs, bound)
		if d := c.B.NbConstraints() - before; d != bound+2 {
			t.Errorf("Average cost %d, want %d", d, bound+2)
		}
	}
}

// TestConstraintCostScaling: costs must scale linearly in the documented
// dimensions.
func TestConstraintCostScaling(t *testing.T) {
	p := fixpoint.Params{FracBits: 8, MagBits: 30}
	costOfReLUVec := func(n int) int {
		c := NewCtx(p)
		xs := make([]int64, n)
		v := secretVec(c, xs)
		before := c.B.NbConstraints()
		c.ReLUVec(v, 30)
		return c.B.NbConstraints() - before
	}
	c8, c16 := costOfReLUVec(8), costOfReLUVec(16)
	if c16 != 2*c8 {
		t.Errorf("ReLUVec not linear: %d vs %d", c8, c16)
	}
}

func matVars(c *Ctx, m [][]int64) [][]frontend.Variable {
	out := make([][]frontend.Variable, len(m))
	for i := range m {
		out[i] = secretVec(c, m[i])
	}
	return out
}
