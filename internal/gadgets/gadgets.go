// Package gadgets implements the zkSNARK circuits of ZKROWNN §III-B as
// composable builder fragments: matrix multiplication, 3-D convolution
// (im2col + 1-D inner products), ReLU, averaging, the degree-9 Chebyshev
// sigmoid, hard thresholding, bit-error-rate checking, and max pooling.
// Each gadget can be used standalone in its own zkSNARK (the paper's
// "modular design approach") or composed into the end-to-end watermark
// extraction circuits in internal/core.
//
// Numeric convention: wires carry signed fixed-point values per
// internal/fixpoint; every gadget documents its constraint cost and the
// magnitude bound (boundBits) its range checks assume.
package gadgets

import (
	"fmt"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/frontend"
)

// Ctx bundles the builder with the fixed-point format so gadget call
// sites stay terse.
type Ctx struct {
	B *frontend.Builder
	P fixpoint.Params
}

// NewCtx returns a gadget context over a fresh builder.
func NewCtx(p fixpoint.Params) *Ctx {
	return &Ctx{B: frontend.NewBuilder(), P: p}
}

// fieldPow2 returns 2^k as a field element.
func fieldPow2(k int) fr.Element {
	var two, out fr.Element
	two.SetUint64(2)
	out.SetOne()
	for i := 0; i < k; i++ {
		out.Mul(&out, &two)
	}
	return out
}

// RescaleBits computes floor(x / 2^shift) for a signed x with
// |x| < 2^boundBits, via the shift-and-decompose trick: x + 2^boundBits
// is non-negative and fits boundBits+1 bits; its top boundBits+1-shift
// bits recompose to the floored quotient after removing the offset.
// Cost: boundBits+2 constraints.
func (c *Ctx) RescaleBits(x frontend.Variable, shift, boundBits int) frontend.Variable {
	if shift <= 0 {
		return x
	}
	if shift > boundBits {
		panic(fmt.Sprintf("gadgets: shift %d exceeds boundBits %d", shift, boundBits))
	}
	offset := c.B.Constant(fieldPow2(boundBits))
	shifted := c.B.Add(x, offset)
	bits := c.B.ToBinary(shifted, boundBits+1)

	// q' = Σ_{i ≥ shift} 2^(i-shift)·bit_i
	high := bits[shift:]
	q := c.B.FromBinary(high)
	qOffset := c.B.Constant(fieldPow2(boundBits - shift))
	return c.B.Sub(q, qOffset)
}

// Rescale divides by the fixed-point scale 2^f (after a product of two
// f-bit-fraction values).
func (c *Ctx) Rescale(x frontend.Variable, boundBits int) frontend.Variable {
	return c.RescaleBits(x, c.P.FracBits, boundBits)
}

// MulRescale multiplies two fixed-point variables and rescales back to f
// fraction bits. boundBits must bound the raw product magnitude.
func (c *Ctx) MulRescale(a, b frontend.Variable, boundBits int) frontend.Variable {
	prod := c.B.Mul(a, b)
	return c.Rescale(prod, boundBits)
}

// IsNonNegative returns a boolean wire = 1 iff x ≥ 0 (as a signed value
// with |x| < 2^boundBits). Cost: boundBits+2 constraints.
func (c *Ctx) IsNonNegative(x frontend.Variable, boundBits int) frontend.Variable {
	offset := c.B.Constant(fieldPow2(boundBits))
	shifted := c.B.Add(x, offset)
	bits := c.B.ToBinary(shifted, boundBits+1)
	return bits[boundBits]
}

// GreaterEq returns 1 iff a ≥ b (signed comparison under the bound).
func (c *Ctx) GreaterEq(a, b frontend.Variable, boundBits int) frontend.Variable {
	diff := c.B.Sub(a, b)
	return c.IsNonNegative(diff, boundBits)
}

// ReLU computes max(0, x) (§III-B.4). Cost: boundBits+3 constraints.
func (c *Ctx) ReLU(x frontend.Variable, boundBits int) frontend.Variable {
	sign := c.IsNonNegative(x, boundBits)
	return c.B.Mul(sign, x)
}

// ReLUVec applies ReLU element-wise.
func (c *Ctx) ReLUVec(xs []frontend.Variable, boundBits int) []frontend.Variable {
	out := make([]frontend.Variable, len(xs))
	for i := range xs {
		out[i] = c.ReLU(xs[i], boundBits)
	}
	return out
}

// HardThreshold computes the paper's piecewise step (§III-B.4):
// 1 if x ≥ β, else 0. β is a circuit constant (scaled).
func (c *Ctx) HardThreshold(x frontend.Variable, beta int64, boundBits int) frontend.Variable {
	betaVar := c.B.Constant(fixpoint.ToField(beta))
	return c.GreaterEq(x, betaVar, boundBits)
}

// HardThresholdVec thresholds a vector, yielding the extracted
// watermark bits.
func (c *Ctx) HardThresholdVec(xs []frontend.Variable, beta int64, boundBits int) []frontend.Variable {
	out := make([]frontend.Variable, len(xs))
	for i := range xs {
		out[i] = c.HardThreshold(xs[i], beta, boundBits)
	}
	return out
}

// InnerProduct computes Σ aᵢ·bᵢ (raw, carrying 2f fraction bits if both
// operands carry f). Cost: n multiplications + 1 reduction.
func (c *Ctx) InnerProduct(a, b []frontend.Variable) frontend.Variable {
	if len(a) != len(b) {
		panic("gadgets: inner product length mismatch")
	}
	prods := make([]frontend.Variable, len(a))
	for i := range a {
		prods[i] = c.B.Mul(a[i], b[i])
	}
	return c.B.Reduce(c.B.Sum(prods...))
}

// MatMul computes A(M×N) × B(N×L) (§III-B.1). When rescale is true each
// entry is floor-divided by 2^f so outputs carry f fraction bits again.
// Cost: M·L·(N+1) constraints plus rescaling.
func (c *Ctx) MatMul(a, b [][]frontend.Variable, rescale bool, boundBits int) [][]frontend.Variable {
	m := len(a)
	if m == 0 {
		return nil
	}
	n := len(a[0])
	if len(b) != n {
		panic(fmt.Sprintf("gadgets: matmul inner dimensions %d vs %d", n, len(b)))
	}
	l := len(b[0])
	// Column views of B to reuse InnerProduct.
	bCols := make([][]frontend.Variable, l)
	for j := 0; j < l; j++ {
		col := make([]frontend.Variable, n)
		for k := 0; k < n; k++ {
			col[k] = b[k][j]
		}
		bCols[j] = col
	}
	out := make([][]frontend.Variable, m)
	for i := 0; i < m; i++ {
		out[i] = make([]frontend.Variable, l)
		for j := 0; j < l; j++ {
			v := c.InnerProduct(a[i], bCols[j])
			if rescale {
				v = c.Rescale(v, boundBits)
			}
			out[i][j] = v
		}
	}
	return out
}

// MatVec computes A(M×N) × x(N), the dense-layer primitive.
func (c *Ctx) MatVec(a [][]frontend.Variable, x []frontend.Variable, rescale bool, boundBits int) []frontend.Variable {
	out := make([]frontend.Variable, len(a))
	for i := range a {
		v := c.InnerProduct(a[i], x)
		if rescale {
			v = c.Rescale(v, boundBits)
		}
		out[i] = v
	}
	return out
}

// Dense computes W·x + bias with an optional rescale, the zkSNARK
// fully-connected layer of the feed-forward step.
func (c *Ctx) Dense(w [][]frontend.Variable, x, bias []frontend.Variable, rescale bool, boundBits int) []frontend.Variable {
	if bias != nil && len(bias) != len(w) {
		panic("gadgets: bias length mismatch")
	}
	out := make([]frontend.Variable, len(w))
	for i := range w {
		acc := c.InnerProduct(w[i], x)
		if bias != nil {
			// Bias carries f fraction bits; align to the 2f-bit product
			// domain before adding, so a single rescale suffices.
			scaled := c.B.MulConst(bias[i], fieldPow2(c.P.FracBits))
			acc = c.B.Add(acc, scaled)
		}
		if rescale {
			acc = c.Rescale(acc, boundBits)
		}
		out[i] = acc
	}
	return out
}

// Conv3DShape describes a 3-D convolution (§III-B.2): input volume
// C×H×W, OutC kernels of size C×K×K, stride S, no padding.
type Conv3DShape struct {
	InC, InH, InW int
	OutC, K, S    int
}

// OutH returns the output height.
func (s Conv3DShape) OutH() int { return (s.InH-s.K)/s.S + 1 }

// OutW returns the output width.
func (s Conv3DShape) OutW() int { return (s.InW-s.K)/s.S + 1 }

// Validate checks the shape parameters.
func (s Conv3DShape) Validate() error {
	if s.InC <= 0 || s.InH <= 0 || s.InW <= 0 || s.OutC <= 0 || s.K <= 0 || s.S <= 0 {
		return fmt.Errorf("gadgets: non-positive conv dimension %+v", s)
	}
	if s.K > s.InH || s.K > s.InW {
		return fmt.Errorf("gadgets: kernel %d exceeds input %dx%d", s.K, s.InH, s.InW)
	}
	return nil
}

// Conv3D implements the paper's convolution circuit: the input volume is
// flattened and regrouped by kernel window (im2col) and each output is a
// 1-D inner product of the window with the flattened kernel.
//
// input is indexed [c][h][w]; kernels [o][c][kh][kw]; the result is
// [o][oh][ow]. Cost per output element: C·K² multiplications + 1
// reduction (+ rescale).
func (c *Ctx) Conv3D(shape Conv3DShape, input [][][]frontend.Variable, kernels [][][][]frontend.Variable, bias []frontend.Variable, rescale bool, boundBits int) [][][]frontend.Variable {
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	oh, ow := shape.OutH(), shape.OutW()
	out := make([][][]frontend.Variable, shape.OutC)

	// Flatten each kernel once.
	flatKernels := make([][]frontend.Variable, shape.OutC)
	for o := 0; o < shape.OutC; o++ {
		flat := make([]frontend.Variable, 0, shape.InC*shape.K*shape.K)
		for ch := 0; ch < shape.InC; ch++ {
			for kh := 0; kh < shape.K; kh++ {
				for kw := 0; kw < shape.K; kw++ {
					flat = append(flat, kernels[o][ch][kh][kw])
				}
			}
		}
		flatKernels[o] = flat
	}

	for o := 0; o < shape.OutC; o++ {
		out[o] = make([][]frontend.Variable, oh)
		for i := 0; i < oh; i++ {
			out[o][i] = make([]frontend.Variable, ow)
			for j := 0; j < ow; j++ {
				// im2col window for output position (i, j).
				window := make([]frontend.Variable, 0, shape.InC*shape.K*shape.K)
				for ch := 0; ch < shape.InC; ch++ {
					for kh := 0; kh < shape.K; kh++ {
						for kw := 0; kw < shape.K; kw++ {
							window = append(window, input[ch][i*shape.S+kh][j*shape.S+kw])
						}
					}
				}
				acc := c.InnerProduct(window, flatKernels[o])
				if bias != nil {
					scaled := c.B.MulConst(bias[o], fieldPow2(c.P.FracBits))
					acc = c.B.Add(acc, scaled)
				}
				if rescale {
					acc = c.Rescale(acc, boundBits)
				}
				out[o][i][j] = acc
			}
		}
	}
	return out
}

// Average computes the fixed-point mean of xs with the zkAverage
// semantics shared with fixpoint.Average: sum · round(2^f/n) then
// rescale. Cost: boundBits+2 constraints (one rescale).
func (c *Ctx) Average(xs []frontend.Variable, boundBits int) frontend.Variable {
	if len(xs) == 0 {
		return c.B.Zero()
	}
	sum := c.B.Sum(xs...)
	recip := int64(float64(c.P.Scale())/float64(len(xs)) + 0.5)
	scaled := c.B.MulConst(sum, fixpoint.ToField(recip))
	return c.Rescale(scaled, boundBits)
}

// AverageRows computes per-row means of a matrix (the paper's Average2D
// benchmark and the activation-map averaging of Algorithm 1).
func (c *Ctx) AverageRows(rows [][]frontend.Variable, boundBits int) []frontend.Variable {
	out := make([]frontend.Variable, len(rows))
	for i := range rows {
		out[i] = c.Average(rows[i], boundBits)
	}
	return out
}

// AverageCols computes per-column means of a matrix: the Gaussian-center
// estimation across trigger activations (rows = triggers).
func (c *Ctx) AverageCols(rows [][]frontend.Variable, boundBits int) []frontend.Variable {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows[0])
	out := make([]frontend.Variable, n)
	col := make([]frontend.Variable, len(rows))
	for j := 0; j < n; j++ {
		for i := range rows {
			col[i] = rows[i][j]
		}
		out[j] = c.Average(col, boundBits)
	}
	return out
}

// Clamp saturates x to the constant interval [lo, hi] (scaled values),
// data-obliviously: two comparisons and two selects.
func (c *Ctx) Clamp(x frontend.Variable, lo, hi int64, boundBits int) frontend.Variable {
	hiV := c.B.Constant(fixpoint.ToField(hi))
	loV := c.B.Constant(fixpoint.ToField(lo))
	geHi := c.GreaterEq(x, hiV, boundBits)
	x = c.B.Select(geHi, hiV, x)
	leLo := c.GreaterEq(loV, x, boundBits)
	return c.B.Select(leLo, loV, x)
}

// Sigmoid evaluates the degree-9 Chebyshev approximation (§III-B.3) with
// the identical operation order as fixpoint.SigmoidPoly: the input is
// saturated to ±fixpoint.SigmoidClampAbs first (keeping the odd-power
// intermediates inside their range checks), then the polynomial is
// evaluated term by term.
func (c *Ctx) Sigmoid(x frontend.Variable, boundBits int) frontend.Variable {
	clampAbs := c.P.Encode(fixpoint.SigmoidClampAbs)
	x = c.Clamp(x, -clampAbs, clampAbs, boundBits)
	c0, odd, fc := c.P.SigmoidCoefficients()

	// The raw power-chain products reach 8⁹·2^(2f) ≈ 2^(27+2f) at the
	// clamp boundary, which can exceed the caller's accumulation bound;
	// range-check them at their own width.
	powBound := 2*c.P.FracBits + 29
	if powBound < boundBits {
		powBound = boundBits
	}
	x2 := c.MulRescale(x, x, powBound)
	res := c.B.Constant(fixpoint.ToField(c0))
	pow := x
	for i := 0; i < 5; i++ {
		scaled := c.B.MulConst(pow, fixpoint.ToField(odd[i]))
		term := c.RescaleBits(scaled, fc, boundBits+c.P.FracBits)
		res = c.B.Add(res, term)
		if i < 4 {
			pow = c.MulRescale(pow, x2, powBound)
		}
	}
	return res
}

// SigmoidVec applies the sigmoid gadget element-wise.
func (c *Ctx) SigmoidVec(xs []frontend.Variable, boundBits int) []frontend.Variable {
	out := make([]frontend.Variable, len(xs))
	for i := range xs {
		out[i] = c.Sigmoid(xs[i], boundBits)
	}
	return out
}

// BER compares the private watermark bits wm with the extracted bits
// wmHat (§III-B.5) and returns 1 iff at most maxErrors bits differ.
// Both inputs must be boolean wires (the gadget re-asserts wm for
// defence in depth; wmHat normally comes from HardThreshold and is
// already boolean). Cost: N multiplications + a small comparison.
func (c *Ctx) BER(wm, wmHat []frontend.Variable, maxErrors int) frontend.Variable {
	if len(wm) != len(wmHat) {
		panic("gadgets: BER length mismatch")
	}
	diffs := make([]frontend.Variable, len(wm))
	for i := range wm {
		c.B.AssertBoolean(wm[i])
		// XOR: a + b - 2ab
		prod := c.B.Mul(wm[i], wmHat[i])
		two := c.B.MulConst(prod, fieldPow2(1))
		diffs[i] = c.B.Sub(c.B.Add(wm[i], wmHat[i]), two)
	}
	count := c.B.Reduce(c.B.Sum(diffs...))
	// count ≤ maxErrors, with count ∈ [0, N]: small comparison width.
	width := 1
	for 1<<width <= len(wm)+1 {
		width++
	}
	maxVar := c.B.ConstUint64(uint64(maxErrors))
	return c.GreaterEq(maxVar, count, width+1)
}

// Max returns max(a, b) via one comparison and one select.
func (c *Ctx) Max(a, b frontend.Variable, boundBits int) frontend.Variable {
	ge := c.GreaterEq(a, b, boundBits)
	return c.B.Select(ge, a, b)
}

// MaxPool2D applies K×K max pooling with stride S to a [h][w] plane
// (Table II's MP layers; provided for deeper-layer extraction support).
func (c *Ctx) MaxPool2D(plane [][]frontend.Variable, k, s, boundBits int) [][]frontend.Variable {
	h := len(plane)
	w := len(plane[0])
	oh := (h-k)/s + 1
	ow := (w-k)/s + 1
	out := make([][]frontend.Variable, oh)
	for i := 0; i < oh; i++ {
		out[i] = make([]frontend.Variable, ow)
		for j := 0; j < ow; j++ {
			cur := plane[i*s][j*s]
			for di := 0; di < k; di++ {
				for dj := 0; dj < k; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					cur = c.Max(cur, plane[i*s+di][j*s+dj], boundBits)
				}
			}
			out[i][j] = cur
		}
	}
	return out
}
