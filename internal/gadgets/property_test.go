package gadgets

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"zkrownn/internal/fixpoint"
)

// boundedVal is a quick.Generator producing signed values inside the
// test format's safe multiplication range.
type boundedVal int64

func (boundedVal) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(boundedVal(rng.Int63n(1<<14) - (1 << 13)))
}

// TestQuickRescaleMatchesSimulator: circuit rescale == integer rescale
// for arbitrary in-range values.
func TestQuickRescaleMatchesSimulator(t *testing.T) {
	f := func(v boundedVal) bool {
		c := NewCtx(testParams)
		got := c.Rescale(secret(c, int64(v)), 30)
		e := got.Value()
		gi, err := fixpoint.FromField(&e)
		if err != nil {
			return false
		}
		if gi != testParams.Rescale(int64(v)) {
			return false
		}
		sys, w, err := c.B.Finalize()
		if err != nil {
			return false
		}
		ok, _ := sys.IsSatisfied(w)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickMulRescale: circuit fixed-point product == simulator product.
func TestQuickMulRescale(t *testing.T) {
	f := func(a, b boundedVal) bool {
		c := NewCtx(testParams)
		got := c.MulRescale(secret(c, int64(a)), secret(c, int64(b)), 30)
		e := got.Value()
		gi, err := fixpoint.FromField(&e)
		if err != nil {
			return false
		}
		return gi == testParams.MulRescale(int64(a), int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickReLUAndThreshold: sign-dependent gadgets agree with the
// simulator across the signed range.
func TestQuickReLUAndThreshold(t *testing.T) {
	beta := testParams.Encode(0.5)
	f := func(v boundedVal) bool {
		c := NewCtx(testParams)
		r := c.ReLU(secret(c, int64(v)), 20)
		th := c.HardThreshold(secret(c, int64(v)), beta, 20)
		er := r.Value()
		et := th.Value()
		ri, err1 := fixpoint.FromField(&er)
		ti, err2 := fixpoint.FromField(&et)
		if err1 != nil || err2 != nil {
			return false
		}
		return ri == fixpoint.ReLU(int64(v)) && ti == fixpoint.HardThreshold(int64(v), beta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSigmoidEquality: the circuit sigmoid is bit-identical to the
// simulator including the clamp region.
func TestQuickSigmoidEquality(t *testing.T) {
	f := func(raw int16) bool {
		// Spread over roughly [-16, 16] to cover both clamp branches.
		v := int64(raw) * testParams.Scale() / 2048
		c := NewCtx(testParams)
		s := c.Sigmoid(secret(c, v), 40)
		e := s.Value()
		si, err := fixpoint.FromField(&e)
		if err != nil {
			return false
		}
		if si != testParams.SigmoidPoly(v) {
			return false
		}
		sys, w, err := c.B.Finalize()
		if err != nil {
			return false
		}
		ok, _ := sys.IsSatisfied(w)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickGreaterEqTotalOrder: the comparison gadget implements a
// total order consistent with integer comparison.
func TestQuickGreaterEqTotalOrder(t *testing.T) {
	f := func(a, b boundedVal) bool {
		c := NewCtx(testParams)
		ge := c.GreaterEq(secret(c, int64(a)), secret(c, int64(b)), 20)
		le := c.GreaterEq(secret(c, int64(b)), secret(c, int64(a)), 20)
		eg := ge.Value()
		el := le.Value()
		gi, _ := fixpoint.FromField(&eg)
		li, _ := fixpoint.FromField(&el)
		wantGe := int64(0)
		if a >= b {
			wantGe = 1
		}
		wantLe := int64(0)
		if b >= a {
			wantLe = 1
		}
		// At least one direction always holds; both iff equal.
		if gi|li == 0 {
			return false
		}
		return gi == wantGe && li == wantLe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickClampIdempotent: clamping twice equals clamping once, and the
// result is always inside the interval.
func TestQuickClampIdempotent(t *testing.T) {
	lo := testParams.Encode(-2)
	hi := testParams.Encode(3)
	f := func(v boundedVal) bool {
		c := NewCtx(testParams)
		once := c.Clamp(secret(c, int64(v)), lo, hi, 25)
		twice := c.Clamp(once, lo, hi, 25)
		e1 := once.Value()
		e2 := twice.Value()
		v1, _ := fixpoint.FromField(&e1)
		v2, _ := fixpoint.FromField(&e2)
		return v1 == v2 && v1 >= lo && v1 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickBERCount: the BER gadget verdict matches a direct popcount
// comparison for random bit strings and thresholds.
func TestQuickBERCount(t *testing.T) {
	rng := rand.New(rand.NewSource(900))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		a := make([]int64, n)
		b := make([]int64, n)
		diff := 0
		for i := range a {
			a[i] = int64(rng.Intn(2))
			b[i] = int64(rng.Intn(2))
			if a[i] != b[i] {
				diff++
			}
		}
		theta := rng.Intn(n + 1)
		want := int64(0)
		if diff <= theta {
			want = 1
		}
		c := NewCtx(testParams)
		verdict := c.BER(secretVec(c, a), secretVec(c, b), theta)
		e := verdict.Value()
		got, err := fixpoint.FromField(&e)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("BER verdict %d, want %d (diff=%d θ=%d)", got, want, diff, theta)
		}
		sys, w, err := c.B.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if ok, bad := sys.IsSatisfied(w); !ok {
			t.Fatalf("constraint %d violated", bad)
		}
	}
}
