// Package par provides the tiny data-parallel helpers shared by the
// multi-exponentiation, FFT, and prover hot loops.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers is the parallelism used by Range and Each: GOMAXPROCS,
// capped at the physical CPU count — oversubscribing CPU-bound field
// arithmetic only adds scheduler churn. Callers sizing their own work
// decomposition (the MSM's chunk count) should use it too.
func Workers() int {
	workers := runtime.GOMAXPROCS(0)
	if ncpu := runtime.NumCPU(); workers > ncpu {
		workers = ncpu
	}
	return workers
}

// Range splits [0, n) into contiguous chunks executed concurrently on up
// to GOMAXPROCS goroutines. f must be safe for disjoint index ranges.
func Range(n int, f func(start, end int)) {
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 256 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			f(s, e)
		}(start, end)
	}
	wg.Wait()
}

// Each runs f(i) for every i in [0, n) on up to GOMAXPROCS goroutines,
// pulling indices from a shared atomic counter so long tasks don't
// stall short ones. Unlike Range it parallelizes even tiny n: it is
// meant for coarse-grained tasks (an MSM chunk×window cell, a whole
// bucket reduction) whose body dwarfs the scheduling cost. For fine
// per-element loops use Range.
func Each(n int, f func(i int)) {
	workers := Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
