// Package par provides the tiny data-parallel helper shared by the
// multi-exponentiation, FFT, and prover hot loops.
package par

import (
	"runtime"
	"sync"
)

// Range splits [0, n) into contiguous chunks executed concurrently on up
// to GOMAXPROCS goroutines. f must be safe for disjoint index ranges.
func Range(n int, f func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 256 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			f(s, e)
		}(start, end)
	}
	wg.Wait()
}
