package par

import (
	"sync/atomic"
	"testing"
)

func TestRangeCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 1000, 4096} {
		seen := make([]int32, n)
		Range(n, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestRangeZero(t *testing.T) {
	called := false
	Range(0, func(start, end int) {
		if start != end {
			called = true
		}
	})
	if called {
		t.Fatal("Range(0) must not produce non-empty chunks")
	}
}

func TestEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 63, 256, 1000} {
		seen := make([]int32, n)
		Each(n, func(i int) {
			atomic.AddInt32(&seen[i], 1)
		})
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, v)
			}
		}
	}
}

func TestEachZero(t *testing.T) {
	Each(0, func(i int) {
		t.Fatalf("Each(0) called f(%d)", i)
	})
}
