// Package watermark implements the DeepSigns white-box watermarking
// scheme (Rouhani, Chen, Koushanfar — ASPLOS 2019) that ZKROWNN builds
// on: an N-bit owner signature is embedded into the probability density
// function of the activation maps of a chosen hidden layer, keyed by a
// secret trigger set and a secret projection matrix.
//
// Embedding fine-tunes the model with an additional loss that pushes
// sigmoid(mean-activation · A) toward the signature bits; extraction
// queries the model with the trigger keys, averages the activations,
// projects, squashes, thresholds, and compares bit error rate — exactly
// the pipeline ZKROWNN's Algorithm 1 runs inside a zkSNARK.
package watermark

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"zkrownn/internal/fixpoint"
	"zkrownn/internal/nn"
)

// Key is the owner's secret watermarking material: the embedded layer,
// the target Gaussian class, the trigger inputs (a subset of training
// data of that class), and the projection matrix A.
type Key struct {
	// LayerIndex is l_wm: extraction reads the activation produced by
	// net.Layers[LayerIndex] (normally the ReLU after the first hidden
	// dense/conv layer).
	LayerIndex int
	// TargetClass is the Gaussian class s whose distribution carries
	// the watermark.
	TargetClass int
	// Triggers is X_key.
	Triggers [][]float64
	// A is the M×N projection matrix (M = activation dim, N = bits).
	A [][]float64
	// Signature is the owner's N-bit watermark.
	Signature []int
}

// Validate checks structural consistency.
func (k *Key) Validate() error {
	if len(k.Triggers) == 0 {
		return errors.New("watermark: empty trigger set")
	}
	if len(k.A) == 0 || len(k.A[0]) != len(k.Signature) {
		return fmt.Errorf("watermark: projection is %dx%d but signature has %d bits",
			len(k.A), len(k.A[0]), len(k.Signature))
	}
	for _, b := range k.Signature {
		if b != 0 && b != 1 {
			return errors.New("watermark: signature must be binary")
		}
	}
	return nil
}

// NbBits returns the signature length N.
func (k *Key) NbBits() int { return len(k.Signature) }

// GenerateKey draws a fresh watermark key: an iid random binary
// signature (the DeepSigns "arbitrary binary string"), a Gaussian
// projection matrix, and a trigger set sampled from the provided
// class-s inputs.
func GenerateKey(rng *rand.Rand, layerIndex, targetClass, activationDim, nbBits, nbTriggers int, classInputs [][]float64) (*Key, error) {
	if len(classInputs) < nbTriggers {
		return nil, fmt.Errorf("watermark: need %d trigger candidates, have %d", nbTriggers, len(classInputs))
	}
	k := &Key{
		LayerIndex:  layerIndex,
		TargetClass: targetClass,
		Signature:   make([]int, nbBits),
		A:           make([][]float64, activationDim),
	}
	for i := range k.Signature {
		k.Signature[i] = rng.Intn(2)
	}
	for i := range k.A {
		k.A[i] = make([]float64, nbBits)
		for j := range k.A[i] {
			k.A[i][j] = rng.NormFloat64()
		}
	}
	perm := rng.Perm(len(classInputs))
	for t := 0; t < nbTriggers; t++ {
		src := classInputs[perm[t]]
		trigger := make([]float64, len(src))
		copy(trigger, src)
		k.Triggers = append(k.Triggers, trigger)
	}
	return k, nil
}

// meanActivation computes μ, the per-dimension mean of the layer-l_wm
// activations over the trigger set.
func meanActivation(net *nn.Network, k *Key) []float64 {
	var mu []float64
	for _, trig := range k.Triggers {
		act := net.ForwardUpTo(trig, k.LayerIndex)
		if mu == nil {
			mu = make([]float64, len(act))
		}
		for i, v := range act {
			mu[i] += v
		}
	}
	for i := range mu {
		mu[i] /= float64(len(k.Triggers))
	}
	return mu
}

// project computes z = μ·A.
func project(mu []float64, a [][]float64) []float64 {
	n := len(a[0])
	z := make([]float64, n)
	for i, m := range mu {
		if i >= len(a) {
			break
		}
		for j := 0; j < n; j++ {
			z[j] += m * a[i][j]
		}
	}
	return z
}

// Extract runs plain (float) watermark extraction and returns the
// recovered bits and the bit error rate against the key's signature.
func Extract(net *nn.Network, k *Key) (bits []int, ber float64) {
	mu := meanActivation(net, k)
	z := project(mu, k.A)
	bits = make([]int, len(z))
	errCount := 0
	for j := range z {
		g := 1.0 / (1.0 + math.Exp(-z[j]))
		if g >= 0.5 {
			bits[j] = 1
		}
		if bits[j] != k.Signature[j] {
			errCount++
		}
	}
	return bits, float64(errCount) / float64(len(z))
}

// ExtractQuantized runs extraction through the fixed-point pipeline that
// the zkSNARK circuit implements: quantized triggers, quantized forward
// pass, column-wise fixed-point averaging, projection with one rescale,
// the degree-9 Chebyshev sigmoid, and hard thresholding at 0.5. The
// returned bits are what the circuit's zkHardThresholding produces.
func ExtractQuantized(q *nn.QuantizedNetwork, k *Key) (bits []int, nbErrors int, err error) {
	p := q.Params

	// Activations per trigger.
	var acts [][]int64
	for _, trig := range k.Triggers {
		a, err := q.ForwardUpTo(p.EncodeSlice(trig), k.LayerIndex)
		if err != nil {
			return nil, 0, err
		}
		acts = append(acts, a)
	}

	// Column-wise fixed-point means (zkAverage semantics).
	m := len(acts[0])
	mu := make([]int64, m)
	col := make([]int64, len(acts))
	for i := 0; i < m; i++ {
		for t := range acts {
			col[t] = acts[t][i]
		}
		mu[i] = p.Average(col)
	}

	// Projection μ·A with a single rescale per output (zkMatMult).
	aq := make([][]int64, len(k.A))
	for i := range k.A {
		aq[i] = p.EncodeSlice(k.A[i])
	}
	n := k.NbBits()
	bits = make([]int, n)
	half := p.Encode(0.5)
	for j := 0; j < n; j++ {
		var acc int64
		for i := 0; i < m && i < len(aq); i++ {
			acc += mu[i] * aq[i][j]
		}
		z := p.Rescale(acc)
		g := p.SigmoidPoly(z)
		bits[j] = int(fixpoint.HardThreshold(g, half))
		if bits[j] != k.Signature[j] {
			nbErrors++
		}
	}
	return bits, nbErrors, nil
}

// BER returns the fraction of differing bits between two equal-length
// bit strings.
func BER(a, b []int) float64 {
	if len(a) != len(b) {
		return 1
	}
	if len(a) == 0 {
		return 0
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a))
}

// EmbedConfig controls the fine-tuning that embeds the watermark.
type EmbedConfig struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	// LambdaWM weights the watermark (BCE) loss against the task loss.
	LambdaWM float64
	// LambdaTight weights the activation-tightening term that pulls
	// trigger activations toward their Gaussian center (DeepSigns loss2).
	LambdaTight float64
	// WMSteps is the number of watermark gradient steps per epoch.
	WMSteps int
	// PolishSteps caps the pure-watermark gradient steps run after the
	// main loop (no task interleaving) to push the margin to target.
	PolishSteps int
	// StraightThrough injects the watermark gradient at the
	// pre-activation when l_wm is a ReLU, bypassing the dead-unit mask
	// (a straight-through estimator). Dead units can then be revived,
	// which the pure post-ReLU gradient cannot do.
	StraightThrough bool
	// MarginTarget stops embedding early once every projected logit
	// z_j has the correct sign with |z_j| ≥ MarginTarget; the margin
	// makes the embedded bits robust to fixed-point quantization.
	MarginTarget float64
	Silent       bool
	Logf         func(format string, args ...any)
}

// DefaultEmbedConfig returns sensible fine-tuning defaults.
func DefaultEmbedConfig() EmbedConfig {
	return EmbedConfig{
		Epochs: 50, BatchSize: 16, LearningRate: 0.05,
		LambdaWM: 1.0, LambdaTight: 0.01,
		WMSteps: 5, PolishSteps: 400, MarginTarget: 2.0,
		StraightThrough: true, Silent: true,
	}
}

// Embed fine-tunes net so that the watermark extracts with zero BER
// while task accuracy is maintained: each epoch interleaves task SGD
// with a watermark step whose gradient is the BCE derivative of
// sigmoid(μ·A) against the signature, distributed over the trigger
// activations (μ is their mean).
func Embed(net *nn.Network, k *Key, xs [][]float64, ys []int, cfg EmbedConfig, rng *rand.Rand) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.WMSteps <= 0 {
		cfg.WMSteps = 1
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}

	// Straight-through injection point: when l_wm is a ReLU, inject the
	// watermark gradient at the layer below so dead units can recover.
	injectAt := k.LayerIndex
	if cfg.StraightThrough && injectAt > 0 {
		if _, isReLU := net.Layers[injectAt].(*nn.ReLULayer); isReLU {
			injectAt--
		}
	}

	// wmStep runs one watermark gradient step, returning the BCE loss
	// and the minimum signed margin min_j (2·wm_j - 1)·z_j.
	wmStep := func() (float64, float64) {
		mu := meanActivation(net, k)
		z := project(mu, k.A)
		// ∂BCE/∂z_j = σ(z_j) - wm_j ; ∂/∂μ_i = Σ_j A_ij (σ(z_j) - wm_j)
		dz := make([]float64, len(z))
		var wmLoss float64
		minMargin := math.Inf(1)
		for j := range z {
			g := 1.0 / (1.0 + math.Exp(-z[j]))
			dz[j] = g - float64(k.Signature[j])
			if k.Signature[j] == 1 {
				wmLoss += -math.Log(math.Max(g, 1e-12))
			} else {
				wmLoss += -math.Log(math.Max(1-g, 1e-12))
			}
			margin := (2*float64(k.Signature[j]) - 1) * z[j]
			if margin < minMargin {
				minMargin = margin
			}
		}
		dmu := make([]float64, len(mu))
		for i := range mu {
			if i >= len(k.A) {
				break
			}
			for j := range dz {
				dmu[i] += k.A[i][j] * dz[j]
			}
		}
		invT := 1.0 / float64(len(k.Triggers))
		for _, trig := range k.Triggers {
			act := net.ForwardUpTo(trig, k.LayerIndex)
			grad := make([]float64, len(act))
			for i := range grad {
				grad[i] = cfg.LambdaWM * dmu[i] * invT
				// Tightening: pull the activation toward the center.
				grad[i] += cfg.LambdaTight * (act[i] - mu[i]) * invT
			}
			net.BackwardFrom(injectAt, grad)
		}
		net.Step(cfg.LearningRate)
		return wmLoss, minMargin
	}

	bestMargin := math.Inf(-1)
	var bestSnap [][]float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Task pass.
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, s := range idx[start:end] {
				out := net.Forward(xs[s])
				_, grad := nn.SoftmaxCrossEntropy(out, ys[s])
				scale := 1.0 / float64(end-start)
				for i := range grad {
					grad[i] *= scale
				}
				net.Backward(grad)
			}
			net.Step(cfg.LearningRate)
		}

		// Watermark passes.
		var wmLoss, minMargin float64
		for s := 0; s < cfg.WMSteps; s++ {
			wmLoss, minMargin = wmStep()
		}
		if minMargin > bestMargin {
			bestMargin = minMargin
			bestSnap = net.SnapshotParams()
		}

		if !cfg.Silent && cfg.Logf != nil {
			_, ber := Extract(net, k)
			cfg.Logf("embed epoch %d/%d wmLoss=%.4f margin=%.2f BER=%.3f\n",
				epoch+1, cfg.Epochs, wmLoss, minMargin, ber)
		}
		if cfg.MarginTarget > 0 && minMargin >= cfg.MarginTarget {
			return nil
		}
	}
	// Polish: pure watermark steps without task interleaving, which
	// reliably push the margin past the quantization-robustness target
	// while barely moving the task loss (the gradient only touches
	// layers at or below l_wm and shrinks as the logits saturate).
	lastMargin := math.Inf(-1)
	for s := 0; s < cfg.PolishSteps; s++ {
		_, lastMargin = wmStep()
		if lastMargin > bestMargin {
			bestMargin = lastMargin
			bestSnap = net.SnapshotParams()
		}
		if cfg.MarginTarget > 0 && lastMargin >= cfg.MarginTarget {
			return nil
		}
	}
	// Budgets exhausted: keep the best-margin state seen (training
	// oscillates around the embedding boundary; the last step is not
	// necessarily the best one).
	if bestSnap != nil && bestMargin > lastMargin {
		net.RestoreParams(bestSnap)
	}
	return nil
}
