package watermark

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"zkrownn/internal/nn"
)

// The paper inherits DeepSigns' robustness claims: the watermark
// survives parameter pruning, task fine-tuning, and watermark
// overwriting. These tests reproduce those attacks on the substrate.

// embeddedFixture returns a watermarked model and its training data.
func embeddedFixture(t *testing.T, seed int64) (*nn.Network, *Key, [][]float64, []int, *rand.Rand) {
	t.Helper()
	net, ds, key, rng := trainedSetup(t, seed)
	cfg := DefaultEmbedConfig()
	cfg.Epochs = 80
	if err := Embed(net, key, ds.X, ds.Y, cfg, rng); err != nil {
		t.Fatal(err)
	}
	if _, ber := Extract(net, key); ber != 0 {
		t.Skipf("embedding did not converge at seed %d", seed)
	}
	return net, key, ds.X, ds.Y, rng
}

// pruneNetwork zeroes the fraction of smallest-magnitude weights in
// every parameterized layer (standard magnitude pruning).
func pruneNetwork(net *nn.Network, frac float64) {
	for _, l := range net.Layers {
		params := l.Params()
		if len(params) == 0 {
			continue
		}
		w := params[0] // weights (biases spared, as usual)
		mags := make([]float64, len(w))
		for i, v := range w {
			mags[i] = math.Abs(v)
		}
		sort.Float64s(mags)
		cut := mags[int(frac*float64(len(mags)))]
		for i := range w {
			if math.Abs(w[i]) <= cut {
				w[i] = 0
			}
		}
	}
}

func TestWatermarkSurvivesPruning(t *testing.T) {
	net, key, _, _, _ := embeddedFixture(t, 600)
	// Exact survival at moderate pruning; graceful degradation at 30%.
	// (DeepSigns reports exact survival at much higher rates on its
	// 512-wide layers; this fixture's 24-unit layer concentrates far
	// more signal per weight.)
	for _, tc := range []struct {
		frac   float64
		maxBER float64
	}{{0.1, 0}, {0.2, 0}, {0.3, 0.1}} {
		clone := cloneNet(t, net)
		pruneNetwork(clone, tc.frac)
		_, ber := Extract(clone, key)
		if ber > tc.maxBER {
			t.Fatalf("watermark lost after %.0f%% pruning (BER %.3f > %.3f)",
				tc.frac*100, ber, tc.maxBER)
		}
	}
}

func TestWatermarkSurvivesFineTuning(t *testing.T) {
	net, key, xs, ys, rng := embeddedFixture(t, 601)
	// A few epochs of plain task training (a removal attempt).
	net.Train(xs, ys, nn.TrainConfig{Epochs: 5, BatchSize: 16, LearningRate: 0.02, Silent: true}, rng)
	_, ber := Extract(net, key)
	if ber > 0.1 {
		t.Fatalf("watermark destroyed by light fine-tuning (BER %.3f)", ber)
	}
}

func TestWatermarkSurvivesOverwriting(t *testing.T) {
	net, key, xs, ys, rng := embeddedFixture(t, 602)
	// The attacker embeds their own watermark with a fresh key at the
	// same layer.
	attacker, err := GenerateKey(rng, key.LayerIndex, 0, len(key.A), key.NbBits(), len(key.Triggers),
		trainedClassInputs(xs, ys, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultEmbedConfig()
	cfg.Epochs = 40
	if err := Embed(net, attacker, xs, ys, cfg, rng); err != nil {
		t.Fatal(err)
	}
	// The attacker's mark embeds...
	if _, aber := Extract(net, attacker); aber > 0.1 {
		t.Logf("attacker embedding incomplete (BER %.3f)", aber)
	}
	// ...but the owner's mark must survive (distinct random projections
	// are nearly orthogonal).
	_, ber := Extract(net, key)
	if ber > 0.15 {
		t.Fatalf("owner watermark destroyed by overwriting (BER %.3f)", ber)
	}
}

func trainedClassInputs(xs [][]float64, ys []int, class int) [][]float64 {
	var out [][]float64
	for i := range xs {
		if ys[i] == class {
			out = append(out, xs[i])
		}
	}
	return out
}

// cloneNet deep-copies a network through its snapshot mechanism.
func cloneNet(t *testing.T, net *nn.Network) *nn.Network {
	t.Helper()
	snap := net.SnapshotParams()
	clone := rebuildLike(t, net)
	clone.RestoreParams(snap)
	return clone
}

// rebuildLike constructs a structurally identical network.
func rebuildLike(t *testing.T, net *nn.Network) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(0))
	var layers []nn.Layer
	for _, l := range net.Layers {
		switch layer := l.(type) {
		case *nn.Dense:
			layers = append(layers, nn.NewDense(layer.In, layer.Out, rng))
		case *nn.ReLULayer:
			layers = append(layers, nn.NewReLU(layer.OutputSize()))
		default:
			t.Fatalf("unsupported layer %T in clone", l)
		}
	}
	return &nn.Network{Layers: layers}
}
