package watermark

import (
	"math/rand"
	"testing"

	"zkrownn/internal/dataset"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/nn"
)

// trainedSetup returns a small trained MLP, its dataset, and a key.
func trainedSetup(t *testing.T, seed int64) (*nn.Network, *dataset.Dataset, *Key, *rand.Rand) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Samples: 300, Dim: 16, Classes: 3, ClusterStd: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	net := nn.NewMLP(nn.MLPConfig{In: 16, Hidden: []int{24}, Classes: 3}, rng)
	net.Train(ds.X, ds.Y, nn.TrainConfig{Epochs: 10, BatchSize: 16, LearningRate: 0.1, Silent: true}, rng)

	key, err := GenerateKey(rng, 1 /* after first ReLU */, 0, 24, 16, 5, ds.OfClass(0))
	if err != nil {
		t.Fatal(err)
	}
	return net, ds, key, rng
}

func TestGenerateKeyShapes(t *testing.T) {
	_, _, key, _ := trainedSetup(t, 200)
	if err := key.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(key.A) != 24 || len(key.A[0]) != 16 || key.NbBits() != 16 {
		t.Fatal("key shapes wrong")
	}
	if len(key.Triggers) != 5 {
		t.Fatal("trigger count wrong")
	}
}

func TestGenerateKeyInsufficientTriggers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := GenerateKey(rng, 1, 0, 8, 8, 10, make([][]float64, 3)); err == nil {
		t.Fatal("accepted too few trigger candidates")
	}
}

func TestEmbedReachesZeroBER(t *testing.T) {
	net, ds, key, rng := trainedSetup(t, 201)

	_, berBefore := Extract(net, key)
	// A random 16-bit signature matches a fresh model only by chance;
	// it is essentially never already embedded.
	cfg := DefaultEmbedConfig()
	cfg.Epochs = 30
	if err := Embed(net, key, ds.X, ds.Y, cfg, rng); err != nil {
		t.Fatal(err)
	}
	_, berAfter := Extract(net, key)
	if berAfter != 0 {
		t.Fatalf("embedding failed: BER %.3f -> %.3f", berBefore, berAfter)
	}
}

func TestEmbedPreservesAccuracy(t *testing.T) {
	net, ds, key, rng := trainedSetup(t, 202)
	train, test := ds.Split(0.2)
	accBefore := net.Accuracy(test.X, test.Y)

	cfg := DefaultEmbedConfig()
	cfg.Epochs = 30
	if err := Embed(net, key, train.X, train.Y, cfg, rng); err != nil {
		t.Fatal(err)
	}
	accAfter := net.Accuracy(test.X, test.Y)
	if accAfter < accBefore-0.05 {
		t.Fatalf("accuracy dropped too much: %.3f -> %.3f (paper claims no lapse)", accBefore, accAfter)
	}
	_, ber := Extract(net, key)
	if ber != 0 {
		t.Fatalf("BER %.3f after embedding", ber)
	}
}

func TestNonWatermarkedModelFailsExtraction(t *testing.T) {
	net, _, key, _ := trainedSetup(t, 203)
	// Without embedding, a random 16-bit signature should mismatch.
	_, ber := Extract(net, key)
	if ber == 0 {
		t.Fatal("unembedded watermark extracted with BER 0 (astronomically unlikely)")
	}
}

func TestWrongKeyFailsExtraction(t *testing.T) {
	net, ds, key, rng := trainedSetup(t, 204)
	cfg := DefaultEmbedConfig()
	cfg.Epochs = 30
	if err := Embed(net, key, ds.X, ds.Y, cfg, rng); err != nil {
		t.Fatal(err)
	}
	// A different owner's key (fresh projection + signature) must not
	// extract cleanly.
	thiefKey, err := GenerateKey(rng, 1, 0, 24, 16, 5, ds.OfClass(0))
	if err != nil {
		t.Fatal(err)
	}
	_, ber := Extract(net, thiefKey)
	if ber == 0 {
		t.Fatal("unrelated key extracted with BER 0")
	}
}

func TestQuantizedExtractionMatchesFloat(t *testing.T) {
	net, ds, key, rng := trainedSetup(t, 205)
	cfg := DefaultEmbedConfig()
	cfg.Epochs = 30
	if err := Embed(net, key, ds.X, ds.Y, cfg, rng); err != nil {
		t.Fatal(err)
	}
	bitsF, berF := Extract(net, key)
	if berF != 0 {
		t.Fatalf("float BER %.3f", berF)
	}

	q, err := nn.Quantize(net, fixpoint.Default16)
	if err != nil {
		t.Fatal(err)
	}
	bitsQ, nbErr, err := ExtractQuantized(q, key)
	if err != nil {
		t.Fatal(err)
	}
	if nbErr != 0 {
		t.Fatalf("quantized extraction has %d bit errors", nbErr)
	}
	if BER(bitsF, bitsQ) != 0 {
		t.Fatal("float and quantized extraction disagree")
	}
}

func TestBERHelper(t *testing.T) {
	if BER([]int{1, 0, 1}, []int{1, 0, 1}) != 0 {
		t.Fatal("identical strings have non-zero BER")
	}
	if BER([]int{1, 0}, []int{0, 1}) != 1 {
		t.Fatal("fully flipped strings should have BER 1")
	}
	if BER([]int{1, 0, 1, 1}, []int{1, 1, 1, 1}) != 0.25 {
		t.Fatal("quarter BER wrong")
	}
	if BER([]int{1}, []int{1, 0}) != 1 {
		t.Fatal("length mismatch should be BER 1")
	}
	if BER(nil, nil) != 0 {
		t.Fatal("empty strings should be BER 0")
	}
}

func TestValidateRejectsBadKeys(t *testing.T) {
	bad := &Key{Signature: []int{0, 1}, A: [][]float64{{1, 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty trigger set accepted")
	}
	bad2 := &Key{
		Triggers:  [][]float64{{1}},
		Signature: []int{0, 2},
		A:         [][]float64{{1, 2}},
	}
	if err := bad2.Validate(); err == nil {
		t.Fatal("non-binary signature accepted")
	}
	bad3 := &Key{
		Triggers:  [][]float64{{1}},
		Signature: []int{0, 1, 1},
		A:         [][]float64{{1, 2}},
	}
	if err := bad3.Validate(); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
