// Package nn is the neural-network substrate of the reproduction: dense
// and convolutional layers with full backpropagation for training and
// DeepSigns watermark embedding, plus a fixed-point inference path that
// is bit-identical to the zkSNARK gadgets so that in-circuit watermark
// extraction reproduces plain extraction exactly.
//
// The package is deliberately small-tensor oriented (flat float64
// slices, explicit shapes) — models here are the paper's Table II
// benchmarks, not production-scale networks.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a feed-forward network.
// Forward caches whatever Backward needs; layers are therefore stateful
// and must be used by one goroutine at a time.
type Layer interface {
	// Forward computes the layer output for a single sample.
	Forward(x []float64) []float64
	// Backward consumes ∂L/∂out and returns ∂L/∂in, accumulating
	// parameter gradients internally.
	Backward(grad []float64) []float64
	// Params returns parameter slices (aliased, for the optimizer).
	Params() [][]float64
	// Grads returns gradient slices parallel to Params.
	Grads() [][]float64
	// OutputSize returns the flattened output length.
	OutputSize() int
	// Name identifies the layer type for diagnostics.
	Name() string
}

// Dense is a fully connected layer: out = W·x + b.
type Dense struct {
	In, Out int
	W       []float64 // Out × In, row-major
	B       []float64
	gw      []float64
	gb      []float64
	lastX   []float64
}

// NewDense returns a dense layer with He-initialised weights drawn from
// rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * std
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, len(x)))
	}
	d.lastX = append(d.lastX[:0], x...)
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		acc := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			acc += row[i] * xi
		}
		out[o] = acc
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad []float64) []float64 {
	in := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad[o]
		d.gb[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += g * d.lastX[i]
			in[i] += g * row[i]
		}
	}
	return in
}

// Params implements Layer.
func (d *Dense) Params() [][]float64 { return [][]float64{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() [][]float64 { return [][]float64{d.gw, d.gb} }

// OutputSize implements Layer.
func (d *Dense) OutputSize() int { return d.Out }

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("FC(%d)", d.Out) }

// ReLULayer applies max(0, x) element-wise.
type ReLULayer struct {
	size int
	mask []bool
}

// NewReLU returns a ReLU over size elements.
func NewReLU(size int) *ReLULayer {
	return &ReLULayer{size: size, mask: make([]bool, size)}
}

// Forward implements Layer.
func (r *ReLULayer) Forward(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLULayer) Backward(grad []float64) []float64 {
	in := make([]float64, len(grad))
	for i, g := range grad {
		if r.mask[i] {
			in[i] = g
		}
	}
	return in
}

// Params implements Layer.
func (r *ReLULayer) Params() [][]float64 { return nil }

// Grads implements Layer.
func (r *ReLULayer) Grads() [][]float64 { return nil }

// OutputSize implements Layer.
func (r *ReLULayer) OutputSize() int { return r.size }

// Name implements Layer.
func (r *ReLULayer) Name() string { return "ReLU" }

// SigmoidLayer applies the logistic function element-wise (the paper
// supports sigmoid activations as an alternative to ReLU).
type SigmoidLayer struct {
	size    int
	lastOut []float64
}

// NewSigmoid returns a sigmoid activation over size elements.
func NewSigmoid(size int) *SigmoidLayer { return &SigmoidLayer{size: size} }

// Forward implements Layer.
func (s *SigmoidLayer) Forward(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = 1.0 / (1.0 + math.Exp(-v))
	}
	s.lastOut = out
	return out
}

// Backward implements Layer.
func (s *SigmoidLayer) Backward(grad []float64) []float64 {
	in := make([]float64, len(grad))
	for i, g := range grad {
		o := s.lastOut[i]
		in[i] = g * o * (1 - o)
	}
	return in
}

// Params implements Layer.
func (s *SigmoidLayer) Params() [][]float64 { return nil }

// Grads implements Layer.
func (s *SigmoidLayer) Grads() [][]float64 { return nil }

// OutputSize implements Layer.
func (s *SigmoidLayer) OutputSize() int { return s.size }

// Name implements Layer.
func (s *SigmoidLayer) Name() string { return "Sigmoid" }

// Conv2D convolves a C×H×W input volume with OutC kernels of size
// C×K×K at stride S (no padding) — the paper's "Conv3D" operation on
// 3-D input volumes.
type Conv2D struct {
	InC, InH, InW int
	OutC, K, S    int
	W             []float64 // OutC × InC × K × K
	B             []float64
	gw            []float64
	gb            []float64
	lastX         []float64
}

// NewConv2D returns a He-initialised convolution layer.
func NewConv2D(inC, inH, inW, outC, k, s int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW,
		OutC: outC, K: k, S: s,
		W:  make([]float64, outC*inC*k*k),
		B:  make([]float64, outC),
		gw: make([]float64, outC*inC*k*k),
		gb: make([]float64, outC),
	}
	std := math.Sqrt(2.0 / float64(inC*k*k))
	for i := range c.W {
		c.W[i] = rng.NormFloat64() * std
	}
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return (c.InH-c.K)/c.S + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return (c.InW-c.K)/c.S + 1 }

// wIdx indexes the flat kernel tensor.
func (c *Conv2D) wIdx(o, ch, kh, kw int) int {
	return ((o*c.InC+ch)*c.K+kh)*c.K + kw
}

// xIdx indexes the flat input volume.
func (c *Conv2D) xIdx(ch, h, w int) int { return (ch*c.InH+h)*c.InW + w }

// Forward implements Layer.
func (c *Conv2D) Forward(x []float64) []float64 {
	if len(x) != c.InC*c.InH*c.InW {
		panic(fmt.Sprintf("nn: conv expects %d inputs, got %d", c.InC*c.InH*c.InW, len(x)))
	}
	c.lastX = append(c.lastX[:0], x...)
	oh, ow := c.OutH(), c.OutW()
	out := make([]float64, c.OutC*oh*ow)
	for o := 0; o < c.OutC; o++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				acc := c.B[o]
				for ch := 0; ch < c.InC; ch++ {
					for kh := 0; kh < c.K; kh++ {
						for kw := 0; kw < c.K; kw++ {
							acc += c.W[c.wIdx(o, ch, kh, kw)] * x[c.xIdx(ch, i*c.S+kh, j*c.S+kw)]
						}
					}
				}
				out[(o*oh+i)*ow+j] = acc
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad []float64) []float64 {
	oh, ow := c.OutH(), c.OutW()
	in := make([]float64, len(c.lastX))
	for o := 0; o < c.OutC; o++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				g := grad[(o*oh+i)*ow+j]
				c.gb[o] += g
				for ch := 0; ch < c.InC; ch++ {
					for kh := 0; kh < c.K; kh++ {
						for kw := 0; kw < c.K; kw++ {
							xi := c.xIdx(ch, i*c.S+kh, j*c.S+kw)
							c.gw[c.wIdx(o, ch, kh, kw)] += g * c.lastX[xi]
							in[xi] += g * c.W[c.wIdx(o, ch, kh, kw)]
						}
					}
				}
			}
		}
	}
	return in
}

// Params implements Layer.
func (c *Conv2D) Params() [][]float64 { return [][]float64{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() [][]float64 { return [][]float64{c.gw, c.gb} }

// OutputSize implements Layer.
func (c *Conv2D) OutputSize() int { return c.OutC * c.OutH() * c.OutW() }

// Name implements Layer.
func (c *Conv2D) Name() string { return fmt.Sprintf("C(%d,%d,%d)", c.OutC, c.K, c.S) }

// MaxPool2D applies per-channel K×K max pooling at stride S.
type MaxPool2D struct {
	C, H, W, K, S int
	argmax        []int
}

// NewMaxPool2D returns a pooling layer over a C×H×W volume.
func NewMaxPool2D(c, h, w, k, s int) *MaxPool2D {
	return &MaxPool2D{C: c, H: h, W: w, K: k, S: s}
}

// OutH returns the output height.
func (m *MaxPool2D) OutH() int { return (m.H-m.K)/m.S + 1 }

// OutW returns the output width.
func (m *MaxPool2D) OutW() int { return (m.W-m.K)/m.S + 1 }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x []float64) []float64 {
	oh, ow := m.OutH(), m.OutW()
	out := make([]float64, m.C*oh*ow)
	m.argmax = make([]int, len(out))
	for ch := 0; ch < m.C; ch++ {
		for i := 0; i < oh; i++ {
			for j := 0; j < ow; j++ {
				best := math.Inf(-1)
				bestIdx := -1
				for di := 0; di < m.K; di++ {
					for dj := 0; dj < m.K; dj++ {
						idx := (ch*m.H+i*m.S+di)*m.W + j*m.S + dj
						if x[idx] > best {
							best = x[idx]
							bestIdx = idx
						}
					}
				}
				oidx := (ch*oh+i)*ow + j
				out[oidx] = best
				m.argmax[oidx] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad []float64) []float64 {
	in := make([]float64, m.C*m.H*m.W)
	for oidx, g := range grad {
		in[m.argmax[oidx]] += g
	}
	return in
}

// Params implements Layer.
func (m *MaxPool2D) Params() [][]float64 { return nil }

// Grads implements Layer.
func (m *MaxPool2D) Grads() [][]float64 { return nil }

// OutputSize implements Layer.
func (m *MaxPool2D) OutputSize() int { return m.C * m.OutH() * m.OutW() }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("MP(%d,%d)", m.K, m.S) }
