package nn

import "math/rand"

// NewMNISTMLP builds the paper's Table II MNIST architecture:
// 784 - FC(512) - FC(512) - FC(10) with ReLU activations.
func NewMNISTMLP(rng *rand.Rand) *Network {
	return &Network{Layers: []Layer{
		NewDense(784, 512, rng),
		NewReLU(512),
		NewDense(512, 512, rng),
		NewReLU(512),
		NewDense(512, 10, rng),
	}}
}

// NewCIFAR10CNN builds the paper's Table II CIFAR-10 architecture:
// 3×32×32 - C(32,3,2) - C(32,3,1) - MP(2,1) - C(64,3,1) - C(64,3,1)
// - MP(2,1) - FC(512) - FC(10), ReLU activations.
func NewCIFAR10CNN(rng *rand.Rand) *Network {
	c1 := NewConv2D(3, 32, 32, 32, 3, 2, rng) // -> 32×15×15
	r1 := NewReLU(c1.OutputSize())
	c2 := NewConv2D(32, c1.OutH(), c1.OutW(), 32, 3, 1, rng) // -> 32×13×13
	r2 := NewReLU(c2.OutputSize())
	p1 := NewMaxPool2D(32, c2.OutH(), c2.OutW(), 2, 1)       // -> 32×12×12
	c3 := NewConv2D(32, p1.OutH(), p1.OutW(), 64, 3, 1, rng) // -> 64×10×10
	r3 := NewReLU(c3.OutputSize())
	c4 := NewConv2D(64, c3.OutH(), c3.OutW(), 64, 3, 1, rng) // -> 64×8×8
	r4 := NewReLU(c4.OutputSize())
	p2 := NewMaxPool2D(64, c4.OutH(), c4.OutW(), 2, 1) // -> 64×7×7
	fc1 := NewDense(p2.OutputSize(), 512, rng)
	r5 := NewReLU(512)
	fc2 := NewDense(512, 10, rng)
	return &Network{Layers: []Layer{c1, r1, c2, r2, p1, c3, r3, c4, r4, p2, fc1, r5, fc2}}
}

// MLPConfig parameterises small MLPs for tests and scaled-down
// benchmarks.
type MLPConfig struct {
	In      int
	Hidden  []int
	Classes int
}

// NewMLP builds an arbitrary ReLU MLP.
func NewMLP(cfg MLPConfig, rng *rand.Rand) *Network {
	var layers []Layer
	in := cfg.In
	for _, h := range cfg.Hidden {
		layers = append(layers, NewDense(in, h, rng), NewReLU(h))
		in = h
	}
	layers = append(layers, NewDense(in, cfg.Classes, rng))
	return &Network{Layers: layers}
}

// SmallCNNConfig parameterises a single-conv CNN for tests and
// scaled-down benchmarks: C(OutC, K, S) - FC(Hidden) - FC(Classes).
type SmallCNNConfig struct {
	InC, InH, InW int
	OutC, K, S    int
	Hidden        int
	Classes       int
}

// NewSmallCNN builds the reduced CNN.
func NewSmallCNN(cfg SmallCNNConfig, rng *rand.Rand) *Network {
	c1 := NewConv2D(cfg.InC, cfg.InH, cfg.InW, cfg.OutC, cfg.K, cfg.S, rng)
	r1 := NewReLU(c1.OutputSize())
	fc1 := NewDense(c1.OutputSize(), cfg.Hidden, rng)
	r2 := NewReLU(cfg.Hidden)
	fc2 := NewDense(cfg.Hidden, cfg.Classes, rng)
	return &Network{Layers: []Layer{c1, r1, fc1, r2, fc2}}
}
