package nn

import (
	"fmt"

	"zkrownn/internal/fixpoint"
)

// QuantizedLayer is the fixed-point image of a float layer: the exact
// integer weights the zkSNARK circuit sees and the exact arithmetic it
// performs (raw inner products at 2f fraction bits, bias aligned by
// shifting, one floor-rescale per output — matching gadgets.Dense and
// gadgets.Conv3D term for term).
type QuantizedLayer struct {
	Kind string // "dense", "relu", "conv", "maxpool", "sigmoid"

	// Dense fields.
	In, Out int
	W       []int64 // Out × In (dense) or OutC × InC × K × K (conv)
	B       []int64

	// Conv fields.
	InC, InH, InW int
	OutC, K, S    int

	// Pool fields reuse InC/InH/InW plus K, S.
}

// QuantizedNetwork is a fixed-point network ready for both plain
// inference and circuit construction.
type QuantizedNetwork struct {
	Params fixpoint.Params
	Layers []QuantizedLayer
}

// Quantize converts a float network into its fixed-point image.
func Quantize(n *Network, p fixpoint.Params) (*QuantizedNetwork, error) {
	q := &QuantizedNetwork{Params: p}
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			q.Layers = append(q.Layers, QuantizedLayer{
				Kind: "dense",
				In:   layer.In, Out: layer.Out,
				W: p.EncodeSlice(layer.W),
				B: p.EncodeSlice(layer.B),
			})
		case *ReLULayer:
			q.Layers = append(q.Layers, QuantizedLayer{Kind: "relu", Out: layer.size})
		case *SigmoidLayer:
			q.Layers = append(q.Layers, QuantizedLayer{Kind: "sigmoid", Out: layer.size})
		case *Conv2D:
			q.Layers = append(q.Layers, QuantizedLayer{
				Kind: "conv",
				InC:  layer.InC, InH: layer.InH, InW: layer.InW,
				OutC: layer.OutC, K: layer.K, S: layer.S,
				W: p.EncodeSlice(layer.W),
				B: p.EncodeSlice(layer.B),
			})
		case *MaxPool2D:
			q.Layers = append(q.Layers, QuantizedLayer{
				Kind: "maxpool",
				InC:  layer.C, InH: layer.H, InW: layer.W,
				K: layer.K, S: layer.S,
			})
		default:
			return nil, fmt.Errorf("nn: cannot quantize layer %T", l)
		}
	}
	return q, nil
}

// ForwardUpTo runs the fixed-point forward pass through layers
// [0, upTo] inclusive, returning the scaled-integer activation. This is
// the reference implementation the zkSNARK extraction circuit must
// reproduce bit for bit.
func (q *QuantizedNetwork) ForwardUpTo(x []int64, upTo int) ([]int64, error) {
	cur := x
	for i := 0; i <= upTo && i < len(q.Layers); i++ {
		var err error
		cur, err = q.forwardLayer(&q.Layers[i], cur)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
	}
	return cur, nil
}

// Forward runs the whole quantized network.
func (q *QuantizedNetwork) Forward(x []int64) ([]int64, error) {
	return q.ForwardUpTo(x, len(q.Layers)-1)
}

func (q *QuantizedNetwork) forwardLayer(l *QuantizedLayer, x []int64) ([]int64, error) {
	p := q.Params
	switch l.Kind {
	case "dense":
		if len(x) != l.In {
			return nil, fmt.Errorf("dense expects %d inputs, got %d", l.In, len(x))
		}
		out := make([]int64, l.Out)
		for o := 0; o < l.Out; o++ {
			var acc int64
			row := l.W[o*l.In : (o+1)*l.In]
			for i, xi := range x {
				acc += row[i] * xi
			}
			acc += l.B[o] << uint(p.FracBits)
			out[o] = p.Rescale(acc)
		}
		return out, nil
	case "relu":
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = fixpoint.ReLU(v)
		}
		return out, nil
	case "sigmoid":
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = p.SigmoidPoly(v)
		}
		return out, nil
	case "conv":
		if len(x) != l.InC*l.InH*l.InW {
			return nil, fmt.Errorf("conv expects %d inputs, got %d", l.InC*l.InH*l.InW, len(x))
		}
		oh := (l.InH-l.K)/l.S + 1
		ow := (l.InW-l.K)/l.S + 1
		out := make([]int64, l.OutC*oh*ow)
		for o := 0; o < l.OutC; o++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					var acc int64
					for ch := 0; ch < l.InC; ch++ {
						for kh := 0; kh < l.K; kh++ {
							for kw := 0; kw < l.K; kw++ {
								wv := l.W[((o*l.InC+ch)*l.K+kh)*l.K+kw]
								xv := x[(ch*l.InH+i*l.S+kh)*l.InW+j*l.S+kw]
								acc += wv * xv
							}
						}
					}
					acc += l.B[o] << uint(p.FracBits)
					out[(o*oh+i)*ow+j] = p.Rescale(acc)
				}
			}
		}
		return out, nil
	case "maxpool":
		oh := (l.InH-l.K)/l.S + 1
		ow := (l.InW-l.K)/l.S + 1
		out := make([]int64, l.InC*oh*ow)
		for ch := 0; ch < l.InC; ch++ {
			for i := 0; i < oh; i++ {
				for j := 0; j < ow; j++ {
					best := x[(ch*l.InH+i*l.S)*l.InW+j*l.S]
					for di := 0; di < l.K; di++ {
						for dj := 0; dj < l.K; dj++ {
							v := x[(ch*l.InH+i*l.S+di)*l.InW+j*l.S+dj]
							if v > best {
								best = v
							}
						}
					}
					out[(ch*oh+i)*ow+j] = best
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown quantized layer kind %q", l.Kind)
	}
}
