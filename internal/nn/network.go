package nn

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Network is a feed-forward stack of layers trained with SGD.
type Network struct {
	Layers []Layer
}

// Forward runs a full forward pass for one sample.
func (n *Network) Forward(x []float64) []float64 {
	cur := x
	for _, l := range n.Layers {
		cur = l.Forward(cur)
	}
	return cur
}

// ForwardUpTo runs the forward pass through layers [0, upTo] inclusive
// and returns that intermediate activation — the zkFeedForward "until
// layer l_wm" step of Algorithm 1.
func (n *Network) ForwardUpTo(x []float64, upTo int) []float64 {
	cur := x
	for i := 0; i <= upTo && i < len(n.Layers); i++ {
		cur = n.Layers[i].Forward(cur)
	}
	return cur
}

// Backward propagates ∂L/∂out through the whole stack (after a Forward),
// accumulating parameter gradients.
func (n *Network) Backward(grad []float64) []float64 {
	cur := grad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		cur = n.Layers[i].Backward(cur)
	}
	return cur
}

// BackwardFrom injects a gradient at the output of layer `from` and
// propagates it down to the input. Layers above `from` are untouched.
// Forward (or ForwardUpTo(≥from)) must have run for this sample.
func (n *Network) BackwardFrom(from int, grad []float64) []float64 {
	cur := grad
	for i := from; i >= 0; i-- {
		cur = n.Layers[i].Backward(cur)
	}
	return cur
}

// ZeroGrads clears accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		for _, g := range l.Grads() {
			for i := range g {
				g[i] = 0
			}
		}
	}
}

// Step applies one SGD update with learning rate lr (gradients are
// whatever has been accumulated since the last ZeroGrads) and clears
// the gradients.
func (n *Network) Step(lr float64) {
	for _, l := range n.Layers {
		params := l.Params()
		grads := l.Grads()
		for pi := range params {
			p := params[pi]
			g := grads[pi]
			for i := range p {
				p[i] -= lr * g[i]
				g[i] = 0
			}
		}
	}
}

// String renders the architecture in the paper's Table II notation.
func (n *Network) String() string {
	parts := make([]string, len(n.Layers))
	for i, l := range n.Layers {
		parts[i] = l.Name()
	}
	return strings.Join(parts, " - ")
}

// NumParams counts trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			total += len(p)
		}
	}
	return total
}

// SoftmaxCrossEntropy returns the loss and ∂L/∂logits for a single
// sample with integer label.
func SoftmaxCrossEntropy(logits []float64, label int) (float64, []float64) {
	maxL := math.Inf(-1)
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	var sum float64
	exps := make([]float64, len(logits))
	for i, v := range logits {
		exps[i] = math.Exp(v - maxL)
		sum += exps[i]
	}
	grad := make([]float64, len(logits))
	for i := range grad {
		p := exps[i] / sum
		grad[i] = p
	}
	loss := -math.Log(math.Max(exps[label]/sum, 1e-12))
	grad[label] -= 1
	return loss, grad
}

// Predict returns the argmax class of the logits for x.
func (n *Network) Predict(x []float64) int {
	out := n.Forward(x)
	best := 0
	for i := 1; i < len(out); i++ {
		if out[i] > out[best] {
			best = i
		}
	}
	return best
}

// Accuracy evaluates classification accuracy on a dataset.
func (n *Network) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	correct := 0
	for i := range xs {
		if n.Predict(xs[i]) == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs       int
	BatchSize    int
	LearningRate float64
	// Silent suppresses progress output.
	Silent bool
	// Logf receives progress lines when not Silent (fmt.Printf signature);
	// nil means no output.
	Logf func(format string, args ...any)
}

// Train runs plain SGD classification training.
func (n *Network) Train(xs [][]float64, ys []int, cfg TrainConfig, rng *rand.Rand) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var totalLoss float64
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			for _, s := range idx[start:end] {
				out := n.Forward(xs[s])
				loss, grad := SoftmaxCrossEntropy(out, ys[s])
				totalLoss += loss
				scale := 1.0 / float64(end-start)
				for i := range grad {
					grad[i] *= scale
				}
				n.Backward(grad)
			}
			n.Step(cfg.LearningRate)
		}
		if !cfg.Silent && cfg.Logf != nil {
			cfg.Logf("epoch %d/%d loss=%.4f\n", epoch+1, cfg.Epochs, totalLoss/float64(len(idx)))
		}
	}
}

// LayerIndexByName returns the index of the first layer whose Name
// matches, or an error.
func (n *Network) LayerIndexByName(name string) (int, error) {
	for i, l := range n.Layers {
		if l.Name() == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("nn: no layer named %q in %s", name, n.String())
}

// SnapshotParams deep-copies every trainable parameter, for best-state
// tracking during watermark embedding.
func (n *Network) SnapshotParams() [][]float64 {
	var snap [][]float64
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			cp := make([]float64, len(p))
			copy(cp, p)
			snap = append(snap, cp)
		}
	}
	return snap
}

// RestoreParams writes a snapshot taken by SnapshotParams back into the
// network.
func (n *Network) RestoreParams(snap [][]float64) {
	i := 0
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			copy(p, snap[i])
			i++
		}
	}
}
