package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonLayer is the on-disk form of one layer.
type jsonLayer struct {
	Kind string    `json:"kind"`
	In   int       `json:"in,omitempty"`
	Out  int       `json:"out,omitempty"`
	InC  int       `json:"in_c,omitempty"`
	InH  int       `json:"in_h,omitempty"`
	InW  int       `json:"in_w,omitempty"`
	OutC int       `json:"out_c,omitempty"`
	K    int       `json:"k,omitempty"`
	S    int       `json:"s,omitempty"`
	Size int       `json:"size,omitempty"`
	W    []float64 `json:"w,omitempty"`
	B    []float64 `json:"b,omitempty"`
}

// jsonNetwork is the on-disk form of a network.
type jsonNetwork struct {
	Format int         `json:"format"`
	Layers []jsonLayer `json:"layers"`
}

// Save serializes the network as JSON.
func (n *Network) Save(w io.Writer) error {
	jn := jsonNetwork{Format: 1}
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			jn.Layers = append(jn.Layers, jsonLayer{
				Kind: "dense", In: layer.In, Out: layer.Out, W: layer.W, B: layer.B,
			})
		case *ReLULayer:
			jn.Layers = append(jn.Layers, jsonLayer{Kind: "relu", Size: layer.size})
		case *SigmoidLayer:
			jn.Layers = append(jn.Layers, jsonLayer{Kind: "sigmoid", Size: layer.size})
		case *Conv2D:
			jn.Layers = append(jn.Layers, jsonLayer{
				Kind: "conv",
				InC:  layer.InC, InH: layer.InH, InW: layer.InW,
				OutC: layer.OutC, K: layer.K, S: layer.S,
				W: layer.W, B: layer.B,
			})
		case *MaxPool2D:
			jn.Layers = append(jn.Layers, jsonLayer{
				Kind: "maxpool",
				InC:  layer.C, InH: layer.H, InW: layer.W2(),
				K: layer.K, S: layer.S,
			})
		default:
			return fmt.Errorf("nn: cannot serialize layer %T", l)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jn)
}

// W2 returns the input width of a pooling layer (the W field name
// collides with the weights field in jsonLayer).
func (m *MaxPool2D) W2() int { return m.W }

// Load deserializes a network saved by Save.
func Load(r io.Reader) (*Network, error) {
	var jn jsonNetwork
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if jn.Format != 1 {
		return nil, fmt.Errorf("nn: unsupported network format %d", jn.Format)
	}
	net := &Network{}
	for i, jl := range jn.Layers {
		switch jl.Kind {
		case "dense":
			if len(jl.W) != jl.In*jl.Out || len(jl.B) != jl.Out {
				return nil, fmt.Errorf("nn: layer %d has inconsistent dense shapes", i)
			}
			d := &Dense{
				In: jl.In, Out: jl.Out,
				W:  jl.W,
				B:  jl.B,
				gw: make([]float64, len(jl.W)),
				gb: make([]float64, len(jl.B)),
			}
			net.Layers = append(net.Layers, d)
		case "relu":
			net.Layers = append(net.Layers, NewReLU(jl.Size))
		case "sigmoid":
			net.Layers = append(net.Layers, NewSigmoid(jl.Size))
		case "conv":
			want := jl.OutC * jl.InC * jl.K * jl.K
			if len(jl.W) != want || len(jl.B) != jl.OutC {
				return nil, fmt.Errorf("nn: layer %d has inconsistent conv shapes", i)
			}
			c := &Conv2D{
				InC: jl.InC, InH: jl.InH, InW: jl.InW,
				OutC: jl.OutC, K: jl.K, S: jl.S,
				W:  jl.W,
				B:  jl.B,
				gw: make([]float64, len(jl.W)),
				gb: make([]float64, len(jl.B)),
			}
			net.Layers = append(net.Layers, c)
		case "maxpool":
			net.Layers = append(net.Layers, NewMaxPool2D(jl.InC, jl.InH, jl.InW, jl.K, jl.S))
		default:
			return nil, fmt.Errorf("nn: unknown layer kind %q", jl.Kind)
		}
	}
	return net, nil
}
