package nn

import (
	"math"
	"math/rand"
	"testing"

	"zkrownn/internal/dataset"
	"zkrownn/internal/fixpoint"
)

// numericalGradientCheck compares backprop gradients to central finite
// differences for a tiny network.
func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	net := &Network{Layers: []Layer{
		NewDense(4, 5, rng),
		NewReLU(5),
		NewDense(5, 3, rng),
	}}
	x := []float64{0.3, -0.5, 0.8, 0.1}
	label := 2

	lossOf := func() float64 {
		out := net.Forward(x)
		l, _ := SoftmaxCrossEntropy(out, label)
		return l
	}

	net.ZeroGrads()
	out := net.Forward(x)
	_, grad := SoftmaxCrossEntropy(out, label)
	net.Backward(grad)

	const eps = 1e-5
	for li, layer := range net.Layers {
		params := layer.Params()
		grads := layer.Grads()
		for pi := range params {
			p := params[pi]
			g := grads[pi]
			for i := 0; i < len(p); i += 3 { // sample every third param
				orig := p[i]
				p[i] = orig + eps
				lp := lossOf()
				p[i] = orig - eps
				lm := lossOf()
				p[i] = orig
				numeric := (lp - lm) / (2 * eps)
				if math.Abs(numeric-g[i]) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("layer %d param %d[%d]: backprop %v vs numeric %v", li, pi, i, g[i], numeric)
				}
			}
		}
	}
}

func TestConvGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	conv := NewConv2D(2, 5, 5, 3, 3, 1, rng)
	net := &Network{Layers: []Layer{
		conv,
		NewReLU(conv.OutputSize()),
		NewDense(conv.OutputSize(), 2, rng),
	}}
	x := make([]float64, 2*5*5)
	for i := range x {
		x[i] = rng.NormFloat64() * 0.5
	}
	label := 1

	lossOf := func() float64 {
		out := net.Forward(x)
		l, _ := SoftmaxCrossEntropy(out, label)
		return l
	}

	net.ZeroGrads()
	out := net.Forward(x)
	_, grad := SoftmaxCrossEntropy(out, label)
	net.Backward(grad)

	const eps = 1e-5
	p := conv.W
	g := conv.gw
	for i := 0; i < len(p); i += 7 {
		orig := p[i]
		p[i] = orig + eps
		lp := lossOf()
		p[i] = orig - eps
		lm := lossOf()
		p[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-g[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("conv W[%d]: backprop %v vs numeric %v", i, g[i], numeric)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	mp := NewMaxPool2D(1, 4, 4, 2, 2)
	x := []float64{
		1, 5, 2, 0,
		3, 4, 1, 1,
		0, 2, 9, 8,
		1, 1, 7, 6,
	}
	out := mp.Forward(x)
	want := []float64{5, 2, 2, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pool[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	grad := []float64{1, 2, 3, 4}
	in := mp.Backward(grad)
	// Gradient must land exactly on the argmax positions.
	if in[1] != 1 || in[2] != 2 || in[9] != 3 || in[10] != 4 {
		t.Fatalf("pool backward wrong: %v", in)
	}
}

func TestTrainLearnsSyntheticData(t *testing.T) {
	ds, err := dataset.Generate(dataset.Config{
		Samples: 400, Dim: 20, Classes: 4, ClusterStd: 0.25, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.2)
	rng := rand.New(rand.NewSource(112))
	net := NewMLP(MLPConfig{In: 20, Hidden: []int{32}, Classes: 4}, rng)

	before := net.Accuracy(test.X, test.Y)
	net.Train(train.X, train.Y, TrainConfig{Epochs: 20, BatchSize: 16, LearningRate: 0.1, Silent: true}, rng)
	after := net.Accuracy(test.X, test.Y)
	if after < 0.9 {
		t.Fatalf("model failed to learn: accuracy %.2f -> %.2f", before, after)
	}
}

func TestTableIIArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	mlp := NewMNISTMLP(rng)
	if got := mlp.String(); got != "FC(512) - ReLU - FC(512) - ReLU - FC(10)" {
		t.Fatalf("MLP architecture: %s", got)
	}
	out := mlp.Forward(make([]float64, 784))
	if len(out) != 10 {
		t.Fatalf("MLP output size %d", len(out))
	}

	cnn := NewCIFAR10CNN(rng)
	out = cnn.Forward(make([]float64, 3*32*32))
	if len(out) != 10 {
		t.Fatalf("CNN output size %d", len(out))
	}
	wantArch := "C(32,3,2) - ReLU - C(32,3,1) - ReLU - MP(2,1) - C(64,3,1) - ReLU - C(64,3,1) - ReLU - MP(2,1) - FC(512) - ReLU - FC(10)"
	if got := cnn.String(); got != wantArch {
		t.Fatalf("CNN architecture:\n got  %s\n want %s", got, wantArch)
	}
}

func TestForwardUpToMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	net := NewMLP(MLPConfig{In: 6, Hidden: []int{8, 4}, Classes: 3}, rng)
	x := []float64{1, -1, 0.5, 0.2, -0.3, 0.9}
	// Layer 1 output = ReLU(Dense0(x)).
	d0 := net.Layers[0].(*Dense)
	manual := make([]float64, d0.Out)
	for o := 0; o < d0.Out; o++ {
		acc := d0.B[o]
		for i := range x {
			acc += d0.W[o*d0.In+i] * x[i]
		}
		if acc < 0 {
			acc = 0
		}
		manual[o] = acc
	}
	got := net.ForwardUpTo(x, 1)
	for i := range manual {
		if math.Abs(got[i]-manual[i]) > 1e-12 {
			t.Fatalf("ForwardUpTo mismatch at %d", i)
		}
	}
}

func TestQuantizedForwardApproximatesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	p := fixpoint.Default16
	net := NewMLP(MLPConfig{In: 10, Hidden: []int{16}, Classes: 4}, rng)
	q, err := Quantize(net, p)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 10)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		want := net.ForwardUpTo(x, 1) // through first ReLU
		got, err := q.ForwardUpTo(p.EncodeSlice(x), 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			diff := math.Abs(p.Decode(got[i]) - want[i])
			if diff > 0.01 {
				t.Fatalf("quantized forward deviates by %v at %d", diff, i)
			}
		}
	}
}

func TestQuantizedCNNForward(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	p := fixpoint.Default16
	net := NewSmallCNN(SmallCNNConfig{
		InC: 1, InH: 8, InW: 8, OutC: 4, K: 3, S: 2, Hidden: 8, Classes: 3,
	}, rng)
	q, err := Quantize(net, p)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	want := net.ForwardUpTo(x, 1) // conv + relu
	got, err := q.ForwardUpTo(p.EncodeSlice(x), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatal("quantized conv output size mismatch")
	}
	for i := range want {
		if math.Abs(p.Decode(got[i])-want[i]) > 0.01 {
			t.Fatal("quantized conv deviates from float")
		}
	}
}

func TestQuantizeRejectsUnknownLayer(t *testing.T) {
	net := &Network{Layers: []Layer{fakeLayer{}}}
	if _, err := Quantize(net, fixpoint.Default16); err == nil {
		t.Fatal("unknown layer quantized")
	}
}

type fakeLayer struct{}

func (fakeLayer) Forward(x []float64) []float64  { return x }
func (fakeLayer) Backward(g []float64) []float64 { return g }
func (fakeLayer) Params() [][]float64            { return nil }
func (fakeLayer) Grads() [][]float64             { return nil }
func (fakeLayer) OutputSize() int                { return 0 }
func (fakeLayer) Name() string                   { return "fake" }

func TestSoftmaxCrossEntropy(t *testing.T) {
	loss, grad := SoftmaxCrossEntropy([]float64{1, 1, 1}, 0)
	if math.Abs(loss-math.Log(3)) > 1e-9 {
		t.Fatalf("uniform loss = %v, want ln 3", loss)
	}
	// Gradient sums to zero.
	var sum float64
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatal("CE gradient does not sum to zero")
	}
	// Confident correct prediction → tiny loss.
	loss, _ = SoftmaxCrossEntropy([]float64{10, -10, -10}, 0)
	if loss > 1e-6 {
		t.Fatalf("confident loss = %v", loss)
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	net := NewMLP(MLPConfig{In: 10, Hidden: []int{5}, Classes: 2}, rng)
	// 10·5 + 5 + 5·2 + 2 = 67
	if got := net.NumParams(); got != 67 {
		t.Fatalf("NumParams = %d, want 67", got)
	}
}
