package frontend

import (
	"fmt"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// FuzzSolveOracle drives random small circuits through the recorded
// solver tape and checks the compile-once / solve-many contract from
// both directions:
//
//  1. Data-obliviousness: building the same op sequence with different
//     input VALUES must yield the identical compiled system (digest).
//  2. Solve ≡ eager: replaying circuit A's solver program against
//     circuit B's inputs must reproduce B's eager witness bit for bit
//     (and A's own inputs must reproduce A's witness).
//
// The op stream exercises every tape opcode: linear ops (free), Mul,
// Inverse (including 0⁻¹ = 0), IsZero, Select, bit decomposition, wide
// Sum, and Reduce.

// fuzzRng is a tiny deterministic value generator (an LCG) so input
// values derive from the fuzz data without the fuzzer having to supply
// 32-byte field elements.
type fuzzRng struct{ state uint64 }

func (r *fuzzRng) next() fr.Element {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	var e fr.Element
	e.SetUint64(r.state >> 16)
	return e
}

// buildFuzzCircuit deterministically interprets ops as builder calls
// over the given input values. The call sequence depends only on ops —
// never on the values — which is exactly the package's data-oblivious
// circuit contract.
func buildFuzzCircuit(ops []byte, pub, sec []fr.Element) (*CompileResult, error) {
	b := NewBuilder()
	var pool []Variable
	for i, v := range pub {
		pool = append(pool, b.PublicInput(fmt.Sprintf("p%d", i), v))
	}
	for _, v := range sec {
		pool = append(pool, b.SecretInput("", v))
	}
	pick := func(k byte) Variable { return pool[int(k)%len(pool)] }
	nbDecompose := 0
	for i := 0; i+2 < len(ops) && len(pool) < 96; i += 3 {
		op, sa, sb := ops[i], ops[i+1], ops[i+2]
		x, y := pick(sa), pick(sb)
		var out Variable
		switch op % 11 {
		case 0:
			out = b.Add(x, y)
		case 1:
			out = b.Sub(x, y)
		case 2:
			out = b.Mul(x, y)
		case 3:
			var k fr.Element
			k.SetUint64(uint64(sb) + 1)
			out = b.MulConst(x, k)
		case 4:
			out = b.Inverse(x) // 0⁻¹ = 0 by the solver convention
		case 5:
			out = b.IsZero(x)
		case 6:
			out = b.Select(b.IsZero(x), y, x)
		case 7:
			// Bit decomposition is the widest tape instruction; cap how
			// many land in one circuit. Values overflowing 8 bits leave
			// the recomposition constraint unsatisfied — irrelevant here,
			// the oracle compares witnesses, not satisfiability.
			if nbDecompose >= 6 {
				out = b.Add(x, y)
				break
			}
			nbDecompose++
			out = b.FromBinary(b.ToBinary(x, 8))
		case 8:
			out = b.Sum(x, y, pick(sa^sb), b.One())
		case 9:
			out = b.Reduce(b.Sum(x, y, pick(sa+sb)))
		case 10:
			out = b.Neg(x)
		}
		pool = append(pool, out)
	}
	b.PublicOutput("out", pool[len(pool)-1])
	return b.Compile()
}

func FuzzSolveOracle(f *testing.F) {
	f.Add([]byte("\x01\x02\x07\x0b" + "expand the op pool with printable bytes"))
	f.Add([]byte{2, 1, 0xff, 0x80, 2, 0, 1, 4, 1, 2, 7, 2, 0, 5, 1, 1, 9, 3, 2})
	f.Add([]byte{0, 0, 0, 0, 7, 0, 0, 7, 1, 1, 6, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		nbPub := 1 + int(data[0]%3)
		nbSec := 1 + int(data[1]%3)
		rng := fuzzRng{state: uint64(data[2])<<8 | uint64(data[3])}
		mkVals := func() (pub, sec []fr.Element) {
			pub = make([]fr.Element, nbPub)
			sec = make([]fr.Element, nbSec)
			for i := range pub {
				pub[i] = rng.next()
			}
			for i := range sec {
				sec[i] = rng.next()
			}
			return pub, sec
		}
		ops := data[4:]
		pub1, sec1 := mkVals()
		pub2, sec2 := mkVals()

		res1, err := buildFuzzCircuit(ops, pub1, sec1)
		if err != nil {
			t.Fatalf("compile #1: %v", err)
		}
		res2, err := buildFuzzCircuit(ops, pub2, sec2)
		if err != nil {
			t.Fatalf("compile #2: %v", err)
		}
		if res1.System.DigestHex() != res2.System.DigestHex() {
			t.Fatal("same ops, different values → different circuits (data-obliviousness broken)")
		}

		// Replay circuit 1's tape against BOTH assignments; each must
		// reproduce the corresponding eager witness exactly.
		for _, tc := range []struct {
			name string
			pub  []fr.Element
			sec  []fr.Element
			want []fr.Element
		}{
			{"own inputs", pub1, sec1, res1.Witness},
			{"fresh inputs", pub2, sec2, res2.Witness},
		} {
			solved, err := res1.System.Solve(tc.pub, tc.sec)
			if err != nil {
				t.Fatalf("solve (%s): %v", tc.name, err)
			}
			if len(solved) != len(tc.want) {
				t.Fatalf("solve (%s): %d wires, eager has %d", tc.name, len(solved), len(tc.want))
			}
			for i := range solved {
				if !solved[i].Equal(&tc.want[i]) {
					t.Fatalf("solve (%s): wire %d: solver %v != eager %v", tc.name, i, solved[i], tc.want[i])
				}
			}
		}

		// Wrong-arity inputs must be rejected, not mis-scattered.
		if _, err := res1.System.Solve(pub1[:len(pub1)-1], sec1); err == nil {
			t.Fatal("short public inputs accepted")
		}
		if _, err := res1.System.Solve(pub1, append(sec1, fr.Element{})); err == nil {
			t.Fatal("long secret inputs accepted")
		}
	})
}
