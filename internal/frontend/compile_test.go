package frontend

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/r1cs"
)

// buildKitchenSink exercises every wire-allocating builder operation —
// Mul, Reduce, Inverse, Div, IsZero, Select, ToBinary — plus public
// inputs, outputs, and wide sums, over the given input values.
func buildKitchenSink(pubVals, secVals []fr.Element) (*CompileResult, error) {
	b := NewBuilder()
	p0 := b.PublicInput("p", pubVals[0])
	p1 := b.PublicInput("p", pubVals[1])
	s := make([]Variable, len(secVals))
	for i, v := range secVals {
		s[i] = b.SecretInput("s", v)
	}

	prod := b.Mul(s[0], s[1])
	sum := b.Sum(s...)
	red := b.Reduce(sum)
	inv := b.Inverse(b.Add(red, b.One()))
	quot := b.Div(prod, b.Add(prod, b.One()))
	iz := b.IsZero(b.Sub(s[2], s[2])) // always zero → 1
	sel := b.Select(iz, prod, quot)
	bits := b.ToBinary(p0, 16)
	_ = bits
	mix := b.Sum(prod, red, inv, quot, sel, p1)
	b.PublicOutput("mix", mix)
	b.PublicOutput("claim", iz)
	return b.Compile()
}

func kitchenInputs(seed int64) (pub, sec []fr.Element) {
	rng := rand.New(rand.NewSource(seed))
	pub = []fr.Element{frOf(uint64(rng.Intn(1 << 15))), frOf(uint64(rng.Intn(1000)))}
	sec = make([]fr.Element, 6)
	for i := range sec {
		sec[i] = frOf(uint64(rng.Intn(1000) + 1))
	}
	return pub, sec
}

// TestSolveMatchesEagerWitness is the frontend-level oracle: replaying
// the recorded solver program over the recorded inputs must reproduce
// the eager witness exactly, and the eager witness must satisfy the CSR
// system.
func TestSolveMatchesEagerWitness(t *testing.T) {
	pub, sec := kitchenInputs(1)
	res, err := buildKitchenSink(pub, sec)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := res.System.IsSatisfied(res.Witness); !ok {
		t.Fatalf("eager witness violates constraint %d", bad)
	}
	solved, err := res.System.SolveAssignment(res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solved {
		if !solved[i].Equal(&res.Witness[i]) {
			t.Fatalf("wire %d: solved %v != eager %v", i, solved[i], res.Witness[i])
		}
	}
	if res.System.Program.NbInstrs() == 0 || res.System.Program.NbLevels() == 0 {
		t.Fatal("compile recorded no solver program")
	}
}

// TestSolveManyFreshInputs: one compiled circuit, new inputs — Solve
// must agree with a from-scratch eager build of the same circuit over
// those inputs (the compile-once / solve-many contract).
func TestSolveManyFreshInputs(t *testing.T) {
	resA, err := buildKitchenSink(kitchenInputs(1))
	if err != nil {
		t.Fatal(err)
	}
	pubB, secB := kitchenInputs(2)
	resB, err := buildKitchenSink(pubB, secB)
	if err != nil {
		t.Fatal(err)
	}
	if resA.System.DigestHex() != resB.System.DigestHex() {
		t.Fatal("kitchen-sink circuit is not data-oblivious")
	}
	solved, err := resA.System.SolveAssignment(resB.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solved {
		if !solved[i].Equal(&resB.Witness[i]) {
			t.Fatalf("wire %d: solve-many %v != eager rebuild %v", i, solved[i], resB.Witness[i])
		}
	}
}

// TestConcurrentSolve races many goroutines over ONE compiled system
// with distinct inputs (run under -race in CI): CompiledSystem must be
// immutable under Solve.
func TestConcurrentSolve(t *testing.T) {
	res, err := buildKitchenSink(kitchenInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	cs := res.System
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				ref, err := buildKitchenSink(kitchenInputs(seed))
				if err != nil {
					errs <- err
					return
				}
				solved, err := cs.SolveAssignment(ref.Assignment)
				if err != nil {
					errs <- err
					return
				}
				for i := range solved {
					if !solved[i].Equal(&ref.Witness[i]) {
						errs <- fmt.Errorf("goroutine seed %d wire %d mismatch", seed, i)
						return
					}
				}
				if ok, bad := cs.IsSatisfied(solved); !ok {
					errs <- fmt.Errorf("goroutine seed %d: constraint %d violated", seed, bad)
					return
				}
			}
		}(int64(10 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFinalizeShimMatchesCompile: the legacy Finalize path must stay
// digest- and witness-compatible with Compile.
func TestFinalizeShimMatchesCompile(t *testing.T) {
	res, err := buildKitchenSink(kitchenInputs(4))
	if err != nil {
		t.Fatal(err)
	}
	sys := res.System.ToSystem()
	if sys.DigestHex() != res.System.DigestHex() {
		t.Fatal("legacy materialization changes the digest")
	}
	if ok, bad := sys.IsSatisfied(res.Witness); !ok {
		t.Fatalf("eager witness violates legacy constraint %d", bad)
	}
}

// --- mergeLC ---

// refMergeLC is the original map-and-sort implementation, kept as the
// behavioral oracle for the k-way merge.
func refMergeLC(lcs ...r1cs.LinearCombination) r1cs.LinearCombination {
	total := 0
	for _, lc := range lcs {
		total += len(lc)
	}
	acc := make(map[int]fr.Element, total)
	for _, lc := range lcs {
		for _, t := range lc {
			cur := acc[t.Wire]
			cur.Add(&cur, &t.Coeff)
			acc[t.Wire] = cur
		}
	}
	out := make(r1cs.LinearCombination, 0, len(acc))
	for w, c := range acc {
		if c.IsZero() {
			continue
		}
		out = append(out, r1cs.Term{Wire: w, Coeff: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wire < out[j].Wire })
	return out
}

// randLC draws a sorted LC with unique wires; some coefficients are
// negations of small values so cross-LC cancellation to zero happens.
func randLC(rng *rand.Rand, maxLen, wireSpace int) r1cs.LinearCombination {
	n := rng.Intn(maxLen + 1)
	wires := rng.Perm(wireSpace)[:n]
	sort.Ints(wires)
	lc := make(r1cs.LinearCombination, n)
	for i, w := range wires {
		var c fr.Element
		c.SetInt64(int64(rng.Intn(7)) - 3) // in {-3..3}, zeros included
		lc[i] = r1cs.Term{Wire: w, Coeff: c}
	}
	return lc
}

func lcEqual(a, b r1cs.LinearCombination) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Wire != b[i].Wire || !a[i].Coeff.Equal(&b[i].Coeff) {
			return false
		}
	}
	return true
}

func TestMergeLCMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 500; trial++ {
		k := rng.Intn(6) // 0..5 inputs covers every merge strategy
		lcs := make([]r1cs.LinearCombination, k)
		ref := make([]r1cs.LinearCombination, k)
		for i := range lcs {
			lcs[i] = randLC(rng, 10, 24)
			ref[i] = lcs[i].Clone()
		}
		got := mergeLC(lcs...)
		want := refMergeLC(ref...)
		if !lcEqual(got, want) {
			t.Fatalf("trial %d (k=%d): merge %v != reference %v", trial, k, got, want)
		}
	}
	// Wide Sum shape: many singleton LCs, some sharing wires.
	for trial := 0; trial < 50; trial++ {
		k := 3 + rng.Intn(64)
		lcs := make([]r1cs.LinearCombination, k)
		ref := make([]r1cs.LinearCombination, k)
		for i := range lcs {
			lcs[i] = randLC(rng, 2, 8)
			ref[i] = lcs[i].Clone()
		}
		got := mergeLC(lcs...)
		want := refMergeLC(ref...)
		if !lcEqual(got, want) {
			t.Fatalf("wide trial %d (k=%d): merge %v != reference %v", trial, k, got, want)
		}
	}
}

// BenchmarkMergeLC tracks the compile-path hot spot: the pairwise shape
// (chained Adds over reduced wires) and the wide shape (Sum over a
// dense layer's products).
func BenchmarkMergeLC(b *testing.B) {
	rng := rand.New(rand.NewSource(91))
	mk := func(n, space int) r1cs.LinearCombination {
		wires := rng.Perm(space)[:n]
		sort.Ints(wires)
		lc := make(r1cs.LinearCombination, n)
		for i, w := range wires {
			lc[i] = r1cs.Term{Wire: w, Coeff: frOf(uint64(i + 1))}
		}
		return lc
	}
	b.Run("pair-32", func(b *testing.B) {
		x, y := mk(32, 64), mk(32, 64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mergeLC(x, y)
		}
	})
	b.Run("wide-1024", func(b *testing.B) {
		lcs := make([]r1cs.LinearCombination, 1024)
		for i := range lcs {
			lcs[i] = r1cs.LinearCombination{{Wire: i, Coeff: frOf(uint64(i + 1))}}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mergeLC(lcs...)
		}
	})
	b.Run("kway-16x64", func(b *testing.B) {
		lcs := make([]r1cs.LinearCombination, 16)
		for i := range lcs {
			lcs[i] = mk(64, 256)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mergeLC(lcs...)
		}
	})
}
