package frontend

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/groth16"
	"zkrownn/internal/r1cs"
)

// vEq reports whether the variable's value equals e.
func vEq(v Variable, e fr.Element) bool {
	val := v.Value()
	return val.Equal(&e)
}

// vIsZero reports whether the variable's value is zero.
func vIsZero(v Variable) bool {
	val := v.Value()
	return val.IsZero()
}

// vIsOne reports whether the variable's value is one.
func vIsOne(v Variable) bool {
	val := v.Value()
	return val.IsOne()
}

func frOf(v uint64) fr.Element {
	var e fr.Element
	e.SetUint64(v)
	return e
}

// finalizeAndCheck finalizes and asserts the witness satisfies the
// system.
func finalizeAndCheck(t *testing.T, b *Builder) (*r1cs.System, []fr.Element) {
	t.Helper()
	sys, w, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := sys.IsSatisfied(w); !ok {
		t.Fatalf("witness does not satisfy constraint %d", bad)
	}
	return sys, w
}

func TestAddMulConstantsAreFree(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(3))
	y := b.SecretInput("y", frOf(4))
	sum := b.Add(x, y)
	var seven fr.Element
	seven.SetUint64(7)
	if !vEq(sum, seven) {
		t.Fatal("3+4 != 7")
	}
	scaled := b.MulConst(sum, frOf(10))
	var seventy fr.Element
	seventy.SetUint64(70)
	if !vEq(scaled, seventy) {
		t.Fatal("70 expected")
	}
	if b.NbConstraints() != 0 {
		t.Fatalf("linear ops emitted %d constraints", b.NbConstraints())
	}
	b.AssertEqual(scaled, b.ConstUint64(70))
	finalizeAndCheck(t, b)
}

func TestMulEmitsOneConstraint(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(6))
	y := b.SecretInput("y", frOf(7))
	p := b.Mul(x, y)
	if b.NbConstraints() != 1 {
		t.Fatalf("Mul emitted %d constraints", b.NbConstraints())
	}
	b.AssertEqual(p, b.ConstUint64(42))
	finalizeAndCheck(t, b)
}

func TestMulByConstantVariable(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(6))
	c := b.ConstUint64(5)
	p := b.Mul(x, c)
	if b.NbConstraints() != 0 {
		t.Fatal("constant multiplication should be free")
	}
	var thirty fr.Element
	thirty.SetUint64(30)
	if !vEq(p, thirty) {
		t.Fatal("6·5 != 30")
	}
}

func TestSubNegZeroHandling(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(10))
	d := b.Sub(x, x)
	if !vIsZero(d) {
		t.Fatal("x-x != 0")
	}
	if len(d.lc) != 0 {
		t.Fatal("x-x should cancel to the empty LC")
	}
	n := b.Neg(x)
	s := b.Add(x, n)
	if !vIsZero(s) {
		t.Fatal("x + (-x) != 0")
	}
}

func TestToBinaryFromBinary(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(0b1011001))
	bits := b.ToBinary(x, 8)
	want := []uint64{1, 0, 0, 1, 1, 0, 1, 0}
	for i, bit := range bits {
		v := bit.Value()
		var w fr.Element
		w.SetUint64(want[i])
		if !v.Equal(&w) {
			t.Fatalf("bit %d = %v, want %d", i, v, want[i])
		}
	}
	back := b.FromBinary(bits)
	if !vEq(back, x.val) {
		t.Fatal("FromBinary(ToBinary(x)) != x")
	}
	finalizeAndCheck(t, b)
}

func TestToBinaryOverflowUnsatisfiable(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(300)) // does not fit 8 bits
	_ = b.ToBinary(x, 8)
	sys, w, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := sys.IsSatisfied(w); ok {
		t.Fatal("overflowing decomposition produced a satisfiable witness")
	}
}

func TestIsZero(t *testing.T) {
	b := NewBuilder()
	z := b.SecretInput("z", fr.Element{})
	nz := b.SecretInput("nz", frOf(17))
	iz := b.IsZero(z)
	inz := b.IsZero(nz)
	if !vIsOne(iz) {
		t.Fatal("IsZero(0) != 1")
	}
	if !vIsZero(inz) {
		t.Fatal("IsZero(17) != 0")
	}
	finalizeAndCheck(t, b)
}

func TestSelect(t *testing.T) {
	b := NewBuilder()
	cond := b.SecretInput("c", frOf(1))
	x := b.SecretInput("x", frOf(100))
	y := b.SecretInput("y", frOf(200))
	s := b.Select(cond, x, y)
	var hundred fr.Element
	hundred.SetUint64(100)
	if !vEq(s, hundred) {
		t.Fatal("Select(1, x, y) != x")
	}
	s2 := b.Select(b.Zero(), x, y)
	var twoHundred fr.Element
	twoHundred.SetUint64(200)
	if !vEq(s2, twoHundred) {
		t.Fatal("Select(0, x, y) != y")
	}
	finalizeAndCheck(t, b)
}

func TestInverseAndDiv(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(12))
	y := b.SecretInput("y", frOf(4))
	q := b.Div(x, y)
	var three fr.Element
	three.SetUint64(3)
	if !vEq(q, three) {
		t.Fatal("12/4 != 3")
	}
	finalizeAndCheck(t, b)
}

func TestInverseOfZeroUnsatisfiable(t *testing.T) {
	b := NewBuilder()
	z := b.SecretInput("z", fr.Element{})
	_ = b.Inverse(z)
	sys, w, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := sys.IsSatisfied(w); ok {
		t.Fatal("inverse of zero satisfiable")
	}
}

func TestPublicWireReordering(t *testing.T) {
	b := NewBuilder()
	// Interleave secret and public declarations; Finalize must put the
	// publics first regardless.
	s1 := b.SecretInput("s1", frOf(2))
	p1 := b.PublicInput("out1", frOf(4))
	s2 := b.SecretInput("s2", frOf(3))
	p2 := b.PublicInput("out2", frOf(9))
	b.AssertEqual(b.Mul(s1, s1), p1)
	b.AssertEqual(b.Mul(s2, s2), p2)

	sys, w := finalizeAndCheck(t, b)
	if sys.NbPublic != 3 {
		t.Fatalf("NbPublic = %d, want 3", sys.NbPublic)
	}
	pub := PublicValues(sys, w)
	var four, nine fr.Element
	four.SetUint64(4)
	nine.SetUint64(9)
	if !pub[0].Equal(&four) || !pub[1].Equal(&nine) {
		t.Fatalf("public values wrong: %v %v", pub[0], pub[1])
	}
	if sys.PublicNames[1] != "out1" || sys.PublicNames[2] != "out2" {
		t.Fatalf("public names wrong: %v", sys.PublicNames)
	}
}

func TestSumWide(t *testing.T) {
	b := NewBuilder()
	rng := rand.New(rand.NewSource(80))
	var want fr.Element
	vars := make([]Variable, 100)
	for i := range vars {
		v := frOf(uint64(rng.Intn(1000)))
		vars[i] = b.SecretInput("", v)
		want.Add(&want, &v)
	}
	s := b.Sum(vars...)
	if !vEq(s, want) {
		t.Fatal("wide sum wrong")
	}
	if b.NbConstraints() != 0 {
		t.Fatal("Sum should be free")
	}
	r := b.Reduce(s)
	if b.NbConstraints() != 1 {
		t.Fatal("Reduce should cost exactly one constraint")
	}
	if !vEq(r, want) {
		t.Fatal("reduced sum wrong")
	}
	finalizeAndCheck(t, b)
}

func TestDoubleFinalizeFails(t *testing.T) {
	b := NewBuilder()
	x := b.SecretInput("x", frOf(1))
	b.AssertEqual(x, b.One())
	if _, _, err := b.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Finalize(); err == nil {
		t.Fatal("second Finalize should fail")
	}
}

// TestEndToEndWithGroth16 wires the frontend into the proof system: the
// cubic demo circuit built through the builder, compiled, proven and
// verified.
func TestEndToEndWithGroth16(t *testing.T) {
	build := func(xVal, outVal fr.Element) (*CompileResult, error) {
		b := NewBuilder()
		out := b.PublicInput("out", outVal)
		x := b.SecretInput("x", xVal)
		x2 := b.Mul(x, x)
		x3 := b.Mul(x2, x)
		sum := b.Add(b.Add(x3, x), b.ConstUint64(5))
		b.AssertEqual(sum, out)
		return b.Compile()
	}

	res, err := build(frOf(3), frOf(35))
	if err != nil {
		t.Fatal(err)
	}
	sys, w := res.System, res.Witness
	rng := rand.New(rand.NewSource(81))
	pk, vk, err := groth16.Setup(sys, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := groth16.Prove(sys, pk, w, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := groth16.Verify(vk, proof, sys.PublicValues(w)); err != nil {
		t.Fatal(err)
	}

	// The setup/prove split: constraints built from dummy inputs must be
	// identical (same digest), and a proof from the real witness must
	// verify against the dummy-built system's keys.
	resDummy, err := build(fr.Element{}, fr.Element{})
	if err != nil {
		t.Fatal(err)
	}
	sysDummy := resDummy.System
	if sysDummy.DigestHex() != sys.DigestHex() {
		t.Fatal("circuit is not data-oblivious")
	}
	pk2, vk2, err := groth16.Setup(sysDummy, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Solve-many against the dummy-compiled system: rebind the real
	// inputs and let the solver program rebuild the witness.
	w2, err := sysDummy.SolveAssignment(res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	proof2, err := groth16.Prove(sysDummy, pk2, w2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := groth16.Verify(vk2, proof2, sys.PublicValues(w)); err != nil {
		t.Fatal("proof against dummy-setup keys rejected:", err)
	}
}
