// Package frontend provides the circuit-construction API that replaces
// xJsnark in this reproduction: an *eager* builder that simultaneously
// emits R1CS constraints and solves the witness, in the style of
// xJsnark's circuit generator.
//
// Design contract: circuit code must be data-oblivious — the sequence of
// builder calls may not depend on input *values* (only on static shapes
// and parameters). Under that contract, running the same circuit
// function with dummy inputs (for Setup) and with real inputs (for
// Prove) yields the identical constraint system, which is what makes the
// one-time trusted setup of ZKROWNN sound.
//
// Variables carry sparse linear combinations over wires, so Add, Sub,
// and multiplication by constants are free; only Mul between two
// non-constant variables, assertions, and bit decompositions emit
// constraints — mirroring the cost model of the paper's circuits.
package frontend

import (
	"fmt"
	"math/big"
	"sort"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/r1cs"
)

// Variable is a value in the circuit: a linear combination of wires plus
// its concrete value under the current input assignment.
type Variable struct {
	lc  r1cs.LinearCombination
	val fr.Element
}

// Value returns the variable's value under the builder's current
// assignment (useful for debugging and for gadget-internal witnesses).
func (v *Variable) Value() fr.Element { return v.val }

// wireKind distinguishes the constant wire, public inputs, and private
// wires (inputs and internal).
type wireKind uint8

const (
	kindOne wireKind = iota
	kindPublic
	kindPrivate
)

// Builder accumulates constraints and wire values.
type Builder struct {
	constraints []r1cs.Constraint
	values      []fr.Element
	kinds       []wireKind
	names       []string // parallel to values; "" for unnamed

	publicOrder []int // wire ids of public inputs, in declaration order
	finalized   bool
}

// NewBuilder returns an empty builder with the constant wire allocated.
func NewBuilder() *Builder {
	b := &Builder{}
	var one fr.Element
	one.SetOne()
	b.values = append(b.values, one)
	b.kinds = append(b.kinds, kindOne)
	b.names = append(b.names, "one")
	return b
}

// newWire allocates a wire with the given value and kind.
func (b *Builder) newWire(v fr.Element, k wireKind, name string) int {
	id := len(b.values)
	b.values = append(b.values, v)
	b.kinds = append(b.kinds, k)
	b.names = append(b.names, name)
	if k == kindPublic {
		b.publicOrder = append(b.publicOrder, id)
	}
	return id
}

// single returns a variable referencing exactly one wire.
func (b *Builder) single(wire int) Variable {
	var one fr.Element
	one.SetOne()
	return Variable{
		lc:  r1cs.LinearCombination{{Wire: wire, Coeff: one}},
		val: b.values[wire],
	}
}

// PublicInput declares a named public input with the given value.
func (b *Builder) PublicInput(name string, v fr.Element) Variable {
	return b.single(b.newWire(v, kindPublic, name))
}

// SecretInput declares a private input with the given value.
func (b *Builder) SecretInput(name string, v fr.Element) Variable {
	return b.single(b.newWire(v, kindPrivate, name))
}

// Constant returns a variable fixed to the field element c (a multiple
// of the constant wire; no new wire is allocated).
func (b *Builder) Constant(c fr.Element) Variable {
	return Variable{
		lc:  r1cs.LinearCombination{{Wire: 0, Coeff: c}},
		val: c,
	}
}

// ConstUint64 returns a constant variable.
func (b *Builder) ConstUint64(v uint64) Variable {
	var c fr.Element
	c.SetUint64(v)
	return b.Constant(c)
}

// ConstInt64 returns a (possibly negative) constant variable.
func (b *Builder) ConstInt64(v int64) Variable {
	var c fr.Element
	c.SetInt64(v)
	return b.Constant(c)
}

// One returns the constant 1.
func (b *Builder) One() Variable { return b.ConstUint64(1) }

// Zero returns the constant 0.
func (b *Builder) Zero() Variable {
	var z fr.Element
	return b.Constant(z)
}

// isConstant reports whether v is a pure multiple of the constant wire,
// returning the constant.
func isConstant(v *Variable) (fr.Element, bool) {
	if len(v.lc) == 0 {
		var z fr.Element
		return z, true
	}
	if len(v.lc) == 1 && v.lc[0].Wire == 0 {
		return v.lc[0].Coeff, true
	}
	var z fr.Element
	return z, false
}

// mergeLC combines linear combinations, summing coefficients per wire
// and dropping zeros. Inputs are not modified.
func mergeLC(lcs ...r1cs.LinearCombination) r1cs.LinearCombination {
	total := 0
	for _, lc := range lcs {
		total += len(lc)
	}
	acc := make(map[int]fr.Element, total)
	for _, lc := range lcs {
		for _, t := range lc {
			cur := acc[t.Wire]
			cur.Add(&cur, &t.Coeff)
			acc[t.Wire] = cur
		}
	}
	out := make(r1cs.LinearCombination, 0, len(acc))
	for w, c := range acc {
		if c.IsZero() {
			continue
		}
		out = append(out, r1cs.Term{Wire: w, Coeff: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wire < out[j].Wire })
	return out
}

// scaleLC returns lc scaled by c.
func scaleLC(lc r1cs.LinearCombination, c *fr.Element) r1cs.LinearCombination {
	if c.IsZero() {
		return nil
	}
	out := make(r1cs.LinearCombination, len(lc))
	for i, t := range lc {
		out[i].Wire = t.Wire
		out[i].Coeff.Mul(&t.Coeff, c)
	}
	return out
}

// Add returns a + b (free: no constraint).
func (b *Builder) Add(x, y Variable) Variable {
	var out Variable
	out.lc = mergeLC(x.lc, y.lc)
	out.val.Add(&x.val, &y.val)
	return out
}

// Sum returns the sum of all variables in one LC merge (avoids the
// quadratic blowup of chained pairwise Adds on wide reductions such as
// dense layers).
func (b *Builder) Sum(vs ...Variable) Variable {
	lcs := make([]r1cs.LinearCombination, len(vs))
	var val fr.Element
	for i := range vs {
		lcs[i] = vs[i].lc
		val.Add(&val, &vs[i].val)
	}
	return Variable{lc: mergeLC(lcs...), val: val}
}

// Sub returns a - b (free).
func (b *Builder) Sub(x, y Variable) Variable {
	var negOne fr.Element
	negOne.SetOne()
	negOne.Neg(&negOne)
	var out Variable
	out.lc = mergeLC(x.lc, scaleLC(y.lc, &negOne))
	out.val.Sub(&x.val, &y.val)
	return out
}

// Neg returns -a (free).
func (b *Builder) Neg(x Variable) Variable {
	return b.Sub(b.Zero(), x)
}

// MulConst returns c·a (free).
func (b *Builder) MulConst(x Variable, c fr.Element) Variable {
	var out Variable
	out.lc = scaleLC(x.lc, &c)
	out.val.Mul(&x.val, &c)
	return out
}

// Mul returns a·b. When either side is constant this is free; otherwise
// it allocates one internal wire and one R1CS constraint.
func (b *Builder) Mul(x, y Variable) Variable {
	if c, ok := isConstant(&x); ok {
		return b.MulConst(y, c)
	}
	if c, ok := isConstant(&y); ok {
		return b.MulConst(x, c)
	}
	var val fr.Element
	val.Mul(&x.val, &y.val)
	w := b.newWire(val, kindPrivate, "")
	out := b.single(w)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc.Clone(),
		B: y.lc.Clone(),
		C: out.lc.Clone(),
	})
	return out
}

// Square returns a² (one constraint).
func (b *Builder) Square(x Variable) Variable { return b.Mul(x, x) }

// Reduce collapses a wide linear combination into a single fresh wire
// with one constraint (lc · 1 = wire). Use after wide sums so downstream
// constraints stay sparse.
func (b *Builder) Reduce(x Variable) Variable {
	if len(x.lc) <= 1 {
		return x
	}
	w := b.newWire(x.val, kindPrivate, "")
	out := b.single(w)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc.Clone(),
		B: b.One().lc,
		C: out.lc.Clone(),
	})
	return out
}

// AssertEqual enforces a == b (one constraint).
func (b *Builder) AssertEqual(x, y Variable) {
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc.Clone(),
		B: b.One().lc,
		C: y.lc.Clone(),
	})
}

// AssertBoolean enforces a ∈ {0, 1} (one constraint: a·(a-1) = 0).
func (b *Builder) AssertBoolean(x Variable) {
	am1 := b.Sub(x, b.One())
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc.Clone(),
		B: am1.lc,
		C: nil,
	})
}

// Inverse returns 1/a, enforcing a·out = 1 (a must be non-zero in a
// satisfiable witness). One constraint.
func (b *Builder) Inverse(x Variable) Variable {
	var inv fr.Element
	inv.Inverse(&x.val) // 0 for x == 0; constraint then unsatisfiable, as intended
	w := b.newWire(inv, kindPrivate, "")
	out := b.single(w)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc.Clone(),
		B: out.lc.Clone(),
		C: b.One().lc,
	})
	return out
}

// Div returns a/b (two constraints via inverse).
func (b *Builder) Div(x, y Variable) Variable {
	return b.Mul(x, b.Inverse(y))
}

// IsZero returns 1 if a == 0 else 0 (two constraints, one auxiliary
// witness wire).
func (b *Builder) IsZero(x Variable) Variable {
	// out = 1 - x·inv ;  x·out = 0
	var invVal fr.Element
	invVal.Inverse(&x.val)
	invW := b.newWire(invVal, kindPrivate, "")
	inv := b.single(invW)

	var outVal fr.Element
	if x.val.IsZero() {
		outVal.SetOne()
	}
	outW := b.newWire(outVal, kindPrivate, "")
	out := b.single(outW)

	// x·inv = 1 - out
	oneMinusOut := b.Sub(b.One(), out)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc.Clone(),
		B: inv.lc.Clone(),
		C: oneMinusOut.lc,
	})
	// x·out = 0
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc.Clone(),
		B: out.lc.Clone(),
		C: nil,
	})
	return out
}

// Select returns cond·x + (1-cond)·y; cond must be boolean (callers
// enforce). One constraint.
func (b *Builder) Select(cond, x, y Variable) Variable {
	diff := b.Sub(x, y)
	prod := b.Mul(cond, diff)
	return b.Add(y, prod)
}

// ToBinary decomposes a into nbBits little-endian boolean wires,
// enforcing booleanity of each bit and the recomposition identity
// (nbBits+1 constraints). The value must fit in nbBits for a satisfiable
// witness.
func (b *Builder) ToBinary(x Variable, nbBits int) []Variable {
	val := x.val.ToBigInt()
	bits := make([]Variable, nbBits)
	for i := 0; i < nbBits; i++ {
		var bitVal fr.Element
		if val.Bit(i) == 1 {
			bitVal.SetOne()
		}
		w := b.newWire(bitVal, kindPrivate, "")
		bits[i] = b.single(w)
		b.AssertBoolean(bits[i])
	}
	recomposed := b.FromBinary(bits)
	b.AssertEqual(recomposed, x)
	return bits
}

// FromBinary recombines little-endian bits into a variable (free).
func (b *Builder) FromBinary(bits []Variable) Variable {
	terms := make([]Variable, len(bits))
	coeff := new(big.Int).SetUint64(1)
	for i := range bits {
		var c fr.Element
		c.SetBigInt(coeff)
		terms[i] = b.MulConst(bits[i], c)
		coeff.Lsh(coeff, 1)
	}
	return b.Sum(terms...)
}

// NbConstraints returns the number of constraints emitted so far.
func (b *Builder) NbConstraints() int { return len(b.constraints) }

// NbWires returns the number of wires allocated so far.
func (b *Builder) NbWires() int { return len(b.values) }

// Finalize freezes the circuit: wires are permuted so the statement
// (constant wire, then public inputs in declaration order) occupies the
// leading indices required by Groth16, and the full witness vector is
// produced. The builder must not be used afterwards.
func (b *Builder) Finalize() (*r1cs.System, []fr.Element, error) {
	if b.finalized {
		return nil, nil, fmt.Errorf("frontend: builder already finalized")
	}
	b.finalized = true

	m := len(b.values)
	perm := make([]int, m) // old wire -> new wire
	perm[0] = 0
	next := 1
	for _, w := range b.publicOrder {
		perm[w] = next
		next++
	}
	for w := 1; w < m; w++ {
		if b.kinds[w] != kindPublic {
			perm[w] = next
			next++
		}
	}

	witness := make([]fr.Element, m)
	names := make([]string, 1+len(b.publicOrder))
	names[0] = "one"
	for w := 0; w < m; w++ {
		witness[perm[w]] = b.values[w]
		if b.kinds[w] == kindPublic {
			names[perm[w]] = b.names[w]
		}
	}

	remap := func(lc r1cs.LinearCombination) r1cs.LinearCombination {
		for i := range lc {
			lc[i].Wire = perm[lc[i].Wire]
		}
		return lc
	}
	cons := make([]r1cs.Constraint, len(b.constraints))
	for i, c := range b.constraints {
		cons[i] = r1cs.Constraint{A: remap(c.A), B: remap(c.B), C: remap(c.C)}
	}

	sys := &r1cs.System{
		Constraints: cons,
		NbPublic:    1 + len(b.publicOrder),
		NbWires:     m,
		PublicNames: names,
	}
	if err := sys.Validate(); err != nil {
		return nil, nil, err
	}
	return sys, witness, nil
}

// PublicValues extracts the public-input section (excluding the constant
// wire) from a finalized witness, in the order Verify expects.
func PublicValues(sys *r1cs.System, witness []fr.Element) []fr.Element {
	out := make([]fr.Element, sys.NbPublic-1)
	copy(out, witness[1:sys.NbPublic])
	return out
}
