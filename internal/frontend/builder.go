// Package frontend provides the circuit-construction API that replaces
// xJsnark in this reproduction: a builder that simultaneously emits R1CS
// constraints, solves the witness eagerly (in the style of xJsnark's
// circuit generator), and records a solver program so the compiled
// circuit can re-derive witnesses from fresh inputs without being
// rebuilt.
//
// Design contract: circuit code must be data-oblivious — the sequence of
// builder calls may not depend on input *values* (only on static shapes
// and parameters). Under that contract, running the same circuit
// function with dummy inputs (for Setup) and with real inputs (for
// Prove) yields the identical constraint system, which is what makes
// both the one-time trusted setup of ZKROWNN and the compile-once /
// solve-many split sound: Compile once per architecture, then
// CompiledSystem.Solve per proof.
//
// Variables carry sparse linear combinations over wires, so Add, Sub,
// and multiplication by constants are free; only Mul between two
// non-constant variables, assertions, and bit decompositions emit
// constraints — mirroring the cost model of the paper's circuits.
package frontend

import (
	"fmt"
	"math/big"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/r1cs"
)

// Variable is a value in the circuit: a linear combination of wires plus
// its concrete value under the current input assignment.
//
// Linear combinations are immutable once built — every builder operation
// allocates fresh term slices and Compile copies (never mutates) them —
// so variables may be freely shared between constraints.
type Variable struct {
	lc  r1cs.LinearCombination
	val fr.Element
}

// Value returns the variable's value under the builder's current
// assignment (useful for debugging and for gadget-internal witnesses).
func (v *Variable) Value() fr.Element { return v.val }

// wireKind distinguishes the constant wire, declared inputs (bound at
// solve time), and computed wires (re-derived by the solver program).
type wireKind uint8

const (
	kindOne wireKind = iota
	kindPublicInput
	kindPublicOutput
	kindSecretInput
	kindInternal
)

// tapeInstr is one recorded solver step, in pre-permutation wire ids.
// The linear combinations alias variable LCs (safe: LCs are immutable).
type tapeInstr struct {
	op   r1cs.OpCode
	out  int // first output wire
	nOut int
	a, b r1cs.LinearCombination
}

// Builder accumulates constraints, wire values, and the solver tape.
type Builder struct {
	constraints []r1cs.Constraint
	values      []fr.Element
	kinds       []wireKind
	names       []string // parallel to values; "" for unnamed

	publicOrder []int // wire ids of public wires, in declaration order
	tape        []tapeInstr
	finalized   bool
}

// NewBuilder returns an empty builder with the constant wire allocated.
func NewBuilder() *Builder {
	b := &Builder{}
	var one fr.Element
	one.SetOne()
	b.values = append(b.values, one)
	b.kinds = append(b.kinds, kindOne)
	b.names = append(b.names, "one")
	return b
}

// newWire allocates a wire with the given value and kind.
func (b *Builder) newWire(v fr.Element, k wireKind, name string) int {
	id := len(b.values)
	b.values = append(b.values, v)
	b.kinds = append(b.kinds, k)
	b.names = append(b.names, name)
	if k == kindPublicInput || k == kindPublicOutput {
		b.publicOrder = append(b.publicOrder, id)
	}
	return id
}

// record appends one solver instruction to the tape.
func (b *Builder) record(op r1cs.OpCode, out, nOut int, a, bb r1cs.LinearCombination) {
	b.tape = append(b.tape, tapeInstr{op: op, out: out, nOut: nOut, a: a, b: bb})
}

// single returns a variable referencing exactly one wire.
func (b *Builder) single(wire int) Variable {
	var one fr.Element
	one.SetOne()
	return Variable{
		lc:  r1cs.LinearCombination{{Wire: wire, Coeff: one}},
		val: b.values[wire],
	}
}

// PublicInput declares a named public input with the given value. The
// value is rebound per solve; the name groups inputs for rebinding (all
// wires declared under one name form an ordered vector).
func (b *Builder) PublicInput(name string, v fr.Element) Variable {
	return b.single(b.newWire(v, kindPublicInput, name))
}

// SecretInput declares a private input with the given value.
func (b *Builder) SecretInput(name string, v fr.Element) Variable {
	return b.single(b.newWire(v, kindSecretInput, name))
}

// PublicOutput exposes x as a named public wire constrained to equal it
// (one constraint). Unlike PublicInput the wire is *computed*: the
// solver program re-derives it from the inputs, so callers of
// CompiledSystem.Solve never supply output values.
func (b *Builder) PublicOutput(name string, x Variable) Variable {
	w := b.newWire(x.val, kindPublicOutput, name)
	out := b.single(w)
	b.record(r1cs.OpLC, w, 1, x.lc, nil)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: b.One().lc,
		C: out.lc,
	})
	return out
}

// Constant returns a variable fixed to the field element c (a multiple
// of the constant wire; no new wire is allocated).
func (b *Builder) Constant(c fr.Element) Variable {
	return Variable{
		lc:  r1cs.LinearCombination{{Wire: 0, Coeff: c}},
		val: c,
	}
}

// ConstUint64 returns a constant variable.
func (b *Builder) ConstUint64(v uint64) Variable {
	var c fr.Element
	c.SetUint64(v)
	return b.Constant(c)
}

// ConstInt64 returns a (possibly negative) constant variable.
func (b *Builder) ConstInt64(v int64) Variable {
	var c fr.Element
	c.SetInt64(v)
	return b.Constant(c)
}

// One returns the constant 1.
func (b *Builder) One() Variable { return b.ConstUint64(1) }

// Zero returns the constant 0.
func (b *Builder) Zero() Variable {
	var z fr.Element
	return b.Constant(z)
}

// isConstant reports whether v is a pure multiple of the constant wire,
// returning the constant.
func isConstant(v *Variable) (fr.Element, bool) {
	if len(v.lc) == 0 {
		var z fr.Element
		return z, true
	}
	if len(v.lc) == 1 && v.lc[0].Wire == 0 {
		return v.lc[0].Coeff, true
	}
	var z fr.Element
	return z, false
}

// mergeLC combines linear combinations, summing coefficients per wire
// and dropping zeros. Inputs are not modified. Every builder-produced LC
// is sorted by wire with unique wires, so this is a k-way sorted merge —
// the compile-path hot spot, kept free of the map+sort of the naive
// implementation (two-pointer for the dominant pairwise case, a small
// binary heap of cursors for wide Sums).
func mergeLC(lcs ...r1cs.LinearCombination) r1cs.LinearCombination {
	k, total := 0, 0
	for _, lc := range lcs {
		if len(lc) > 0 {
			lcs[k] = lc
			k++
			total += len(lc)
		}
	}
	lcs = lcs[:k]
	switch k {
	case 0:
		return nil
	case 1:
		return dropZeros(lcs[0])
	case 2:
		return merge2(lcs[0], lcs[1])
	}
	return mergeK(lcs, total)
}

// dropZeros returns lc without zero-coefficient terms, aliasing the
// input when nothing is dropped (LCs are immutable, so sharing is safe).
func dropZeros(lc r1cs.LinearCombination) r1cs.LinearCombination {
	for i := range lc {
		if lc[i].Coeff.IsZero() {
			out := make(r1cs.LinearCombination, i, len(lc)-1)
			copy(out, lc[:i])
			for _, t := range lc[i+1:] {
				if !t.Coeff.IsZero() {
					out = append(out, t)
				}
			}
			return out
		}
	}
	return lc
}

// merge2 merges two sorted LCs with one linear pass.
func merge2(a, b r1cs.LinearCombination) r1cs.LinearCombination {
	out := make(r1cs.LinearCombination, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Wire < b[j].Wire:
			if !a[i].Coeff.IsZero() {
				out = append(out, a[i])
			}
			i++
		case a[i].Wire > b[j].Wire:
			if !b[j].Coeff.IsZero() {
				out = append(out, b[j])
			}
			j++
		default:
			var c fr.Element
			c.Add(&a[i].Coeff, &b[j].Coeff)
			if !c.IsZero() {
				out = append(out, r1cs.Term{Wire: a[i].Wire, Coeff: c})
			}
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		if !a[i].Coeff.IsZero() {
			out = append(out, a[i])
		}
	}
	for ; j < len(b); j++ {
		if !b[j].Coeff.IsZero() {
			out = append(out, b[j])
		}
	}
	return out
}

// mergeK merges k ≥ 3 sorted LCs through a binary min-heap of cursors
// keyed by each LC's current wire: O(total·log k) with three
// allocations (positions, heap, output).
func mergeK(lcs []r1cs.LinearCombination, total int) r1cs.LinearCombination {
	k := len(lcs)
	pos := make([]int, k)
	heap := make([]int, k)
	wireAt := func(li int) int { return lcs[li][pos[li]].Wire }
	less := func(x, y int) bool { return wireAt(heap[x]) < wireAt(heap[y]) }
	siftDown := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < n && less(l, min) {
				min = l
			}
			if r < n && less(r, min) {
				min = r
			}
			if min == i {
				return
			}
			heap[i], heap[min] = heap[min], heap[i]
			i = min
		}
	}
	for i := range heap {
		heap[i] = i
	}
	n := k
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}

	out := make(r1cs.LinearCombination, 0, total)
	for n > 0 {
		w := wireAt(heap[0])
		var c fr.Element
		for n > 0 && wireAt(heap[0]) == w {
			li := heap[0]
			c.Add(&c, &lcs[li][pos[li]].Coeff)
			pos[li]++
			if pos[li] == len(lcs[li]) {
				heap[0] = heap[n-1]
				n--
			}
			if n > 0 {
				siftDown(0, n)
			}
		}
		if !c.IsZero() {
			out = append(out, r1cs.Term{Wire: w, Coeff: c})
		}
	}
	return out
}

// scaleLC returns lc scaled by c.
func scaleLC(lc r1cs.LinearCombination, c *fr.Element) r1cs.LinearCombination {
	if c.IsZero() {
		return nil
	}
	out := make(r1cs.LinearCombination, len(lc))
	for i, t := range lc {
		out[i].Wire = t.Wire
		out[i].Coeff.Mul(&t.Coeff, c)
	}
	return out
}

// Add returns a + b (free: no constraint).
func (b *Builder) Add(x, y Variable) Variable {
	var out Variable
	out.lc = mergeLC(x.lc, y.lc)
	out.val.Add(&x.val, &y.val)
	return out
}

// Sum returns the sum of all variables in one LC merge (avoids the
// quadratic blowup of chained pairwise Adds on wide reductions such as
// dense layers).
func (b *Builder) Sum(vs ...Variable) Variable {
	lcs := make([]r1cs.LinearCombination, len(vs))
	var val fr.Element
	for i := range vs {
		lcs[i] = vs[i].lc
		val.Add(&val, &vs[i].val)
	}
	return Variable{lc: mergeLC(lcs...), val: val}
}

// Sub returns a - b (free).
func (b *Builder) Sub(x, y Variable) Variable {
	var negOne fr.Element
	negOne.SetOne()
	negOne.Neg(&negOne)
	var out Variable
	out.lc = mergeLC(x.lc, scaleLC(y.lc, &negOne))
	out.val.Sub(&x.val, &y.val)
	return out
}

// Neg returns -a (free).
func (b *Builder) Neg(x Variable) Variable {
	return b.Sub(b.Zero(), x)
}

// MulConst returns c·a (free).
func (b *Builder) MulConst(x Variable, c fr.Element) Variable {
	var out Variable
	out.lc = scaleLC(x.lc, &c)
	out.val.Mul(&x.val, &c)
	return out
}

// Mul returns a·b. When either side is constant this is free; otherwise
// it allocates one internal wire and one R1CS constraint.
func (b *Builder) Mul(x, y Variable) Variable {
	if c, ok := isConstant(&x); ok {
		return b.MulConst(y, c)
	}
	if c, ok := isConstant(&y); ok {
		return b.MulConst(x, c)
	}
	var val fr.Element
	val.Mul(&x.val, &y.val)
	w := b.newWire(val, kindInternal, "")
	out := b.single(w)
	b.record(r1cs.OpMul, w, 1, x.lc, y.lc)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: y.lc,
		C: out.lc,
	})
	return out
}

// Square returns a² (one constraint).
func (b *Builder) Square(x Variable) Variable { return b.Mul(x, x) }

// Reduce collapses a wide linear combination into a single fresh wire
// with one constraint (lc · 1 = wire). Use after wide sums so downstream
// constraints stay sparse.
func (b *Builder) Reduce(x Variable) Variable {
	if len(x.lc) <= 1 {
		return x
	}
	w := b.newWire(x.val, kindInternal, "")
	out := b.single(w)
	b.record(r1cs.OpLC, w, 1, x.lc, nil)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: b.One().lc,
		C: out.lc,
	})
	return out
}

// AssertEqual enforces a == b (one constraint).
func (b *Builder) AssertEqual(x, y Variable) {
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: b.One().lc,
		C: y.lc,
	})
}

// AssertBoolean enforces a ∈ {0, 1} (one constraint: a·(a-1) = 0).
func (b *Builder) AssertBoolean(x Variable) {
	am1 := b.Sub(x, b.One())
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: am1.lc,
		C: nil,
	})
}

// Inverse returns 1/a, enforcing a·out = 1 (a must be non-zero in a
// satisfiable witness). One constraint.
func (b *Builder) Inverse(x Variable) Variable {
	var inv fr.Element
	inv.Inverse(&x.val) // 0 for x == 0; constraint then unsatisfiable, as intended
	w := b.newWire(inv, kindInternal, "")
	out := b.single(w)
	b.record(r1cs.OpInv, w, 1, x.lc, nil)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: out.lc,
		C: b.One().lc,
	})
	return out
}

// Div returns a/b (two constraints via inverse).
func (b *Builder) Div(x, y Variable) Variable {
	return b.Mul(x, b.Inverse(y))
}

// IsZero returns 1 if a == 0 else 0 (two constraints, one auxiliary
// witness wire).
func (b *Builder) IsZero(x Variable) Variable {
	// out = 1 - x·inv ;  x·out = 0
	var invVal fr.Element
	invVal.Inverse(&x.val)
	invW := b.newWire(invVal, kindInternal, "")
	inv := b.single(invW)
	b.record(r1cs.OpInv, invW, 1, x.lc, nil)

	var outVal fr.Element
	if x.val.IsZero() {
		outVal.SetOne()
	}
	outW := b.newWire(outVal, kindInternal, "")
	out := b.single(outW)
	b.record(r1cs.OpIsZero, outW, 1, x.lc, nil)

	// x·inv = 1 - out
	oneMinusOut := b.Sub(b.One(), out)
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: inv.lc,
		C: oneMinusOut.lc,
	})
	// x·out = 0
	b.constraints = append(b.constraints, r1cs.Constraint{
		A: x.lc,
		B: out.lc,
		C: nil,
	})
	return out
}

// Select returns cond·x + (1-cond)·y; cond must be boolean (callers
// enforce). One constraint.
func (b *Builder) Select(cond, x, y Variable) Variable {
	diff := b.Sub(x, y)
	prod := b.Mul(cond, diff)
	return b.Add(y, prod)
}

// ToBinary decomposes a into nbBits little-endian boolean wires,
// enforcing booleanity of each bit and the recomposition identity
// (nbBits+1 constraints). The value must fit in nbBits for a satisfiable
// witness.
func (b *Builder) ToBinary(x Variable, nbBits int) []Variable {
	val := x.val.ToBigInt()
	bits := make([]Variable, nbBits)
	// The bit wires are allocated as one contiguous block so the solver
	// tape covers them with a single bit-decompose instruction.
	first := len(b.values)
	for i := 0; i < nbBits; i++ {
		var bitVal fr.Element
		if val.Bit(i) == 1 {
			bitVal.SetOne()
		}
		w := b.newWire(bitVal, kindInternal, "")
		bits[i] = b.single(w)
	}
	b.record(r1cs.OpBits, first, nbBits, x.lc, nil)
	for i := 0; i < nbBits; i++ {
		b.AssertBoolean(bits[i])
	}
	recomposed := b.FromBinary(bits)
	b.AssertEqual(recomposed, x)
	return bits
}

// FromBinary recombines little-endian bits into a variable (free).
func (b *Builder) FromBinary(bits []Variable) Variable {
	terms := make([]Variable, len(bits))
	coeff := new(big.Int).SetUint64(1)
	for i := range bits {
		var c fr.Element
		c.SetBigInt(coeff)
		terms[i] = b.MulConst(bits[i], c)
		coeff.Lsh(coeff, 1)
	}
	return b.Sum(terms...)
}

// NbConstraints returns the number of constraints emitted so far.
func (b *Builder) NbConstraints() int { return len(b.constraints) }

// NbWires returns the number of wires allocated so far.
func (b *Builder) NbWires() int { return len(b.values) }

// CompileResult is the output of Compile: the reusable compiled system,
// the input assignment recorded at build time, and the eager witness the
// builder computed along the way (identical to what Solve(Assignment)
// returns — the oracle the solver tests check against).
type CompileResult struct {
	System     *r1cs.CompiledSystem
	Assignment r1cs.Assignment
	Witness    []fr.Element
}

// Compile freezes the circuit into a CompiledSystem: wires are permuted
// so the statement (constant wire, then public wires in declaration
// order) occupies the leading indices required by Groth16, the
// constraints are laid out as CSR matrices, and the recorded solver tape
// is leveled for parallel replay. Nothing in the builder is mutated in
// place — the result owns fresh arrays. The builder must not be used
// afterwards.
func (b *Builder) Compile() (*CompileResult, error) {
	if b.finalized {
		return nil, fmt.Errorf("frontend: builder already finalized")
	}
	b.finalized = true

	m := len(b.values)
	perm := make([]uint32, m) // old wire -> new wire
	perm[0] = 0
	next := uint32(1)
	for _, w := range b.publicOrder {
		perm[w] = next
		next++
	}
	for w := 1; w < m; w++ {
		k := b.kinds[w]
		if k != kindPublicInput && k != kindPublicOutput {
			perm[w] = next
			next++
		}
	}

	witness := make([]fr.Element, m)
	names := make([]string, 1+len(b.publicOrder))
	names[0] = "one"
	for w := 0; w < m; w++ {
		witness[perm[w]] = b.values[w]
		if k := b.kinds[w]; k == kindPublicInput || k == kindPublicOutput {
			names[perm[w]] = b.names[w]
		}
	}

	cs := &r1cs.CompiledSystem{
		NbPublic:    1 + len(b.publicOrder),
		NbWires:     m,
		PublicNames: names,
	}

	// CSR matrices: one count pass, one remapped fill pass per matrix.
	// Term order within a row is the LC's (old-wire sorted) order —
	// identical to the eager Finalize layout, so digests agree.
	fill := func(sel func(*r1cs.Constraint) r1cs.LinearCombination) r1cs.Matrix {
		n := len(b.constraints)
		offs := make([]uint32, n+1)
		total := 0
		for i := range b.constraints {
			total += len(sel(&b.constraints[i]))
			offs[i+1] = uint32(total)
		}
		ci := r1cs.NewCoeffInterner()
		mx := r1cs.Matrix{RowOffs: offs, Wires: make([]uint32, total), CoeffIdx: make([]uint32, total)}
		k := 0
		for i := range b.constraints {
			for _, t := range sel(&b.constraints[i]) {
				mx.Wires[k] = perm[t.Wire]
				mx.CoeffIdx[k] = ci.Intern(t.Coeff)
				k++
			}
		}
		mx.Dict = ci.Dict()
		return mx
	}
	cs.A = fill(func(c *r1cs.Constraint) r1cs.LinearCombination { return c.A })
	cs.B = fill(func(c *r1cs.Constraint) r1cs.LinearCombination { return c.B })
	cs.C = fill(func(c *r1cs.Constraint) r1cs.LinearCombination { return c.C })

	// Input-binding layout and the recorded assignment, in declaration
	// order (pre-permutation wire order).
	asg := r1cs.Assignment{}
	for _, w := range b.publicOrder {
		if b.kinds[w] == kindPublicInput {
			cs.PubInputs = append(cs.PubInputs, perm[w])
			cs.PubInputNames = append(cs.PubInputNames, b.names[w])
			asg.Public = append(asg.Public, b.values[w])
		}
	}
	for w := 1; w < m; w++ {
		if b.kinds[w] == kindSecretInput {
			cs.SecretInputs = append(cs.SecretInputs, perm[w])
			asg.Secret = append(asg.Secret, b.values[w])
		}
	}

	prog, err := b.compileTape(perm)
	if err != nil {
		return nil, err
	}
	cs.Program = prog

	if err := cs.Validate(); err != nil {
		return nil, err
	}
	return &CompileResult{System: cs, Assignment: asg, Witness: witness}, nil
}

// compileTape remaps the recorded tape onto post-permutation wires,
// copies the LC spans into shared pools, and partitions the
// instructions into dependency levels for parallel replay.
func (b *Builder) compileTape(perm []uint32) (r1cs.Program, error) {
	m := len(b.values)
	nbInstrs := len(b.tape)

	// Dependency level per (pre-permutation) wire: inputs are level 0;
	// an instruction lives one level above the deepest wire it reads,
	// and its outputs inherit that level.
	wireLevel := make([]int32, m)
	instrLevel := make([]int32, nbInstrs)
	maxLevel := int32(0)
	lcLevel := func(lc r1cs.LinearCombination) int32 {
		lvl := int32(0)
		for _, t := range lc {
			if l := wireLevel[t.Wire]; l > lvl {
				lvl = l
			}
		}
		return lvl
	}
	totalTerms := 0
	for i := range b.tape {
		in := &b.tape[i]
		lvl := lcLevel(in.a)
		totalTerms += len(in.a)
		if in.op == r1cs.OpMul {
			if l := lcLevel(in.b); l > lvl {
				lvl = l
			}
			totalTerms += len(in.b)
		}
		lvl++
		instrLevel[i] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
		for j := 0; j < in.nOut; j++ {
			wireLevel[in.out+j] = lvl
		}
	}

	prog := r1cs.Program{
		Instrs:   make([]r1cs.Instr, nbInstrs),
		Wires:    make([]uint32, 0, totalTerms),
		CoeffIdx: make([]uint32, 0, totalTerms),
		Levels:   make([]uint32, maxLevel+1),
	}
	if nbInstrs == 0 {
		prog.Levels = []uint32{0}
		return prog, nil
	}

	// Counting sort by level (stable): Levels[l] is where level l+1's
	// instructions start.
	counts := make([]uint32, maxLevel+1)
	for _, lvl := range instrLevel {
		counts[lvl]++ // levels are 1-based; counts[0] stays 0
	}
	for l := int32(1); l <= maxLevel; l++ {
		prog.Levels[l] = prog.Levels[l-1] + counts[l]
	}
	cursor := make([]uint32, maxLevel+1)
	copy(cursor[1:], prog.Levels[:maxLevel])

	interner := r1cs.NewCoeffInterner()
	emitLC := func(lc r1cs.LinearCombination) (uint32, uint32) {
		off := uint32(len(prog.Wires))
		for _, t := range lc {
			prog.Wires = append(prog.Wires, perm[t.Wire])
			prog.CoeffIdx = append(prog.CoeffIdx, interner.Intern(t.Coeff))
		}
		return off, uint32(len(prog.Wires))
	}
	for i := range b.tape {
		in := &b.tape[i]
		slot := cursor[instrLevel[i]]
		cursor[instrLevel[i]]++
		out := perm[in.out]
		// Multi-output instructions rely on their block staying
		// contiguous after permutation; non-public wires keep relative
		// order, so this only fails on a (mis-)recorded public block.
		for j := 1; j < in.nOut; j++ {
			if perm[in.out+j] != out+uint32(j) {
				return r1cs.Program{}, fmt.Errorf("frontend: tape output block %d..%d not contiguous after permutation", in.out, in.out+in.nOut-1)
			}
		}
		ins := r1cs.Instr{Op: in.op, Out: out, NOut: uint32(in.nOut)}
		ins.AOff, ins.AEnd = emitLC(in.a)
		if in.op == r1cs.OpMul {
			ins.BOff, ins.BEnd = emitLC(in.b)
		}
		prog.Instrs[slot] = ins
	}
	prog.Dict = interner.Dict()
	return prog, nil
}

// Finalize freezes the circuit into the legacy eager representation:
// the materialized System plus the full witness vector. It is a thin
// shim over Compile retained for existing call sites; new code should
// use Compile and keep the CompiledSystem for repeated solving.
func (b *Builder) Finalize() (*r1cs.System, []fr.Element, error) {
	res, err := b.Compile()
	if err != nil {
		return nil, nil, err
	}
	return res.System.ToSystem(), res.Witness, nil
}

// PublicValues extracts the public-input section (excluding the constant
// wire) from a finalized witness, in the order Verify expects.
func PublicValues(sys *r1cs.System, witness []fr.Element) []fr.Element {
	out := make([]fr.Element, sys.NbPublic-1)
	copy(out, witness[1:sys.NbPublic])
	return out
}
