package poly

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// vecToFile spills v into a fresh disk vector.
func vecToFile(t *testing.T, v []fr.Element) *VecFile {
	t.Helper()
	vf, err := CreateVecFile(t.TempDir(), len(v))
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.WriteAt(v, 0); err != nil {
		t.Fatal(err)
	}
	return vf
}

// requireFileEquals checks the disk vector matches want bit for bit.
func requireFileEquals(t *testing.T, vf *VecFile, want []fr.Element) {
	t.Helper()
	got := make([]fr.Element, vf.Len())
	if err := vf.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: disk %s != memory %s", i, got[i].String(), want[i].String())
		}
	}
}

// TestVecFileRoundtrip checks random-offset writes and reads are exact.
func TestVecFileRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 1000
	v := randPoly(rng, n)
	vf := vecToFile(t, v)
	defer vf.Close()
	for _, span := range [][2]int{{0, n}, {0, 1}, {n - 1, n}, {137, 613}} {
		got := make([]fr.Element, span[1]-span[0])
		if err := vf.ReadAt(got, span[0]); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != v[span[0]+i] {
				t.Fatalf("span %v element %d mismatch", span, i)
			}
		}
	}
}

// TestFFTFileMatchesMemory checks every out-of-core transform against
// its in-memory counterpart, element for element, across domain sizes
// (including the n=1 and n=2 degenerate shapes) and scratch budgets
// (whole-transform-in-memory down to zero scratch, forcing one, two,
// and log n out-of-core decimation levels).
func TestFFTFileMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []uint64{1, 2, 4, 64, 1 << 10} {
		d, err := NewDomain(n)
		if err != nil {
			t.Fatal(err)
		}
		bufLens := []int{int(n), int(n) / 2, int(n) / 4, int(n) / 8}
		if n <= 64 {
			// Degenerate budgets force ~log n out-of-core levels; the
			// file explosion is only affordable on small domains.
			bufLens = append(bufLens, 1, 0)
		}
		for _, bufLen := range bufLens {
			buf := make([]fr.Element, bufLen)
			type transform struct {
				name string
				mem  func(a []fr.Element)
				file func(vf *VecFile) error
			}
			for _, tr := range []transform{
				{"FFT", d.FFT, func(vf *VecFile) error { return d.FFTFile(vf, buf) }},
				{"IFFT", d.IFFT, func(vf *VecFile) error { return d.IFFTFile(vf, buf) }},
				{"FFTCoset", d.FFTCoset, func(vf *VecFile) error { return d.FFTCosetFile(vf, buf) }},
				{"IFFTCoset", d.IFFTCoset, func(vf *VecFile) error { return d.IFFTCosetFile(vf, buf) }},
			} {
				v := randPoly(rng, int(n))
				vf := vecToFile(t, v)
				if err := tr.file(vf); err != nil {
					t.Fatalf("n=%d buf=%d %s: %v", n, bufLen, tr.name, err)
				}
				tr.mem(v)
				requireFileEquals(t, vf, v)
				vf.Close()
			}
		}
	}
}

// TestMulPowersFileMatchesMemory checks the streamed power-scaling pass.
func TestMulPowersFileMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Odd length exercises a final partial window.
	v := randPoly(rng, (1<<15)+7)
	var s fr.Element
	s.SetUint64(11)
	vf := vecToFile(t, v)
	defer vf.Close()
	if err := MulPowersFile(vf, &s); err != nil {
		t.Fatal(err)
	}
	mulPowers(v, &s)
	requireFileEquals(t, vf, v)
}

// TestStreamMerge checks the two-file pointwise fold.
func TestStreamMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := (1 << 15) + 3
	a, b := randPoly(rng, n), randPoly(rng, n)
	va, vb := vecToFile(t, a), vecToFile(t, b)
	defer va.Close()
	defer vb.Close()
	if err := va.StreamMerge(vb, func(dst, src []fr.Element) {
		for i := range dst {
			dst[i].Mul(&dst[i], &src[i])
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		a[i].Mul(&a[i], &b[i])
	}
	requireFileEquals(t, va, a)
}
