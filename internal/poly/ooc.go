package poly

import (
	"fmt"
	"path/filepath"
	"strconv"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
)

// Bounded-memory FFT: the transforms below run over a disk-resident
// VecFile with a caller-chosen resident budget. Decimation-in-time
// levels are peeled off out-of-core —
//
//	X[k]      = Ê[k] + ω^k·Ô[k]
//	X[k+n/2]  = Ê[k] - ω^k·Ô[k]
//
// where Ê, Ô are the half-size DFTs (root ω²) of the even- and
// odd-indexed inputs — recursively, until a sub-transform fits the
// caller's scratch buffer and runs in memory with the ordinary
// butterfly network. Field arithmetic is exact and every fr value has
// a unique reduced Montgomery encoding, so the output equals the
// in-memory FFT of the same vector bit for bit; only the association
// of the work differs.
//
// Peak resident footprint: the scratch plus a few fixed streaming
// windows. A scratch of n/2 elements peels one level (two disk
// sub-vectors), n/4 peels two, and so on — each extra level trades one
// more streaming pass over the data for half the resident memory.

// oocSplit streams vf into its even- and odd-indexed halves, each a
// fresh disk vector beside vf.
func oocSplit(vf *VecFile, dir string) (evens, odds *VecFile, err error) {
	half := vf.Len() / 2
	if evens, err = CreateVecFile(dir, half); err != nil {
		return nil, nil, err
	}
	if odds, err = CreateVecFile(dir, half); err != nil {
		evens.Close()
		return nil, nil, err
	}
	fail := func(err error) (*VecFile, *VecFile, error) {
		evens.Close()
		odds.Close()
		return nil, nil, err
	}
	ew, ow := evens.NewWriter(), odds.NewWriter()
	wp := getWin()
	defer putWin(wp)
	win := *wp
	n := vf.Len()
	for start := 0; start < n; start += vecIOChunk {
		end := start + vecIOChunk
		if end > n {
			end = n
		}
		w := win[:end-start]
		if err := vf.ReadAt(w, start); err != nil {
			return fail(err)
		}
		// vecIOChunk is even, so windows never straddle a parity flip.
		for i := range w {
			if (start+i)&1 == 0 {
				ew.Append(&w[i])
			} else {
				ow.Append(&w[i])
			}
		}
	}
	if err := ew.Flush(); err != nil {
		return fail(fmt.Errorf("poly: out-of-core FFT split: %w", err))
	}
	if err := ow.Flush(); err != nil {
		return fail(fmt.Errorf("poly: out-of-core FFT split: %w", err))
	}
	return evens, odds, nil
}

// oocCombine merges the transformed halves into vf:
// vf[k] = E[k] + ω^k·O[k], vf[k+half] = E[k] - ω^k·O[k]. evens may be
// nil, in which case the first half resides in eBuf instead.
func oocCombine(vf *VecFile, evens *VecFile, eBuf []fr.Element, odds *VecFile, root *fr.Element) error {
	half := vf.Len() / 2
	op, ep, tp := getWin(), getWin(), getWin()
	defer putWin(op)
	defer putWin(ep)
	defer putWin(tp)
	ow, ew, twWin := *op, *ep, *tp
	for start := 0; start < half; start += vecIOChunk {
		end := start + vecIOChunk
		if end > half {
			end = half
		}
		c := end - start
		if err := odds.ReadAt(ow[:c], start); err != nil {
			return err
		}
		e := ew[:c]
		if evens != nil {
			if err := evens.ReadAt(e, start); err != nil {
				return err
			}
		} else {
			e = eBuf[start:end]
		}
		tw := twWin[:c]
		w := powUint64(*root, uint64(start))
		for i := range tw {
			tw[i] = w
			w.Mul(&w, root)
		}
		// (e, ow) ← (e + ω^k·o, e − ω^k·o) via the vector kernels. e is
		// a scratch window either way (ew, or a chunk of the caller's
		// discarded eBuf), so clobbering it in place is fine.
		fr.MulVecInto(ow[:c], ow[:c], tw)
		fr.ButterflyVec(e, ow[:c])
		if err := vf.WriteAt(e, start); err != nil {
			return err
		}
		if err := vf.WriteAt(ow[:c], start+half); err != nil {
			return err
		}
	}
	return nil
}

// fftFileCore runs the unscaled transform with the given root on vf.
// buf is the resident scratch; sub-transforms small enough to fit it
// run in memory, larger ones recurse with another out-of-core level.
// tr, when non-nil, records a span per out-of-core phase (split,
// in-memory sub-transform, combine) under label.
func fftFileCore(vf *VecFile, buf []fr.Element, root *fr.Element, tr *obs.Trace, label string) error {
	n := vf.Len()
	if n == 1 {
		return nil
	}
	if n <= len(buf) {
		// The whole transform fits the scratch: one read, one in-memory
		// butterfly network, one write.
		var sp *obs.Span
		if tr != nil {
			sp = tr.Span(label + "/mem" + strconv.Itoa(n))
		}
		defer sp.End()
		b := buf[:n]
		if err := vf.ReadAt(b, 0); err != nil {
			return err
		}
		d := Domain{N: uint64(n)}
		d.fftInner(b, root, nil, "")
		return vf.WriteAt(b, 0)
	}
	half := n / 2
	dir := filepath.Dir(vf.f.Name())
	var root2 fr.Element
	root2.Square(root) // root of the half-size sub-DFTs

	var spSplit *obs.Span
	if tr != nil {
		spSplit = tr.Span(label + "/split" + strconv.Itoa(n))
	}
	if half <= len(buf) {
		// Last out-of-core level: both sub-transforms run in the
		// scratch, odds round-tripping through their spill file so the
		// evens can stay resident for the combine.
		efile, odds, err := oocSplit(vf, dir)
		spSplit.End()
		if err != nil {
			return err
		}
		defer efile.Close()
		defer odds.Close()
		var spMem *obs.Span
		if tr != nil {
			spMem = tr.Span(label + "/mem" + strconv.Itoa(half) + "x2")
		}
		b := buf[:half]
		d := Domain{N: uint64(half)}
		if err := odds.ReadAt(b, 0); err != nil {
			return err
		}
		d.fftInner(b, &root2, nil, "")
		if err := odds.WriteAt(b, 0); err != nil {
			return err
		}
		if err := efile.ReadAt(b, 0); err != nil {
			return err
		}
		d.fftInner(b, &root2, nil, "")
		spMem.End()
		var spComb *obs.Span
		if tr != nil {
			spComb = tr.Span(label + "/combine" + strconv.Itoa(n))
		}
		defer spComb.End()
		return oocCombine(vf, nil, b, odds, root)
	}

	// Deeper: both halves recurse out-of-core.
	evens, odds, err := oocSplit(vf, dir)
	spSplit.End()
	if err != nil {
		return err
	}
	defer evens.Close()
	defer odds.Close()
	if err := fftFileCore(evens, buf, &root2, tr, label); err != nil {
		return err
	}
	if err := fftFileCore(odds, buf, &root2, tr, label); err != nil {
		return err
	}
	var spComb *obs.Span
	if tr != nil {
		spComb = tr.Span(label + "/combine" + strconv.Itoa(n))
	}
	defer spComb.End()
	return oocCombine(vf, evens, nil, odds, root)
}

// FFTFile evaluates the disk-resident coefficient vector on H in place,
// the out-of-core counterpart of FFT. buf is the resident scratch
// (any length; larger halves the number of streaming passes).
func (d *Domain) FFTFile(vf *VecFile, buf []fr.Element) error {
	return d.FFTFileTraced(vf, buf, nil, "")
}

// FFTFileTraced is FFTFile recording an overall span plus one span per
// out-of-core phase on tr under label; a nil tr is the untraced fast
// path.
func (d *Domain) FFTFileTraced(vf *VecFile, buf []fr.Element, tr *obs.Trace, label string) error {
	if err := d.checkFileLen(vf); err != nil {
		return err
	}
	sp := tr.Span(label)
	defer sp.End()
	return fftFileCore(vf, buf, &d.Gen, tr, label)
}

// IFFTFile interpolates disk-resident evaluations on H back to
// coefficients, the out-of-core counterpart of IFFT.
func (d *Domain) IFFTFile(vf *VecFile, buf []fr.Element) error {
	return d.IFFTFileTraced(vf, buf, nil, "")
}

// IFFTFileTraced is IFFTFile with per-phase span recording (see
// FFTFileTraced).
func (d *Domain) IFFTFileTraced(vf *VecFile, buf []fr.Element, tr *obs.Trace, label string) error {
	if err := d.checkFileLen(vf); err != nil {
		return err
	}
	sp := tr.Span(label)
	defer sp.End()
	if err := fftFileCore(vf, buf, &d.GenInv, tr, label); err != nil {
		return err
	}
	nInv := d.NInv
	return vf.StreamUpdate(func(_ int, v []fr.Element) {
		fr.ScalarMulVecInto(v, v, &nInv)
	})
}

func (d *Domain) checkFileLen(vf *VecFile) error {
	if uint64(vf.Len()) != d.N {
		return fmt.Errorf("poly: out-of-core FFT input length %d != domain size %d", vf.Len(), d.N)
	}
	return nil
}

// MulPowersFile multiplies element i by s^i in place, streaming — the
// out-of-core counterpart of mulPowers.
func MulPowersFile(vf *VecFile, s *fr.Element) error {
	return vf.StreamUpdate(func(start int, v []fr.Element) {
		cur := powUint64(*s, uint64(start))
		for i := range v {
			v[i].Mul(&v[i], &cur)
			cur.Mul(&cur, s)
		}
	})
}

// FFTCosetFile evaluates the disk-resident coefficient vector on the
// coset g·H in place.
func (d *Domain) FFTCosetFile(vf *VecFile, buf []fr.Element) error {
	return d.FFTCosetFileTraced(vf, buf, nil, "")
}

// FFTCosetFileTraced is FFTCosetFile with per-phase span recording
// (see FFTFileTraced).
func (d *Domain) FFTCosetFileTraced(vf *VecFile, buf []fr.Element, tr *obs.Trace, label string) error {
	if err := MulPowersFile(vf, &d.CosetShift); err != nil {
		return err
	}
	return d.FFTFileTraced(vf, buf, tr, label)
}

// IFFTCosetFile interpolates disk-resident evaluations on the coset g·H
// back to coefficients in place.
func (d *Domain) IFFTCosetFile(vf *VecFile, buf []fr.Element) error {
	return d.IFFTCosetFileTraced(vf, buf, nil, "")
}

// IFFTCosetFileTraced is IFFTCosetFile with per-phase span recording
// (see FFTFileTraced).
func (d *Domain) IFFTCosetFileTraced(vf *VecFile, buf []fr.Element, tr *obs.Trace, label string) error {
	if err := d.IFFTFileTraced(vf, buf, tr, label); err != nil {
		return err
	}
	return MulPowersFile(vf, &d.CosetShiftInv)
}
