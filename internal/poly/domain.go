// Package poly implements polynomial arithmetic over the BN254 scalar
// field: radix-2 FFT evaluation domains, coset transforms for quotient
// polynomials, Lagrange-basis evaluation for Groth16 trusted setup, and
// assorted helpers (Horner evaluation, vanishing polynomials, batch
// inversion wrappers).
package poly

import (
	"fmt"
	"math/bits"
	"strconv"
	"sync"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/par"
)

// Domain is a multiplicative subgroup H = {ω⁰, ..., ω^(N-1)} of F_r* of
// power-of-two order, together with the coset shift used to evaluate the
// Groth16 quotient polynomial off H.
type Domain struct {
	N             uint64
	LogN          int
	Gen           fr.Element // ω, primitive N-th root of unity
	GenInv        fr.Element
	NInv          fr.Element
	CosetShift    fr.Element // multiplicative generator g (outside H)
	CosetShiftInv fr.Element
}

// NewDomain returns the smallest power-of-two domain with at least
// minSize elements.
func NewDomain(minSize uint64) (*Domain, error) {
	if minSize == 0 {
		minSize = 1
	}
	n := nextPow2(minSize)
	w, err := fr.RootOfUnity(n)
	if err != nil {
		return nil, err
	}
	d := &Domain{N: n, LogN: bits.TrailingZeros64(n), Gen: w}
	d.GenInv.Inverse(&d.Gen)
	var nEl fr.Element
	nEl.SetUint64(n)
	d.NInv.Inverse(&nEl)
	d.CosetShift = fr.MultiplicativeGenerator()
	d.CosetShiftInv.Inverse(&d.CosetShift)
	return d, nil
}

// nextPow2 returns the smallest power of two ≥ v.
func nextPow2(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(v-1))
}

// Element returns ωⁱ.
func (d *Domain) Element(i uint64) fr.Element {
	return powUint64(d.Gen, i)
}

// powUint64 returns base^exp by square-and-multiply.
func powUint64(base fr.Element, exp uint64) fr.Element {
	var res fr.Element
	res.SetOne()
	for ; exp > 0; exp >>= 1 {
		if exp&1 == 1 {
			res.Mul(&res, &base)
		}
		base.Square(&base)
	}
	return res
}

// bitReverse permutes a into bit-reversed index order in place.
func bitReverse(a []fr.Element) {
	n := uint(len(a))
	shift := 64 - uint(bits.TrailingZeros(n))
	for i := uint(0); i < n; i++ {
		j := bits.Reverse64(uint64(i)) >> shift
		if uint64(i) < j {
			a[i], a[j] = a[j], a[i]
		}
	}
}

// twiddlePool recycles the flat twiddle tables between fftInner calls.
// The out-of-core pipeline runs thousands of tile FFTs of identical
// size, so the table buffer is hot.
var twiddlePool VecPool

// fftTwiddles builds the flat twiddle table for an n-point FFT (n ≥ 4,
// power of two) with the given root of unity. The level with butterfly
// half-width h occupies tw[h-1 : 2h-1] and holds (root^(n/2h))^j for
// j < h. Only the top level (h = n/2, the plain powers of root) costs
// field multiplications; every lower level is a strided gather from it,
// since its twiddle step is a power of the top level's. The table is
// keyed off the root argument, not the Domain — the out-of-core tile
// FFTs run on ad-hoc domains whose only valid field is N.
func fftTwiddles(n int, root *fr.Element) []fr.Element {
	tw := twiddlePool.Get(n - 1)
	top := tw[n/2-1:]
	par.Range(n/2, func(js, je int) {
		w := powUint64(*root, uint64(js))
		for j := js; j < je; j++ {
			top[j] = w
			w.Mul(&w, root)
		}
	})
	for half := n / 4; half >= 1; half >>= 1 {
		level := tw[half-1 : 2*half-1]
		stride := (n / 2) / half
		for j := range level {
			level[j] = top[j*stride]
		}
	}
	return tw
}

// fftInner runs the iterative Cooley-Tukey butterfly network with the
// given root of unity (ω for forward, ω⁻¹ for inverse). Twiddles come
// precomputed from a pooled flat table, so the inner loops are pure
// vector kernels (fr.TwiddleButterflyVec). Every level is
// data-parallel: early levels have many independent blocks (split
// across blocks), late levels have few wide blocks (split inside each
// block).
//
// tr, when non-nil, records one span per butterfly level under label —
// the per-level FFT attribution of the telemetry subsystem. The nil
// path costs only the nil checks.
func (d *Domain) fftInner(a []fr.Element, root *fr.Element, tr *obs.Trace, label string) {
	n := len(a)
	if uint64(n) != d.N {
		panic(fmt.Sprintf("poly: FFT input length %d != domain size %d", n, d.N))
	}
	if n == 1 {
		return
	}
	bitReverse(a)

	// First level: twiddle ≡ 1, pure add/sub butterflies.
	var sp *obs.Span
	if tr != nil {
		sp = tr.Span(label + "/len2")
	}
	par.Range(n/2, func(bs, be int) {
		for b := bs; b < be; b++ {
			fr.Butterfly(&a[2*b], &a[2*b+1])
		}
	})
	sp.End()
	if n == 2 {
		return
	}

	tw := fftTwiddles(n, root)
	defer twiddlePool.Put(tw)
	for length := 4; length <= n; length <<= 1 {
		if tr != nil {
			sp = tr.Span(label + "/len" + strconv.Itoa(length))
		}
		half := length >> 1
		level := tw[half-1 : 2*half-1]
		nbBlocks := n / length
		if nbBlocks >= half {
			par.Range(nbBlocks, func(bs, be int) {
				for b := bs; b < be; b++ {
					start := b * length
					fr.TwiddleButterflyVec(a[start:start+half], a[start+half:start+length], level)
				}
			})
		} else {
			for start := 0; start < n; start += length {
				par.Range(half, func(js, je int) {
					fr.TwiddleButterflyVec(a[start+js:start+je], a[start+half+js:start+half+je], level[js:je])
				})
			}
		}
		if tr != nil {
			sp.End()
		}
	}
}

// FFT evaluates the coefficient vector a on H in place (natural order:
// out[i] = Σ a[j]·ω^(ij)).
func (d *Domain) FFT(a []fr.Element) { d.fftInner(a, &d.Gen, nil, "") }

// FFTTraced is FFT recording an overall span plus one span per
// butterfly level on tr under label. A nil tr is the untraced fast
// path.
func (d *Domain) FFTTraced(a []fr.Element, tr *obs.Trace, label string) {
	sp := tr.Span(label)
	d.fftInner(a, &d.Gen, tr, label)
	sp.End()
}

// IFFT interpolates evaluations on H back to coefficients in place.
func (d *Domain) IFFT(a []fr.Element) { d.ifftTraced(a, nil, "") }

// IFFTTraced is IFFT with per-level span recording (see FFTTraced).
func (d *Domain) IFFTTraced(a []fr.Element, tr *obs.Trace, label string) {
	sp := tr.Span(label)
	d.ifftTraced(a, tr, label)
	sp.End()
}

func (d *Domain) ifftTraced(a []fr.Element, tr *obs.Trace, label string) {
	d.fftInner(a, &d.GenInv, tr, label)
	par.Range(len(a), func(start, end int) {
		fr.ScalarMulVecInto(a[start:end], a[start:end], &d.NInv)
	})
}

// mulPowers multiplies a[i] by s^i in place, seeding each parallel chunk
// with s^start.
func mulPowers(a []fr.Element, s *fr.Element) {
	par.Range(len(a), func(start, end int) {
		cur := powUint64(*s, uint64(start))
		for i := start; i < end; i++ {
			a[i].Mul(&a[i], &cur)
			cur.Mul(&cur, s)
		}
	})
}

// FFTCoset evaluates the coefficient vector on the coset g·H in place.
func (d *Domain) FFTCoset(a []fr.Element) {
	mulPowers(a, &d.CosetShift)
	d.FFT(a)
}

// FFTCosetTraced is FFTCoset with per-level span recording (see
// FFTTraced).
func (d *Domain) FFTCosetTraced(a []fr.Element, tr *obs.Trace, label string) {
	sp := tr.Span(label)
	mulPowers(a, &d.CosetShift)
	d.fftInner(a, &d.Gen, tr, label)
	sp.End()
}

// IFFTCoset interpolates evaluations on the coset g·H back to
// coefficients in place.
func (d *Domain) IFFTCoset(a []fr.Element) {
	d.IFFT(a)
	mulPowers(a, &d.CosetShiftInv)
}

// IFFTCosetTraced is IFFTCoset with per-level span recording (see
// FFTTraced).
func (d *Domain) IFFTCosetTraced(a []fr.Element, tr *obs.Trace, label string) {
	sp := tr.Span(label)
	d.ifftTraced(a, tr, label)
	mulPowers(a, &d.CosetShiftInv)
	sp.End()
}

// VanishingEval returns Z_H(x) = x^N - 1, computed with LogN squarings.
func (d *Domain) VanishingEval(x *fr.Element) fr.Element {
	xn := *x
	for i := 0; i < d.LogN; i++ {
		xn.Square(&xn)
	}
	var one fr.Element
	one.SetOne()
	xn.Sub(&xn, &one)
	return xn
}

// VanishingOnCoset returns the constant value Z_H(g·ωⁱ) = g^N - 1, which
// is independent of i — the property that makes coset division cheap.
func (d *Domain) VanishingOnCoset() fr.Element {
	return d.VanishingEval(&d.CosetShift)
}

// LagrangeBasisAt evaluates every Lagrange basis polynomial L_i at the
// point tau in O(N): L_i(τ) = ωⁱ·(τ^N - 1) / (N·(τ - ωⁱ)). If τ lands on
// the domain itself the closed form degenerates; the indicator vector is
// returned instead.
func (d *Domain) LagrangeBasisAt(tau *fr.Element) []fr.Element {
	n := int(d.N)
	out := make([]fr.Element, n)

	// denominators τ - ωⁱ
	dens := make([]fr.Element, n)
	onDomain := -1
	var onDomainMu sync.Mutex
	par.Range(n, func(start, end int) {
		wi := powUint64(d.Gen, uint64(start))
		for i := start; i < end; i++ {
			dens[i].Sub(tau, &wi)
			if dens[i].IsZero() {
				onDomainMu.Lock()
				onDomain = i
				onDomainMu.Unlock()
			}
			wi.Mul(&wi, &d.Gen)
		}
	})
	if onDomain >= 0 {
		out[onDomain].SetOne()
		return out
	}

	z := d.VanishingEval(tau)
	var zOverN fr.Element
	zOverN.Mul(&z, &d.NInv)

	invs := fr.BatchInvert(dens)
	par.Range(n, func(start, end int) {
		wi := powUint64(d.Gen, uint64(start))
		for i := start; i < end; i++ {
			out[i].Mul(&zOverN, &invs[i])
			out[i].Mul(&out[i], &wi)
			wi.Mul(&wi, &d.Gen)
		}
	})
	return out
}

// EvalPoly evaluates the coefficient vector at x with Horner's rule.
func EvalPoly(coeffs []fr.Element, x *fr.Element) fr.Element {
	var res fr.Element
	for i := len(coeffs) - 1; i >= 0; i-- {
		res.Mul(&res, x)
		res.Add(&res, &coeffs[i])
	}
	return res
}

// MulNaive returns the product of two coefficient vectors in O(n·m);
// used as a test oracle and for the small polynomials in gadget
// preprocessing.
func MulNaive(a, b []fr.Element) []fr.Element {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]fr.Element, len(a)+len(b)-1)
	for i := range a {
		if a[i].IsZero() {
			continue
		}
		for j := range b {
			var t fr.Element
			t.Mul(&a[i], &b[j])
			out[i+j].Add(&out[i+j], &t)
		}
	}
	return out
}
