package poly

import (
	"sync"

	"zkrownn/internal/bn254/fr"
)

// VecPool recycles size-n fr vectors between FFT pipeline stages and
// across proofs. The quotient pipeline needs a constant number of
// domain-sized vectors per proof; without reuse each proof allocates
// (and the GC retires) several multi-MB slices, and the prover's peak
// heap carries every intermediate at once. The pool is keyed by exact
// capacity — FFT domains are powers of two, so a long-lived prover sees
// only a handful of sizes.
//
// The zero value is ready to use. Get returns a zeroed vector; Put
// recycles one (the caller must not retain references to it).
type VecPool struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool
}

func (p *VecPool) sizePool(n int) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pools == nil {
		p.pools = make(map[int]*sync.Pool)
	}
	sp, ok := p.pools[n]
	if !ok {
		sp = &sync.Pool{}
		p.pools[n] = sp
	}
	return sp
}

// Get returns a zeroed vector of length n, reusing a recycled one when
// available. Zeroing costs one memclr pass — noise next to the FFT work
// the vector is destined for, and it lets callers rely on make-like
// semantics.
func (p *VecPool) Get(n int) []fr.Element {
	if v := p.sizePool(n).Get(); v != nil {
		s := v.([]fr.Element)
		clear(s)
		return s
	}
	return make([]fr.Element, n)
}

// Put recycles a vector obtained from Get (or any vector whose capacity
// equals its intended pool size). The slice is re-extended to its full
// capacity so sub-sliced views (e.g. a quotient's n-1 coefficients) can
// be returned directly.
func (p *VecPool) Put(v []fr.Element) {
	if cap(v) == 0 {
		return
	}
	v = v[:cap(v)]
	p.sizePool(len(v)).Put(v)
}
