package poly

import (
	"math/big"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

func randFr(rng *rand.Rand) fr.Element {
	var e fr.Element
	b := make([]byte, 40)
	rng.Read(b)
	e.SetBigInt(new(big.Int).SetBytes(b))
	return e
}

func randPoly(rng *rand.Rand, n int) []fr.Element {
	out := make([]fr.Element, n)
	for i := range out {
		out[i] = randFr(rng)
	}
	return out
}

func TestNextPow2(t *testing.T) {
	cases := map[uint64]uint64{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, n := range []uint64{1, 2, 4, 16, 64, 256} {
		d, err := NewDomain(n)
		if err != nil {
			t.Fatal(err)
		}
		coeffs := randPoly(rng, int(d.N))
		work := append([]fr.Element(nil), coeffs...)
		d.FFT(work)
		d.IFFT(work)
		for i := range coeffs {
			if !work[i].Equal(&coeffs[i]) {
				t.Fatalf("FFT/IFFT round trip failed at n=%d index %d", n, i)
			}
		}
	}
}

func TestFFTMatchesHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	d, err := NewDomain(32)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := randPoly(rng, int(d.N))
	evals := append([]fr.Element(nil), coeffs...)
	d.FFT(evals)
	for i := uint64(0); i < d.N; i++ {
		x := d.Element(i)
		want := EvalPoly(coeffs, &x)
		if !evals[i].Equal(&want) {
			t.Fatalf("FFT disagrees with Horner at %d", i)
		}
	}
}

func TestCosetFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	d, err := NewDomain(64)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := randPoly(rng, int(d.N))
	work := append([]fr.Element(nil), coeffs...)
	d.FFTCoset(work)
	d.IFFTCoset(work)
	for i := range coeffs {
		if !work[i].Equal(&coeffs[i]) {
			t.Fatalf("coset round trip failed at %d", i)
		}
	}
}

func TestCosetFFTMatchesHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	d, err := NewDomain(16)
	if err != nil {
		t.Fatal(err)
	}
	coeffs := randPoly(rng, int(d.N))
	evals := append([]fr.Element(nil), coeffs...)
	d.FFTCoset(evals)
	for i := uint64(0); i < d.N; i++ {
		x := d.Element(i)
		x.Mul(&x, &d.CosetShift)
		want := EvalPoly(coeffs, &x)
		if !evals[i].Equal(&want) {
			t.Fatalf("coset FFT disagrees with Horner at %d", i)
		}
	}
}

func TestVanishing(t *testing.T) {
	d, err := NewDomain(32)
	if err != nil {
		t.Fatal(err)
	}
	// Z vanishes on H.
	for _, i := range []uint64{0, 1, 7, 31} {
		x := d.Element(i)
		z := d.VanishingEval(&x)
		if !z.IsZero() {
			t.Fatalf("Z(ω^%d) != 0", i)
		}
	}
	// Z is the same non-zero constant across the coset.
	zc := d.VanishingOnCoset()
	if zc.IsZero() {
		t.Fatal("Z on coset is zero; coset intersects H")
	}
	for _, i := range []uint64{1, 9, 20} {
		x := d.Element(i)
		x.Mul(&x, &d.CosetShift)
		z := d.VanishingEval(&x)
		if !z.Equal(&zc) {
			t.Fatal("Z not constant on coset")
		}
	}
}

func TestLagrangeBasisAt(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	d, err := NewDomain(16)
	if err != nil {
		t.Fatal(err)
	}
	tau := randFr(rng)
	basis := d.LagrangeBasisAt(&tau)

	// Σ coeffs[i]·L_i(τ) must equal the interpolated polynomial at τ.
	evals := randPoly(rng, int(d.N))
	var viaBasis fr.Element
	for i := range evals {
		var t1 fr.Element
		t1.Mul(&evals[i], &basis[i])
		viaBasis.Add(&viaBasis, &t1)
	}
	coeffs := append([]fr.Element(nil), evals...)
	d.IFFT(coeffs)
	viaHorner := EvalPoly(coeffs, &tau)
	if !viaBasis.Equal(&viaHorner) {
		t.Fatal("Lagrange basis evaluation disagrees with interpolation")
	}
}

func TestLagrangeBasisOnDomainPoint(t *testing.T) {
	d, err := NewDomain(8)
	if err != nil {
		t.Fatal(err)
	}
	x := d.Element(3)
	basis := d.LagrangeBasisAt(&x)
	for i := range basis {
		if i == 3 {
			if !basis[i].IsOne() {
				t.Fatal("L_3(ω³) != 1")
			}
		} else if !basis[i].IsZero() {
			t.Fatalf("L_%d(ω³) != 0", i)
		}
	}
}

func TestMulNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	a := randPoly(rng, 5)
	b := randPoly(rng, 7)
	prod := MulNaive(a, b)
	x := randFr(rng)
	ea := EvalPoly(a, &x)
	eb := EvalPoly(b, &x)
	var want fr.Element
	want.Mul(&ea, &eb)
	got := EvalPoly(prod, &x)
	if !got.Equal(&want) {
		t.Fatal("naive multiplication wrong")
	}
	if MulNaive(nil, a) != nil {
		t.Fatal("empty operand should give nil")
	}
}

func TestFFTMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	a := randPoly(rng, 10)
	b := randPoly(rng, 12)
	want := MulNaive(a, b)

	d, err := NewDomain(uint64(len(a) + len(b)))
	if err != nil {
		t.Fatal(err)
	}
	fa := make([]fr.Element, d.N)
	fb := make([]fr.Element, d.N)
	copy(fa, a)
	copy(fb, b)
	d.FFT(fa)
	d.FFT(fb)
	for i := range fa {
		fa[i].Mul(&fa[i], &fb[i])
	}
	d.IFFT(fa)
	for i := range want {
		if !fa[i].Equal(&want[i]) {
			t.Fatalf("FFT product mismatch at %d", i)
		}
	}
	for i := len(want); i < len(fa); i++ {
		if !fa[i].IsZero() {
			t.Fatal("FFT product has spurious high coefficients")
		}
	}
}
