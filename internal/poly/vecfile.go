package poly

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"zkrownn/internal/bn254/fr"
)

// Out-of-core vectors: a VecFile is a disk-resident vector of field
// elements, the storage behind the bounded-memory FFT pipeline. At
// paper scale one FFT-domain vector is tens of MB; the quotient
// pipeline needs several of them, and an out-of-core prover cannot
// afford to keep even one fully resident. Elements are stored as four
// little-endian limbs with the Montgomery form preserved bit-for-bit,
// so a spill/load roundtrip is exact and every downstream field
// operation produces the same bits it would have in RAM.

// VecElemSize is the on-disk footprint of one field element.
const VecElemSize = 8 * fr.Limbs

// vecIOChunk is the element count of one streaming window (1 MiB).
const vecIOChunk = 1 << 15

// VecFile is a fixed-length disk-resident vector of fr elements.
type VecFile struct {
	f *os.File
	n int
}

// CreateVecFile creates an empty (zeroed) disk vector of n elements in
// dir (the system temp directory when dir is empty). The file is
// sparse until written.
func CreateVecFile(dir string, n int) (*VecFile, error) {
	f, err := os.CreateTemp(dir, "zkrownn-vec-*.ooc")
	if err != nil {
		return nil, fmt.Errorf("poly: vec file: %w", err)
	}
	if err := f.Truncate(int64(n) * VecElemSize); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("poly: vec file: %w", err)
	}
	return &VecFile{f: f, n: n}, nil
}

// Len returns the vector length in elements.
func (vf *VecFile) Len() int { return vf.n }

// Close releases and removes the backing file.
func (vf *VecFile) Close() error {
	name := vf.f.Name()
	err := vf.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// encodeElems serializes elements into buf (len(v)*VecElemSize bytes).
func encodeElems(buf []byte, v []fr.Element) {
	for i := range v {
		for l := 0; l < fr.Limbs; l++ {
			binary.LittleEndian.PutUint64(buf[i*VecElemSize+8*l:], v[i][l])
		}
	}
}

// decodeElems deserializes len(v) elements from buf.
func decodeElems(v []fr.Element, buf []byte) {
	for i := range v {
		for l := 0; l < fr.Limbs; l++ {
			v[i][l] = binary.LittleEndian.Uint64(buf[i*VecElemSize+8*l:])
		}
	}
}

// The pools below recycle the streaming machinery's fixed-size pieces —
// 1 MiB codec windows, element windows, bufio writers. They are hot
// (hundreds of uses per out-of-core quotient) and allocating each use
// would churn the very GC the pipeline exists to relieve: at one P
// under a memory limit, tens of MB of transient windows linger as
// floating garbage and show up in peak RSS.
var vecBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, vecIOChunk*VecElemSize)
		return &b
	},
}

var vecWinPool = sync.Pool{
	New: func() any {
		w := make([]fr.Element, vecIOChunk)
		return &w
	},
}

// getWin borrows one element window; hand the pointer back to
// putWin when done.
func getWin() *[]fr.Element  { return vecWinPool.Get().(*[]fr.Element) }
func putWin(w *[]fr.Element) { vecWinPool.Put(w) }

var vecBWPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, 1<<20) },
}

// WriteAt stores v at element offset start.
func (vf *VecFile) WriteAt(v []fr.Element, start int) error {
	bp := vecBufPool.Get().(*[]byte)
	defer vecBufPool.Put(bp)
	buf := *bp
	for len(v) > 0 {
		c := len(v)
		if c > vecIOChunk {
			c = vecIOChunk
		}
		encodeElems(buf[:c*VecElemSize], v[:c])
		if _, err := vf.f.WriteAt(buf[:c*VecElemSize], int64(start)*VecElemSize); err != nil {
			return fmt.Errorf("poly: vec write at %d: %w", start, err)
		}
		v = v[c:]
		start += c
	}
	return nil
}

// ReadAt loads len(v) elements from element offset start.
func (vf *VecFile) ReadAt(v []fr.Element, start int) error {
	bp := vecBufPool.Get().(*[]byte)
	defer vecBufPool.Put(bp)
	buf := *bp
	for len(v) > 0 {
		c := len(v)
		if c > vecIOChunk {
			c = vecIOChunk
		}
		if _, err := vf.f.ReadAt(buf[:c*VecElemSize], int64(start)*VecElemSize); err != nil {
			return fmt.Errorf("poly: vec read at %d: %w", start, err)
		}
		decodeElems(v[:c], buf[:c*VecElemSize])
		v = v[c:]
		start += c
	}
	return nil
}

// vecWriter streams sequential element writes through one buffer.
type vecWriter struct {
	bw  *bufio.Writer
	buf [VecElemSize]byte
}

// NewWriter returns a buffered sequential writer positioned at element
// 0. Interleaving it with WriteAt/ReadAt on the same VecFile is the
// caller's responsibility. The writer is single-use: Flush finalizes it
// and recycles its buffer.
func (vf *VecFile) NewWriter() *vecWriter {
	vf.f.Seek(0, io.SeekStart)
	bw := vecBWPool.Get().(*bufio.Writer)
	bw.Reset(vf.f)
	return &vecWriter{bw: bw}
}

// Append writes one element (bufio errors are sticky; Flush reports).
func (w *vecWriter) Append(e *fr.Element) {
	for l := 0; l < fr.Limbs; l++ {
		binary.LittleEndian.PutUint64(w.buf[8*l:], e[l])
	}
	w.bw.Write(w.buf[:]) //nolint:errcheck
}

// Flush commits buffered writes and retires the writer.
func (w *vecWriter) Flush() error {
	err := w.bw.Flush()
	w.bw.Reset(io.Discard) // drop the file reference before pooling
	vecBWPool.Put(w.bw)
	w.bw = nil
	return err
}

// StreamUpdate rewrites the vector in place: fn receives each loaded
// window (element offset start) and mutates it before it is stored
// back. Peak memory is one window.
func (vf *VecFile) StreamUpdate(fn func(start int, v []fr.Element)) error {
	vp := getWin()
	defer putWin(vp)
	v := *vp
	for start := 0; start < vf.n; start += vecIOChunk {
		end := start + vecIOChunk
		if end > vf.n {
			end = vf.n
		}
		w := v[:end-start]
		if err := vf.ReadAt(w, start); err != nil {
			return err
		}
		fn(start, w)
		if err := vf.WriteAt(w, start); err != nil {
			return err
		}
	}
	return nil
}

// StreamMerge folds other into vf window by window:
// fn(dst, src) mutates dst = vf[start:end] given src = other[start:end].
// Both vectors must have equal length; peak memory is two windows.
func (vf *VecFile) StreamMerge(other *VecFile, fn func(dst, src []fr.Element)) error {
	if other.n != vf.n {
		return fmt.Errorf("poly: vec merge length mismatch %d != %d", other.n, vf.n)
	}
	dp, sp := getWin(), getWin()
	defer putWin(dp)
	defer putWin(sp)
	dst, src := *dp, *sp
	for start := 0; start < vf.n; start += vecIOChunk {
		end := start + vecIOChunk
		if end > vf.n {
			end = vf.n
		}
		d, s := dst[:end-start], src[:end-start]
		if err := vf.ReadAt(d, start); err != nil {
			return err
		}
		if err := other.ReadAt(s, start); err != nil {
			return err
		}
		fn(d, s)
		if err := vf.WriteAt(d, start); err != nil {
			return err
		}
	}
	return nil
}
