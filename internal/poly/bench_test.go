package poly

import (
	"math/rand"
	"testing"
)

func benchmarkFFT(b *testing.B, n uint64) {
	d, err := NewDomain(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(n)))
	coeffs := randPoly(rng, int(d.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := append(coeffs[:0:0], coeffs...)
		d.FFT(work)
	}
}

func BenchmarkFFT4096(b *testing.B)  { benchmarkFFT(b, 4096) }
func BenchmarkFFT65536(b *testing.B) { benchmarkFFT(b, 65536) }

func BenchmarkLagrangeBasis4096(b *testing.B) {
	d, err := NewDomain(4096)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	tau := randFr(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.LagrangeBasisAt(&tau)
	}
}
