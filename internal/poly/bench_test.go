package poly

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

func benchmarkFFT(b *testing.B, n uint64) {
	d, err := NewDomain(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(n)))
	coeffs := randPoly(rng, int(d.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := append(coeffs[:0:0], coeffs...)
		d.FFT(work)
	}
}

func BenchmarkFFT4096(b *testing.B)  { benchmarkFFT(b, 4096) }
func BenchmarkFFT65536(b *testing.B) { benchmarkFFT(b, 65536) }

// BenchmarkFFTParallel pins GOMAXPROCS to measure how the per-level
// butterfly parallelism scales with cores. Run with
// `go test -bench FFTParallel ./internal/poly` and compare the /procs=1
// row against the highest one available on the host.
func BenchmarkFFTParallel(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		if procs > runtime.NumCPU() && procs != 1 {
			// Still report it: goroutines timeshare, documenting the ceiling.
			if procs > 2*runtime.NumCPU() {
				continue
			}
		}
		b.Run(fmt.Sprintf("n=262144/procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			benchmarkFFT(b, 262144)
		})
	}
}

func BenchmarkLagrangeBasis4096(b *testing.B) {
	d, err := NewDomain(4096)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	tau := randFr(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.LagrangeBasisAt(&tau)
	}
}
