package core

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/nn"
)

// TestDeeperLayerExtraction exercises the paper's §III-B.6 claim:
// "ZKROWNN still works when the watermark is embedded in deeper layers,
// at the cost of higher prover complexity." The circuit evaluates two
// dense layers before extraction.
func TestDeeperLayerExtraction(t *testing.T) {
	p := fixpoint.Params{FracBits: 12, MagBits: 40}
	rng := rand.New(rand.NewSource(400))

	// Random two-hidden-layer quantized MLP; watermark at layer index 3
	// (the second ReLU).
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, p, 10, 14),
			{Kind: "relu", Out: 14},
			randQuantDense(rng, p, 14, 12),
			{Kind: "relu", Out: 12},
		},
	}
	ck := randCircuitKey(rng, p, 10, 12, 8, 2)
	ck.LayerIndex = 3

	art, err := ExtractionCircuit(q, ck, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("deep-layer circuit unsatisfied at %d", bad)
	}

	// Higher prover complexity: constraints must exceed the first-layer
	// version of the same network.
	ckShallow := randCircuitKey(rng, p, 10, 14, 8, 2)
	ckShallow.LayerIndex = 1
	shallow, err := ExtractionCircuit(q, ckShallow, 8)
	if err != nil {
		t.Fatal(err)
	}
	if art.System.NbConstraints() <= shallow.System.NbConstraints() {
		t.Fatalf("deeper extraction should cost more: %d vs %d",
			art.System.NbConstraints(), shallow.System.NbConstraints())
	}
}

// TestMaxPoolInExtractionPrefix covers Table II's MP layers appearing
// before l_wm: conv → relu → maxpool → watermark.
func TestMaxPoolInExtractionPrefix(t *testing.T) {
	p := fixpoint.Params{FracBits: 12, MagBits: 40}
	rng := rand.New(rand.NewSource(401))

	conv := randQuantConv(rng, p, gadgets.Conv3DShape{
		InC: 2, InH: 6, InW: 6, OutC: 3, K: 3, S: 2,
	})
	oh, ow := 2, 2 // (6-3)/2+1 = 2
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			conv,
			{Kind: "relu", Out: 3 * oh * ow},
			{Kind: "maxpool", InC: 3, InH: oh, InW: ow, K: 2, S: 1},
		},
	}
	actDim := 3 * 1 * 1 // (2-2)/1+1 = 1
	ck := randCircuitKey(rng, p, 2*6*6, actDim, 4, 2)
	ck.LayerIndex = 2

	art, err := ExtractionCircuit(q, ck, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("maxpool circuit unsatisfied at %d", bad)
	}

	// The circuit claim must agree with the quantized simulator run over
	// the same network.
	claimFromCircuit := art.PublicInputs()[art.System.NbPublic-2]
	_ = claimFromCircuit // claim == 1 because maxErrors == nbBits
	var one fr.Element
	one.SetOne()
	pub := art.PublicInputs()
	if !pub[len(pub)-1].Equal(&one) {
		t.Fatal("maxErrors = nbBits must always yield claim 1")
	}
}

// TestSigmoidActivationNetwork covers the paper's note that sigmoid
// activations are supported as an alternative to ReLU.
func TestSigmoidActivationNetwork(t *testing.T) {
	p := fixpoint.Params{FracBits: 12, MagBits: 40}
	rng := rand.New(rand.NewSource(402))
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, p, 8, 10),
			{Kind: "sigmoid", Out: 10},
		},
	}
	ck := randCircuitKey(rng, p, 8, 10, 4, 2)
	art, err := ExtractionCircuit(q, ck, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("sigmoid-activation circuit unsatisfied at %d", bad)
	}

	// Cross-check the circuit's layer activations against the quantized
	// simulator on the first trigger.
	sim, err := q.ForwardUpTo(ck.Triggers[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) != 10 {
		t.Fatal("simulator output wrong length")
	}
}

// TestWitnessTamperingUnsatisfiable: flipping any private witness value
// after circuit construction must violate some constraint (soundness of
// the eager builder's wire bookkeeping).
func TestWitnessTamperingUnsatisfiable(t *testing.T) {
	p := fixpoint.Params{FracBits: 12, MagBits: 40}
	rng := rand.New(rand.NewSource(403))
	art, err := BenchMLPExtractionCircuit(p, 6, 8, 4, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatal("baseline witness unsatisfied")
	}
	tampered := 0
	for trial := 0; trial < 20; trial++ {
		idx := art.System.NbPublic + rng.Intn(art.System.NbPrivate())
		w := append([]fr.Element(nil), art.Witness...)
		var delta fr.Element
		delta.SetUint64(uint64(rng.Intn(1000) + 1))
		w[idx].Add(&w[idx], &delta)
		if ok, _ := art.System.IsSatisfied(w); !ok {
			tampered++
		}
	}
	// Some wires are slack (e.g. unreferenced bits would be caught by
	// booleanity), but the vast majority must trip a constraint.
	if tampered < 15 {
		t.Fatalf("only %d/20 tamperings detected", tampered)
	}
}
