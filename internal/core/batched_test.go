package core

import (
	"fmt"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
	"zkrownn/internal/watermark"
)

// batchP is the smoke-scale fixed-point format of the batched tests.
var batchP = fixpoint.Params{FracBits: 8, MagBits: 36}

// tinyQuantNet builds a small dense+relu quantized network with
// seed-dependent weights (fixed architecture).
func tinyQuantNet(seed int64, in, hidden int) *nn.QuantizedNetwork {
	rng := rand.New(rand.NewSource(seed))
	return &nn.QuantizedNetwork{
		Params: batchP,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, batchP, in, hidden),
			{Kind: "relu", Out: hidden},
		},
	}
}

// TestBatchedExtractionDegeneratesToSingle: k = 1 must be EXACTLY the
// single-slot circuit — same digest, names, and layout — so registry
// IDs and key caches are shared between the two entry points.
func TestBatchedExtractionDegeneratesToSingle(t *testing.T) {
	q := tinyQuantNet(1, 5, 3)
	ck := randCircuitKey(rand.New(rand.NewSource(9)), batchP, 5, 3, 4, 2)

	single, err := ExtractionCircuit(q, ck, 2)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := BatchedExtractionCircuit(q, ck, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.System.DigestHex() != batched.System.DigestHex() {
		t.Fatal("k=1 batched circuit digest differs from ExtractionCircuit")
	}
	if single.Slots() != 1 || batched.Slots() != 1 {
		t.Fatalf("slots: single %d batched %d, want 1", single.Slots(), batched.Slots())
	}
	last := single.System.PublicNames[single.System.NbPublic-1]
	if last != "claim" {
		t.Fatalf("k=1 claim wire named %q", last)
	}
}

// TestBatchedExtractionSolveOracle: the batched circuit's recorded
// solver must reproduce the eager witness, and each slot's claim must
// equal the claim the single-slot circuit computes for the same model.
func TestBatchedExtractionSolveOracle(t *testing.T) {
	const k = 3
	q := tinyQuantNet(2, 5, 3)
	ck := randCircuitKey(rand.New(rand.NewSource(10)), batchP, 5, 3, 4, 2)

	art, err := BatchedExtractionCircuit(q, ck, 2, k)
	if err != nil {
		t.Fatal(err)
	}
	if art.Slots() != k {
		t.Fatalf("slots %d, want %d", art.Slots(), k)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("eager witness violates constraint %d", bad)
	}
	solved, err := art.System.SolveAssignment(art.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solved {
		if !solved[i].Equal(&art.Witness[i]) {
			t.Fatalf("wire %d: solver %v != eager %v", i, solved[i], art.Witness[i])
		}
	}

	// Trailing k publics are the claims, named claim0..claim<k-1>, and
	// all slots hold the same model → identical verdicts.
	names := art.System.PublicNames
	for s := 0; s < k; s++ {
		want := fmt.Sprintf("claim%d", s)
		if got := names[art.System.NbPublic-k+s]; got != want {
			t.Fatalf("claim wire %d named %q, want %q", s, got, want)
		}
	}
	pub := art.System.PublicValues(solved)
	claims, err := ClaimBits(pub, k)
	if err != nil {
		t.Fatal(err)
	}
	singleArt, err := ExtractionCircuit(q, ck, 2)
	if err != nil {
		t.Fatal(err)
	}
	singlePub := singleArt.PublicInputs()
	singleClaims, err := ClaimBits(singlePub, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s, c := range claims {
		if c != singleClaims[0] {
			t.Fatalf("slot %d claim %v, single-slot circuit says %v", s, c, singleClaims[0])
		}
	}

	// The shared key material must be declared once: K slots cost far
	// fewer secret inputs than K independent circuits.
	if got, limit := len(art.System.SecretInputs), len(singleArt.System.SecretInputs)+k; got > limit {
		t.Fatalf("batched circuit has %d secret inputs, want at most the single circuit's %d (+slack)",
			got, limit)
	}
}

// TestBindSuspectSlots: per-slot rebinding must reproduce, slot by
// slot, the claims the single-slot circuit computes for each suspect —
// without recompiling anything.
func TestBindSuspectSlots(t *testing.T) {
	const k = 3
	registered := tinyQuantNet(3, 5, 3)
	ck := randCircuitKey(rand.New(rand.NewSource(11)), batchP, 5, 3, 4, 2)
	art, err := BatchedExtractionCircuit(registered, ck, 2, k)
	if err != nil {
		t.Fatal(err)
	}

	suspectB := tinyQuantNet(4, 5, 3)
	suspectC := tinyQuantNet(5, 5, 3)
	// Slot 0 keeps the registered model (nil), slots 1 and 2 get
	// distinct suspects.
	asg, err := BindSuspectSlots(art, []*nn.QuantizedNetwork{nil, suspectB, suspectC})
	if err != nil {
		t.Fatal(err)
	}
	solved, err := art.System.SolveAssignment(asg)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(solved); !ok {
		t.Fatalf("bound witness violates constraint %d", bad)
	}
	pub := art.System.PublicValues(solved)
	claims, err := ClaimBits(pub, k)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: each slot's claim equals the single circuit's claim for
	// that slot's model.
	singleClaim := func(q *nn.QuantizedNetwork) bool {
		t.Helper()
		sa, err := ExtractionCircuit(q, ck, 2)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := ClaimBits(sa.PublicInputs(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return cs[0]
	}
	wants := []bool{singleClaim(registered), singleClaim(suspectB), singleClaim(suspectC)}
	for s := range wants {
		if claims[s] != wants[s] {
			t.Fatalf("slot %d claim %v, single-slot oracle says %v", s, claims[s], wants[s])
		}
	}

	// The slot weight sections must carry each suspect's weights: slot 1
	// publics must differ from slot 0's wherever the models differ.
	sameAsRegistered := true
	for i, name := range art.System.PubInputNames {
		if slot, _ := splitSlotName(name); slot == 1 {
			orig := art.Assignment.Public[i]
			if !asg.Public[i].Equal(&orig) {
				sameAsRegistered = false
				break
			}
		}
	}
	if sameAsRegistered {
		t.Fatal("slot 1 weights unchanged after binding a different suspect")
	}

	// Slot-count mismatch and all-nil bindings are rejected.
	if _, err := BindSuspectSlots(art, []*nn.QuantizedNetwork{suspectB}); err == nil {
		t.Fatal("binding 1 suspect to a 3-slot circuit succeeded")
	}
	if _, err := BindSuspectSlots(art, make([]*nn.QuantizedNetwork, k)); err == nil {
		t.Fatal("binding all-nil suspects succeeded")
	}
	// A shape mismatch in ANY slot rejects the whole bundle.
	wide := tinyQuantNet(6, 5, 4)
	if _, err := BindSuspectSlots(art, []*nn.QuantizedNetwork{nil, wide, nil}); err == nil {
		t.Fatal("mismatched suspect in slot 1 accepted")
	}
}

// TestBatchedExtractionEndToEndProof: one Groth16 proof carries K
// claims through setup → prove → verify.
func TestBatchedExtractionEndToEndProof(t *testing.T) {
	const k = 2
	q := tinyQuantNet(7, 4, 3)
	ck := randCircuitKey(rand.New(rand.NewSource(12)), batchP, 4, 3, 4, 2)
	// maxErrors = signature width: every claim is 1 regardless of
	// weights, exercising the full verification path.
	art, err := BatchedExtractionCircuit(q, ck, 4, k)
	if err != nil {
		t.Fatal(err)
	}
	suspect := tinyQuantNet(8, 4, 3)
	asg, err := BindSuspectSlots(art, []*nn.QuantizedNetwork{nil, suspect})
	if err != nil {
		t.Fatal(err)
	}
	solved, err := art.System.SolveAssignment(asg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	pk, vk, err := groth16.Setup(art.System, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := groth16.Prove(art.System, pk, solved, rng)
	if err != nil {
		t.Fatal(err)
	}
	pub := art.System.PublicValues(solved)
	if err := groth16.Verify(vk, proof, pub); err != nil {
		t.Fatal(err)
	}
	claims, err := ClaimBits(pub, k)
	if err != nil {
		t.Fatal(err)
	}
	for s, c := range claims {
		if !c {
			t.Fatalf("slot %d claim 0 under full BER tolerance", s)
		}
	}
	if proof.PayloadSize() != 128 {
		t.Fatalf("batched proof size %d, want the constant 128", proof.PayloadSize())
	}
}

// TestBatchedCommittedExtraction: the committed batch publishes one
// digest + one claim per slot; digests must match ModelDigest of each
// slot's model and the solver must reproduce the eager witness.
func TestBatchedCommittedExtraction(t *testing.T) {
	qa := tinyQuantNet(20, 5, 3)
	qb := tinyQuantNet(21, 5, 3)
	ck := randCircuitKey(rand.New(rand.NewSource(22)), batchP, 5, 3, 4, 2)

	art, err := BatchedCommittedExtractionCircuit([]*nn.QuantizedNetwork{qa, qb}, ck, 4)
	if err != nil {
		t.Fatal(err)
	}
	if art.Slots() != 2 {
		t.Fatalf("slots %d, want 2", art.Slots())
	}
	// 2 digests + 2 claims, nothing else: the instance stays constant
	// size however large the models are.
	if got := art.System.NbPublic - 1; got != 4 {
		t.Fatalf("committed batch has %d public inputs, want 4", got)
	}
	if len(art.System.PubInputs) != 0 {
		t.Fatalf("committed batch should have no provided public inputs, has %d", len(art.System.PubInputs))
	}
	solved, err := art.System.SolveAssignment(art.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solved {
		if !solved[i].Equal(&art.Witness[i]) {
			t.Fatalf("wire %d: solver != eager", i)
		}
	}
	pub := art.System.PublicValues(solved)
	for s, q := range []*nn.QuantizedNetwork{qa, qb} {
		_, want, err := ModelDigest(q, ck.LayerIndex)
		if err != nil {
			t.Fatal(err)
		}
		if !pub[s].Equal(&want) {
			t.Fatalf("slot %d digest differs from ModelDigest", s)
		}
	}
	// Committed batches cannot be rebound.
	if _, err := BindSuspectSlots(art, []*nn.QuantizedNetwork{qb, qa}); err == nil {
		t.Fatal("committed batch rebinding succeeded")
	}
	// Mixed architectures are rejected at compile time.
	if _, err := BatchedCommittedExtractionCircuit([]*nn.QuantizedNetwork{qa, tinyQuantNet(23, 5, 4)}, ck, 4); err == nil {
		t.Fatal("committed batch accepted mismatched architectures")
	}
}

// TestBatchedExtractionRejectsBadSlotCount covers the constructor's
// parameter validation.
func TestBatchedExtractionRejectsBadSlotCount(t *testing.T) {
	q := tinyQuantNet(30, 4, 2)
	ck := randCircuitKey(rand.New(rand.NewSource(31)), batchP, 4, 2, 4, 2)
	if _, err := BatchedExtractionCircuit(q, ck, 2, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := BatchedExtractionCircuit(q, ck, 2, -3); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := BatchedCommittedExtractionCircuit(nil, ck, 2); err == nil {
		t.Fatal("empty committed batch accepted")
	}
}

// TestClaimBits covers the instance-decoding helper.
func TestClaimBits(t *testing.T) {
	one := func() fr.Element { var e fr.Element; e.SetOne(); return e }
	pub := []fr.Element{one(), {}, one()}
	claims, err := ClaimBits(pub, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 2 || claims[0] || !claims[1] {
		t.Fatalf("claims %v, want [false true]", claims)
	}
	if _, err := ClaimBits(pub, 0); err == nil {
		t.Fatal("slots=0 accepted")
	}
	if _, err := ClaimBits(pub, 4); err == nil {
		t.Fatal("more slots than publics accepted")
	}
}

// TestClaimBoundaryAtMaxErrors pins the zkBER tolerance edge: a
// watermark extracting with exactly maxErrors bit errors yields
// claim 1, exactly maxErrors+1 yields claim 0 — and the claim-0 proof
// still VERIFIES as a Groth16 proof (of a failed claim): an arbiter
// rejects the ownership claim from the instance, not from a proof
// failure. Claim-bit forgery is therefore a public-input substitution,
// covered by TestExtractionClaimForgeryRejected.
func TestClaimBoundaryAtMaxErrors(t *testing.T) {
	_, q, key := watermarkedMLP(t, 310)
	_, nbErr, err := watermark.ExtractQuantized(q, key)
	if err != nil {
		t.Fatal(err)
	}
	ck := QuantizeKey(key, testP)
	if nbErr == 0 {
		// Flip exactly one signature bit so the extraction error count
		// is exactly 1 and the boundary is pinned.
		ck.Signature[0] ^= 1
		nbErr = 1
	}

	atTolerance, err := ExtractionCircuit(q, ck, nbErr) // errors ≤ maxErrors → claim 1
	if err != nil {
		t.Fatal(err)
	}
	claims, err := ClaimBits(atTolerance.PublicInputs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !claims[0] {
		t.Fatal("BER exactly at maxErrors must yield claim 1")
	}

	overTolerance, err := ExtractionCircuit(q, ck, nbErr-1) // errors = maxErrors+1 → claim 0
	if err != nil {
		t.Fatal(err)
	}
	claims, err = ClaimBits(overTolerance.PublicInputs(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if claims[0] {
		t.Fatal("BER at maxErrors+1 must yield claim 0")
	}

	// The failed claim still proves and verifies; VerifyClaim reports
	// ok=false with no error.
	rng := rand.New(rand.NewSource(311))
	pl, err := RunPipeline(overTolerance, rng)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyClaim(pl.VK, pl.Proof, overTolerance.PublicInputs())
	if err != nil {
		t.Fatalf("claim-0 proof must still verify, got %v", err)
	}
	if ok {
		t.Fatal("claim-0 instance reported as a valid ownership claim")
	}
}

// TestExtractionClaimForgeryRejected: flipping the public claim bit of
// a claim-0 instance must break verification — the claim wire is
// constrained to the in-circuit BER verdict.
func TestExtractionClaimForgeryRejected(t *testing.T) {
	q := tinyQuantNet(40, 4, 3)
	ck := randCircuitKey(rand.New(rand.NewSource(41)), batchP, 4, 3, 4, 2)
	// maxErrors 0 against random weights: overwhelmingly claim 0; if the
	// draw happens to extract cleanly, flip a signature bit to force it.
	art, err := ExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	if claims, _ := ClaimBits(art.PublicInputs(), 1); claims[0] {
		ck.Signature[0] ^= 1
		if art, err = ExtractionCircuit(q, ck, 0); err != nil {
			t.Fatal(err)
		}
		if claims, _ := ClaimBits(art.PublicInputs(), 1); claims[0] {
			t.Fatal("could not construct a claim-0 instance")
		}
	}
	rng := rand.New(rand.NewSource(42))
	pl, err := RunPipeline(art, rng)
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]fr.Element(nil), art.PublicInputs()...)
	forged[len(forged)-1].SetOne()
	if err := groth16.Verify(pl.VK, pl.Proof, forged); err == nil {
		t.Fatal("claim bit forged to 1 and the proof still verified")
	}
}
