package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/engine"
	"zkrownn/internal/groth16"
	"zkrownn/internal/obs"
	"zkrownn/internal/r1cs"
)

// Metrics mirrors the columns of the paper's Table I for one circuit,
// plus the engine's cache verdict and the compile/solve split timings.
type Metrics struct {
	Name          string
	NbConstraints int
	NbPublic      int
	NbPrivate     int
	// Slots is the number of ownership-claim slots the circuit carries
	// (K for batched extraction circuits, 1 otherwise) — the divisor for
	// per-claim amortized costs.
	Slots int
	// CompileTime is the one-time circuit synthesis cost (builder →
	// CompiledSystem); zero when the caller didn't measure it.
	CompileTime time.Duration
	SetupTime   time.Duration
	// SetupCached is true when the prover engine served the keys from
	// its digest-keyed cache instead of running trusted setup.
	SetupCached bool
	PKSize      int64
	// SolveTime is the per-proof witness generation (solver-program
	// replay) — the recurring cost the compile-once split amortizes
	// against.
	SolveTime  time.Duration
	ProveTime  time.Duration
	ProofSize  int
	VKSize     int64
	VerifyTime time.Duration
	// Streamed is true when the proving key stayed on disk and the
	// prover ran out-of-core (engine memory budget exceeded). PKSize
	// then reports the raw on-disk encoding rather than the compressed
	// wire encoding.
	Streamed bool
}

// String renders one Table I row.
func (m *Metrics) String() string {
	setup := fmt.Sprintf("%12.4fs", m.SetupTime.Seconds())
	if m.SetupCached {
		setup = fmt.Sprintf("%13s", "(cached)")
	}
	return fmt.Sprintf("%-24s %10d %s %10.2fMB %10.2fms %12.4fs %8dB %10.3fKB %10.3fms",
		m.Name, m.NbConstraints,
		setup, float64(m.PKSize)/1e6,
		float64(m.SolveTime.Microseconds())/1e3,
		m.ProveTime.Seconds(), m.ProofSize,
		float64(m.VKSize)/1e3, float64(m.VerifyTime.Microseconds())/1e3)
}

// Header returns the Table I column header.
func Header() string {
	return fmt.Sprintf("%-24s %10s %13s %12s %12s %13s %9s %12s %12s",
		"Benchmark", "#Constr", "Setup(s)", "PK(MB)", "Solve(ms)", "Prove(s)", "Proof", "VK(KB)", "Verify(ms)")
}

// Pipeline bundles the Groth16 artifacts of one circuit. PK is nil
// when the engine proved out-of-core (Metrics.Streamed); the disk-backed
// key is then reachable via Keys.Stream.
type Pipeline struct {
	Artifact *Artifact
	Keys     *engine.KeyPair
	PK       *groth16.ProvingKey
	VK       *groth16.VerifyingKey
	Proof    *groth16.Proof
	Metrics  Metrics
}

// Request converts the artifact into a prover-engine request carrying
// the input assignment: the engine replays the compiled circuit's
// solver program per job (solve-many), rather than reusing the
// build-time witness.
func (a *Artifact) Request(rng io.Reader) engine.Request {
	return engine.Request{
		Name:   a.Name,
		System: a.System,
		Public: a.Assignment.Public,
		Secret: a.Assignment.Secret,
		Rand:   rng,
	}
}

// RequestFor is Request with the inputs rebound to a different
// assignment — the solve-many entry point for proving one compiled
// architecture against many instances.
func (a *Artifact) RequestFor(asg r1cs.Assignment, rng io.Reader) engine.Request {
	return engine.Request{
		Name:   a.Name,
		System: a.System,
		Public: asg.Public,
		Secret: asg.Secret,
		Rand:   rng,
	}
}

// defaultEngine backs RunPipeline so that repeated runs of the same
// circuit architecture within one process share trusted setup — the
// engine's whole point. The cache is kept small (2 entries) because
// proving keys can run to hundreds of MB at paper scale and RunPipeline
// callers typically iterate circuits back-to-back, where 2 entries
// already serve the repeat pattern. Callers needing a deeper cache,
// isolation, or disk persistence build their own engine and use
// RunPipelineWith.
var defaultEngine = engine.New(engine.Options{CacheEntries: 2})

// DefaultEngine returns the process-wide engine behind RunPipeline.
// Long-lived embedders that are done proving can reclaim the cached
// proving keys with DefaultEngine().ClearCache().
func DefaultEngine() *engine.Engine { return defaultEngine }

// RunPipeline executes setup → prove → verify for the artifact and
// collects Table I metrics. rng supplies setup/prover randomness
// (crypto/rand when nil). It is a thin wrapper over the process-wide
// prover engine: a second run for the same circuit digest skips setup.
func RunPipeline(art *Artifact, rng io.Reader) (*Pipeline, error) {
	return RunPipelineWith(defaultEngine, art, rng)
}

// RunPipelineWith executes the pipeline on a specific prover engine.
func RunPipelineWith(eng *engine.Engine, art *Artifact, rng io.Reader) (*Pipeline, error) {
	return RunPipelineTraced(eng, art, rng, nil)
}

// RunPipelineTraced is RunPipelineWith recording per-phase spans —
// setup, solve, FFT levels, MSM windows, pairing — on tr, which can
// then be exported with tr.WriteChrome or aggregated with tr.Totals.
// A nil tr is the untraced fast path.
func RunPipelineTraced(eng *engine.Engine, art *Artifact, rng io.Reader, tr *obs.Trace) (*Pipeline, error) {
	pl := &Pipeline{Artifact: art}
	pl.Metrics.Name = art.Name
	pl.Metrics.NbConstraints = art.System.NbConstraints()
	pl.Metrics.NbPublic = art.System.NbPublic - 1
	pl.Metrics.NbPrivate = art.System.NbPrivate()
	pl.Metrics.Slots = art.Slots()

	req := art.Request(rng)
	var ctx context.Context
	if tr != nil {
		ctx = obs.ContextWithTrace(context.Background(), tr)
		req.Ctx = ctx
	}
	res, err := eng.Prove(req)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	pl.Keys = res.Keys
	pl.PK, pl.VK = res.Keys.PK, res.Keys.VK
	pl.Proof = res.Proof
	pl.Metrics.SetupTime = res.SetupTime
	pl.Metrics.SetupCached = res.CacheHit
	pl.Metrics.SolveTime = res.SolveTime
	pl.Metrics.ProveTime = res.ProveTime
	pl.Metrics.PKSize = res.Keys.PKSizeBytes()
	pl.Metrics.VKSize = pl.VK.SizeBytes()
	pl.Metrics.ProofSize = res.Proof.PayloadSize()
	pl.Metrics.Streamed = res.Keys.Streamed()

	public := res.PublicInputs
	start := time.Now()
	if err := eng.VerifyCtx(ctx, pl.VK, pl.Proof, public); err != nil {
		return nil, fmt.Errorf("core: verify: %w", err)
	}
	pl.Metrics.VerifyTime = time.Since(start)
	return pl, nil
}

// VerifyClaim checks an ownership proof against a claim bit: the last
// public input of an extraction circuit is the verdict, which an honest
// ownership proof pins to 1.
func VerifyClaim(vk *groth16.VerifyingKey, proof *groth16.Proof, public []fr.Element) (bool, error) {
	if len(public) == 0 {
		return false, fmt.Errorf("core: empty public inputs")
	}
	if err := groth16.Verify(vk, proof, public); err != nil {
		return false, err
	}
	var one fr.Element
	one.SetOne()
	return public[len(public)-1].Equal(&one), nil
}
