package core

import (
	"fmt"
	"io"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/groth16"
)

// Metrics mirrors the columns of the paper's Table I for one circuit.
type Metrics struct {
	Name          string
	NbConstraints int
	NbPublic      int
	NbPrivate     int
	SetupTime     time.Duration
	PKSize        int64
	ProveTime     time.Duration
	ProofSize     int
	VKSize        int64
	VerifyTime    time.Duration
}

// String renders one Table I row.
func (m *Metrics) String() string {
	return fmt.Sprintf("%-24s %10d %12.4fs %10.2fMB %12.4fs %8dB %10.3fKB %10.3fms",
		m.Name, m.NbConstraints,
		m.SetupTime.Seconds(), float64(m.PKSize)/1e6,
		m.ProveTime.Seconds(), m.ProofSize,
		float64(m.VKSize)/1e3, float64(m.VerifyTime.Microseconds())/1e3)
}

// Header returns the Table I column header.
func Header() string {
	return fmt.Sprintf("%-24s %10s %13s %12s %13s %9s %12s %12s",
		"Benchmark", "#Constr", "Setup(s)", "PK(MB)", "Prove(s)", "Proof", "VK(KB)", "Verify(ms)")
}

// Pipeline bundles the Groth16 artifacts of one circuit.
type Pipeline struct {
	Artifact *Artifact
	PK       *groth16.ProvingKey
	VK       *groth16.VerifyingKey
	Proof    *groth16.Proof
	Metrics  Metrics
}

// RunPipeline executes setup → prove → verify for the artifact and
// collects Table I metrics. rng supplies setup/prover randomness
// (crypto/rand when nil).
func RunPipeline(art *Artifact, rng io.Reader) (*Pipeline, error) {
	pl := &Pipeline{Artifact: art}
	pl.Metrics.Name = art.Name
	pl.Metrics.NbConstraints = art.System.NbConstraints()
	pl.Metrics.NbPublic = art.System.NbPublic - 1
	pl.Metrics.NbPrivate = art.System.NbPrivate()

	start := time.Now()
	pk, vk, err := groth16.Setup(art.System, rng)
	if err != nil {
		return nil, fmt.Errorf("core: setup: %w", err)
	}
	pl.Metrics.SetupTime = time.Since(start)
	pl.PK, pl.VK = pk, vk
	pl.Metrics.PKSize = pk.SizeBytes()
	pl.Metrics.VKSize = vk.SizeBytes()

	start = time.Now()
	proof, err := groth16.Prove(art.System, pk, art.Witness, rng)
	if err != nil {
		return nil, fmt.Errorf("core: prove: %w", err)
	}
	pl.Metrics.ProveTime = time.Since(start)
	pl.Proof = proof
	pl.Metrics.ProofSize = proof.PayloadSize()

	public := art.PublicInputs()
	start = time.Now()
	if err := groth16.Verify(vk, proof, public); err != nil {
		return nil, fmt.Errorf("core: verify: %w", err)
	}
	pl.Metrics.VerifyTime = time.Since(start)
	return pl, nil
}

// VerifyClaim checks an ownership proof against a claim bit: the last
// public input of an extraction circuit is the verdict, which an honest
// ownership proof pins to 1.
func VerifyClaim(vk *groth16.VerifyingKey, proof *groth16.Proof, public []fr.Element) (bool, error) {
	if len(public) == 0 {
		return false, fmt.Errorf("core: empty public inputs")
	}
	if err := groth16.Verify(vk, proof, public); err != nil {
		return false, err
	}
	var one fr.Element
	one.SetOne()
	return public[len(public)-1].Equal(&one), nil
}
