package core

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
)

func TestModelDigestDeterministic(t *testing.T) {
	_, q, _ := watermarkedMLP(t, 800)
	r1, d1, err := ModelDigest(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, d2, err := ModelDigest(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(&r2) || !d1.Equal(&d2) {
		t.Fatal("digest not deterministic")
	}
	// Tampering with any weight changes the digest.
	q.Layers[0].W[3]++
	_, d3, err := ModelDigest(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d3.Equal(&d1) {
		t.Fatal("weight tampering left digest unchanged")
	}
	if _, _, err := ModelDigest(q, 99); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
}

func TestCommittedExtractionEndToEnd(t *testing.T) {
	_, q, key := watermarkedMLP(t, 801)
	ck := QuantizeKey(key, testP)

	art, err := CommittedExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("committed circuit unsatisfied at %d", bad)
	}
	// Exactly two public inputs: digest and claim.
	if art.System.NbPublic != 3 { // constant + 2
		t.Fatalf("committed circuit has %d public wires, want 3", art.System.NbPublic)
	}

	rng := rand.New(rand.NewSource(802))
	pk, vk, err := groth16.Setup(art.System, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := groth16.Prove(art.System, pk, art.Witness, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := art.PublicInputs()
	if err := groth16.Verify(vk, proof, public); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCommittedPublicInputs(q, ck.LayerIndex, public); err != nil {
		t.Fatal(err)
	}
}

func TestCommittedVKIsConstantSize(t *testing.T) {
	// The headline: the committed variant's VK must not grow with the
	// model, unlike the public-weights variant.
	p := fixpoint.Params{FracBits: 12, MagBits: 40}
	rng := rand.New(rand.NewSource(803))

	vkSize := func(in, hidden int) (int64, int64) {
		art, err := BenchMLPExtractionCircuit(p, in, hidden, 8, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, vkPub, err := groth16.Setup(art.System, rng)
		if err != nil {
			t.Fatal(err)
		}

		// Committed version of the same shape.
		q, ck := benchMLPNet(p, in, hidden, 8, 2, rng)
		artC, err := CommittedExtractionCircuit(q, ck, 8)
		if err != nil {
			t.Fatal(err)
		}
		_, vkCom, err := groth16.Setup(artC.System, rng)
		if err != nil {
			t.Fatal(err)
		}
		return vkPub.SizeBytes(), vkCom.SizeBytes()
	}

	pubSmall, comSmall := vkSize(6, 8)
	pubBig, comBig := vkSize(24, 16)
	if pubBig <= pubSmall {
		t.Fatal("public-weights VK should grow with the model")
	}
	if comBig != comSmall {
		t.Fatalf("committed VK should be constant: %d vs %d", comSmall, comBig)
	}
	if comBig >= pubBig {
		t.Fatal("committed VK should be smaller than public-weights VK")
	}
}

func TestCommittedRejectsWrongModel(t *testing.T) {
	_, q, key := watermarkedMLP(t, 804)
	ck := QuantizeKey(key, testP)
	art, err := CommittedExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(805))
	pk, vk, err := groth16.Setup(art.System, rng)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := groth16.Prove(art.System, pk, art.Witness, rng)
	if err != nil {
		t.Fatal(err)
	}
	public := art.PublicInputs()

	// A verifier holding a DIFFERENT model must notice the digest
	// mismatch even though the proof itself is valid.
	q.Layers[0].W[0] += 7
	if err := VerifyCommittedPublicInputs(q, ck.LayerIndex, public); err == nil {
		t.Fatal("digest check passed against a different model")
	}
	q.Layers[0].W[0] -= 7

	// And a forged digest in the public inputs fails the pairing check.
	forged := append([]fr.Element(nil), public...)
	forged[0].SetUint64(12345)
	if err := groth16.Verify(vk, proof, forged); err == nil {
		t.Fatal("forged digest accepted by the proof system")
	}
}

func TestCommittedWitnessCannotSwapWeights(t *testing.T) {
	// Soundness of the binding: change a private weight wire in the
	// witness (keeping the public digest) and the digest constraint must
	// fail.
	_, q, key := watermarkedMLP(t, 806)
	ck := QuantizeKey(key, testP)
	art, err := CommittedExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Weight wires are the first private wires allocated; perturb a
	// handful of private wires near the start and expect violation.
	detected := false
	for off := 0; off < 5; off++ {
		w := append([]fr.Element(nil), art.Witness...)
		idx := art.System.NbPublic + off
		var delta fr.Element
		delta.SetUint64(1)
		w[idx].Add(&w[idx], &delta)
		if ok, _ := art.System.IsSatisfied(w); !ok {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("no constraint guards the committed weights")
	}
}

// benchMLPNet mirrors BenchMLPExtractionCircuit's model construction,
// returning the raw network and key for the committed variant.
func benchMLPNet(p fixpoint.Params, in, hidden, bits, triggers int, rng *rand.Rand) (*nn.QuantizedNetwork, *CircuitKey) {
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, p, in, hidden),
			{Kind: "relu", Out: hidden},
		},
	}
	ck := randCircuitKey(rng, p, in, hidden, bits, triggers)
	return q, ck
}
