// Package core implements ZKROWNN itself: the zero-knowledge watermark
// extraction circuit of Algorithm 1 and the standalone benchmark
// circuits of Table I, together with the setup/prove/verify pipeline
// and its metrics.
//
// The prover convinces any third-party verifier that the (public)
// suspect model M' produces the prover's (private) watermark when
// queried with the prover's (private) trigger keys:
//
//	Public:  model weights up to l_wm, target BER θ, the claim bit.
//	Private: trigger keys X_key, projection matrix A, watermark wm,
//	         and (implicitly) the embedded layer's identity.
//
// Circuit: zkFeedForward → zkAverage → zkSigmoid → zkHardThresholding →
// zkBER, assembled from the gadgets package.
package core

import (
	"fmt"
	"math/rand"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/frontend"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/nn"
	"zkrownn/internal/r1cs"
	"zkrownn/internal/watermark"
)

// CircuitKey is the fixed-point image of a watermark key, ready to feed
// the extraction circuit as private inputs.
type CircuitKey struct {
	LayerIndex int
	Triggers   [][]int64
	A          [][]int64
	Signature  []int
}

// QuantizeKey converts a float watermark key with the given format.
func QuantizeKey(k *watermark.Key, p fixpoint.Params) *CircuitKey {
	ck := &CircuitKey{LayerIndex: k.LayerIndex, Signature: append([]int(nil), k.Signature...)}
	for _, t := range k.Triggers {
		ck.Triggers = append(ck.Triggers, p.EncodeSlice(t))
	}
	for _, row := range k.A {
		ck.A = append(ck.A, p.EncodeSlice(row))
	}
	return ck
}

// Artifact is a compiled circuit plus the input assignment recorded at
// build time, ready for the Groth16 pipeline. The compiled system is the
// reusable half (one per architecture — cache it, set up keys for it,
// solve it against many assignments); the assignment and eager witness
// are the build-time instance.
type Artifact struct {
	Name   string
	System *r1cs.CompiledSystem
	// Assignment binds the circuit's declared inputs to the values the
	// circuit was built with. Repeat proofs rebind inputs (e.g. suspect
	// weights via BindSuspectInputs) instead of recompiling.
	Assignment r1cs.Assignment
	// Witness is the eager witness the builder computed during
	// compilation — identical to System.Solve(Assignment). Long-lived
	// holders that only re-solve (the proof service) may nil it out to
	// reclaim NbWires×32 bytes per pinned circuit.
	Witness []fr.Element

	// arch pins the layer shapes and fixed-point format the extraction
	// circuit was compiled for, so BindSuspectInputs can enforce full
	// architecture equality. Nil for non-extraction artifacts.
	arch       []layerShape
	archParams fixpoint.Params
	// slots is the number of suspect-model weight slots a batched
	// extraction circuit embeds (0 or 1 for everything else).
	slots int
}

// Slots returns the number of suspect-model claim slots the circuit
// carries: K for BatchedExtractionCircuit, 1 otherwise. The last
// Slots() public inputs of an extraction instance are the per-slot
// claim bits, in slot order.
func (a *Artifact) Slots() int {
	if a.slots < 1 {
		return 1
	}
	return a.slots
}

// ClaimBits extracts the per-slot ownership verdicts from an extraction
// instance: batched circuits publish their K claim bits as the last K
// public inputs, single circuits as the last one.
func ClaimBits(public []fr.Element, slots int) ([]bool, error) {
	if slots < 1 {
		return nil, fmt.Errorf("core: claim slots must be >= 1, got %d", slots)
	}
	if len(public) < slots {
		return nil, fmt.Errorf("core: instance has %d public inputs, need at least %d claim bits", len(public), slots)
	}
	var one fr.Element
	one.SetOne()
	out := make([]bool, slots)
	for i := range out {
		out[i] = public[len(public)-slots+i].Equal(&one)
	}
	return out, nil
}

// newArtifact wraps a frontend compile result.
func newArtifact(name string, res *frontend.CompileResult) *Artifact {
	return &Artifact{Name: name, System: res.System, Assignment: res.Assignment, Witness: res.Witness}
}

// PublicInputs returns the instance for Verify.
func (a *Artifact) PublicInputs() []fr.Element {
	return a.System.PublicValues(a.Witness)
}

// secretVec declares a vector of private inputs.
func secretVec(c *gadgets.Ctx, vs []int64) []frontend.Variable {
	out := make([]frontend.Variable, len(vs))
	for i, v := range vs {
		out[i] = c.B.SecretInput("", fixpoint.ToField(v))
	}
	return out
}

// publicVec declares a vector of public inputs.
func publicVec(c *gadgets.Ctx, name string, vs []int64) []frontend.Variable {
	out := make([]frontend.Variable, len(vs))
	for i, v := range vs {
		out[i] = c.B.PublicInput(name, fixpoint.ToField(v))
	}
	return out
}

// publishOutputs exposes circuit outputs as public wires (the Table I
// standalone convention "private inputs, public outputs"). Outputs are
// *computed* publics: the solver program re-derives them per assignment,
// so solve-time callers only supply true inputs.
func publishOutputs(c *gadgets.Ctx, name string, outs []frontend.Variable) {
	for i := range outs {
		c.B.PublicOutput(name, outs[i])
	}
}

// publishChecksum exposes a single public affine checksum Σ ρⁱ·outᵢ of a
// large output matrix, keeping the verifying key small (the paper's
// MatMult/Conv3D rows have sub-KB verifying keys, implying a compact
// public interface).
func publishChecksum(c *gadgets.Ctx, name string, outs []frontend.Variable) {
	var rho, cur fr.Element
	rho.SetUint64(0x9e3779b1) // fixed public mixing constant
	cur.SetOne()
	terms := make([]frontend.Variable, len(outs))
	for i := range outs {
		terms[i] = c.B.MulConst(outs[i], cur)
		cur.Mul(&cur, &rho)
	}
	sum := c.B.Sum(terms...)
	c.B.PublicOutput(name, sum)
}

// randMatrix draws an n×m matrix of small fixed-point values.
func randMatrix(rng *rand.Rand, p fixpoint.Params, n, m int, mag float64) [][]int64 {
	out := make([][]int64, n)
	for i := range out {
		out[i] = make([]int64, m)
		for j := range out[i] {
			out[i][j] = p.Encode(rng.Float64()*2*mag - mag)
		}
	}
	return out
}

// MatMultCircuit builds the Table I MatMult benchmark: private n×n
// matrices, checksum-public product.
func MatMultCircuit(p fixpoint.Params, n int, rng *rand.Rand) (*Artifact, error) {
	c := gadgets.NewCtx(p)
	a := randMatrix(rng, p, n, n, 2)
	b := randMatrix(rng, p, n, n, 2)
	av := make([][]frontend.Variable, n)
	bv := make([][]frontend.Variable, n)
	for i := 0; i < n; i++ {
		av[i] = secretVec(c, a[i])
		bv[i] = secretVec(c, b[i])
	}
	out := c.MatMul(av, bv, true, p.MagBits)
	flat := make([]frontend.Variable, 0, n*n)
	for i := range out {
		flat = append(flat, out[i]...)
	}
	publishChecksum(c, "c_checksum", flat)
	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	return newArtifact(fmt.Sprintf("MatMult-%dx%d", n, n), res), nil
}

// Conv3DCircuit builds the Table I Conv3D benchmark (32×32×3 input, 32
// output channels, 3×3 filters, stride 2 at full scale).
func Conv3DCircuit(p fixpoint.Params, shape gadgets.Conv3DShape, rng *rand.Rand) (*Artifact, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	c := gadgets.NewCtx(p)
	input := make([][][]frontend.Variable, shape.InC)
	for ch := range input {
		input[ch] = make([][]frontend.Variable, shape.InH)
		for i := range input[ch] {
			row := make([]int64, shape.InW)
			for j := range row {
				row[j] = p.Encode(rng.Float64()*2 - 1)
			}
			input[ch][i] = secretVec(c, row)
		}
	}
	kernels := make([][][][]frontend.Variable, shape.OutC)
	for o := range kernels {
		kernels[o] = make([][][]frontend.Variable, shape.InC)
		for ch := range kernels[o] {
			kernels[o][ch] = make([][]frontend.Variable, shape.K)
			for kh := range kernels[o][ch] {
				row := make([]int64, shape.K)
				for kw := range row {
					row[kw] = p.Encode(rng.Float64()*2 - 1)
				}
				kernels[o][ch][kh] = secretVec(c, row)
			}
		}
	}
	out := c.Conv3D(shape, input, kernels, nil, true, p.MagBits)
	var flat []frontend.Variable
	for o := range out {
		for i := range out[o] {
			flat = append(flat, out[o][i]...)
		}
	}
	publishChecksum(c, "conv_checksum", flat)
	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("Conv3D-%dx%dx%d-o%d-k%d-s%d", shape.InC, shape.InH, shape.InW, shape.OutC, shape.K, shape.S)
	return newArtifact(name, res), nil
}

// ReLUCircuit builds the Table I ReLU benchmark: length-n private
// vector, public outputs.
func ReLUCircuit(p fixpoint.Params, n int, rng *rand.Rand) (*Artifact, error) {
	c := gadgets.NewCtx(p)
	in := make([]int64, n)
	for i := range in {
		in[i] = p.Encode(rng.Float64()*8 - 4)
	}
	xs := secretVec(c, in)
	outs := c.ReLUVec(xs, p.MagBits)
	publishOutputs(c, "relu_out", outs)
	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	return newArtifact(fmt.Sprintf("ReLU-%d", n), res), nil
}

// Average2DCircuit builds the Table I Average2D benchmark: n×n private
// matrix, public row means.
func Average2DCircuit(p fixpoint.Params, n int, rng *rand.Rand) (*Artifact, error) {
	c := gadgets.NewCtx(p)
	rows := make([][]frontend.Variable, n)
	for i := range rows {
		row := make([]int64, n)
		for j := range row {
			row[j] = p.Encode(rng.Float64()*4 - 2)
		}
		rows[i] = secretVec(c, row)
	}
	outs := c.AverageRows(rows, p.MagBits)
	publishOutputs(c, "avg_out", outs)
	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	return newArtifact(fmt.Sprintf("Average2D-%dx%d", n, n), res), nil
}

// SigmoidCircuit builds the Table I Sigmoid benchmark: length-n private
// vector through the degree-9 Chebyshev polynomial, public outputs.
func SigmoidCircuit(p fixpoint.Params, n int, rng *rand.Rand) (*Artifact, error) {
	c := gadgets.NewCtx(p)
	in := make([]int64, n)
	for i := range in {
		in[i] = p.Encode(rng.Float64()*8 - 4)
	}
	xs := secretVec(c, in)
	outs := c.SigmoidVec(xs, p.MagBits)
	publishOutputs(c, "sigmoid_out", outs)
	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	return newArtifact(fmt.Sprintf("Sigmoid-%d", n), res), nil
}

// HardThresholdingCircuit builds the Table I HardThresholding benchmark
// at β = 0.5.
func HardThresholdingCircuit(p fixpoint.Params, n int, rng *rand.Rand) (*Artifact, error) {
	c := gadgets.NewCtx(p)
	in := make([]int64, n)
	for i := range in {
		in[i] = p.Encode(rng.Float64()*2 - 0.5)
	}
	xs := secretVec(c, in)
	outs := c.HardThresholdVec(xs, p.Encode(0.5), p.MagBits)
	publishOutputs(c, "threshold_out", outs)
	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	return newArtifact(fmt.Sprintf("HardThresholding-%d", n), res), nil
}

// BERCircuit builds the Table I BER benchmark: two private n-bit strings
// compared under maxErrors tolerance, public verdict.
func BERCircuit(p fixpoint.Params, n, maxErrors int, rng *rand.Rand) (*Artifact, error) {
	c := gadgets.NewCtx(p)
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(2))
		b[i] = a[i]
	}
	// Flip a couple of bits so the comparison is non-trivial but within
	// tolerance when maxErrors ≥ 2.
	if n > 3 {
		b[1] ^= 1
		b[3] ^= 1
	}
	av := secretVec(c, a)
	bv := secretVec(c, b)
	// BER asserts booleanity of the first operand; assert the second too
	// since here both are raw private inputs.
	for i := range bv {
		c.B.AssertBoolean(bv[i])
	}
	valid := c.BER(av, bv, maxErrors)
	publishOutputs(c, "ber_valid", []frontend.Variable{valid})
	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	return newArtifact(fmt.Sprintf("BER-%d", n), res), nil
}

// layerVars holds one weight slot's circuit variables for the evaluated
// model prefix: public inputs in the plain extraction circuit, private
// digest-bound wires in the committed variant.
type layerVars struct {
	w    []frontend.Variable
	bias []frontend.Variable
}

// slotPrefix names slot s's weight inputs. Single-slot circuits keep
// the unprefixed "w<li>"/"b<li>" names (layout-compatible with the
// pre-batching circuits); batched slots are "s<slot>.w<li>".
func slotPrefix(slot, nbSlots int) string {
	if nbSlots == 1 {
		return ""
	}
	return fmt.Sprintf("s%d.", slot)
}

// claimName names slot s's public claim output ("claim" when single).
func claimName(slot, nbSlots int) string {
	if nbSlots == 1 {
		return "claim"
	}
	return fmt.Sprintf("claim%d", slot)
}

// declareSlotWeights declares one slot's model weights as named public
// inputs for layers 0..upTo.
func declareSlotWeights(c *gadgets.Ctx, q *nn.QuantizedNetwork, upTo int, prefix string) []layerVars {
	lv := make([]layerVars, upTo+1)
	for li := 0; li <= upTo; li++ {
		l := &q.Layers[li]
		switch l.Kind {
		case "dense", "conv":
			lv[li].w = publicVec(c, fmt.Sprintf("%sw%d", prefix, li), l.W)
			lv[li].bias = publicVec(c, fmt.Sprintf("%sb%d", prefix, li), l.B)
		}
	}
	return lv
}

// forwardPrefix is zkFeedForward: it evaluates layers 0..upTo of the
// model on cur, using the slot's weight variables.
func forwardPrefix(c *gadgets.Ctx, q *nn.QuantizedNetwork, lv []layerVars, cur []frontend.Variable, upTo int) ([]frontend.Variable, error) {
	p := q.Params
	for li := 0; li <= upTo; li++ {
		l := &q.Layers[li]
		switch l.Kind {
		case "dense":
			if len(cur) != l.In {
				return nil, fmt.Errorf("core: dense layer %d expects %d inputs, got %d", li, l.In, len(cur))
			}
			wRows := make([][]frontend.Variable, l.Out)
			for o := 0; o < l.Out; o++ {
				wRows[o] = lv[li].w[o*l.In : (o+1)*l.In]
			}
			cur = c.Dense(wRows, cur, lv[li].bias, true, p.MagBits)
		case "relu":
			cur = c.ReLUVec(cur, p.MagBits)
		case "sigmoid":
			cur = c.SigmoidVec(cur, p.MagBits)
		case "conv":
			shape := gadgets.Conv3DShape{
				InC: l.InC, InH: l.InH, InW: l.InW,
				OutC: l.OutC, K: l.K, S: l.S,
			}
			vol := reshapeVolume(cur, l.InC, l.InH, l.InW)
			kv := reshapeKernels(lv[li].w, l.OutC, l.InC, l.K)
			out := c.Conv3D(shape, vol, kv, lv[li].bias, true, p.MagBits)
			cur = flattenVolume(out)
		case "maxpool":
			oh := (l.InH-l.K)/l.S + 1
			ow := (l.InW-l.K)/l.S + 1
			vol := reshapeVolume(cur, l.InC, l.InH, l.InW)
			var flat []frontend.Variable
			for ch := 0; ch < l.InC; ch++ {
				pooled := c.MaxPool2D(vol[ch], l.K, l.S, p.MagBits)
				for i := 0; i < oh; i++ {
					flat = append(flat, pooled[i][:ow]...)
				}
			}
			cur = flat
		default:
			return nil, fmt.Errorf("core: unsupported layer kind %q", l.Kind)
		}
	}
	return cur, nil
}

// sharedKeyVars caches the secret watermark-key wires shared by every
// slot of a batched extraction circuit: the trigger inputs, projection
// columns, and signature bits are declared once (by the first slot that
// needs them) and reused, so K claims cost one copy of the key
// material. Declaration happens lazily at the same builder positions
// the single-slot circuit uses, keeping the k=1 layout byte-identical.
type sharedKeyVars struct {
	trigs  [][]frontend.Variable
	aCols  [][]frontend.Variable
	wmVars []frontend.Variable
}

// extractionSlot runs Algorithm 1's private tail for one weight slot:
// zkFeedForward per trigger → zkAverage → projection + zkSigmoid →
// zkHardThresholding → zkBER, returning the slot's verdict wire.
func extractionSlot(c *gadgets.Ctx, q *nn.QuantizedNetwork, ck *CircuitKey, lv []layerVars, kv *sharedKeyVars, maxErrors int) (frontend.Variable, error) {
	p := q.Params

	// zkFeedForward per trigger, collecting l_wm activations.
	acts := make([][]frontend.Variable, len(ck.Triggers))
	for t, trig := range ck.Triggers {
		if t == len(kv.trigs) {
			kv.trigs = append(kv.trigs, secretVec(c, trig))
		}
		cur, err := forwardPrefix(c, q, lv, kv.trigs[t], ck.LayerIndex)
		if err != nil {
			return frontend.Variable{}, err
		}
		acts[t] = cur
	}

	// zkAverage: Gaussian-center estimate across triggers.
	mu := c.AverageCols(acts, p.MagBits)

	// Private projection and zkSigmoid.
	m := len(mu)
	if len(ck.A) < m {
		return frontend.Variable{}, fmt.Errorf("core: projection has %d rows, activations have %d", len(ck.A), m)
	}
	nbits := len(ck.Signature)
	if kv.aCols == nil {
		kv.aCols = make([][]frontend.Variable, nbits)
		for j := 0; j < nbits; j++ {
			kv.aCols[j] = make([]frontend.Variable, m)
		}
		for i := 0; i < m; i++ {
			rowVars := secretVec(c, ck.A[i][:nbits])
			for j := 0; j < nbits; j++ {
				kv.aCols[j][i] = rowVars[j]
			}
		}
	}
	g := make([]frontend.Variable, nbits)
	for j := 0; j < nbits; j++ {
		z := c.InnerProduct(mu, kv.aCols[j])
		z = c.Rescale(z, p.MagBits)
		g[j] = c.Sigmoid(z, p.MagBits)
	}

	// zkHardThresholding at 0.5.
	wmHat := c.HardThresholdVec(g, p.Encode(0.5), p.MagBits)

	// zkBER against the private signature.
	if kv.wmVars == nil {
		wmBits := make([]int64, nbits)
		for j, b := range ck.Signature {
			wmBits[j] = int64(b)
		}
		kv.wmVars = secretVec(c, wmBits)
	}
	return c.BER(kv.wmVars, wmHat, maxErrors), nil
}

// ExtractionCircuit builds the end-to-end Algorithm 1 circuit for a
// quantized model and key: public model weights (layers 0..l_wm),
// private trigger keys / projection / watermark, and a public claim bit
// that the circuit constrains to the zkBER verdict.
//
// maxErrors is the public BER tolerance θ·N. The returned artifact's
// final public input carries the verdict (1 for a valid ownership
// claim), so a verifier checks the proof against claim = 1.
func ExtractionCircuit(q *nn.QuantizedNetwork, ck *CircuitKey, maxErrors int) (*Artifact, error) {
	return BatchedExtractionCircuit(q, ck, maxErrors, 1)
}

// BatchedExtractionCircuit builds Algorithm 1 with K independent
// suspect-model weight slots sharing one secret watermark key: one
// circuit (and therefore one trusted setup and one Groth16 proof)
// attests ownership claims against a whole batch of suspects. Every
// slot carries its own public weight inputs ("s<slot>.w<li>" /
// "s<slot>.b<li>"), evaluated against the shared private triggers,
// projection, and signature; the last K public inputs are the per-slot
// claim bits, in slot order (ClaimBits decodes them).
//
// All slots are initially bound to q's weights; BindSuspectSlots
// rebinds individual slots to same-architecture suspect models without
// recompiling. k = 1 degenerates to exactly ExtractionCircuit (same
// wire layout, names, and digest).
func BatchedExtractionCircuit(q *nn.QuantizedNetwork, ck *CircuitKey, maxErrors, k int) (*Artifact, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: batched extraction needs at least one slot, got %d", k)
	}
	if len(ck.Triggers) == 0 {
		return nil, fmt.Errorf("core: no triggers in circuit key")
	}
	if ck.LayerIndex >= len(q.Layers) {
		return nil, fmt.Errorf("core: layer index %d out of range", ck.LayerIndex)
	}
	c := gadgets.NewCtx(q.Params)

	kv := &sharedKeyVars{}
	claims := make([]frontend.Variable, k)
	for s := 0; s < k; s++ {
		lv := declareSlotWeights(c, q, ck.LayerIndex, slotPrefix(s, k))
		valid, err := extractionSlot(c, q, ck, lv, kv, maxErrors)
		if err != nil {
			return nil, err
		}
		claims[s] = valid
	}

	// Public claims: check ∧ valid_BER per slot (check is the constant 1
	// of Algorithm 1; the conjunction is simply the verdict wire). The
	// claims are computed public outputs — the solver derives them per
	// assignment — published together so they sit at the tail of the
	// instance in slot order.
	for s := 0; s < k; s++ {
		c.B.PublicOutput(claimName(s, k), claims[s])
	}

	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	name := "WatermarkExtraction"
	if k > 1 {
		name = fmt.Sprintf("BatchedExtraction-x%d", k)
	}
	art := newArtifact(name, res)
	art.arch = archShapes(q, ck.LayerIndex)
	art.archParams = q.Params
	art.slots = k
	return art, nil
}

// reshapeVolume views a flat activation as [c][h][w].
func reshapeVolume(flat []frontend.Variable, ch, h, w int) [][][]frontend.Variable {
	out := make([][][]frontend.Variable, ch)
	for cIdx := 0; cIdx < ch; cIdx++ {
		out[cIdx] = make([][]frontend.Variable, h)
		for i := 0; i < h; i++ {
			start := (cIdx*h + i) * w
			out[cIdx][i] = flat[start : start+w]
		}
	}
	return out
}

// flattenVolume is the inverse of reshapeVolume.
func flattenVolume(vol [][][]frontend.Variable) []frontend.Variable {
	var out []frontend.Variable
	for _, plane := range vol {
		for _, row := range plane {
			out = append(out, row...)
		}
	}
	return out
}

// reshapeKernels views flat conv weights as [o][c][kh][kw].
func reshapeKernels(flat []frontend.Variable, outC, inC, k int) [][][][]frontend.Variable {
	out := make([][][][]frontend.Variable, outC)
	for o := 0; o < outC; o++ {
		out[o] = make([][][]frontend.Variable, inC)
		for ch := 0; ch < inC; ch++ {
			out[o][ch] = make([][]frontend.Variable, k)
			for kh := 0; kh < k; kh++ {
				start := ((o*inC+ch)*k + kh) * k
				out[o][ch][kh] = flat[start : start+k]
			}
		}
	}
	return out
}
