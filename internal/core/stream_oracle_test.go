package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"zkrownn/internal/fixpoint"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/groth16"
	"zkrownn/internal/r1cs"
)

// TestStreamedProveOracleTableI is the end-to-end bit-identity oracle:
// for every Table I circuit (tiny sizes), the out-of-core prover reading
// the raw key from disk encoding must produce byte-for-byte the same
// proof as the in-memory prover under the same randomness, against the
// same verifying key.
func TestStreamedProveOracleTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds every Table I circuit")
	}
	p := fixpoint.Params{FracBits: 12, MagBits: 40}
	tinyConv := gadgets.Conv3DShape{InC: 3, InH: 8, InW: 8, OutC: 4, K: 3, S: 2}
	rows := []struct {
		name  string
		build func(rng *rand.Rand) (*Artifact, error)
	}{
		{"matmult", func(rng *rand.Rand) (*Artifact, error) { return MatMultCircuit(p, 8, rng) }},
		{"conv3d", func(rng *rand.Rand) (*Artifact, error) { return Conv3DCircuit(p, tinyConv, rng) }},
		{"relu", func(rng *rand.Rand) (*Artifact, error) { return ReLUCircuit(p, 16, rng) }},
		{"average2d", func(rng *rand.Rand) (*Artifact, error) { return Average2DCircuit(p, 8, rng) }},
		{"sigmoid", func(rng *rand.Rand) (*Artifact, error) { return SigmoidCircuit(p, 8, rng) }},
		{"threshold", func(rng *rand.Rand) (*Artifact, error) { return HardThresholdingCircuit(p, 16, rng) }},
		{"ber", func(rng *rand.Rand) (*Artifact, error) { return BERCircuit(p, 16, 2, rng) }},
		{"mnist-mlp", func(rng *rand.Rand) (*Artifact, error) {
			return BenchMLPExtractionCircuit(p, 32, 16, 8, 2, rng)
		}},
		{"cifar10-cnn", func(rng *rand.Rand) (*Artifact, error) {
			return BenchCNNExtractionCircuit(p, tinyConv, 8, 2, rng)
		}},
		{"batched-extraction-k1", func(rng *rand.Rand) (*Artifact, error) {
			return BenchBatchedMLPExtractionCircuit(p, 32, 16, 8, 2, 1, rng)
		}},
		{"batched-extraction-k4", func(rng *rand.Rand) (*Artifact, error) {
			return BenchBatchedMLPExtractionCircuit(p, 32, 16, 8, 2, 4, rng)
		}},
	}

	for i, row := range rows {
		row := row
		seed := int64(5000 + i)
		t.Run(row.name, func(t *testing.T) {
			t.Parallel()
			art, err := row.build(rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			pk, vk, err := groth16.Setup(art.System, rand.New(rand.NewSource(seed+1)))
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			var raw bytes.Buffer
			if _, err := pk.WriteRawTo(&raw); err != nil {
				t.Fatal(err)
			}
			spk, err := groth16.OpenStreamedProvingKey(bytes.NewReader(raw.Bytes()))
			if err != nil {
				t.Fatalf("open streamed key: %v", err)
			}
			// Small chunk so even tiny sections fragment across windows.
			spk.Chunk = 64

			want, err := groth16.Prove(art.System, pk, art.Witness, rand.New(rand.NewSource(seed+2)))
			if err != nil {
				t.Fatalf("in-memory prove: %v", err)
			}
			got, err := groth16.ProveStreamed(art.System, spk, art.Witness, rand.New(rand.NewSource(seed+2)))
			if err != nil {
				t.Fatalf("streamed prove: %v", err)
			}

			var wantBuf, gotBuf bytes.Buffer
			if _, err := want.WriteTo(&wantBuf); err != nil {
				t.Fatal(err)
			}
			if _, err := got.WriteTo(&gotBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
				t.Fatal("streamed proof bytes diverge from in-memory prover")
			}
			if err := groth16.Verify(vk, got, art.System.PublicValues(art.Witness)); err != nil {
				t.Fatalf("streamed proof rejected: %v", err)
			}

			// Full out-of-core: constraint rows from a CSR section file,
			// witness solved into a disk-backed spill store with a
			// minimal page budget. Still byte-identical.
			dir := t.TempDir()
			csPath := filepath.Join(dir, "sys.csr")
			if err := r1cs.WriteCompiledSystemFile(csPath, art.System); err != nil {
				t.Fatalf("write CSR file: %v", err)
			}
			csf, err := r1cs.OpenCompiledSystemFile(csPath)
			if err != nil {
				t.Fatalf("open CSR file: %v", err)
			}
			defer csf.Close()
			wf, err := r1cs.NewWitnessFile(dir, art.System.NbWires, 1)
			if err != nil {
				t.Fatalf("witness spill store: %v", err)
			}
			defer wf.Close()
			if err := art.System.SolveSpilled(art.Assignment.Public, art.Assignment.Secret, wf, nil); err != nil {
				t.Fatalf("spilled solve: %v", err)
			}
			spilled, err := groth16.ProveStreamedSpilled(csf, spk, wf, rand.New(rand.NewSource(seed+2)), nil)
			if err != nil {
				t.Fatalf("fully out-of-core prove: %v", err)
			}
			var spilledBuf bytes.Buffer
			if _, err := spilled.WriteTo(&spilledBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBuf.Bytes(), spilledBuf.Bytes()) {
				t.Fatal("fully out-of-core proof bytes diverge from in-memory prover")
			}
		})
	}
}
