package core

import (
	"fmt"
	"math/rand"

	"zkrownn/internal/fixpoint"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/nn"
)

// The Bench*ExtractionCircuit constructors build end-to-end Algorithm 1
// circuits over randomly weighted models. They measure proof-system
// cost — constraint counts and runtimes are identical to real ownership
// proofs of the same shape — without paying for training/embedding.
// maxErrors is set to the signature length so the claim bit is 1 and
// the full verification path is exercised.

// randQuantDense returns a random dense quantized layer.
func randQuantDense(rng *rand.Rand, p fixpoint.Params, in, out int) nn.QuantizedLayer {
	w := make([]int64, in*out)
	b := make([]int64, out)
	for i := range w {
		w[i] = p.Encode(rng.NormFloat64() * 0.1)
	}
	for i := range b {
		b[i] = p.Encode(rng.NormFloat64() * 0.1)
	}
	return nn.QuantizedLayer{Kind: "dense", In: in, Out: out, W: w, B: b}
}

// randQuantConv returns a random conv quantized layer.
func randQuantConv(rng *rand.Rand, p fixpoint.Params, shape gadgets.Conv3DShape) nn.QuantizedLayer {
	w := make([]int64, shape.OutC*shape.InC*shape.K*shape.K)
	b := make([]int64, shape.OutC)
	for i := range w {
		w[i] = p.Encode(rng.NormFloat64() * 0.2)
	}
	for i := range b {
		b[i] = p.Encode(rng.NormFloat64() * 0.1)
	}
	return nn.QuantizedLayer{
		Kind: "conv",
		InC:  shape.InC, InH: shape.InH, InW: shape.InW,
		OutC: shape.OutC, K: shape.K, S: shape.S,
		W: w, B: b,
	}
}

// randCircuitKey draws random trigger/projection/signature material.
func randCircuitKey(rng *rand.Rand, p fixpoint.Params, inputDim, actDim, bits, triggers int) *CircuitKey {
	ck := &CircuitKey{LayerIndex: 1}
	for t := 0; t < triggers; t++ {
		trig := make([]int64, inputDim)
		for i := range trig {
			trig[i] = p.Encode(rng.Float64()*2 - 1)
		}
		ck.Triggers = append(ck.Triggers, trig)
	}
	ck.A = make([][]int64, actDim)
	for i := range ck.A {
		ck.A[i] = make([]int64, bits)
		for j := range ck.A[i] {
			ck.A[i][j] = p.Encode(rng.NormFloat64())
		}
	}
	ck.Signature = make([]int, bits)
	for i := range ck.Signature {
		ck.Signature[i] = rng.Intn(2)
	}
	return ck
}

// BenchMLPExtractionCircuit builds the MNIST-MLP row of Table I at the
// given scale: first dense layer in×hidden, ReLU, then Algorithm 1 with
// the given watermark width and trigger count.
func BenchMLPExtractionCircuit(p fixpoint.Params, in, hidden, bits, triggers int, rng *rand.Rand) (*Artifact, error) {
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, p, in, hidden),
			{Kind: "relu", Out: hidden},
		},
	}
	ck := randCircuitKey(rng, p, in, hidden, bits, triggers)
	art, err := ExtractionCircuit(q, ck, bits)
	if err != nil {
		return nil, err
	}
	art.Name = "MNIST-MLP"
	return art, nil
}

// BenchBatchedMLPExtractionCircuit builds the batched-extraction bench
// row: the MNIST-MLP architecture of BenchMLPExtractionCircuit with k
// suspect-model slots sharing one watermark key — one proof, k claims.
// Identical key/model randomness to the k=1 row, so per-claim costs are
// directly comparable.
func BenchBatchedMLPExtractionCircuit(p fixpoint.Params, in, hidden, bits, triggers, k int, rng *rand.Rand) (*Artifact, error) {
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, p, in, hidden),
			{Kind: "relu", Out: hidden},
		},
	}
	ck := randCircuitKey(rng, p, in, hidden, bits, triggers)
	art, err := BatchedExtractionCircuit(q, ck, bits, k)
	if err != nil {
		return nil, err
	}
	art.Name = fmt.Sprintf("batched-extraction-k%d", k)
	return art, nil
}

// BenchCNNExtractionCircuit builds the CIFAR10-CNN row of Table I: first
// conv layer per the shape, ReLU, then Algorithm 1.
func BenchCNNExtractionCircuit(p fixpoint.Params, shape gadgets.Conv3DShape, bits, triggers int, rng *rand.Rand) (*Artifact, error) {
	conv := randQuantConv(rng, p, shape)
	actDim := shape.OutC * shape.OutH() * shape.OutW()
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			conv,
			{Kind: "relu", Out: actDim},
		},
	}
	ck := randCircuitKey(rng, p, shape.InC*shape.InH*shape.InW, actDim, bits, triggers)
	art, err := ExtractionCircuit(q, ck, bits)
	if err != nil {
		return nil, err
	}
	art.Name = "CIFAR10-CNN"
	return art, nil
}
