package core

import (
	"math/rand"
	"testing"

	"zkrownn/internal/fixpoint"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/nn"
)

// tableICircuits enumerates every Table I circuit at smoke scale —
// shared by the solver oracle below and reused wherever the full
// circuit zoo is needed.
func tableICircuits(t *testing.T, p fixpoint.Params, seed int64) []*Artifact {
	t.Helper()
	build := func(name string, f func(rng *rand.Rand) (*Artifact, error)) *Artifact {
		art, err := f(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return art
	}
	shape := gadgets.Conv3DShape{InC: 2, InH: 6, InW: 6, OutC: 2, K: 3, S: 2}
	return []*Artifact{
		build("matmult", func(rng *rand.Rand) (*Artifact, error) { return MatMultCircuit(p, 4, rng) }),
		build("conv3d", func(rng *rand.Rand) (*Artifact, error) { return Conv3DCircuit(p, shape, rng) }),
		build("relu", func(rng *rand.Rand) (*Artifact, error) { return ReLUCircuit(p, 6, rng) }),
		build("average2d", func(rng *rand.Rand) (*Artifact, error) { return Average2DCircuit(p, 4, rng) }),
		build("sigmoid", func(rng *rand.Rand) (*Artifact, error) { return SigmoidCircuit(p, 3, rng) }),
		build("threshold", func(rng *rand.Rand) (*Artifact, error) { return HardThresholdingCircuit(p, 6, rng) }),
		build("ber", func(rng *rand.Rand) (*Artifact, error) { return BERCircuit(p, 8, 2, rng) }),
		build("mnist-mlp", func(rng *rand.Rand) (*Artifact, error) {
			return BenchMLPExtractionCircuit(p, 6, 4, 4, 2, rng)
		}),
		build("cifar10-cnn", func(rng *rand.Rand) (*Artifact, error) {
			return BenchCNNExtractionCircuit(p, shape, 4, 2, rng)
		}),
	}
}

// TestSolveOracleTableI asserts, for every Table I circuit, that the
// recorded solver program reproduces the eager builder's witness bit
// for bit — the compile-once / solve-many correctness contract.
func TestSolveOracleTableI(t *testing.T) {
	p := fixpoint.Params{FracBits: 8, MagBits: 36}
	for _, art := range tableICircuits(t, p, 42) {
		art := art
		t.Run(art.Name, func(t *testing.T) {
			if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
				t.Fatalf("eager witness violates constraint %d", bad)
			}
			solved, err := art.System.SolveAssignment(art.Assignment)
			if err != nil {
				t.Fatal(err)
			}
			if len(solved) != len(art.Witness) {
				t.Fatalf("solved %d wires, eager has %d", len(solved), len(art.Witness))
			}
			for i := range solved {
				if !solved[i].Equal(&art.Witness[i]) {
					t.Fatalf("wire %d: solver %v != eager %v", i, solved[i], art.Witness[i])
				}
			}
		})
	}
}

// TestCommittedSolveOracle covers the committed-model variant: its
// model digest and claim are computed public outputs, re-derived by the
// solver from the private weights.
func TestCommittedSolveOracle(t *testing.T) {
	p := fixpoint.Params{FracBits: 8, MagBits: 36}
	rng := rand.New(rand.NewSource(7))
	q := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, p, 5, 3),
			{Kind: "relu", Out: 3},
		},
	}
	ck := randCircuitKey(rng, p, 5, 3, 4, 2)
	art, err := CommittedExtractionCircuit(q, ck, 4)
	if err != nil {
		t.Fatal(err)
	}
	solved, err := art.System.SolveAssignment(art.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solved {
		if !solved[i].Equal(&art.Witness[i]) {
			t.Fatalf("wire %d: solver %v != eager %v", i, solved[i], art.Witness[i])
		}
	}
	if len(art.System.PubInputs) != 0 {
		t.Fatalf("committed circuit should have no provided public inputs, has %d", len(art.System.PubInputs))
	}
	// The first public value is the model digest, recomputed in-circuit.
	_, wantDigest, err := ModelDigest(q, ck.LayerIndex)
	if err != nil {
		t.Fatal(err)
	}
	pub := art.System.PublicValues(solved)
	if !pub[0].Equal(&wantDigest) {
		t.Fatal("solved model digest differs from ModelDigest")
	}
}

// TestBindSuspectInputs proves one compiled extraction circuit against
// a different model of the same architecture: binding must reproduce
// exactly the witness a from-scratch compile of the suspect would give,
// without compiling anything.
func TestBindSuspectInputs(t *testing.T) {
	p := fixpoint.Params{FracBits: 8, MagBits: 36}
	mkNet := func(seed int64) *nn.QuantizedNetwork {
		rng := rand.New(rand.NewSource(seed))
		return &nn.QuantizedNetwork{
			Params: p,
			Layers: []nn.QuantizedLayer{
				randQuantDense(rng, p, 5, 3),
				{Kind: "relu", Out: 3},
			},
		}
	}
	keyRng := rand.New(rand.NewSource(99))
	ck := randCircuitKey(keyRng, p, 5, 3, 4, 2)

	registered := mkNet(1)
	art, err := ExtractionCircuit(registered, ck, 4)
	if err != nil {
		t.Fatal(err)
	}

	suspect := mkNet(2)
	if err := SameArchitecture(registered, suspect, ck.LayerIndex); err != nil {
		t.Fatal(err)
	}
	asg, err := BindSuspectInputs(art, suspect)
	if err != nil {
		t.Fatal(err)
	}
	solved, err := art.System.SolveAssignment(asg)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(solved); !ok {
		t.Fatalf("bound witness violates constraint %d", bad)
	}

	// Oracle: compiling the suspect from scratch must give the same
	// circuit (digest) and the same witness.
	artSuspect, err := ExtractionCircuit(suspect, ck, 4)
	if err != nil {
		t.Fatal(err)
	}
	if artSuspect.System.DigestHex() != art.System.DigestHex() {
		t.Fatal("same-architecture suspect compiled to a different circuit")
	}
	for i := range solved {
		if !solved[i].Equal(&artSuspect.Witness[i]) {
			t.Fatalf("wire %d: bound-solve %v != suspect eager %v", i, solved[i], artSuspect.Witness[i])
		}
	}

	// Architecture mismatches are rejected before any solving.
	wide := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rand.New(rand.NewSource(3)), p, 5, 4),
			{Kind: "relu", Out: 4},
		},
	}
	if err := SameArchitecture(registered, wide, ck.LayerIndex); err == nil {
		t.Fatal("wider suspect accepted as same architecture")
	}
	if _, err := BindSuspectInputs(art, wide); err == nil {
		t.Fatal("binding a mismatched suspect succeeded")
	}

	// Same flat weight COUNT but a different shape (3×5 vs 5×3: both 15
	// weights) must still be rejected — counts alone are not identity.
	reshaped := &nn.QuantizedNetwork{
		Params: p,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rand.New(rand.NewSource(4)), p, 3, 5),
			{Kind: "relu", Out: 5},
		},
	}
	if _, err := BindSuspectInputs(art, reshaped); err == nil {
		t.Fatal("reshaped suspect with matching weight count accepted")
	}

	// A suspect quantized under a different fixed-point format is a
	// different circuit, however well its shapes match.
	requantized := mkNet(2)
	requantized.Params = fixpoint.Params{FracBits: 10, MagBits: 36}
	if _, err := BindSuspectInputs(art, requantized); err == nil {
		t.Fatal("suspect with a different fixed-point format accepted")
	}

	// Committed circuits cannot be rebound (no weight inputs).
	artC, err := CommittedExtractionCircuit(registered, ck, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BindSuspectInputs(artC, suspect); err == nil {
		t.Fatal("committed circuit rebinding succeeded")
	}
}
