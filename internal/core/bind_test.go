package core

import (
	"math/rand"
	"strings"
	"testing"

	"zkrownn/internal/fixpoint"
	"zkrownn/internal/nn"
)

// Edge-case coverage for the suspect-rebinding path: every malformed
// suspect must produce a descriptive error, never a panic or a silent
// mis-binding.

// twoDenseNet builds a dense→relu→dense network so mismatches can be
// planted at the first or last evaluated layer.
func twoDenseNet(seed int64, in, hidden, out int) *nn.QuantizedNetwork {
	rng := rand.New(rand.NewSource(seed))
	return &nn.QuantizedNetwork{
		Params: batchP,
		Layers: []nn.QuantizedLayer{
			randQuantDense(rng, batchP, in, hidden),
			{Kind: "relu", Out: hidden},
			randQuantDense(rng, batchP, hidden, out),
		},
	}
}

func twoDenseArtifact(t *testing.T, seed int64) (*Artifact, *CircuitKey) {
	t.Helper()
	q := twoDenseNet(seed, 4, 3, 2)
	ck := randCircuitKey(rand.New(rand.NewSource(seed+100)), batchP, 4, 2, 4, 2)
	ck.LayerIndex = 2 // evaluate through the last dense layer
	art, err := ExtractionCircuit(q, ck, 2)
	if err != nil {
		t.Fatal(err)
	}
	return art, ck
}

// wantBindError asserts BindSuspectInputs rejects the suspect with an
// error mentioning every given fragment (and without panicking).
func wantBindError(t *testing.T, art *Artifact, suspect *nn.QuantizedNetwork, fragments ...string) {
	t.Helper()
	_, err := BindSuspectInputs(art, suspect)
	if err == nil {
		t.Fatal("malformed suspect accepted")
	}
	for _, frag := range fragments {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
}

func TestBindSuspectEmptyNetwork(t *testing.T) {
	art, _ := twoDenseArtifact(t, 50)
	empty := &nn.QuantizedNetwork{Params: batchP}
	wantBindError(t, art, empty, "architecture mismatch")

	if err := SameArchitecture(twoDenseNet(50, 4, 3, 2), empty, 2); err == nil {
		t.Fatal("SameArchitecture accepted an empty network")
	}
}

func TestBindSuspectMissingLayer(t *testing.T) {
	art, _ := twoDenseArtifact(t, 51)
	// Suspect stops before the evaluated prefix ends (missing the last
	// dense layer).
	short := twoDenseNet(51, 4, 3, 2)
	short.Layers = short.Layers[:2]
	wantBindError(t, art, short, "architecture mismatch")
}

func TestBindSuspectExtraTrailingLayerAllowed(t *testing.T) {
	art, _ := twoDenseArtifact(t, 52)
	// Extra layers BEYOND the evaluated prefix are fine: the circuit
	// only reads layers 0..l_wm.
	deep := twoDenseNet(99, 4, 3, 2)
	deep.Layers = append(deep.Layers, nn.QuantizedLayer{Kind: "relu", Out: 2})
	if _, err := BindSuspectInputs(art, deep); err != nil {
		t.Fatalf("suspect with extra trailing layer rejected: %v", err)
	}
}

func TestBindSuspectShapeMismatchFirstLayer(t *testing.T) {
	art, _ := twoDenseArtifact(t, 53)
	bad := twoDenseNet(53, 5, 3, 2) // layer 0 in-dim 5 vs 4
	wantBindError(t, art, bad, "layer 0")
}

func TestBindSuspectShapeMismatchLastLayer(t *testing.T) {
	art, _ := twoDenseArtifact(t, 54)
	bad := twoDenseNet(54, 4, 3, 3) // layer 2 out-dim 3 vs 2
	wantBindError(t, art, bad, "layer 2")
}

func TestBindSuspectKindMismatch(t *testing.T) {
	art, _ := twoDenseArtifact(t, 55)
	bad := twoDenseNet(55, 4, 3, 2)
	bad.Layers[1].Kind = "sigmoid"
	wantBindError(t, art, bad, "layer 1", "kind")
}

func TestBindSuspectWeightCountMismatch(t *testing.T) {
	art, _ := twoDenseArtifact(t, 56)
	bad := twoDenseNet(56, 4, 3, 2)
	bad.Layers[0].W = bad.Layers[0].W[:len(bad.Layers[0].W)-1]
	wantBindError(t, art, bad, "weights")
}

// TestSuspectVectorNamesLayers covers the name-resolution helper: a
// weight input naming a layer the suspect doesn't have is an error, a
// non-weight name is simply not a weight input.
func TestSuspectVectorNamesLayers(t *testing.T) {
	q := twoDenseNet(57, 4, 3, 2)
	if _, ok, err := suspectVector(q, "w0"); !ok || err != nil {
		t.Fatalf("w0 not resolved: ok=%v err=%v", ok, err)
	}
	if _, ok, err := suspectVector(q, "b2"); !ok || err != nil {
		t.Fatalf("b2 not resolved: ok=%v err=%v", ok, err)
	}
	if _, _, err := suspectVector(q, "w9"); err == nil {
		t.Fatal("weight input naming a missing layer accepted")
	}
	for _, name := range []string{"claim", "claim3", "relu_out", "sigmoid_out", "x", ""} {
		if _, ok, err := suspectVector(q, name); ok || err != nil {
			t.Fatalf("%q misidentified as a weight input (ok=%v err=%v)", name, ok, err)
		}
	}
}

// TestSplitSlotName pins the slot-name grammar used by batched
// circuits.
func TestSplitSlotName(t *testing.T) {
	cases := []struct {
		name string
		slot int
		base string
	}{
		{"w0", 0, "w0"},
		{"b3", 0, "b3"},
		{"s0.w0", 0, "w0"},
		{"s12.b7", 12, "b7"},
		{"claim", 0, "claim"},
		{"claim4", 0, "claim4"},
		{"sigmoid_out", 0, "sigmoid_out"},
		{"s.w0", 0, "s.w0"},   // no slot digits
		{"sx.w0", 0, "sx.w0"}, // non-numeric slot
	}
	for _, c := range cases {
		slot, base := splitSlotName(c.name)
		if slot != c.slot || base != c.base {
			t.Fatalf("splitSlotName(%q) = (%d, %q), want (%d, %q)", c.name, slot, base, c.slot, c.base)
		}
	}
}

func TestSameArchitectureEdgeCases(t *testing.T) {
	a := twoDenseNet(60, 4, 3, 2)
	b := twoDenseNet(61, 4, 3, 2)
	if err := SameArchitecture(a, b, 2); err != nil {
		t.Fatalf("equal architectures rejected: %v", err)
	}
	if err := SameArchitecture(a, b, 3); err == nil {
		t.Fatal("layer index beyond both networks accepted")
	}
	requant := twoDenseNet(61, 4, 3, 2)
	requant.Params = fixpoint.Params{FracBits: 10, MagBits: 36}
	if err := SameArchitecture(a, requant, 2); err == nil {
		t.Fatal("differing fixed-point formats accepted")
	}
	if err := SameArchitecture(&nn.QuantizedNetwork{Params: batchP}, &nn.QuantizedNetwork{Params: batchP}, 0); err == nil {
		t.Fatal("two empty networks accepted at layer 0")
	}
}
