package core

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/dataset"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/nn"
	"zkrownn/internal/watermark"
)

var testP = fixpoint.Params{FracBits: 12, MagBits: 40}

// watermarkedMLP returns a small trained+watermarked MLP, its quantized
// image, and the key.
func watermarkedMLP(t *testing.T, seed int64) (*nn.Network, *nn.QuantizedNetwork, *watermark.Key) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Samples: 240, Dim: 12, Classes: 3, ClusterStd: 0.25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	// 32 hidden units: DeepSigns needs enough live post-ReLU dimensions
	// for the non-negative activation means to realise the signature
	// pattern (the paper's layers are 512-wide; 16 is too tight for some
	// seeds).
	net := nn.NewMLP(nn.MLPConfig{In: 12, Hidden: []int{32}, Classes: 3}, rng)
	net.Train(ds.X, ds.Y, nn.TrainConfig{Epochs: 8, BatchSize: 16, LearningRate: 0.1, Silent: true}, rng)

	key, err := watermark.GenerateKey(rng, 1, 0, 32, 8, 4, ds.OfClass(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := watermark.DefaultEmbedConfig()
	cfg.Epochs = 150
	if err := watermark.Embed(net, key, ds.X, ds.Y, cfg, rng); err != nil {
		t.Fatal(err)
	}
	if _, ber := watermark.Extract(net, key); ber != 0 {
		t.Fatalf("embedding did not converge, BER %v", ber)
	}
	q, err := nn.Quantize(net, testP)
	if err != nil {
		t.Fatal(err)
	}
	return net, q, key
}

func TestExtractionCircuitMatchesSimulator(t *testing.T) {
	_, q, key := watermarkedMLP(t, 300)
	ck := QuantizeKey(key, testP)

	bits, nbErr, err := watermark.ExtractQuantized(q, key)
	if err != nil {
		t.Fatal(err)
	}
	art, err := ExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("extraction circuit unsatisfied at constraint %d", bad)
	}
	// The claim bit (last public input) must be 1 exactly when the
	// simulator reports zero errors.
	pub := art.PublicInputs()
	claim := pub[len(pub)-1]
	var one fr.Element
	one.SetOne()
	if nbErr == 0 && !claim.Equal(&one) {
		t.Fatalf("simulator extracted %v cleanly but circuit claim is %v", bits, claim)
	}
	if nbErr != 0 {
		t.Fatalf("simulator has %d bit errors on a watermarked model", nbErr)
	}
}

func TestExtractionEndToEndProof(t *testing.T) {
	_, q, key := watermarkedMLP(t, 301)
	ck := QuantizeKey(key, testP)
	art, err := ExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(302))
	pl, err := RunPipeline(art, rng)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyClaim(pl.VK, pl.Proof, art.PublicInputs())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ownership claim not validated")
	}
	if pl.Metrics.ProofSize != 128 {
		t.Fatalf("proof size %d, want 128", pl.Metrics.ProofSize)
	}
	if pl.Metrics.NbConstraints == 0 {
		t.Fatal("no constraints recorded")
	}
}

func TestNonWatermarkedModelYieldsClaimZero(t *testing.T) {
	// A model that was never embedded: the circuit must still be
	// satisfiable (the prover can honestly prove extraction ran) but the
	// claim bit comes out 0, so verifiers reject the ownership claim.
	ds, err := dataset.Generate(dataset.Config{
		Samples: 240, Dim: 12, Classes: 3, ClusterStd: 0.25, Seed: 303,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(303))
	net := nn.NewMLP(nn.MLPConfig{In: 12, Hidden: []int{16}, Classes: 3}, rng)
	net.Train(ds.X, ds.Y, nn.TrainConfig{Epochs: 8, BatchSize: 16, LearningRate: 0.1, Silent: true}, rng)
	key, err := watermark.GenerateKey(rng, 1, 0, 16, 8, 4, ds.OfClass(0))
	if err != nil {
		t.Fatal(err)
	}
	q, err := nn.Quantize(net, testP)
	if err != nil {
		t.Fatal(err)
	}
	ck := QuantizeKey(key, testP)
	art, err := ExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("circuit unsatisfied at %d", bad)
	}
	pub := art.PublicInputs()
	claim := pub[len(pub)-1]
	if !claim.IsZero() {
		t.Fatal("unwatermarked model produced claim = 1")
	}
}

func TestExtractionCNN(t *testing.T) {
	// Small CNN: conv first layer, watermark after its ReLU.
	ds, err := dataset.Generate(dataset.Config{
		Samples: 150, Dim: 2 * 8 * 8, Classes: 3, ClusterStd: 0.25, Seed: 304,
		Shape: [3]int{2, 8, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(304))
	net := nn.NewSmallCNN(nn.SmallCNNConfig{
		InC: 2, InH: 8, InW: 8, OutC: 4, K: 3, S: 2, Hidden: 12, Classes: 3,
	}, rng)
	net.Train(ds.X, ds.Y, nn.TrainConfig{Epochs: 6, BatchSize: 16, LearningRate: 0.05, Silent: true}, rng)

	actDim := net.Layers[0].OutputSize()
	key, err := watermark.GenerateKey(rng, 1, 0, actDim, 8, 2, ds.OfClass(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := watermark.DefaultEmbedConfig()
	cfg.Epochs = 60
	if err := watermark.Embed(net, key, ds.X, ds.Y, cfg, rng); err != nil {
		t.Fatal(err)
	}
	if _, ber := watermark.Extract(net, key); ber != 0 {
		t.Skipf("CNN embedding did not fully converge (BER %v); skipping circuit check", ber)
	}

	q, err := nn.Quantize(net, testP)
	if err != nil {
		t.Fatal(err)
	}
	_, nbErr, err := watermark.ExtractQuantized(q, key)
	if err != nil {
		t.Fatal(err)
	}
	ck := QuantizeKey(key, testP)
	art, err := ExtractionCircuit(q, ck, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
		t.Fatalf("CNN extraction circuit unsatisfied at %d", bad)
	}
	pub := art.PublicInputs()
	claim := pub[len(pub)-1]
	var one fr.Element
	one.SetOne()
	if nbErr == 0 && !claim.Equal(&one) {
		t.Fatal("CNN circuit disagrees with simulator")
	}
}

func TestTableICircuitsSatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	p := fixpoint.Params{FracBits: 12, MagBits: 40}

	builders := []func() (*Artifact, error){
		func() (*Artifact, error) { return MatMultCircuit(p, 4, rng) },
		func() (*Artifact, error) {
			return Conv3DCircuit(p, gadgets.Conv3DShape{InC: 2, InH: 6, InW: 6, OutC: 2, K: 3, S: 2}, rng)
		},
		func() (*Artifact, error) { return ReLUCircuit(p, 8, rng) },
		func() (*Artifact, error) { return Average2DCircuit(p, 4, rng) },
		func() (*Artifact, error) { return SigmoidCircuit(p, 4, rng) },
		func() (*Artifact, error) { return HardThresholdingCircuit(p, 8, rng) },
		func() (*Artifact, error) { return BERCircuit(p, 16, 2, rng) },
	}
	for _, build := range builders {
		art, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if ok, bad := art.System.IsSatisfied(art.Witness); !ok {
			t.Fatalf("%s unsatisfied at constraint %d", art.Name, bad)
		}
		if art.System.NbConstraints() == 0 {
			t.Fatalf("%s has no constraints", art.Name)
		}
	}
}

func TestTableICircuitFullPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	p := fixpoint.Params{FracBits: 12, MagBits: 40}
	art, err := ReLUCircuit(p, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := RunPipeline(art, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := pl.Metrics
	if m.ProofSize != 128 || m.PKSize == 0 || m.VKSize == 0 {
		t.Fatalf("bad metrics: %+v", m)
	}
	if m.String() == "" || Header() == "" {
		t.Fatal("metrics rendering broken")
	}
}

func TestQuantizeKeyShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	candidates := make([][]float64, 8)
	for i := range candidates {
		candidates[i] = []float64{rng.Float64(), rng.Float64()}
	}
	key, err := watermark.GenerateKey(rng, 1, 0, 16, 8, 4, candidates)
	if err != nil {
		t.Fatal(err)
	}
	ck := QuantizeKey(key, testP)
	if len(ck.Triggers) != len(key.Triggers) || len(ck.A) != len(key.A) {
		t.Fatal("QuantizeKey shape mismatch")
	}
	if len(ck.Signature) != key.NbBits() {
		t.Fatal("signature length mismatch")
	}
}

func TestExtractionCircuitErrors(t *testing.T) {
	_, q, key := watermarkedMLP(t, 308)
	ck := QuantizeKey(key, testP)
	ck.Triggers = nil
	if _, err := ExtractionCircuit(q, ck, 0); err == nil {
		t.Fatal("empty triggers accepted")
	}
	ck2 := QuantizeKey(key, testP)
	ck2.LayerIndex = 99
	if _, err := ExtractionCircuit(q, ck2, 0); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
}
