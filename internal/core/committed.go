package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/frontend"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/nn"
)

// Committed-model extraction.
//
// In the paper's construction the suspect model's weights are *public
// inputs*, which makes the verifying key grow with the model (16 MB for
// the MNIST MLP) and adds a large multi-exponentiation to every
// verification. This extension replaces the weight wires with private
// inputs bound to the public model by a Fiat-Shamir random linear
// combination:
//
//	ρ  = H(model bytes)                       (SHA-256, public)
//	d  = Σᵢ ρ^(i+1)·wᵢ mod r                  (the digest)
//
// The verifier recomputes d from the public model in O(n) field
// operations; the circuit computes the same combination over its
// private weight wires — entirely linear, so it costs ONE extra
// constraint — and exposes d as the sole model-related public input.
// A prover using different weights w' must hit a random codimension-1
// hyperplane (probability ≤ n/r ≈ 2^-230), so the proof still binds to
// exactly the published model.
//
// Result: constant-size verifying keys and millisecond verification
// regardless of model size, at unchanged prover cost.

// ModelDigest computes (ρ, d) for a quantized model prefix
// (layers 0..layerIndex). Both prover and verifier call this on the
// public model.
func ModelDigest(q *nn.QuantizedNetwork, layerIndex int) (rho fr.Element, digest fr.Element, err error) {
	if layerIndex >= len(q.Layers) {
		return rho, digest, fmt.Errorf("core: layer index %d out of range", layerIndex)
	}
	// ρ = H(serialized weights) mapped into F_r.
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(q.Params.FracBits))
	writeInt(int64(layerIndex))
	for li := 0; li <= layerIndex; li++ {
		l := &q.Layers[li]
		writeInt(int64(len(l.W)))
		for _, w := range l.W {
			writeInt(w)
		}
		writeInt(int64(len(l.B)))
		for _, b := range l.B {
			writeInt(b)
		}
	}
	rho.SetBytes(h.Sum(nil))

	// d = Σ ρ^(i+1)·vᵢ over the same serialization order.
	var acc, pow fr.Element
	pow.Set(&rho)
	absorb := func(v int64) {
		f := fixpoint.ToField(v)
		var term fr.Element
		term.Mul(&pow, &f)
		acc.Add(&acc, &term)
		pow.Mul(&pow, &rho)
	}
	for li := 0; li <= layerIndex; li++ {
		l := &q.Layers[li]
		for _, w := range l.W {
			absorb(w)
		}
		for _, b := range l.B {
			absorb(b)
		}
	}
	return rho, acc, nil
}

// CommittedExtractionCircuit builds Algorithm 1 with *private* model
// weights bound to the public digest. Public inputs: the model digest
// and the claim bit — two field elements total, independent of model
// size.
func CommittedExtractionCircuit(q *nn.QuantizedNetwork, ck *CircuitKey, maxErrors int) (*Artifact, error) {
	if len(ck.Triggers) == 0 {
		return nil, fmt.Errorf("core: no triggers in circuit key")
	}
	if ck.LayerIndex >= len(q.Layers) {
		return nil, fmt.Errorf("core: layer index %d out of range", ck.LayerIndex)
	}
	p := q.Params
	c := gadgets.NewCtx(p)

	rho, digest, err := ModelDigest(q, ck.LayerIndex)
	if err != nil {
		return nil, err
	}

	// Private model parameters, accumulated into the in-circuit digest
	// in the exact ModelDigest order.
	type layerVars struct {
		w    []frontend.Variable
		bias []frontend.Variable
	}
	var digestTerms []frontend.Variable
	var pow fr.Element
	pow.Set(&rho)
	absorb := func(v frontend.Variable) {
		digestTerms = append(digestTerms, c.B.MulConst(v, pow))
		pow.Mul(&pow, &rho)
	}

	lv := make([]layerVars, ck.LayerIndex+1)
	for li := 0; li <= ck.LayerIndex; li++ {
		l := &q.Layers[li]
		switch l.Kind {
		case "dense", "conv":
			lv[li].w = secretVec(c, l.W)
			lv[li].bias = secretVec(c, l.B)
			for _, v := range lv[li].w {
				absorb(v)
			}
			for _, v := range lv[li].bias {
				absorb(v)
			}
		}
	}

	// Bind: Σ ρ^(i+1)·wᵢ == public digest (one constraint; the sum is
	// linear). The digest is a computed public output re-derived by the
	// solver from the private weight wires.
	inDigest := c.B.Sum(digestTerms...)
	if dv := inDigest.Value(); !dv.Equal(&digest) {
		return nil, fmt.Errorf("core: in-circuit model digest does not match ModelDigest")
	}
	c.B.PublicOutput("model_digest", inDigest)

	// The remainder is Algorithm 1, identical to ExtractionCircuit.
	acts := make([][]frontend.Variable, len(ck.Triggers))
	for t, trig := range ck.Triggers {
		cur := secretVec(c, trig)
		for li := 0; li <= ck.LayerIndex; li++ {
			l := &q.Layers[li]
			switch l.Kind {
			case "dense":
				if len(cur) != l.In {
					return nil, fmt.Errorf("core: dense layer %d expects %d inputs, got %d", li, l.In, len(cur))
				}
				wRows := make([][]frontend.Variable, l.Out)
				for o := 0; o < l.Out; o++ {
					wRows[o] = lv[li].w[o*l.In : (o+1)*l.In]
				}
				cur = c.Dense(wRows, cur, lv[li].bias, true, p.MagBits)
			case "relu":
				cur = c.ReLUVec(cur, p.MagBits)
			case "sigmoid":
				cur = c.SigmoidVec(cur, p.MagBits)
			case "conv":
				shape := gadgets.Conv3DShape{
					InC: l.InC, InH: l.InH, InW: l.InW,
					OutC: l.OutC, K: l.K, S: l.S,
				}
				vol := reshapeVolume(cur, l.InC, l.InH, l.InW)
				kv := reshapeKernels(lv[li].w, l.OutC, l.InC, l.K)
				out := c.Conv3D(shape, vol, kv, lv[li].bias, true, p.MagBits)
				cur = flattenVolume(out)
			case "maxpool":
				oh := (l.InH-l.K)/l.S + 1
				ow := (l.InW-l.K)/l.S + 1
				vol := reshapeVolume(cur, l.InC, l.InH, l.InW)
				var flat []frontend.Variable
				for ch := 0; ch < l.InC; ch++ {
					pooled := c.MaxPool2D(vol[ch], l.K, l.S, p.MagBits)
					for i := 0; i < oh; i++ {
						flat = append(flat, pooled[i][:ow]...)
					}
				}
				cur = flat
			default:
				return nil, fmt.Errorf("core: unsupported layer kind %q", l.Kind)
			}
		}
		acts[t] = cur
	}

	mu := c.AverageCols(acts, p.MagBits)
	m := len(mu)
	if len(ck.A) < m {
		return nil, fmt.Errorf("core: projection has %d rows, activations have %d", len(ck.A), m)
	}
	nbits := len(ck.Signature)
	g := make([]frontend.Variable, nbits)
	aCols := make([][]frontend.Variable, nbits)
	for j := 0; j < nbits; j++ {
		aCols[j] = make([]frontend.Variable, m)
	}
	for i := 0; i < m; i++ {
		rowVars := secretVec(c, ck.A[i][:nbits])
		for j := 0; j < nbits; j++ {
			aCols[j][i] = rowVars[j]
		}
	}
	for j := 0; j < nbits; j++ {
		z := c.InnerProduct(mu, aCols[j])
		z = c.Rescale(z, p.MagBits)
		g[j] = c.Sigmoid(z, p.MagBits)
	}
	wmHat := c.HardThresholdVec(g, p.Encode(0.5), p.MagBits)
	wmBits := make([]int64, nbits)
	for j, b := range ck.Signature {
		wmBits[j] = int64(b)
	}
	wmVars := secretVec(c, wmBits)
	valid := c.BER(wmVars, wmHat, maxErrors)

	c.B.PublicOutput("claim", valid)

	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	return newArtifact("CommittedWatermarkExtraction", res), nil
}

// VerifyCommittedPublicInputs checks that a committed-extraction proof's
// public inputs match the given public model: the digest must equal
// ModelDigest(q) and the claim must be 1. Callers combine this with
// groth16.Verify.
func VerifyCommittedPublicInputs(q *nn.QuantizedNetwork, layerIndex int, public []fr.Element) error {
	if len(public) != 2 {
		return fmt.Errorf("core: committed circuit has 2 public inputs, got %d", len(public))
	}
	_, want, err := ModelDigest(q, layerIndex)
	if err != nil {
		return err
	}
	if !public[0].Equal(&want) {
		return fmt.Errorf("core: model digest mismatch: proof is not about this model")
	}
	var one fr.Element
	one.SetOne()
	if !public[1].Equal(&one) {
		return fmt.Errorf("core: ownership claim is 0")
	}
	return nil
}
