package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/frontend"
	"zkrownn/internal/gadgets"
	"zkrownn/internal/nn"
)

// Committed-model extraction.
//
// In the paper's construction the suspect model's weights are *public
// inputs*, which makes the verifying key grow with the model (16 MB for
// the MNIST MLP) and adds a large multi-exponentiation to every
// verification. This extension replaces the weight wires with private
// inputs bound to the public model by a Fiat-Shamir random linear
// combination:
//
//	ρ  = H(model bytes)                       (SHA-256, public)
//	d  = Σᵢ ρ^(i+1)·wᵢ mod r                  (the digest)
//
// The verifier recomputes d from the public model in O(n) field
// operations; the circuit computes the same combination over its
// private weight wires — entirely linear, so it costs ONE extra
// constraint — and exposes d as the sole model-related public input.
// A prover using different weights w' must hit a random codimension-1
// hyperplane (probability ≤ n/r ≈ 2^-230), so the proof still binds to
// exactly the published model.
//
// Result: constant-size verifying keys and millisecond verification
// regardless of model size, at unchanged prover cost.

// ModelDigest computes (ρ, d) for a quantized model prefix
// (layers 0..layerIndex). Both prover and verifier call this on the
// public model.
func ModelDigest(q *nn.QuantizedNetwork, layerIndex int) (rho fr.Element, digest fr.Element, err error) {
	if layerIndex >= len(q.Layers) {
		return rho, digest, fmt.Errorf("core: layer index %d out of range", layerIndex)
	}
	// ρ = H(serialized weights) mapped into F_r.
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(q.Params.FracBits))
	writeInt(int64(layerIndex))
	for li := 0; li <= layerIndex; li++ {
		l := &q.Layers[li]
		writeInt(int64(len(l.W)))
		for _, w := range l.W {
			writeInt(w)
		}
		writeInt(int64(len(l.B)))
		for _, b := range l.B {
			writeInt(b)
		}
	}
	rho.SetBytes(h.Sum(nil))

	// d = Σ ρ^(i+1)·vᵢ over the same serialization order.
	var acc, pow fr.Element
	pow.Set(&rho)
	absorb := func(v int64) {
		f := fixpoint.ToField(v)
		var term fr.Element
		term.Mul(&pow, &f)
		acc.Add(&acc, &term)
		pow.Mul(&pow, &rho)
	}
	for li := 0; li <= layerIndex; li++ {
		l := &q.Layers[li]
		for _, w := range l.W {
			absorb(w)
		}
		for _, b := range l.B {
			absorb(b)
		}
	}
	return rho, acc, nil
}

// digestName names slot s's public model-digest output ("model_digest"
// when single).
func digestName(slot, nbSlots int) string {
	if nbSlots == 1 {
		return "model_digest"
	}
	return fmt.Sprintf("model_digest%d", slot)
}

// CommittedExtractionCircuit builds Algorithm 1 with *private* model
// weights bound to the public digest. Public inputs: the model digest
// and the claim bit — two field elements total, independent of model
// size.
func CommittedExtractionCircuit(q *nn.QuantizedNetwork, ck *CircuitKey, maxErrors int) (*Artifact, error) {
	return BatchedCommittedExtractionCircuit([]*nn.QuantizedNetwork{q}, ck, maxErrors)
}

// BatchedCommittedExtractionCircuit is the committed-model analogue of
// BatchedExtractionCircuit: each slot bakes one model's weights into
// private wires bound to that model's Fiat-Shamir digest, and the
// shared watermark key is extracted against every slot. Public inputs
// are the K per-slot model digests followed by the K claim bits —
// 2K field elements regardless of model size.
//
// Unlike the public-weight batched circuit, the slot models are fixed
// at compile time (ρ = H(weights) lands in the constraint
// coefficients), so the batch membership cannot be rebound: proving a
// different batch means compiling a different circuit. All models must
// share the architecture of qs[0] through the key's layer index.
func BatchedCommittedExtractionCircuit(qs []*nn.QuantizedNetwork, ck *CircuitKey, maxErrors int) (*Artifact, error) {
	k := len(qs)
	if k < 1 {
		return nil, fmt.Errorf("core: batched committed extraction needs at least one model")
	}
	if len(ck.Triggers) == 0 {
		return nil, fmt.Errorf("core: no triggers in circuit key")
	}
	if ck.LayerIndex >= len(qs[0].Layers) {
		return nil, fmt.Errorf("core: layer index %d out of range", ck.LayerIndex)
	}
	for s := 1; s < k; s++ {
		if err := SameArchitecture(qs[0], qs[s], ck.LayerIndex); err != nil {
			return nil, fmt.Errorf("core: committed batch slot %d: %w", s, err)
		}
	}
	c := gadgets.NewCtx(qs[0].Params)

	kv := &sharedKeyVars{}
	claims := make([]frontend.Variable, k)
	for s := 0; s < k; s++ {
		q := qs[s]
		rho, digest, err := ModelDigest(q, ck.LayerIndex)
		if err != nil {
			return nil, err
		}

		// Private model parameters, accumulated into the in-circuit
		// digest in the exact ModelDigest order.
		var digestTerms []frontend.Variable
		var pow fr.Element
		pow.Set(&rho)
		absorb := func(v frontend.Variable) {
			digestTerms = append(digestTerms, c.B.MulConst(v, pow))
			pow.Mul(&pow, &rho)
		}
		lv := make([]layerVars, ck.LayerIndex+1)
		for li := 0; li <= ck.LayerIndex; li++ {
			l := &q.Layers[li]
			switch l.Kind {
			case "dense", "conv":
				lv[li].w = secretVec(c, l.W)
				lv[li].bias = secretVec(c, l.B)
				for _, v := range lv[li].w {
					absorb(v)
				}
				for _, v := range lv[li].bias {
					absorb(v)
				}
			}
		}

		// Bind: Σ ρ^(i+1)·wᵢ == public digest (one constraint; the sum
		// is linear). The digest is a computed public output re-derived
		// by the solver from the private weight wires.
		inDigest := c.B.Sum(digestTerms...)
		if dv := inDigest.Value(); !dv.Equal(&digest) {
			return nil, fmt.Errorf("core: in-circuit model digest does not match ModelDigest")
		}
		c.B.PublicOutput(digestName(s, k), inDigest)

		// The remainder is Algorithm 1, identical to ExtractionCircuit.
		valid, err := extractionSlot(c, q, ck, lv, kv, maxErrors)
		if err != nil {
			return nil, err
		}
		claims[s] = valid
	}

	for s := 0; s < k; s++ {
		c.B.PublicOutput(claimName(s, k), claims[s])
	}

	res, err := c.B.Compile()
	if err != nil {
		return nil, err
	}
	name := "CommittedWatermarkExtraction"
	if k > 1 {
		name = fmt.Sprintf("BatchedCommittedExtraction-x%d", k)
	}
	art := newArtifact(name, res)
	art.slots = k
	return art, nil
}

// VerifyCommittedPublicInputs checks that a committed-extraction proof's
// public inputs match the given public model: the digest must equal
// ModelDigest(q) and the claim must be 1. Callers combine this with
// groth16.Verify.
func VerifyCommittedPublicInputs(q *nn.QuantizedNetwork, layerIndex int, public []fr.Element) error {
	if len(public) != 2 {
		return fmt.Errorf("core: committed circuit has 2 public inputs, got %d", len(public))
	}
	_, want, err := ModelDigest(q, layerIndex)
	if err != nil {
		return err
	}
	if !public[0].Equal(&want) {
		return fmt.Errorf("core: model digest mismatch: proof is not about this model")
	}
	var one fr.Element
	one.SetOne()
	if !public[1].Equal(&one) {
		return fmt.Errorf("core: ownership claim is 0")
	}
	return nil
}
