package core

import (
	"fmt"
	"strconv"
	"strings"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/fixpoint"
	"zkrownn/internal/nn"
	"zkrownn/internal/r1cs"
)

// Suspect-model input rebinding.
//
// The non-committed extraction circuit exposes the suspect model's
// weights as *public inputs* named "w<layer>" / "b<layer>". The circuit
// depends only on the architecture (shapes and layer kinds), not on the
// weight values — so proving the same registered key against a different
// suspect model of the same architecture does not need a recompile: the
// compiled system is reused and only the weight slots of the input
// assignment are rewritten. This is the solve-many path the proof
// service's prove queue runs on.

// SameArchitecture checks that two quantized networks share layer
// structure (kinds and shape parameters) through layer upTo inclusive —
// the condition under which they compile to the identical circuit.
func SameArchitecture(a, b *nn.QuantizedNetwork, upTo int) error {
	if a.Params != b.Params {
		return fmt.Errorf("core: architecture mismatch: fixed-point formats differ (%+v vs %+v)", a.Params, b.Params)
	}
	if upTo >= len(a.Layers) || upTo >= len(b.Layers) {
		return fmt.Errorf("core: architecture mismatch: layer index %d out of range (%d vs %d layers)", upTo, len(a.Layers), len(b.Layers))
	}
	for li := 0; li <= upTo; li++ {
		if err := sameLayerShape(layerShapeOf(&a.Layers[li]), &b.Layers[li], li); err != nil {
			return err
		}
	}
	return nil
}

// layerShape is the weight-free image of one quantized layer: enough to
// decide circuit-shape equality without retaining the weights
// themselves. Artifacts pin the shapes of the model they were compiled
// for, so suspect rebinding can enforce full architecture equality even
// when the registered network is long gone.
type layerShape struct {
	Kind                      string
	In, Out                   int
	InC, InH, InW, OutC, K, S int
	NbW, NbB                  int
}

func layerShapeOf(l *nn.QuantizedLayer) layerShape {
	return layerShape{
		Kind: l.Kind,
		In:   l.In, Out: l.Out,
		InC: l.InC, InH: l.InH, InW: l.InW,
		OutC: l.OutC, K: l.K, S: l.S,
		NbW: len(l.W), NbB: len(l.B),
	}
}

// archShapes captures the compile-time architecture of an extraction
// circuit (layers 0..upTo plus the fixed-point format).
func archShapes(q *nn.QuantizedNetwork, upTo int) []layerShape {
	out := make([]layerShape, upTo+1)
	for li := 0; li <= upTo; li++ {
		out[li] = layerShapeOf(&q.Layers[li])
	}
	return out
}

func sameLayerShape(want layerShape, got *nn.QuantizedLayer, li int) error {
	switch {
	case want.Kind != got.Kind:
		return fmt.Errorf("core: architecture mismatch: layer %d kind %q vs %q", li, want.Kind, got.Kind)
	case want.In != got.In || want.Out != got.Out:
		return fmt.Errorf("core: architecture mismatch: layer %d dense shape %dx%d vs %dx%d", li, want.In, want.Out, got.In, got.Out)
	case want.InC != got.InC || want.InH != got.InH || want.InW != got.InW ||
		want.OutC != got.OutC || want.K != got.K || want.S != got.S:
		return fmt.Errorf("core: architecture mismatch: layer %d conv/pool shape differs", li)
	case want.NbW != len(got.W) || want.NbB != len(got.B):
		return fmt.Errorf("core: architecture mismatch: layer %d has %d/%d weights, suspect has %d/%d", li, want.NbW, want.NbB, len(got.W), len(got.B))
	}
	return nil
}

// BindSuspectInputs rebinds a compiled extraction circuit's public
// weight inputs ("w<i>"/"b<i>") to a suspect model's quantized weights,
// leaving the private key material untouched. The returned assignment
// drives CompiledSystem.Solve — no circuit recompilation. On a batched
// circuit the same suspect is bound into every slot; use
// BindSuspectSlots to bind different suspects per slot.
//
// The artifact must come from ExtractionCircuit (committed circuits bake
// the model into constraint coefficients and cannot be rebound; they
// report an error here because their public inputs carry no weight
// names). The suspect must match the architecture the artifact was
// compiled for: the artifact pins the compile-time layer shapes and
// fixed-point format, and any mismatch — layer kind, dimensions, or
// quantization — is rejected before binding. Matching flat weight
// counts are NOT enough: a 4×3 dense layer and a 6×2 one both carry 12
// weights but compile to different circuits.
func BindSuspectInputs(art *Artifact, suspect *nn.QuantizedNetwork) (r1cs.Assignment, error) {
	suspects := make([]*nn.QuantizedNetwork, art.Slots())
	for i := range suspects {
		suspects[i] = suspect
	}
	return BindSuspectSlots(art, suspects)
}

// checkSuspectArch rejects a suspect whose architecture or fixed-point
// format differs from the one the artifact was compiled for.
func checkSuspectArch(art *Artifact, suspect *nn.QuantizedNetwork) error {
	if art.arch == nil {
		return nil
	}
	if suspect.Params != art.archParams {
		return fmt.Errorf("core: architecture mismatch: circuit compiled for fixed-point %+v, suspect quantized with %+v", art.archParams, suspect.Params)
	}
	if len(suspect.Layers) <= len(art.arch)-1 {
		return fmt.Errorf("core: architecture mismatch: circuit evaluates %d layers, suspect has %d", len(art.arch), len(suspect.Layers))
	}
	for li, want := range art.arch {
		if err := sameLayerShape(want, &suspect.Layers[li], li); err != nil {
			return err
		}
	}
	return nil
}

// splitSlotName resolves a public-input name to its batch slot and base
// weight name: "s2.w0" → (2, "w0"); unprefixed names ("w0", and every
// non-weight name) belong to slot 0.
func splitSlotName(name string) (slot int, base string) {
	if len(name) > 1 && name[0] == 's' {
		if dot := strings.IndexByte(name, '.'); dot > 1 {
			if n, err := strconv.Atoi(name[1:dot]); err == nil && n >= 0 {
				return n, name[dot+1:]
			}
		}
	}
	return 0, name
}

// BindSuspectSlots rebinds a batched extraction circuit's per-slot
// weight inputs to one suspect model per slot: suspects[s] replaces
// slot s's weights, a nil entry keeps the weights the circuit was
// compiled with (the registered model). len(suspects) must equal
// art.Slots(), and at least one entry must be non-nil. Every bound
// suspect must match the compile-time architecture exactly; any
// mismatch — layer kind, dimensions, quantization format, or weight
// count — is rejected before anything is bound.
func BindSuspectSlots(art *Artifact, suspects []*nn.QuantizedNetwork) (r1cs.Assignment, error) {
	if len(suspects) != art.Slots() {
		return r1cs.Assignment{}, fmt.Errorf("core: circuit has %d suspect slots, got %d models", art.Slots(), len(suspects))
	}
	any := false
	for s, suspect := range suspects {
		if suspect == nil {
			continue
		}
		any = true
		if err := checkSuspectArch(art, suspect); err != nil {
			return r1cs.Assignment{}, fmt.Errorf("slot %d: %w", s, err)
		}
	}
	if !any {
		return r1cs.Assignment{}, fmt.Errorf("core: no suspect models to bind (every slot is nil)")
	}
	asg := r1cs.Assignment{
		Public: append([]fr.Element(nil), art.Assignment.Public...),
		Secret: art.Assignment.Secret, // immutable, shared
	}
	bound := false
	// Per-name cursors: inputs declared under one name form an ordered
	// vector ("s1.w0" is slot 1, layer 0's flat weights in declaration
	// order).
	cursors := make(map[string]int)
	slotOf := make(map[string]*nn.QuantizedNetwork)
	for i, name := range art.System.PubInputNames {
		slot, base := splitSlotName(name)
		if slot >= len(suspects) {
			return r1cs.Assignment{}, fmt.Errorf("core: weight input %q names slot %d, circuit has %d", name, slot, art.Slots())
		}
		suspect := suspects[slot]
		if suspect == nil {
			continue // keep the registered weights in this slot
		}
		vec, ok, err := suspectVector(suspect, base)
		if err != nil {
			return r1cs.Assignment{}, err
		}
		if !ok {
			continue // not a weight input; keep the registered value
		}
		j := cursors[name]
		if j >= len(vec) {
			return r1cs.Assignment{}, fmt.Errorf("core: circuit declares more %q inputs than the suspect model has", name)
		}
		asg.Public[i] = fixpoint.ToField(vec[j])
		cursors[name] = j + 1
		slotOf[name] = suspect
		bound = true
	}
	for name, used := range cursors {
		_, base := splitSlotName(name)
		vec, _, _ := suspectVector(slotOf[name], base)
		if used != len(vec) {
			return r1cs.Assignment{}, fmt.Errorf("core: circuit binds %d of the suspect's %d %q weights: architecture mismatch", used, len(vec), name)
		}
	}
	if !bound {
		return r1cs.Assignment{}, fmt.Errorf("core: circuit has no weight inputs to rebind (committed circuits are fixed to their registered model)")
	}
	return asg, nil
}

// suspectVector resolves a public-input name of the form "w<i>"/"b<i>"
// to the corresponding quantized weight vector. ok is false for names
// that are not weight inputs (e.g. other circuits' output names).
func suspectVector(q *nn.QuantizedNetwork, name string) (vec []int64, ok bool, err error) {
	if len(name) < 2 || (name[0] != 'w' && name[0] != 'b') {
		return nil, false, nil
	}
	li, perr := strconv.Atoi(name[1:])
	if perr != nil {
		return nil, false, nil
	}
	if li < 0 || li >= len(q.Layers) {
		return nil, false, fmt.Errorf("core: weight input %q names layer %d, suspect has %d layers", name, li, len(q.Layers))
	}
	if name[0] == 'w' {
		return q.Layers[li].W, true, nil
	}
	return q.Layers[li].B, true, nil
}
