package dataset

import "testing"

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(MNISTLike(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(MNISTLike(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels not deterministic")
		}
		for d := range a.X[i] {
			if a.X[i][d] != b.X[i][d] {
				t.Fatal("features not deterministic")
			}
		}
	}
	// Different seed → different data.
	c, err := Generate(MNISTLike(100, 6))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for d := range a.X[0] {
		if a.X[0][d] != c.X[0][d] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateShapes(t *testing.T) {
	ds, err := Generate(CIFARLike(50, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Dim != 3*32*32 || ds.Classes != 10 || len(ds.X) != 50 {
		t.Fatalf("CIFAR-like shapes wrong: %+v", ds.Shape)
	}
	if ds.Shape != [3]int{3, 32, 32} {
		t.Fatal("shape metadata wrong")
	}
	// Values clamped to [-1, 1].
	for _, x := range ds.X {
		for _, v := range x {
			if v < -1 || v > 1 {
				t.Fatal("pixel out of range")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Samples: 0, Dim: 4, Classes: 2}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Generate(Config{Samples: 10, Dim: 0, Classes: 2}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := Generate(Config{Samples: 10, Dim: 4, Classes: 0}); err == nil {
		t.Fatal("zero classes accepted")
	}
}

func TestSplitClassCoverage(t *testing.T) {
	// The regression this guards: class assignment cycles with period
	// `Classes`; a global every-k stride that divides it starves whole
	// classes from the training set.
	ds, err := Generate(Config{Samples: 300, Dim: 8, Classes: 10, ClusterStd: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(0.2)
	trainCounts := map[int]int{}
	testCounts := map[int]int{}
	for _, y := range train.Y {
		trainCounts[y]++
	}
	for _, y := range test.Y {
		testCounts[y]++
	}
	for c := 0; c < 10; c++ {
		if trainCounts[c] == 0 {
			t.Fatalf("class %d missing from training split", c)
		}
		if testCounts[c] == 0 {
			t.Fatalf("class %d missing from test split", c)
		}
	}
	if len(train.X)+len(test.X) != len(ds.X) {
		t.Fatal("split lost samples")
	}
}

func TestOfClass(t *testing.T) {
	ds, err := Generate(Config{Samples: 40, Dim: 4, Classes: 4, ClusterStd: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		got := ds.OfClass(c)
		if len(got) != 10 {
			t.Fatalf("class %d has %d samples, want 10", c, len(got))
		}
	}
	if ds.OfClass(99) != nil {
		t.Fatal("nonexistent class should be empty")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Sanity: intra-class distance must be smaller than inter-class
	// distance on average, or the substrate can't support training.
	ds, err := Generate(Config{Samples: 200, Dim: 16, Classes: 2, ClusterStd: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c0 := ds.OfClass(0)
	c1 := ds.OfClass(1)
	intra := avgDist(c0[:20], c0[20:40])
	inter := avgDist(c0[:20], c1[:20])
	if inter <= intra {
		t.Fatalf("classes not separable: intra %.3f vs inter %.3f", intra, inter)
	}
}

func avgDist(a, b [][]float64) float64 {
	var sum float64
	n := 0
	for i := range a {
		for j := range b {
			var d float64
			for k := range a[i] {
				diff := a[i][k] - b[j][k]
				d += diff * diff
			}
			sum += d
			n++
		}
	}
	return sum / float64(n)
}
