// Package dataset generates deterministic synthetic classification
// datasets shaped like the paper's benchmarks. The offline build has no
// access to MNIST or CIFAR-10; the substitution is sound for this
// reproduction because every pipeline stage (training, DeepSigns
// embedding, extraction, circuit construction) depends only on tensor
// shapes, class counts, and the existence of learnable class structure —
// which Gaussian cluster data provides.
package dataset

import (
	"fmt"
	"math/rand"
)

// Dataset is a labelled sample collection.
type Dataset struct {
	X       [][]float64
	Y       []int
	Dim     int
	Classes int
	// Shape optionally records a volume interpretation (C, H, W) of Dim.
	Shape [3]int
}

// Config controls synthetic generation.
type Config struct {
	Samples int
	Dim     int
	Classes int
	// ClusterStd is the intra-class noise; class centers are drawn from
	// a unit ball scaled by CenterScale.
	ClusterStd  float64
	CenterScale float64
	Seed        int64
	Shape       [3]int
}

// MNISTLike returns a config shaped like MNIST: 784 dimensions,
// 10 classes.
func MNISTLike(samples int, seed int64) Config {
	return Config{
		Samples: samples, Dim: 784, Classes: 10,
		ClusterStd: 0.35, CenterScale: 1.0, Seed: seed,
		Shape: [3]int{1, 28, 28},
	}
}

// CIFARLike returns a config shaped like CIFAR-10: 3×32×32, 10 classes.
func CIFARLike(samples int, seed int64) Config {
	return Config{
		Samples: samples, Dim: 3 * 32 * 32, Classes: 10,
		ClusterStd: 0.35, CenterScale: 1.0, Seed: seed,
		Shape: [3]int{3, 32, 32},
	}
}

// Generate draws the synthetic dataset: per-class Gaussian centers with
// isotropic noise, values clamped to [-1, 1] like normalised pixels.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Samples <= 0 || cfg.Dim <= 0 || cfg.Classes <= 0 {
		return nil, fmt.Errorf("dataset: non-positive config %+v", cfg)
	}
	if cfg.ClusterStd <= 0 {
		cfg.ClusterStd = 0.3
	}
	if cfg.CenterScale <= 0 {
		cfg.CenterScale = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centers := make([][]float64, cfg.Classes)
	for c := range centers {
		centers[c] = make([]float64, cfg.Dim)
		for d := range centers[c] {
			centers[c][d] = rng.NormFloat64() * cfg.CenterScale * 0.5
		}
	}

	ds := &Dataset{
		X:       make([][]float64, cfg.Samples),
		Y:       make([]int, cfg.Samples),
		Dim:     cfg.Dim,
		Classes: cfg.Classes,
		Shape:   cfg.Shape,
	}
	for i := 0; i < cfg.Samples; i++ {
		c := i % cfg.Classes // balanced classes
		x := make([]float64, cfg.Dim)
		for d := range x {
			v := centers[c][d] + rng.NormFloat64()*cfg.ClusterStd
			if v > 1 {
				v = 1
			}
			if v < -1 {
				v = -1
			}
			x[d] = v
		}
		ds.X[i] = x
		ds.Y[i] = c
	}
	return ds, nil
}

// Split partitions the dataset into train and test subsets. The stride
// is applied per class, so every class appears in both subsets even when
// the global sample order aliases with the class assignment (Generate
// interleaves classes round-robin, which a global stride would starve).
func (d *Dataset) Split(testFrac float64) (train, test *Dataset) {
	every := int(1/testFrac + 0.5)
	if every < 2 {
		every = 2
	}
	train = &Dataset{Dim: d.Dim, Classes: d.Classes, Shape: d.Shape}
	test = &Dataset{Dim: d.Dim, Classes: d.Classes, Shape: d.Shape}
	seen := make(map[int]int)
	for i := range d.X {
		c := d.Y[i]
		if seen[c]%every == every-1 {
			test.X = append(test.X, d.X[i])
			test.Y = append(test.Y, d.Y[i])
		} else {
			train.X = append(train.X, d.X[i])
			train.Y = append(train.Y, d.Y[i])
		}
		seen[c]++
	}
	return train, test
}

// OfClass returns the samples with the given label.
func (d *Dataset) OfClass(c int) [][]float64 {
	var out [][]float64
	for i := range d.X {
		if d.Y[i] == c {
			out = append(out, d.X[i])
		}
	}
	return out
}
