//go:build amd64 && !purego

// Package cpu detects the instruction-set extensions the hand-written
// field-arithmetic kernels need. Detection runs once at package init;
// the flags are plain bools so hot paths can branch on them without an
// atomic load.
package cpu

// cpuidex executes CPUID with the given EAX/ECX inputs (implemented in
// cpuid_amd64.s).
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// X86HasADX reports whether the CPU supports both the ADX (ADCX/ADOX)
// and BMI2 (MULX) extensions required by the Montgomery-multiplication
// assembly. Both arrived together on Broadwell-class cores and later;
// neither touches extended register state, so no OS-support (XSAVE)
// check is needed.
var X86HasADX = func() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, ebx, _, _ := cpuidex(7, 0)
	const bmi2 = 1 << 8
	const adx = 1 << 19
	return ebx&bmi2 != 0 && ebx&adx != 0
}()
