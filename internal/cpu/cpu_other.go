//go:build !amd64 || purego

package cpu

// X86HasADX is false on non-amd64 targets and under the purego build
// tag: the assembly kernels that need it are not compiled in.
var X86HasADX = false
