package r1cs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zkrownn/internal/bn254/fr"
)

func one() fr.Element {
	var e fr.Element
	e.SetOne()
	return e
}

func elem(v uint64) fr.Element {
	var e fr.Element
	e.SetUint64(v)
	return e
}

// mulSystem is w1·w2 = w3 with all wires private except the constant.
func mulSystem() *System {
	return &System{
		NbPublic: 1,
		NbWires:  4,
		Constraints: []Constraint{{
			A: LinearCombination{{Wire: 1, Coeff: one()}},
			B: LinearCombination{{Wire: 2, Coeff: one()}},
			C: LinearCombination{{Wire: 3, Coeff: one()}},
		}},
	}
}

func TestEval(t *testing.T) {
	w := []fr.Element{one(), elem(3), elem(5)}
	lc := LinearCombination{
		{Wire: 0, Coeff: elem(10)},
		{Wire: 1, Coeff: elem(2)},
		{Wire: 2, Coeff: elem(4)},
	}
	got := lc.Eval(w)
	want := elem(10 + 6 + 20)
	if !got.Equal(&want) {
		t.Fatalf("Eval = %v, want 36", got)
	}
	var empty LinearCombination
	z := empty.Eval(w)
	if !z.IsZero() {
		t.Fatal("empty LC should evaluate to 0")
	}
}

func TestIsSatisfied(t *testing.T) {
	sys := mulSystem()
	good := []fr.Element{one(), elem(6), elem(7), elem(42)}
	if ok, _ := sys.IsSatisfied(good); !ok {
		t.Fatal("valid witness rejected")
	}
	bad := []fr.Element{one(), elem(6), elem(7), elem(43)}
	if ok, idx := sys.IsSatisfied(bad); ok || idx != 0 {
		t.Fatal("invalid witness accepted")
	}
	// Wrong length.
	if ok, _ := sys.IsSatisfied(good[:2]); ok {
		t.Fatal("short witness accepted")
	}
	// Constant wire must be 1.
	brokenOne := []fr.Element{elem(2), elem(6), elem(7), elem(42)}
	if ok, _ := sys.IsSatisfied(brokenOne); ok {
		t.Fatal("witness with constant != 1 accepted")
	}
}

func TestValidate(t *testing.T) {
	sys := mulSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	// Out-of-range wire.
	sys.Constraints[0].A[0].Wire = 99
	if err := sys.Validate(); err == nil {
		t.Fatal("out-of-range wire accepted")
	}
	// NbPublic must include the constant wire.
	sys2 := &System{NbPublic: 0, NbWires: 1}
	if err := sys2.Validate(); err == nil {
		t.Fatal("NbPublic 0 accepted")
	}
	sys3 := &System{NbPublic: 5, NbWires: 3}
	if err := sys3.Validate(); err == nil {
		t.Fatal("NbWires < NbPublic accepted")
	}
}

func TestClone(t *testing.T) {
	lc := LinearCombination{{Wire: 1, Coeff: elem(2)}}
	cp := lc.Clone()
	cp[0].Wire = 7
	if lc[0].Wire != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestStats(t *testing.T) {
	sys := mulSystem()
	st := sys.Stats()
	if st.NbConstraints != 1 || st.NbWires != 4 || st.NbPublic != 1 || st.NbPrivate != 3 || st.NbTerms != 3 {
		t.Fatalf("stats %+v", st)
	}
}

// TestLinearityQuick: Eval must be linear in the witness.
func TestLinearityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lc := LinearCombination{
		{Wire: 0, Coeff: elem(uint64(rng.Intn(100) + 1))},
		{Wire: 1, Coeff: elem(uint64(rng.Intn(100) + 1))},
		{Wire: 2, Coeff: elem(uint64(rng.Intn(100) + 1))},
	}
	f := func(a1, a2, b1, b2 uint64) bool {
		wa := []fr.Element{one(), elem(a1), elem(a2)}
		wb := []fr.Element{one(), elem(b1), elem(b2)}
		wsum := make([]fr.Element, 3)
		for i := range wsum {
			wsum[i].Add(&wa[i], &wb[i])
		}
		ea := lc.Eval(wa)
		eb := lc.Eval(wb)
		esum := lc.Eval(wsum)
		var want fr.Element
		want.Add(&ea, &eb)
		return esum.Equal(&want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
