package r1cs

import (
	"testing"

	"zkrownn/internal/bn254/fr"
)

// FuzzCompiledSystemRoundTrip hammers the eager ↔ CSR adapters with
// random constraint systems and witnesses:
//
//   - FromSystem must accept exactly what Validate accepts, and the CSR
//     digest must stay byte-compatible with the eager digest (the key
//     cache / registry-ID contract).
//   - ToSystem → FromSystem must be lossless (digest fixed point).
//   - IsSatisfied must agree between the eager walker and the parallel
//     CSR walker — verdict AND first-violation index.
//   - WitnessAssignment → Solve must scatter a full witness back
//     unchanged (adapter circuits have an empty solver program).
func FuzzCompiledSystemRoundTrip(f *testing.F) {
	f.Add([]byte("\x02\x03\x02" + "coefficients and wires come from here"))
	f.Add([]byte{1, 0, 1, 3, 1, 1, 2, 1, 1, 3, 2, 2, 9, 9, 9})
	f.Add([]byte{3, 5, 4, 0xff, 0x10, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		nbPublic := 1 + int(data[0]%4)
		nbWires := nbPublic + int(data[1]%6)
		nbCons := 1 + int(data[2]%6)
		pos := 3
		nextByte := func() byte {
			b := data[pos%len(data)]
			pos++
			return b
		}
		mkLC := func() LinearCombination {
			n := int(nextByte()) % 4
			var lc LinearCombination
			for i := 0; i < n; i++ {
				var c fr.Element
				c.SetUint64(uint64(nextByte()))
				lc = append(lc, Term{Wire: int(nextByte()) % nbWires, Coeff: c})
			}
			return lc
		}
		sys := &System{NbPublic: nbPublic, NbWires: nbWires}
		for i := 0; i < nbCons; i++ {
			sys.Constraints = append(sys.Constraints, Constraint{A: mkLC(), B: mkLC(), C: mkLC()})
		}
		if err := sys.Validate(); err != nil {
			t.Skip() // wire indices are clamped, so this should not happen
		}

		cs, err := FromSystem(sys)
		if err != nil {
			t.Fatalf("Validate passed but FromSystem rejected: %v", err)
		}
		if cs.DigestHex() != sys.DigestHex() {
			t.Fatal("CSR digest diverges from the eager digest")
		}
		back := cs.ToSystem()
		if err := back.Validate(); err != nil {
			t.Fatalf("ToSystem produced an invalid system: %v", err)
		}
		cs2, err := FromSystem(back)
		if err != nil {
			t.Fatalf("round-tripped system rejected: %v", err)
		}
		if cs2.DigestHex() != cs.DigestHex() {
			t.Fatal("encode/decode round trip changed the digest")
		}

		// Random witness: both satisfaction walkers must agree on the
		// verdict and on the first violated row.
		w := make([]fr.Element, nbWires)
		w[0].SetOne()
		for i := 1; i < nbWires; i++ {
			w[i].SetUint64(uint64(nextByte()))
		}
		okEager, badEager := sys.IsSatisfied(w)
		okCSR, badCSR := cs.IsSatisfied(w)
		if okEager != okCSR {
			t.Fatalf("IsSatisfied verdicts disagree: eager %v, CSR %v", okEager, okCSR)
		}
		if !okEager && badEager != badCSR {
			t.Fatalf("first-violation index disagrees: eager %d, CSR %d", badEager, badCSR)
		}

		// Adapter circuits make every wire an input: Solve must scatter
		// the assignment back to the identical witness.
		asg := cs.WitnessAssignment(w)
		solved, err := cs.Solve(asg.Public, asg.Secret)
		if err != nil {
			t.Fatalf("scatter solve: %v", err)
		}
		for i := range solved {
			if !solved[i].Equal(&w[i]) {
				t.Fatalf("wire %d changed through WitnessAssignment→Solve", i)
			}
		}
	})
}
