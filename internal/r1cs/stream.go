package r1cs

import (
	"sort"

	"zkrownn/internal/bn254/fr"
)

// Streaming constraint access: at paper scale the CSR matrices are the
// largest compile-time object (GBs for a VGG-class circuit), so the
// Groth16 backend consumes them through the Constraints interface
// below — satisfied both by the resident CompiledSystem and by the
// disk-backed CompiledSystemFile — and walks each matrix in bounded
// row windows instead of requiring the flat term arrays in memory.

// Dims carries the three scalar dimensions every backend needs.
type Dims struct {
	NbConstraints int
	NbWires       int
	NbPublic      int
}

// NbPrivate returns the number of private witness wires.
func (d Dims) NbPrivate() int { return d.NbWires - d.NbPublic }

// Constraints is the read-side contract of a compiled constraint
// system: dimensions, the structural digest (cache key), and streaming
// access to the three R1CS matrices. *CompiledSystem implements it with
// zero-copy windows over its resident CSR arrays; *CompiledSystemFile
// implements it by reading bounded windows from disk. Implementations
// must be safe for concurrent use by the prover's parallel phases.
type Constraints interface {
	Dims() Dims
	Digest() [32]byte
	DigestHex() string
	MatA() MatrixStream
	MatB() MatrixStream
	MatC() MatrixStream
}

// MatrixStream is bounded-window row access to one R1CS matrix. Row
// offsets stay resident (4 bytes per constraint — two orders of
// magnitude below the term arrays), so window planning never touches
// the term sections.
type MatrixStream interface {
	// NbRows returns the number of constraint rows.
	NbRows() int
	// NbTerms returns the total term count.
	NbTerms() int
	// EndRowForTerms returns the largest end such that rows
	// [start, end) together hold at most maxTerms terms — but always at
	// least start+1, so a single row denser than the budget still loads
	// (with a proportionally larger window).
	EndRowForTerms(start, maxTerms int) int
	// LoadRows fills win with rows [start, end), reusing win's buffers
	// across calls. Resident matrices alias their arrays (zero copy);
	// disk matrices read the term span into win's scratch. The window
	// contents are valid until the next LoadRows on the same win.
	LoadRows(win *RowWindow, start, end int) error
}

// DefaultRowWindowTerms is the default scratch budget of one row
// window: 256Ki terms ≈ 2 MiB of wire+coeff indices (plus 8 MiB of
// per-term products where a consumer materializes them).
const DefaultRowWindowTerms = 1 << 18

// RowWindow is a contiguous run of CSR rows handed out by
// MatrixStream.LoadRows. Offs holds Rows+1 monotone term offsets in the
// matrix's global term numbering; the terms of local row i are
// Wires/CoeffIdx[Offs[i]-Offs[0] : Offs[i+1]-Offs[0]]. Dict is the
// matrix's shared coefficient dictionary.
type RowWindow struct {
	Start    int // global index of the window's first row
	Rows     int
	Offs     []uint32
	Wires    []uint32
	CoeffIdx []uint32
	Dict     []fr.Element

	buf []byte // disk-read scratch, reused across LoadRows calls
}

// NbTerms returns the window's term count.
func (rw *RowWindow) NbTerms() int { return int(rw.Offs[rw.Rows] - rw.Offs[0]) }

// Row returns the wire and coefficient-index slices of local row i.
func (rw *RowWindow) Row(i int) (wires, coeffIdx []uint32) {
	base := rw.Offs[0]
	lo, hi := rw.Offs[i]-base, rw.Offs[i+1]-base
	return rw.Wires[lo:hi], rw.CoeffIdx[lo:hi]
}

// RowEval computes ⟨row Start+i, w⟩ for local row i against a resident
// witness.
func (rw *RowWindow) RowEval(i int, w []fr.Element) fr.Element {
	base := rw.Offs[0]
	var acc, t fr.Element
	for k := rw.Offs[i] - base; k < rw.Offs[i+1]-base; k++ {
		t.Mul(&rw.Dict[rw.CoeffIdx[k]], &w[rw.Wires[k]])
		acc.Add(&acc, &t)
	}
	return acc
}

// NbTerms returns the matrix's total term count.
func (m *Matrix) NbTerms() int { return len(m.Wires) }

// EndRowForTerms implements MatrixStream against the resident offsets.
func (m *Matrix) EndRowForTerms(start, maxTerms int) int {
	return endRowForTerms(m.RowOffs, start, maxTerms)
}

// endRowForTerms finds the largest end with offs[end]-offs[start] ≤
// maxTerms via binary search over the monotone offsets (min start+1).
func endRowForTerms(offs []uint32, start, maxTerms int) int {
	n := len(offs) - 1
	if start >= n {
		return n
	}
	limit := uint64(offs[start]) + uint64(maxTerms)
	fit := sort.Search(n-start, func(k int) bool {
		return uint64(offs[start+1+k]) > limit
	})
	if fit == 0 {
		fit = 1
	}
	return start + fit
}

// LoadRows implements MatrixStream with zero-copy aliasing of the
// resident CSR arrays.
func (m *Matrix) LoadRows(win *RowWindow, start, end int) error {
	lo, hi := m.RowOffs[start], m.RowOffs[end]
	win.Start, win.Rows = start, end-start
	win.Offs = m.RowOffs[start : end+1]
	win.Wires = m.Wires[lo:hi]
	win.CoeffIdx = m.CoeffIdx[lo:hi]
	win.Dict = m.Dict
	return nil
}

// Dims implements Constraints.
func (cs *CompiledSystem) Dims() Dims {
	return Dims{NbConstraints: cs.NbConstraints(), NbWires: cs.NbWires, NbPublic: cs.NbPublic}
}

// MatA implements Constraints (likewise MatB, MatC).
func (cs *CompiledSystem) MatA() MatrixStream { return &cs.A }

// MatB returns the streaming view of matrix B.
func (cs *CompiledSystem) MatB() MatrixStream { return &cs.B }

// MatC returns the streaming view of matrix C.
func (cs *CompiledSystem) MatC() MatrixStream { return &cs.C }

// ForRowWindows walks several matrices over the same rows in lockstep:
// each step covers the largest row range where every matrix fits
// maxTerms, so consumers that need A, B, and C of one constraint
// together (the satisfy check) see aligned windows. fn receives one
// window per matrix; windows are reused between steps.
func ForRowWindows(maxTerms int, mats []MatrixStream, fn func(wins []*RowWindow) error) error {
	if len(mats) == 0 {
		return nil
	}
	n := mats[0].NbRows()
	wins := make([]*RowWindow, len(mats))
	for i := range wins {
		wins[i] = &RowWindow{}
	}
	for start := 0; start < n; {
		end := n
		for _, m := range mats {
			if e := m.EndRowForTerms(start, maxTerms); e < end {
				end = e
			}
		}
		for i, m := range mats {
			if err := m.LoadRows(wins[i], start, end); err != nil {
				return err
			}
		}
		if err := fn(wins); err != nil {
			return err
		}
		start = end
	}
	return nil
}
