package r1cs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"zkrownn/internal/bn254/fr"
)

// Disk-resident constraint systems: a CompiledSystemFile is the CSR
// half of a CompiledSystem serialized section by section, so a prover
// can run setup, the satisfy check, and the quotient's eval-A/B/C
// phases without the term arrays resident. Row offsets (4 bytes per
// constraint) and the coefficient dictionaries (a few hundred entries)
// stay in memory; the per-term wire and coefficient-index arrays — the
// dominant cost, 8 bytes per term across three matrices — are read in
// bounded row windows.
//
// The file carries the same 16-byte integrity frame as the engine's
// disk key cache (magic · payload length · CRC-32C), fully validated at
// open: a truncated or bit-flipped file surfaces as an open error the
// caller degrades to a rewrite, and every later window read skips
// per-chunk verification.
//
// Payload layout (all integers little-endian):
//
//	u32 version
//	u32 nbPublic · u32 nbWires · u32 nbConstraints
//	digest (32 bytes, CompiledSystem.Digest)
//	3 × matrix section (A, B, C):
//	  u32 dictLen · u32 nbTerms
//	  dict        dictLen × 32 B   (raw little-endian limbs, Montgomery form)
//	  rowOffs     (nbConstraints+1) × u32
//	  wires       nbTerms × u32
//	  coeffIdx    nbTerms × u32
var csFileMagic = [4]byte{'Z', 'K', 'C', 'S'}

const (
	csFileVersion    = 1
	csFrameSize      = 16
	csFileElemSize   = 8 * fr.Limbs
	csFileFixedHdr   = 4 + 3*4 + 32 // version + dims + digest
	csFileMatrixHdr  = 2 * 4        // dictLen + nbTerms
	csFileCopyBuffer = 1 << 20
)

var csCRCTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadCSRFile marks an integrity or format failure detected while
// opening a constraint-system file; callers treat it like a cache miss
// and rewrite the file from the resident system.
var ErrBadCSRFile = errors.New("r1cs: constraint-system file failed integrity check")

// CSRRawSizeBytes returns the on-disk size of WriteCompiledSystemFile's
// encoding (frame included) without writing it — the quantity a memory
// budget weighs when deciding whether the matrices should spill.
func CSRRawSizeBytes(cs *CompiledSystem) int64 {
	size := int64(csFrameSize + csFileFixedHdr)
	for _, m := range []*Matrix{&cs.A, &cs.B, &cs.C} {
		size += csFileMatrixHdr
		size += int64(len(m.Dict)) * csFileElemSize
		size += int64(len(m.RowOffs)) * 4
		size += int64(len(m.Wires)) * 8 // wires + coeffIdx
	}
	return size
}

// WriteCompiledSystemFile serializes cs's CSR matrices to path
// atomically (temp file + rename) under the integrity frame. The solver
// program is deliberately not included: it is input-dependent state the
// engine keeps resident (a few bytes per instruction), while the file
// replaces only the term arrays that dominate memory.
func WriteCompiledSystemFile(path string, cs *CompiledSystem) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-csr-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var zero [csFrameSize]byte
	if _, err := tmp.Write(zero[:]); err != nil {
		tmp.Close()
		return err
	}
	bw := bufio.NewWriterSize(tmp, csFileCopyBuffer)
	crc := crc32.New(csCRCTable)
	var written uint64
	w := io.MultiWriter(bw, crc)
	put := func(b []byte) error {
		written += uint64(len(b))
		_, err := w.Write(b)
		return err
	}
	var u32 [4]byte
	putU32 := func(vs ...uint32) error {
		for _, v := range vs {
			binary.LittleEndian.PutUint32(u32[:], v)
			if err := put(u32[:]); err != nil {
				return err
			}
		}
		return nil
	}
	putU32Slice := func(vs []uint32) error {
		buf := make([]byte, 4*(1<<15))
		for len(vs) > 0 {
			c := min(len(vs), 1<<15)
			for i := 0; i < c; i++ {
				binary.LittleEndian.PutUint32(buf[4*i:], vs[i])
			}
			if err := put(buf[:4*c]); err != nil {
				return err
			}
			vs = vs[c:]
		}
		return nil
	}
	digest := cs.Digest()
	writePayload := func() error {
		if err := putU32(csFileVersion, uint32(cs.NbPublic), uint32(cs.NbWires), uint32(cs.NbConstraints())); err != nil {
			return err
		}
		if err := put(digest[:]); err != nil {
			return err
		}
		var elem [csFileElemSize]byte
		for _, m := range []*Matrix{&cs.A, &cs.B, &cs.C} {
			if err := putU32(uint32(len(m.Dict)), uint32(len(m.Wires))); err != nil {
				return err
			}
			for i := range m.Dict {
				for l := 0; l < fr.Limbs; l++ {
					binary.LittleEndian.PutUint64(elem[8*l:], m.Dict[i][l])
				}
				if err := put(elem[:]); err != nil {
					return err
				}
			}
			if err := putU32Slice(m.RowOffs); err != nil {
				return err
			}
			if err := putU32Slice(m.Wires); err != nil {
				return err
			}
			if err := putU32Slice(m.CoeffIdx); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writePayload(); err != nil {
		tmp.Close()
		return fmt.Errorf("r1cs: write csr file: %w", err)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	var hdr [csFrameSize]byte
	copy(hdr[0:4], csFileMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:12], written)
	binary.LittleEndian.PutUint32(hdr[12:16], crc.Sum32())
	if _, err := tmp.WriteAt(hdr[:], 0); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	mCSRFilesWritten.Inc()
	mCSRBytesWritten.Add(written + csFrameSize)
	return nil
}

// diskMatrix is the streaming view of one matrix section: resident row
// offsets and dictionary, term arrays read on demand.
type diskMatrix struct {
	f        *os.File
	rowOffs  []uint32
	dict     []fr.Element
	wiresOff int64 // absolute file offset of the wires array
	coeffOff int64 // absolute file offset of the coeffIdx array
}

// NbRows implements MatrixStream.
func (m *diskMatrix) NbRows() int { return len(m.rowOffs) - 1 }

// NbTerms implements MatrixStream.
func (m *diskMatrix) NbTerms() int { return int(m.rowOffs[len(m.rowOffs)-1]) }

// EndRowForTerms implements MatrixStream against the resident offsets.
func (m *diskMatrix) EndRowForTerms(start, maxTerms int) int {
	return endRowForTerms(m.rowOffs, start, maxTerms)
}

// LoadRows implements MatrixStream: two bounded preads (wires, then
// coefficient indices) decoded into the window's reused buffers.
// Concurrent LoadRows on distinct windows are safe — the scratch lives
// in the window and *os.File.ReadAt is goroutine-safe.
func (m *diskMatrix) LoadRows(win *RowWindow, start, end int) error {
	lo, hi := m.rowOffs[start], m.rowOffs[end]
	nt := int(hi - lo)
	win.Start, win.Rows = start, end-start
	win.Offs = m.rowOffs[start : end+1]
	win.Dict = m.dict
	if cap(win.buf) < 4*nt {
		win.buf = make([]byte, 4*nt)
	}
	if cap(win.Wires) < nt {
		win.Wires = make([]uint32, nt)
	}
	if cap(win.CoeffIdx) < nt {
		win.CoeffIdx = make([]uint32, nt)
	}
	win.Wires, win.CoeffIdx = win.Wires[:nt], win.CoeffIdx[:nt]
	buf := win.buf[:4*nt]
	read := func(off int64, dst []uint32) error {
		if _, err := m.f.ReadAt(buf, off+4*int64(lo)); err != nil {
			return fmt.Errorf("r1cs: csr window read at row %d: %w", start, err)
		}
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
		return nil
	}
	if err := read(m.wiresOff, win.Wires); err != nil {
		return err
	}
	if err := read(m.coeffOff, win.CoeffIdx); err != nil {
		return err
	}
	mCSRRowWindows.Inc()
	mCSRReadBytes.Add(uint64(8 * nt))
	return nil
}

// CompiledSystemFile is a disk-resident constraint system: it
// implements Constraints with row offsets and dictionaries in memory
// and term arrays streamed from the file in bounded windows. It is
// safe for concurrent use (windows carry all mutable state) and holds
// the file open until Close.
type CompiledSystemFile struct {
	f       *os.File
	path    string
	dims    Dims
	digest  [32]byte
	rawSize int64
	a, b, c diskMatrix
}

// OpenCompiledSystemFile opens and fully validates path — frame magic,
// recorded payload length, payload CRC (one sequential pass), and the
// structural invariants of every section header. Any integrity failure
// returns an error wrapping ErrBadCSRFile so callers can fall back to
// rewriting the file.
func OpenCompiledSystemFile(path string) (*CompiledSystemFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cf, err := parseCompiledSystemFile(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	return cf, nil
}

func parseCompiledSystemFile(f *os.File, path string) (*CompiledSystemFile, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < csFrameSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the frame header", ErrBadCSRFile, st.Size())
	}
	var hdr [csFrameSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(hdr[0:4]) != csFileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadCSRFile, hdr[0:4])
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[4:12])
	if got := uint64(st.Size() - csFrameSize); payloadLen != got {
		return nil, fmt.Errorf("%w: header records %d payload bytes, file holds %d", ErrBadCSRFile, payloadLen, got)
	}
	crc := crc32.New(csCRCTable)
	if _, err := io.Copy(crc, io.NewSectionReader(f, csFrameSize, int64(payloadLen))); err != nil {
		return nil, err
	}
	if crc.Sum32() != binary.LittleEndian.Uint32(hdr[12:16]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrBadCSRFile)
	}

	br := bufio.NewReaderSize(io.NewSectionReader(f, csFrameSize, int64(payloadLen)), csFileCopyBuffer)
	pos := int64(0) // payload cursor, tracked for the term-array offsets
	readFull := func(b []byte) error {
		if _, err := io.ReadFull(br, b); err != nil {
			return fmt.Errorf("%w: short payload: %v", ErrBadCSRFile, err)
		}
		pos += int64(len(b))
		return nil
	}
	var u32buf [4]byte
	readU32 := func() (uint32, error) {
		if err := readFull(u32buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32buf[:]), nil
	}

	cf := &CompiledSystemFile{f: f, path: path, rawSize: st.Size()}
	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version != csFileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCSRFile, version)
	}
	var dims [3]uint32
	for i := range dims {
		if dims[i], err = readU32(); err != nil {
			return nil, err
		}
	}
	cf.dims = Dims{NbPublic: int(dims[0]), NbWires: int(dims[1]), NbConstraints: int(dims[2])}
	if cf.dims.NbPublic < 1 || cf.dims.NbWires < cf.dims.NbPublic || cf.dims.NbConstraints < 0 {
		return nil, fmt.Errorf("%w: implausible dimensions %+v", ErrBadCSRFile, cf.dims)
	}
	if err := readFull(cf.digest[:]); err != nil {
		return nil, err
	}

	for _, m := range []*diskMatrix{&cf.a, &cf.b, &cf.c} {
		m.f = f
		dictLen, err := readU32()
		if err != nil {
			return nil, err
		}
		nbTerms, err := readU32()
		if err != nil {
			return nil, err
		}
		if uint64(dictLen)*csFileElemSize > payloadLen || uint64(nbTerms)*8 > payloadLen {
			return nil, fmt.Errorf("%w: implausible section sizes (dict %d, terms %d)", ErrBadCSRFile, dictLen, nbTerms)
		}
		m.dict = make([]fr.Element, dictLen)
		elems := make([]byte, csFileElemSize)
		for i := range m.dict {
			if err := readFull(elems); err != nil {
				return nil, err
			}
			for l := 0; l < fr.Limbs; l++ {
				m.dict[i][l] = binary.LittleEndian.Uint64(elems[8*l:])
			}
		}
		m.rowOffs = make([]uint32, cf.dims.NbConstraints+1)
		offBytes := make([]byte, 4*len(m.rowOffs))
		if err := readFull(offBytes); err != nil {
			return nil, err
		}
		for i := range m.rowOffs {
			m.rowOffs[i] = binary.LittleEndian.Uint32(offBytes[4*i:])
			if i > 0 && m.rowOffs[i] < m.rowOffs[i-1] {
				return nil, fmt.Errorf("%w: row offsets not monotone at row %d", ErrBadCSRFile, i)
			}
		}
		if m.rowOffs[0] != 0 || m.rowOffs[len(m.rowOffs)-1] != nbTerms {
			return nil, fmt.Errorf("%w: row offsets cover %d terms, section records %d", ErrBadCSRFile, m.rowOffs[len(m.rowOffs)-1], nbTerms)
		}
		// Term arrays stay on disk: record their absolute offsets and
		// skip past them in the buffered reader.
		m.wiresOff = csFrameSize + pos
		m.coeffOff = m.wiresOff + 4*int64(nbTerms)
		skip := 8 * int64(nbTerms)
		if _, err := br.Discard(int(skip)); err != nil {
			return nil, fmt.Errorf("%w: short payload: %v", ErrBadCSRFile, err)
		}
		pos += skip
	}
	if pos != int64(payloadLen) {
		return nil, fmt.Errorf("%w: payload holds %d bytes, sections cover %d", ErrBadCSRFile, payloadLen, pos)
	}
	return cf, nil
}

// Close releases the underlying file (the file itself is kept — it is
// a cache artifact owned by the caller's directory layout).
func (cf *CompiledSystemFile) Close() error { return cf.f.Close() }

// Path returns the file path the handle was opened from.
func (cf *CompiledSystemFile) Path() string { return cf.path }

// RawSize returns the file's total on-disk size in bytes.
func (cf *CompiledSystemFile) RawSize() int64 { return cf.rawSize }

// Dims implements Constraints.
func (cf *CompiledSystemFile) Dims() Dims { return cf.dims }

// Digest returns the structural digest recorded at write time — the
// same value CompiledSystem.Digest computes, so file-backed and
// resident systems share cache keys.
func (cf *CompiledSystemFile) Digest() [32]byte { return cf.digest }

// DigestHex returns Digest as a lowercase hex string.
func (cf *CompiledSystemFile) DigestHex() string {
	return fmt.Sprintf("%x", cf.digest)
}

// MatA implements Constraints (likewise MatB, MatC).
func (cf *CompiledSystemFile) MatA() MatrixStream { return &cf.a }

// MatB returns the streaming view of matrix B.
func (cf *CompiledSystemFile) MatB() MatrixStream { return &cf.b }

// MatC returns the streaming view of matrix C.
func (cf *CompiledSystemFile) MatC() MatrixStream { return &cf.c }
