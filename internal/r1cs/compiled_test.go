package r1cs

import (
	"testing"

	"zkrownn/internal/bn254/fr"
)

func frU(v uint64) fr.Element {
	var e fr.Element
	e.SetUint64(v)
	return e
}

// testSystem: x·x = y, (y + x)·1 = out with out public.
// Wires: 0 = one, 1 = out, 2 = x, 3 = y.
func testSystem() *System {
	one := frU(1)
	return &System{
		NbPublic:    2,
		NbWires:     4,
		PublicNames: []string{"one", "out"},
		Constraints: []Constraint{
			{
				A: LinearCombination{{Wire: 2, Coeff: one}},
				B: LinearCombination{{Wire: 2, Coeff: one}},
				C: LinearCombination{{Wire: 3, Coeff: one}},
			},
			{
				A: LinearCombination{{Wire: 3, Coeff: one}, {Wire: 2, Coeff: one}},
				B: LinearCombination{{Wire: 0, Coeff: one}},
				C: LinearCombination{{Wire: 1, Coeff: one}},
			},
		},
	}
}

func testWitness(x uint64) []fr.Element {
	w := make([]fr.Element, 4)
	w[0].SetOne()
	w[2].SetUint64(x)
	w[3].Mul(&w[2], &w[2])
	w[1].Add(&w[3], &w[2])
	return w
}

func TestFromSystemRoundTrip(t *testing.T) {
	sys := testSystem()
	cs, err := FromSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Validate(); err != nil {
		t.Fatal(err)
	}
	if cs.NbConstraints() != sys.NbConstraints() || cs.NbWires != sys.NbWires || cs.NbPublic != sys.NbPublic {
		t.Fatalf("shape mismatch: %+v vs %+v", cs.Stats(), sys.Stats())
	}
	if cs.Stats() != sys.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", cs.Stats(), sys.Stats())
	}

	// The CSR digest must match the eager digest byte for byte, and
	// survive a materialization round trip.
	if cs.DigestHex() != sys.DigestHex() {
		t.Fatal("compiled digest differs from eager digest")
	}
	back := cs.ToSystem()
	if back.DigestHex() != sys.DigestHex() {
		t.Fatal("ToSystem digest differs")
	}

	// Satisfaction parity on good and bad witnesses.
	w := testWitness(5)
	if ok, bad := cs.IsSatisfied(w); !ok {
		t.Fatalf("honest witness rejected at %d", bad)
	}
	w[3].SetUint64(7)
	okEager, badEager := sys.IsSatisfied(w)
	okCSR, badCSR := cs.IsSatisfied(w)
	if okEager || okCSR {
		t.Fatal("tampered witness accepted")
	}
	if badEager != badCSR {
		t.Fatalf("violation index mismatch: eager %d, CSR %d", badEager, badCSR)
	}
}

func TestFromSystemSolveScatters(t *testing.T) {
	cs, err := FromSystem(testSystem())
	if err != nil {
		t.Fatal(err)
	}
	// FromSystem circuits have no solver program: every wire is an
	// input, and WitnessAssignment/Solve must round-trip the witness.
	w := testWitness(9)
	asg := cs.WitnessAssignment(w)
	if len(asg.Public) != 1 || len(asg.Secret) != 2 {
		t.Fatalf("unexpected input layout: %d public, %d secret", len(asg.Public), len(asg.Secret))
	}
	solved, err := cs.SolveAssignment(asg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if !solved[i].Equal(&w[i]) {
			t.Fatalf("wire %d: solve %v != witness %v", i, solved[i], w[i])
		}
	}
	if _, err := cs.Solve(nil, asg.Secret); err == nil {
		t.Fatal("short public assignment accepted")
	}
}

func TestFromSystemRejectsInvalid(t *testing.T) {
	bad := testSystem()
	bad.Constraints[0].B[0].Wire = 99
	if _, err := FromSystem(bad); err == nil {
		t.Fatal("out-of-range wire accepted")
	}
}

func TestValidateCatchesBrokenProgram(t *testing.T) {
	cs, err := FromSystem(testSystem())
	if err != nil {
		t.Fatal(err)
	}
	// A program output colliding with a declared input must fail.
	cs.Program = Program{
		Instrs: []Instr{{Op: OpLC, Out: 3, NOut: 1}},
		Levels: []uint32{0, 1},
	}
	if err := cs.Validate(); err == nil {
		t.Fatal("double-assigned wire accepted")
	}
}
