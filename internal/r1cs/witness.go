package r1cs

import (
	"container/list"
	"fmt"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/poly"
)

// Spillable witness: at paper scale the full wire assignment is the
// second-largest per-proof object after the key (32 bytes per wire —
// hundreds of MB for a VGG-class circuit), and CSR row evaluation needs
// random access to it. WitnessFile keeps the assignment in a
// poly.VecFile and serves reads and writes through a bounded LRU page
// cache, so the solver can replay the tape and the prover can evaluate
// constraint rows with a fixed resident budget; the MSM consumers then
// stream the finished assignment sequentially through ReadRange — the
// same io.ReaderAt-style scalar path the out-of-core quotient already
// uses.
//
// Spill/load roundtrips preserve the Montgomery encoding bit for bit
// (poly.VecFile's invariant), so a spilled solve produces exactly the
// witness bits of CompiledSystem.Solve and proofs stay byte-identical.

// witnessPageElems is the page size in elements (1<<12 × 32 B = 128 KiB).
const witnessPageElems = 1 << 12

// witnessMinPages is the cache floor: enough pages that the solver's
// read locality (inputs + current level) does not thrash even under a
// token budget.
const witnessMinPages = 8

// WitnessFile is a disk-resident wire assignment with a bounded page
// cache. It is NOT safe for concurrent use: the solver writes it from
// one goroutine and the prover's streaming phases read it serially.
// Read/write errors are sticky — Get returns zero after a fault and
// Err reports the first failure — so hot loops stay branch-light and
// callers check once per window.
type WitnessFile struct {
	vf        *poly.VecFile
	n         int
	maxPages  int
	pages     map[int]*witnessPage
	lru       *list.List // front = most recent
	err       error
	pageLoads uint64
}

type witnessPage struct {
	idx   int
	dirty bool
	data  []fr.Element
	elem  *list.Element
}

// NewWitnessFile creates a spill store for n wires in dir (system temp
// directory when empty). budgetBytes bounds the resident page cache;
// values at or below zero, and anything under the floor, get the
// minimum cache (witnessMinPages pages).
func NewWitnessFile(dir string, n int, budgetBytes int64) (*WitnessFile, error) {
	vf, err := poly.CreateVecFile(dir, n)
	if err != nil {
		return nil, err
	}
	maxPages := int(budgetBytes / (witnessPageElems * poly.VecElemSize))
	if maxPages < witnessMinPages {
		maxPages = witnessMinPages
	}
	return &WitnessFile{
		vf:       vf,
		n:        n,
		maxPages: maxPages,
		pages:    make(map[int]*witnessPage, maxPages+1),
		lru:      list.New(),
	}, nil
}

// Len returns the wire count.
func (wf *WitnessFile) Len() int { return wf.n }

// Err returns the first read/write failure, if any.
func (wf *WitnessFile) Err() error { return wf.err }

// Close flushes nothing (spill files are scratch) and removes the
// backing file.
func (wf *WitnessFile) Close() error { return wf.vf.Close() }

// page returns the cached page holding element i, faulting it in (and
// evicting the least-recently-used page, with write-back if dirty)
// as needed.
func (wf *WitnessFile) page(i int) *witnessPage {
	idx := i / witnessPageElems
	if p, ok := wf.pages[idx]; ok {
		wf.lru.MoveToFront(p.elem)
		return p
	}
	start := idx * witnessPageElems
	end := min(start+witnessPageElems, wf.n)
	var p *witnessPage
	if len(wf.pages) >= wf.maxPages {
		// Reuse the evicted page's buffer — the cache stays at a fixed
		// set of allocations for the whole solve.
		victim := wf.lru.Back().Value.(*witnessPage)
		wf.flushPage(victim)
		delete(wf.pages, victim.idx)
		wf.lru.Remove(victim.elem)
		p = victim
	} else {
		p = &witnessPage{data: make([]fr.Element, witnessPageElems)}
	}
	p.idx = idx
	p.dirty = false
	p.data = p.data[:end-start]
	if wf.err == nil {
		if err := wf.vf.ReadAt(p.data, start); err != nil {
			wf.err = fmt.Errorf("r1cs: witness page load: %w", err)
		}
	}
	wf.pageLoads++
	mWitnessSpillPageLoads.Inc()
	p.elem = wf.lru.PushFront(p)
	wf.pages[idx] = p
	return p
}

// flushPage writes one dirty page back and marks it clean.
func (wf *WitnessFile) flushPage(p *witnessPage) {
	if !p.dirty {
		return
	}
	p.dirty = false
	if wf.err == nil {
		if err := wf.vf.WriteAt(p.data, p.idx*witnessPageElems); err != nil {
			wf.err = fmt.Errorf("r1cs: witness page flush: %w", err)
			return
		}
	}
	mWitnessSpillPageFlushes.Inc()
	mWitnessSpillBytes.Add(uint64(len(p.data)) * poly.VecElemSize)
}

// Get returns wire i's value (zero after a fault; see Err).
func (wf *WitnessFile) Get(i uint32) fr.Element {
	p := wf.page(int(i))
	return p.data[int(i)%witnessPageElems]
}

// Set writes wire i's value into the page cache; Flush persists it.
func (wf *WitnessFile) Set(i uint32, v *fr.Element) {
	p := wf.page(int(i))
	p.data[int(i)%witnessPageElems] = *v
	p.dirty = true
}

// Flush writes every dirty page back, leaving the cache warm and
// clean. Called at solver-level boundaries and before sequential
// ReadRange consumption.
func (wf *WitnessFile) Flush() error {
	for e := wf.lru.Front(); e != nil; e = e.Next() {
		wf.flushPage(e.Value.(*witnessPage))
	}
	return wf.err
}

// ReadRange loads len(dst) elements starting at wire start, reading
// through the flushed file. Any dirty pages are flushed first, so the
// range is always coherent with cached writes.
func (wf *WitnessFile) ReadRange(dst []fr.Element, start int) error {
	if err := wf.Flush(); err != nil {
		return err
	}
	if start < 0 || start+len(dst) > wf.n {
		return fmt.Errorf("r1cs: witness read [%d,%d) out of range [0,%d)", start, start+len(dst), wf.n)
	}
	return wf.vf.ReadAt(dst, start)
}

// PageLoads returns the number of page faults served so far (test and
// diagnostics hook).
func (wf *WitnessFile) PageLoads() uint64 { return wf.pageLoads }

func (p *Program) evalLCSpilled(off, end uint32, wf *WitnessFile) fr.Element {
	var acc, t fr.Element
	for k := off; k < end; k++ {
		wv := wf.Get(p.Wires[k])
		t.Mul(&p.Dict[p.CoeffIdx[k]], &wv)
		acc.Add(&acc, &t)
	}
	return acc
}

// execSpilled is exec against a spilled witness. The arithmetic is
// identical instruction for instruction, so the solved bits match
// Solve exactly.
func (p *Program) execSpilled(in *Instr, wf *WitnessFile) {
	a := p.evalLCSpilled(in.AOff, in.AEnd, wf)
	switch in.Op {
	case OpLC:
		wf.Set(in.Out, &a)
	case OpMul:
		b := p.evalLCSpilled(in.BOff, in.BEnd, wf)
		var v fr.Element
		v.Mul(&a, &b)
		wf.Set(in.Out, &v)
	case OpInv:
		var v fr.Element
		v.Inverse(&a)
		wf.Set(in.Out, &v)
	case OpIsZero:
		var v fr.Element
		if a.IsZero() {
			v.SetOne()
		}
		wf.Set(in.Out, &v)
	case OpBits:
		v := a.ToBigInt()
		var one, zero fr.Element
		one.SetOne()
		for i := uint32(0); i < in.NOut; i++ {
			if v.Bit(int(i)) == 1 {
				wf.Set(in.Out+i, &one)
			} else {
				wf.Set(in.Out+i, &zero)
			}
		}
	}
}

// SolveSpilled replays the solver program against a spilled witness
// store: inputs are scattered into the page cache and each dependency
// level runs in tape order, with completed levels flushed at the level
// boundary (the natural point — instructions within a level only read
// wires of earlier levels, so a flushed level never goes dirty again
// unless evicted pages interleave wires). Execution is serial — the
// page cache is single-goroutine — which trades the resident solver's
// within-level parallelism for bounded memory; it only engages when the
// engine decides the witness cannot stay resident.
//
// The solved bits equal Solve's exactly (same instructions, same field
// arithmetic, bit-exact spill roundtrips), so downstream proofs are
// byte-identical to the resident path.
func (cs *CompiledSystem) SolveSpilled(public, secret []fr.Element, wf *WitnessFile, tr *obs.Trace) error {
	if len(public) != len(cs.PubInputs) {
		return fmt.Errorf("r1cs: solve: got %d public inputs, circuit expects %d", len(public), len(cs.PubInputs))
	}
	if len(secret) != len(cs.SecretInputs) {
		return fmt.Errorf("r1cs: solve: got %d secret inputs, circuit expects %d", len(secret), len(cs.SecretInputs))
	}
	if wf.Len() != cs.NbWires {
		return fmt.Errorf("r1cs: solve: witness store holds %d wires, circuit has %d", wf.Len(), cs.NbWires)
	}
	var one fr.Element
	one.SetOne()
	wf.Set(0, &one)
	for i, wi := range cs.PubInputs {
		wf.Set(wi, &public[i])
	}
	for i, wi := range cs.SecretInputs {
		wf.Set(wi, &secret[i])
	}
	p := &cs.Program
	for l := 0; l+1 < len(p.Levels); l++ {
		sp := tr.Span("solve/spill-level")
		for k := p.Levels[l]; k < p.Levels[l+1]; k++ {
			p.execSpilled(&p.Instrs[k], wf)
		}
		err := wf.Flush()
		sp.End()
		if err != nil {
			return err
		}
		mWitnessSpillLevels.Inc()
	}
	return wf.Flush()
}
