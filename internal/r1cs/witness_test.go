package r1cs

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// TestWitnessFilePageCache drives random reads and writes across far
// more pages than the minimum cache holds, so eviction and write-back
// are exercised, then checks every element against a resident
// reference.
func TestWitnessFilePageCache(t *testing.T) {
	const n = witnessPageElems*3*witnessMinPages + 17 // 3× the page budget, odd tail
	wf, err := NewWitnessFile(t.TempDir(), n, 1)      // floor: witnessMinPages pages
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()

	ref := make([]fr.Element, n)
	rng := rand.New(rand.NewSource(11))
	for k := 0; k < 4*n; k++ {
		i := uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			var v fr.Element
			v.SetUint64(rng.Uint64())
			ref[i] = v
			wf.Set(i, &v)
		} else {
			got := wf.Get(i)
			if !got.Equal(&ref[i]) {
				t.Fatalf("Get(%d) diverges from reference mid-stream", i)
			}
		}
	}
	if wf.PageLoads() <= witnessMinPages {
		t.Fatalf("only %d page loads — eviction never engaged", wf.PageLoads())
	}

	// Sequential read-back through the flushed file must agree
	// everywhere, including elements only ever touched in cache.
	got := make([]fr.Element, n)
	if err := wf.ReadRange(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(&ref[i]) {
			t.Fatalf("element %d differs after flush + ReadRange", i)
		}
	}
	if err := wf.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestWitnessFileReadRangeBounds(t *testing.T) {
	wf, err := NewWitnessFile(t.TempDir(), 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	dst := make([]fr.Element, 10)
	if err := wf.ReadRange(dst, 95); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := wf.ReadRange(dst, -1); err == nil {
		t.Fatal("negative start accepted")
	}
}

// spillTestSystem builds a program-backed system by hand: x is the one
// secret input, y = x·x solves at level 0, out = y + x at level 1, with
// out public. Exercises input scatter, OpMul, OpLC, and the per-level
// flush.
func spillTestSystem(t *testing.T) *CompiledSystem {
	t.Helper()
	cs, err := FromSystem(testSystem())
	if err != nil {
		t.Fatal(err)
	}
	cs.PubInputs = nil
	cs.PubInputNames = nil
	cs.SecretInputs = []uint32{2}
	cs.Program = Program{
		Instrs: []Instr{
			{Op: OpMul, Out: 3, NOut: 1, AOff: 0, AEnd: 1, BOff: 1, BEnd: 2},
			{Op: OpLC, Out: 1, NOut: 1, AOff: 2, AEnd: 4},
		},
		Wires:    []uint32{2, 2, 3, 2},
		CoeffIdx: []uint32{0, 0, 0, 0},
		Dict:     []fr.Element{frU(1)},
		Levels:   []uint32{0, 1, 2},
	}
	return cs
}

// TestSolveSpilledMatchesSolve is the solver oracle: the spilled tape
// must reproduce Solve's witness bit for bit.
func TestSolveSpilledMatchesSolve(t *testing.T) {
	cs := spillTestSystem(t)
	secret := []fr.Element{frU(5)}
	want, err := cs.Solve(nil, secret)
	if err != nil {
		t.Fatal(err)
	}
	if ok, bad := cs.IsSatisfied(want); !ok {
		t.Fatalf("resident solve violates constraint %d", bad)
	}

	wf, err := NewWitnessFile(t.TempDir(), cs.NbWires, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	if err := cs.SolveSpilled(nil, secret, wf, nil); err != nil {
		t.Fatal(err)
	}
	got := make([]fr.Element, cs.NbWires)
	if err := wf.ReadRange(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(&want[i]) {
			t.Fatalf("wire %d: spilled %v != resident %v", i, got[i], want[i])
		}
	}
}

func TestSolveSpilledRejectsBadInputs(t *testing.T) {
	cs := spillTestSystem(t)
	wf, err := NewWitnessFile(t.TempDir(), cs.NbWires, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer wf.Close()
	if err := cs.SolveSpilled(nil, nil, wf, nil); err == nil {
		t.Fatal("missing secret input accepted")
	}
	short, err := NewWitnessFile(t.TempDir(), cs.NbWires-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer short.Close()
	if err := cs.SolveSpilled(nil, []fr.Element{frU(3)}, short, nil); err == nil {
		t.Fatal("undersized witness store accepted")
	}
}

// TestStripForSolve pins the solver-only copy's contract: dimensions,
// digest, and solving survive; the CSR arrays do not.
func TestStripForSolve(t *testing.T) {
	cs := spillTestSystem(t)
	stripped := cs.StripForSolve()
	if !stripped.Stripped() {
		t.Fatal("copy not marked stripped")
	}
	if cs.Stripped() {
		t.Fatal("original marked stripped")
	}
	if stripped.Dims() != cs.Dims() {
		t.Fatalf("dims changed: %+v vs %+v", stripped.Dims(), cs.Dims())
	}
	if stripped.DigestHex() != cs.DigestHex() {
		t.Fatal("digest changed")
	}
	if stripped.MatA().NbTerms() != 0 {
		t.Fatal("stripped copy still holds CSR terms")
	}
	want, err := cs.Solve(nil, []fr.Element{frU(7)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := stripped.Solve(nil, []fr.Element{frU(7)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !got[i].Equal(&want[i]) {
			t.Fatalf("wire %d differs on stripped solve", i)
		}
	}
}
