package r1cs

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// randomCompiled builds a compiled system with nCons random constraints
// over nWires wires — irregular row lengths (including empty rows) so
// window boundaries land mid-matrix.
func randomCompiled(t *testing.T, rng *rand.Rand, nCons, nWires int) *CompiledSystem {
	t.Helper()
	sys := &System{
		NbPublic:    2,
		NbWires:     nWires,
		PublicNames: []string{"one", "out"},
	}
	lc := func() LinearCombination {
		n := rng.Intn(5) // empty LCs allowed
		terms := make(LinearCombination, n)
		for i := range terms {
			var c fr.Element
			c.SetUint64(rng.Uint64()%97 + 1)
			terms[i] = Term{Wire: rng.Intn(nWires), Coeff: c}
		}
		return terms
	}
	for i := 0; i < nCons; i++ {
		sys.Constraints = append(sys.Constraints, Constraint{A: lc(), B: lc(), C: lc()})
	}
	cs, err := FromSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestCompiledSystemFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cs := randomCompiled(t, rng, 300, 64)
	path := filepath.Join(t.TempDir(), "sys.csr")
	if err := WriteCompiledSystemFile(path, cs); err != nil {
		t.Fatal(err)
	}

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Size(), CSRRawSizeBytes(cs); got != want {
		t.Fatalf("file is %d bytes, CSRRawSizeBytes predicts %d", got, want)
	}

	cf, err := OpenCompiledSystemFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if cf.Dims() != cs.Dims() {
		t.Fatalf("dims mismatch: %+v vs %+v", cf.Dims(), cs.Dims())
	}
	if cf.DigestHex() != cs.DigestHex() {
		t.Fatal("digest mismatch after round trip")
	}
	if cf.RawSize() != st.Size() {
		t.Fatalf("RawSize %d != file size %d", cf.RawSize(), st.Size())
	}

	// Every row of every matrix, streamed through deliberately tiny
	// windows, must evaluate identically to the resident CSR.
	w := make([]fr.Element, cs.NbWires)
	for i := range w {
		w[i].SetUint64(rng.Uint64())
	}
	w[0].SetOne()
	pairs := []struct {
		name string
		mem  *Matrix
		disk MatrixStream
	}{
		{"A", &cs.A, cf.MatA()},
		{"B", &cs.B, cf.MatB()},
		{"C", &cs.C, cf.MatC()},
	}
	for _, p := range pairs {
		if got, want := p.disk.NbRows(), p.mem.NbRows(); got != want {
			t.Fatalf("%s: NbRows %d != %d", p.name, got, want)
		}
		win := &RowWindow{}
		for start := 0; start < p.mem.NbRows(); {
			end := p.disk.EndRowForTerms(start, 7)
			if memEnd := p.mem.EndRowForTerms(start, 7); memEnd != end {
				t.Fatalf("%s: window plan diverges at row %d: disk %d, mem %d", p.name, start, end, memEnd)
			}
			if err := p.disk.LoadRows(win, start, end); err != nil {
				t.Fatalf("%s: LoadRows(%d,%d): %v", p.name, start, end, err)
			}
			for i := 0; i < end-start; i++ {
				got := win.RowEval(i, w)
				want := p.mem.RowEval(start+i, w)
				if !got.Equal(&want) {
					t.Fatalf("%s: row %d evaluates differently from disk", p.name, start+i)
				}
			}
			start = end
		}
	}
}

func TestOpenCompiledSystemFileTruncated(t *testing.T) {
	cs := randomCompiled(t, rand.New(rand.NewSource(7)), 50, 32)
	path := filepath.Join(t.TempDir(), "sys.csr")
	if err := WriteCompiledSystemFile(path, cs); err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	for _, cut := range []int64{1, 100, st.Size() / 2, st.Size() - 4} {
		if err := os.Truncate(path, st.Size()-cut); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenCompiledSystemFile(path); !errors.Is(err, ErrBadCSRFile) {
			t.Fatalf("truncated by %d bytes: got %v, want ErrBadCSRFile", cut, err)
		}
		// restore for the next cut
		if err := WriteCompiledSystemFile(path, cs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenCompiledSystemFileCorrupt(t *testing.T) {
	cs := randomCompiled(t, rand.New(rand.NewSource(9)), 50, 32)
	path := filepath.Join(t.TempDir(), "sys.csr")
	if err := WriteCompiledSystemFile(path, cs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte deep in the payload: the CRC pass must reject the
	// file before any section is trusted.
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCompiledSystemFile(path); !errors.Is(err, ErrBadCSRFile) {
		t.Fatalf("corrupt payload: got %v, want ErrBadCSRFile", err)
	}
	// Bad magic is rejected immediately.
	raw[len(raw)/2] ^= 0xff
	raw[0] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCompiledSystemFile(path); !errors.Is(err, ErrBadCSRFile) {
		t.Fatalf("bad magic: got %v, want ErrBadCSRFile", err)
	}
}
