package r1cs

import "zkrownn/internal/obs"

// Out-of-core constraint-system metrics on the process-wide obs
// registry: how often the CSR file path engages and how much it moves,
// plus the spillable witness store's paging behaviour. Registration is
// idempotent — every engine in the process shares the series.
var (
	mCSRFilesWritten = obs.Default().Counter("zkrownn_csr_files_written_total",
		"Constraint-system CSR files serialized to disk.")
	mCSRBytesWritten = obs.Default().Counter("zkrownn_csr_bytes_written_total",
		"Bytes of CSR encodings written to disk.")
	mCSRRowWindows = obs.Default().Counter("zkrownn_csr_row_windows_total",
		"Bounded row windows loaded from disk-resident constraint systems.")
	mCSRReadBytes = obs.Default().Counter("zkrownn_csr_read_bytes_total",
		"Bytes of CSR term data read from disk-resident constraint systems.")

	mWitnessSpillLevels = obs.Default().Counter("zkrownn_witness_spill_levels_total",
		"Solver-tape levels flushed to a spilled witness store.")
	mWitnessSpillPageLoads = obs.Default().Counter("zkrownn_witness_spill_page_loads_total",
		"Witness pages faulted in from the spill file.")
	mWitnessSpillPageFlushes = obs.Default().Counter("zkrownn_witness_spill_page_flushes_total",
		"Dirty witness pages written back to the spill file.")
	mWitnessSpillBytes = obs.Default().Counter("zkrownn_witness_spill_bytes_total",
		"Bytes of witness data written to spill files (page write-backs).")
)
