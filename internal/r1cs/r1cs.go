// Package r1cs defines the rank-1 constraint system representation that
// the frontend compiles circuits into and the Groth16 backend consumes.
//
// A system over F_r has wires w₀..w_{m-1} with the fixed layout
//
//	w₀ = 1 (the constant wire)
//	w₁..w_{ℓ} = public inputs/outputs (the "instance")
//	w_{ℓ+1}.. = private witness
//
// and constraints ⟨Aᵢ, w⟩ · ⟨Bᵢ, w⟩ = ⟨Cᵢ, w⟩.
//
// Two representations coexist: the eager System below (per-constraint
// []Term slices — convenient to build by hand, kept for tests and
// diagnostics) and the CompiledSystem in compiled.go (CSR matrices plus
// a recorded witness solver — what the frontend emits and the Groth16
// backend consumes). FromSystem/ToSystem convert between them.
package r1cs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"zkrownn/internal/bn254/fr"
)

// Term is one coefficient·wire entry of a linear combination.
type Term struct {
	Wire  int
	Coeff fr.Element
}

// LinearCombination is a sparse Σ coeff·wire expression.
type LinearCombination []Term

// Constraint is one rank-1 constraint A·B = C.
type Constraint struct {
	A, B, C LinearCombination
}

// System is a complete constraint system.
type System struct {
	Constraints []Constraint
	// NbPublic counts the constant-one wire plus the public inputs, i.e.
	// wires 0..NbPublic-1 are the statement.
	NbPublic int
	// NbWires is the total wire count (public + private).
	NbWires int
	// PublicNames optionally labels the public wires (index 1..NbPublic-1)
	// for diagnostics and serialization.
	PublicNames []string
}

// NbPrivate returns the number of private witness wires.
func (s *System) NbPrivate() int { return s.NbWires - s.NbPublic }

// NbConstraints returns the number of constraints.
func (s *System) NbConstraints() int { return len(s.Constraints) }

// Eval computes ⟨lc, w⟩ for a full wire assignment.
func (lc LinearCombination) Eval(w []fr.Element) fr.Element {
	var acc fr.Element
	for _, t := range lc {
		var term fr.Element
		term.Mul(&t.Coeff, &w[t.Wire])
		acc.Add(&acc, &term)
	}
	return acc
}

// Clone returns a deep copy of the linear combination.
func (lc LinearCombination) Clone() LinearCombination {
	out := make(LinearCombination, len(lc))
	copy(out, lc)
	return out
}

// Validate checks structural invariants: wire indices in range and the
// public prefix well-formed.
func (s *System) Validate() error {
	if s.NbPublic < 1 {
		return fmt.Errorf("r1cs: NbPublic must include the constant wire (got %d)", s.NbPublic)
	}
	if s.NbWires < s.NbPublic {
		return fmt.Errorf("r1cs: NbWires %d < NbPublic %d", s.NbWires, s.NbPublic)
	}
	check := func(lc LinearCombination) error {
		for _, t := range lc {
			if t.Wire < 0 || t.Wire >= s.NbWires {
				return fmt.Errorf("r1cs: wire index %d out of range [0,%d)", t.Wire, s.NbWires)
			}
		}
		return nil
	}
	for i, c := range s.Constraints {
		if err := check(c.A); err != nil {
			return fmt.Errorf("constraint %d A: %w", i, err)
		}
		if err := check(c.B); err != nil {
			return fmt.Errorf("constraint %d B: %w", i, err)
		}
		if err := check(c.C); err != nil {
			return fmt.Errorf("constraint %d C: %w", i, err)
		}
	}
	return nil
}

// IsSatisfied reports whether the witness satisfies every constraint;
// on failure it returns the index of the first violated constraint.
func (s *System) IsSatisfied(w []fr.Element) (bool, int) {
	if len(w) != s.NbWires {
		return false, -1
	}
	if !w[0].IsOne() {
		return false, -1
	}
	for i, c := range s.Constraints {
		a := c.A.Eval(w)
		b := c.B.Eval(w)
		cc := c.C.Eval(w)
		var ab fr.Element
		ab.Mul(&a, &b)
		if !ab.Equal(&cc) {
			return false, i
		}
	}
	return true, 0
}

// Digest returns a SHA-256 digest of the system's structure: wire
// layout and every constraint's sparse coefficients. Two systems share a
// digest exactly when the Groth16 trusted setup would produce
// interchangeable keys for them, so the digest is the cache key of the
// prover engine's key cache. Public-wire *values* live in the witness,
// not the constraints — proving the same architecture against different
// model weights reuses the same digest (and the same keys).
func (s *System) Digest() [32]byte {
	h := sha256.New()
	var buf [4]byte
	writeU32 := func(vs ...uint32) {
		for _, v := range vs {
			binary.LittleEndian.PutUint32(buf[:], v)
			h.Write(buf[:])
		}
	}
	h.Write([]byte("zkrownn/r1cs/v1"))
	writeU32(uint32(s.NbPublic), uint32(s.NbWires), uint32(len(s.Constraints)))
	writeLC := func(lc LinearCombination) {
		writeU32(uint32(len(lc)))
		for _, t := range lc {
			b := t.Coeff.Bytes()
			binary.LittleEndian.PutUint32(buf[:], uint32(t.Wire))
			h.Write(buf[:])
			h.Write(b[:])
		}
	}
	for i := range s.Constraints {
		writeLC(s.Constraints[i].A)
		writeLC(s.Constraints[i].B)
		writeLC(s.Constraints[i].C)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// DigestHex returns Digest as a lowercase hex string (the on-disk cache
// file stem).
func (s *System) DigestHex() string {
	d := s.Digest()
	return hex.EncodeToString(d[:])
}

// Stats summarises the system for benchmark reporting.
type Stats struct {
	NbConstraints int
	NbWires       int
	NbPublic      int
	NbPrivate     int
	NbTerms       int // total non-zero coefficients across A, B, C
}

// Stats computes summary statistics.
func (s *System) Stats() Stats {
	terms := 0
	for _, c := range s.Constraints {
		terms += len(c.A) + len(c.B) + len(c.C)
	}
	return Stats{
		NbConstraints: len(s.Constraints),
		NbWires:       s.NbWires,
		NbPublic:      s.NbPublic,
		NbPrivate:     s.NbPrivate(),
		NbTerms:       terms,
	}
}
