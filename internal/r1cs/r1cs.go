// Package r1cs defines the rank-1 constraint system representation that
// the frontend compiles circuits into and the Groth16 backend consumes.
//
// A system over F_r has wires w₀..w_{m-1} with the fixed layout
//
//	w₀ = 1 (the constant wire)
//	w₁..w_{ℓ} = public inputs/outputs (the "instance")
//	w_{ℓ+1}.. = private witness
//
// and constraints ⟨Aᵢ, w⟩ · ⟨Bᵢ, w⟩ = ⟨Cᵢ, w⟩.
package r1cs

import (
	"fmt"

	"zkrownn/internal/bn254/fr"
)

// Term is one coefficient·wire entry of a linear combination.
type Term struct {
	Wire  int
	Coeff fr.Element
}

// LinearCombination is a sparse Σ coeff·wire expression.
type LinearCombination []Term

// Constraint is one rank-1 constraint A·B = C.
type Constraint struct {
	A, B, C LinearCombination
}

// System is a complete constraint system.
type System struct {
	Constraints []Constraint
	// NbPublic counts the constant-one wire plus the public inputs, i.e.
	// wires 0..NbPublic-1 are the statement.
	NbPublic int
	// NbWires is the total wire count (public + private).
	NbWires int
	// PublicNames optionally labels the public wires (index 1..NbPublic-1)
	// for diagnostics and serialization.
	PublicNames []string
}

// NbPrivate returns the number of private witness wires.
func (s *System) NbPrivate() int { return s.NbWires - s.NbPublic }

// NbConstraints returns the number of constraints.
func (s *System) NbConstraints() int { return len(s.Constraints) }

// Eval computes ⟨lc, w⟩ for a full wire assignment.
func (lc LinearCombination) Eval(w []fr.Element) fr.Element {
	var acc fr.Element
	for _, t := range lc {
		var term fr.Element
		term.Mul(&t.Coeff, &w[t.Wire])
		acc.Add(&acc, &term)
	}
	return acc
}

// Clone returns a deep copy of the linear combination.
func (lc LinearCombination) Clone() LinearCombination {
	out := make(LinearCombination, len(lc))
	copy(out, lc)
	return out
}

// Validate checks structural invariants: wire indices in range and the
// public prefix well-formed.
func (s *System) Validate() error {
	if s.NbPublic < 1 {
		return fmt.Errorf("r1cs: NbPublic must include the constant wire (got %d)", s.NbPublic)
	}
	if s.NbWires < s.NbPublic {
		return fmt.Errorf("r1cs: NbWires %d < NbPublic %d", s.NbWires, s.NbPublic)
	}
	check := func(lc LinearCombination) error {
		for _, t := range lc {
			if t.Wire < 0 || t.Wire >= s.NbWires {
				return fmt.Errorf("r1cs: wire index %d out of range [0,%d)", t.Wire, s.NbWires)
			}
		}
		return nil
	}
	for i, c := range s.Constraints {
		if err := check(c.A); err != nil {
			return fmt.Errorf("constraint %d A: %w", i, err)
		}
		if err := check(c.B); err != nil {
			return fmt.Errorf("constraint %d B: %w", i, err)
		}
		if err := check(c.C); err != nil {
			return fmt.Errorf("constraint %d C: %w", i, err)
		}
	}
	return nil
}

// IsSatisfied reports whether the witness satisfies every constraint;
// on failure it returns the index of the first violated constraint.
func (s *System) IsSatisfied(w []fr.Element) (bool, int) {
	if len(w) != s.NbWires {
		return false, -1
	}
	if !w[0].IsOne() {
		return false, -1
	}
	for i, c := range s.Constraints {
		a := c.A.Eval(w)
		b := c.B.Eval(w)
		cc := c.C.Eval(w)
		var ab fr.Element
		ab.Mul(&a, &b)
		if !ab.Equal(&cc) {
			return false, i
		}
	}
	return true, 0
}

// Stats summarises the system for benchmark reporting.
type Stats struct {
	NbConstraints int
	NbWires       int
	NbPublic      int
	NbPrivate     int
	NbTerms       int // total non-zero coefficients across A, B, C
}

// Stats computes summary statistics.
func (s *System) Stats() Stats {
	terms := 0
	for _, c := range s.Constraints {
		terms += len(c.A) + len(c.B) + len(c.C)
	}
	return Stats{
		NbConstraints: len(s.Constraints),
		NbWires:       s.NbWires,
		NbPublic:      s.NbPublic,
		NbPrivate:     s.NbPrivate(),
		NbTerms:       terms,
	}
}
