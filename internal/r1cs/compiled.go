package r1cs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/par"
)

// This file defines the compile-once representation of a constraint
// system: the three R1CS matrices in CSR form plus a recorded solver
// program. Compilation (circuit synthesis, linear-combination merging,
// wire permutation) happens once per architecture; every subsequent
// proof replays the solver program against fresh inputs — orders of
// magnitude cheaper than re-running the circuit builder.

// Matrix is one R1CS matrix (A, B, or C) in compressed sparse row form:
// row i's terms are Wires[RowOffs[i]:RowOffs[i+1]] with matching
// coefficients Dict[CoeffIdx[k]]. The flat layout replaces the
// per-constraint []Term slices of the eager System, so QAP accumulation
// and witness checks walk contiguous arrays instead of pointer-chasing
// per-constraint allocations.
//
// Coefficients are dictionary-compressed: circuit matrices draw their
// coefficients from a tiny set (±1, powers of two from bit
// decompositions, a handful of fixed-point constants — a few hundred
// distinct values even at paper scale), so storing a uint32 dictionary
// index per term instead of a 32-byte field element cuts the resident
// matrix size roughly 4× and is what keeps the compiled system small
// enough for out-of-core proving's memory budget.
type Matrix struct {
	RowOffs  []uint32 // len nbConstraints+1
	Wires    []uint32
	CoeffIdx []uint32     // per-term index into Dict
	Dict     []fr.Element // distinct coefficients
}

// NbRows returns the number of constraint rows.
func (m *Matrix) NbRows() int { return len(m.RowOffs) - 1 }

// Coeff returns term k's coefficient.
func (m *Matrix) Coeff(k uint32) *fr.Element { return &m.Dict[m.CoeffIdx[k]] }

// RowEval computes ⟨row i, w⟩.
func (m *Matrix) RowEval(i int, w []fr.Element) fr.Element {
	var acc, t fr.Element
	for k := m.RowOffs[i]; k < m.RowOffs[i+1]; k++ {
		t.Mul(&m.Dict[m.CoeffIdx[k]], &w[m.Wires[k]])
		acc.Add(&acc, &t)
	}
	return acc
}

// CoeffInterner builds a coefficient dictionary during compilation:
// Intern maps each distinct field element to a stable dense index
// (first-seen order), and Dict returns the backing table for Matrix or
// Program.
type CoeffInterner struct {
	idx  map[fr.Element]uint32
	dict []fr.Element
}

// NewCoeffInterner returns an empty interner.
func NewCoeffInterner() *CoeffInterner {
	return &CoeffInterner{idx: make(map[fr.Element]uint32)}
}

// Intern returns the dictionary index for c, adding it if new.
func (ci *CoeffInterner) Intern(c fr.Element) uint32 {
	if i, ok := ci.idx[c]; ok {
		return i
	}
	i := uint32(len(ci.dict))
	ci.idx[c] = i
	ci.dict = append(ci.dict, c)
	return i
}

// Dict returns the interned coefficient table.
func (ci *CoeffInterner) Dict() []fr.Element { return ci.dict }

// OpCode enumerates solver-program instructions. Every non-input wire of
// a compiled circuit is produced by exactly one instruction; the set
// mirrors the frontend operations that allocate wires.
type OpCode uint8

const (
	// OpLC writes the evaluation of linear combination A (Reduce and
	// public outputs).
	OpLC OpCode = iota
	// OpMul writes eval(A)·eval(B).
	OpMul
	// OpInv writes eval(A)⁻¹, with 0⁻¹ = 0 (the Inverse and IsZero
	// auxiliary-wire convention; an actual zero input then fails the
	// corresponding constraint, as intended).
	OpInv
	// OpIsZero writes 1 when eval(A) is zero, else 0 (a solver hint —
	// the booleanity is enforced by the accompanying constraints).
	OpIsZero
	// OpBits writes the NOut little-endian bits of eval(A) into wires
	// Out..Out+NOut-1 (bit decomposition).
	OpBits
)

// Instr is one solver instruction. Linear combinations are spans into
// the Program's shared term pools.
type Instr struct {
	Op         OpCode
	Out        uint32 // first output wire
	NOut       uint32 // number of output wires (1 except OpBits)
	AOff, AEnd uint32
	BOff, BEnd uint32 // OpMul only
}

// Program is the recorded witness solver: an instruction tape that
// recomputes every internal wire from the input wires alone. Levels
// partitions the tape into dependency levels — Instrs[Levels[l]:
// Levels[l+1]] only read wires written before level l — so Solve can
// evaluate each level in parallel. LC term coefficients are
// dictionary-compressed exactly like Matrix coefficients.
type Program struct {
	Instrs   []Instr
	Wires    []uint32
	CoeffIdx []uint32
	Dict     []fr.Element
	Levels   []uint32
}

// NbInstrs returns the instruction count.
func (p *Program) NbInstrs() int { return len(p.Instrs) }

// NbLevels returns the number of dependency levels.
func (p *Program) NbLevels() int {
	if len(p.Levels) == 0 {
		return 0
	}
	return len(p.Levels) - 1
}

func (p *Program) evalLC(off, end uint32, w []fr.Element) fr.Element {
	var acc, t fr.Element
	for k := off; k < end; k++ {
		t.Mul(&p.Dict[p.CoeffIdx[k]], &w[p.Wires[k]])
		acc.Add(&acc, &t)
	}
	return acc
}

// exec evaluates one instruction against the (partially solved) witness.
func (p *Program) exec(in *Instr, w []fr.Element) {
	a := p.evalLC(in.AOff, in.AEnd, w)
	switch in.Op {
	case OpLC:
		w[in.Out] = a
	case OpMul:
		b := p.evalLC(in.BOff, in.BEnd, w)
		w[in.Out].Mul(&a, &b)
	case OpInv:
		w[in.Out].Inverse(&a)
	case OpIsZero:
		if a.IsZero() {
			w[in.Out].SetOne()
		} else {
			w[in.Out] = fr.Element{}
		}
	case OpBits:
		v := a.ToBigInt()
		for i := uint32(0); i < in.NOut; i++ {
			if v.Bit(int(i)) == 1 {
				w[in.Out+i].SetOne()
			} else {
				w[in.Out+i] = fr.Element{}
			}
		}
	}
}

// Assignment binds concrete values to a compiled system's declared
// inputs, in declaration order. It is the per-proof half of the
// compile-once / solve-many split: one CompiledSystem serves many
// Assignments.
type Assignment struct {
	// Public values for CompiledSystem.PubInputs (public *inputs* only —
	// public outputs are computed by the solver program).
	Public []fr.Element
	// Secret values for CompiledSystem.SecretInputs.
	Secret []fr.Element
}

// CompiledSystem is a constraint system compiled for repeated proving:
// CSR matrices for the Groth16 backend, an input-binding layout, and the
// recorded solver program that rebuilds the full witness from inputs.
// It is immutable after compilation and safe for concurrent use — many
// goroutines may Solve distinct assignments against one instance.
type CompiledSystem struct {
	A, B, C Matrix

	// NbPublic counts the constant-one wire plus all public wires
	// (inputs and computed outputs); wires 0..NbPublic-1 are the
	// statement.
	NbPublic int
	NbWires  int
	// PublicNames labels the public wires (index 0 is "one").
	PublicNames []string

	// PubInputs lists the public wires whose values the caller provides
	// at solve time, in declaration order; PubInputNames labels them
	// (used to rebind inputs — e.g. suspect-model weights — by name).
	PubInputs     []uint32
	PubInputNames []string
	// SecretInputs lists the private input wires, in declaration order.
	SecretInputs []uint32

	Program Program

	digestOnce sync.Once
	digest     [32]byte

	// stripped marks a StripForSolve copy (placeholder CSR arrays).
	stripped bool
}

// NbPrivate returns the number of private witness wires.
func (cs *CompiledSystem) NbPrivate() int { return cs.NbWires - cs.NbPublic }

// NbConstraints returns the number of constraints.
func (cs *CompiledSystem) NbConstraints() int { return cs.A.NbRows() }

// Solve replays the solver program: it scatters the assignment onto the
// input wires and evaluates the tape level by level (instructions within
// a level are independent and run in parallel), returning the full wire
// assignment. It never mutates the system and allocates a fresh witness,
// so concurrent calls with distinct inputs are safe.
func (cs *CompiledSystem) Solve(public, secret []fr.Element) ([]fr.Element, error) {
	if len(public) != len(cs.PubInputs) {
		return nil, fmt.Errorf("r1cs: solve: got %d public inputs, circuit expects %d", len(public), len(cs.PubInputs))
	}
	if len(secret) != len(cs.SecretInputs) {
		return nil, fmt.Errorf("r1cs: solve: got %d secret inputs, circuit expects %d", len(secret), len(cs.SecretInputs))
	}
	w := make([]fr.Element, cs.NbWires)
	w[0].SetOne()
	for i, wi := range cs.PubInputs {
		w[wi] = public[i]
	}
	for i, wi := range cs.SecretInputs {
		w[wi] = secret[i]
	}
	p := &cs.Program
	for l := 0; l+1 < len(p.Levels); l++ {
		lo, hi := int(p.Levels[l]), int(p.Levels[l+1])
		par.Range(hi-lo, func(s, e int) {
			for k := lo + s; k < lo+e; k++ {
				p.exec(&p.Instrs[k], w)
			}
		})
	}
	return w, nil
}

// SolveAssignment is Solve over an Assignment value.
func (cs *CompiledSystem) SolveAssignment(asg Assignment) ([]fr.Element, error) {
	return cs.Solve(asg.Public, asg.Secret)
}

// PublicValues extracts the instance (public wires, excluding the
// constant wire) from a solved witness, in the order Verify expects.
func (cs *CompiledSystem) PublicValues(witness []fr.Element) []fr.Element {
	out := make([]fr.Element, cs.NbPublic-1)
	copy(out, witness[1:cs.NbPublic])
	return out
}

// IsSatisfied reports whether the witness satisfies every constraint,
// checking rows in parallel over the flat CSR arrays; on failure it
// returns the index of the first violated constraint.
func (cs *CompiledSystem) IsSatisfied(w []fr.Element) (bool, int) {
	if len(w) != cs.NbWires {
		return false, -1
	}
	if !w[0].IsOne() {
		return false, -1
	}
	n := cs.NbConstraints()
	var bad atomic.Int64
	bad.Store(int64(n))
	par.Range(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := cs.A.RowEval(i, w)
			b := cs.B.RowEval(i, w)
			c := cs.C.RowEval(i, w)
			var ab fr.Element
			ab.Mul(&a, &b)
			if !ab.Equal(&c) {
				// Chunks scan ascending, so the chunk's first violation is
				// its minimum; the atomic min across chunks is global.
				for {
					cur := bad.Load()
					if int64(i) >= cur || bad.CompareAndSwap(cur, int64(i)) {
						break
					}
				}
				return
			}
		}
	})
	if v := bad.Load(); v < int64(n) {
		return false, int(v)
	}
	return true, 0
}

// Digest returns the SHA-256 digest of the system's structure. The byte
// stream is identical to System.Digest for the same circuit, so a
// compiled system and its eager materialization share cache keys (the
// prover engine's key cache, the proof service's model IDs). The result
// is computed once and cached; concurrent calls are safe.
func (cs *CompiledSystem) Digest() [32]byte {
	cs.digestOnce.Do(func() {
		h := sha256.New()
		var buf [4]byte
		writeU32 := func(vs ...uint32) {
			for _, v := range vs {
				binary.LittleEndian.PutUint32(buf[:], v)
				h.Write(buf[:])
			}
		}
		h.Write([]byte("zkrownn/r1cs/v1"))
		n := cs.NbConstraints()
		writeU32(uint32(cs.NbPublic), uint32(cs.NbWires), uint32(n))
		writeRow := func(m *Matrix, i int) {
			lo, hi := m.RowOffs[i], m.RowOffs[i+1]
			writeU32(hi - lo)
			for k := lo; k < hi; k++ {
				b := m.Dict[m.CoeffIdx[k]].Bytes()
				binary.LittleEndian.PutUint32(buf[:], m.Wires[k])
				h.Write(buf[:])
				h.Write(b[:])
			}
		}
		for i := 0; i < n; i++ {
			writeRow(&cs.A, i)
			writeRow(&cs.B, i)
			writeRow(&cs.C, i)
		}
		h.Sum(cs.digest[:0])
	})
	return cs.digest
}

// DigestHex returns Digest as a lowercase hex string.
func (cs *CompiledSystem) DigestHex() string {
	d := cs.Digest()
	return hex.EncodeToString(d[:])
}

// Validate checks structural invariants: matching row counts, wire
// indices in range, a well-formed public prefix, inputs inside the wire
// space, and solver-program coverage (every non-input wire written by
// exactly one instruction, reading only wires of earlier levels or
// inputs).
func (cs *CompiledSystem) Validate() error {
	if cs.NbPublic < 1 {
		return fmt.Errorf("r1cs: NbPublic must include the constant wire (got %d)", cs.NbPublic)
	}
	if cs.NbWires < cs.NbPublic {
		return fmt.Errorf("r1cs: NbWires %d < NbPublic %d", cs.NbWires, cs.NbPublic)
	}
	n := cs.A.NbRows()
	if cs.B.NbRows() != n || cs.C.NbRows() != n {
		return fmt.Errorf("r1cs: matrix row counts differ (A=%d B=%d C=%d)", n, cs.B.NbRows(), cs.C.NbRows())
	}
	checkMatrix := func(name string, m *Matrix) error {
		if len(m.Wires) != len(m.CoeffIdx) {
			return fmt.Errorf("r1cs: matrix %s has %d wires but %d coeffs", name, len(m.Wires), len(m.CoeffIdx))
		}
		if int(m.RowOffs[len(m.RowOffs)-1]) != len(m.Wires) {
			return fmt.Errorf("r1cs: matrix %s row offsets end at %d, have %d terms", name, m.RowOffs[len(m.RowOffs)-1], len(m.Wires))
		}
		for _, wi := range m.Wires {
			if int(wi) >= cs.NbWires {
				return fmt.Errorf("r1cs: matrix %s wire index %d out of range [0,%d)", name, wi, cs.NbWires)
			}
		}
		for _, ci := range m.CoeffIdx {
			if int(ci) >= len(m.Dict) {
				return fmt.Errorf("r1cs: matrix %s coefficient index %d out of dictionary range [0,%d)", name, ci, len(m.Dict))
			}
		}
		return nil
	}
	if err := checkMatrix("A", &cs.A); err != nil {
		return err
	}
	if err := checkMatrix("B", &cs.B); err != nil {
		return err
	}
	if err := checkMatrix("C", &cs.C); err != nil {
		return err
	}
	if len(cs.PubInputs) != len(cs.PubInputNames) {
		return fmt.Errorf("r1cs: %d public input wires but %d names", len(cs.PubInputs), len(cs.PubInputNames))
	}

	// Input / program coverage.
	written := make([]uint8, cs.NbWires)
	written[0] = 1
	mark := func(wi uint32, what string) error {
		if int(wi) >= cs.NbWires {
			return fmt.Errorf("r1cs: %s wire %d out of range [0,%d)", what, wi, cs.NbWires)
		}
		if written[wi] != 0 {
			return fmt.Errorf("r1cs: wire %d assigned more than once (%s)", wi, what)
		}
		written[wi] = 1
		return nil
	}
	for _, wi := range cs.PubInputs {
		if int(wi) >= cs.NbPublic {
			return fmt.Errorf("r1cs: public input wire %d outside public prefix [1,%d)", wi, cs.NbPublic)
		}
		if err := mark(wi, "public input"); err != nil {
			return err
		}
	}
	for _, wi := range cs.SecretInputs {
		if int(wi) < cs.NbPublic {
			return fmt.Errorf("r1cs: secret input wire %d inside public prefix", wi)
		}
		if err := mark(wi, "secret input"); err != nil {
			return err
		}
	}
	p := &cs.Program
	if len(p.Levels) > 0 {
		if p.Levels[0] != 0 || int(p.Levels[len(p.Levels)-1]) != len(p.Instrs) {
			return fmt.Errorf("r1cs: program levels do not cover the tape")
		}
	} else if len(p.Instrs) > 0 {
		return fmt.Errorf("r1cs: program has instructions but no levels")
	}
	if len(p.Wires) != len(p.CoeffIdx) {
		return fmt.Errorf("r1cs: program has %d term wires but %d coeff indices", len(p.Wires), len(p.CoeffIdx))
	}
	for _, ci := range p.CoeffIdx {
		if int(ci) >= len(p.Dict) {
			return fmt.Errorf("r1cs: program coefficient index %d out of dictionary range [0,%d)", ci, len(p.Dict))
		}
	}
	checkSpan := func(off, end uint32) error {
		if off > end || int(end) > len(p.Wires) {
			return fmt.Errorf("r1cs: program LC span [%d,%d) out of pool range %d", off, end, len(p.Wires))
		}
		for k := off; k < end; k++ {
			if written[p.Wires[k]] == 0 {
				return fmt.Errorf("r1cs: program reads wire %d before it is written", p.Wires[k])
			}
		}
		return nil
	}
	for l := 0; l+1 < len(p.Levels); l++ {
		lo, hi := p.Levels[l], p.Levels[l+1]
		// Reads check against wires written strictly before this level,
		// then the level's outputs are marked — matching Solve's
		// parallel-within-level execution model.
		for k := lo; k < hi; k++ {
			in := &p.Instrs[k]
			if err := checkSpan(in.AOff, in.AEnd); err != nil {
				return err
			}
			if in.Op == OpMul {
				if err := checkSpan(in.BOff, in.BEnd); err != nil {
					return err
				}
			}
		}
		for k := lo; k < hi; k++ {
			in := &p.Instrs[k]
			if in.NOut == 0 {
				return fmt.Errorf("r1cs: instruction %d writes no wires", k)
			}
			for i := uint32(0); i < in.NOut; i++ {
				if err := mark(in.Out+i, "program output"); err != nil {
					return err
				}
			}
		}
	}
	for wi := 0; wi < cs.NbWires; wi++ {
		if written[wi] == 0 {
			return fmt.Errorf("r1cs: wire %d is neither an input nor computed by the program", wi)
		}
	}
	return nil
}

// Stats computes summary statistics.
func (cs *CompiledSystem) Stats() Stats {
	return Stats{
		NbConstraints: cs.NbConstraints(),
		NbWires:       cs.NbWires,
		NbPublic:      cs.NbPublic,
		NbPrivate:     cs.NbPrivate(),
		NbTerms:       len(cs.A.Wires) + len(cs.B.Wires) + len(cs.C.Wires),
	}
}

// ToSystem materializes the legacy eager representation (fresh slices;
// the compiled system is not aliased). It exists for the Finalize shim
// and for diagnostics — the Groth16 backend consumes CSR directly.
func (cs *CompiledSystem) ToSystem() *System {
	n := cs.NbConstraints()
	cons := make([]Constraint, n)
	row := func(m *Matrix, i int) LinearCombination {
		lo, hi := m.RowOffs[i], m.RowOffs[i+1]
		if lo == hi {
			return nil
		}
		lc := make(LinearCombination, hi-lo)
		for k := lo; k < hi; k++ {
			lc[k-lo] = Term{Wire: int(m.Wires[k]), Coeff: m.Dict[m.CoeffIdx[k]]}
		}
		return lc
	}
	for i := 0; i < n; i++ {
		cons[i] = Constraint{A: row(&cs.A, i), B: row(&cs.B, i), C: row(&cs.C, i)}
	}
	return &System{
		Constraints: cons,
		NbPublic:    cs.NbPublic,
		NbWires:     cs.NbWires,
		PublicNames: append([]string(nil), cs.PublicNames...),
	}
}

// StripForSolve returns a solver-only copy of the system: the solver
// program, input layout, and dimensions survive, but the CSR term
// arrays — the dominant resident cost at paper scale — are dropped.
// The three matrices share one all-zero row-offset slice so dimension
// queries (NbConstraints, Dims) still answer correctly; RowEval,
// IsSatisfied, and QAP accumulation see empty rows and MUST NOT be
// used on the copy. The engine caches stripped systems when the
// matrices live in a CompiledSystemFile, which then serves every
// constraint read. The digest is carried over (it is a structural
// property of the full system, precomputed here so the copy never
// needs the matrices).
func (cs *CompiledSystem) StripForSolve() *CompiledSystem {
	emptyOffs := make([]uint32, cs.NbConstraints()+1)
	empty := Matrix{RowOffs: emptyOffs}
	out := &CompiledSystem{
		A: empty, B: empty, C: empty,
		NbPublic:      cs.NbPublic,
		NbWires:       cs.NbWires,
		PublicNames:   cs.PublicNames,
		PubInputs:     cs.PubInputs,
		PubInputNames: cs.PubInputNames,
		SecretInputs:  cs.SecretInputs,
		Program:       cs.Program,
	}
	out.digest = cs.Digest()
	out.digestOnce.Do(func() {})
	out.stripped = true
	return out
}

// Stripped reports whether this system is a StripForSolve copy whose
// CSR matrices are placeholders — consumers needing real constraint
// rows must read them from a CompiledSystemFile instead.
func (cs *CompiledSystem) Stripped() bool { return cs.stripped }

// FromSystem compiles an eager System into CSR form with an empty
// solver program: every wire becomes an input (publics provided, then
// privates), so Solve degenerates to scattering a caller-supplied full
// assignment. It is the adapter for hand-built systems (tests, external
// tooling); circuits built through the frontend should use
// Builder.Compile, which records a real solver program.
func FromSystem(sys *System) (*CompiledSystem, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	cs := &CompiledSystem{
		NbPublic:    sys.NbPublic,
		NbWires:     sys.NbWires,
		PublicNames: append([]string(nil), sys.PublicNames...),
	}
	fill := func(sel func(*Constraint) LinearCombination) Matrix {
		n := len(sys.Constraints)
		offs := make([]uint32, n+1)
		total := 0
		for i := range sys.Constraints {
			total += len(sel(&sys.Constraints[i]))
			offs[i+1] = uint32(total)
		}
		ci := NewCoeffInterner()
		m := Matrix{RowOffs: offs, Wires: make([]uint32, total), CoeffIdx: make([]uint32, total)}
		k := 0
		for i := range sys.Constraints {
			for _, t := range sel(&sys.Constraints[i]) {
				m.Wires[k] = uint32(t.Wire)
				m.CoeffIdx[k] = ci.Intern(t.Coeff)
				k++
			}
		}
		m.Dict = ci.Dict()
		return m
	}
	cs.A = fill(func(c *Constraint) LinearCombination { return c.A })
	cs.B = fill(func(c *Constraint) LinearCombination { return c.B })
	cs.C = fill(func(c *Constraint) LinearCombination { return c.C })
	for w := 1; w < sys.NbPublic; w++ {
		cs.PubInputs = append(cs.PubInputs, uint32(w))
		name := ""
		if w < len(sys.PublicNames) {
			name = sys.PublicNames[w]
		}
		cs.PubInputNames = append(cs.PubInputNames, name)
	}
	for w := sys.NbPublic; w < sys.NbWires; w++ {
		cs.SecretInputs = append(cs.SecretInputs, uint32(w))
	}
	return cs, nil
}

// WitnessAssignment splits a full wire assignment into the Assignment a
// FromSystem-compiled circuit expects (the inverse of Solve for systems
// without a solver program).
func (cs *CompiledSystem) WitnessAssignment(witness []fr.Element) Assignment {
	asg := Assignment{
		Public: make([]fr.Element, len(cs.PubInputs)),
		Secret: make([]fr.Element, len(cs.SecretInputs)),
	}
	for i, wi := range cs.PubInputs {
		asg.Public[i] = witness[wi]
	}
	for i, wi := range cs.SecretInputs {
		asg.Secret[i] = witness[wi]
	}
	return asg
}
