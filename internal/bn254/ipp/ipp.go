// Package ipp implements the inner-pairing-product substrate for
// SnarkPack-style proof aggregation (Bünz–Maller–Mishra–Tyagi–Vesely
// GIPA / TIPP / MIPP, as instantiated by Gailly–Maller–Nitulescu):
// a two-trapdoor structured reference string over BN254, pairing-based
// commitments to G1/G2 vectors, and the Fiat–Shamir transcript the
// aggregator and verifier share.
//
// The SRS holds power tables for two independent trapdoors a and b.
// For an aggregation of size n (a power of two ≤ MaxN) the prover's
// commitment keys are slices of those tables:
//
//	v1[i] = h^{a^i}        v2[i] = h^{b^i}        (G2, i < n)
//	w1[i] = g^{a^{n+i}}    w2[i] = g^{b^{n+i}}    (G1, i < n)
//
// so one SRS serves every aggregation size up to MaxN. The verifier
// needs only the generators and the degree-one powers (VerifierKey);
// the folded commitment keys are checked with KZG openings against it.
package ipp

import (
	"errors"
	"fmt"
	"io"
	"math/bits"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/fr"
)

// SRS is the aggregator's structured reference string: power tables for
// two independent trapdoors. The trapdoors themselves are toxic waste,
// discarded by NewSRS.
type SRS struct {
	// MaxN is the largest supported aggregation size (a power of two).
	MaxN int
	// G1A[i] = g^{a^i} and G1B[i] = g^{b^i}, i < 2·MaxN. The upper half
	// provides the w commitment keys and the KZG basis for the degree
	// ≤ 2n-1 w-key polynomial.
	G1A, G1B []curve.G1Affine
	// G2A[i] = h^{a^i} and G2B[i] = h^{b^i}, i < MaxN.
	G2A, G2B []curve.G2Affine
	// VK is the verifier's share.
	VK VerifierKey
}

// VerifierKey is the constant-size verifier share of an SRS: the two
// degree-one powers per trapdoor. Generators are the curve's fixed
// G1/G2 generators.
type VerifierKey struct {
	// GA = g^a, GB = g^b (G1).
	GA, GB curve.G1Affine
	// HA = h^a, HB = h^b (G2).
	HA, HB curve.G2Affine
}

// NewSRS runs the aggregation trusted setup for sizes up to maxN
// (rounded up to a power of two, minimum 1). rng supplies the two
// trapdoors; they never leave this function.
func NewSRS(maxN int, rng io.Reader) (*SRS, error) {
	if maxN < 1 {
		return nil, errors.New("ipp: SRS size must be positive")
	}
	n := NextPow2(maxN)

	var a, b fr.Element
	if _, err := a.SetRandom(rng); err != nil {
		return nil, fmt.Errorf("ipp: drawing trapdoor: %w", err)
	}
	if _, err := b.SetRandom(rng); err != nil {
		return nil, fmt.Errorf("ipp: drawing trapdoor: %w", err)
	}
	if a.IsZero() || b.IsZero() || a.Equal(&b) {
		// Unreachable for a real entropy source; fail closed anyway.
		return nil, errors.New("ipp: degenerate trapdoors")
	}

	powersA := powerSeries(&a, 2*n)
	powersB := powerSeries(&b, 2*n)

	g1 := curve.G1Generator()
	g2 := curve.G2Generator()
	t1 := curve.NewG1FixedBaseTable(&g1)
	t2 := curve.NewG2FixedBaseTable(&g2)

	srs := &SRS{
		MaxN: n,
		G1A:  t1.MulBatch(powersA),
		G1B:  t1.MulBatch(powersB),
		G2A:  t2.MulBatch(powersA[:n]),
		G2B:  t2.MulBatch(powersB[:n]),
	}
	srs.VK = VerifierKey{
		GA: srs.G1A[1], GB: srs.G1B[1],
		HA: srs.G2A[1], HB: srs.G2B[1],
	}
	return srs, nil
}

// Keys returns the four commitment-key slices for an aggregation of
// size n (a power of two ≤ MaxN). The slices alias the SRS tables and
// must not be mutated.
func (s *SRS) Keys(n int) (v1, v2 []curve.G2Affine, w1, w2 []curve.G1Affine, err error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, nil, nil, nil, fmt.Errorf("ipp: aggregation size %d is not a power of two", n)
	}
	if n > s.MaxN {
		return nil, nil, nil, nil, fmt.Errorf("ipp: aggregation size %d exceeds SRS capacity %d", n, s.MaxN)
	}
	return s.G2A[:n], s.G2B[:n], s.G1A[n : 2*n], s.G1B[n : 2*n], nil
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// powerSeries returns [1, x, x², …, x^{k-1}].
func powerSeries(x *fr.Element, k int) []fr.Element {
	out := make([]fr.Element, k)
	out[0].SetOne()
	for i := 1; i < k; i++ {
		out[i].Mul(&out[i-1], x)
	}
	return out
}
