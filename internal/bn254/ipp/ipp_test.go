package ipp

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/pairing"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 9: 16, 255: 256, 256: 256, 257: 512}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSRSShape(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	srs, err := NewSRS(5, rng) // rounds up to 8
	if err != nil {
		t.Fatal(err)
	}
	if srs.MaxN != 8 {
		t.Fatalf("MaxN = %d, want 8", srs.MaxN)
	}
	if len(srs.G1A) != 16 || len(srs.G1B) != 16 || len(srs.G2A) != 8 || len(srs.G2B) != 8 {
		t.Fatalf("table sizes %d/%d/%d/%d", len(srs.G1A), len(srs.G1B), len(srs.G2A), len(srs.G2B))
	}
	g1 := curve.G1GeneratorAffine()
	g2 := curve.G2GeneratorAffine()
	if !srs.G1A[0].Equal(&g1) || !srs.G2A[0].Equal(&g2) {
		t.Fatal("power-zero table entries are not the generators")
	}
	// Consistency across groups: e(g^{a^i}, h) == e(g, h^{a^i}).
	for i := 1; i < 4; i++ {
		left := pairing.Pair(&srs.G1A[i], &g2)
		right := pairing.Pair(&g1, &srs.G2A[i])
		if !left.Equal(&right) {
			t.Fatalf("G1A/G2A diverge at power %d", i)
		}
	}
	// VK matches the degree-one powers.
	if !srs.VK.GA.Equal(&srs.G1A[1]) || !srs.VK.HB.Equal(&srs.G2B[1]) {
		t.Fatal("verifier key does not match SRS tables")
	}

	v1, v2, w1, w2, err := srs.Keys(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(v1) != 4 || len(v2) != 4 || len(w1) != 4 || len(w2) != 4 {
		t.Fatal("key slice sizes wrong")
	}
	if !w1[0].Equal(&srs.G1A[4]) {
		t.Fatal("w1 keys must start at power n")
	}
	if _, _, _, _, err := srs.Keys(3); err == nil {
		t.Fatal("non-power-of-two size accepted")
	}
	if _, _, _, _, err := srs.Keys(16); err == nil {
		t.Fatal("over-capacity size accepted")
	}
	if _, err := NewSRS(0, rng); err == nil {
		t.Fatal("zero-size SRS accepted")
	}
}

func TestPairProductMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	ps := make([]curve.G1Affine, n)
	qs := make([]curve.G2Affine, n)
	g1 := curve.G1Generator()
	g2 := curve.G2Generator()
	for i := range ps {
		var s fr.Element
		if _, err := s.SetRandom(rng); err != nil {
			t.Fatal(err)
		}
		var p curve.G1Jac
		p.ScalarMul(&g1, &s)
		ps[i].FromJacobian(&p)
		if _, err := s.SetRandom(rng); err != nil {
			t.Fatal(err)
		}
		var q curve.G2Jac
		q.ScalarMul(&g2, &s)
		qs[i].FromJacobian(&q)
	}
	got := PairProduct(ps, qs)
	var want = pairing.Pair(&ps[0], &qs[0])
	for i := 1; i < n; i++ {
		e := pairing.Pair(&ps[i], &qs[i])
		want.Mul(&want, &e)
	}
	if !got.Equal(&want) {
		t.Fatal("PairProduct disagrees with per-pair products")
	}
	got2 := PairProduct2(ps[:2], qs[:2], ps[2:], qs[2:])
	if !got2.Equal(&want) {
		t.Fatal("PairProduct2 disagrees with per-pair products")
	}
}

func TestTranscriptDeterminismAndBinding(t *testing.T) {
	run := func(mutate bool) fr.Element {
		tr := NewTranscript("test/label")
		tr.AppendUint32("n", 4)
		tr.AppendBytes("data", []byte("payload"))
		if mutate {
			tr.AppendBytes("data", []byte("payload2"))
		} else {
			tr.AppendBytes("data", []byte("payload2 "))
		}
		return tr.Challenge("x")
	}
	a, b := run(true), run(true)
	if !a.Equal(&b) {
		t.Fatal("transcript is not deterministic")
	}
	c := run(false)
	if a.Equal(&c) {
		t.Fatal("distinct transcripts collided")
	}
	// Chaining: a second challenge differs from the first.
	tr := NewTranscript("test/label")
	x := tr.Challenge("x")
	y := tr.Challenge("x")
	if x.Equal(&y) {
		t.Fatal("sequential challenges did not chain")
	}
	if x.IsZero() || y.IsZero() {
		t.Fatal("zero challenge emitted")
	}
}

func TestVerifierKeyWire(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	srs, err := NewSRS(2, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := srs.VK.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var dec VerifierKey
	if _, err := dec.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !dec.GA.Equal(&srs.VK.GA) || !dec.GB.Equal(&srs.VK.GB) ||
		!dec.HA.Equal(&srs.VK.HA) || !dec.HB.Equal(&srs.VK.HB) {
		t.Fatal("binary round trip lost a point")
	}
	// Corrupt magic.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[0] ^= 0xff
	if _, err := dec.ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// JSON envelope, including trailing-garbage rejection.
	js, err := json.Marshal(&srs.VK)
	if err != nil {
		t.Fatal(err)
	}
	var dec2 VerifierKey
	if err := json.Unmarshal(js, &dec2); err != nil {
		t.Fatal(err)
	}
	if !dec2.GA.Equal(&srs.VK.GA) {
		t.Fatal("JSON round trip lost a point")
	}
}
