package ipp

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"zkrownn/internal/bn254/curve"
)

// Binary framing for the SRS verifier key: a 4-byte magic, a format
// version, then the four compressed powers (GA, GB in G1; HA, HB in
// G2). The same versioned-base64 JSON envelope shape as the groth16
// wire types wraps it for API payloads.

var magicSRSVK = [4]byte{'Z', 'K', 'S', 'V'}

const srsFormatVersion = 1

// WriteTo serializes the verifier key.
func (vk *VerifierKey) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(magicSRSVK[:])
	binary.Write(&buf, binary.LittleEndian, uint32(srsFormatVersion))
	for _, p := range []*curve.G1Affine{&vk.GA, &vk.GB} {
		b := p.Bytes()
		buf.Write(b[:])
	}
	for _, p := range []*curve.G2Affine{&vk.HA, &vk.HB} {
		b := p.Bytes()
		buf.Write(b[:])
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadFrom deserializes a verifier key, validating curve and subgroup
// membership of every point.
func (vk *VerifierKey) ReadFrom(r io.Reader) (int64, error) {
	var head [8]byte
	n := int64(0)
	k, err := io.ReadFull(r, head[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	if [4]byte(head[:4]) != magicSRSVK {
		return n, fmt.Errorf("ipp: bad SRS verifier key magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != srsFormatVersion {
		return n, fmt.Errorf("ipp: unsupported SRS verifier key version %d", v)
	}
	for _, p := range []*curve.G1Affine{&vk.GA, &vk.GB} {
		var b [curve.G1CompressedSize]byte
		k, err := io.ReadFull(r, b[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
		if err := p.SetBytes(b[:]); err != nil {
			return n, fmt.Errorf("ipp: SRS verifier key: %w", err)
		}
	}
	for _, p := range []*curve.G2Affine{&vk.HA, &vk.HB} {
		var b [curve.G2CompressedSize]byte
		k, err := io.ReadFull(r, b[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
		if err := p.SetBytes(b[:]); err != nil {
			return n, fmt.Errorf("ipp: SRS verifier key: %w", err)
		}
	}
	return n, nil
}

type jsonEnvelope struct {
	Format int    `json:"format"`
	Data   string `json:"data"`
}

// MarshalJSON encodes the verifier key as a versioned base64 envelope
// of its binary encoding (the same envelope shape as the groth16 wire
// types).
func (vk *VerifierKey) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := vk.WriteTo(&buf); err != nil {
		return nil, err
	}
	return json.Marshal(jsonEnvelope{
		Format: srsFormatVersion,
		Data:   base64.StdEncoding.EncodeToString(buf.Bytes()),
	})
}

// UnmarshalJSON decodes a verifier key envelope with full point
// validation.
func (vk *VerifierKey) UnmarshalJSON(b []byte) error {
	var env jsonEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return fmt.Errorf("ipp: SRS verifier key envelope: %w", err)
	}
	if env.Format != srsFormatVersion {
		return fmt.Errorf("ipp: unsupported SRS verifier key envelope version %d", env.Format)
	}
	raw, err := base64.StdEncoding.DecodeString(env.Data)
	if err != nil {
		return fmt.Errorf("ipp: SRS verifier key envelope: %w", err)
	}
	r := bytes.NewReader(raw)
	if _, err := vk.ReadFrom(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("ipp: SRS verifier key envelope has %d trailing bytes", r.Len())
	}
	return nil
}
