package ipp

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fr"
)

// Transcript is the Fiat–Shamir transcript shared by the aggregation
// prover and verifier: a running SHA-256 absorbing every protocol
// message, squeezed for challenges. Each challenge chains the digest
// back into the state, so later challenges bind everything before them.
type Transcript struct {
	h hash.Hash
}

// NewTranscript starts a transcript under a domain-separation label.
func NewTranscript(label string) *Transcript {
	t := &Transcript{h: sha256.New()}
	t.append("ts", []byte(label))
	return t
}

// append absorbs a length-framed, labelled message. Framing (label
// length, label, payload length, payload) keeps distinct message
// sequences from colliding on concatenation.
func (t *Transcript) append(label string, b []byte) {
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[0:], uint32(len(label)))
	binary.BigEndian.PutUint32(frame[4:], uint32(len(b)))
	t.h.Write(frame[:])
	t.h.Write([]byte(label))
	t.h.Write(b)
}

// AppendBytes absorbs raw bytes under a label.
func (t *Transcript) AppendBytes(label string, b []byte) { t.append(label, b) }

// AppendUint32 absorbs a 32-bit integer.
func (t *Transcript) AppendUint32(label string, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	t.append(label, b[:])
}

// AppendG1 absorbs a compressed G1 point.
func (t *Transcript) AppendG1(label string, p *curve.G1Affine) {
	b := p.Bytes()
	t.append(label, b[:])
}

// AppendG2 absorbs a compressed G2 point.
func (t *Transcript) AppendG2(label string, p *curve.G2Affine) {
	b := p.Bytes()
	t.append(label, b[:])
}

// AppendGT absorbs a target-group element (raw twelve-coefficient form).
func (t *Transcript) AppendGT(label string, v *ext.E12) {
	b := v.Bytes()
	t.append(label, b[:])
}

// AppendFr absorbs a scalar.
func (t *Transcript) AppendFr(label string, v *fr.Element) {
	b := v.Bytes()
	t.append(label, b[:])
}

// Challenge squeezes a nonzero field element and chains it back into
// the transcript state.
func (t *Transcript) Challenge(label string) fr.Element {
	t.append("challenge", []byte(label))
	var x fr.Element
	for ctr := uint32(0); ; ctr++ {
		sum := t.h.Sum(nil)
		x.SetBytes(sum)
		if !x.IsZero() {
			t.append("chain", sum)
			return x
		}
		// Astronomically unlikely; perturb and retry deterministically.
		t.AppendUint32("retry", ctr)
	}
}
