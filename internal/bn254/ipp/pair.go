package ipp

import (
	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/pairing"
	"zkrownn/internal/par"
)

// millerProduct computes Π MillerLoop(ps[i], qs[i]) with the loops fanned
// out over the worker pool. The product is NOT reduced — callers share
// one final exponentiation across as many products as their equation
// multiplies together (FE is multiplicative).
func millerProduct(ps []curve.G1Affine, qs []curve.G2Affine) ext.E12 {
	if len(ps) != len(qs) {
		panic("ipp: mismatched pair counts")
	}
	fs := make([]ext.E12, len(ps))
	par.Each(len(ps), func(i int) {
		fs[i] = pairing.MillerLoop(&ps[i], &qs[i])
	})
	var acc ext.E12
	acc.SetOne()
	for i := range fs {
		acc.Mul(&acc, &fs[i])
	}
	return acc
}

// PairProduct computes Π e(ps[i], qs[i]) with one shared final
// exponentiation — the pairing commitment to a (G1, G2) vector pair.
func PairProduct(ps []curve.G1Affine, qs []curve.G2Affine) ext.E12 {
	ml := millerProduct(ps, qs)
	return pairing.FinalExponentiation(&ml)
}

// PairProduct2 computes Π e(p1[i], q1[i]) · Π e(p2[i], q2[i]) with one
// shared final exponentiation — the double-trapdoor commitment shape
// T = Π e(A_i, v_i) · Π e(w_i, B_i).
func PairProduct2(p1 []curve.G1Affine, q1 []curve.G2Affine, p2 []curve.G1Affine, q2 []curve.G2Affine) ext.E12 {
	ml1 := millerProduct(p1, q1)
	ml2 := millerProduct(p2, q2)
	ml1.Mul(&ml1, &ml2)
	return pairing.FinalExponentiation(&ml1)
}
