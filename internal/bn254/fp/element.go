// Package fp implements arithmetic in the BN254 base field F_p, where
//
//	p = 21888242871839275222246405745257275088696311157297823662689037894645226208583
//
// is the 254-bit prime underlying the alt_bn128 (BN128/BN254) pairing
// curve used by libsnark and therefore by the original ZKROWNN artifact.
//
// Elements are stored in Montgomery form as four 64-bit little-endian
// limbs. All derived constants (Montgomery R, R², -p⁻¹ mod 2⁶⁴) are
// computed at package init from the decimal modulus string rather than
// hard-coded, which keeps the implementation auditable.
package fp

import (
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Limbs is the number of 64-bit words in an element.
const Limbs = 4

// Bits is the size of the modulus in bits.
const Bits = 254

// Bytes is the size of a serialized element.
const Bytes = 32

// ModulusStr is the decimal representation of the field modulus.
const ModulusStr = "21888242871839275222246405745257275088696311157297823662689037894645226208583"

// Element is a field element in Montgomery form: the integer a is stored
// as a·R mod p with R = 2²⁵⁶. The zero value is the field's zero.
type Element [Limbs]uint64

var (
	qModulus big.Int // the modulus p
	q        [Limbs]uint64
	qInvNeg  uint64 // -p⁻¹ mod 2⁶⁴

	rSquare     Element // R² mod p (Montgomery form of R)
	rCube       Element // R³ mod p, converts binary-GCD inverses back to Montgomery form
	one         Element // Montgomery form of 1
	zero        Element
	qMinusOne   big.Int // p-1
	qMinusTwo   big.Int // p-2, inversion exponent
	sqrtExp     big.Int // (p+1)/4, square-root exponent (p ≡ 3 mod 4)
	qHalfPlus1  big.Int // (p+1)/2, used for lexicographic ordering
	negOne      Element
	twoInv      Element                               // 1/2
	qBig2       = new(big.Int).Lsh(big.NewInt(1), 64) // 2⁶⁴
	initialized bool
)

func init() {
	if _, ok := qModulus.SetString(ModulusStr, 10); !ok {
		panic("fp: invalid modulus string")
	}
	if qModulus.Bit(0) == 0 || qModulus.Bit(1) == 0 {
		panic("fp: modulus must be ≡ 3 mod 4")
	}
	fillLimbs(&qModulus, &q)

	// qInvNeg = -p⁻¹ mod 2⁶⁴.
	var pInv big.Int
	if pInv.ModInverse(&qModulus, qBig2) == nil {
		panic("fp: modulus not invertible mod 2⁶⁴")
	}
	pInv.Neg(&pInv).Mod(&pInv, qBig2)
	qInvNeg = pInv.Uint64()

	// R = 2²⁵⁶ mod p, R² mod p.
	r := new(big.Int).Lsh(big.NewInt(1), 256)
	r.Mod(r, &qModulus)
	r2 := new(big.Int).Mul(r, r)
	r2.Mod(r2, &qModulus)
	fillLimbs(r, (*[Limbs]uint64)(&one))
	fillLimbs(r2, (*[Limbs]uint64)(&rSquare))
	r3 := new(big.Int).Mul(r2, r)
	r3.Mod(r3, &qModulus)
	fillLimbs(r3, (*[Limbs]uint64)(&rCube))

	qMinusOne.Sub(&qModulus, big.NewInt(1))
	qMinusTwo.Sub(&qModulus, big.NewInt(2))
	sqrtExp.Add(&qModulus, big.NewInt(1))
	sqrtExp.Rsh(&sqrtExp, 2)
	qHalfPlus1.Add(&qModulus, big.NewInt(1))
	qHalfPlus1.Rsh(&qHalfPlus1, 1)

	negOne.Neg(&one)
	var two Element
	two.SetUint64(2)
	twoInv.Inverse(&two)
	initialized = true
}

// fillLimbs writes the little-endian 64-bit limbs of v (assumed < 2²⁵⁶)
// into out.
func fillLimbs(v *big.Int, out *[Limbs]uint64) {
	var tmp big.Int
	tmp.Set(v)
	mask := new(big.Int).SetUint64(^uint64(0))
	for i := 0; i < Limbs; i++ {
		var w big.Int
		w.And(&tmp, mask)
		out[i] = w.Uint64()
		tmp.Rsh(&tmp, 64)
	}
	if tmp.Sign() != 0 {
		panic("fp: value does not fit in 4 limbs")
	}
}

// Modulus returns a copy of the field modulus as a big.Int.
func Modulus() *big.Int { return new(big.Int).Set(&qModulus) }

// NewElement returns an element set to the given uint64 value.
func NewElement(v uint64) Element {
	var e Element
	e.SetUint64(v)
	return e
}

// SetZero sets z to 0 and returns z.
func (z *Element) SetZero() *Element { *z = zero; return z }

// SetOne sets z to 1 (Montgomery form) and returns z.
func (z *Element) SetOne() *Element { *z = one; return z }

// Set copies x into z and returns z.
func (z *Element) Set(x *Element) *Element { *z = *x; return z }

// SetUint64 sets z to v and returns z.
func (z *Element) SetUint64(v uint64) *Element {
	*z = Element{v}
	return z.toMont()
}

// SetInt64 sets z to v (which may be negative) and returns z.
func (z *Element) SetInt64(v int64) *Element {
	if v >= 0 {
		return z.SetUint64(uint64(v))
	}
	z.SetUint64(uint64(-v))
	return z.Neg(z)
}

// SetBigInt sets z to v mod p and returns z.
func (z *Element) SetBigInt(v *big.Int) *Element {
	var t big.Int
	t.Mod(v, &qModulus)
	var limbs [Limbs]uint64
	fillLimbs(&t, &limbs)
	*z = Element(limbs)
	return z.toMont()
}

// SetString sets z to the value of the decimal (or 0x-prefixed hex)
// string s, reduced mod p.
func (z *Element) SetString(s string) (*Element, error) {
	v, ok := new(big.Int).SetString(s, 0)
	if !ok {
		return nil, errors.New("fp: invalid number literal " + s)
	}
	return z.SetBigInt(v), nil
}

// MustSetString is SetString that panics on malformed input; intended for
// package-level constants.
func (z *Element) MustSetString(s string) *Element {
	e, err := z.SetString(s)
	if err != nil {
		panic(err)
	}
	return e
}

// BigInt writes the canonical (non-Montgomery) value of z into res and
// returns res.
func (z *Element) BigInt(res *big.Int) *big.Int {
	t := *z
	t.fromMont()
	res.SetUint64(0)
	for i := Limbs - 1; i >= 0; i-- {
		res.Lsh(res, 64)
		var w big.Int
		w.SetUint64(t[i])
		res.Or(res, &w)
	}
	return res
}

// ToBigInt returns the canonical value of z as a fresh big.Int.
func (z *Element) ToBigInt() *big.Int { return z.BigInt(new(big.Int)) }

// String returns the decimal representation of z.
func (z Element) String() string { return z.ToBigInt().String() }

// Format implements fmt.Formatter for %v/%s/%d.
func (z Element) Format(s fmt.State, verb rune) {
	fmt.Fprint(s, z.String())
}

// IsZero reports whether z == 0.
func (z *Element) IsZero() bool { return z[0]|z[1]|z[2]|z[3] == 0 }

// IsOne reports whether z == 1.
func (z *Element) IsOne() bool { return *z == one }

// Equal reports whether z == x.
func (z *Element) Equal(x *Element) bool { return *z == *x }

// smallerThanModulus reports whether z (raw limbs) < p.
func (z *Element) smallerThanModulus() bool {
	for i := Limbs - 1; i >= 0; i-- {
		if z[i] < q[i] {
			return true
		}
		if z[i] > q[i] {
			return false
		}
	}
	return false // equal
}

// Add sets z = x + y mod p and returns z.
func (z *Element) Add(x, y *Element) *Element {
	var carry uint64
	z[0], carry = bits.Add64(x[0], y[0], 0)
	z[1], carry = bits.Add64(x[1], y[1], carry)
	z[2], carry = bits.Add64(x[2], y[2], carry)
	z[3], _ = bits.Add64(x[3], y[3], carry)
	if !z.smallerThanModulus() {
		var b uint64
		z[0], b = bits.Sub64(z[0], q[0], 0)
		z[1], b = bits.Sub64(z[1], q[1], b)
		z[2], b = bits.Sub64(z[2], q[2], b)
		z[3], _ = bits.Sub64(z[3], q[3], b)
	}
	return z
}

// Double sets z = 2x mod p and returns z.
func (z *Element) Double(x *Element) *Element { return z.Add(x, x) }

// Sub sets z = x - y mod p and returns z.
func (z *Element) Sub(x, y *Element) *Element {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	if b != 0 {
		var c uint64
		z[0], c = bits.Add64(z[0], q[0], 0)
		z[1], c = bits.Add64(z[1], q[1], c)
		z[2], c = bits.Add64(z[2], q[2], c)
		z[3], _ = bits.Add64(z[3], q[3], c)
	}
	return z
}

// Neg sets z = -x mod p and returns z.
func (z *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	var b uint64
	z[0], b = bits.Sub64(q[0], x[0], 0)
	z[1], b = bits.Sub64(q[1], x[1], b)
	z[2], b = bits.Sub64(q[2], x[2], b)
	z[3], _ = bits.Sub64(q[3], x[3], b)
	return z
}

// toMont converts z (raw integer limbs) to Montgomery form in place.
func (z *Element) toMont() *Element { return z.Mul(z, &rSquare) }

// fromMont converts z from Montgomery form to raw integer limbs in place
// by multiplying with 1 (Montgomery product divides by R).
func (z *Element) fromMont() *Element {
	montOne := Element{1}
	return z.Mul(z, &montOne)
}

// Exp sets z = x^k mod p for a non-negative big.Int exponent and returns z.
func (z *Element) Exp(x *Element, k *big.Int) *Element {
	if k.Sign() < 0 {
		panic("fp: negative exponent")
	}
	var res Element
	res.SetOne()
	base := *x
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return z.Set(&res)
}

// Inverse sets z = 1/x mod p (or 0 when x == 0) and returns z.
//
// It runs the binary extended Euclidean algorithm on the raw Montgomery
// representative: for x storing a·R, the GCD yields (a·R)⁻¹ = a⁻¹·R⁻¹,
// and one Montgomery multiplication by R³ restores Montgomery form
// (a⁻¹·R). This is ~4× faster than the Fermat exponentiation
// (inverseExp, kept as the cross-check oracle) and inversions sit on hot
// paths: batch-invert flushes in the MSM, affine Miller-loop steps, and
// Jacobian-to-affine conversion.
func (z *Element) Inverse(x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	u := [Limbs]uint64(*x) // the raw representative a·R mod p, non-zero, < p
	v := q
	var x1, x2 Element
	x1 = Element{1} // plain integer accumulators mod p, not Montgomery
	// Invariants: x1·(a·R) ≡ u and x2·(a·R) ≡ v (mod p).
	for !limbsAreOne(&u) && !limbsAreOne(&v) {
		for u[0]&1 == 0 {
			limbsShiftRight1(&u, 0)
			halveModAccumulator(&x1)
		}
		for v[0]&1 == 0 {
			limbsShiftRight1(&v, 0)
			halveModAccumulator(&x2)
		}
		if limbsGeq(&u, &v) {
			limbsSub(&u, &v)
			x1.Sub(&x1, &x2)
		} else {
			limbsSub(&v, &u)
			x2.Sub(&x2, &x1)
		}
	}
	if limbsAreOne(&u) {
		*z = x1
	} else {
		*z = x2
	}
	// z now holds (a·R)⁻¹ = a⁻¹·R⁻¹ as a plain integer; Montgomery
	// multiplication by R³ yields a⁻¹·R⁻¹·R³·R⁻¹ = a⁻¹·R.
	return z.Mul(z, &rCube)
}

// inverseExp is the Fermat-exponentiation inverse, kept as the oracle
// the fast Inverse is property-tested against.
func inverseExp(z, x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	return z.Exp(x, &qMinusTwo)
}

// limbsAreOne reports whether a holds the integer 1.
func limbsAreOne(a *[Limbs]uint64) bool {
	return a[0] == 1 && a[1]|a[2]|a[3] == 0
}

// limbsGeq reports whether a >= b as integers.
func limbsGeq(a, b *[Limbs]uint64) bool {
	for i := Limbs - 1; i >= 0; i-- {
		if a[i] > b[i] {
			return true
		}
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// limbsSub sets a -= b (caller guarantees a >= b).
func limbsSub(a, b *[Limbs]uint64) {
	var bw uint64
	a[0], bw = bits.Sub64(a[0], b[0], 0)
	a[1], bw = bits.Sub64(a[1], b[1], bw)
	a[2], bw = bits.Sub64(a[2], b[2], bw)
	a[3], _ = bits.Sub64(a[3], b[3], bw)
}

// limbsShiftRight1 sets a = (a + hi·2²⁵⁶) >> 1.
func limbsShiftRight1(a *[Limbs]uint64, hi uint64) {
	a[0] = a[0]>>1 | a[1]<<63
	a[1] = a[1]>>1 | a[2]<<63
	a[2] = a[2]>>1 | a[3]<<63
	a[3] = a[3]>>1 | hi<<63
}

// halveModAccumulator sets x = x/2 mod p for the GCD's Bezout
// accumulators: even values shift, odd values first add p (the sum can
// carry past 2²⁵⁶, tracked in the shift's high bit).
func halveModAccumulator(x *Element) {
	if x[0]&1 == 0 {
		limbsShiftRight1((*[Limbs]uint64)(x), 0)
		return
	}
	var carry uint64
	x[0], carry = bits.Add64(x[0], q[0], 0)
	x[1], carry = bits.Add64(x[1], q[1], carry)
	x[2], carry = bits.Add64(x[2], q[2], carry)
	x[3], carry = bits.Add64(x[3], q[3], carry)
	limbsShiftRight1((*[Limbs]uint64)(x), carry)
}

// Halve sets z = z/2 mod p and returns z.
func (z *Element) Halve() *Element { return z.Mul(z, &twoInv) }

// Legendre returns the Legendre symbol of z: 1 if z is a non-zero square,
// -1 if it is a non-square, 0 if z == 0.
func (z *Element) Legendre() int {
	if z.IsZero() {
		return 0
	}
	var t Element
	t.Exp(z, new(big.Int).Rsh(&qMinusOne, 1))
	if t.IsOne() {
		return 1
	}
	return -1
}

// Sqrt sets z to a square root of x if one exists and returns z, or
// returns nil when x is a non-residue. Uses the p ≡ 3 mod 4 shortcut.
func (z *Element) Sqrt(x *Element) *Element {
	var cand Element
	cand.Exp(x, &sqrtExp)
	var check Element
	check.Square(&cand)
	if !check.Equal(x) {
		return nil
	}
	return z.Set(&cand)
}

// Select sets z = a if cond == 0, else z = b, and returns z.
func (z *Element) Select(cond int, a, b *Element) *Element {
	if cond == 0 {
		return z.Set(a)
	}
	return z.Set(b)
}

// Cmp compares the canonical values of z and x, returning -1, 0, or 1.
func (z *Element) Cmp(x *Element) int {
	a := *z
	b := *x
	a.fromMont()
	b.fromMont()
	for i := Limbs - 1; i >= 0; i-- {
		if a[i] < b[i] {
			return -1
		}
		if a[i] > b[i] {
			return 1
		}
	}
	return 0
}

// LexicographicallyLargest reports whether the canonical value of z is
// strictly greater than (p-1)/2. Used as the "sign" bit in compressed
// point encodings.
func (z *Element) LexicographicallyLargest() bool {
	v := z.ToBigInt()
	return v.Cmp(&qHalfPlus1) >= 0
}

// Bytes returns the canonical big-endian 32-byte encoding of z.
func (z *Element) Bytes() [Bytes]byte {
	var out [Bytes]byte
	t := *z
	t.fromMont()
	for i := 0; i < Limbs; i++ {
		w := t[i]
		for j := 0; j < 8; j++ {
			out[Bytes-1-(i*8+j)] = byte(w >> (8 * j))
		}
	}
	return out
}

// SetBytes sets z from a big-endian byte slice (interpreted mod p) and
// returns z.
func (z *Element) SetBytes(b []byte) *Element {
	var v big.Int
	v.SetBytes(b)
	return z.SetBigInt(&v)
}

// SetBytesCanonical sets z from exactly 32 big-endian bytes, requiring
// the value to be a canonical (< p) encoding.
func (z *Element) SetBytesCanonical(b []byte) error {
	if len(b) != Bytes {
		return errors.New("fp: invalid encoding length")
	}
	var v big.Int
	v.SetBytes(b)
	if v.Cmp(&qModulus) >= 0 {
		return errors.New("fp: encoding is not canonical")
	}
	z.SetBigInt(&v)
	return nil
}

// MulUint64 sets z = x * v mod p and returns z.
func (z *Element) MulUint64(x *Element, v uint64) *Element {
	var e Element
	e.SetUint64(v)
	return z.Mul(x, &e)
}

// BatchInvert computes the inverses of all elements in a using Montgomery's
// trick (a single field inversion plus 3(n-1) multiplications). Zero
// entries are mapped to zero.
func BatchInvert(a []Element) []Element {
	res := make([]Element, len(a))
	BatchInvertInto(a, res)
	return res
}

// BatchInvertInto is BatchInvert writing into caller-owned storage, so
// hot loops (the MSM's batch-affine bucket adder) can amortize one
// scratch buffer across many flushes. res must have len(a) entries; a
// and res may not alias. Zero entries map to zero.
func BatchInvertInto(a, res []Element) {
	if len(a) != len(res) {
		panic("fp: BatchInvertInto length mismatch")
	}
	if len(a) == 0 {
		return
	}
	var acc Element
	acc.SetOne()
	for i := range a {
		if a[i].IsZero() {
			res[i].SetZero()
			continue
		}
		res[i] = acc
		acc.Mul(&acc, &a[i])
	}
	var accInv Element
	accInv.Inverse(&acc)
	for i := len(a) - 1; i >= 0; i-- {
		if a[i].IsZero() {
			continue
		}
		res[i].Mul(&res[i], &accInv)
		accInv.Mul(&accInv, &a[i])
	}
}

// RegularLimbs returns the canonical (non-Montgomery) little-endian
// 64-bit limbs of z, as needed for windowed scalar recoding.
func (z *Element) RegularLimbs() [Limbs]uint64 {
	t := *z
	t.fromMont()
	return [Limbs]uint64(t)
}

// Bit returns bit i of the canonical value of z.
func (z *Element) Bit(i int) uint64 {
	l := z.RegularLimbs()
	if i < 0 || i >= Limbs*64 {
		return 0
	}
	return (l[i/64] >> (i % 64)) & 1
}
