//go:build amd64 && !purego

package fp

import "zkrownn/internal/cpu"

// supportAdx gates the hand-written MULX/ADX Montgomery kernels; when
// the CPU predates ADX+BMI2 every call falls back to the portable
// generic core. It is a variable rather than a constant so tests can
// exercise the fallback branch on modern hardware.
var supportAdx = cpu.X86HasADX

// MulBackend names the multiplication backend selected at startup:
// "adx" for the MULX/ADCX/ADOX assembly kernels, "generic" for the
// portable CIOS core (pre-ADX CPUs, non-amd64 targets, or any build
// with the purego tag).
func MulBackend() string {
	if supportAdx {
		return "adx"
	}
	return "generic"
}

// mul computes z = x·y mod p in Montgomery form (mul_amd64.s).
// Requires ADX+BMI2.
//
//go:noescape
func mul(z, x, y *Element)

// mulVec computes res[i] = a[i]·b[i] for i < n over contiguous element
// arrays (mul_amd64.s): one assembly call per vector instead of one
// CALL per element. res may alias a and/or b. Requires ADX+BMI2.
//
//go:noescape
func mulVec(res, a, b *Element, n uint64)

// Mul sets z = x·y mod p (Montgomery product) and returns z.
func (z *Element) Mul(x, y *Element) *Element {
	if supportAdx {
		mul(z, x, y)
		return z
	}
	mulGeneric(z, x, y)
	return z
}

// Square sets z = x² mod p and returns z. The assembly multiplier keeps
// every operand in registers, so squaring through mul(z, x, x) already
// beats a separate squaring kernel; the fallback uses the dedicated
// no-carry squareGeneric.
func (z *Element) Square(x *Element) *Element {
	if supportAdx {
		mul(z, x, x)
		return z
	}
	squareGeneric(z, x)
	return z
}

func mulVecBackend(dst, a, b []Element) {
	if supportAdx {
		mulVec(&dst[0], &a[0], &b[0], uint64(len(dst)))
		return
	}
	mulVecGeneric(dst, a, b)
}
