package fp

import (
	"math/big"
	"testing"
)

// mulBackendSeeds returns the boundary seed corpus shared by the fp and
// fr differential fuzz targets: zero, one, p−1 (largest canonical
// value), and fully saturated bytes (forces the SetBytes reduction and
// the conditional-subtract edge in every backend). Each seed is x||y as
// two 32-byte big-endian values.
func mulBackendSeeds(modulus *big.Int) [][]byte {
	one := make([]byte, 64)
	one[31], one[63] = 1, 1
	var pm1 big.Int
	pm1.Sub(modulus, big.NewInt(1))
	pm1Seed := make([]byte, 64)
	pm1.FillBytes(pm1Seed[:32])
	pm1.FillBytes(pm1Seed[32:])
	sat := make([]byte, 64)
	for i := range sat {
		sat[i] = 0xff
	}
	mixed := make([]byte, 64)
	pm1.FillBytes(mixed[:32])
	mixed[63] = 2
	return [][]byte{make([]byte, 64), one, pm1Seed, sat, mixed}
}

// FuzzFpMulBackends pins every multiplication backend to the portable
// generic CIOS core, bit for bit: the build's Mul/Square dispatch
// (assembly on amd64 with ADX, generic elsewhere), the in-place
// aliasing forms, and the vector kernel. On purego builds both sides
// run the generic core and the target degenerates to a self-check.
func FuzzFpMulBackends(f *testing.F) {
	for _, seed := range mulBackendSeeds(Modulus()) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 64 {
			return
		}
		var x, y Element
		x.SetBytes(data[:32])
		y.SetBytes(data[32:64])

		var got, want Element
		got.Mul(&x, &y)
		mulGeneric(&want, &x, &y)
		if got != want {
			t.Fatalf("Mul backend mismatch: %s·%s = %s, generic %s", x.String(), y.String(), got.String(), want.String())
		}

		var sq, sqWant Element
		sq.Square(&x)
		squareGeneric(&sqWant, &x)
		if sq != sqWant {
			t.Fatalf("Square backend mismatch: %s² = %s, generic %s", x.String(), sq.String(), sqWant.String())
		}

		// Aliased forms must agree with the out-of-place result.
		alias := x
		alias.Mul(&alias, &y)
		if alias != want {
			t.Fatalf("aliased Mul(z==x) mismatch: got %s, want %s", alias.String(), want.String())
		}
		alias = y
		alias.Mul(&x, &alias)
		if alias != want {
			t.Fatalf("aliased Mul(z==y) mismatch: got %s, want %s", alias.String(), want.String())
		}
		alias = x
		alias.Square(&alias)
		if alias != sqWant {
			t.Fatalf("aliased Square mismatch: got %s, want %s", alias.String(), sqWant.String())
		}

		// Vector kernel, including the dst==a in-place form.
		a := []Element{x, y, x, y}
		b := []Element{y, x, x, y}
		dst := make([]Element, len(a))
		MulVecInto(dst, a, b)
		for i := range dst {
			mulGeneric(&want, &a[i], &b[i])
			if dst[i] != want {
				t.Fatalf("MulVecInto[%d] mismatch: got %s, want %s", i, dst[i].String(), want.String())
			}
		}
		inPlace := append([]Element(nil), a...)
		MulVecInto(inPlace, inPlace, b)
		for i := range inPlace {
			if inPlace[i] != dst[i] {
				t.Fatalf("in-place MulVecInto[%d] mismatch", i)
			}
		}
	})
}
