//go:build amd64 && !purego

#include "textflag.h"
#include "funcdata.h"

// Montgomery multiplication in 4×64-bit limbs using MULX (BMI2) and the
// dual ADCX/ADOX carry chains (ADX) — the CIOS "no-carry" form, valid
// because the top limb of the modulus is below 2⁶². The Go wrappers
// only call in when the CPU supports ADX+BMI2.
//
// This file is byte-identical between internal/bn254/fp and
// internal/bn254/fr (TestGenericCoreLockstep enforces it): the modulus
// limbs and -q⁻¹ mod 2⁶⁴ are read from the enclosing package's Go
// variables ·q and ·qInvNeg, computed at init from the modulus string,
// so the same text assembles against either field.
//
// Register map shared by all macros:
//
//	DI, R8, R9, R10   x limbs (loaded per element)
//	R11               y pointer
//	R14, R13, CX, BX  running result t0..t3
//	BP                round overflow accumulator A
//	DX                MULX multiplier
//	AX, R12           scratch

// MONT_ROUND0: t = x·y[0], overflow accumulator in BP. One ADOX chain
// folds the low words into the assigned high words.
#define MONT_ROUND0 \
	XORQ  AX, AX;       \
	MOVQ  0(R11), DX;   \
	MULXQ DI, R14, R13; \
	MULXQ R8, AX, CX;   \
	ADOXQ AX, R13;      \
	MULXQ R9, AX, BX;   \
	ADOXQ AX, CX;       \
	MULXQ R10, AX, BP;  \
	ADOXQ AX, BX;       \
	MOVQ  $0, AX;       \
	ADOXQ AX, BP

// MONT_ROUND(off): t += x·y[off/8]. The ADOX chain adds low words into
// t, the ADCX chain adds the previous product's high word one limb up;
// both final carries fold into the new accumulator BP.
#define MONT_ROUND(off) \
	XORQ  AX, AX;      \
	MOVQ  off(R11), DX; \
	MULXQ DI, AX, BP;  \
	ADOXQ AX, R14;     \
	ADCXQ BP, R13;     \
	MULXQ R8, AX, BP;  \
	ADOXQ AX, R13;     \
	ADCXQ BP, CX;      \
	MULXQ R9, AX, BP;  \
	ADOXQ AX, CX;      \
	ADCXQ BP, BX;      \
	MULXQ R10, AX, BP; \
	ADOXQ AX, BX;      \
	MOVQ  $0, AX;      \
	ADCXQ AX, BP;      \
	ADOXQ AX, BP

// MONT_REDUCE_STEP: m = t0·qInvNeg; t = (t + m·q)/2⁶⁴, folding the
// round's overflow accumulator BP into the new top limb. The first
// ADCX materializes only the carry of t0 + lo(m·q0) (the low word is
// zero by construction of m).
#define MONT_REDUCE_STEP \
	MOVQ  ·qInvNeg(SB), DX;  \
	IMULQ R14, DX;           \
	XORQ  AX, AX;            \
	MULXQ ·q+0(SB), AX, R12;  \
	ADCXQ R14, AX;           \
	MOVQ  R12, R14;          \
	ADCXQ R13, R14;          \
	MULXQ ·q+8(SB), AX, R13;  \
	ADOXQ AX, R14;           \
	ADCXQ CX, R13;           \
	MULXQ ·q+16(SB), AX, CX;  \
	ADOXQ AX, R13;           \
	ADCXQ BX, CX;            \
	MULXQ ·q+24(SB), AX, BX;  \
	ADOXQ AX, CX;            \
	MOVQ  $0, AX;            \
	ADCXQ AX, BX;            \
	ADOXQ BP, BX

// MONT_MUL_BODY: full 4-round Montgomery product of (DI,R8,R9,R10) by
// the 4 limbs at (R11), conditionally subtracted result in
// R14,R13,CX,BX. Reuses DI,R8,R9,R10 as reduction scratch — the x limbs
// are dead after the last round.
#define MONT_MUL_BODY \
	MONT_ROUND0;         \
	MONT_REDUCE_STEP;    \
	MONT_ROUND(8);       \
	MONT_REDUCE_STEP;    \
	MONT_ROUND(16);      \
	MONT_REDUCE_STEP;    \
	MONT_ROUND(24);      \
	MONT_REDUCE_STEP;    \
	MOVQ  R14, DI;       \
	MOVQ  R13, R8;       \
	MOVQ  CX, R9;        \
	MOVQ  BX, R10;       \
	SUBQ  ·q+0(SB), R14;  \
	SBBQ  ·q+8(SB), R13;  \
	SBBQ  ·q+16(SB), CX;  \
	SBBQ  ·q+24(SB), BX;  \
	CMOVQCS DI, R14;     \
	CMOVQCS R8, R13;     \
	CMOVQCS R9, CX;      \
	CMOVQCS R10, BX

// func mul(z, x, y *Element)
//
// The 8-byte frame exists only so the assembler's prologue saves and
// restores BP, which the multiply body claims as the overflow
// accumulator.
TEXT ·mul(SB), NOSPLIT, $8-24
	NO_LOCAL_POINTERS
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), R11
	MOVQ 0(SI), DI
	MOVQ 8(SI), R8
	MOVQ 16(SI), R9
	MOVQ 24(SI), R10
	MONT_MUL_BODY
	MOVQ z+0(FP), AX
	MOVQ R14, 0(AX)
	MOVQ R13, 8(AX)
	MOVQ CX, 16(AX)
	MOVQ BX, 24(AX)
	RET

// func mulVec(res, a, b *Element, n uint64)
//
// Element-wise products over contiguous arrays. Every general register
// is claimed by the multiply body (R15 stays free for the
// dynamic-linking base register), so the loop counter decrements in its
// argument slot and the output cursor lives in a NO_LOCAL_POINTERS
// stack slot — it steps one past the final element, which a
// pointer-typed slot must never hold.
TEXT ·mulVec(SB), NOSPLIT, $16-32
	NO_LOCAL_POINTERS
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R11
	MOVQ res+0(FP), AX
	MOVQ AX, 0(SP)
	MOVQ n+24(FP), AX
	TESTQ AX, AX
	JZ   vecdone

vecloop:
	MOVQ 0(SI), DI
	MOVQ 8(SI), R8
	MOVQ 16(SI), R9
	MOVQ 24(SI), R10
	MONT_MUL_BODY
	MOVQ 0(SP), AX
	MOVQ R14, 0(AX)
	MOVQ R13, 8(AX)
	MOVQ CX, 16(AX)
	MOVQ BX, 24(AX)
	ADDQ $32, AX
	MOVQ AX, 0(SP)
	ADDQ $32, SI
	ADDQ $32, R11
	DECQ n+24(FP)
	JNZ  vecloop

vecdone:
	RET
