package fp

import (
	"bytes"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randElement returns a pseudo-random element for deterministic tests.
func randElement(rng *rand.Rand) Element {
	var v big.Int
	words := make([]byte, 40)
	rng.Read(words)
	v.SetBytes(words)
	var e Element
	e.SetBigInt(&v)
	return e
}

// Generate implements quick.Generator so testing/quick can draw random
// field elements.
func (Element) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randElement(rng))
}

func TestMontgomeryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		var v big.Int
		b := make([]byte, 48)
		rng.Read(b)
		v.SetBytes(b)
		v.Mod(&v, Modulus())
		var e Element
		e.SetBigInt(&v)
		got := e.ToBigInt()
		if got.Cmp(&v) != 0 {
			t.Fatalf("round trip failed: want %s got %s", v.String(), got.String())
		}
	}
}

func TestAddSubMulAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mod := Modulus()
	for i := 0; i < 2000; i++ {
		a := randElement(rng)
		b := randElement(rng)
		ab, bb := a.ToBigInt(), b.ToBigInt()

		var sum, diff, prod Element
		sum.Add(&a, &b)
		diff.Sub(&a, &b)
		prod.Mul(&a, &b)

		wantSum := new(big.Int).Add(ab, bb)
		wantSum.Mod(wantSum, mod)
		wantDiff := new(big.Int).Sub(ab, bb)
		wantDiff.Mod(wantDiff, mod)
		wantProd := new(big.Int).Mul(ab, bb)
		wantProd.Mod(wantProd, mod)

		if sum.ToBigInt().Cmp(wantSum) != 0 {
			t.Fatalf("add mismatch: %v + %v", ab, bb)
		}
		if diff.ToBigInt().Cmp(wantDiff) != 0 {
			t.Fatalf("sub mismatch: %v - %v", ab, bb)
		}
		if prod.ToBigInt().Cmp(wantProd) != 0 {
			t.Fatalf("mul mismatch: %v * %v", ab, bb)
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	commutative := func(a, b Element) bool {
		var ab, ba Element
		ab.Mul(&a, &b)
		ba.Mul(&b, &a)
		var s1, s2 Element
		s1.Add(&a, &b)
		s2.Add(&b, &a)
		return ab.Equal(&ba) && s1.Equal(&s2)
	}
	if err := quick.Check(commutative, cfg); err != nil {
		t.Error(err)
	}

	associative := func(a, b, c Element) bool {
		var l, r, t1, t2 Element
		t1.Mul(&a, &b)
		l.Mul(&t1, &c)
		t2.Mul(&b, &c)
		r.Mul(&a, &t2)
		return l.Equal(&r)
	}
	if err := quick.Check(associative, cfg); err != nil {
		t.Error(err)
	}

	distributive := func(a, b, c Element) bool {
		var l, r, t1, t2 Element
		t1.Add(&b, &c)
		l.Mul(&a, &t1)
		t1.Mul(&a, &b)
		t2.Mul(&a, &c)
		r.Add(&t1, &t2)
		return l.Equal(&r)
	}
	if err := quick.Check(distributive, cfg); err != nil {
		t.Error(err)
	}

	inverse := func(a Element) bool {
		if a.IsZero() {
			var inv Element
			inv.Inverse(&a)
			return inv.IsZero()
		}
		var inv, prod Element
		inv.Inverse(&a)
		prod.Mul(&a, &inv)
		return prod.IsOne()
	}
	if err := quick.Check(inverse, cfg); err != nil {
		t.Error(err)
	}

	negation := func(a Element) bool {
		var n, s Element
		n.Neg(&a)
		s.Add(&a, &n)
		return s.IsZero()
	}
	if err := quick.Check(negation, cfg); err != nil {
		t.Error(err)
	}
}

func TestIdentities(t *testing.T) {
	var z, o Element
	z.SetZero()
	o.SetOne()
	if !z.IsZero() || z.IsOne() {
		t.Fatal("zero misbehaves")
	}
	if !o.IsOne() || o.IsZero() {
		t.Fatal("one misbehaves")
	}
	a := MustRandom()
	var sum, prod Element
	sum.Add(&a, &z)
	prod.Mul(&a, &o)
	if !sum.Equal(&a) || !prod.Equal(&a) {
		t.Fatal("identity laws fail")
	}
	var zz Element
	zz.Mul(&a, &z)
	if !zz.IsZero() {
		t.Fatal("a*0 != 0")
	}
}

func TestSetInt64(t *testing.T) {
	var a Element
	a.SetInt64(-7)
	var b Element
	b.SetUint64(7)
	b.Neg(&b)
	if !a.Equal(&b) {
		t.Fatal("SetInt64(-7) != -SetUint64(7)")
	}
	a.SetInt64(42)
	if a.String() != "42" {
		t.Fatalf("SetInt64(42) = %s", a.String())
	}
}

func TestExp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mod := Modulus()
	for i := 0; i < 50; i++ {
		a := randElement(rng)
		k := new(big.Int).Rand(rng, mod)
		var got Element
		got.Exp(&a, k)
		want := new(big.Int).Exp(a.ToBigInt(), k, mod)
		if got.ToBigInt().Cmp(want) != 0 {
			t.Fatalf("exp mismatch at iteration %d", i)
		}
	}
	// x^0 == 1, x^1 == x.
	a := randElement(rng)
	var r Element
	r.Exp(&a, big.NewInt(0))
	if !r.IsOne() {
		t.Fatal("x^0 != 1")
	}
	r.Exp(&a, big.NewInt(1))
	if !r.Equal(&a) {
		t.Fatal("x^1 != x")
	}
}

func TestSqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	found := 0
	for i := 0; i < 100; i++ {
		a := randElement(rng)
		var sq Element
		sq.Square(&a)
		var rt Element
		if rt.Sqrt(&sq) == nil {
			t.Fatal("square reported as non-residue")
		}
		var chk Element
		chk.Square(&rt)
		if !chk.Equal(&sq) {
			t.Fatal("sqrt(x²)² != x²")
		}
		if a.Legendre() == -1 {
			found++
			var r Element
			if r.Sqrt(&a) != nil {
				t.Fatal("non-residue has square root")
			}
		}
	}
	if found == 0 {
		t.Fatal("no non-residues sampled; suspicious")
	}
}

func TestLegendre(t *testing.T) {
	var z Element
	if z.Legendre() != 0 {
		t.Fatal("Legendre(0) != 0")
	}
	a := MustRandom()
	var sq Element
	sq.Square(&a)
	if !a.IsZero() && sq.Legendre() != 1 {
		t.Fatal("Legendre(x²) != 1")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := randElement(rng)
		enc := a.Bytes()
		var b Element
		if err := b.SetBytesCanonical(enc[:]); err != nil {
			t.Fatal(err)
		}
		if !a.Equal(&b) {
			t.Fatal("bytes round trip failed")
		}
	}
	// Non-canonical encoding must be rejected.
	enc := Modulus().Bytes()
	pad := make([]byte, Bytes-len(enc))
	full := append(pad, enc...)
	var e Element
	if err := e.SetBytesCanonical(full); err == nil {
		t.Fatal("modulus accepted as canonical encoding")
	}
	if err := e.SetBytesCanonical([]byte{1, 2, 3}); err == nil {
		t.Fatal("short encoding accepted")
	}
}

func TestCmpAndLexicographicallyLargest(t *testing.T) {
	var a, b Element
	a.SetUint64(5)
	b.SetUint64(9)
	if a.Cmp(&b) != -1 || b.Cmp(&a) != 1 || a.Cmp(&a) != 0 {
		t.Fatal("Cmp misbehaves")
	}
	var small, large Element
	small.SetUint64(1)
	large.Neg(&small) // p-1, which is > (p-1)/2
	if small.LexicographicallyLargest() {
		t.Fatal("1 should not be lexicographically largest")
	}
	if !large.LexicographicallyLargest() {
		t.Fatal("p-1 should be lexicographically largest")
	}
}

func TestBatchInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := make([]Element, 33)
	for i := range in {
		if i%7 == 3 {
			in[i].SetZero()
			continue
		}
		in[i] = randElement(rng)
	}
	out := BatchInvert(in)
	for i := range in {
		if in[i].IsZero() {
			if !out[i].IsZero() {
				t.Fatal("inverse of zero not zero")
			}
			continue
		}
		var prod Element
		prod.Mul(&in[i], &out[i])
		if !prod.IsOne() {
			t.Fatalf("batch inverse wrong at %d", i)
		}
	}
	if got := BatchInvert(nil); len(got) != 0 {
		t.Fatal("BatchInvert(nil) should be empty")
	}
}

func TestBatchInvertInto(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	in := make([]Element, 50)
	for i := range in {
		if i%9 == 4 {
			continue // zero entry
		}
		in[i] = randElement(rng)
	}
	out := make([]Element, len(in))
	// Pre-fill with garbage: BatchInvertInto must fully overwrite.
	for i := range out {
		out[i] = randElement(rng)
	}
	BatchInvertInto(in, out)
	for i := range in {
		if in[i].IsZero() {
			if !out[i].IsZero() {
				t.Fatal("inverse of zero not zero")
			}
			continue
		}
		var prod Element
		prod.Mul(&in[i], &out[i])
		if !prod.IsOne() {
			t.Fatalf("batch inverse wrong at %d", i)
		}
	}
}

// TestInverseMatchesFermatOracle pins the binary-GCD Inverse against
// the exponentiation-by-(p-2) oracle, including structured values that
// stress the GCD's even/odd and comparison branches.
func TestInverseMatchesFermatOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	check := func(x *Element) {
		var want, got Element
		inverseExp(&want, x)
		got.Inverse(x)
		if !want.Equal(&got) {
			t.Fatalf("Inverse mismatch for %s", x.String())
		}
	}
	for i := 0; i < 500; i++ {
		x := randElement(rng)
		check(&x)
	}
	var x Element
	for _, v := range []uint64{0, 1, 2, 3, 4, 255, 1 << 63} {
		x.SetUint64(v)
		check(&x)
		x.Neg(&x) // p - v
		check(&x)
	}
	x.SetOne()
	for i := 0; i < 254; i++ { // all powers of two in the field
		check(&x)
		x.Double(&x)
	}
}

func TestHalve(t *testing.T) {
	a := MustRandom()
	h := a
	h.Halve()
	var back Element
	back.Double(&h)
	if !back.Equal(&a) {
		t.Fatal("2*(x/2) != x")
	}
}

func TestStringAndFormat(t *testing.T) {
	var a Element
	a.SetUint64(123456789)
	if a.String() != "123456789" {
		t.Fatalf("String() = %q", a.String())
	}
	var buf bytes.Buffer
	if _, err := buf.WriteString(a.String()); err != nil {
		t.Fatal(err)
	}
}

func TestSetString(t *testing.T) {
	var a Element
	if _, err := a.SetString("12345"); err != nil {
		t.Fatal(err)
	}
	if a.String() != "12345" {
		t.Fatal("decimal parse failed")
	}
	if _, err := a.SetString("0xff"); err != nil {
		t.Fatal(err)
	}
	if a.String() != "255" {
		t.Fatal("hex parse failed")
	}
	if _, err := a.SetString("not-a-number"); err == nil {
		t.Fatal("garbage accepted")
	}
}
