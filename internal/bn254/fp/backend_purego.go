//go:build !amd64 || purego

package fp

// MulBackend names the multiplication backend selected at startup; on
// this build it is always the portable generic core.
func MulBackend() string { return "generic" }

// Mul sets z = x·y mod p (Montgomery product) and returns z.
func (z *Element) Mul(x, y *Element) *Element {
	mulGeneric(z, x, y)
	return z
}

// Square sets z = x² mod p with the dedicated no-carry squaring and
// returns z.
func (z *Element) Square(x *Element) *Element {
	squareGeneric(z, x)
	return z
}

func mulVecBackend(dst, a, b []Element) { mulVecGeneric(dst, a, b) }
