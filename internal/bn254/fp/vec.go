package fp

// Slice-level kernels. On amd64 with ADX these dispatch to a single
// assembly call per vector; elsewhere they loop the generic core.

// MulVecInto sets dst[i] = a[i]·b[i] for every i. All three slices must
// have the same length; dst may alias a and/or b element-wise.
func MulVecInto(dst, a, b []Element) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic("fp.MulVecInto: length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	mulVecBackend(dst, a, b)
}

// Butterfly sets (a, b) = (a+b, a−b) in place — the radix-2 building
// block shared by the tower arithmetic and the FFTs.
func Butterfly(a, b *Element) {
	t := *a
	a.Add(a, b)
	b.Sub(&t, b)
}
