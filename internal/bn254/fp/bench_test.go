package fp

import "testing"

func BenchmarkMul(b *testing.B) {
	x := MustRandom()
	y := MustRandom()
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Mul(&x, &y)
	}
	_ = z
}

func BenchmarkSquare(b *testing.B) {
	x := MustRandom()
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Square(&x)
	}
	_ = z
}

func BenchmarkAdd(b *testing.B) {
	x := MustRandom()
	y := MustRandom()
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Add(&x, &y)
	}
	_ = z
}

func BenchmarkInverse(b *testing.B) {
	x := MustRandom()
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Inverse(&x)
	}
	_ = z
}

func BenchmarkBatchInvert1024(b *testing.B) {
	in := make([]Element, 1024)
	for i := range in {
		in[i] = MustRandom()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BatchInvert(in)
	}
}
