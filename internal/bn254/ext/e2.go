// Package ext implements the BN254 extension-field tower used by the
// optimal ate pairing:
//
//	F_p²  = F_p[u]  / (u² + 1)
//	F_p⁶  = F_p²[v] / (v³ - ξ),  ξ = 9 + u
//	F_p¹² = F_p⁶[w] / (w² - v)
//
// Frobenius coefficients are derived at package init from ξ and p rather
// than hard-coded, keeping the tower self-verifying.
package ext

import (
	"math/big"

	"zkrownn/internal/bn254/fp"
)

// E2 is an element a0 + a1·u of F_p² with u² = -1.
type E2 struct {
	A0, A1 fp.Element
}

// xiA0, xiA1 define the sextic non-residue ξ = 9 + u.
const (
	xiA0 = 9
	xiA1 = 1
)

// Xi returns the non-residue ξ = 9 + u used to define F_p⁶.
func Xi() E2 {
	var xi E2
	xi.A0.SetUint64(xiA0)
	xi.A1.SetUint64(xiA1)
	return xi
}

// SetZero sets z to 0 and returns z.
func (z *E2) SetZero() *E2 {
	z.A0.SetZero()
	z.A1.SetZero()
	return z
}

// SetOne sets z to 1 and returns z.
func (z *E2) SetOne() *E2 {
	z.A0.SetOne()
	z.A1.SetZero()
	return z
}

// Set copies x into z and returns z.
func (z *E2) Set(x *E2) *E2 { *z = *x; return z }

// SetUint64 sets z to the base-field value v.
func (z *E2) SetUint64(v uint64) *E2 {
	z.A0.SetUint64(v)
	z.A1.SetZero()
	return z
}

// IsZero reports whether z == 0.
func (z *E2) IsZero() bool { return z.A0.IsZero() && z.A1.IsZero() }

// IsOne reports whether z == 1.
func (z *E2) IsOne() bool { return z.A0.IsOne() && z.A1.IsZero() }

// Equal reports whether z == x.
func (z *E2) Equal(x *E2) bool { return z.A0.Equal(&x.A0) && z.A1.Equal(&x.A1) }

// String renders z as "a0+a1*u".
func (z *E2) String() string { return z.A0.String() + "+" + z.A1.String() + "*u" }

// Add sets z = x + y and returns z.
func (z *E2) Add(x, y *E2) *E2 {
	z.A0.Add(&x.A0, &y.A0)
	z.A1.Add(&x.A1, &y.A1)
	return z
}

// Sub sets z = x - y and returns z.
func (z *E2) Sub(x, y *E2) *E2 {
	z.A0.Sub(&x.A0, &y.A0)
	z.A1.Sub(&x.A1, &y.A1)
	return z
}

// Double sets z = 2x and returns z.
func (z *E2) Double(x *E2) *E2 {
	z.A0.Double(&x.A0)
	z.A1.Double(&x.A1)
	return z
}

// Neg sets z = -x and returns z.
func (z *E2) Neg(x *E2) *E2 {
	z.A0.Neg(&x.A0)
	z.A1.Neg(&x.A1)
	return z
}

// Conjugate sets z = a0 - a1·u and returns z.
func (z *E2) Conjugate(x *E2) *E2 {
	z.A0.Set(&x.A0)
	z.A1.Neg(&x.A1)
	return z
}

// Mul sets z = x·y and returns z, using the schoolbook/Karatsuba mix:
// (a0+a1u)(b0+b1u) = (a0b0 - a1b1) + ((a0+a1)(b0+b1) - a0b0 - a1b1)u.
func (z *E2) Mul(x, y *E2) *E2 {
	var t0, t1, s0, s1, r0 fp.Element
	t0.Mul(&x.A0, &y.A0)
	t1.Mul(&x.A1, &y.A1)
	s0.Add(&x.A0, &x.A1)
	s1.Add(&y.A0, &y.A1)
	r0.Sub(&t0, &t1)
	s0.Mul(&s0, &s1)
	s0.Sub(&s0, &t0)
	z.A1.Sub(&s0, &t1)
	z.A0.Set(&r0)
	return z
}

// Square sets z = x² and returns z:
// (a0+a1u)² = (a0+a1)(a0-a1) + 2a0a1·u.
func (z *E2) Square(x *E2) *E2 {
	sum, diff := x.A0, x.A1
	fp.Butterfly(&sum, &diff) // (a0+a1, a0-a1)
	var prod fp.Element
	prod.Mul(&x.A0, &x.A1)
	z.A0.Mul(&sum, &diff)
	z.A1.Double(&prod)
	return z
}

// MulByElement sets z = x scaled by the base-field element c.
func (z *E2) MulByElement(x *E2, c *fp.Element) *E2 {
	z.A0.Mul(&x.A0, c)
	z.A1.Mul(&x.A1, c)
	return z
}

// MulByNonResidue sets z = x·ξ with ξ = 9+u:
// (a0+a1u)(9+u) = (9a0 - a1) + (a0 + 9a1)u.
// 9a = 8a + a costs three doublings and an add — much cheaper than a
// Montgomery product by the constant 9 (this runs once per pairing
// doubling step and throughout the Frobenius tower).
func (z *E2) MulByNonResidue(x *E2) *E2 {
	var t0, t1 fp.Element
	nineTimes := func(dst, a *fp.Element) {
		dst.Double(a)
		dst.Double(dst)
		dst.Double(dst)
		dst.Add(dst, a)
	}
	nineTimes(&t0, &x.A0)
	t0.Sub(&t0, &x.A1)
	nineTimes(&t1, &x.A1)
	t1.Add(&t1, &x.A0)
	z.A0.Set(&t0)
	z.A1.Set(&t1)
	return z
}

// Norm returns a0² + a1², the norm of z over F_p.
func (z *E2) Norm(res *fp.Element) *fp.Element {
	var t0, t1 fp.Element
	t0.Square(&z.A0)
	t1.Square(&z.A1)
	res.Add(&t0, &t1)
	return res
}

// Inverse sets z = 1/x (or 0 for x == 0) using the conjugate/norm
// identity, and returns z.
func (z *E2) Inverse(x *E2) *E2 {
	var norm, normInv fp.Element
	x.Norm(&norm)
	normInv.Inverse(&norm)
	z.A0.Mul(&x.A0, &normInv)
	var t fp.Element
	t.Mul(&x.A1, &normInv)
	z.A1.Neg(&t)
	return z
}

// Exp sets z = x^k for a non-negative exponent and returns z.
func (z *E2) Exp(x *E2, k *big.Int) *E2 {
	if k.Sign() < 0 {
		panic("ext: negative exponent")
	}
	var res E2
	res.SetOne()
	base := *x
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return z.Set(&res)
}

// Sqrt sets z to a square root of x, if one exists, and returns z; it
// returns nil when x is a non-residue in F_p². Used only for
// deterministic G2 generator derivation, so clarity beats speed: it uses
// the norm-descent method via base-field square roots.
func (z *E2) Sqrt(x *E2) *E2 {
	if x.IsZero() {
		return z.SetZero()
	}
	if x.A1.IsZero() {
		// Purely real: either sqrt(a0) in F_p, or sqrt(-a0)·u.
		var r fp.Element
		if r.Sqrt(&x.A0) != nil {
			z.A0.Set(&r)
			z.A1.SetZero()
			return z
		}
		var na fp.Element
		na.Neg(&x.A0)
		if r.Sqrt(&na) == nil {
			return nil
		}
		z.A0.SetZero()
		z.A1.Set(&r)
		return z
	}
	// General case: for candidate c = c0 + c1 u with c² = x we need
	// c0² - c1² = a0 and 2 c0 c1 = a1. Let n = sqrt(a0² + a1²) (the norm
	// of x must be a square for x to be a square). Then c0² = (a0+n)/2
	// (or (a0-n)/2) and c1 = a1 / (2 c0).
	var norm, n fp.Element
	x.Norm(&norm)
	if n.Sqrt(&norm) == nil {
		return nil
	}
	var half, c0sq, c0 fp.Element
	half.SetUint64(2)
	half.Inverse(&half)
	c0sq.Add(&x.A0, &n)
	c0sq.Mul(&c0sq, &half)
	if c0.Sqrt(&c0sq) == nil {
		c0sq.Sub(&x.A0, &n)
		c0sq.Mul(&c0sq, &half)
		if c0.Sqrt(&c0sq) == nil {
			return nil
		}
	}
	var twoC0Inv, c1 fp.Element
	twoC0Inv.Double(&c0)
	twoC0Inv.Inverse(&twoC0Inv)
	c1.Mul(&x.A1, &twoC0Inv)
	z.A0.Set(&c0)
	z.A1.Set(&c1)
	// Validate (guards against c0 == 0 edge cases).
	var chk E2
	chk.Square(z)
	if !chk.Equal(x) {
		return nil
	}
	return z
}

// Select sets z = a if cond == 0, else b, and returns z.
func (z *E2) Select(cond int, a, b *E2) *E2 {
	if cond == 0 {
		return z.Set(a)
	}
	return z.Set(b)
}

// LexicographicallyLargest reports whether z is "positive": compare A1
// first, then A0, against the half-field boundary. Used for G2 point
// compression.
func (z *E2) LexicographicallyLargest() bool {
	if !z.A1.IsZero() {
		return z.A1.LexicographicallyLargest()
	}
	return z.A0.LexicographicallyLargest()
}

// BatchInvertE2 inverts a slice of F_p² elements with Montgomery's trick.
// Zero entries map to zero.
func BatchInvertE2(a []E2) []E2 {
	res := make([]E2, len(a))
	BatchInvertE2Into(a, res)
	return res
}

// BatchInvertE2Into is BatchInvertE2 writing into caller-owned storage
// (the G2 batch-affine bucket adder reuses one scratch buffer across
// flushes). res must have len(a) entries; a and res may not alias.
func BatchInvertE2Into(a, res []E2) {
	if len(a) != len(res) {
		panic("ext: BatchInvertE2Into length mismatch")
	}
	if len(a) == 0 {
		return
	}
	var acc E2
	acc.SetOne()
	for i := range a {
		if a[i].IsZero() {
			res[i].SetZero()
			continue
		}
		res[i] = acc
		acc.Mul(&acc, &a[i])
	}
	var accInv E2
	accInv.Inverse(&acc)
	for i := len(a) - 1; i >= 0; i-- {
		if a[i].IsZero() {
			continue
		}
		res[i].Mul(&res[i], &accInv)
		accInv.Mul(&accInv, &a[i])
	}
}
