package ext

import (
	"fmt"

	"zkrownn/internal/bn254/fp"
)

// E12Bytes is the size of the raw E12 encoding: the twelve base-field
// coefficients in canonical big-endian form, tower order
// C0.B0.A0 … C1.B2.A1.
const E12Bytes = 12 * fp.Bytes

// Bytes returns the canonical raw encoding of z. Target-group elements
// have no compressed form — aggregation transcripts and wire envelopes
// carry all twelve coefficients.
func (z *E12) Bytes() [E12Bytes]byte {
	var out [E12Bytes]byte
	coeffs := z.coeffs()
	for i, c := range coeffs {
		b := c.Bytes()
		copy(out[i*fp.Bytes:], b[:])
	}
	return out
}

// SetBytesCanonical sets z from exactly E12Bytes bytes, requiring every
// coefficient to be a canonical (fully reduced) field encoding.
func (z *E12) SetBytesCanonical(b []byte) error {
	if len(b) != E12Bytes {
		return fmt.Errorf("ext: E12 encoding must be %d bytes, got %d", E12Bytes, len(b))
	}
	coeffs := z.coeffs()
	for i, c := range coeffs {
		if err := c.SetBytesCanonical(b[i*fp.Bytes : (i+1)*fp.Bytes]); err != nil {
			return fmt.Errorf("ext: E12 coefficient %d: %w", i, err)
		}
	}
	return nil
}

// coeffs lists the twelve base-field coefficients in encoding order.
func (z *E12) coeffs() [12]*fp.Element {
	return [12]*fp.Element{
		&z.C0.B0.A0, &z.C0.B0.A1, &z.C0.B1.A0, &z.C0.B1.A1, &z.C0.B2.A0, &z.C0.B2.A1,
		&z.C1.B0.A0, &z.C1.B0.A1, &z.C1.B1.A0, &z.C1.B1.A1, &z.C1.B2.A0, &z.C1.B2.A1,
	}
}
