package ext

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"zkrownn/internal/bn254/fp"
)

func randE2(rng *rand.Rand) E2 {
	var e E2
	b := make([]byte, 40)
	rng.Read(b)
	e.A0.SetBigInt(new(big.Int).SetBytes(b))
	rng.Read(b)
	e.A1.SetBigInt(new(big.Int).SetBytes(b))
	return e
}

func randE6(rng *rand.Rand) E6 {
	return E6{B0: randE2(rng), B1: randE2(rng), B2: randE2(rng)}
}

func randE12(rng *rand.Rand) E12 {
	return E12{C0: randE6(rng), C1: randE6(rng)}
}

func (E2) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randE2(rng))
}

func (E12) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randE12(rng))
}

func TestE2FieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(a, b, c E2) bool {
		var l, r, t1, t2 E2
		t1.Mul(&a, &b)
		l.Mul(&t1, &c)
		t2.Mul(&b, &c)
		r.Mul(&a, &t2)
		if !l.Equal(&r) {
			return false
		}
		t1.Add(&b, &c)
		l.Mul(&a, &t1)
		t1.Mul(&a, &b)
		t2.Mul(&a, &c)
		r.Add(&t1, &t2)
		return l.Equal(&r)
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a E2) bool {
		if a.IsZero() {
			return true
		}
		var inv, prod E2
		inv.Inverse(&a)
		prod.Mul(&a, &inv)
		return prod.IsOne()
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a E2) bool {
		var sq, mm E2
		sq.Square(&a)
		mm.Mul(&a, &a)
		return sq.Equal(&mm)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestE2USquaredIsMinusOne(t *testing.T) {
	var u E2
	u.A1.SetOne()
	var sq E2
	sq.Square(&u)
	var minusOne E2
	minusOne.SetOne()
	minusOne.Neg(&minusOne)
	if !sq.Equal(&minusOne) {
		t.Fatal("u² != -1")
	}
}

func TestE2MulByNonResidue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xi := Xi()
	for i := 0; i < 100; i++ {
		a := randE2(rng)
		var viaMul, viaFunc E2
		viaMul.Mul(&a, &xi)
		viaFunc.MulByNonResidue(&a)
		if !viaMul.Equal(&viaFunc) {
			t.Fatal("MulByNonResidue != Mul(ξ)")
		}
	}
}

func TestE2Conjugate(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randE2(rng)
	var c E2
	c.Conjugate(&a)
	// a * conj(a) must be the norm, a pure F_p element.
	var prod E2
	prod.Mul(&a, &c)
	if !prod.A1.IsZero() {
		t.Fatal("a·conj(a) not in F_p")
	}
	var norm fp.Element
	a.Norm(&norm)
	if !prod.A0.Equal(&norm) {
		t.Fatal("a·conj(a) != Norm(a)")
	}
}

func TestE2Sqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		a := randE2(rng)
		var sq E2
		sq.Square(&a)
		var rt E2
		if rt.Sqrt(&sq) == nil {
			t.Fatal("square reported as non-residue")
		}
		var chk E2
		chk.Square(&rt)
		if !chk.Equal(&sq) {
			t.Fatal("sqrt round trip failed")
		}
	}
	// ξ must be a non-square in F_p² (it is a sextic non-residue).
	xi := Xi()
	var rt E2
	if rt.Sqrt(&xi) != nil {
		t.Fatal("ξ unexpectedly a square; tower unsound")
	}
}

func TestE6TowerRelation(t *testing.T) {
	// v³ must equal ξ.
	var v E6
	v.B1.SetOne()
	var v3 E6
	v3.Mul(&v, &v)
	v3.Mul(&v3, &v)
	xi := Xi()
	if !v3.B0.Equal(&xi) || !v3.B1.IsZero() || !v3.B2.IsZero() {
		t.Fatal("v³ != ξ")
	}
}

func TestE6MulInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 50; i++ {
		a := randE6(rng)
		if a.IsZero() {
			continue
		}
		var inv, prod E6
		inv.Inverse(&a)
		prod.Mul(&a, &inv)
		if !prod.IsOne() {
			t.Fatal("E6 inverse failed")
		}
	}
}

func TestE6MulByNonResidue(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var v E6
	v.B1.SetOne()
	for i := 0; i < 50; i++ {
		a := randE6(rng)
		var viaMul, viaFunc E6
		viaMul.Mul(&a, &v)
		viaFunc.MulByNonResidue(&a)
		if !viaMul.Equal(&viaFunc) {
			t.Fatal("E6 MulByNonResidue != Mul(v)")
		}
	}
}

func TestE12TowerRelation(t *testing.T) {
	// w² must equal v.
	var w E12
	w.C1.B0.SetOne()
	var w2 E12
	w2.Square(&w)
	var v E6
	v.B1.SetOne()
	if !w2.C0.Equal(&v) || !w2.C1.IsZero() {
		t.Fatal("w² != v")
	}
}

func TestE12MulInverseSquare(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(a E12) bool {
		if a.IsZero() {
			return true
		}
		var inv, prod E12
		inv.Inverse(&a)
		prod.Mul(&a, &inv)
		if !prod.IsOne() {
			return false
		}
		var sq, mm E12
		sq.Square(&a)
		mm.Mul(&a, &a)
		return sq.Equal(&mm)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestFrobeniusIsPthPower(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	p := fp.Modulus()
	for i := 0; i < 5; i++ {
		a := randE12(rng)
		var frob, pow E12
		frob.Frobenius(&a)
		pow.Exp(&a, p)
		if !frob.Equal(&pow) {
			t.Fatal("Frobenius != x^p")
		}
	}
}

func TestFrobeniusSquareIsP2Power(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := fp.Modulus()
	p2 := new(big.Int).Mul(p, p)
	for i := 0; i < 3; i++ {
		a := randE12(rng)
		var frob2, pow E12
		frob2.FrobeniusSquare(&a)
		pow.Exp(&a, p2)
		if !frob2.Equal(&pow) {
			t.Fatal("FrobeniusSquare != x^(p²)")
		}
	}
	// Composition check: Frobenius∘Frobenius == FrobeniusSquare.
	a := randE12(rng)
	var f1, f2, fs E12
	f1.Frobenius(&a)
	f2.Frobenius(&f1)
	fs.FrobeniusSquare(&a)
	if !f2.Equal(&fs) {
		t.Fatal("Frobenius² != FrobeniusSquare")
	}
}

func TestE12ConjugateIsP6Power(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randE12(rng)
	// x^(p⁶) should equal Conjugate(x): apply FrobeniusSquare three times.
	var f E12
	f.FrobeniusSquare(&a)
	f.FrobeniusSquare(&f)
	f.FrobeniusSquare(&f)
	var c E12
	c.Conjugate(&a)
	if !f.Equal(&c) {
		t.Fatal("x^(p⁶) != Conjugate(x)")
	}
}

func TestMulBy034MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 20; i++ {
		f := randE12(rng)
		c0 := randE2(rng)
		c3 := randE2(rng)
		c4 := randE2(rng)
		var line E12
		line.C0.B0.Set(&c0)
		line.C1.B0.Set(&c3)
		line.C1.B1.Set(&c4)
		var dense E12
		dense.Mul(&f, &line)
		sparse := f
		sparse.MulBy034(&c0, &c3, &c4)
		if !dense.Equal(&sparse) {
			t.Fatal("MulBy034 mismatch")
		}
	}
}

func TestBatchInvertE2(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	in := make([]E2, 17)
	for i := range in {
		if i == 5 {
			continue // leave a zero
		}
		in[i] = randE2(rng)
	}
	out := BatchInvertE2(in)
	for i := range in {
		if in[i].IsZero() {
			if !out[i].IsZero() {
				t.Fatal("zero inverse not zero")
			}
			continue
		}
		var prod E2
		prod.Mul(&in[i], &out[i])
		if !prod.IsOne() {
			t.Fatal("batch E2 inverse wrong")
		}
	}
}

func TestBatchInvertE2Into(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := make([]E2, 23)
	for i := range in {
		if i%6 == 1 {
			continue // leave zeros
		}
		in[i] = randE2(rng)
	}
	out := make([]E2, len(in))
	for i := range out {
		out[i] = randE2(rng) // garbage that must be overwritten
	}
	BatchInvertE2Into(in, out)
	for i := range in {
		if in[i].IsZero() {
			if !out[i].IsZero() {
				t.Fatal("zero inverse not zero")
			}
			continue
		}
		var prod E2
		prod.Mul(&in[i], &out[i])
		if !prod.IsOne() {
			t.Fatal("batch E2 inverse wrong")
		}
	}
}
