package ext

import (
	"math/big"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fp"
)

// toCyclotomic maps a random element into the cyclotomic subgroup via
// the easy part of the final exponentiation: f^((p⁶-1)(p²+1)).
func toCyclotomic(f *E12) E12 {
	var conj, inv, out, frob2 E12
	conj.Conjugate(f)
	inv.Inverse(f)
	out.Mul(&conj, &inv)
	frob2.FrobeniusSquare(&out)
	out.Mul(&frob2, &out)
	return out
}

func TestCyclotomicSquareMatchesSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for i := 0; i < 50; i++ {
		f := randE12(rng)
		if f.IsZero() {
			continue
		}
		c := toCyclotomic(&f)
		var want, got E12
		want.Square(&c)
		got.CyclotomicSquare(&c)
		if !want.Equal(&got) {
			t.Fatalf("cyclotomic squaring disagrees with generic squaring at %d", i)
		}
	}
}

func TestCyclotomicSubgroupMembershipSanity(t *testing.T) {
	// The mapped element must satisfy x^(p⁶+1) = 1, i.e.
	// conj(x) = x⁻¹ — the property Granger-Scott exploits.
	rng := rand.New(rand.NewSource(61))
	f := randE12(rng)
	c := toCyclotomic(&f)
	var conj, inv E12
	conj.Conjugate(&c)
	inv.Inverse(&c)
	if !conj.Equal(&inv) {
		t.Fatal("easy-part output not in the cyclotomic subgroup")
	}
}

func TestCyclotomicExpMatchesExp(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	f := randE12(rng)
	c := toCyclotomic(&f)
	for i := 0; i < 10; i++ {
		k := new(big.Int).Rand(rng, fp.Modulus())
		var want, got E12
		want.Exp(&c, k)
		got.CyclotomicExp(&c, k)
		if !want.Equal(&got) {
			t.Fatalf("cyclotomic exp mismatch at %d", i)
		}
	}
}

func BenchmarkE12Square(b *testing.B) {
	rng := rand.New(rand.NewSource(63))
	f := randE12(rng)
	c := toCyclotomic(&f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Square(&c)
	}
}

func BenchmarkCyclotomicSquare(b *testing.B) {
	rng := rand.New(rand.NewSource(64))
	f := randE12(rng)
	c := toCyclotomic(&f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CyclotomicSquare(&c)
	}
}
