package ext

// CyclotomicSquare squares an element of the cyclotomic subgroup
// G_Φ₁₂(p) ⊂ F_p¹²* (where x^(p⁶+1) = 1, i.e. after the easy part of the
// final exponentiation) using the Granger-Scott compressed formulas —
// roughly half the cost of a generic F_p¹² squaring. The result is
// undefined for elements outside the subgroup; callers are responsible
// for the domain (pairing.FinalExponentiation is the only user).
func (z *E12) CyclotomicSquare(x *E12) *E12 {
	// Coordinates as (x.C0.B0, x.C0.B1, x.C0.B2, x.C1.B0, x.C1.B1,
	// x.C1.B2) = (x0, x1, x2, x3, x4, x5); the Granger-Scott identity
	// squares the three quadratic sub-extensions independently.
	var t [9]E2

	t[0].Square(&x.C1.B1)
	t[1].Square(&x.C0.B0)
	t[6].Add(&x.C1.B1, &x.C0.B0)
	t[6].Square(&t[6])
	t[6].Sub(&t[6], &t[0])
	t[6].Sub(&t[6], &t[1]) // 2·x4·x0
	t[2].Square(&x.C0.B2)
	t[3].Square(&x.C1.B0)
	t[7].Add(&x.C0.B2, &x.C1.B0)
	t[7].Square(&t[7])
	t[7].Sub(&t[7], &t[2])
	t[7].Sub(&t[7], &t[3]) // 2·x2·x3
	t[4].Square(&x.C1.B2)
	t[5].Square(&x.C0.B1)
	t[8].Add(&x.C1.B2, &x.C0.B1)
	t[8].Square(&t[8])
	t[8].Sub(&t[8], &t[4])
	t[8].Sub(&t[8], &t[5])
	t[8].MulByNonResidue(&t[8]) // 2·x5·x1·ξ

	t[0].MulByNonResidue(&t[0])
	t[0].Add(&t[0], &t[1]) // ξ·x4² + x0²
	t[2].MulByNonResidue(&t[2])
	t[2].Add(&t[2], &t[3]) // ξ·x2² + x3²
	t[4].MulByNonResidue(&t[4])
	t[4].Add(&t[4], &t[5]) // ξ·x5² + x1²

	z.C0.B0.Sub(&t[0], &x.C0.B0)
	z.C0.B0.Double(&z.C0.B0)
	z.C0.B0.Add(&z.C0.B0, &t[0])

	z.C0.B1.Sub(&t[2], &x.C0.B1)
	z.C0.B1.Double(&z.C0.B1)
	z.C0.B1.Add(&z.C0.B1, &t[2])

	z.C0.B2.Sub(&t[4], &x.C0.B2)
	z.C0.B2.Double(&z.C0.B2)
	z.C0.B2.Add(&z.C0.B2, &t[4])

	z.C1.B0.Add(&t[8], &x.C1.B0)
	z.C1.B0.Double(&z.C1.B0)
	z.C1.B0.Add(&z.C1.B0, &t[8])

	z.C1.B1.Add(&t[6], &x.C1.B1)
	z.C1.B1.Double(&z.C1.B1)
	z.C1.B1.Add(&z.C1.B1, &t[6])

	z.C1.B2.Add(&t[7], &x.C1.B2)
	z.C1.B2.Double(&z.C1.B2)
	z.C1.B2.Add(&z.C1.B2, &t[7])
	return z
}

// CyclotomicExp raises a cyclotomic-subgroup element to a non-negative
// exponent with square-and-multiply, using the compressed squaring.
func (z *E12) CyclotomicExp(x *E12, k interface {
	Bit(int) uint
	BitLen() int
}) *E12 {
	var res E12
	res.SetOne()
	base := *x
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.CyclotomicSquare(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return z.Set(&res)
}
