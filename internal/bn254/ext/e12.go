package ext

import "math/big"

// E12 is an element c0 + c1·w of F_p¹² = F_p⁶[w]/(w² - v).
type E12 struct {
	C0, C1 E6
}

// SetZero sets z to 0 and returns z.
func (z *E12) SetZero() *E12 {
	z.C0.SetZero()
	z.C1.SetZero()
	return z
}

// SetOne sets z to 1 and returns z.
func (z *E12) SetOne() *E12 {
	z.C0.SetOne()
	z.C1.SetZero()
	return z
}

// Set copies x into z and returns z.
func (z *E12) Set(x *E12) *E12 { *z = *x; return z }

// IsZero reports whether z == 0.
func (z *E12) IsZero() bool { return z.C0.IsZero() && z.C1.IsZero() }

// IsOne reports whether z == 1.
func (z *E12) IsOne() bool { return z.C0.IsOne() && z.C1.IsZero() }

// Equal reports whether z == x.
func (z *E12) Equal(x *E12) bool { return z.C0.Equal(&x.C0) && z.C1.Equal(&x.C1) }

// Add sets z = x + y and returns z.
func (z *E12) Add(x, y *E12) *E12 {
	z.C0.Add(&x.C0, &y.C0)
	z.C1.Add(&x.C1, &y.C1)
	return z
}

// Sub sets z = x - y and returns z.
func (z *E12) Sub(x, y *E12) *E12 {
	z.C0.Sub(&x.C0, &y.C0)
	z.C1.Sub(&x.C1, &y.C1)
	return z
}

// Neg sets z = -x and returns z.
func (z *E12) Neg(x *E12) *E12 {
	z.C0.Neg(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Mul sets z = x·y (Karatsuba over F_p⁶, reduction w² = v) and returns z.
func (z *E12) Mul(x, y *E12) *E12 {
	var t0, t1, tsum, c0, c1 E6
	t0.Mul(&x.C0, &y.C0)
	t1.Mul(&x.C1, &y.C1)

	// c1 = (x0+x1)(y0+y1) - t0 - t1
	c1.Add(&x.C0, &x.C1)
	tsum.Add(&y.C0, &y.C1)
	c1.Mul(&c1, &tsum)
	c1.Sub(&c1, &t0)
	c1.Sub(&c1, &t1)

	// c0 = t0 + v·t1
	c0.MulByNonResidue(&t1)
	c0.Add(&c0, &t0)

	z.C0.Set(&c0)
	z.C1.Set(&c1)
	return z
}

// Square sets z = x² using the complex-squaring shortcut and returns z.
func (z *E12) Square(x *E12) *E12 {
	// (c0 + c1 w)² = (c0² + v c1²) + 2 c0 c1 w
	//             = (c0+c1)(c0 + v c1) - c0c1 - v c0c1 + 2 c0 c1 w
	var t0, t1, t2 E6
	t0.Add(&x.C0, &x.C1)
	t1.MulByNonResidue(&x.C1)
	t1.Add(&t1, &x.C0)
	t2.Mul(&x.C0, &x.C1)
	t0.Mul(&t0, &t1)
	var vT2 E6
	vT2.MulByNonResidue(&t2)
	t0.Sub(&t0, &t2)
	t0.Sub(&t0, &vT2)
	z.C0.Set(&t0)
	z.C1.Double(&t2)
	return z
}

// Conjugate sets z = c0 - c1·w (the F_p⁶-conjugate, which equals the
// p⁶-power Frobenius) and returns z.
func (z *E12) Conjugate(x *E12) *E12 {
	z.C0.Set(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Inverse sets z = 1/x (or 0 for x == 0) and returns z.
func (z *E12) Inverse(x *E12) *E12 {
	// 1/(c0 + c1 w) = (c0 - c1 w)/(c0² - v c1²)
	var t0, t1, denom E6
	t0.Square(&x.C0)
	t1.Square(&x.C1)
	t1.MulByNonResidue(&t1)
	denom.Sub(&t0, &t1)
	denom.Inverse(&denom)
	z.C0.Mul(&x.C0, &denom)
	var neg E6
	neg.Neg(&x.C1)
	z.C1.Mul(&neg, &denom)
	return z
}

// Exp sets z = x^k for a non-negative big.Int exponent and returns z.
func (z *E12) Exp(x *E12, k *big.Int) *E12 {
	if k.Sign() < 0 {
		panic("ext: negative exponent")
	}
	var res E12
	res.SetOne()
	base := *x
	for i := k.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if k.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	return z.Set(&res)
}

// MulBy034 performs the sparse multiplication of z by a line element of
// the form l = c0 + c3·w + c4·v·w (c0 in F_p² embedded at C0.B0, c3 at
// C1.B0, c4 at C1.B1), which is the shape produced by affine Miller-loop
// line evaluations with a D-type twist. Falls back to schoolbook
// combination of the sparse coefficients.
func (z *E12) MulBy034(c0, c3, c4 *E2) *E12 {
	var l E12
	l.C0.B0.Set(c0)
	l.C1.B0.Set(c3)
	l.C1.B1.Set(c4)
	return z.Mul(z, &l)
}
