package ext

import (
	"math/big"

	"zkrownn/internal/bn254/fp"
)

// Frobenius coefficients γ_{k,i} = ξ^{i·(pᵏ-1)/6}. They are computed at
// init by exponentiating ξ in F_p², so no 254-bit magic constants appear
// in the source.
var (
	gamma1 [6]E2 // p-power coefficients, index i ∈ 1..5
	gamma2 [6]E2 // p²-power coefficients
)

func init() {
	p := fp.Modulus()

	// (p-1)/6
	e1 := new(big.Int).Sub(p, big.NewInt(1))
	if new(big.Int).Mod(e1, big.NewInt(6)).Sign() != 0 {
		panic("ext: p-1 not divisible by 6")
	}
	e1.Div(e1, big.NewInt(6))

	// (p²-1)/6
	e2 := new(big.Int).Mul(p, p)
	e2.Sub(e2, big.NewInt(1))
	e2.Div(e2, big.NewInt(6))

	xi := Xi()
	var base1, base2 E2
	base1.Exp(&xi, e1)
	base2.Exp(&xi, e2)

	gamma1[0].SetOne()
	gamma2[0].SetOne()
	for i := 1; i <= 5; i++ {
		gamma1[i].Mul(&gamma1[i-1], &base1)
		gamma2[i].Mul(&gamma2[i-1], &base2)
	}
}

// Frobenius sets z = x^p and returns z. The map conjugates every F_p²
// coefficient and scales the tower basis elements vⁱwʲ by γ_{1,2i+j}.
func (z *E12) Frobenius(x *E12) *E12 {
	z.C0.B0.Conjugate(&x.C0.B0)
	z.C0.B1.Conjugate(&x.C0.B1)
	z.C0.B1.Mul(&z.C0.B1, &gamma1[2])
	z.C0.B2.Conjugate(&x.C0.B2)
	z.C0.B2.Mul(&z.C0.B2, &gamma1[4])
	z.C1.B0.Conjugate(&x.C1.B0)
	z.C1.B0.Mul(&z.C1.B0, &gamma1[1])
	z.C1.B1.Conjugate(&x.C1.B1)
	z.C1.B1.Mul(&z.C1.B1, &gamma1[3])
	z.C1.B2.Conjugate(&x.C1.B2)
	z.C1.B2.Mul(&z.C1.B2, &gamma1[5])
	return z
}

// FrobeniusSquare sets z = x^(p²) and returns z. The p²-power map is
// trivial on F_p², so only the basis scalings remain.
func (z *E12) FrobeniusSquare(x *E12) *E12 {
	z.C0.B0.Set(&x.C0.B0)
	z.C0.B1.Mul(&x.C0.B1, &gamma2[2])
	z.C0.B2.Mul(&x.C0.B2, &gamma2[4])
	z.C1.B0.Mul(&x.C1.B0, &gamma2[1])
	z.C1.B1.Mul(&x.C1.B1, &gamma2[3])
	z.C1.B2.Mul(&x.C1.B2, &gamma2[5])
	return z
}

// G2FrobeniusCoeffX returns γ_{1,2} = ξ^{(p-1)/3}, the coefficient
// applied to the (conjugated) x-coordinate by the untwist-Frobenius-twist
// endomorphism on the twist curve.
func G2FrobeniusCoeffX() E2 { return gamma1[2] }

// G2FrobeniusCoeffY returns γ_{1,3} = ξ^{(p-1)/2}, the y-coordinate
// counterpart of G2FrobeniusCoeffX.
func G2FrobeniusCoeffY() E2 { return gamma1[3] }

// G2FrobeniusSquareCoeffX returns γ_{2,2} = ξ^{(p²-1)/3} (x-coordinate
// coefficient of the squared endomorphism; no conjugation at p²).
func G2FrobeniusSquareCoeffX() E2 { return gamma2[2] }

// G2FrobeniusSquareCoeffY returns γ_{2,3} = ξ^{(p²-1)/2}.
func G2FrobeniusSquareCoeffY() E2 { return gamma2[3] }
