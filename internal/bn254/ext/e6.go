package ext

// E6 is an element b0 + b1·v + b2·v² of F_p⁶ = F_p²[v]/(v³ - ξ).
type E6 struct {
	B0, B1, B2 E2
}

// SetZero sets z to 0 and returns z.
func (z *E6) SetZero() *E6 {
	z.B0.SetZero()
	z.B1.SetZero()
	z.B2.SetZero()
	return z
}

// SetOne sets z to 1 and returns z.
func (z *E6) SetOne() *E6 {
	z.B0.SetOne()
	z.B1.SetZero()
	z.B2.SetZero()
	return z
}

// Set copies x into z and returns z.
func (z *E6) Set(x *E6) *E6 { *z = *x; return z }

// IsZero reports whether z == 0.
func (z *E6) IsZero() bool { return z.B0.IsZero() && z.B1.IsZero() && z.B2.IsZero() }

// IsOne reports whether z == 1.
func (z *E6) IsOne() bool { return z.B0.IsOne() && z.B1.IsZero() && z.B2.IsZero() }

// Equal reports whether z == x.
func (z *E6) Equal(x *E6) bool {
	return z.B0.Equal(&x.B0) && z.B1.Equal(&x.B1) && z.B2.Equal(&x.B2)
}

// Add sets z = x + y and returns z.
func (z *E6) Add(x, y *E6) *E6 {
	z.B0.Add(&x.B0, &y.B0)
	z.B1.Add(&x.B1, &y.B1)
	z.B2.Add(&x.B2, &y.B2)
	return z
}

// Sub sets z = x - y and returns z.
func (z *E6) Sub(x, y *E6) *E6 {
	z.B0.Sub(&x.B0, &y.B0)
	z.B1.Sub(&x.B1, &y.B1)
	z.B2.Sub(&x.B2, &y.B2)
	return z
}

// Double sets z = 2x and returns z.
func (z *E6) Double(x *E6) *E6 {
	z.B0.Double(&x.B0)
	z.B1.Double(&x.B1)
	z.B2.Double(&x.B2)
	return z
}

// Neg sets z = -x and returns z.
func (z *E6) Neg(x *E6) *E6 {
	z.B0.Neg(&x.B0)
	z.B1.Neg(&x.B1)
	z.B2.Neg(&x.B2)
	return z
}

// Mul sets z = x·y with the Toom-Cook-style interpolation
// (Devegili et al., "Multiplication and Squaring on Pairing-Friendly
// Fields", §4) and returns z.
func (z *E6) Mul(x, y *E6) *E6 {
	var t0, t1, t2, c0, c1, c2, tmp E2
	t0.Mul(&x.B0, &y.B0)
	t1.Mul(&x.B1, &y.B1)
	t2.Mul(&x.B2, &y.B2)

	// c0 = t0 + ξ((b1+b2)(d1+d2) - t1 - t2)
	c0.Add(&x.B1, &x.B2)
	tmp.Add(&y.B1, &y.B2)
	c0.Mul(&c0, &tmp)
	c0.Sub(&c0, &t1)
	c0.Sub(&c0, &t2)
	c0.MulByNonResidue(&c0)
	c0.Add(&c0, &t0)

	// c1 = (b0+b1)(d0+d1) - t0 - t1 + ξ t2
	c1.Add(&x.B0, &x.B1)
	tmp.Add(&y.B0, &y.B1)
	c1.Mul(&c1, &tmp)
	c1.Sub(&c1, &t0)
	c1.Sub(&c1, &t1)
	tmp.MulByNonResidue(&t2)
	c1.Add(&c1, &tmp)

	// c2 = (b0+b2)(d0+d2) - t0 - t2 + t1
	c2.Add(&x.B0, &x.B2)
	tmp.Add(&y.B0, &y.B2)
	c2.Mul(&c2, &tmp)
	c2.Sub(&c2, &t0)
	c2.Sub(&c2, &t2)
	c2.Add(&c2, &t1)

	z.B0.Set(&c0)
	z.B1.Set(&c1)
	z.B2.Set(&c2)
	return z
}

// Square sets z = x² and returns z.
func (z *E6) Square(x *E6) *E6 { return z.Mul(x, x) }

// MulByNonResidue sets z = x·v, i.e. (b0, b1, b2) -> (ξ·b2, b0, b1),
// and returns z.
func (z *E6) MulByNonResidue(x *E6) *E6 {
	var t E2
	t.MulByNonResidue(&x.B2)
	b0 := x.B0
	b1 := x.B1
	z.B0.Set(&t)
	z.B1.Set(&b0)
	z.B2.Set(&b1)
	return z
}

// MulByE2 scales every coefficient of x by the F_p² element c.
func (z *E6) MulByE2(x *E6, c *E2) *E6 {
	z.B0.Mul(&x.B0, c)
	z.B1.Mul(&x.B1, c)
	z.B2.Mul(&x.B2, c)
	return z
}

// Inverse sets z = 1/x (or 0 for x == 0) and returns z, following
// Algorithm 17 of Devegili et al.
func (z *E6) Inverse(x *E6) *E6 {
	// A = b0² - ξ b1 b2
	// B = ξ b2² - b0 b1
	// C = b1² - b0 b2
	// F = b0 A + ξ(b2 B + b1 C); z = (A, B, C)/F
	var a, b, c, t, f, fInv E2
	a.Square(&x.B0)
	t.Mul(&x.B1, &x.B2)
	t.MulByNonResidue(&t)
	a.Sub(&a, &t)

	b.Square(&x.B2)
	b.MulByNonResidue(&b)
	t.Mul(&x.B0, &x.B1)
	b.Sub(&b, &t)

	c.Square(&x.B1)
	t.Mul(&x.B0, &x.B2)
	c.Sub(&c, &t)

	f.Mul(&x.B2, &b)
	t.Mul(&x.B1, &c)
	f.Add(&f, &t)
	f.MulByNonResidue(&f)
	t.Mul(&x.B0, &a)
	f.Add(&f, &t)

	fInv.Inverse(&f)
	z.B0.Mul(&a, &fInv)
	z.B1.Mul(&b, &fInv)
	z.B2.Mul(&c, &fInv)
	return z
}
