package ext

import (
	"bytes"
	"testing"

	"zkrownn/internal/bn254/fp"
)

func TestE12BytesRoundTrip(t *testing.T) {
	var x E12
	x.SetOne()
	// Mix in distinguishable coefficients so every lane is exercised.
	for i, c := range x.coeffs() {
		c.Add(c, newFp(uint64(i*7+1)))
	}
	b := x.Bytes()
	var y E12
	if err := y.SetBytesCanonical(b[:]); err != nil {
		t.Fatal(err)
	}
	if !y.Equal(&x) {
		t.Fatal("round trip lost coefficients")
	}
	b2 := y.Bytes()
	if !bytes.Equal(b[:], b2[:]) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

func TestE12SetBytesRejects(t *testing.T) {
	var x E12
	if err := x.SetBytesCanonical(make([]byte, E12Bytes-1)); err == nil {
		t.Fatal("short input accepted")
	}
	// A coefficient ≥ p must be rejected (non-canonical encoding).
	raw := make([]byte, E12Bytes)
	for i := range raw[:fp.Bytes] {
		raw[i] = 0xff
	}
	if err := x.SetBytesCanonical(raw); err == nil {
		t.Fatal("non-canonical coefficient accepted")
	}
}

func newFp(v uint64) *fp.Element {
	var e fp.Element
	e.SetUint64(v)
	return &e
}
