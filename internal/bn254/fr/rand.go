package fr

import (
	"crypto/rand"
	"io"
	"math/big"
)

// SetRandom sets z to a uniformly random field element read from rng
// (crypto/rand.Reader when rng is nil) and returns z.
func (z *Element) SetRandom(rng io.Reader) (*Element, error) {
	if rng == nil {
		rng = rand.Reader
	}
	v, err := rand.Int(rng, &qModulus)
	if err != nil {
		return nil, err
	}
	return z.SetBigInt(v), nil
}

// MustRandom returns a uniformly random element, panicking on RNG
// failure. Intended for tests and key generation.
func MustRandom() Element {
	var e Element
	if _, err := e.SetRandom(nil); err != nil {
		panic(err)
	}
	return e
}

// RandomBig is a convenience wrapper returning a uniform value in [0, p).
func RandomBig(rng io.Reader) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	return rand.Int(rng, &qModulus)
}
