package fr

import (
	"fmt"
	"testing"
)

func BenchmarkMul(b *testing.B) {
	x := MustRandom()
	y := MustRandom()
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Mul(&x, &y)
	}
	_ = z
}

func BenchmarkSquare(b *testing.B) {
	x := MustRandom()
	var z Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Square(&x)
	}
	_ = z
}

// benchSizes spans one FFT butterfly's worth (small) up to a streamed
// MSM chunk's worth of elements.
var benchSizes = []int{64, 1024, 16384}

func BenchmarkMulVec(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]Element, n)
			y := make([]Element, n)
			dst := make([]Element, n)
			for i := range x {
				x[i] = MustRandom()
				y[i] = MustRandom()
			}
			b.SetBytes(int64(n * Bytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulVecInto(dst, x, y)
			}
		})
	}
}

func BenchmarkButterfly(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			lo := make([]Element, n)
			hi := make([]Element, n)
			tw := make([]Element, n)
			for i := range lo {
				lo[i] = MustRandom()
				hi[i] = MustRandom()
				tw[i] = MustRandom()
			}
			b.SetBytes(int64(n * Bytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				TwiddleButterflyVec(lo, hi, tw)
			}
		})
	}
}
