package fr

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGenericCoreLockstep guards the deliberate duplication between the
// fp and fr arithmetic cores: mul_generic.go must be byte-identical
// across the two packages after the package clause, and the
// mul_amd64.s files must match exactly (they reference the enclosing
// package's ·q/·qInvNeg symbols, so the same text serves both fields).
// A fix applied to one field therefore cannot silently miss the other.
func TestGenericCoreLockstep(t *testing.T) {
	pairs := []struct {
		name      string
		skipFirst bool // drop the first line (the package clause)
	}{
		{name: "mul_generic.go", skipFirst: true},
		{name: "mul_amd64.s"},
	}
	for _, p := range pairs {
		frBody := readLockstep(t, filepath.Join(".", p.name), p.skipFirst)
		fpBody := readLockstep(t, filepath.Join("..", "fp", p.name), p.skipFirst)
		if !bytes.Equal(frBody, fpBody) {
			t.Errorf("%s diverges between fp and fr: the arithmetic cores must stay in lock-step; copy the fixed file over (fr needs only the package clause changed)", p.name)
		}
	}
}

func readLockstep(t *testing.T, path string, skipFirst bool) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	if skipFirst {
		if i := bytes.IndexByte(b, '\n'); i >= 0 {
			b = b[i+1:]
		}
	}
	return b
}
