package fr

import (
	"math/big"
	"testing"
)

func TestRootOfUnity(t *testing.T) {
	for _, n := range []uint64{1, 2, 4, 8, 1 << 10, 1 << 20} {
		w, err := RootOfUnity(n)
		if err != nil {
			t.Fatal(err)
		}
		// w^n == 1
		var chk Element
		chk.Exp(&w, new(big.Int).SetUint64(n))
		if !chk.IsOne() {
			t.Fatalf("w^%d != 1", n)
		}
		// primitive: w^(n/2) != 1 for n > 1
		if n > 1 {
			chk.Exp(&w, new(big.Int).SetUint64(n/2))
			if chk.IsOne() {
				t.Fatalf("root of unity for n=%d is not primitive", n)
			}
		}
	}
}

func TestRootOfUnityErrors(t *testing.T) {
	if _, err := RootOfUnity(3); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := RootOfUnity(0); err == nil {
		t.Fatal("zero accepted")
	}
	if _, err := RootOfUnity(1 << 29); err == nil {
		t.Fatal("oversized domain accepted")
	}
}

func TestMultiplicativeGeneratorOutsideSubgroup(t *testing.T) {
	// g^((r-1)/2) must be -1, i.e. g is a non-square, which guarantees it
	// lies outside every even-order subgroup and in particular outside the
	// 2^28 FFT subgroup — so coset evaluations never collide with the
	// domain itself.
	g := MultiplicativeGenerator()
	exp := new(big.Int).Sub(Modulus(), big.NewInt(1))
	exp.Rsh(exp, 1)
	var chk Element
	chk.Exp(&g, exp)
	var minusOne Element
	minusOne.SetOne()
	minusOne.Neg(&minusOne)
	if !chk.Equal(&minusOne) {
		t.Fatal("generator 5 is a square mod r; coset trick unsound")
	}
}
