package fr

// Slice-level kernels used by the FFT levels and the Groth16 quotient
// loops. On amd64 with ADX the products dispatch to a single assembly
// call per vector; elsewhere they loop the generic core. Keeping the
// loops here (instead of open-coded at every call site) gives the
// hot paths one place to pick up future vector backends.

// MulVecInto sets dst[i] = a[i]·b[i] for every i. All three slices must
// have the same length; dst may alias a and/or b element-wise.
func MulVecInto(dst, a, b []Element) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic("fr.MulVecInto: length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	mulVecBackend(dst, a, b)
}

// ScalarMulVecInto sets dst[i] = a[i]·s for every i. dst may alias a.
func ScalarMulVecInto(dst, a []Element, s *Element) {
	if len(a) != len(dst) {
		panic("fr.ScalarMulVecInto: length mismatch")
	}
	a = a[:len(dst)]
	for i := range dst {
		dst[i].Mul(&a[i], s)
	}
}

// SubScalarMulVecInto sets dst[i] = (a[i] − b[i])·s for every i — the
// fused (A·B − C)·Z⁻¹ step of the quotient pipeline. dst may alias a
// and/or b element-wise.
func SubScalarMulVecInto(dst, a, b []Element, s *Element) {
	if len(a) != len(dst) || len(b) != len(dst) {
		panic("fr.SubScalarMulVecInto: length mismatch")
	}
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		var d Element
		d.Sub(&a[i], &b[i])
		dst[i].Mul(&d, s)
	}
}

// Butterfly sets (a, b) = (a+b, a−b) in place — the radix-2 building
// block of the FFT levels.
func Butterfly(a, b *Element) {
	t := *a
	a.Add(a, b)
	b.Sub(&t, b)
}

// ButterflyVec applies Butterfly pairwise: (a[i], b[i]) =
// (a[i]+b[i], a[i]−b[i]). The slices must have equal length and must
// not overlap.
func ButterflyVec(a, b []Element) {
	if len(a) != len(b) {
		panic("fr.ButterflyVec: length mismatch")
	}
	b = b[:len(a)]
	for i := range a {
		Butterfly(&a[i], &b[i])
	}
}

// TwiddleButterflyVec applies the decimation-in-time butterfly with
// per-lane twiddles: t = b[i]·tw[i]; (a[i], b[i]) = (a[i]+t, a[i]−t).
// All slices must have equal length; a and b must not overlap.
func TwiddleButterflyVec(a, b, tw []Element) {
	if len(a) != len(b) || len(tw) != len(a) {
		panic("fr.TwiddleButterflyVec: length mismatch")
	}
	MulVecInto(b, b, tw)
	ButterflyVec(a, b)
}
