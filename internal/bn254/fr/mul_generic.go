package fr

// Portable Montgomery multiplication core. This file is byte-identical
// between internal/bn254/fp and internal/bn254/fr after the package
// clause — TestGenericCoreLockstep enforces the match, so a fix applied
// to one field cannot silently miss the other. Keep it free of
// package-specific identifiers beyond the shared names Element, q,
// qInvNeg and smallerThanModulus, and keep panics/strings out.
//
// mulGeneric is the reference implementation for every accelerated
// backend: the build-tagged assembly paths must agree with it bit for
// bit on all inputs (pinned by the FuzzF*MulBackends differential fuzz
// targets and the property tests).

import "math/bits"

// madd0 returns the high word of a*b + c.
func madd0(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, carry := bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi
}

// madd1 returns hi, lo = a*b + t.
func madd1(a, b, t uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	lo, carry := bits.Add64(lo, t, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// madd2 returns hi, lo = a*b + c + d.
func madd2(a, b, c, d uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	c, carry := bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// madd3 returns hi, lo = a*b + c + d + e<<64.
func madd3(a, b, c, d, e uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	c, carry := bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return hi, lo
}

// mulGeneric sets z = x·y mod p (Montgomery product) with the CIOS
// algorithm; the "no-carry" shortcut applies because the top limb of
// the modulus is below 2⁶². Safe for z aliasing x and/or y: the final
// round writes each z limb only after its last read of x and y.
func mulGeneric(z, x, y *Element) {
	var t [4]uint64
	var c [3]uint64
	{
		v := x[0]
		c[1], c[0] = bits.Mul64(v, y[0])
		m := c[0] * qInvNeg
		c[2] = madd0(m, q[0], c[0])
		c[1], c[0] = madd1(v, y[1], c[1])
		c[2], t[0] = madd2(m, q[1], c[2], c[0])
		c[1], c[0] = madd1(v, y[2], c[1])
		c[2], t[1] = madd2(m, q[2], c[2], c[0])
		c[1], c[0] = madd1(v, y[3], c[1])
		t[3], t[2] = madd3(m, q[3], c[0], c[2], c[1])
	}
	{
		v := x[1]
		c[1], c[0] = madd1(v, y[0], t[0])
		m := c[0] * qInvNeg
		c[2] = madd0(m, q[0], c[0])
		c[1], c[0] = madd2(v, y[1], c[1], t[1])
		c[2], t[0] = madd2(m, q[1], c[2], c[0])
		c[1], c[0] = madd2(v, y[2], c[1], t[2])
		c[2], t[1] = madd2(m, q[2], c[2], c[0])
		c[1], c[0] = madd2(v, y[3], c[1], t[3])
		t[3], t[2] = madd3(m, q[3], c[0], c[2], c[1])
	}
	{
		v := x[2]
		c[1], c[0] = madd1(v, y[0], t[0])
		m := c[0] * qInvNeg
		c[2] = madd0(m, q[0], c[0])
		c[1], c[0] = madd2(v, y[1], c[1], t[1])
		c[2], t[0] = madd2(m, q[1], c[2], c[0])
		c[1], c[0] = madd2(v, y[2], c[1], t[2])
		c[2], t[1] = madd2(m, q[2], c[2], c[0])
		c[1], c[0] = madd2(v, y[3], c[1], t[3])
		t[3], t[2] = madd3(m, q[3], c[0], c[2], c[1])
	}
	{
		v := x[3]
		c[1], c[0] = madd1(v, y[0], t[0])
		m := c[0] * qInvNeg
		c[2] = madd0(m, q[0], c[0])
		c[1], c[0] = madd2(v, y[1], c[1], t[1])
		c[2], z[0] = madd2(m, q[1], c[2], c[0])
		c[1], c[0] = madd2(v, y[2], c[1], t[2])
		c[2], z[1] = madd2(m, q[2], c[2], c[0])
		c[1], c[0] = madd2(v, y[3], c[1], t[3])
		z[3], z[2] = madd3(m, q[3], c[0], c[2], c[1])
	}
	if !z.smallerThanModulus() {
		var b uint64
		z[0], b = bits.Sub64(z[0], q[0], 0)
		z[1], b = bits.Sub64(z[1], q[1], b)
		z[2], b = bits.Sub64(z[2], q[2], b)
		z[3], _ = bits.Sub64(z[3], q[3], b)
	}
}

// squareGeneric sets z = x² mod p with a dedicated no-carry squaring:
// the 512-bit square needs only the 10 distinct limb products (the 6
// cross products are doubled by shifts) instead of the 16 a general
// product scans, and is then folded by four standard REDC rounds.
// Inputs must be reduced (< p), which every exported constructor
// guarantees; the overflow analysis in the comments uses q[3] < 2⁶²,
// true for both BN254 fields.
func squareGeneric(z, x *Element) {
	var t [8]uint64
	var hi, lo, carry uint64

	// Off-diagonal products Σ_{i<j} x[i]·x[j]·2^(64(i+j)).
	hi, lo = bits.Mul64(x[0], x[1])
	t[1] = lo
	t[2] = hi
	hi, lo = bits.Mul64(x[0], x[2])
	t[2], carry = bits.Add64(t[2], lo, 0)
	t[3] = hi + carry // hi ≤ 2⁶⁴-2: cannot overflow
	hi, lo = bits.Mul64(x[0], x[3])
	t[3], carry = bits.Add64(t[3], lo, 0)
	t[4] = hi + carry

	hi, lo = bits.Mul64(x[1], x[2])
	t[3], carry = bits.Add64(t[3], lo, 0)
	t[4], carry = bits.Add64(t[4], hi, carry)
	t[5] = carry
	hi, lo = bits.Mul64(x[1], x[3])
	t[4], carry = bits.Add64(t[4], lo, 0)
	t[5] += hi + carry // hi < 2⁶² (x[3] < 2⁶²): cannot overflow

	hi, lo = bits.Mul64(x[2], x[3])
	t[5], carry = bits.Add64(t[5], lo, 0)
	t[6] = hi + carry

	// Double the cross products: x² = Σ x[i]²·2^(128i) + 2·cross.
	t[7] = t[6] >> 63
	t[6] = t[6]<<1 | t[5]>>63
	t[5] = t[5]<<1 | t[4]>>63
	t[4] = t[4]<<1 | t[3]>>63
	t[3] = t[3]<<1 | t[2]>>63
	t[2] = t[2]<<1 | t[1]>>63
	t[1] = t[1] << 1

	// Add the diagonal x[i]² terms.
	hi, lo = bits.Mul64(x[0], x[0])
	t[0] = lo
	t[1], carry = bits.Add64(t[1], hi, 0)
	hi, lo = bits.Mul64(x[1], x[1])
	t[2], carry = bits.Add64(t[2], lo, carry)
	t[3], carry = bits.Add64(t[3], hi, carry)
	hi, lo = bits.Mul64(x[2], x[2])
	t[4], carry = bits.Add64(t[4], lo, carry)
	t[5], carry = bits.Add64(t[5], hi, carry)
	hi, lo = bits.Mul64(x[3], x[3])
	t[6], carry = bits.Add64(t[6], lo, carry)
	t[7], _ = bits.Add64(t[7], hi, carry)

	// Four REDC rounds fold t down to four limbs. The exact value
	// x² + Σᵢ mᵢ·q·2^(64i) stays below 2⁵¹² (x² < 2⁵⁰⁸, Σ mᵢ·2^(64i)·q
	// < 2²⁵⁶·p < 2⁵¹⁰), so the ripple past each round's m·q high word
	// never carries out of t[7].
	var c uint64
	m := t[0] * qInvNeg
	c = madd0(m, q[0], t[0])
	c, t[1] = madd2(m, q[1], t[1], c)
	c, t[2] = madd2(m, q[2], t[2], c)
	c, t[3] = madd2(m, q[3], t[3], c)
	t[4], carry = bits.Add64(t[4], c, 0)
	t[5], carry = bits.Add64(t[5], 0, carry)
	t[6], carry = bits.Add64(t[6], 0, carry)
	t[7], _ = bits.Add64(t[7], 0, carry)

	m = t[1] * qInvNeg
	c = madd0(m, q[0], t[1])
	c, t[2] = madd2(m, q[1], t[2], c)
	c, t[3] = madd2(m, q[2], t[3], c)
	c, t[4] = madd2(m, q[3], t[4], c)
	t[5], carry = bits.Add64(t[5], c, 0)
	t[6], carry = bits.Add64(t[6], 0, carry)
	t[7], _ = bits.Add64(t[7], 0, carry)

	m = t[2] * qInvNeg
	c = madd0(m, q[0], t[2])
	c, t[3] = madd2(m, q[1], t[3], c)
	c, t[4] = madd2(m, q[2], t[4], c)
	c, t[5] = madd2(m, q[3], t[5], c)
	t[6], carry = bits.Add64(t[6], c, 0)
	t[7], _ = bits.Add64(t[7], 0, carry)

	m = t[3] * qInvNeg
	c = madd0(m, q[0], t[3])
	c, t[4] = madd2(m, q[1], t[4], c)
	c, t[5] = madd2(m, q[2], t[5], c)
	c, t[6] = madd2(m, q[3], t[6], c)
	t[7], _ = bits.Add64(t[7], c, 0)

	// The reduced value is below (p² + 2²⁵⁶·p)/2²⁵⁶ < 2p, so one
	// conditional subtraction restores canonical form.
	z[0], z[1], z[2], z[3] = t[4], t[5], t[6], t[7]
	if !z.smallerThanModulus() {
		var b uint64
		z[0], b = bits.Sub64(z[0], q[0], 0)
		z[1], b = bits.Sub64(z[1], q[1], b)
		z[2], b = bits.Sub64(z[2], q[2], b)
		z[3], _ = bits.Sub64(z[3], q[3], b)
	}
}

// mulVecGeneric is the portable element-wise product kernel behind
// MulVecInto. Lengths are validated by the caller.
func mulVecGeneric(dst, a, b []Element) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		mulGeneric(&dst[i], &a[i], &b[i])
	}
}
