package fr

import (
	"fmt"
	"math/big"
)

// TwoAdicity is the largest s such that 2^s divides r-1. BN254's scalar
// field supports radix-2 FFT domains of size up to 2^28.
const TwoAdicity = 28

// twoAdicRoot is a primitive 2^28-th root of unity, derived at init by
// exponentiating small candidates c to (r-1)/2^28 until the result has
// exact order 2^28 (equivalently, its 2^27-th power is not 1).
var twoAdicRoot Element

func init() {
	// Check the advertised two-adicity against the modulus.
	var rm1 big.Int
	rm1.Sub(&qModulus, big.NewInt(1))
	for i := 0; i < TwoAdicity; i++ {
		if rm1.Bit(i) != 0 {
			panic("fr: modulus two-adicity below advertised value")
		}
	}
	exp := new(big.Int).Rsh(&rm1, TwoAdicity)
	half := new(big.Int).Lsh(big.NewInt(1), TwoAdicity-1)
	for c := uint64(2); ; c++ {
		var cand, chk Element
		cand.SetUint64(c)
		cand.Exp(&cand, exp)
		chk.Exp(&cand, half)
		if !chk.IsOne() {
			twoAdicRoot = cand
			return
		}
	}
}

// RootOfUnity returns a primitive n-th root of unity. n must be a power
// of two not exceeding 2^TwoAdicity.
func RootOfUnity(n uint64) (Element, error) {
	if n == 0 || n&(n-1) != 0 {
		return Element{}, fmt.Errorf("fr: domain size %d is not a power of two", n)
	}
	log := 0
	for m := n; m > 1; m >>= 1 {
		log++
	}
	if log > TwoAdicity {
		return Element{}, fmt.Errorf("fr: domain size %d exceeds 2^%d", n, TwoAdicity)
	}
	w := twoAdicRoot
	for i := TwoAdicity; i > log; i-- {
		w.Square(&w)
	}
	return w, nil
}

// MultiplicativeGenerator returns a fixed element outside every proper
// power-of-two subgroup, used as the coset shift for quotient-polynomial
// evaluation. 5 is the conventional generator for BN254's scalar field;
// its primitivity with respect to the 2-adic subgroup is verified at use
// sites via coset-vanishing checks in the poly package tests.
func MultiplicativeGenerator() Element {
	var g Element
	g.SetUint64(5)
	return g
}
