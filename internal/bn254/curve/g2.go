package curve

import (
	"errors"
	"math/big"

	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fp"
	"zkrownn/internal/bn254/fr"
)

// G2Affine is a point on the sextic twist E'(F_p²): y² = x³ + 3/ξ.
// The point at infinity is encoded as (0, 0).
type G2Affine struct {
	X, Y ext.E2
}

// G2Jac is a twist point in Jacobian coordinates; infinity has Z = 0.
type G2Jac struct {
	X, Y, Z ext.E2
}

var (
	twistB     ext.E2 // 3/ξ
	g2Gen      G2Jac
	g2GenAff   G2Affine
	g2Cofactor big.Int // 2p - r
)

func init() {
	// b' = 3/ξ.
	xi := ext.Xi()
	var xiInv ext.E2
	xiInv.Inverse(&xi)
	var three ext.E2
	three.SetUint64(3)
	twistB.Mul(&three, &xiInv)

	// Cofactor h₂ = 2p - r; #E'(F_p²) = h₂·r for BN curves.
	g2Cofactor.Lsh(fp.Modulus(), 1)
	g2Cofactor.Sub(&g2Cofactor, GroupOrder())

	// Derive a generator deterministically: walk x = 1, 2, ... until
	// x³ + b' is a square, then clear the cofactor and verify the order.
	found := false
	for xTry := uint64(1); xTry < 64 && !found; xTry++ {
		var x, rhs, y ext.E2
		x.SetUint64(xTry)
		rhs.Square(&x)
		rhs.Mul(&rhs, &x)
		rhs.Add(&rhs, &twistB)
		if y.Sqrt(&rhs) == nil {
			continue
		}
		var cand G2Jac
		cand.X.Set(&x)
		cand.Y.Set(&y)
		cand.Z.SetOne()
		cand.ScalarMulBig(&cand, &g2Cofactor)
		if cand.IsInfinity() {
			continue
		}
		var chk G2Jac
		chk.ScalarMulBig(&cand, GroupOrder())
		if !chk.IsInfinity() {
			panic("curve: cofactor-cleared G2 point does not have order r")
		}
		g2Gen = cand
		g2GenAff.FromJacobian(&g2Gen)
		found = true
	}
	if !found {
		panic("curve: failed to derive G2 generator")
	}
}

// G2Generator returns the derived generator of G2 in Jacobian form.
func G2Generator() G2Jac { return g2Gen }

// G2GeneratorAffine returns the derived generator in affine form.
func G2GeneratorAffine() G2Affine { return g2GenAff }

// TwistB returns the twist curve constant b' = 3/ξ.
func TwistB() ext.E2 { return twistB }

// G2Cofactor returns h₂ = 2p - r.
func G2Cofactor() *big.Int { return new(big.Int).Set(&g2Cofactor) }

// IsInfinity reports whether p is the point at infinity.
func (p *G2Affine) IsInfinity() bool { return p.X.IsZero() && p.Y.IsZero() }

// Set copies q into p and returns p.
func (p *G2Affine) Set(q *G2Affine) *G2Affine { *p = *q; return p }

// Equal reports whether p == q.
func (p *G2Affine) Equal(q *G2Affine) bool {
	return p.X.Equal(&q.X) && p.Y.Equal(&q.Y)
}

// Neg sets p = -q and returns p.
func (p *G2Affine) Neg(q *G2Affine) *G2Affine {
	p.X.Set(&q.X)
	p.Y.Neg(&q.Y)
	return p
}

// IsOnCurve reports whether p satisfies the twist equation.
func (p *G2Affine) IsOnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	var lhs, rhs ext.E2
	lhs.Square(&p.Y)
	rhs.Square(&p.X)
	rhs.Mul(&rhs, &p.X)
	rhs.Add(&rhs, &twistB)
	return lhs.Equal(&rhs)
}

// IsInSubgroup reports whether p lies in the order-r subgroup of the
// twist (required for pairing inputs; the twist has cofactor h₂ > 1).
func (p *G2Affine) IsInSubgroup() bool {
	if !p.IsOnCurve() {
		return false
	}
	if p.IsInfinity() {
		return true
	}
	var j G2Jac
	j.FromAffine(p)
	j.ScalarMulBig(&j, GroupOrder())
	return j.IsInfinity()
}

// FromJacobian sets p to the affine form of q and returns p.
func (p *G2Affine) FromJacobian(q *G2Jac) *G2Affine {
	if q.IsInfinity() {
		p.X.SetZero()
		p.Y.SetZero()
		return p
	}
	var zInv, zInv2, zInv3 ext.E2
	zInv.Inverse(&q.Z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.X.Mul(&q.X, &zInv2)
	p.Y.Mul(&q.Y, &zInv3)
	return p
}

// IsInfinity reports whether p is the point at infinity (Z == 0).
func (p *G2Jac) IsInfinity() bool { return p.Z.IsZero() }

// SetInfinity sets p to the point at infinity and returns p.
func (p *G2Jac) SetInfinity() *G2Jac {
	p.X.SetOne()
	p.Y.SetOne()
	p.Z.SetZero()
	return p
}

// Set copies q into p and returns p.
func (p *G2Jac) Set(q *G2Jac) *G2Jac { *p = *q; return p }

// FromAffine sets p to the Jacobian form of q and returns p.
func (p *G2Jac) FromAffine(q *G2Affine) *G2Jac {
	if q.IsInfinity() {
		return p.SetInfinity()
	}
	p.X.Set(&q.X)
	p.Y.Set(&q.Y)
	p.Z.SetOne()
	return p
}

// Equal reports whether p and q represent the same point.
func (p *G2Jac) Equal(q *G2Jac) bool {
	if p.IsInfinity() {
		return q.IsInfinity()
	}
	if q.IsInfinity() {
		return false
	}
	var z1z1, z2z2, u1, u2, s1, s2, t ext.E2
	z1z1.Square(&p.Z)
	z2z2.Square(&q.Z)
	u1.Mul(&p.X, &z2z2)
	u2.Mul(&q.X, &z1z1)
	t.Mul(&z2z2, &q.Z)
	s1.Mul(&p.Y, &t)
	t.Mul(&z1z1, &p.Z)
	s2.Mul(&q.Y, &t)
	return u1.Equal(&u2) && s1.Equal(&s2)
}

// Neg sets p = -q and returns p.
func (p *G2Jac) Neg(q *G2Jac) *G2Jac {
	p.X.Set(&q.X)
	p.Y.Neg(&q.Y)
	p.Z.Set(&q.Z)
	return p
}

// DoubleAssign doubles p in place (a = 0 twist) and returns p.
func (p *G2Jac) DoubleAssign() *G2Jac {
	if p.IsInfinity() {
		return p
	}
	var a, b, c, d, e, f, t ext.E2
	a.Square(&p.X)
	b.Square(&p.Y)
	c.Square(&b)
	d.Add(&p.X, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	e.Double(&a)
	e.Add(&e, &a)
	f.Square(&e)
	t.Double(&d)
	p.Z.Mul(&p.Y, &p.Z)
	p.Z.Double(&p.Z)
	p.X.Sub(&f, &t)
	t.Sub(&d, &p.X)
	t.Mul(&e, &t)
	var c8 ext.E2
	c8.Double(&c)
	c8.Double(&c8)
	c8.Double(&c8)
	p.Y.Sub(&t, &c8)
	return p
}

// Double sets p = 2q and returns p.
func (p *G2Jac) Double(q *G2Jac) *G2Jac {
	p.Set(q)
	return p.DoubleAssign()
}

// AddAssign sets p = p + q and returns p.
func (p *G2Jac) AddAssign(q *G2Jac) *G2Jac {
	if q.IsInfinity() {
		return p
	}
	if p.IsInfinity() {
		return p.Set(q)
	}
	var z1z1, z2z2, u1, u2, s1, s2 ext.E2
	z1z1.Square(&p.Z)
	z2z2.Square(&q.Z)
	u1.Mul(&p.X, &z2z2)
	u2.Mul(&q.X, &z1z1)
	var t ext.E2
	t.Mul(&q.Z, &z2z2)
	s1.Mul(&p.Y, &t)
	t.Mul(&p.Z, &z1z1)
	s2.Mul(&q.Y, &t)

	if u1.Equal(&u2) {
		if s1.Equal(&s2) {
			return p.DoubleAssign()
		}
		return p.SetInfinity()
	}

	var h, i, j, r, v ext.E2
	h.Sub(&u2, &u1)
	i.Double(&h)
	i.Square(&i)
	j.Mul(&h, &i)
	r.Sub(&s2, &s1)
	r.Double(&r)
	v.Mul(&u1, &i)

	var x3, y3, z3 ext.E2
	x3.Square(&r)
	x3.Sub(&x3, &j)
	var twoV ext.E2
	twoV.Double(&v)
	x3.Sub(&x3, &twoV)

	y3.Sub(&v, &x3)
	y3.Mul(&r, &y3)
	var s1j ext.E2
	s1j.Mul(&s1, &j)
	s1j.Double(&s1j)
	y3.Sub(&y3, &s1j)

	z3.Add(&p.Z, &q.Z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	p.X.Set(&x3)
	p.Y.Set(&y3)
	p.Z.Set(&z3)
	return p
}

// AddMixed sets p = p + q for an affine q and returns p.
func (p *G2Jac) AddMixed(q *G2Affine) *G2Jac {
	if q.IsInfinity() {
		return p
	}
	if p.IsInfinity() {
		return p.FromAffine(q)
	}
	var z1z1, u2, s2 ext.E2
	z1z1.Square(&p.Z)
	u2.Mul(&q.X, &z1z1)
	s2.Mul(&z1z1, &p.Z)
	s2.Mul(&s2, &q.Y)

	if u2.Equal(&p.X) {
		if s2.Equal(&p.Y) {
			return p.DoubleAssign()
		}
		return p.SetInfinity()
	}

	var h, hh, i, j, r, v ext.E2
	h.Sub(&u2, &p.X)
	hh.Square(&h)
	i.Double(&hh)
	i.Double(&i)
	j.Mul(&h, &i)
	r.Sub(&s2, &p.Y)
	r.Double(&r)
	v.Mul(&p.X, &i)

	var x3, y3, z3 ext.E2
	x3.Square(&r)
	x3.Sub(&x3, &j)
	var twoV ext.E2
	twoV.Double(&v)
	x3.Sub(&x3, &twoV)

	y3.Sub(&v, &x3)
	y3.Mul(&r, &y3)
	var yj ext.E2
	yj.Mul(&p.Y, &j)
	yj.Double(&yj)
	y3.Sub(&y3, &yj)

	z3.Add(&p.Z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)

	p.X.Set(&x3)
	p.Y.Set(&y3)
	p.Z.Set(&z3)
	return p
}

// ScalarMulBig sets p = k·q for a big.Int scalar and returns p.
func (p *G2Jac) ScalarMulBig(q *G2Jac, k *big.Int) *G2Jac {
	var kk big.Int
	kk.Set(k)
	base := *q
	if kk.Sign() < 0 {
		kk.Neg(&kk)
		base.Neg(&base)
	}
	var res G2Jac
	res.SetInfinity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		res.DoubleAssign()
		if kk.Bit(i) == 1 {
			res.AddAssign(&base)
		}
	}
	return p.Set(&res)
}

// ScalarMul sets p = k·q for a scalar-field element k and returns p
// (width-4 NAF; see wnaf.go).
func (p *G2Jac) ScalarMul(q *G2Jac, k *fr.Element) *G2Jac {
	return p.ScalarMulWNAF(q, k)
}

// scalarMulBinary is the plain double-and-add ladder, kept as the
// cross-check oracle for the windowed implementation.
func (p *G2Jac) scalarMulBinary(q *G2Jac, k *fr.Element) *G2Jac {
	limbs := k.RegularLimbs()
	var res G2Jac
	res.SetInfinity()
	started := false
	for i := fr.Limbs*64 - 1; i >= 0; i-- {
		if started {
			res.DoubleAssign()
		}
		if (limbs[i/64]>>(i%64))&1 == 1 {
			res.AddAssign(q)
			started = true
		}
	}
	return p.Set(&res)
}

// BatchJacToAffineG2 converts a slice of Jacobian twist points to affine
// with a single F_p² inversion.
func BatchJacToAffineG2(points []G2Jac) []G2Affine {
	res := make([]G2Affine, len(points))
	zs := make([]ext.E2, len(points))
	for i := range points {
		zs[i] = points[i].Z
	}
	zInvs := ext.BatchInvertE2(zs)
	for i := range points {
		if points[i].IsInfinity() {
			res[i].X.SetZero()
			res[i].Y.SetZero()
			continue
		}
		var zInv2, zInv3 ext.E2
		zInv2.Square(&zInvs[i])
		zInv3.Mul(&zInv2, &zInvs[i])
		res[i].X.Mul(&points[i].X, &zInv2)
		res[i].Y.Mul(&points[i].Y, &zInv3)
	}
	return res
}

// g2BatchAdder is the G2 leaf of the batch-affine bucket accumulation:
// identical algebra to g1BatchAdder over F_p² coordinates, sharing one
// F_p² inversion per flush via ext.BatchInvertE2Into.
type g2BatchAdder struct {
	den, inv []ext.E2
	kind     []uint8
}

func newG2BatchAdder(batchSize int) *g2BatchAdder {
	return &g2BatchAdder{
		den:  make([]ext.E2, batchSize),
		inv:  make([]ext.E2, batchSize),
		kind: make([]uint8, batchSize),
	}
}

func (a *g2BatchAdder) isInfinity(p *G2Affine) bool { return p.IsInfinity() }

func (a *g2BatchAdder) negInto(dst, src *G2Affine) { dst.Neg(src) }

func (a *g2BatchAdder) addMixedJac(dst *G2Jac, p *G2Affine) { dst.AddMixed(p) }

// flush performs buckets[idx[k]] += pts[k] for all k; indices are
// distinct within one call (scheduler invariant).
func (a *g2BatchAdder) flush(buckets []G2Affine, idx []int32, pts []G2Affine) {
	n := len(idx)
	den, inv, kind := a.den[:n], a.inv[:n], a.kind[:n]
	for k := 0; k < n; k++ {
		b := &buckets[idx[k]]
		p := &pts[k]
		switch {
		case b.IsInfinity():
			*b = *p
			kind[k] = batchAddSkip
			den[k].SetZero()
		case b.X.Equal(&p.X):
			if b.Y.Equal(&p.Y) {
				kind[k] = batchAddTangent
				den[k].Double(&b.Y)
			} else {
				b.X.SetZero()
				b.Y.SetZero()
				kind[k] = batchAddSkip
				den[k].SetZero()
			}
		default:
			kind[k] = batchAddChord
			den[k].Sub(&p.X, &b.X)
		}
	}
	ext.BatchInvertE2Into(den, inv)
	for k := 0; k < n; k++ {
		if kind[k] == batchAddSkip {
			continue
		}
		b := &buckets[idx[k]]
		p := &pts[k]
		var lambda, x3, y3 ext.E2
		if kind[k] == batchAddTangent {
			lambda.Square(&b.X)
			var t ext.E2
			t.Double(&lambda)
			lambda.Add(&lambda, &t)
			lambda.Mul(&lambda, &inv[k])
		} else {
			lambda.Sub(&p.Y, &b.Y)
			lambda.Mul(&lambda, &inv[k])
		}
		x3.Square(&lambda)
		x3.Sub(&x3, &b.X)
		x3.Sub(&x3, &p.X)
		y3.Sub(&b.X, &x3)
		y3.Mul(&y3, &lambda)
		y3.Sub(&y3, &b.Y)
		b.X.Set(&x3)
		b.Y.Set(&y3)
	}
}

// G2CompressedSize is the byte length of a compressed G2 point
// (X = (A0, A1) as two 32-byte field encodings, A1 first to carry the
// flag bits in its spare top bits).
const G2CompressedSize = 2 * fp.Bytes

// Bytes returns the 64-byte compressed encoding of p.
func (p *G2Affine) Bytes() [G2CompressedSize]byte {
	var out [G2CompressedSize]byte
	if p.IsInfinity() {
		out[0] = flagInfinity
		return out
	}
	a1 := p.X.A1.Bytes()
	a0 := p.X.A0.Bytes()
	copy(out[:fp.Bytes], a1[:])
	copy(out[fp.Bytes:], a0[:])
	if p.Y.LexicographicallyLargest() {
		out[0] |= flagCompressedLarge
	} else {
		out[0] |= flagCompressedSmall
	}
	return out
}

// G2UncompressedSize is the byte length of an uncompressed G2 point
// (X.A1, X.A0, Y.A1, Y.A0, each 32 bytes big-endian).
const G2UncompressedSize = 4 * fp.Bytes

// BytesRaw returns the 128-byte uncompressed encoding of p, with the
// point at infinity as all zeros. Like the G1 variant it exists for
// locally trusted bulk material: decoding skips the square root.
func (p *G2Affine) BytesRaw() [G2UncompressedSize]byte {
	var out [G2UncompressedSize]byte
	if p.IsInfinity() {
		return out
	}
	xa1 := p.X.A1.Bytes()
	xa0 := p.X.A0.Bytes()
	ya1 := p.Y.A1.Bytes()
	ya0 := p.Y.A0.Bytes()
	copy(out[:fp.Bytes], xa1[:])
	copy(out[fp.Bytes:2*fp.Bytes], xa0[:])
	copy(out[2*fp.Bytes:3*fp.Bytes], ya1[:])
	copy(out[3*fp.Bytes:], ya0[:])
	return out
}

// SetBytesRaw decodes an uncompressed G2 point, verifying twist-curve
// membership only. G2 has a non-trivial cofactor, so unlike SetBytes
// this does NOT prove order-r subgroup membership — it is for material
// the caller already trusts (its own key cache), not for adversarial
// inputs.
func (p *G2Affine) SetBytesRaw(buf []byte) error {
	if len(buf) != G2UncompressedSize {
		return errors.New("curve: bad uncompressed G2 encoding length")
	}
	if err := p.X.A1.SetBytesCanonical(buf[:fp.Bytes]); err != nil {
		return err
	}
	if err := p.X.A0.SetBytesCanonical(buf[fp.Bytes : 2*fp.Bytes]); err != nil {
		return err
	}
	if err := p.Y.A1.SetBytesCanonical(buf[2*fp.Bytes : 3*fp.Bytes]); err != nil {
		return err
	}
	if err := p.Y.A0.SetBytesCanonical(buf[3*fp.Bytes:]); err != nil {
		return err
	}
	if p.IsInfinity() {
		return nil
	}
	if !p.IsOnCurve() {
		return errors.New("curve: uncompressed G2 point not on twist")
	}
	return nil
}

// SetBytes decodes a compressed G2 point, verifying twist-curve and
// subgroup membership.
func (p *G2Affine) SetBytes(buf []byte) error {
	if len(buf) != G2CompressedSize {
		return errors.New("curve: bad G2 encoding length")
	}
	flags := buf[0] & maskFlags
	if flags == flagInfinity {
		p.X.SetZero()
		p.Y.SetZero()
		return nil
	}
	if flags != flagCompressedSmall && flags != flagCompressedLarge {
		return errors.New("curve: invalid G2 encoding flags")
	}
	var a1 [fp.Bytes]byte
	copy(a1[:], buf[:fp.Bytes])
	a1[0] &^= maskFlags
	if err := p.X.A1.SetBytesCanonical(a1[:]); err != nil {
		return err
	}
	if err := p.X.A0.SetBytesCanonical(buf[fp.Bytes:]); err != nil {
		return err
	}
	var rhs ext.E2
	rhs.Square(&p.X)
	rhs.Mul(&rhs, &p.X)
	rhs.Add(&rhs, &twistB)
	if p.Y.Sqrt(&rhs) == nil {
		return errors.New("curve: G2 x-coordinate not on twist")
	}
	wantLargest := flags == flagCompressedLarge
	if p.Y.LexicographicallyLargest() != wantLargest {
		p.Y.Neg(&p.Y)
	}
	if !p.IsInSubgroup() {
		return errors.New("curve: G2 point outside order-r subgroup")
	}
	return nil
}
