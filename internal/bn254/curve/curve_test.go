package curve

import (
	"math/big"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

func randFr(rng *rand.Rand) fr.Element {
	var e fr.Element
	b := make([]byte, 40)
	rng.Read(b)
	e.SetBigInt(new(big.Int).SetBytes(b))
	return e
}

func randG1(rng *rand.Rand) G1Jac {
	k := randFr(rng)
	g := G1Generator()
	var p G1Jac
	p.ScalarMul(&g, &k)
	return p
}

func randG2(rng *rand.Rand) G2Jac {
	k := randFr(rng)
	g := G2Generator()
	var p G2Jac
	p.ScalarMul(&g, &k)
	return p
}

func TestG1GeneratorOrder(t *testing.T) {
	g := G1Generator()
	var p G1Jac
	p.ScalarMulBig(&g, GroupOrder())
	if !p.IsInfinity() {
		t.Fatal("r·G1 != infinity")
	}
	var aff G1Affine
	aff.FromJacobian(&g)
	if !aff.IsOnCurve() || !aff.IsInSubgroup() {
		t.Fatal("G1 generator invalid")
	}
}

func TestG2GeneratorOrder(t *testing.T) {
	g := G2Generator()
	var p G2Jac
	p.ScalarMulBig(&g, GroupOrder())
	if !p.IsInfinity() {
		t.Fatal("r·G2 != infinity")
	}
	var aff G2Affine
	aff.FromJacobian(&g)
	if !aff.IsOnCurve() || !aff.IsInSubgroup() {
		t.Fatal("G2 generator invalid")
	}
}

func TestG1GroupLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for i := 0; i < 20; i++ {
		p := randG1(rng)
		q := randG1(rng)
		r := randG1(rng)

		// Commutativity.
		var pq, qp G1Jac
		pq.Set(&p)
		pq.AddAssign(&q)
		qp.Set(&q)
		qp.AddAssign(&p)
		if !pq.Equal(&qp) {
			t.Fatal("G1 addition not commutative")
		}

		// Associativity.
		var l, rr G1Jac
		l.Set(&p)
		l.AddAssign(&q)
		l.AddAssign(&r)
		rr.Set(&q)
		rr.AddAssign(&r)
		rr.AddAssign(&p)
		if !l.Equal(&rr) {
			t.Fatal("G1 addition not associative")
		}

		// Inverse.
		var neg, sum G1Jac
		neg.Neg(&p)
		sum.Set(&p)
		sum.AddAssign(&neg)
		if !sum.IsInfinity() {
			t.Fatal("p + (-p) != infinity")
		}

		// Double == add self.
		var dbl, addSelf G1Jac
		dbl.Double(&p)
		addSelf.Set(&p)
		addSelf.AddAssign(&p)
		if !dbl.Equal(&addSelf) {
			t.Fatal("2p != p+p")
		}

		// Identity.
		var inf G1Jac
		inf.SetInfinity()
		var pi G1Jac
		pi.Set(&p)
		pi.AddAssign(&inf)
		if !pi.Equal(&p) {
			t.Fatal("p + 0 != p")
		}
	}
}

func TestG1MixedAddMatchesJacobian(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		p := randG1(rng)
		q := randG1(rng)
		var qAff G1Affine
		qAff.FromJacobian(&q)

		var viaMixed, viaJac G1Jac
		viaMixed.Set(&p)
		viaMixed.AddMixed(&qAff)
		viaJac.Set(&p)
		viaJac.AddAssign(&q)
		if !viaMixed.Equal(&viaJac) {
			t.Fatal("mixed add mismatch")
		}
	}
	// Edge: mixed add of the same point must double.
	p := randG1(rng)
	var pAff G1Affine
	pAff.FromJacobian(&p)
	var viaMixed, viaDbl G1Jac
	viaMixed.Set(&p)
	viaMixed.AddMixed(&pAff)
	viaDbl.Double(&p)
	if !viaMixed.Equal(&viaDbl) {
		t.Fatal("mixed add doubling fallback broken")
	}
}

func TestG1ScalarMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := G1Generator()
	a := randFr(rng)
	b := randFr(rng)
	var ab fr.Element
	ab.Add(&a, &b)

	var pa, pb, pab, sum G1Jac
	pa.ScalarMul(&g, &a)
	pb.ScalarMul(&g, &b)
	pab.ScalarMul(&g, &ab)
	sum.Set(&pa)
	sum.AddAssign(&pb)
	if !pab.Equal(&sum) {
		t.Fatal("(a+b)G != aG + bG")
	}
}

func TestG2GroupLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 10; i++ {
		p := randG2(rng)
		q := randG2(rng)

		var pq, qp G2Jac
		pq.Set(&p)
		pq.AddAssign(&q)
		qp.Set(&q)
		qp.AddAssign(&p)
		if !pq.Equal(&qp) {
			t.Fatal("G2 addition not commutative")
		}

		var neg, sum G2Jac
		neg.Neg(&p)
		sum.Set(&p)
		sum.AddAssign(&neg)
		if !sum.IsInfinity() {
			t.Fatal("G2: p + (-p) != infinity")
		}

		var dbl, addSelf G2Jac
		dbl.Double(&p)
		addSelf.Set(&p)
		addSelf.AddAssign(&p)
		if !dbl.Equal(&addSelf) {
			t.Fatal("G2: 2p != p+p")
		}
	}
}

func TestG2ScalarMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := G2Generator()
	a := randFr(rng)
	b := randFr(rng)
	var ab fr.Element
	ab.Add(&a, &b)

	var pa, pb, pab, sum G2Jac
	pa.ScalarMul(&g, &a)
	pb.ScalarMul(&g, &b)
	pab.ScalarMul(&g, &ab)
	sum.Set(&pa)
	sum.AddAssign(&pb)
	if !pab.Equal(&sum) {
		t.Fatal("G2: (a+b)G != aG + bG")
	}
}

func TestMultiExpG1MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for _, n := range []int{0, 1, 2, 5, 33, 200} {
		points := make([]G1Affine, n)
		scalars := make([]fr.Element, n)
		var want G1Jac
		want.SetInfinity()
		for i := 0; i < n; i++ {
			p := randG1(rng)
			points[i].FromJacobian(&p)
			scalars[i] = randFr(rng)
			var term G1Jac
			term.ScalarMul(&p, &scalars[i])
			want.AddAssign(&term)
		}
		got := MultiExpG1(points, scalars)
		if !got.Equal(&want) {
			t.Fatalf("MSM G1 mismatch at n=%d", n)
		}
	}
}

func TestMultiExpG1ZeroScalarsAndInfinities(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	points := make([]G1Affine, 10)
	scalars := make([]fr.Element, 10)
	for i := range points {
		p := randG1(rng)
		points[i].FromJacobian(&p)
		if i%2 == 0 {
			scalars[i].SetZero()
		} else {
			scalars[i] = randFr(rng)
		}
	}
	points[3] = G1Affine{} // infinity
	var want G1Jac
	want.SetInfinity()
	for i := range points {
		var pj, term G1Jac
		pj.FromAffine(&points[i])
		term.ScalarMul(&pj, &scalars[i])
		want.AddAssign(&term)
	}
	got := MultiExpG1(points, scalars)
	if !got.Equal(&want) {
		t.Fatal("MSM with zeros mismatch")
	}
}

func TestMultiExpG2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 20
	points := make([]G2Affine, n)
	scalars := make([]fr.Element, n)
	var want G2Jac
	want.SetInfinity()
	for i := 0; i < n; i++ {
		p := randG2(rng)
		points[i].FromJacobian(&p)
		scalars[i] = randFr(rng)
		var term G2Jac
		term.ScalarMul(&p, &scalars[i])
		want.AddAssign(&term)
	}
	got := MultiExpG2(points, scalars)
	if !got.Equal(&want) {
		t.Fatal("MSM G2 mismatch")
	}
}

func TestFixedBaseTableG1(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	g := G1Generator()
	table := NewG1FixedBaseTable(&g)
	for i := 0; i < 20; i++ {
		k := randFr(rng)
		got := table.Mul(&k)
		var want G1Jac
		want.ScalarMul(&g, &k)
		if !got.Equal(&want) {
			t.Fatal("fixed-base G1 mismatch")
		}
	}
	// Batch path.
	ks := make([]fr.Element, 17)
	for i := range ks {
		ks[i] = randFr(rng)
	}
	batch := table.MulBatch(ks)
	for i := range ks {
		var want G1Jac
		want.ScalarMul(&g, &ks[i])
		var wantAff G1Affine
		wantAff.FromJacobian(&want)
		if !batch[i].Equal(&wantAff) {
			t.Fatal("fixed-base G1 batch mismatch")
		}
	}
}

func TestFixedBaseTableG2(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	g := G2Generator()
	table := NewG2FixedBaseTable(&g)
	for i := 0; i < 5; i++ {
		k := randFr(rng)
		got := table.Mul(&k)
		var want G2Jac
		want.ScalarMul(&g, &k)
		if !got.Equal(&want) {
			t.Fatal("fixed-base G2 mismatch")
		}
	}
}

func TestG1CompressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 50; i++ {
		p := randG1(rng)
		var aff G1Affine
		aff.FromJacobian(&p)
		enc := aff.Bytes()
		var dec G1Affine
		if err := dec.SetBytes(enc[:]); err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(&aff) {
			t.Fatal("G1 compression round trip failed")
		}
	}
	// Infinity.
	var inf G1Affine
	enc := inf.Bytes()
	var dec G1Affine
	if err := dec.SetBytes(enc[:]); err != nil {
		t.Fatal(err)
	}
	if !dec.IsInfinity() {
		t.Fatal("infinity round trip failed")
	}
	// Garbage.
	var bad G1Affine
	if err := bad.SetBytes(make([]byte, 5)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestG2CompressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 10; i++ {
		p := randG2(rng)
		var aff G2Affine
		aff.FromJacobian(&p)
		enc := aff.Bytes()
		var dec G2Affine
		if err := dec.SetBytes(enc[:]); err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(&aff) {
			t.Fatal("G2 compression round trip failed")
		}
	}
}

func TestBatchJacToAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]G1Jac, 9)
	for i := range pts {
		if i == 4 {
			pts[i].SetInfinity()
			continue
		}
		pts[i] = randG1(rng)
	}
	affs := BatchJacToAffineG1(pts)
	for i := range pts {
		var want G1Affine
		want.FromJacobian(&pts[i])
		if !affs[i].Equal(&want) {
			t.Fatalf("batch affine conversion wrong at %d", i)
		}
	}
}

func TestScalarMulWNAFMatchesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := G1Generator()
	for i := 0; i < 30; i++ {
		k := randFr(rng)
		var want, got G1Jac
		want.scalarMulBinary(&g, &k)
		got.ScalarMulWNAF(&g, &k)
		if !want.Equal(&got) {
			t.Fatalf("wNAF G1 mismatch at %d", i)
		}
	}
	// Edge cases: zero scalar, small scalars, infinity base.
	var zero fr.Element
	var p G1Jac
	p.ScalarMulWNAF(&g, &zero)
	if !p.IsInfinity() {
		t.Fatal("0·G != infinity")
	}
	for _, small := range []uint64{1, 2, 3, 15, 16, 17} {
		var k fr.Element
		k.SetUint64(small)
		var want, got G1Jac
		want.scalarMulBinary(&g, &k)
		got.ScalarMulWNAF(&g, &k)
		if !want.Equal(&got) {
			t.Fatalf("wNAF G1 mismatch for scalar %d", small)
		}
	}
	var inf G1Jac
	inf.SetInfinity()
	k := randFr(rng)
	p.ScalarMulWNAF(&inf, &k)
	if !p.IsInfinity() {
		t.Fatal("k·infinity != infinity")
	}
}

func TestScalarMulWNAFG2MatchesBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := G2Generator()
	for i := 0; i < 10; i++ {
		k := randFr(rng)
		var want, got G2Jac
		want.scalarMulBinary(&g, &k)
		got.ScalarMulWNAF(&g, &k)
		if !want.Equal(&got) {
			t.Fatalf("wNAF G2 mismatch at %d", i)
		}
	}
}

func TestWNAFDigitsReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for i := 0; i < 50; i++ {
		k := new(big.Int).Rand(rng, GroupOrder())
		digits := wnafDigits(k, 4)
		got := big.NewInt(0)
		for j := len(digits) - 1; j >= 0; j-- {
			got.Lsh(got, 1)
			got.Add(got, big.NewInt(int64(digits[j])))
		}
		if got.Cmp(k) != 0 {
			t.Fatal("wNAF digits do not reconstruct the scalar")
		}
		for _, d := range digits {
			if d != 0 && d%2 == 0 {
				t.Fatal("non-zero wNAF digit is even")
			}
			if d > 15 || d < -15 {
				t.Fatal("wNAF digit out of range")
			}
		}
	}
}
