package curve

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/par"
)

// Streamed (out-of-core) MSM: the scalar side of a multi-exponentiation
// is small (32 B/scalar) and stays in RAM, but the base points (64 B in
// G1, 128 B in G2, and there are three point queries per wire in a
// Groth16 proving key) dominate memory at paper scale. The streamed
// driver consumes bases from a caller-supplied source in bounded chunks:
//
//	total = Σ_chunks Pippenger(points[chunk], digits[chunk])
//
// MSM linearity makes the chunk decomposition exact — the group element
// is identical to the one-shot MSM, so streamed and in-memory Groth16
// proofs are byte-identical after affine normalization.
//
// Chunks are double-buffered: a prefetch goroutine reads and decodes
// chunk i+1 while the Pippenger core runs on chunk i, overlapping disk
// latency with compute. Peak point memory is 2·chunk points plus one
// chunk's bucket pool, independent of the MSM size.

// DefaultStreamChunk is the default number of points per streamed-MSM
// chunk: 8192 G1 points ≈ 512 KiB of decoded bases (1 MiB in G2).
// Sized by measurement at paper scale: halving from 16384 trims ~4 MB
// of peak prover RSS (two double-buffered windows plus the raw read
// buffer, G1 and G2) for no measurable prove-time cost, while halving
// again costs ~25% prove time for under 1 MB — the bucket reduction
// stops amortizing.
const DefaultStreamChunk = 1 << 13

// streamChunkSize normalizes a caller-supplied chunk size the way the
// streamed driver does: non-positive selects the default, and a chunk
// larger than the MSM is clamped to it.
func streamChunkSize(n, chunk int) int {
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	if chunk > n {
		chunk = n
	}
	return chunk
}

// G1Source fills dst with the MSM base points [start, start+len(dst)).
// Implementations need not be safe for concurrent calls — the streamed
// driver invokes the source serially from one prefetch goroutine.
type G1Source func(dst []G1Affine, start int) error

// G2Source is the G2 counterpart of G1Source.
type G2Source func(dst []G2Affine, start int) error

// multiExpStream runs the shared chunked MSM: it pulls bounded point
// chunks from src (prefetching one chunk ahead) and folds the per-chunk
// Pippenger partial sums. digits supplies the recoded scalars for one
// chunk — either a zero-copy view into a whole-vector decomposition or
// a fresh per-chunk recoding (identical digits either way, since the
// signed-digit recoding never crosses scalar boundaries).
//
// tr, when non-nil, records one span per chunk read (on its own lane —
// reads overlap compute), per scalar recode, and per chunk MSM under
// label — exposing whether a streamed prove is disk-bound or
// compute-bound. The nil path costs one nil check per chunk.
func multiExpStream[A, J any, CV msmCurve[A, J]](cv CV, src func(dst []A, start int) error, n int, digits func(start, end int) *ScalarDecomposition, chunk int, tr *obs.Trace, label string) (J, error) {
	sum := cv.infinity()
	if n == 0 {
		return sum, nil
	}
	chunk = streamChunkSize(n, chunk)

	var readName, recodeName, msmName string
	var readLane int
	if tr != nil {
		readName, recodeName, msmName = label+"/read", label+"/recode", label+"/msm"
		readLane = tr.NextLane()
	}

	type filled struct {
		buf        []A
		start, end int
		err        error
	}
	fills := make(chan filled)
	free := make(chan []A, 2)
	free <- make([]A, chunk)
	free <- make([]A, chunk)
	go func() {
		defer close(fills)
		for start := 0; start < n; start += chunk {
			end := start + chunk
			if end > n {
				end = n
			}
			buf := <-free
			var sp *obs.Span
			if tr != nil {
				sp = tr.SpanLane(readName, readLane)
			}
			err := src(buf[:end-start], start)
			sp.End()
			fills <- filled{buf: buf, start: start, end: end, err: err}
			if err != nil {
				return // consumer stops at the error; nothing more to send
			}
		}
	}()
	for f := range fills {
		if f.err != nil {
			return sum, fmt.Errorf("curve: streamed MSM read at %d: %w", f.start, f.err)
		}
		var sp *obs.Span
		if tr != nil {
			sp = tr.Span(recodeName)
		}
		dec := digits(f.start, f.end)
		sp.End()
		if tr != nil {
			sp = tr.Span(msmName)
		}
		// Each chunk resolves the accelerator at dispatch time, so a
		// backend registered mid-stream picks up the remaining chunks and
		// an out-of-process backend serves out-of-core proves unchanged.
		part := cv.accelerated(ActiveAccelerator(), f.buf[:f.end-f.start], dec)
		sp.End()
		free <- f.buf
		cv.add(&sum, &part)
	}
	return sum, nil
}

// MultiExpG1Stream computes Σ kᵢ·Pᵢ where the points arrive from src in
// bounded chunks instead of living in RAM. The decomposition covers the
// full scalar vector (its Len is the MSM size); pick the window width
// for the chunk size, not the total size — each chunk runs its own
// Pippenger pass. The result equals MultiExpG1 on the same inputs.
func MultiExpG1Stream(src G1Source, dec *ScalarDecomposition, chunk int) (G1Jac, error) {
	return multiExpStream[G1Affine, G1Jac](g1Msm{}, src, dec.n, dec.Slice, chunk, nil, "")
}

// MultiExpG2Stream is the G2 counterpart of MultiExpG1Stream.
func MultiExpG2Stream(src G2Source, dec *ScalarDecomposition, chunk int) (G2Jac, error) {
	return multiExpStream[G2Affine, G2Jac](g2Msm{}, src, dec.n, dec.Slice, chunk, nil, "")
}

// decPool recycles per-chunk recode buffers across streamed MSMs: one
// proof runs five of them back to back (A, B1, B2, K, Z) and a
// long-lived prover runs many proofs, so without pooling every MSM
// call re-grows a digits table only to drop it. The pooled object's
// digit storage is reused by decomposeScalarsInto whenever it is large
// enough; digits are fully overwritten per chunk, so results are
// unchanged. The pool holds a handful of chunk-sized int16 tables
// (tens of KB each at DefaultStreamChunk) and the GC clears it under
// pressure.
var decPool sync.Pool

func getDecomposition() *ScalarDecomposition {
	if d, ok := decPool.Get().(*ScalarDecomposition); ok {
		return d
	}
	return &ScalarDecomposition{}
}

func putDecomposition(d *ScalarDecomposition) {
	if d != nil {
		decPool.Put(d)
	}
}

// scalarChunkPool recycles the scalar read buffers of the
// scalar-source MSM variants the same way.
var scalarChunkPool sync.Pool

func getScalarChunk(n int) []fr.Element {
	if p, ok := scalarChunkPool.Get().(*[]fr.Element); ok && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]fr.Element, n)
}

func putScalarChunk(s []fr.Element) {
	scalarChunkPool.Put(&s)
}

// MultiExpG1StreamScalars is MultiExpG1Stream with lazy scalar recoding:
// instead of a whole-vector decomposition (two digit bytes per window
// per scalar — tens of MB at paper scale), each chunk's scalars are
// recoded with window width c just before its Pippenger pass. Digits are
// identical to the eager path because the signed-digit recoding is
// per-scalar, so the result (and any proof built from it) is unchanged;
// only the resident digit memory drops to one chunk's worth.
func MultiExpG1StreamScalars(src G1Source, scalars []fr.Element, c, chunk int) (G1Jac, error) {
	return MultiExpG1StreamScalarsTraced(src, scalars, c, chunk, nil, "")
}

// MultiExpG1StreamScalarsTraced is MultiExpG1StreamScalars recording
// per-chunk read/recode/MSM spans on tr under label (nil tr is the
// untraced fast path).
func MultiExpG1StreamScalarsTraced(src G1Source, scalars []fr.Element, c, chunk int, tr *obs.Trace, label string) (G1Jac, error) {
	reuse := getDecomposition()
	defer func() { putDecomposition(reuse) }()
	return multiExpStream[G1Affine, G1Jac](g1Msm{}, src, len(scalars), func(start, end int) *ScalarDecomposition {
		// The driver consumes each chunk's digits before requesting the
		// next, so one digit buffer serves every chunk.
		reuse = decomposeScalarsInto(reuse, scalars[start:end], c)
		return reuse
	}, chunk, tr, label)
}

// ScalarSource fills dst with the MSM scalars [start, start+len(dst)) —
// the scalar-side analogue of G1Source, for MSMs whose scalars live
// out-of-core too (e.g. a spilled quotient polynomial). Called serially
// by the streamed driver.
type ScalarSource func(dst []fr.Element, start int) error

// MultiExpG1StreamScalarSource is MultiExpG1StreamScalars with the
// scalars also arriving from a source instead of RAM: each chunk's
// scalars are loaded into a reused buffer and recoded just before its
// Pippenger pass, so neither side of the MSM is ever fully resident.
// The result equals MultiExpG1 on the same inputs.
func MultiExpG1StreamScalarSource(src G1Source, scalars ScalarSource, n, c, chunk int) (G1Jac, error) {
	return MultiExpG1StreamScalarSourceTraced(src, scalars, n, c, chunk, nil, "")
}

// MultiExpG1StreamScalarSourceTraced is MultiExpG1StreamScalarSource
// with per-chunk span recording (the scalar-file read is folded into
// the recode span — both sit between chunks on the consumer side).
func MultiExpG1StreamScalarSourceTraced(src G1Source, scalars ScalarSource, n, c, chunk int, tr *obs.Trace, label string) (G1Jac, error) {
	reuse := getDecomposition()
	defer func() { putDecomposition(reuse) }()
	sbuf := getScalarChunk(streamChunkSize(n, chunk))
	defer putScalarChunk(sbuf)
	var srcErr error
	res, err := multiExpStream[G1Affine, G1Jac](g1Msm{}, src, n, func(start, end int) *ScalarDecomposition {
		if cap(sbuf) < end-start {
			sbuf = make([]fr.Element, end-start)
		}
		s := sbuf[:end-start]
		if srcErr == nil {
			if err := scalars(s, start); err != nil {
				srcErr = fmt.Errorf("curve: streamed MSM scalar read at %d: %w", start, err)
			}
		}
		if srcErr != nil {
			clear(s) // keep the doomed pass harmless; the error surfaces below
		}
		reuse = decomposeScalarsInto(reuse, s, c)
		return reuse
	}, chunk, tr, label)
	if err == nil {
		err = srcErr
	}
	return res, err
}

// MultiExpG2StreamScalars is the G2 counterpart of MultiExpG1StreamScalars.
func MultiExpG2StreamScalars(src G2Source, scalars []fr.Element, c, chunk int) (G2Jac, error) {
	return MultiExpG2StreamScalarsTraced(src, scalars, c, chunk, nil, "")
}

// MultiExpG2StreamScalarsTraced is the G2 counterpart of
// MultiExpG1StreamScalarsTraced.
func MultiExpG2StreamScalarsTraced(src G2Source, scalars []fr.Element, c, chunk int, tr *obs.Trace, label string) (G2Jac, error) {
	reuse := getDecomposition()
	defer func() { putDecomposition(reuse) }()
	return multiExpStream[G2Affine, G2Jac](g2Msm{}, src, len(scalars), func(start, end int) *ScalarDecomposition {
		reuse = decomposeScalarsInto(reuse, scalars[start:end], c)
		return reuse
	}, chunk, tr, label)
}

// MultiExpG2StreamScalarSource is the G2 counterpart of
// MultiExpG1StreamScalarSource — bases and scalars both arrive from
// sources, so neither side is ever fully resident. Used for the B2
// wire-query MSM when the witness is spilled.
func MultiExpG2StreamScalarSource(src G2Source, scalars ScalarSource, n, c, chunk int) (G2Jac, error) {
	return MultiExpG2StreamScalarSourceTraced(src, scalars, n, c, chunk, nil, "")
}

// MultiExpG2StreamScalarSourceTraced is the G2 counterpart of
// MultiExpG1StreamScalarSourceTraced.
func MultiExpG2StreamScalarSourceTraced(src G2Source, scalars ScalarSource, n, c, chunk int, tr *obs.Trace, label string) (G2Jac, error) {
	reuse := getDecomposition()
	defer func() { putDecomposition(reuse) }()
	sbuf := getScalarChunk(streamChunkSize(n, chunk))
	defer putScalarChunk(sbuf)
	var srcErr error
	res, err := multiExpStream[G2Affine, G2Jac](g2Msm{}, src, n, func(start, end int) *ScalarDecomposition {
		if cap(sbuf) < end-start {
			sbuf = make([]fr.Element, end-start)
		}
		s := sbuf[:end-start]
		if srcErr == nil {
			if err := scalars(s, start); err != nil {
				srcErr = fmt.Errorf("curve: streamed MSM scalar read at %d: %w", start, err)
			}
		}
		if srcErr != nil {
			clear(s)
		}
		reuse = decomposeScalarsInto(reuse, s, c)
		return reuse
	}, chunk, tr, label)
	if err == nil {
		err = srcErr
	}
	return res, err
}

// StreamWindowSize picks the Pippenger window width for a streamed MSM
// of n total points walked in chunks of the given size: each chunk runs
// its own bucket accumulation and reduction, so the width that balances
// inserts against bucket scans is the chunk's, not the total's.
func StreamWindowSize(n, chunk int) int {
	return MSMWindowSize(streamChunkSize(n, chunk))
}

// NewG1RawSource returns a G1Source decoding the contiguous run of
// uncompressed (BytesRaw) points that starts at byte offset off in r —
// the layout of one proving-key query section in the raw key encoding.
// Decoding parallelizes across the chunk; the byte buffer is reused
// between calls, so the source must not be shared across goroutines.
func NewG1RawSource(r io.ReaderAt, off int64) G1Source {
	var raw []byte
	return func(dst []G1Affine, start int) error {
		need := len(dst) * G1UncompressedSize
		if cap(raw) < need {
			raw = make([]byte, need)
		}
		b := raw[:need]
		if _, err := r.ReadAt(b, off+int64(start)*G1UncompressedSize); err != nil {
			return err
		}
		return decodeRawChunk(len(dst), func(i int) error {
			return dst[i].SetBytesRaw(b[i*G1UncompressedSize : (i+1)*G1UncompressedSize])
		})
	}
}

// NewG2RawSource is the G2 counterpart of NewG1RawSource (128-byte
// uncompressed points).
func NewG2RawSource(r io.ReaderAt, off int64) G2Source {
	var raw []byte
	return func(dst []G2Affine, start int) error {
		need := len(dst) * G2UncompressedSize
		if cap(raw) < need {
			raw = make([]byte, need)
		}
		b := raw[:need]
		if _, err := r.ReadAt(b, off+int64(start)*G2UncompressedSize); err != nil {
			return err
		}
		return decodeRawChunk(len(dst), func(i int) error {
			return dst[i].SetBytesRaw(b[i*G2UncompressedSize : (i+1)*G2UncompressedSize])
		})
	}
}

// decodeRawChunk runs the per-point decode in parallel, keeping the
// first error observed.
func decodeRawChunk(n int, decode func(i int) error) error {
	var mu sync.Mutex
	var firstErr error
	par.Range(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := decode(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
		}
	})
	return firstErr
}

// SliceSourceG1 adapts an in-memory point slice to a G1Source — the
// degenerate source used by tests and by callers that already hold the
// points but want the bounded-memory accumulation path.
func SliceSourceG1(points []G1Affine) G1Source {
	return func(dst []G1Affine, start int) error {
		if start < 0 || start+len(dst) > len(points) {
			return errors.New("curve: slice source read out of range")
		}
		copy(dst, points[start:start+len(dst)])
		return nil
	}
}

// SliceSourceG2 adapts an in-memory point slice to a G2Source.
func SliceSourceG2(points []G2Affine) G2Source {
	return func(dst []G2Affine, start int) error {
		if start < 0 || start+len(dst) > len(points) {
			return errors.New("curve: slice source read out of range")
		}
		copy(dst, points[start:start+len(dst)])
		return nil
	}
}
