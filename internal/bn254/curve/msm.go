package curve

import (
	"runtime"
	"sync"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/par"
)

// msmWindowSize picks the Pippenger window width c for n points. The
// heuristic follows the usual cost model n/c additions per window times
// 256/c windows plus 2^c bucket work.
func msmWindowSize(n int) int {
	switch {
	case n < 8:
		return 2
	case n < 32:
		return 3
	case n < 128:
		return 4
	case n < 1024:
		return 6
	case n < 8192:
		return 8
	case n < 1<<17:
		return 10
	case n < 1<<21:
		return 12
	default:
		return 14
	}
}

// scalarWindow extracts the c-bit digit starting at bit offset from the
// little-endian limb representation.
func scalarWindow(limbs *[fr.Limbs]uint64, offset, c int) uint64 {
	limb := offset / 64
	shift := offset % 64
	if limb >= fr.Limbs {
		return 0
	}
	v := limbs[limb] >> shift
	if shift+c > 64 && limb+1 < fr.Limbs {
		v |= limbs[limb+1] << (64 - shift)
	}
	return v & ((1 << c) - 1)
}

// MultiExpG1 computes Σ scalars[i]·points[i] with a parallel Pippenger
// bucket method. Points and scalars must have equal length; zero scalars
// and infinity points are skipped naturally.
func MultiExpG1(points []G1Affine, scalars []fr.Element) G1Jac {
	var res G1Jac
	res.SetInfinity()
	n := len(points)
	if n == 0 {
		return res
	}
	if len(scalars) != n {
		panic("curve: MultiExpG1 length mismatch")
	}
	if n == 1 {
		var j G1Jac
		j.FromAffine(&points[0])
		j.ScalarMul(&j, &scalars[0])
		return j
	}

	c := msmWindowSize(n)
	numWindows := (fr.Bits + c) / c
	regular := make([][fr.Limbs]uint64, n)
	for i := range scalars {
		regular[i] = scalars[i].RegularLimbs()
	}

	windowSums := make([]G1Jac, numWindows)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for w := 0; w < numWindows; w++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(w int) {
			defer func() { <-sem; wg.Done() }()
			buckets := make([]G1Jac, (1<<c)-1)
			for b := range buckets {
				buckets[b].SetInfinity()
			}
			offset := w * c
			for i := 0; i < n; i++ {
				d := scalarWindow(&regular[i], offset, c)
				if d == 0 {
					continue
				}
				buckets[d-1].AddMixed(&points[i])
			}
			var acc, sum G1Jac
			acc.SetInfinity()
			sum.SetInfinity()
			for b := len(buckets) - 1; b >= 0; b-- {
				acc.AddAssign(&buckets[b])
				sum.AddAssign(&acc)
			}
			windowSums[w] = sum
		}(w)
	}
	wg.Wait()

	res = windowSums[numWindows-1]
	for w := numWindows - 2; w >= 0; w-- {
		for i := 0; i < c; i++ {
			res.DoubleAssign()
		}
		res.AddAssign(&windowSums[w])
	}
	return res
}

// MultiExpG2 computes Σ scalars[i]·points[i] over G2.
func MultiExpG2(points []G2Affine, scalars []fr.Element) G2Jac {
	var res G2Jac
	res.SetInfinity()
	n := len(points)
	if n == 0 {
		return res
	}
	if len(scalars) != n {
		panic("curve: MultiExpG2 length mismatch")
	}
	if n == 1 {
		var j G2Jac
		j.FromAffine(&points[0])
		j.ScalarMul(&j, &scalars[0])
		return j
	}

	c := msmWindowSize(n)
	numWindows := (fr.Bits + c) / c
	regular := make([][fr.Limbs]uint64, n)
	for i := range scalars {
		regular[i] = scalars[i].RegularLimbs()
	}

	windowSums := make([]G2Jac, numWindows)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for w := 0; w < numWindows; w++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(w int) {
			defer func() { <-sem; wg.Done() }()
			buckets := make([]G2Jac, (1<<c)-1)
			for b := range buckets {
				buckets[b].SetInfinity()
			}
			offset := w * c
			for i := 0; i < n; i++ {
				d := scalarWindow(&regular[i], offset, c)
				if d == 0 {
					continue
				}
				buckets[d-1].AddMixed(&points[i])
			}
			var acc, sum G2Jac
			acc.SetInfinity()
			sum.SetInfinity()
			for b := len(buckets) - 1; b >= 0; b-- {
				acc.AddAssign(&buckets[b])
				sum.AddAssign(&acc)
			}
			windowSums[w] = sum
		}(w)
	}
	wg.Wait()

	res = windowSums[numWindows-1]
	for w := numWindows - 2; w >= 0; w-- {
		for i := 0; i < c; i++ {
			res.DoubleAssign()
		}
		res.AddAssign(&windowSums[w])
	}
	return res
}

// fixedBaseWindow is the window width used by fixed-base tables: 8 bits
// trades a ~8k-point table for 32 mixed additions per scalar
// multiplication.
const fixedBaseWindow = 8

// G1FixedBaseTable precomputes multiples of a single base point so that
// many scalar multiplications of that base (the dominant cost of Groth16
// trusted setup) collapse to ~32 mixed additions each.
type G1FixedBaseTable struct {
	windows [][]G1Affine // windows[w][d-1] = (d << (8w))·base
}

// NewG1FixedBaseTable builds the table for the given base.
func NewG1FixedBaseTable(base *G1Jac) *G1FixedBaseTable {
	numWindows := (fr.Bits + fixedBaseWindow) / fixedBaseWindow
	t := &G1FixedBaseTable{windows: make([][]G1Affine, numWindows)}
	cur := *base
	for w := 0; w < numWindows; w++ {
		jacs := make([]G1Jac, (1<<fixedBaseWindow)-1)
		var acc G1Jac
		acc.SetInfinity()
		for d := 0; d < len(jacs); d++ {
			acc.AddAssign(&cur)
			jacs[d] = acc
		}
		t.windows[w] = BatchJacToAffineG1(jacs)
		// cur <<= 8
		for i := 0; i < fixedBaseWindow; i++ {
			cur.DoubleAssign()
		}
	}
	return t
}

// Mul returns k·base using the precomputed table.
func (t *G1FixedBaseTable) Mul(k *fr.Element) G1Jac {
	limbs := k.RegularLimbs()
	var res G1Jac
	res.SetInfinity()
	for w := range t.windows {
		d := scalarWindow(&limbs, w*fixedBaseWindow, fixedBaseWindow)
		if d == 0 {
			continue
		}
		res.AddMixed(&t.windows[w][d-1])
	}
	return res
}

// MulBatch computes k·base for every scalar in ks, in parallel, and
// returns the affine results.
func (t *G1FixedBaseTable) MulBatch(ks []fr.Element) []G1Affine {
	jacs := make([]G1Jac, len(ks))
	par.Range(len(ks), func(start, end int) {
		for i := start; i < end; i++ {
			jacs[i] = t.Mul(&ks[i])
		}
	})
	return BatchJacToAffineG1(jacs)
}

// G2FixedBaseTable is the G2 counterpart of G1FixedBaseTable.
type G2FixedBaseTable struct {
	windows [][]G2Affine
}

// NewG2FixedBaseTable builds the table for the given base.
func NewG2FixedBaseTable(base *G2Jac) *G2FixedBaseTable {
	numWindows := (fr.Bits + fixedBaseWindow) / fixedBaseWindow
	t := &G2FixedBaseTable{windows: make([][]G2Affine, numWindows)}
	cur := *base
	for w := 0; w < numWindows; w++ {
		jacs := make([]G2Jac, (1<<fixedBaseWindow)-1)
		var acc G2Jac
		acc.SetInfinity()
		for d := 0; d < len(jacs); d++ {
			acc.AddAssign(&cur)
			jacs[d] = acc
		}
		t.windows[w] = BatchJacToAffineG2(jacs)
		for i := 0; i < fixedBaseWindow; i++ {
			cur.DoubleAssign()
		}
	}
	return t
}

// Mul returns k·base using the precomputed table.
func (t *G2FixedBaseTable) Mul(k *fr.Element) G2Jac {
	limbs := k.RegularLimbs()
	var res G2Jac
	res.SetInfinity()
	for w := range t.windows {
		d := scalarWindow(&limbs, w*fixedBaseWindow, fixedBaseWindow)
		if d == 0 {
			continue
		}
		res.AddMixed(&t.windows[w][d-1])
	}
	return res
}

// MulBatch computes k·base for every scalar in ks, in parallel.
func (t *G2FixedBaseTable) MulBatch(ks []fr.Element) []G2Affine {
	jacs := make([]G2Jac, len(ks))
	par.Range(len(ks), func(start, end int) {
		for i := start; i < end; i++ {
			jacs[i] = t.Mul(&ks[i])
		}
	})
	return BatchJacToAffineG2(jacs)
}
