package curve

import (
	"strconv"
	"sync"
	"sync/atomic"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/obs"
	"zkrownn/internal/par"
)

// The multi-scalar multiplication Σ kᵢ·Pᵢ is the prover's dominant cost,
// so it gets the full production treatment:
//
//   - signed-digit recoding: window digits live in [-2^(c-1), 2^(c-1)]
//     instead of [0, 2^c), halving the bucket count per window (negative
//     digits add the negated point, a free transform in affine form);
//   - batch-affine buckets: bucket inserts are affine additions whose
//     chord/tangent denominators are inverted together (Montgomery's
//     trick), ~6 field muls amortized against ~15 for a Jacobian mixed
//     add;
//   - two-dimensional parallelism: work is split into point-chunks ×
//     windows and scheduled on par.Each, so the MSM keeps scaling past
//     the ~20-window ceiling of window-only parallelism;
//   - a precomputed-digit API (DecomposeScalars + MultiExp*Decomposed)
//     so a caller multiplying one scalar vector against several bases —
//     the Groth16 prover's A/B1/B2 queries — recodes the scalars once.
//
// One generic core (multiExp / msmAccumulate) drives both groups; G1 and
// G2 plug in only their leaf arithmetic (g1BatchAdder / g2BatchAdder and
// the Jacobian fold ops below).

// MSMWindowSize picks the Pippenger window width c for n points under
// signed-digit recoding (2^(c-1) buckets per window). The heuristic
// balances n inserts plus two bucket-scan additions per window against
// the ~254/c window count. Capped at 15 so digits fit int16.
func MSMWindowSize(n int) int {
	switch {
	case n < 8:
		return 3
	case n < 64:
		return 4
	case n < 256:
		return 5
	case n < 1024:
		return 7
	case n < 4096:
		return 8
	case n < 16384:
		return 9
	case n < 1<<16:
		return 11
	case n < 1<<18:
		return 12
	case n < 1<<20:
		return 13
	case n < 1<<22:
		return 14
	default:
		return 15
	}
}

// scalarWindow extracts the c-bit digit starting at bit offset from the
// little-endian limb representation.
func scalarWindow(limbs *[fr.Limbs]uint64, offset, c int) uint64 {
	limb := offset / 64
	shift := offset % 64
	if limb >= fr.Limbs {
		return 0
	}
	v := limbs[limb] >> shift
	if shift+c > 64 && limb+1 < fr.Limbs {
		v |= limbs[limb+1] << (64 - shift)
	}
	return v & ((1 << c) - 1)
}

// ScalarDecomposition holds the signed window digits of a scalar vector:
// the reusable half of an MSM. A decomposition computed once serves any
// number of MultiExp*Decomposed calls over bases of the same length — in
// either group, since digits depend only on the scalars.
type ScalarDecomposition struct {
	c       int
	windows int
	n       int
	// used counts the windows up to the highest nonzero digit. Real
	// witnesses are dominated by bit wires and small fixed-point values,
	// so their digits live in a handful of low windows — the MSM skips
	// the all-zero rest outright.
	used int
	// digits[w*stride+off+i] is scalar i's signed digit for window w, in
	// [-(2^(c-1)-1), 2^(c-1)]. off/stride exist so a Slice view can
	// address the digits of a scalar sub-range without copying — the
	// chunked/streamed MSM walks one full-vector recoding chunk by chunk.
	off    int
	stride int
	digits []int16
}

// C returns the window width the scalars were recoded at.
func (d *ScalarDecomposition) C() int { return d.c }

// Len returns the number of scalars in the decomposition.
func (d *ScalarDecomposition) Len() int { return d.n }

// row returns the digit row of window w for this view.
func (d *ScalarDecomposition) row(w int) []int16 {
	base := w*d.stride + d.off
	return d.digits[base : base+d.n]
}

// Slice returns a zero-copy view of the decomposition restricted to
// scalars [start, end). The view shares the underlying digit storage,
// so one full-vector recoding serves every chunk of a streamed MSM.
func (d *ScalarDecomposition) Slice(start, end int) *ScalarDecomposition {
	if start < 0 || end > d.n || start > end {
		panic("curve: ScalarDecomposition.Slice out of range")
	}
	s := *d
	s.off = d.off + start
	s.n = end - start
	return &s
}

// DecomposeScalars recodes scalars into signed c-bit window digits
// (2 ≤ c ≤ 15; use MSMWindowSize to pick c for a given size). Each
// window value v ∈ [0, 2^c] (window bits plus incoming carry) becomes
// v-2^c with a carry into the next window when v > 2^(c-1), so every
// digit needs only 2^(c-1) buckets. One extra top window absorbs the
// final carry; scalars are < 2^254, so recoding always terminates with
// carry zero.
func DecomposeScalars(scalars []fr.Element, c int) *ScalarDecomposition {
	return decomposeScalarsInto(nil, scalars, c)
}

// decomposeScalarsInto is DecomposeScalars reusing d's digit storage
// when it is large enough — the streamed MSM recodes thousands of
// chunks per proof, and a fresh digit table per chunk is pure GC churn.
// The digits written are identical to a fresh decomposition (recoding
// is per-scalar and every slot in the reused window rows is
// overwritten), so results are unchanged. Passing nil allocates.
func decomposeScalarsInto(d *ScalarDecomposition, scalars []fr.Element, c int) *ScalarDecomposition {
	if c < 2 || c > 15 {
		panic("curve: DecomposeScalars window width out of range [2,15]")
	}
	n := len(scalars)
	windows := (fr.Bits+c-1)/c + 1
	if d == nil || cap(d.digits) < windows*n {
		d = &ScalarDecomposition{digits: make([]int16, windows*n)}
	}
	d.c, d.windows, d.n, d.stride, d.off = c, windows, n, n, 0
	d.digits = d.digits[:windows*n]
	half := int64(1) << (c - 1)
	full := int64(1) << c
	var maxUsed atomic.Int64
	par.Range(n, func(start, end int) {
		localUsed := 0
		for i := start; i < end; i++ {
			limbs := scalars[i].RegularLimbs()
			carry := int64(0)
			for w := 0; w < windows; w++ {
				v := int64(scalarWindow(&limbs, w*c, c)) + carry
				carry = 0
				if v > half {
					v -= full
					carry = 1
				}
				d.digits[w*n+i] = int16(v)
				if v != 0 && w+1 > localUsed {
					localUsed = w + 1
				}
			}
		}
		for {
			cur := maxUsed.Load()
			if int64(localUsed) <= cur || maxUsed.CompareAndSwap(cur, int64(localUsed)) {
				break
			}
		}
	})
	d.used = int(maxUsed.Load())
	return d
}

// msmBatchSize caps the number of independent bucket additions gathered
// before one shared inversion, amortizing it to ~1.5 field muls per add
// while keeping the op queue cache-resident. The actual batch is scaled
// down to numBuckets/8 — a batch near the bucket count makes conflicts
// the common case and starves the scheduler.
const msmBatchSize = 512

// msmMinBatch is the smallest batch worth an inversion; below it (few
// buckets even after window grouping) the Jacobian path wins.
const msmMinBatch = 16

// msmGroupBuckets is the combined bucket-pool target for a window
// group: enough buckets that a full msmBatchSize batch stays mostly
// conflict-free (batch/pool = 1/16).
const msmGroupBuckets = 8192

// msmOverflowCap is the conflict queue's initial capacity. The queue
// holds ops whose bucket is already in the pending batch; every flush
// drains it into the next batch, so it hovers near the per-batch
// conflict count and growth past the cap is rare.
const msmOverflowCap = 512

// msmMinChunk is the minimum number of points per chunk: below this the
// per-chunk bucket allocation and reduction dominate the inserts.
const msmMinChunk = 512

// msmSerialThreshold is the point count under which the whole MSM runs
// on the calling goroutine — parallel dispatch overhead is a measurable
// fraction of a millisecond-scale MSM.
const msmSerialThreshold = 1024

// msmAffineThreshold is the point count under which the batch-affine
// machinery can't amortize its flush inversions and plain Jacobian
// bucket accumulation wins.
const msmAffineThreshold = 512

// batchOps is the leaf interface of the batch-affine accumulation,
// implemented by g1BatchAdder and g2BatchAdder.
type batchOps[A, J any] interface {
	isInfinity(p *A) bool
	negInto(dst, src *A)
	flush(buckets []A, idx []int32, pts []A)
	// addMixedJac folds one conflict-queue spill into a Jacobian side
	// bucket (p is already negated when the digit was negative).
	addMixedJac(dst *J, p *A)
}

// batchOp is one deferred bucket addition sitting in the conflict queue.
type batchOp[A any] struct {
	b  int32
	pt A
}

// msmAccumulate folds one chunk×window-group cell of points into
// signed-digit buckets. digitRows[g] holds the digits of the g-th window
// in the group, and that window owns the bucket segment
// [g·bucketsPerWindow, (g+1)·bucketsPerWindow): grouping narrow windows
// multiplies the bucket pool so batches stay large — one window of 256
// buckets can never amortize a 256-op batch, eight of them can.
//
// A flush requires distinct buckets (so its affine adds are
// independent); ops that would duplicate a pending bucket wait in an
// overflow queue and re-enter after the next flush, which keeps batches
// full — flushing on first conflict would cap them near √buckets by the
// birthday bound. Negative digits enqueue the negated point.
//
// Real witnesses repeat values (bit wires, shared constants), sending
// thousands of ops to one bucket; a queue alone would readmit one per
// flush and melt down quadratically. When the queue fills it is dumped
// into Jacobian side buckets instead — hot buckets degrade to exactly
// the plain-Jacobian cost while everything else stays batch-affine.
// The returned side buckets (nil when never needed) hold that spilled
// remainder; the caller folds them into the reduction.
func msmAccumulate[A, J any, AD batchOps[A, J]](adder AD, buckets []A, bucketsPerWindow int, points []A, digitRows [][]int16, pending []bool, idx []int32, pts []A) []J {
	cnt := 0
	overflow := make([]batchOp[A], 0, msmOverflowCap)
	var side []J
	drainToSide := func() {
		if side == nil {
			side = make([]J, len(buckets)) // zero Jacobian value has Z = 0: infinity
		}
		for k := range overflow {
			adder.addMixedJac(&side[overflow[k].b], &overflow[k].pt)
		}
		overflow = overflow[:0]
	}
	flush := func() {
		adder.flush(buckets, idx[:cnt], pts[:cnt])
		for _, b := range idx[:cnt] {
			pending[b] = false
		}
		cnt = 0
		// Re-admit queued ops; first occurrence of each bucket always
		// enters the fresh batch, so the queue strictly shrinks.
		kept := overflow[:0]
		for k := range overflow {
			o := &overflow[k]
			if pending[o.b] || cnt == len(idx) {
				kept = append(kept, *o)
				continue
			}
			pts[cnt] = o.pt
			idx[cnt] = o.b
			pending[o.b] = true
			cnt++
		}
		overflow = kept
	}
	for i := range points {
		if adder.isInfinity(&points[i]) {
			continue
		}
		for g := range digitRows {
			d := digitRows[g][i]
			if d == 0 {
				continue
			}
			b := int32(d)
			neg := false
			if b < 0 {
				b = -b
				neg = true
			}
			b += int32(g*bucketsPerWindow) - 1
			if pending[b] {
				op := batchOp[A]{b: b}
				if neg {
					adder.negInto(&op.pt, &points[i])
				} else {
					op.pt = points[i]
				}
				overflow = append(overflow, op)
				if len(overflow) >= msmOverflowCap {
					drainToSide()
				}
				continue
			}
			if neg {
				adder.negInto(&pts[cnt], &points[i])
			} else {
				pts[cnt] = points[i]
			}
			idx[cnt] = b
			pending[b] = true
			cnt++
			if cnt == len(idx) {
				flush()
			}
		}
	}
	// Final drain: one flush applies the open batch and re-admits what it
	// can; anything still queued is same-bucket repetition with no more
	// stream to amortize against, so it spills to the Jacobian side
	// rather than trickling out one op per inversion.
	for cnt > 0 {
		flush()
		if len(overflow) > 0 {
			drainToSide()
		}
	}
	return side
}

// msmCurve is the group-level interface of the shared Pippenger driver.
type msmCurve[A, J any] interface {
	// accumulator returns a closure over a fresh batch adder (whose
	// scratch persists across flushes) running msmAccumulate for this
	// group; the closure returns the Jacobian side buckets of spilled
	// conflict-queue ops (nil when none spilled).
	accumulator(batchSize int) func(buckets []A, bucketsPerWindow int, points []A, digitRows [][]int16, pending []bool, idx []int32, pts []A) []J
	// jacAccumulate folds digits into Jacobian buckets with mixed adds —
	// the small-MSM path, where batch-affine flushes can't amortize
	// their inversion.
	jacAccumulate(buckets []J, points []A, digits []int16)
	infinity() J
	// reduce sets sum = Σ_b (b+1)·buckets[b] with the usual running-sum
	// scan (affine buckets, so the inner add is mixed).
	reduce(buckets []A, sum *J)
	// jacReduce is reduce over Jacobian buckets.
	jacReduce(buckets []J, sum *J)
	add(dst, src *J)
	double(dst *J)
	// scratchPool recycles per-task bucket scratch (one homogeneous
	// *msmScratch[A, J] pool per curve): a streamed proof runs thousands
	// of chunk×window-group tasks, and allocating half-MB bucket arrays
	// per task is the prover's dominant GC churn.
	scratchPool() *sync.Pool
	// accelerated routes one pre-decomposed MSM to acc's entry point for
	// this group — how the streamed driver dispatches each chunk through
	// the registered Accelerator.
	accelerated(acc Accelerator, points []A, dec *ScalarDecomposition) J
}

// msmScratch is the recycled working set of one MSM task. Buckets are
// re-zeroed on reuse (the zero affine value is infinity, matching a
// fresh make); idx and pts need no clearing — the batch adder only
// reads the [0, cnt) prefix it wrote.
type msmScratch[A, J any] struct {
	bucketsJ []J
	bucketsA []A
	pending  []bool
	idx      []int32
	pts      []A
}

var g1ScratchPool, g2ScratchPool sync.Pool

// grow returns s[:n] with the backing array reallocated when too small,
// without zeroing retained contents — callers reset what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// msmTask is one cell of the driver's work decomposition: a point chunk
// crossed with a run of windows [w0, w1), accumulated batch-affine or
// Jacobian.
type msmTask struct {
	chunk  int
	w0, w1 int
	affine bool
}

// multiExp is the shared signed-digit Pippenger driver. Work splits
// two-dimensionally into point chunks × window groups; each cell owns
// its buckets and reduces them independently, and the final fold is a
// cheap serial pass over numChunks·numWindows partial sums.
//
// Narrow windows are grouped so one batch-affine pass owns several
// bucket segments at once: a single 256-bucket window can never keep a
// 256-op batch conflict-free, eight of them together can — and the
// group scans the point array once instead of once per window. The top
// windows see only the scalar's high-order sliver of bits, so their
// digits crowd a handful of buckets; they take the Jacobian path, as do
// small MSMs where flush inversions can't amortize.
//
// tr, when non-nil, records one span per chunk×window-group task under
// label on a pool of worker lanes — the per-window MSM attribution of
// the telemetry subsystem. The nil path adds only a nil check per task.
func multiExp[A, J any, CV msmCurve[A, J]](cv CV, points []A, dec *ScalarDecomposition, tr *obs.Trace, label string) J {
	n := len(points)
	res := cv.infinity()
	if n == 0 {
		return res
	}
	if n != dec.n {
		panic("curve: MultiExp decomposition length mismatch")
	}
	c := dec.c
	// All-zero top windows (small witness values) are skipped outright;
	// the Horner fold below never needs to double past the highest
	// nonzero digit.
	numWindows := dec.used
	if numWindows == 0 {
		return res
	}
	numBuckets := 1 << (c - 1)

	// Windows 0..wide-1 draw digits from the scalar's full range.
	wide := fr.Bits / c
	if wide > numWindows {
		wide = numWindows
	}

	group, batch := 1, 0
	useAffine := n >= msmAffineThreshold && wide > 0
	if useAffine {
		group = (msmGroupBuckets + numBuckets - 1) / numBuckets
		if group > wide {
			group = wide
		}
		batch = group * numBuckets / 16
		if batch > msmBatchSize {
			batch = msmBatchSize
		}
		if batch < msmMinBatch {
			useAffine = false
			group = 1
		}
	}

	taskCols := numWindows
	if useAffine {
		taskCols = (wide+group-1)/group + (numWindows - wide)
	}
	numChunks := 1
	if procs := par.Workers(); procs > taskCols {
		numChunks = (procs + taskCols - 1) / taskCols
	}
	if maxChunks := (n + msmMinChunk - 1) / msmMinChunk; numChunks > maxChunks {
		numChunks = maxChunks
	}
	chunkLen := (n + numChunks - 1) / numChunks

	tasks := make([]msmTask, 0, numChunks*taskCols)
	for ch := 0; ch < numChunks; ch++ {
		if useAffine {
			for w0 := 0; w0 < wide; w0 += group {
				w1 := w0 + group
				if w1 > wide {
					w1 = wide
				}
				tasks = append(tasks, msmTask{chunk: ch, w0: w0, w1: w1, affine: true})
			}
			for w := wide; w < numWindows; w++ {
				tasks = append(tasks, msmTask{chunk: ch, w0: w, w1: w + 1})
			}
		} else {
			for w := 0; w < numWindows; w++ {
				tasks = append(tasks, msmTask{chunk: ch, w0: w, w1: w + 1})
			}
		}
	}

	partials := make([]J, numChunks*numWindows)
	var lanes *obs.Lanes
	if tr != nil {
		lanes = tr.Lanes(par.Workers())
	}
	runTask := func(t int) {
		task := tasks[t]
		if lanes != nil {
			sp := lanes.Span(label + "/w" + strconv.Itoa(task.w0) + "-" + strconv.Itoa(task.w1) +
				"/c" + strconv.Itoa(task.chunk))
			defer sp.End()
		}
		start := task.chunk * chunkLen
		end := start + chunkLen
		if end > n {
			end = n
		}
		pointsChunk := points[start:end]
		sc, _ := cv.scratchPool().Get().(*msmScratch[A, J])
		if sc == nil {
			sc = &msmScratch[A, J]{}
		}
		defer cv.scratchPool().Put(sc)
		if !task.affine {
			w := task.w0
			sc.bucketsJ = grow(sc.bucketsJ, numBuckets)
			buckets := sc.bucketsJ
			for b := range buckets {
				buckets[b] = cv.infinity()
			}
			cv.jacAccumulate(buckets, pointsChunk, dec.row(w)[start:end])
			cv.jacReduce(buckets, &partials[task.chunk*numWindows+w])
			return
		}
		g := task.w1 - task.w0
		sc.bucketsA = grow(sc.bucketsA, g*numBuckets)
		buckets := sc.bucketsA
		clear(buckets) // zero value is affine infinity
		sc.pending = grow(sc.pending, g*numBuckets)
		pending := sc.pending
		clear(pending)
		sc.idx = grow(sc.idx, batch)
		sc.pts = grow(sc.pts, batch)
		idx, pts := sc.idx, sc.pts
		digitRows := make([][]int16, g)
		for j := 0; j < g; j++ {
			w := task.w0 + j
			digitRows[j] = dec.row(w)[start:end]
		}
		accumulate := cv.accumulator(batch)
		side := accumulate(buckets, numBuckets, pointsChunk, digitRows, pending, idx, pts)
		for j := 0; j < g; j++ {
			p := &partials[task.chunk*numWindows+task.w0+j]
			cv.reduce(buckets[j*numBuckets:(j+1)*numBuckets], p)
			if side != nil {
				var spill J
				cv.jacReduce(side[j*numBuckets:(j+1)*numBuckets], &spill)
				cv.add(p, &spill)
			}
		}
	}
	// Tiny MSMs finish in milliseconds serially; goroutine dispatch
	// would cost a measurable slice of that, so they stay inline.
	if n < msmSerialThreshold {
		for t := range tasks {
			runTask(t)
		}
	} else {
		par.Each(len(tasks), runTask)
	}

	// Horner fold over windows, most significant first; within a window,
	// chunk partials just add.
	for w := numWindows - 1; w >= 0; w-- {
		if w != numWindows-1 {
			for i := 0; i < c; i++ {
				cv.double(&res)
			}
		}
		for ch := 0; ch < numChunks; ch++ {
			cv.add(&res, &partials[ch*numWindows+w])
		}
	}
	return res
}

// g1Msm and g2Msm bind the generic driver to the concrete groups.
type g1Msm struct{}

func (g1Msm) accumulator(batchSize int) func([]G1Affine, int, []G1Affine, [][]int16, []bool, []int32, []G1Affine) []G1Jac {
	adder := newG1BatchAdder(batchSize)
	return func(buckets []G1Affine, bucketsPerWindow int, points []G1Affine, digitRows [][]int16, pending []bool, idx []int32, pts []G1Affine) []G1Jac {
		return msmAccumulate[G1Affine, G1Jac](adder, buckets, bucketsPerWindow, points, digitRows, pending, idx, pts)
	}
}

func (g1Msm) jacAccumulate(buckets []G1Jac, points []G1Affine, digits []int16) {
	for i := range digits {
		d := digits[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			buckets[d-1].AddMixed(&points[i])
		} else {
			var neg G1Affine
			neg.Neg(&points[i])
			buckets[-d-1].AddMixed(&neg)
		}
	}
}

func (g1Msm) infinity() G1Jac {
	var j G1Jac
	j.SetInfinity()
	return j
}

func (g1Msm) reduce(buckets []G1Affine, sum *G1Jac) {
	var acc G1Jac
	acc.SetInfinity()
	sum.SetInfinity()
	for b := len(buckets) - 1; b >= 0; b-- {
		acc.AddMixed(&buckets[b])
		sum.AddAssign(&acc)
	}
}

func (g1Msm) jacReduce(buckets []G1Jac, sum *G1Jac) {
	var acc G1Jac
	acc.SetInfinity()
	sum.SetInfinity()
	for b := len(buckets) - 1; b >= 0; b-- {
		acc.AddAssign(&buckets[b])
		sum.AddAssign(&acc)
	}
}

func (g1Msm) add(dst, src *G1Jac) { dst.AddAssign(src) }
func (g1Msm) double(dst *G1Jac)   { dst.DoubleAssign() }

func (g1Msm) scratchPool() *sync.Pool { return &g1ScratchPool }

func (g1Msm) accelerated(acc Accelerator, points []G1Affine, dec *ScalarDecomposition) G1Jac {
	return acc.MultiExpG1Decomposed(points, dec)
}

type g2Msm struct{}

func (g2Msm) accumulator(batchSize int) func([]G2Affine, int, []G2Affine, [][]int16, []bool, []int32, []G2Affine) []G2Jac {
	adder := newG2BatchAdder(batchSize)
	return func(buckets []G2Affine, bucketsPerWindow int, points []G2Affine, digitRows [][]int16, pending []bool, idx []int32, pts []G2Affine) []G2Jac {
		return msmAccumulate[G2Affine, G2Jac](adder, buckets, bucketsPerWindow, points, digitRows, pending, idx, pts)
	}
}

func (g2Msm) jacAccumulate(buckets []G2Jac, points []G2Affine, digits []int16) {
	for i := range digits {
		d := digits[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			buckets[d-1].AddMixed(&points[i])
		} else {
			var neg G2Affine
			neg.Neg(&points[i])
			buckets[-d-1].AddMixed(&neg)
		}
	}
}

func (g2Msm) infinity() G2Jac {
	var j G2Jac
	j.SetInfinity()
	return j
}

func (g2Msm) reduce(buckets []G2Affine, sum *G2Jac) {
	var acc G2Jac
	acc.SetInfinity()
	sum.SetInfinity()
	for b := len(buckets) - 1; b >= 0; b-- {
		acc.AddMixed(&buckets[b])
		sum.AddAssign(&acc)
	}
}

func (g2Msm) jacReduce(buckets []G2Jac, sum *G2Jac) {
	var acc G2Jac
	acc.SetInfinity()
	sum.SetInfinity()
	for b := len(buckets) - 1; b >= 0; b-- {
		acc.AddAssign(&buckets[b])
		sum.AddAssign(&acc)
	}
}

func (g2Msm) add(dst, src *G2Jac) { dst.AddAssign(src) }
func (g2Msm) double(dst *G2Jac)   { dst.DoubleAssign() }

func (g2Msm) scratchPool() *sync.Pool { return &g2ScratchPool }

func (g2Msm) accelerated(acc Accelerator, points []G2Affine, dec *ScalarDecomposition) G2Jac {
	return acc.MultiExpG2Decomposed(points, dec)
}

// MultiExpG1 computes Σ scalars[i]·points[i] with the registered
// Accelerator (by default the parallel signed-digit Pippenger method).
// Points and scalars must have equal length; zero scalars and infinity
// points are skipped naturally.
func MultiExpG1(points []G1Affine, scalars []fr.Element) G1Jac {
	return ActiveAccelerator().MultiExpG1(points, scalars)
}

// MultiExpG1Decomposed computes the G1 MSM against pre-recoded scalar
// digits, letting callers amortize DecomposeScalars across several bases
// (the Groth16 prover reuses one witness decomposition for the A, B1,
// and B2 queries).
func MultiExpG1Decomposed(points []G1Affine, dec *ScalarDecomposition) G1Jac {
	return ActiveAccelerator().MultiExpG1Decomposed(points, dec)
}

// MultiExpG2 computes Σ scalars[i]·points[i] over G2.
func MultiExpG2(points []G2Affine, scalars []fr.Element) G2Jac {
	return ActiveAccelerator().MultiExpG2(points, scalars)
}

// MultiExpG2Decomposed computes the G2 MSM against pre-recoded scalar
// digits (see MultiExpG1Decomposed).
func MultiExpG2Decomposed(points []G2Affine, dec *ScalarDecomposition) G2Jac {
	return ActiveAccelerator().MultiExpG2Decomposed(points, dec)
}

// MultiExpG1DecomposedTraced is MultiExpG1Decomposed recording an
// overall span (label) plus per-window task spans on tr. With a
// non-default Accelerator registered, the backend call is recorded as
// one opaque span (the Accelerator interface is trace-agnostic). A nil
// tr is exactly MultiExpG1Decomposed.
func MultiExpG1DecomposedTraced(points []G1Affine, dec *ScalarDecomposition, tr *obs.Trace, label string) G1Jac {
	if tr == nil {
		return MultiExpG1Decomposed(points, dec)
	}
	sp := tr.Span(label)
	defer sp.End()
	acc := ActiveAccelerator()
	if _, cpu := acc.(pippengerCPU); !cpu {
		return acc.MultiExpG1Decomposed(points, dec)
	}
	return multiExp[G1Affine, G1Jac](g1Msm{}, points, dec, tr, label)
}

// MultiExpG2DecomposedTraced is the G2 counterpart of
// MultiExpG1DecomposedTraced.
func MultiExpG2DecomposedTraced(points []G2Affine, dec *ScalarDecomposition, tr *obs.Trace, label string) G2Jac {
	if tr == nil {
		return MultiExpG2Decomposed(points, dec)
	}
	sp := tr.Span(label)
	defer sp.End()
	acc := ActiveAccelerator()
	if _, cpu := acc.(pippengerCPU); !cpu {
		return acc.MultiExpG2Decomposed(points, dec)
	}
	return multiExp[G2Affine, G2Jac](g2Msm{}, points, dec, tr, label)
}

// MultiExpG1Traced is MultiExpG1 with span recording (see
// MultiExpG1DecomposedTraced). The recoding cost is included in the
// overall span.
func MultiExpG1Traced(points []G1Affine, scalars []fr.Element, tr *obs.Trace, label string) G1Jac {
	if tr == nil {
		return MultiExpG1(points, scalars)
	}
	sp := tr.Span(label)
	defer sp.End()
	acc := ActiveAccelerator()
	if _, cpu := acc.(pippengerCPU); !cpu || len(points) < 2 {
		return acc.MultiExpG1(points, scalars)
	}
	if len(scalars) != len(points) {
		panic("curve: MultiExpG1 length mismatch")
	}
	return multiExp[G1Affine, G1Jac](g1Msm{}, points, DecomposeScalars(scalars, MSMWindowSize(len(points))), tr, label)
}

// fixedBaseWindow is the window width used by fixed-base tables: 8 bits
// trades a ~8k-point table for 32 mixed additions per scalar
// multiplication.
const fixedBaseWindow = 8

// G1FixedBaseTable precomputes multiples of a single base point so that
// many scalar multiplications of that base (the dominant cost of Groth16
// trusted setup) collapse to ~32 mixed additions each.
type G1FixedBaseTable struct {
	windows [][]G1Affine // windows[w][d-1] = (d << (8w))·base
}

// NewG1FixedBaseTable builds the table for the given base.
func NewG1FixedBaseTable(base *G1Jac) *G1FixedBaseTable {
	numWindows := (fr.Bits + fixedBaseWindow) / fixedBaseWindow
	t := &G1FixedBaseTable{windows: make([][]G1Affine, numWindows)}
	cur := *base
	for w := 0; w < numWindows; w++ {
		jacs := make([]G1Jac, (1<<fixedBaseWindow)-1)
		var acc G1Jac
		acc.SetInfinity()
		for d := 0; d < len(jacs); d++ {
			acc.AddAssign(&cur)
			jacs[d] = acc
		}
		t.windows[w] = BatchJacToAffineG1(jacs)
		// cur <<= 8
		for i := 0; i < fixedBaseWindow; i++ {
			cur.DoubleAssign()
		}
	}
	return t
}

// Mul returns k·base using the precomputed table.
func (t *G1FixedBaseTable) Mul(k *fr.Element) G1Jac {
	limbs := k.RegularLimbs()
	var res G1Jac
	res.SetInfinity()
	for w := range t.windows {
		d := scalarWindow(&limbs, w*fixedBaseWindow, fixedBaseWindow)
		if d == 0 {
			continue
		}
		res.AddMixed(&t.windows[w][d-1])
	}
	return res
}

// MulBatch computes k·base for every scalar in ks, in parallel, and
// returns the affine results.
func (t *G1FixedBaseTable) MulBatch(ks []fr.Element) []G1Affine {
	jacs := make([]G1Jac, len(ks))
	par.Range(len(ks), func(start, end int) {
		for i := start; i < end; i++ {
			jacs[i] = t.Mul(&ks[i])
		}
	})
	return BatchJacToAffineG1(jacs)
}

// G2FixedBaseTable is the G2 counterpart of G1FixedBaseTable.
type G2FixedBaseTable struct {
	windows [][]G2Affine
}

// NewG2FixedBaseTable builds the table for the given base.
func NewG2FixedBaseTable(base *G2Jac) *G2FixedBaseTable {
	numWindows := (fr.Bits + fixedBaseWindow) / fixedBaseWindow
	t := &G2FixedBaseTable{windows: make([][]G2Affine, numWindows)}
	cur := *base
	for w := 0; w < numWindows; w++ {
		jacs := make([]G2Jac, (1<<fixedBaseWindow)-1)
		var acc G2Jac
		acc.SetInfinity()
		for d := 0; d < len(jacs); d++ {
			acc.AddAssign(&cur)
			jacs[d] = acc
		}
		t.windows[w] = BatchJacToAffineG2(jacs)
		for i := 0; i < fixedBaseWindow; i++ {
			cur.DoubleAssign()
		}
	}
	return t
}

// Mul returns k·base using the precomputed table.
func (t *G2FixedBaseTable) Mul(k *fr.Element) G2Jac {
	limbs := k.RegularLimbs()
	var res G2Jac
	res.SetInfinity()
	for w := range t.windows {
		d := scalarWindow(&limbs, w*fixedBaseWindow, fixedBaseWindow)
		if d == 0 {
			continue
		}
		res.AddMixed(&t.windows[w][d-1])
	}
	return res
}

// MulBatch computes k·base for every scalar in ks, in parallel.
func (t *G2FixedBaseTable) MulBatch(ks []fr.Element) []G2Affine {
	jacs := make([]G2Jac, len(ks))
	par.Range(len(ks), func(start, end int) {
		for i := start; i < end; i++ {
			jacs[i] = t.Mul(&ks[i])
		}
	})
	return BatchJacToAffineG2(jacs)
}
