package curve

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

func BenchmarkG1Double(b *testing.B) {
	p := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DoubleAssign()
	}
}

func BenchmarkG1Add(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randG1(rng)
	q := randG1(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddAssign(&q)
	}
}

func BenchmarkG1AddMixed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := randG1(rng)
	q := randG1(rng)
	var qa G1Affine
	qa.FromJacobian(&q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddMixed(&qa)
	}
}

func BenchmarkG1ScalarMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := G1Generator()
	k := randFr(rng)
	var out G1Jac
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarMul(&p, &k)
	}
}

func benchmarkMSM(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(int64(n)))
	points := make([]G1Affine, n)
	scalars := make([]fr.Element, n)
	for i := 0; i < n; i++ {
		j := randG1(rng)
		points[i].FromJacobian(&j)
		scalars[i] = randFr(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MultiExpG1(points, scalars)
	}
}

func BenchmarkMSMG1_256(b *testing.B)  { benchmarkMSM(b, 256) }
func BenchmarkMSMG1_4096(b *testing.B) { benchmarkMSM(b, 4096) }

func BenchmarkFixedBaseMul(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := G1Generator()
	table := NewG1FixedBaseTable(&g)
	k := randFr(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.Mul(&k)
	}
}

func BenchmarkG1ScalarMulWNAF(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	p := G1Generator()
	k := randFr(rng)
	var out G1Jac
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarMulWNAF(&p, &k)
	}
}
