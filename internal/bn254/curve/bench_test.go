package curve

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"zkrownn/internal/bn254/fr"
)

func BenchmarkG1Double(b *testing.B) {
	p := G1Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DoubleAssign()
	}
}

func BenchmarkG1Add(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randG1(rng)
	q := randG1(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddAssign(&q)
	}
}

func BenchmarkG1AddMixed(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := randG1(rng)
	q := randG1(rng)
	var qa G1Affine
	qa.FromJacobian(&q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.AddMixed(&qa)
	}
}

func BenchmarkG1ScalarMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := G1Generator()
	k := randFr(rng)
	var out G1Jac
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarMul(&p, &k)
	}
}

// msmBenchG1Input builds n distinct points via a doubling chain (full
// per-point ScalarMuls would dominate setup at 2^16) plus uniform
// scalars.
func msmBenchG1Input(n int) ([]G1Affine, []fr.Element) {
	rng := rand.New(rand.NewSource(int64(n)))
	jacs := make([]G1Jac, n)
	cur := randG1(rng)
	for i := 0; i < n; i++ {
		jacs[i] = cur
		cur.DoubleAssign()
	}
	scalars := make([]fr.Element, n)
	for i := range scalars {
		scalars[i] = randFr(rng)
	}
	return BatchJacToAffineG1(jacs), scalars
}

// BenchmarkMSM is the multi-exponentiation benchmark family: size
// scaling over G1 and G2, core scaling at 2^16 points (the prover-shaped
// size), and the shared scalar recoding on its own. Compare across PRs
// before touching the MSM:
//
//	go test ./internal/bn254/curve/ -run '^$' -bench BenchmarkMSM
func BenchmarkMSM(b *testing.B) {
	for _, n := range []int{256, 4096, 1 << 16} {
		points, scalars := msmBenchG1Input(n)
		b.Run(fmt.Sprintf("G1/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = MultiExpG1(points, scalars)
			}
		})
	}

	{
		n := 4096
		rng := rand.New(rand.NewSource(int64(n)))
		jacs := make([]G2Jac, n)
		cur := randG2(rng)
		for i := 0; i < n; i++ {
			jacs[i] = cur
			cur.DoubleAssign()
		}
		points := BatchJacToAffineG2(jacs)
		scalars := make([]fr.Element, n)
		for i := range scalars {
			scalars[i] = randFr(rng)
		}
		b.Run(fmt.Sprintf("G2/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = MultiExpG2(points, scalars)
			}
		})
	}

	{
		n := 1 << 16
		points, scalars := msmBenchG1Input(n)
		b.Run(fmt.Sprintf("Decompose/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = DecomposeScalars(scalars, MSMWindowSize(n))
			}
		})
		for _, procs := range []int{1, 2, 4} {
			if procs > 2*runtime.NumCPU() && procs != 1 {
				continue
			}
			b.Run(fmt.Sprintf("G1/n=%d/procs=%d", n, procs), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				for i := 0; i < b.N; i++ {
					_ = MultiExpG1(points, scalars)
				}
			})
		}
	}
}

func BenchmarkFixedBaseMul(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := G1Generator()
	table := NewG1FixedBaseTable(&g)
	k := randFr(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = table.Mul(&k)
	}
}

func BenchmarkG1ScalarMulWNAF(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	p := G1Generator()
	k := randFr(rng)
	var out G1Jac
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.ScalarMulWNAF(&p, &k)
	}
}
