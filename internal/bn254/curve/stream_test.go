package curve

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// TestStreamMSMMatchesInMemory drives the chunked driver across sizes
// that straddle every chunk boundary — chunk−1 (single partial chunk),
// chunk (exactly one), chunk+1 (full chunk plus a 1-point tail),
// multiples, and non-powers-of-two — and asserts the streamed sum equals
// the one-shot in-memory MSM on the same witness-shaped inputs.
func TestStreamMSMMatchesInMemory(t *testing.T) {
	const chunk = 64
	rng := rand.New(rand.NewSource(401))
	for _, n := range []int{1, 2, chunk - 1, chunk, chunk + 1, 2*chunk - 1, 2 * chunk, 3*chunk + 17, 333} {
		points, scalars := msmTestVectors(rng, n)
		dec := DecomposeScalars(scalars, StreamWindowSize(n, chunk))

		want := MultiExpG1Decomposed(points, dec)
		got, err := MultiExpG1Stream(SliceSourceG1(points), dec, chunk)
		if err != nil {
			t.Fatalf("n=%d: streamed MSM: %v", n, err)
		}
		var wantAff, gotAff G1Affine
		wantAff.FromJacobian(&want)
		gotAff.FromJacobian(&got)
		if !gotAff.Equal(&wantAff) {
			t.Fatalf("n=%d: streamed G1 MSM diverges from in-memory", n)
		}
	}
}

// TestStreamMSMG2MatchesInMemory mirrors the G1 boundary sweep in G2,
// deriving points from random scalar multiples of the generator.
func TestStreamMSMG2MatchesInMemory(t *testing.T) {
	const chunk = 32
	rng := rand.New(rand.NewSource(402))
	gen := G2Generator()
	for _, n := range []int{chunk - 1, chunk, chunk + 1, 2*chunk + 5, 77} {
		points := make([]G2Affine, n)
		scalars := make([]fr.Element, n)
		for i := range points {
			var k fr.Element
			if _, err := k.SetRandom(rng); err != nil {
				t.Fatal(err)
			}
			var j G2Jac
			j.ScalarMul(&gen, &k)
			points[i].FromJacobian(&j)
			if _, err := scalars[i].SetRandom(rng); err != nil {
				t.Fatal(err)
			}
		}
		// Mix in edge scalars so the recoding's carry paths run.
		scalars[0].SetZero()
		if n > 1 {
			scalars[1].SetOne()
			scalars[1].Neg(&scalars[1])
		}

		dec := DecomposeScalars(scalars, StreamWindowSize(n, chunk))
		want := MultiExpG2Decomposed(points, dec)
		got, err := MultiExpG2Stream(SliceSourceG2(points), dec, chunk)
		if err != nil {
			t.Fatalf("n=%d: streamed MSM: %v", n, err)
		}
		var wantAff, gotAff G2Affine
		wantAff.FromJacobian(&want)
		gotAff.FromJacobian(&got)
		if !gotAff.Equal(&wantAff) {
			t.Fatalf("n=%d: streamed G2 MSM diverges from in-memory", n)
		}
	}
}

// TestStreamMSMRawSource runs the full disk-shaped path: points encoded
// with BytesRaw into one contiguous section (with a nonzero offset, as
// in a proving-key file), decoded back through NewG1RawSource chunk by
// chunk.
func TestStreamMSMRawSource(t *testing.T) {
	const chunk = 48
	rng := rand.New(rand.NewSource(403))
	n := 3*chunk + 5
	points, scalars := msmTestVectors(rng, n)

	var buf bytes.Buffer
	buf.WriteString("hdr-padding") // non-zero section offset
	off := int64(buf.Len())
	for i := range points {
		b := points[i].BytesRaw()
		buf.Write(b[:])
	}

	dec := DecomposeScalars(scalars, StreamWindowSize(n, chunk))
	want := MultiExpG1Decomposed(points, dec)
	got, err := MultiExpG1Stream(NewG1RawSource(bytes.NewReader(buf.Bytes()), off), dec, chunk)
	if err != nil {
		t.Fatalf("raw-source streamed MSM: %v", err)
	}
	var wantAff, gotAff G1Affine
	wantAff.FromJacobian(&want)
	gotAff.FromJacobian(&got)
	if !gotAff.Equal(&wantAff) {
		t.Fatal("raw-source streamed MSM diverges from in-memory")
	}
}

// TestStreamMSMWindowWidthIndependence checks the linchpin of the
// streamed/in-memory proof identity: the group element is the same no
// matter how the MSM is chunked or which window width recodes the
// scalars, because affine normalization is canonical.
func TestStreamMSMWindowWidthIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	n := 150
	points, scalars := msmTestVectors(rng, n)
	ref := MultiExpG1(points, scalars)
	var refAff G1Affine
	refAff.FromJacobian(&ref)

	for _, c := range []int{3, 7, 11} {
		for _, chunk := range []int{16, 64, 1024} {
			dec := DecomposeScalars(scalars, c)
			got, err := MultiExpG1Stream(SliceSourceG1(points), dec, chunk)
			if err != nil {
				t.Fatalf("c=%d chunk=%d: %v", c, chunk, err)
			}
			var gotAff G1Affine
			gotAff.FromJacobian(&got)
			if !gotAff.Equal(&refAff) {
				t.Fatalf("c=%d chunk=%d: streamed MSM diverges", c, chunk)
			}
		}
	}
}

// TestStreamMSMLazyRecodingMatchesEager checks the lazy per-chunk
// scalar recoding path against both the eager streamed path and the
// one-shot MSM, in G1 and G2, across chunk-straddling sizes.
func TestStreamMSMLazyRecodingMatchesEager(t *testing.T) {
	const chunk = 64
	rng := rand.New(rand.NewSource(407))
	for _, n := range []int{1, chunk - 1, chunk, chunk + 1, 3*chunk + 17} {
		points, scalars := msmTestVectors(rng, n)
		c := StreamWindowSize(n, chunk)
		dec := DecomposeScalars(scalars, c)

		eager, err := MultiExpG1Stream(SliceSourceG1(points), dec, chunk)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := MultiExpG1StreamScalars(SliceSourceG1(points), scalars, c, chunk)
		if err != nil {
			t.Fatal(err)
		}
		var eagerAff, lazyAff G1Affine
		eagerAff.FromJacobian(&eager)
		lazyAff.FromJacobian(&lazy)
		if !lazyAff.Equal(&eagerAff) {
			t.Fatalf("n=%d: lazy recoding diverges from eager streamed MSM", n)
		}
	}
}

// TestStreamMSMSourceError checks that a failing source surfaces as an
// error (wrapped with the failing offset) rather than a wrong sum.
func TestStreamMSMSourceError(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	n := 100
	points, scalars := msmTestVectors(rng, n)
	dec := DecomposeScalars(scalars, StreamWindowSize(n, 32))

	boom := errors.New("disk gone")
	failAt := 64
	src := func(dst []G1Affine, start int) error {
		if start >= failAt {
			return boom
		}
		copy(dst, points[start:start+len(dst)])
		return nil
	}
	if _, err := MultiExpG1Stream(src, dec, 32); !errors.Is(err, boom) {
		t.Fatalf("want wrapped source error, got %v", err)
	}
}

// TestScalarDecompositionSlice pins the zero-copy Slice view the chunked
// driver depends on: digits of a sub-range must match a fresh
// decomposition of the same sub-slice.
func TestScalarDecompositionSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(406))
	_, scalars := msmTestVectors(rng, 100)
	const c = 5
	full := DecomposeScalars(scalars, c)
	for _, r := range [][2]int{{0, 100}, {0, 1}, {37, 64}, {64, 100}, {99, 100}, {50, 50}} {
		view := full.Slice(r[0], r[1])
		fresh := DecomposeScalars(scalars[r[0]:r[1]], c)
		if view.Len() != fresh.Len() {
			t.Fatalf("slice [%d:%d): len %d want %d", r[0], r[1], view.Len(), fresh.Len())
		}
		for w := 0; w < full.windows; w++ {
			vr, fr2 := view.row(w), fresh.row(w)
			for i := range vr {
				if vr[i] != fr2[i] {
					t.Fatalf("slice [%d:%d) window %d digit %d: %d want %d", r[0], r[1], w, i, vr[i], fr2[i])
				}
			}
		}
	}
}
