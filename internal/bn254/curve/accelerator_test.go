package curve

import (
	"sync/atomic"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// countingAccelerator wraps the CPU Pippenger backend and counts every
// entry-point hit, proving the public MultiExp functions and the
// streamed drivers actually resolve through the registered backend.
type countingAccelerator struct {
	inner                Accelerator
	g1, g1Dec, g2, g2Dec atomic.Int64
}

func (c *countingAccelerator) Name() string { return "counting(" + c.inner.Name() + ")" }

func (c *countingAccelerator) MultiExpG1(points []G1Affine, scalars []fr.Element) G1Jac {
	c.g1.Add(1)
	return c.inner.MultiExpG1(points, scalars)
}

func (c *countingAccelerator) MultiExpG1Decomposed(points []G1Affine, dec *ScalarDecomposition) G1Jac {
	c.g1Dec.Add(1)
	return c.inner.MultiExpG1Decomposed(points, dec)
}

func (c *countingAccelerator) MultiExpG2(points []G2Affine, scalars []fr.Element) G2Jac {
	c.g2.Add(1)
	return c.inner.MultiExpG2(points, scalars)
}

func (c *countingAccelerator) MultiExpG2Decomposed(points []G2Affine, dec *ScalarDecomposition) G2Jac {
	c.g2Dec.Add(1)
	return c.inner.MultiExpG2Decomposed(points, dec)
}

func testMsmInputs(t *testing.T, n int) ([]G1Affine, []fr.Element) {
	t.Helper()
	points := make([]G1Affine, n)
	scalars := make([]fr.Element, n)
	jac := G1Generator()
	for i := range points {
		points[i].FromJacobian(&jac)
		jac.DoubleAssign()
		scalars[i] = fr.MustRandom()
	}
	return points, scalars
}

func TestAcceleratorDefault(t *testing.T) {
	if got := ActiveAccelerator().Name(); got != "pippenger-cpu" {
		t.Fatalf("default accelerator = %q, want pippenger-cpu", got)
	}
}

func TestAcceleratorRouting(t *testing.T) {
	cnt := &countingAccelerator{inner: pippengerCPU{}}
	SetAccelerator(cnt)
	defer SetAccelerator(nil)

	const n = 256
	points, scalars := testMsmInputs(t, n)

	want := pippengerCPU{}.MultiExpG1(points, scalars)
	got := MultiExpG1(points, scalars)
	if !got.Equal(&want) {
		t.Fatal("MultiExpG1 through accelerator disagrees with CPU backend")
	}
	if cnt.g1.Load() != 1 {
		t.Fatalf("MultiExpG1 hit the accelerator %d times, want 1", cnt.g1.Load())
	}

	dec := DecomposeScalars(scalars, MSMWindowSize(n))
	got = MultiExpG1Decomposed(points, dec)
	if !got.Equal(&want) {
		t.Fatal("MultiExpG1Decomposed through accelerator disagrees")
	}
	if cnt.g1Dec.Load() != 1 {
		t.Fatalf("MultiExpG1Decomposed hit the accelerator %d times, want 1", cnt.g1Dec.Load())
	}

	// The streamed driver dispatches each chunk through the accelerator.
	const chunk = 64
	cnt.g1Dec.Store(0)
	streamed, err := MultiExpG1StreamScalars(SliceSourceG1(points), scalars, StreamWindowSize(n, chunk), chunk)
	if err != nil {
		t.Fatalf("MultiExpG1StreamScalars: %v", err)
	}
	if !streamed.Equal(&want) {
		t.Fatal("streamed MSM through accelerator disagrees")
	}
	if wantChunks := int64(n / chunk); cnt.g1Dec.Load() != wantChunks {
		t.Fatalf("streamed MSM hit the accelerator %d times, want %d", cnt.g1Dec.Load(), wantChunks)
	}

	// Resetting restores the CPU backend.
	SetAccelerator(nil)
	if got := ActiveAccelerator().Name(); got != "pippenger-cpu" {
		t.Fatalf("after reset accelerator = %q, want pippenger-cpu", got)
	}
}

func TestAcceleratorRoutingG2(t *testing.T) {
	cnt := &countingAccelerator{inner: pippengerCPU{}}
	SetAccelerator(cnt)
	defer SetAccelerator(nil)

	const n = 64
	_, scalars := testMsmInputs(t, n)
	points := make([]G2Affine, n)
	jac := G2Generator()
	for i := range points {
		points[i].FromJacobian(&jac)
		jac.DoubleAssign()
	}

	want := pippengerCPU{}.MultiExpG2(points, scalars)
	got := MultiExpG2(points, scalars)
	if !got.Equal(&want) {
		t.Fatal("MultiExpG2 through accelerator disagrees with CPU backend")
	}
	if cnt.g2.Load() != 1 {
		t.Fatalf("MultiExpG2 hit the accelerator %d times, want 1", cnt.g2.Load())
	}

	const chunk = 16
	streamed, err := MultiExpG2StreamScalars(SliceSourceG2(points), scalars, StreamWindowSize(n, chunk), chunk)
	if err != nil {
		t.Fatalf("MultiExpG2StreamScalars: %v", err)
	}
	if !streamed.Equal(&want) {
		t.Fatal("streamed G2 MSM through accelerator disagrees")
	}
	if wantChunks := int64(n / chunk); cnt.g2Dec.Load() != wantChunks {
		t.Fatalf("streamed G2 MSM hit the accelerator %d times, want %d", cnt.g2Dec.Load(), wantChunks)
	}
}
