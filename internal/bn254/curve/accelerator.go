package curve

import (
	"sync/atomic"

	"zkrownn/internal/bn254/fr"
)

// Accelerator is the pluggable multi-scalar-multiplication backend. The
// public MultiExp entry points — and, per chunk, the streamed MSM
// drivers — resolve through the registered accelerator, so an
// out-of-process or GPU backend installed with SetAccelerator serves
// every prover MSM (including out-of-core proves) without touching call
// sites. The default backend is the in-process parallel signed-digit
// Pippenger driver.
//
// Implementations must be safe for concurrent calls and must return
// exactly the group element Σ kᵢ·Pᵢ: the prover treats backends as
// bit-identical drop-ins, and the differential tests pin any registered
// backend against the CPU driver.
type Accelerator interface {
	// Name identifies the backend in benchmarks and diagnostics.
	Name() string
	MultiExpG1(points []G1Affine, scalars []fr.Element) G1Jac
	// MultiExpG1Decomposed is the pre-recoded-digit variant; callers
	// amortize one DecomposeScalars across several bases. Backends that
	// cannot consume signed digits directly can reassemble scalars from
	// dec or run the CPU driver for this entry.
	MultiExpG1Decomposed(points []G1Affine, dec *ScalarDecomposition) G1Jac
	MultiExpG2(points []G2Affine, scalars []fr.Element) G2Jac
	MultiExpG2Decomposed(points []G2Affine, dec *ScalarDecomposition) G2Jac
}

// pippengerCPU is the default Accelerator: the in-process parallel
// signed-digit Pippenger driver (msm.go).
type pippengerCPU struct{}

func (pippengerCPU) Name() string { return "pippenger-cpu" }

func (pippengerCPU) MultiExpG1(points []G1Affine, scalars []fr.Element) G1Jac {
	n := len(points)
	if len(scalars) != n {
		panic("curve: MultiExpG1 length mismatch")
	}
	var j G1Jac
	switch n {
	case 0:
		j.SetInfinity()
		return j
	case 1:
		j.FromAffine(&points[0])
		j.ScalarMul(&j, &scalars[0])
		return j
	}
	return multiExp[G1Affine, G1Jac](g1Msm{}, points, DecomposeScalars(scalars, MSMWindowSize(n)), nil, "")
}

func (pippengerCPU) MultiExpG1Decomposed(points []G1Affine, dec *ScalarDecomposition) G1Jac {
	return multiExp[G1Affine, G1Jac](g1Msm{}, points, dec, nil, "")
}

func (pippengerCPU) MultiExpG2(points []G2Affine, scalars []fr.Element) G2Jac {
	n := len(points)
	if len(scalars) != n {
		panic("curve: MultiExpG2 length mismatch")
	}
	var j G2Jac
	switch n {
	case 0:
		j.SetInfinity()
		return j
	case 1:
		j.FromAffine(&points[0])
		j.ScalarMul(&j, &scalars[0])
		return j
	}
	return multiExp[G2Affine, G2Jac](g2Msm{}, points, DecomposeScalars(scalars, MSMWindowSize(n)), nil, "")
}

func (pippengerCPU) MultiExpG2Decomposed(points []G2Affine, dec *ScalarDecomposition) G2Jac {
	return multiExp[G2Affine, G2Jac](g2Msm{}, points, dec, nil, "")
}

// activeAccel holds the registered backend boxed in a concrete struct
// (atomic.Value requires a single stored type while Accelerator
// implementations differ).
type acceleratorBox struct{ a Accelerator }

var activeAccel atomic.Value

// SetAccelerator installs a as the MSM backend for every subsequent
// MultiExp call; nil restores the default CPU Pippenger driver. Safe
// for concurrent use with in-flight MSMs — calls that already resolved
// the previous backend complete on it.
func SetAccelerator(a Accelerator) {
	if a == nil {
		a = pippengerCPU{}
	}
	activeAccel.Store(acceleratorBox{a})
}

// ActiveAccelerator returns the currently registered MSM backend.
func ActiveAccelerator() Accelerator {
	if b, ok := activeAccel.Load().(acceleratorBox); ok {
		return b.a
	}
	return pippengerCPU{}
}
