package curve

import (
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/fr"
)

// msmTestVectors draws n (point, scalar) pairs with the MSM's edge cases
// mixed in: ~1/8 zero scalars, ~1/8 infinity points, ~1/5 repeated
// points, and a few structured scalars (1, -1, window-boundary values)
// that stress the signed-digit recoding.
func msmTestVectors(rng *rand.Rand, n int) ([]G1Affine, []fr.Element) {
	points := make([]G1Affine, n)
	scalars := make([]fr.Element, n)
	for i := 0; i < n; i++ {
		switch {
		case n > 4 && i%8 == 3:
			points[i] = G1Affine{} // infinity
		case n > 4 && i%5 == 4:
			points[i] = points[i-1] // repeated point
		default:
			p := randG1(rng)
			points[i].FromJacobian(&p)
		}
		switch {
		case n > 4 && i%8 == 5:
			scalars[i].SetZero()
		case n > 4 && i%16 == 0:
			// r-1 ≡ -1: every window digit exercises the negative range.
			scalars[i].SetUint64(1)
			scalars[i].Neg(&scalars[i])
		case n > 4 && i%16 == 8:
			// 2^(c-1) boundaries for every supported c collapse to powers
			// of two; 2^128 sits mid-scalar.
			var two fr.Element
			two.SetUint64(2)
			scalars[i].SetOne()
			for b := 0; b < 128; b++ {
				scalars[i].Mul(&scalars[i], &two)
			}
		default:
			scalars[i] = randFr(rng)
		}
	}
	return points, scalars
}

// naiveMSMG1 is the ScalarMul-sum oracle.
func naiveMSMG1(points []G1Affine, scalars []fr.Element) G1Jac {
	var want G1Jac
	want.SetInfinity()
	for i := range points {
		var pj, term G1Jac
		pj.FromAffine(&points[i])
		term.ScalarMul(&pj, &scalars[i])
		want.AddAssign(&term)
	}
	return want
}

// TestMultiExpG1StraddlesWindowThresholds pins the MSM against the
// naive oracle at sizes straddling every MSMWindowSize threshold the
// oracle can afford (the larger brackets select window widths that
// TestMultiExpAllWindowWidthsAgree exercises directly).
func TestMultiExpG1StraddlesWindowThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	sizes := []int{0, 1, 2, 3, 7, 8, 9, 63, 64, 65, 255, 256, 257, 1023, 1024, 1025}
	if !testing.Short() {
		sizes = append(sizes, 4095, 4096, 4097)
	}
	for _, n := range sizes {
		points, scalars := msmTestVectors(rng, n)
		got := MultiExpG1(points, scalars)
		want := naiveMSMG1(points, scalars)
		if !got.Equal(&want) {
			t.Fatalf("MSM G1 mismatch at n=%d (window c=%d)", n, MSMWindowSize(n))
		}
	}
}

// TestMultiExpAllWindowWidthsAgree forces every supported window width
// over one input set: the widths must all produce the same point, so a
// recoding or bucket bug at any c — including the widths only the
// 2^16..2^22 size brackets select — shows up without a huge oracle run.
func TestMultiExpAllWindowWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 700 // above msmAffineThreshold so the batch-affine path runs
	points, scalars := msmTestVectors(rng, n)
	want := naiveMSMG1(points, scalars)
	for c := 2; c <= 15; c++ {
		got := MultiExpG1Decomposed(points, DecomposeScalars(scalars, c))
		if !got.Equal(&want) {
			t.Fatalf("MSM G1 mismatch at window width c=%d", c)
		}
	}
}

// TestMultiExpG2Decomposed checks the G2 MSM with edge-case vectors and
// that both groups accept one shared decomposition (the prover's usage).
func TestMultiExpG2Decomposed(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 40
	scalars := make([]fr.Element, n)
	g1s := make([]G1Affine, n)
	g2s := make([]G2Affine, n)
	var wantG2 G2Jac
	wantG2.SetInfinity()
	for i := 0; i < n; i++ {
		p1 := randG1(rng)
		g1s[i].FromJacobian(&p1)
		p2 := randG2(rng)
		g2s[i].FromJacobian(&p2)
		switch {
		case i%7 == 2:
			scalars[i].SetZero()
		case i%7 == 5:
			g2s[i] = G2Affine{} // infinity
		default:
			scalars[i] = randFr(rng)
		}
		var pj, term G2Jac
		pj.FromAffine(&g2s[i])
		term.ScalarMul(&pj, &scalars[i])
		wantG2.AddAssign(&term)
	}
	dec := DecomposeScalars(scalars, MSMWindowSize(n))
	gotG2 := MultiExpG2Decomposed(g2s, dec)
	if !gotG2.Equal(&wantG2) {
		t.Fatal("decomposed MSM G2 mismatch")
	}
	// The same digits drive the G1 MSM (shared-witness prover shape).
	gotG1 := MultiExpG1Decomposed(g1s, dec)
	wantG1 := naiveMSMG1(g1s, scalars)
	if !gotG1.Equal(&wantG1) {
		t.Fatal("decomposed MSM G1 mismatch with shared digits")
	}
}

// TestMultiExpDecomposedMatchesPlain is the round-trip required of the
// precomputed-digit API: decomposing up front must not change results.
func TestMultiExpDecomposedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{5, 600, 1300} {
		points, scalars := msmTestVectors(rng, n)
		plain := MultiExpG1(points, scalars)
		dec := DecomposeScalars(scalars, MSMWindowSize(n))
		decomposed := MultiExpG1Decomposed(points, dec)
		if !plain.Equal(&decomposed) {
			t.Fatalf("plain vs decomposed mismatch at n=%d", n)
		}
	}
}

// TestMultiExpWitnessShapedScalars pins the MSM on the scalar profile
// real witnesses have — thousands of repeated bit values and small
// fixed-point magnitudes all landing in the same low-window buckets —
// which drives the batch scheduler's conflict queue into its Jacobian
// spill path.
func TestMultiExpWitnessShapedScalars(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 3000
	points := make([]G1Affine, n)
	scalars := make([]fr.Element, n)
	for i := 0; i < n; i++ {
		p := randG1(rng)
		points[i].FromJacobian(&p)
		switch {
		case i%3 == 0:
			scalars[i].SetOne() // bit wires
		case i%3 == 1:
			scalars[i].SetUint64(uint64(1 + i%17)) // shared small constants
		default:
			scalars[i].SetUint64(uint64(rng.Int63n(1 << 44))) // fixed-point range
		}
	}
	got := MultiExpG1(points, scalars)
	want := naiveMSMG1(points, scalars)
	if !got.Equal(&want) {
		t.Fatal("MSM mismatch on witness-shaped scalars")
	}
}

// TestDecomposeScalarsReconstructs verifies the signed digits are a
// radix-2^c representation of the original scalar: Σ dᵢ·2^(c·i) ≡ k.
func TestDecomposeScalarsReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	scalars := make([]fr.Element, 64)
	for i := range scalars {
		switch i {
		case 0:
			scalars[i].SetZero()
		case 1:
			scalars[i].SetOne()
		case 2:
			scalars[i].SetUint64(1)
			scalars[i].Neg(&scalars[i]) // r-1
		default:
			scalars[i] = randFr(rng)
		}
	}
	for c := 2; c <= 15; c++ {
		dec := DecomposeScalars(scalars, c)
		half := int64(1) << (c - 1)
		for i := range scalars {
			var acc, radix, pw fr.Element
			pw.SetOne()
			radix.SetUint64(1 << c)
			for w := 0; w < dec.windows; w++ {
				d := int64(dec.digits[w*len(scalars)+i])
				if d > half || d < -(half-1) {
					t.Fatalf("digit %d out of range at c=%d", d, c)
				}
				var term fr.Element
				term.SetInt64(d)
				term.Mul(&term, &pw)
				acc.Add(&acc, &term)
				pw.Mul(&pw, &radix)
			}
			if !acc.Equal(&scalars[i]) {
				t.Fatalf("digits do not reconstruct scalar %d at c=%d", i, c)
			}
		}
	}
}
