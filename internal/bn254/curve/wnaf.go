package curve

import (
	"math/big"

	"zkrownn/internal/bn254/fr"
)

// wnafWindow is the width-w NAF window used by the single-point scalar
// multiplications: 8 precomputed odd multiples cut additions to ~n/(w+1).
const wnafWindow = 4

// wnafDigits recodes |k| into width-w NAF form (least significant
// first): every non-zero digit is odd, |d| < 2^w, and any w+1
// consecutive digits contain at most one non-zero.
func wnafDigits(k *big.Int, w uint) []int8 {
	var digits []int8
	n := new(big.Int).Abs(k)
	mod := int64(1) << (w + 1)
	half := int64(1) << w
	tmp := new(big.Int)
	for n.Sign() > 0 {
		var d int64
		if n.Bit(0) == 1 {
			d = tmp.And(n, big.NewInt(mod-1)).Int64()
			if d >= half {
				d -= mod
			}
			tmp.SetInt64(d)
			n.Sub(n, tmp)
		}
		digits = append(digits, int8(d))
		n.Rsh(n, 1)
	}
	return digits
}

// ScalarMulWNAF sets p = k·q using a width-4 NAF with 8 precomputed odd
// multiples — ~1.2× faster than the binary ladder for 254-bit scalars.
func (p *G1Jac) ScalarMulWNAF(q *G1Jac, k *fr.Element) *G1Jac {
	kk := k.ToBigInt()
	if kk.Sign() == 0 || q.IsInfinity() {
		return p.SetInfinity()
	}
	digits := wnafDigits(kk, wnafWindow)

	// Odd multiples 1q, 3q, ..., 15q, kept Jacobian: a one-shot scalar
	// multiplication cannot amortize an affine normalization (it costs a
	// field inversion, ~100 Jacobian additions' worth).
	tableSize := 1 << (wnafWindow - 1)
	table := make([]G1Jac, tableSize)
	table[0] = *q
	var twoQ G1Jac
	twoQ.Double(q)
	for i := 1; i < tableSize; i++ {
		table[i] = table[i-1]
		table[i].AddAssign(&twoQ)
	}

	var res G1Jac
	res.SetInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		res.DoubleAssign()
		d := digits[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			res.AddAssign(&table[(d-1)/2])
		} else {
			var neg G1Jac
			neg.Neg(&table[(-d-1)/2])
			res.AddAssign(&neg)
		}
	}
	return p.Set(&res)
}

// ScalarMulWNAF sets p = k·q over G2 with the same width-4 NAF method.
func (p *G2Jac) ScalarMulWNAF(q *G2Jac, k *fr.Element) *G2Jac {
	kk := k.ToBigInt()
	if kk.Sign() == 0 || q.IsInfinity() {
		return p.SetInfinity()
	}
	digits := wnafDigits(kk, wnafWindow)

	tableSize := 1 << (wnafWindow - 1)
	table := make([]G2Jac, tableSize)
	table[0] = *q
	var twoQ G2Jac
	twoQ.Double(q)
	for i := 1; i < tableSize; i++ {
		table[i] = table[i-1]
		table[i].AddAssign(&twoQ)
	}

	var res G2Jac
	res.SetInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		res.DoubleAssign()
		d := digits[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			res.AddAssign(&table[(d-1)/2])
		} else {
			var neg G2Jac
			neg.Neg(&table[(-d-1)/2])
			res.AddAssign(&neg)
		}
	}
	return p.Set(&res)
}
