// Package curve implements the BN254 (alt_bn128) elliptic-curve groups
// G1 (over F_p) and G2 (over F_p², on the D-type sextic twist), with
// Jacobian-coordinate arithmetic, scalar multiplication, fixed-base
// tables for trusted setup, and a parallel Pippenger multi-exponentiation
// used by the Groth16 prover.
package curve

import (
	"errors"
	"math/big"

	"zkrownn/internal/bn254/fp"
	"zkrownn/internal/bn254/fr"
)

// CurveB is the constant term of E: y² = x³ + 3.
const CurveB = 3

// G1Affine is a point on E(F_p) in affine coordinates. The point at
// infinity is encoded as (0, 0).
type G1Affine struct {
	X, Y fp.Element
}

// G1Jac is a point in Jacobian coordinates (x = X/Z², y = Y/Z³); the
// point at infinity has Z = 0.
type G1Jac struct {
	X, Y, Z fp.Element
}

var (
	g1Gen     G1Jac
	g1GenAff  G1Affine
	curveBfp  fp.Element
	rModulus  big.Int // group order, shared by G1 and G2
	rBitLen   int
	fpModulus = fp.Modulus()
)

func init() {
	rModulus.SetString(fr.ModulusStr, 10)
	rBitLen = rModulus.BitLen()
	curveBfp.SetUint64(CurveB)

	// Standard generator (1, 2).
	g1GenAff.X.SetUint64(1)
	g1GenAff.Y.SetUint64(2)
	if !g1GenAff.IsOnCurve() {
		panic("curve: (1,2) not on E(F_p)")
	}
	g1Gen.FromAffine(&g1GenAff)
	_ = fpModulus
}

// G1Generator returns the canonical generator of G1 in Jacobian form.
func G1Generator() G1Jac { return g1Gen }

// G1GeneratorAffine returns the canonical generator in affine form.
func G1GeneratorAffine() G1Affine { return g1GenAff }

// GroupOrder returns the order r of G1 and G2 as a fresh big.Int.
func GroupOrder() *big.Int { return new(big.Int).Set(&rModulus) }

// IsInfinity reports whether p is the point at infinity.
func (p *G1Affine) IsInfinity() bool { return p.X.IsZero() && p.Y.IsZero() }

// Set copies q into p and returns p.
func (p *G1Affine) Set(q *G1Affine) *G1Affine { *p = *q; return p }

// Equal reports whether p == q.
func (p *G1Affine) Equal(q *G1Affine) bool {
	return p.X.Equal(&q.X) && p.Y.Equal(&q.Y)
}

// Neg sets p = -q and returns p.
func (p *G1Affine) Neg(q *G1Affine) *G1Affine {
	p.X.Set(&q.X)
	p.Y.Neg(&q.Y)
	return p
}

// IsOnCurve reports whether p satisfies y² = x³ + 3 (infinity counts as
// on-curve).
func (p *G1Affine) IsOnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	var lhs, rhs fp.Element
	lhs.Square(&p.Y)
	rhs.Square(&p.X)
	rhs.Mul(&rhs, &p.X)
	rhs.Add(&rhs, &curveBfp)
	return lhs.Equal(&rhs)
}

// IsInSubgroup reports whether p lies in the order-r subgroup. For BN
// curves #E(F_p) = r, so this is equivalent to being on the curve; the
// scalar check is kept for defence in depth on deserialized data.
func (p *G1Affine) IsInSubgroup() bool {
	if !p.IsOnCurve() {
		return false
	}
	var j G1Jac
	j.FromAffine(p)
	j.ScalarMulBig(&j, &rModulus)
	return j.IsInfinity()
}

// FromJacobian sets p to the affine form of q and returns p.
func (p *G1Affine) FromJacobian(q *G1Jac) *G1Affine {
	if q.IsInfinity() {
		p.X.SetZero()
		p.Y.SetZero()
		return p
	}
	var zInv, zInv2, zInv3 fp.Element
	zInv.Inverse(&q.Z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.X.Mul(&q.X, &zInv2)
	p.Y.Mul(&q.Y, &zInv3)
	return p
}

// IsInfinity reports whether p is the point at infinity (Z == 0).
func (p *G1Jac) IsInfinity() bool { return p.Z.IsZero() }

// SetInfinity sets p to the point at infinity and returns p.
func (p *G1Jac) SetInfinity() *G1Jac {
	p.X.SetOne()
	p.Y.SetOne()
	p.Z.SetZero()
	return p
}

// Set copies q into p and returns p.
func (p *G1Jac) Set(q *G1Jac) *G1Jac { *p = *q; return p }

// FromAffine sets p to the Jacobian form of q and returns p.
func (p *G1Jac) FromAffine(q *G1Affine) *G1Jac {
	if q.IsInfinity() {
		return p.SetInfinity()
	}
	p.X.Set(&q.X)
	p.Y.Set(&q.Y)
	p.Z.SetOne()
	return p
}

// Equal reports whether p and q represent the same point.
func (p *G1Jac) Equal(q *G1Jac) bool {
	if p.IsInfinity() {
		return q.IsInfinity()
	}
	if q.IsInfinity() {
		return false
	}
	// Cross-multiply to compare without inversions:
	// X1/Z1² == X2/Z2² and Y1/Z1³ == Y2/Z2³.
	var z1z1, z2z2, u1, u2, s1, s2, t fp.Element
	z1z1.Square(&p.Z)
	z2z2.Square(&q.Z)
	u1.Mul(&p.X, &z2z2)
	u2.Mul(&q.X, &z1z1)
	t.Mul(&z2z2, &q.Z)
	s1.Mul(&p.Y, &t)
	t.Mul(&z1z1, &p.Z)
	s2.Mul(&q.Y, &t)
	return u1.Equal(&u2) && s1.Equal(&s2)
}

// Neg sets p = -q and returns p.
func (p *G1Jac) Neg(q *G1Jac) *G1Jac {
	p.X.Set(&q.X)
	p.Y.Neg(&q.Y)
	p.Z.Set(&q.Z)
	return p
}

// DoubleAssign doubles p in place using the a = 0 doubling formulas
// (dbl-2009-l) and returns p.
func (p *G1Jac) DoubleAssign() *G1Jac {
	if p.IsInfinity() {
		return p
	}
	var a, b, c, d, e, f, t fp.Element
	a.Square(&p.X)      // A = X²
	b.Square(&p.Y)      // B = Y²
	c.Square(&b)        // C = B²
	d.Add(&p.X, &b)     // (X+B)²
	d.Square(&d)        //
	d.Sub(&d, &a)       // -A
	d.Sub(&d, &c)       // -C
	d.Double(&d)        // D = 2((X+B)²-A-C)
	e.Double(&a)        //
	e.Add(&e, &a)       // E = 3A
	f.Square(&e)        // F = E²
	t.Double(&d)        //
	p.Z.Mul(&p.Y, &p.Z) //
	p.Z.Double(&p.Z)    // Z3 = 2YZ
	p.X.Sub(&f, &t)     // X3 = F - 2D
	t.Sub(&d, &p.X)     //
	t.Mul(&e, &t)       //
	var c8 fp.Element   //
	c8.Double(&c)       //
	c8.Double(&c8)      //
	c8.Double(&c8)      // 8C
	p.Y.Sub(&t, &c8)    // Y3 = E(D-X3) - 8C
	return p
}

// Double sets p = 2q and returns p.
func (p *G1Jac) Double(q *G1Jac) *G1Jac {
	p.Set(q)
	return p.DoubleAssign()
}

// AddAssign sets p = p + q (general Jacobian addition, add-2007-bl with
// doubling fallback) and returns p.
func (p *G1Jac) AddAssign(q *G1Jac) *G1Jac {
	if q.IsInfinity() {
		return p
	}
	if p.IsInfinity() {
		return p.Set(q)
	}
	var z1z1, z2z2, u1, u2, s1, s2 fp.Element
	z1z1.Square(&p.Z)
	z2z2.Square(&q.Z)
	u1.Mul(&p.X, &z2z2)
	u2.Mul(&q.X, &z1z1)
	var t fp.Element
	t.Mul(&q.Z, &z2z2)
	s1.Mul(&p.Y, &t)
	t.Mul(&p.Z, &z1z1)
	s2.Mul(&q.Y, &t)

	if u1.Equal(&u2) {
		if s1.Equal(&s2) {
			return p.DoubleAssign()
		}
		return p.SetInfinity() // p == -q
	}

	var h, i, j, r, v fp.Element
	h.Sub(&u2, &u1) // H = U2-U1
	i.Double(&h)    //
	i.Square(&i)    // I = (2H)²
	j.Mul(&h, &i)   // J = H·I
	r.Sub(&s2, &s1) //
	r.Double(&r)    // R = 2(S2-S1)
	v.Mul(&u1, &i)  // V = U1·I

	var x3, y3, z3 fp.Element
	x3.Square(&r)
	x3.Sub(&x3, &j)
	var twoV fp.Element
	twoV.Double(&v)
	x3.Sub(&x3, &twoV) // X3 = R² - J - 2V

	y3.Sub(&v, &x3)
	y3.Mul(&r, &y3)
	var s1j fp.Element
	s1j.Mul(&s1, &j)
	s1j.Double(&s1j)
	y3.Sub(&y3, &s1j) // Y3 = R(V-X3) - 2 S1 J

	z3.Add(&p.Z, &q.Z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h) // Z3 = ((Z1+Z2)² - Z1Z1 - Z2Z2)·H

	p.X.Set(&x3)
	p.Y.Set(&y3)
	p.Z.Set(&z3)
	return p
}

// AddMixed sets p = p + q for an affine q (madd-2007-bl) and returns p.
func (p *G1Jac) AddMixed(q *G1Affine) *G1Jac {
	if q.IsInfinity() {
		return p
	}
	if p.IsInfinity() {
		return p.FromAffine(q)
	}
	var z1z1, u2, s2 fp.Element
	z1z1.Square(&p.Z)
	u2.Mul(&q.X, &z1z1)
	s2.Mul(&z1z1, &p.Z)
	s2.Mul(&s2, &q.Y)

	if u2.Equal(&p.X) {
		if s2.Equal(&p.Y) {
			return p.DoubleAssign()
		}
		return p.SetInfinity()
	}

	var h, hh, i, j, r, v fp.Element
	h.Sub(&u2, &p.X) // H = U2-X1
	hh.Square(&h)    // HH = H²
	i.Double(&hh)
	i.Double(&i)  // I = 4HH
	j.Mul(&h, &i) // J = H·I
	r.Sub(&s2, &p.Y)
	r.Double(&r)    // R = 2(S2-Y1)
	v.Mul(&p.X, &i) // V = X1·I

	var x3, y3, z3 fp.Element
	x3.Square(&r)
	x3.Sub(&x3, &j)
	var twoV fp.Element
	twoV.Double(&v)
	x3.Sub(&x3, &twoV)

	y3.Sub(&v, &x3)
	y3.Mul(&r, &y3)
	var yj fp.Element
	yj.Mul(&p.Y, &j)
	yj.Double(&yj)
	y3.Sub(&y3, &yj)

	z3.Add(&p.Z, &h)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &hh)

	p.X.Set(&x3)
	p.Y.Set(&y3)
	p.Z.Set(&z3)
	return p
}

// SubAssign sets p = p - q and returns p.
func (p *G1Jac) SubAssign(q *G1Jac) *G1Jac {
	var nq G1Jac
	nq.Neg(q)
	return p.AddAssign(&nq)
}

// ScalarMulBig sets p = k·q for a big.Int scalar (double-and-add, MSB
// first) and returns p. Negative scalars negate the point.
func (p *G1Jac) ScalarMulBig(q *G1Jac, k *big.Int) *G1Jac {
	var kk big.Int
	kk.Set(k)
	base := *q
	if kk.Sign() < 0 {
		kk.Neg(&kk)
		base.Neg(&base)
	}
	var res G1Jac
	res.SetInfinity()
	for i := kk.BitLen() - 1; i >= 0; i-- {
		res.DoubleAssign()
		if kk.Bit(i) == 1 {
			res.AddAssign(&base)
		}
	}
	return p.Set(&res)
}

// ScalarMul sets p = k·q for a scalar-field element k and returns p
// (width-4 NAF; see wnaf.go).
func (p *G1Jac) ScalarMul(q *G1Jac, k *fr.Element) *G1Jac {
	return p.ScalarMulWNAF(q, k)
}

// scalarMulBinary is the plain double-and-add ladder, kept as the
// cross-check oracle for the windowed implementation.
func (p *G1Jac) scalarMulBinary(q *G1Jac, k *fr.Element) *G1Jac {
	limbs := k.RegularLimbs()
	var res G1Jac
	res.SetInfinity()
	started := false
	for i := fr.Limbs*64 - 1; i >= 0; i-- {
		if started {
			res.DoubleAssign()
		}
		if (limbs[i/64]>>(i%64))&1 == 1 {
			res.AddAssign(q)
			started = true
		}
	}
	return p.Set(&res)
}

// BatchJacToAffineG1 converts a slice of Jacobian points to affine with a
// single field inversion (Montgomery's trick).
func BatchJacToAffineG1(points []G1Jac) []G1Affine {
	res := make([]G1Affine, len(points))
	zs := make([]fp.Element, len(points))
	for i := range points {
		zs[i] = points[i].Z
	}
	zInvs := fp.BatchInvert(zs)
	for i := range points {
		if points[i].IsInfinity() {
			res[i].X.SetZero()
			res[i].Y.SetZero()
			continue
		}
		var zInv2, zInv3 fp.Element
		zInv2.Square(&zInvs[i])
		zInv3.Mul(&zInv2, &zInvs[i])
		res[i].X.Mul(&points[i].X, &zInv2)
		res[i].Y.Mul(&points[i].Y, &zInv3)
	}
	return res
}

// g1BatchAdder applies batches of independent affine additions
// buckets[idx[k]] += pts[k] with one shared field inversion (Montgomery's
// trick over the chord/tangent denominators). It is the G1 leaf of the
// MSM's batch-affine bucket accumulation: an amortized affine add costs
// ~6 field muls against ~15 for a Jacobian mixed add. The scratch slices
// persist across flushes so the hot loop never allocates.
type g1BatchAdder struct {
	den, inv []fp.Element
	kind     []uint8 // batchAddSkip/batchAddChord/batchAddTangent per op
}

// Op classification for one slot of a batch-affine flush.
const (
	batchAddSkip    = iota // handled inline (infinity cases), no inversion
	batchAddChord          // general addition, den = x2 - x1
	batchAddTangent        // doubling, den = 2y
)

func newG1BatchAdder(batchSize int) *g1BatchAdder {
	return &g1BatchAdder{
		den:  make([]fp.Element, batchSize),
		inv:  make([]fp.Element, batchSize),
		kind: make([]uint8, batchSize),
	}
}

func (a *g1BatchAdder) isInfinity(p *G1Affine) bool { return p.IsInfinity() }

func (a *g1BatchAdder) negInto(dst, src *G1Affine) { dst.Neg(src) }

func (a *g1BatchAdder) addMixedJac(dst *G1Jac, p *G1Affine) { dst.AddMixed(p) }

// flush performs buckets[idx[k]] += pts[k] for all k. Indices must be
// distinct within one call — the scheduler guarantees it — so the adds
// are independent and the denominators can be inverted together.
func (a *g1BatchAdder) flush(buckets []G1Affine, idx []int32, pts []G1Affine) {
	n := len(idx)
	den, inv, kind := a.den[:n], a.inv[:n], a.kind[:n]
	for k := 0; k < n; k++ {
		b := &buckets[idx[k]]
		p := &pts[k]
		switch {
		case b.IsInfinity():
			*b = *p
			kind[k] = batchAddSkip
			den[k].SetZero()
		case b.X.Equal(&p.X):
			if b.Y.Equal(&p.Y) {
				// Doubling: den = 2y (never zero — the subgroup has odd
				// order, so no 2-torsion).
				kind[k] = batchAddTangent
				den[k].Double(&b.Y)
			} else {
				// p = -bucket: the sum is infinity.
				b.X.SetZero()
				b.Y.SetZero()
				kind[k] = batchAddSkip
				den[k].SetZero()
			}
		default:
			kind[k] = batchAddChord
			den[k].Sub(&p.X, &b.X)
		}
	}
	fp.BatchInvertInto(den, inv)
	for k := 0; k < n; k++ {
		if kind[k] == batchAddSkip {
			continue
		}
		b := &buckets[idx[k]]
		p := &pts[k]
		var lambda, x3, y3 fp.Element
		if kind[k] == batchAddTangent {
			// λ = 3x² / 2y
			lambda.Square(&b.X)
			var t fp.Element
			t.Double(&lambda)
			lambda.Add(&lambda, &t)
			lambda.Mul(&lambda, &inv[k])
		} else {
			// λ = (y2 - y1) / (x2 - x1)
			lambda.Sub(&p.Y, &b.Y)
			lambda.Mul(&lambda, &inv[k])
		}
		x3.Square(&lambda)
		x3.Sub(&x3, &b.X)
		x3.Sub(&x3, &p.X)
		y3.Sub(&b.X, &x3)
		y3.Mul(&y3, &lambda)
		y3.Sub(&y3, &b.Y)
		b.X.Set(&x3)
		b.Y.Set(&y3)
	}
}

// Compression flags live in the top two bits of the first byte of the
// big-endian X encoding, which are guaranteed free because p < 2²⁵⁴.
// 0b10 = compressed with lexicographically smaller y, 0b11 = compressed
// with larger y, 0b01 = point at infinity, 0b00 = invalid.
const (
	flagCompressedSmall = 0x80
	flagCompressedLarge = 0xC0
	flagInfinity        = 0x40
	maskFlags           = 0xC0
)

// G1CompressedSize is the byte length of a compressed G1 point.
const G1CompressedSize = fp.Bytes

// Bytes returns the 32-byte compressed encoding of p: big-endian X with
// flag bits (compressed, y-sign, infinity) in the top byte. Valid because
// p < 2²⁵⁴ leaves the two (three) top bits clear.
func (p *G1Affine) Bytes() [G1CompressedSize]byte {
	var out [G1CompressedSize]byte
	if p.IsInfinity() {
		out[0] = flagInfinity
		return out
	}
	xb := p.X.Bytes()
	copy(out[:], xb[:])
	if p.Y.LexicographicallyLargest() {
		out[0] |= flagCompressedLarge
	} else {
		out[0] |= flagCompressedSmall
	}
	return out
}

// G1UncompressedSize is the byte length of an uncompressed G1 point
// (big-endian X then Y).
const G1UncompressedSize = 2 * fp.Bytes

// BytesRaw returns the 64-byte uncompressed encoding of p: X||Y, with
// the point at infinity as all zeros. Decoding skips the square root
// that compressed decoding pays, so this is the format of locally
// trusted bulk material (the prover engine's on-disk key cache).
func (p *G1Affine) BytesRaw() [G1UncompressedSize]byte {
	var out [G1UncompressedSize]byte
	if p.IsInfinity() {
		return out
	}
	xb := p.X.Bytes()
	yb := p.Y.Bytes()
	copy(out[:fp.Bytes], xb[:])
	copy(out[fp.Bytes:], yb[:])
	return out
}

// SetBytesRaw decodes an uncompressed G1 point, verifying curve
// membership (which implies subgroup membership: BN254's G1 has
// cofactor 1).
func (p *G1Affine) SetBytesRaw(buf []byte) error {
	if len(buf) != G1UncompressedSize {
		return errors.New("curve: bad uncompressed G1 encoding length")
	}
	if err := p.X.SetBytesCanonical(buf[:fp.Bytes]); err != nil {
		return err
	}
	if err := p.Y.SetBytesCanonical(buf[fp.Bytes:]); err != nil {
		return err
	}
	if p.IsInfinity() {
		return nil
	}
	if !p.IsOnCurve() {
		return errors.New("curve: uncompressed G1 point not on curve")
	}
	return nil
}

// SetBytes decodes a compressed G1 point, verifying curve membership.
func (p *G1Affine) SetBytes(buf []byte) error {
	if len(buf) != G1CompressedSize {
		return errors.New("curve: bad G1 encoding length")
	}
	flags := buf[0] & maskFlags
	if flags == flagInfinity {
		p.X.SetZero()
		p.Y.SetZero()
		return nil
	}
	if flags != flagCompressedSmall && flags != flagCompressedLarge {
		return errors.New("curve: invalid G1 encoding flags")
	}
	var xb [G1CompressedSize]byte
	copy(xb[:], buf)
	xb[0] &^= maskFlags
	if err := p.X.SetBytesCanonical(xb[:]); err != nil {
		return err
	}
	// y² = x³ + 3
	var rhs fp.Element
	rhs.Square(&p.X)
	rhs.Mul(&rhs, &p.X)
	rhs.Add(&rhs, &curveBfp)
	if p.Y.Sqrt(&rhs) == nil {
		return errors.New("curve: G1 x-coordinate not on curve")
	}
	wantLargest := flags == flagCompressedLarge
	if p.Y.LexicographicallyLargest() != wantLargest {
		p.Y.Neg(&p.Y)
	}
	return nil
}
