package pairing

import (
	"math/big"
	"math/rand"
	"testing"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fr"
)

func randFr(rng *rand.Rand) fr.Element {
	var e fr.Element
	b := make([]byte, 40)
	rng.Read(b)
	e.SetBigInt(new(big.Int).SetBytes(b))
	return e
}

func g1Aff(k *fr.Element) curve.G1Affine {
	g := curve.G1Generator()
	var j curve.G1Jac
	j.ScalarMul(&g, k)
	var a curve.G1Affine
	a.FromJacobian(&j)
	return a
}

func g2Aff(k *fr.Element) curve.G2Affine {
	g := curve.G2Generator()
	var j curve.G2Jac
	j.ScalarMul(&g, k)
	var a curve.G2Affine
	a.FromJacobian(&j)
	return a
}

func TestNAFReconstruction(t *testing.T) {
	// The NAF digits must reconstruct 6x₀+2.
	want := new(big.Int).SetUint64(BNParamX)
	want.Mul(want, big.NewInt(6))
	want.Add(want, big.NewInt(2))
	got := big.NewInt(0)
	for _, d := range ateLoopNAF {
		got.Lsh(got, 1)
		got.Add(got, big.NewInt(int64(d)))
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("NAF reconstructs %s, want %s", got, want)
	}
	// Non-adjacency property.
	for i := 1; i < len(ateLoopNAF); i++ {
		if ateLoopNAF[i] != 0 && ateLoopNAF[i-1] != 0 {
			t.Fatal("adjacent non-zero NAF digits")
		}
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	p := curve.G1GeneratorAffine()
	q := curve.G2GeneratorAffine()
	e := Pair(&p, &q)
	if e.IsOne() || e.IsZero() {
		t.Fatal("e(G1, G2) is degenerate")
	}
	// e must land in the order-r subgroup of GT: e^r == 1.
	var chk ext.E12
	chk.Exp(&e, curve.GroupOrder())
	if !chk.IsOne() {
		t.Fatal("pairing output not of order dividing r")
	}
}

func TestPairingBilinearLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := randFr(rng)
	p := curve.G1GeneratorAffine()
	q := curve.G2GeneratorAffine()
	pa := g1Aff(&a)

	// e(aP, Q) == e(P, Q)^a
	left := Pair(&pa, &q)
	base := Pair(&p, &q)
	var right ext.E12
	right.Exp(&base, a.ToBigInt())
	if !left.Equal(&right) {
		t.Fatal("e(aP, Q) != e(P, Q)^a")
	}
}

func TestPairingBilinearRight(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	b := randFr(rng)
	p := curve.G1GeneratorAffine()
	q := curve.G2GeneratorAffine()
	qb := g2Aff(&b)

	left := Pair(&p, &qb)
	base := Pair(&p, &q)
	var right ext.E12
	right.Exp(&base, b.ToBigInt())
	if !left.Equal(&right) {
		t.Fatal("e(P, bQ) != e(P, Q)^b")
	}
}

func TestPairingBilinearBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := randFr(rng)
	b := randFr(rng)
	pa := g1Aff(&a)
	qb := g2Aff(&b)
	p := curve.G1GeneratorAffine()
	q := curve.G2GeneratorAffine()

	left := Pair(&pa, &qb)
	base := Pair(&p, &q)
	var ab fr.Element
	ab.Mul(&a, &b)
	var right ext.E12
	right.Exp(&base, ab.ToBigInt())
	if !left.Equal(&right) {
		t.Fatal("e(aP, bQ) != e(P, Q)^(ab)")
	}
}

func TestPairingAdditiveInFirstArg(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	a := randFr(rng)
	b := randFr(rng)
	q := curve.G2GeneratorAffine()
	pa := g1Aff(&a)
	pb := g1Aff(&b)
	var sum fr.Element
	sum.Add(&a, &b)
	pab := g1Aff(&sum)

	left := Pair(&pab, &q)
	ea := Pair(&pa, &q)
	eb := Pair(&pb, &q)
	var right ext.E12
	right.Mul(&ea, &eb)
	if !left.Equal(&right) {
		t.Fatal("e(P+R, Q) != e(P, Q)·e(R, Q)")
	}
}

func TestPairingInfinity(t *testing.T) {
	var infG1 curve.G1Affine
	var infG2 curve.G2Affine
	q := curve.G2GeneratorAffine()
	p := curve.G1GeneratorAffine()
	if e := Pair(&infG1, &q); !e.IsOne() {
		t.Fatal("e(0, Q) != 1")
	}
	if e := Pair(&p, &infG2); !e.IsOne() {
		t.Fatal("e(P, 0) != 1")
	}
}

func TestPairingCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	a := randFr(rng)
	b := randFr(rng)
	var ab fr.Element
	ab.Mul(&a, &b)

	// e(aG1, bG2) · e(-abG1, G2) == 1
	pa := g1Aff(&a)
	qb := g2Aff(&b)
	pab := g1Aff(&ab)
	var pabNeg curve.G1Affine
	pabNeg.Neg(&pab)
	q := curve.G2GeneratorAffine()

	if !PairingCheck(
		[]*curve.G1Affine{&pa, &pabNeg},
		[]*curve.G2Affine{&qb, &q},
	) {
		t.Fatal("valid pairing product rejected")
	}

	// Tampered product must fail.
	if PairingCheck(
		[]*curve.G1Affine{&pa, &pab},
		[]*curve.G2Affine{&qb, &q},
	) {
		t.Fatal("invalid pairing product accepted")
	}
}

func TestPsiIsFrobeniusEndomorphism(t *testing.T) {
	// ψ must map subgroup points to subgroup points and satisfy the BN
	// eigenvalue identity ψ(Q) = p·Q on the order-r subgroup.
	rng := rand.New(rand.NewSource(55))
	k := randFr(rng)
	q := g2Aff(&k)
	q1 := psi(&q)
	if !q1.IsOnCurve() {
		t.Fatal("ψ(Q) not on twist")
	}
	var j, want curve.G2Jac
	j.FromAffine(&q)
	want.ScalarMulBig(&j, curve.GroupOrder()) // sanity: r·Q = ∞
	if !want.IsInfinity() {
		t.Fatal("test point not in subgroup")
	}
	var pQ curve.G2Jac
	pQ.FromAffine(&q)
	pmod := new(big.Int).Mod(fpModulusForTest(), curve.GroupOrder())
	pQ.ScalarMulBig(&pQ, pmod)
	var q1j curve.G2Jac
	q1j.FromAffine(&q1)
	if !q1j.Equal(&pQ) {
		t.Fatal("ψ(Q) != p·Q on the order-r subgroup")
	}
}

func BenchmarkMillerLoop(b *testing.B) {
	p := curve.G1GeneratorAffine()
	q := curve.G2GeneratorAffine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MillerLoop(&p, &q)
	}
}

func BenchmarkFullPairing(b *testing.B) {
	p := curve.G1GeneratorAffine()
	q := curve.G2GeneratorAffine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Pair(&p, &q)
	}
}

// fpModulusForTest avoids an import cycle nuisance in the ψ test.
func fpModulusForTest() *big.Int {
	v, _ := new(big.Int).SetString("21888242871839275222246405745257275088696311157297823662689037894645226208583", 10)
	return v
}
