// Package pairing implements the optimal ate pairing on BN254
// (alt_bn128): e: G1 × G2 → GT ⊂ F_p¹².
//
// The Miller loop runs over NAF(6x₀+2) with affine twist-point
// arithmetic; line evaluations are assembled through the D-type untwist
// (x, y) → (x·w², y·w³), giving sparse F_p¹² elements of shape
// c0 + c3·w + c4·v·w. The final exponentiation uses the exact cyclotomic
// decomposition p¹²-1 = (p⁶-1)(p²+1)·((p⁴-p²+1)/r · r): an easy part of
// cheap Frobenius/conjugation steps followed by a single exponentiation
// by (p⁴-p²+1)/r. This trades some verifier speed for an implementation
// whose correctness follows directly from the group order, with no
// hand-derived addition chains.
package pairing

import (
	"math/big"

	"zkrownn/internal/bn254/curve"
	"zkrownn/internal/bn254/ext"
	"zkrownn/internal/bn254/fp"
)

// BNParamX is the BN parameter x₀ with p = 36x₀⁴+36x₀³+24x₀²+6x₀+1.
const BNParamX = 4965661367192848881

var (
	ateLoopNAF []int8  // NAF digits of 6x₀+2, most significant first
	hardExp    big.Int // (p⁴ - p² + 1)/r
)

func init() {
	// 6x₀ + 2 (exceeds 64 bits).
	t := new(big.Int).SetUint64(BNParamX)
	t.Mul(t, big.NewInt(6))
	t.Add(t, big.NewInt(2))
	ateLoopNAF = nafDigits(t)

	// Hard exponent (p⁴ - p² + 1)/r; divisibility is a BN-curve identity
	// and is asserted here.
	p := fp.Modulus()
	p2 := new(big.Int).Mul(p, p)
	p4 := new(big.Int).Mul(p2, p2)
	hard := new(big.Int).Sub(p4, p2)
	hard.Add(hard, big.NewInt(1))
	var rem big.Int
	hardExp.DivMod(hard, curve.GroupOrder(), &rem)
	if rem.Sign() != 0 {
		panic("pairing: r does not divide p⁴-p²+1")
	}
}

// nafDigits returns the non-adjacent form of n, most significant digit
// first.
func nafDigits(n *big.Int) []int8 {
	var digits []int8
	v := new(big.Int).Set(n)
	zero := big.NewInt(0)
	four := big.NewInt(4)
	for v.Cmp(zero) > 0 {
		var d int8
		if v.Bit(0) == 1 {
			var m big.Int
			m.Mod(v, four)
			d = int8(2 - m.Int64()) // 1 if n≡1, -1 if n≡3 (mod 4)
			if d == 1 {
				v.Sub(v, big.NewInt(1))
			} else {
				v.Add(v, big.NewInt(1))
			}
		}
		digits = append(digits, d)
		v.Rsh(v, 1)
	}
	// Reverse to MSB-first.
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	return digits
}

// lineEval multiplies f in place by the line through the twist points
// anchored at (x1, y1) with twist slope lambda, evaluated at the G1 point
// (xP, yP): l = yP - (λ·xP)·w + (λ·x1 - y1)·v·w.
func lineEval(f *ext.E12, lambda, x1, y1 *ext.E2, p *curve.G1Affine) {
	var c0, c3, c4 ext.E2
	c0.A0.Set(&p.Y)
	c3.MulByElement(lambda, &p.X)
	c3.Neg(&c3)
	c4.Mul(lambda, x1)
	c4.Sub(&c4, y1)
	f.MulBy034(&c0, &c3, &c4)
}

// verticalEval multiplies f in place by the vertical line x = x1
// (untwisted: xP - x1·w², i.e. components 1 and v of the C0 tower slot).
func verticalEval(f *ext.E12, x1 *ext.E2, p *curve.G1Affine) {
	var l ext.E12
	l.C0.B0.A0.Set(&p.X)
	l.C0.B1.Neg(x1)
	f.Mul(f, &l)
}

// doubleStep doubles the affine twist point t in place and multiplies f
// by the tangent line at t evaluated at p.
func doubleStep(f *ext.E12, t *curve.G2Affine, p *curve.G1Affine) {
	if t.Y.IsZero() {
		// 2t = infinity; the "tangent" degenerates to the vertical.
		verticalEval(f, &t.X, p)
		t.X.SetZero()
		t.Y.SetZero()
		return
	}
	// λ = 3x²/(2y)
	var num, den, lambda ext.E2
	num.Square(&t.X)
	var three ext.E2
	three.SetUint64(3)
	num.Mul(&num, &three)
	den.Double(&t.Y)
	den.Inverse(&den)
	lambda.Mul(&num, &den)

	lineEval(f, &lambda, &t.X, &t.Y, p)

	// x3 = λ² - 2x, y3 = λ(x - x3) - y
	var x3, y3 ext.E2
	x3.Square(&lambda)
	var twoX ext.E2
	twoX.Double(&t.X)
	x3.Sub(&x3, &twoX)
	y3.Sub(&t.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.Y)
	t.X.Set(&x3)
	t.Y.Set(&y3)
}

// addStep sets t = t + q (affine twist points) and multiplies f by the
// chord line through t and q evaluated at p.
func addStep(f *ext.E12, t *curve.G2Affine, q *curve.G2Affine, p *curve.G1Affine) {
	if q.IsInfinity() {
		return
	}
	if t.IsInfinity() {
		t.Set(q)
		return
	}
	if t.X.Equal(&q.X) {
		if t.Y.Equal(&q.Y) {
			doubleStep(f, t, p)
			return
		}
		// t = -q: vertical line, result infinity.
		verticalEval(f, &t.X, p)
		t.X.SetZero()
		t.Y.SetZero()
		return
	}
	// λ = (y2-y1)/(x2-x1)
	var num, den, lambda ext.E2
	num.Sub(&q.Y, &t.Y)
	den.Sub(&q.X, &t.X)
	den.Inverse(&den)
	lambda.Mul(&num, &den)

	lineEval(f, &lambda, &t.X, &t.Y, p)

	var x3, y3 ext.E2
	x3.Square(&lambda)
	x3.Sub(&x3, &t.X)
	x3.Sub(&x3, &q.X)
	y3.Sub(&t.X, &x3)
	y3.Mul(&y3, &lambda)
	y3.Sub(&y3, &t.Y)
	t.X.Set(&x3)
	t.Y.Set(&y3)
}

// psi applies the untwist-Frobenius-twist endomorphism to the twist
// point q: (x, y) → (conj(x)·γ₁₂, conj(y)·γ₁₃).
func psi(q *curve.G2Affine) curve.G2Affine {
	var out curve.G2Affine
	cx := ext.G2FrobeniusCoeffX()
	cy := ext.G2FrobeniusCoeffY()
	out.X.Conjugate(&q.X)
	out.X.Mul(&out.X, &cx)
	out.Y.Conjugate(&q.Y)
	out.Y.Mul(&out.Y, &cy)
	return out
}

// psiSquare applies ψ²: (x, y) → (x·γ₂₂, y·γ₂₃); the p²-Frobenius is
// trivial on F_p² so there is no conjugation.
func psiSquare(q *curve.G2Affine) curve.G2Affine {
	var out curve.G2Affine
	cx := ext.G2FrobeniusSquareCoeffX()
	cy := ext.G2FrobeniusSquareCoeffY()
	out.X.Mul(&q.X, &cx)
	out.Y.Mul(&q.Y, &cy)
	return out
}

// MillerLoop computes the optimal ate Miller function f_{6x+2,Q}(P)
// multiplied by the two BN end-step lines. Infinity inputs yield 1.
func MillerLoop(p *curve.G1Affine, q *curve.G2Affine) ext.E12 {
	var f ext.E12
	f.SetOne()
	if p.IsInfinity() || q.IsInfinity() {
		return f
	}

	t := *q
	negQ := *q
	negQ.Y.Neg(&negQ.Y)

	for i := 1; i < len(ateLoopNAF); i++ {
		f.Square(&f)
		doubleStep(&f, &t, p)
		switch ateLoopNAF[i] {
		case 1:
			addStep(&f, &t, q, p)
		case -1:
			addStep(&f, &t, &negQ, p)
		}
	}

	// BN end steps: add ψ(Q) and subtract ψ²(Q).
	q1 := psi(q)
	q2 := psiSquare(q)
	q2.Y.Neg(&q2.Y)
	addStep(&f, &t, &q1, p)
	addStep(&f, &t, &q2, p)
	return f
}

// FinalExponentiation raises the Miller-loop output to (p¹²-1)/r.
func FinalExponentiation(f *ext.E12) ext.E12 {
	var out ext.E12
	if f.IsZero() {
		out.SetZero()
		return out
	}
	// Easy part: f^(p⁶-1) then ^(p²+1).
	var conj, inv ext.E12
	conj.Conjugate(f)
	inv.Inverse(f)
	out.Mul(&conj, &inv) // f^(p⁶-1)
	var frob2 ext.E12
	frob2.FrobeniusSquare(&out)
	out.Mul(&frob2, &out) // ^(p²+1)

	// Hard part: exponentiation by (p⁴-p²+1)/r. The base now lies in the
	// cyclotomic subgroup, so Granger-Scott compressed squarings apply
	// (~2× faster than generic F_p¹² squaring).
	out.CyclotomicExp(&out, &hardExp)
	return out
}

// Pair computes the reduced optimal ate pairing e(p, q).
func Pair(p *curve.G1Affine, q *curve.G2Affine) ext.E12 {
	f := MillerLoop(p, q)
	return FinalExponentiation(&f)
}

// PairingCheck reports whether Π e(ps[i], qs[i]) == 1, sharing a single
// final exponentiation across all pairs (the Groth16 verification shape).
func PairingCheck(ps []*curve.G1Affine, qs []*curve.G2Affine) bool {
	if len(ps) != len(qs) {
		panic("pairing: mismatched pair counts")
	}
	var acc ext.E12
	acc.SetOne()
	for i := range ps {
		f := MillerLoop(ps[i], qs[i])
		acc.Mul(&acc, &f)
	}
	res := FinalExponentiation(&acc)
	return res.IsOne()
}

// PairingCheckMul reports whether Π e(ps[i], qs[i]) · k == 1. k must
// already be a reduced pairing value (a Pair output or a product/power
// of them); verifiers that cache e(α, β) use this to drop one Miller
// loop from every check.
func PairingCheckMul(ps []*curve.G1Affine, qs []*curve.G2Affine, k *ext.E12) bool {
	if len(ps) != len(qs) {
		panic("pairing: mismatched pair counts")
	}
	var acc ext.E12
	acc.SetOne()
	for i := range ps {
		f := MillerLoop(ps[i], qs[i])
		acc.Mul(&acc, &f)
	}
	res := FinalExponentiation(&acc)
	res.Mul(&res, k)
	return res.IsOne()
}
