package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zkrownn/internal/core"
	"zkrownn/internal/engine"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
	"zkrownn/internal/obs"
)

// Queue sentinels, surfaced by the HTTP layer as 429 and 503.
var (
	errQueueFull = errors.New("service: prove queue full")
	errShutdown  = errors.New("service: shutting down")
)

// job is one async ownership-proof request — a single claim or a whole
// bundle (one suspect per slot of a batched registration).
type job struct {
	id  string
	rec *modelRecord
	// suspects holds one model per claim slot (nil entry: registered
	// model); an empty slice proves the registered model in every slot.
	suspects  []*nn.Network
	submitted time.Time
	// reqID ties the job's log lines back to the HTTP request that
	// submitted it.
	reqID string
	// trace, when non-nil (submitted with trace=true), collects per-phase
	// spans through the engine and prover; the finished timeline is
	// served at GET /v1/jobs/{id}/trace.
	trace *obs.Trace

	mu          sync.Mutex
	status      string
	errMsg      string
	setupCached bool
	queuedFor   time.Duration
	solveTime   time.Duration
	proveTime   time.Duration
	claims      []bool
	proof       *groth16.Proof
	public      groth16.PublicInputs
}

func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		JobID:        j.id,
		ModelID:      j.rec.ID,
		Status:       j.status,
		Error:        j.errMsg,
		SetupCached:  j.setupCached,
		QueuedMS:     float64(j.queuedFor.Microseconds()) / 1e3,
		SolveMS:      float64(j.solveTime.Microseconds()) / 1e3,
		ProveMS:      float64(j.proveTime.Microseconds()) / 1e3,
		Claims:       j.claims,
		Proof:        j.proof,
		PublicInputs: j.public,
		HasTrace:     j.trace != nil,
	}
}

func (j *job) fail(err error) {
	j.mu.Lock()
	j.status = JobFailed
	j.errMsg = err.Error()
	j.mu.Unlock()
}

// jobQueue is the bounded async prove queue. Submissions land in a
// buffered channel (backpressure: a full channel rejects with
// errQueueFull → HTTP 429); a single dispatcher goroutine drains it in
// batches of up to batch jobs and fans each batch into
// Engine.ProveMany, so queued neighbors share the engine's worker pool
// and per-digest setup singleflight.
type jobQueue struct {
	srv       *Server
	batch     int
	retention int

	ch   chan *job
	quit chan struct{}
	done chan struct{}

	// closeMu serializes submissions against close: submit holds a read
	// lock across its closing-check *and* channel send, so once close
	// has taken the write lock and set closing, no job can slip into the
	// channel behind the dispatcher's final drain (which would strand it
	// in "queued" forever).
	closeMu sync.RWMutex
	closing bool

	mu       sync.RWMutex
	byID     map[string]*job
	finished []string // terminal job IDs, oldest first, for eviction
	seq      atomic.Uint64
}

func newJobQueue(srv *Server, depth, batch, retention int) *jobQueue {
	q := &jobQueue{
		srv:       srv,
		batch:     batch,
		retention: retention,
		ch:        make(chan *job, depth),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		byID:      make(map[string]*job),
	}
	go q.dispatch()
	return q
}

func (q *jobQueue) submit(rec *modelRecord, suspects []*nn.Network, reqID string, traced bool) (*job, error) {
	q.closeMu.RLock()
	defer q.closeMu.RUnlock()
	if q.closing {
		return nil, errShutdown
	}
	j := &job{
		id:        fmt.Sprintf("job-%d", q.seq.Add(1)),
		rec:       rec,
		suspects:  suspects,
		submitted: time.Now(),
		reqID:     reqID,
		status:    JobQueued,
	}
	if traced {
		j.trace = obs.NewTrace()
	}
	q.mu.Lock()
	q.byID[j.id] = j
	q.mu.Unlock()

	select {
	case q.ch <- j:
		return j, nil
	default:
		q.forget(j.id)
		return nil, errQueueFull
	}
}

func (q *jobQueue) forget(id string) {
	q.mu.Lock()
	delete(q.byID, id)
	q.mu.Unlock()
}

func (q *jobQueue) get(id string) (*job, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	j, ok := q.byID[id]
	return j, ok
}

// depth reports the number of jobs waiting in the channel (not the one
// batch currently proving).
func (q *jobQueue) depth() int { return len(q.ch) }

// retire records a job's terminal state and evicts the oldest finished
// jobs beyond the retention cap, bounding long-run memory: without it a
// busy server accumulates every proof (and job bookkeeping) forever.
func (q *jobQueue) retire(id string) {
	if q.retention <= 0 {
		return
	}
	q.mu.Lock()
	q.finished = append(q.finished, id)
	for len(q.finished) > q.retention {
		delete(q.byID, q.finished[0])
		q.finished = q.finished[1:]
	}
	q.mu.Unlock()
}

// close stops the dispatcher: the in-flight batch finishes, jobs still
// queued are failed with the shutdown sentinel, new submissions are
// rejected. Idempotent via sync.Once in Server.Close.
func (q *jobQueue) close() {
	q.closeMu.Lock()
	q.closing = true
	q.closeMu.Unlock()
	close(q.quit)
	<-q.done
}

func (q *jobQueue) dispatch() {
	defer close(q.done)
	for {
		var first *job
		select {
		case first = <-q.ch:
		case <-q.quit:
			// Fail whatever is still queued so pollers see a terminal
			// state instead of "queued" forever.
			for {
				select {
				case j := <-q.ch:
					j.fail(errShutdown)
					q.srv.jobsFailed.Add(1)
					mJobsFailed.Inc()
					q.retire(j.id)
				default:
					return
				}
			}
		}
		batch := []*job{first}
		for len(batch) < q.batch {
			select {
			case j := <-q.ch:
				batch = append(batch, j)
			default:
				goto run
			}
		}
	run:
		q.run(batch)
	}
}

// run binds each job's input assignment onto the circuit compiled at
// registration and proves the batch on the engine's worker pool — the
// solve-many half of the compile-once split: no job recompiles,
// suspect-model jobs only rewrite the weight slots of the assignment.
// Binding failures fail the individual job; the rest of the batch
// proceeds.
func (q *jobQueue) run(batch []*job) {
	if q.srv.testJobStall != nil {
		q.srv.testJobStall()
	}
	reqs := make([]engine.Request, 0, len(batch))
	live := make([]*job, 0, len(batch))
	for _, j := range batch {
		j.mu.Lock()
		j.status = JobRunning
		j.queuedFor = time.Since(j.submitted)
		queued := j.queuedFor
		j.mu.Unlock()
		mQueueWaitSeconds.Observe(queued.Seconds())

		asg, err := j.rec.assignmentFor(j.suspects)
		j.suspects = nil // the assignment owns the job's working set now
		if err != nil {
			j.fail(err)
			q.srv.jobsFailed.Add(1)
			mJobsFailed.Inc()
			q.srv.log.Warn("job bind failed", "job_id", j.id, "req_id", j.reqID, "err", err.Error())
			q.retire(j.id)
			continue
		}
		req := j.rec.art.RequestFor(asg, nil)
		req.Name = j.id
		if j.trace != nil {
			req.Ctx = obs.ContextWithTrace(context.Background(), j.trace)
		}
		reqs = append(reqs, req)
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	results := q.srv.eng.ProveMany(reqs)
	for i, res := range results {
		j := live[i]
		if res.Err != nil {
			j.fail(res.Err)
			q.srv.jobsFailed.Add(1)
			mJobsFailed.Inc()
			q.srv.log.Warn("job failed", "job_id", j.id, "req_id", j.reqID, "err", res.Err.Error())
			q.retire(j.id)
			continue
		}
		public := res.PublicInputs
		// Per-slot verdicts come from the trailing claim bits of the
		// instance; a decode failure is impossible for circuits the
		// service itself compiled, but guard anyway.
		claims, cerr := core.ClaimBits(public, j.rec.slotCount())
		if cerr != nil {
			j.fail(cerr)
			q.srv.jobsFailed.Add(1)
			mJobsFailed.Inc()
			q.retire(j.id)
			continue
		}
		j.mu.Lock()
		j.status = JobDone
		j.setupCached = res.CacheHit
		j.solveTime = res.SolveTime
		j.proveTime = res.ProveTime
		j.proof = res.Proof
		j.claims = claims
		// The instance — including computed outputs such as the claim
		// bits — comes from the solved witness, so the proof response is
		// self-contained.
		j.public = public
		queued := j.queuedFor
		j.mu.Unlock()
		q.srv.jobsCompleted.Add(1)
		mJobsCompleted.Inc()
		q.srv.log.Info("job done",
			"job_id", j.id, "req_id", j.reqID, "model_id", j.rec.ID,
			"queued_ms", float64(queued.Microseconds())/1e3,
			"solve_ms", float64(res.SolveTime.Microseconds())/1e3,
			"prove_ms", float64(res.ProveTime.Microseconds())/1e3,
			"setup_cached", res.CacheHit, "traced", j.trace != nil)
		q.retire(j.id)
	}
}
