package service

import (
	"encoding/json"

	"zkrownn/internal/bn254/ipp"
	"zkrownn/internal/groth16"
)

// Wire DTOs of the proof-service JSON API. The package-level client
// (zkrownn/client) mirrors these shapes for external consumers; the
// cross-package end-to-end test at the repository root keeps the two in
// sync.

// RegisterRequest registers one ownership circuit: the owner's model,
// their (private) watermark key, and the circuit parameters. The server
// quantizes the model, compiles Algorithm 1, runs (or reuses) trusted
// setup, and persists the verifying key under the circuit digest.
type RegisterRequest struct {
	// Name is an optional operator-facing label.
	Name string `json:"name,omitempty"`
	// Model is the nn.Network JSON encoding (zkrownn.SaveModel output).
	Model json.RawMessage `json:"model"`
	// Key is the watermark.Key JSON encoding.
	Key json.RawMessage `json:"key"`
	// FracBits selects the fixed-point format (default 16).
	FracBits int `json:"frac_bits,omitempty"`
	// MaxErrors is the BER tolerance θ·N (default 0: exact match).
	MaxErrors int `json:"max_errors,omitempty"`
	// Committed selects the committed-model circuit variant
	// (constant-size VK, weights bound by digest).
	Committed bool `json:"committed,omitempty"`
	// BundleSlots compiles a batched extraction circuit with this many
	// suspect-model slots sharing the watermark key (default 1). A
	// K-slot registration proves K ownership claims — against up to K
	// different same-architecture suspects — with ONE Groth16 proof per
	// bundle job. Mutually exclusive with Committed (committed circuits
	// bake the model into the constraints and cannot rebind slots).
	BundleSlots int `json:"bundle_slots,omitempty"`
}

// RegisterResponse reports the registered circuit and its verifying
// key envelope.
type RegisterResponse struct {
	// ModelID is the circuit-digest-keyed registry ID.
	ModelID string `json:"model_id"`
	Name    string `json:"name,omitempty"`
	// AlreadyRegistered is true when the digest was present; the existing
	// verifying key is returned and the prove material is refreshed.
	AlreadyRegistered bool `json:"already_registered,omitempty"`
	// SetupCached is true when trusted setup was skipped (engine cache).
	SetupCached  bool                  `json:"setup_cached"`
	Constraints  int                   `json:"constraints"`
	PublicInputs int                   `json:"public_inputs"`
	Committed    bool                  `json:"committed,omitempty"`
	BundleSlots  int                   `json:"bundle_slots,omitempty"`
	VK           *groth16.VerifyingKey `json:"vk"`
}

// ModelInfo describes one registry entry.
type ModelInfo struct {
	ModelID   string `json:"model_id"`
	Name      string `json:"name,omitempty"`
	Committed bool   `json:"committed,omitempty"`
	// BundleSlots is the number of suspect-model claim slots the
	// registered circuit carries (1 unless registered with
	// bundle_slots > 1).
	BundleSlots  int    `json:"bundle_slots,omitempty"`
	FracBits     int    `json:"frac_bits"`
	MaxErrors    int    `json:"max_errors"`
	Constraints  int    `json:"constraints"`
	PublicInputs int    `json:"public_inputs"`
	CreatedAt    string `json:"created_at"`
	// CanProve is false for registry entries restored from disk after a
	// restart: the verifying key persists, the private prove material
	// (model + watermark key) does not and needs re-registration.
	CanProve bool `json:"can_prove"`
}

// ModelResponse is one registry entry plus its verifying key.
type ModelResponse struct {
	ModelInfo
	VK *groth16.VerifyingKey `json:"vk"`
}

// ProveRequest submits an async ownership-proof job for a registered
// circuit.
type ProveRequest struct {
	// SuspectModel optionally substitutes the model to prove against
	// (nn.Network JSON). It must share the registered architecture: the
	// job rebinds the suspect's weights onto the circuit compiled at
	// registration (no recompilation) and fails on any shape mismatch.
	// Committed circuits bind the registered model itself (ρ = H(weights)
	// is baked into the constraints), so a committed suspect must be
	// registered in its own right instead. When absent, the registered
	// model is proved.
	SuspectModel json.RawMessage `json:"suspect_model,omitempty"`
	// SuspectModels is the bundle form for multi-slot registrations: one
	// entry per claim slot (length must equal the model's bundle_slots),
	// a null entry keeping the registered model in that slot. The job
	// produces ONE proof carrying a verdict per slot (JobStatus.Claims).
	// Mutually exclusive with SuspectModel.
	SuspectModels []json.RawMessage `json:"suspect_models,omitempty"`
	// Trace requests per-phase span recording for this job. The finished
	// job then serves a Chrome trace-event JSON timeline at
	// GET /v1/jobs/{id}/trace (loadable in chrome://tracing or Perfetto).
	Trace bool `json:"trace,omitempty"`
}

// ProveAccepted acknowledges a queued prove job.
type ProveAccepted struct {
	JobID      string `json:"job_id"`
	ModelID    string `json:"model_id"`
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
}

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus reports a prove job. Proof and PublicInputs are set once
// Status is "done".
type JobStatus struct {
	JobID   string `json:"job_id"`
	ModelID string `json:"model_id"`
	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	// SetupCached reports whether the job's trusted setup was served
	// from the engine's key cache (it should be, after registration).
	SetupCached bool    `json:"setup_cached,omitempty"`
	QueuedMS    float64 `json:"queued_ms,omitempty"`
	// SolveMS is the per-job witness generation time (solver-program
	// replay over the circuit compiled at registration — jobs never
	// recompile).
	SolveMS float64 `json:"solve_ms,omitempty"`
	ProveMS float64 `json:"prove_ms,omitempty"`
	// Claims holds the per-slot ownership verdicts decoded from the
	// instance (the trailing bundle_slots public inputs), in slot order.
	// A single-slot job reports one entry.
	Claims       []bool               `json:"claims,omitempty"`
	Proof        *groth16.Proof       `json:"proof,omitempty"`
	PublicInputs groth16.PublicInputs `json:"public_inputs,omitempty"`
	// HasTrace reports that the job was submitted with trace=true and its
	// timeline is available at GET /v1/jobs/{id}/trace once done.
	HasTrace bool `json:"has_trace,omitempty"`
}

// VerifyRequest checks one ownership proof against a registered
// circuit's verifying key.
type VerifyRequest struct {
	Proof        *groth16.Proof       `json:"proof"`
	PublicInputs groth16.PublicInputs `json:"public_inputs"`
}

// VerifyResponse reports the verdict. Valid means the Groth16 proof
// verified; Claim means every public ownership-claim bit is 1 — both
// must hold for the (whole) ownership claim to stand. Claims lists the
// per-slot verdicts for bundle registrations (a single-slot model
// reports one entry). BatchSize reports how many concurrent requests
// shared the pairing product that checked this proof (> 1 when
// micro-batching coalesced neighbors).
type VerifyResponse struct {
	Valid     bool   `json:"valid"`
	Claim     bool   `json:"claim"`
	Claims    []bool `json:"claims,omitempty"`
	BatchSize int    `json:"batch_size"`
	Error     string `json:"error,omitempty"`
}

// AggregateRequest folds N proofs for one registered model into a
// single aggregation artifact. All proofs must be under the same
// model's verifying key; public_inputs carries one instance per proof,
// in proof order.
type AggregateRequest struct {
	ModelID      string                 `json:"model_id"`
	Proofs       []*groth16.Proof       `json:"proofs"`
	PublicInputs []groth16.PublicInputs `json:"public_inputs"`
}

// AggregateResponse reports the fold. Valid means every member proof
// verified and the artifact was issued; Aggregate is the O(log N)
// proof-of-proofs and SRSKey the inner-pairing-product verifier key it
// must be checked against (groth16.VerifyAggregate). Claims holds one
// all-slots-claimed verdict per member proof, in order; Claim is their
// conjunction. BatchSize reports the micro-batch window the fold
// shared (≥ Count when concurrent plain verifications rode along).
type AggregateResponse struct {
	Valid     bool                    `json:"valid"`
	Claim     bool                    `json:"claim"`
	Claims    []bool                  `json:"claims,omitempty"`
	Count     int                     `json:"count"`
	BatchSize int                     `json:"batch_size"`
	Aggregate *groth16.AggregateProof `json:"aggregate,omitempty"`
	SRSKey    *ipp.VerifierKey        `json:"srs_key,omitempty"`
	Error     string                  `json:"error,omitempty"`
}

// EngineStatsWire mirrors engine.Stats with wall-clock totals in
// milliseconds.
type EngineStatsWire struct {
	Setups      uint64  `json:"setups"`
	MemHits     uint64  `json:"mem_hits"`
	DiskHits    uint64  `json:"disk_hits"`
	Solves      uint64  `json:"solves"`
	Proves      uint64  `json:"proves"`
	Verifies    uint64  `json:"verifies"`
	Aggregates  uint64  `json:"aggregates"`
	SetupMS     float64 `json:"setup_ms"`
	SolveMS     float64 `json:"solve_ms"`
	ProveMS     float64 `json:"prove_ms"`
	VerifyMS    float64 `json:"verify_ms"`
	AggregateMS float64 `json:"aggregate_ms"`
}

// ServiceStats surfaces queue and batcher counters.
type ServiceStats struct {
	Models int `json:"models"`
	// CircuitsCompiled counts Algorithm-1 circuit compilations. Circuits
	// compile once at registration and are pinned to the record; prove
	// jobs — including suspect-model jobs — only rebind inputs and
	// solve, so this stays flat however many jobs run.
	CircuitsCompiled uint64 `json:"circuits_compiled"`
	JobsSubmitted    uint64 `json:"jobs_submitted"`
	JobsRejected     uint64 `json:"jobs_rejected"`
	JobsCompleted    uint64 `json:"jobs_completed"`
	JobsFailed       uint64 `json:"jobs_failed"`
	QueueDepth       int    `json:"queue_depth"`
	QueueCapacity    int    `json:"queue_capacity"`
	// VerifyRequests counts verification requests accepted by the
	// batcher (well-formed, correct input length).
	VerifyRequests uint64 `json:"verify_requests"`
	// VerifyBatchCalls counts BatchVerify invocations that folded ≥ 2
	// requests into one pairing product.
	VerifyBatchCalls uint64 `json:"verify_batch_calls"`
	// VerifyBatchedRequests counts requests served by those calls.
	VerifyBatchedRequests uint64 `json:"verify_batched_requests"`
	// VerifyMaxBatch is the largest batch folded so far.
	VerifyMaxBatch uint64 `json:"verify_max_batch"`
	// VerifyFallbacks counts batches that failed as a whole and were
	// re-checked proof-by-proof to attribute the failure.
	VerifyFallbacks uint64 `json:"verify_fallbacks"`
	// AggregateRequests counts /v1/aggregate requests accepted.
	AggregateRequests uint64 `json:"aggregate_requests"`
	// AggregateArtifacts counts aggregation artifacts issued by windows.
	AggregateArtifacts uint64 `json:"aggregate_artifacts"`
	// AggregateFallbacks counts aggregate windows that failed as a whole
	// and fell back to per-proof attribution (no artifact issued).
	AggregateFallbacks uint64 `json:"aggregate_fallbacks"`
	// QueueWaitSeconds is the distribution of time jobs spent queued
	// before dispatch (process-wide histogram, mirrored on /metrics as
	// zkrownn_queue_wait_seconds).
	QueueWaitSeconds *HistogramWire `json:"queue_wait_seconds,omitempty"`
	// VerifyBatchSize is the distribution of requests folded into one
	// verify pairing product (mirrored as zkrownn_verify_batch_size).
	VerifyBatchSize *HistogramWire `json:"verify_batch_size,omitempty"`
}

// HistogramWire is the JSON shape of a metrics histogram: per-bucket
// (non-cumulative) counts by upper bound; observations above the last
// bound are implied by Count.
type HistogramWire struct {
	Count   uint64                `json:"count"`
	Sum     float64               `json:"sum"`
	Buckets []HistogramBucketWire `json:"buckets,omitempty"`
}

// HistogramBucketWire is one histogram bucket.
type HistogramBucketWire struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// StatsResponse is the /v1/stats payload.
type StatsResponse struct {
	Engine  EngineStatsWire `json:"engine"`
	Service ServiceStats    `json:"service"`
}

// ErrorResponse is the uniform error payload.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status string `json:"status"`
}
