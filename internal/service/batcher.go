package service

import (
	"errors"
	"sync"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/bn254/ipp"
	"zkrownn/internal/engine"
	"zkrownn/internal/groth16"
)

// verifyBatcher coalesces concurrent verification requests that target
// the same verifying key into one groth16.BatchVerify pairing product.
//
// The first request for a key becomes the window leader: it waits
// Options.VerifyWindow collecting followers, then flushes the whole
// batch in a single combined check (k+3 Miller loops instead of 4k
// pairings — the α-β folding from the batch verifier pays off exactly
// here). A failed batch is re-checked proof-by-proof so one bad proof
// 400s its own request, not its neighbors'.
//
// Aggregation requests ride the same windows: when any request in a
// window asked for an auditable artifact, the flush hands the whole
// window to Engine.AggregateMany instead of BatchVerify — every waiter
// still gets its verdict, and the aggregate waiters additionally
// receive the O(log N) artifact plus the SRS verifier key it must be
// checked against. Aggregate sets arrive pre-batched and may exceed the
// plain-window cap; they always land in one window so every member
// shares one artifact.
type verifyBatcher struct {
	srv    *Server
	window time.Duration
	max    int

	mu      sync.Mutex
	pending map[string]*pendingBatch // keyed by model ID
}

type pendingBatch struct {
	items []*verifyItem
}

type verifyItem struct {
	proof  *groth16.Proof
	public []fr.Element
	// aggregate marks a request that wants the window folded into an
	// aggregation artifact rather than just batch-verified.
	aggregate bool
	done      chan verifyOutcome
}

type verifyOutcome struct {
	err       error // nil: the Groth16 check passed
	batchSize int
	// agg and srsVK are set on aggregate-flagged items when the window
	// folded successfully.
	agg   *groth16.AggregateProof
	srsVK *ipp.VerifierKey
}

func newVerifyBatcher(srv *Server, window time.Duration, max int) *verifyBatcher {
	return &verifyBatcher{
		srv:     srv,
		window:  window,
		max:     max,
		pending: make(map[string]*pendingBatch),
	}
}

// verify runs one request through the batcher, blocking until its
// window flushes. The returned batch size reports how many requests
// shared the pairing product.
func (b *verifyBatcher) verify(rec *modelRecord, proof *groth16.Proof, public []fr.Element) (error, int) {
	item := &verifyItem{proof: proof, public: public, done: make(chan verifyOutcome, 1)}

	b.mu.Lock()
	if pb, ok := b.pending[rec.ID]; ok && len(pb.items) < b.max {
		// Follower: ride the open window.
		pb.items = append(pb.items, item)
		b.mu.Unlock()
		out := <-item.done
		return out.err, out.batchSize
	}
	// Leader: open a window (also taken when the open window is full —
	// the full window's leader still flushes it on schedule).
	pb := &pendingBatch{items: []*verifyItem{item}}
	b.pending[rec.ID] = pb
	b.mu.Unlock()

	b.lead(rec, pb)
	out := <-item.done
	return out.err, out.batchSize
}

// aggregateSet runs a pre-batched aggregation request through the
// batcher: all items join ONE window (over the plain cap if needed, so
// the set is never split across artifacts) and the flush folds the
// window into an aggregate. One outcome per proof, in order.
func (b *verifyBatcher) aggregateSet(rec *modelRecord, proofs []*groth16.Proof, publics [][]fr.Element) []verifyOutcome {
	items := make([]*verifyItem, len(proofs))
	for i := range proofs {
		items[i] = &verifyItem{
			proof:     proofs[i],
			public:    publics[i],
			aggregate: true,
			done:      make(chan verifyOutcome, 1),
		}
	}

	b.mu.Lock()
	pb, follower := b.pending[rec.ID]
	if follower {
		pb.items = append(pb.items, items...)
	} else {
		pb = &pendingBatch{items: append([]*verifyItem(nil), items...)}
		b.pending[rec.ID] = pb
	}
	b.mu.Unlock()

	if !follower {
		b.lead(rec, pb)
	}
	outs := make([]verifyOutcome, len(items))
	for i, it := range items {
		outs[i] = <-it.done
	}
	return outs
}

// lead is the window leader's lifecycle: wait out the batching window —
// or a server shutdown, whichever comes first — then flush. Without the
// shutdown arm a leader would sleep its full window during Close while
// the server has already started refusing work (and, with long windows,
// stall shutdown on a guaranteed-stale flush).
func (b *verifyBatcher) lead(rec *modelRecord, pb *pendingBatch) {
	t := time.NewTimer(b.window)
	select {
	case <-t.C:
	case <-b.srv.shutdown:
		t.Stop()
	}

	b.mu.Lock()
	if b.pending[rec.ID] == pb {
		delete(b.pending, rec.ID)
	}
	items := pb.items
	b.mu.Unlock()

	b.flush(rec, items)
}

func (b *verifyBatcher) flush(rec *modelRecord, items []*verifyItem) {
	n := len(items)
	mVerifyBatchSize.Observe(float64(n))
	wantAggregate := false
	for _, it := range items {
		if it.aggregate {
			wantAggregate = true
			break
		}
	}
	if n == 1 && !wantAggregate {
		err := b.srv.eng.Verify(rec.VK, items[0].proof, items[0].public)
		items[0].done <- verifyOutcome{err: err, batchSize: 1}
		return
	}

	proofs := make([]*groth16.Proof, n)
	publics := make([][]fr.Element, n)
	for i, it := range items {
		proofs[i] = it.proof
		publics[i] = it.public
	}

	if wantAggregate {
		agg, svk, err := b.srv.eng.AggregateMany(rec.VK, proofs, publics)
		if err == nil {
			b.srv.aggregateArtifacts.Add(1)
			maxUpdate(&b.srv.verifyMaxBatch, uint64(n))
			for _, it := range items {
				it.done <- verifyOutcome{batchSize: n, agg: agg, srsVK: svk}
			}
			return
		}
		if errors.Is(err, engine.ErrClosed) {
			b.shutdownAll(items, n, err)
			return
		}
		// The fold self-check rejected: at least one member is invalid.
		// Attribute per-request like the batch path; no artifact is
		// issued for a window that doesn't verify as a whole.
		b.srv.aggregateFallbacks.Add(1)
		b.fallback(rec, items, n)
		return
	}

	b.srv.verifyBatchCalls.Add(1)
	b.srv.verifyBatchedRequests.Add(uint64(n))
	maxUpdate(&b.srv.verifyMaxBatch, uint64(n))

	err := b.srv.eng.VerifyMany(rec.VK, proofs, publics)
	if err == nil {
		for _, it := range items {
			it.done <- verifyOutcome{batchSize: n}
		}
		return
	}
	if errors.Is(err, engine.ErrClosed) {
		// The engine is shutting down: re-running Verify per proof would
		// just collect n more ErrClosed (at n lifecycle acquisitions) and
		// misreport the shutdown as a verification fallback. Short-circuit
		// every waiter with the shutdown error instead.
		b.shutdownAll(items, n, err)
		return
	}
	// The combined product rejected: at least one member is invalid.
	// Attribute per-request with individual checks.
	b.srv.verifyFallbacks.Add(1)
	b.fallback(rec, items, n)
}

// fallback attributes a failed window per-request with individual
// checks.
func (b *verifyBatcher) fallback(rec *modelRecord, items []*verifyItem, n int) {
	for _, it := range items {
		it.done <- verifyOutcome{
			err:       b.srv.eng.Verify(rec.VK, it.proof, it.public),
			batchSize: n,
		}
	}
}

// shutdownAll fails every waiter with the engine's shutdown error.
func (b *verifyBatcher) shutdownAll(items []*verifyItem, n int, err error) {
	for _, it := range items {
		it.done <- verifyOutcome{err: err, batchSize: n}
	}
}
