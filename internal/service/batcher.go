package service

import (
	"sync"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/groth16"
)

// verifyBatcher coalesces concurrent verification requests that target
// the same verifying key into one groth16.BatchVerify pairing product.
//
// The first request for a key becomes the window leader: it waits
// Options.VerifyWindow collecting followers, then flushes the whole
// batch in a single combined check (k+3 Miller loops instead of 4k
// pairings — the α-β folding from the batch verifier pays off exactly
// here). A failed batch is re-checked proof-by-proof so one bad proof
// 400s its own request, not its neighbors'.
type verifyBatcher struct {
	srv    *Server
	window time.Duration
	max    int

	mu      sync.Mutex
	pending map[string]*pendingBatch // keyed by model ID
}

type pendingBatch struct {
	items []*verifyItem
}

type verifyItem struct {
	proof  *groth16.Proof
	public []fr.Element
	done   chan verifyOutcome
}

type verifyOutcome struct {
	err       error // nil: the Groth16 check passed
	batchSize int
}

func newVerifyBatcher(srv *Server, window time.Duration, max int) *verifyBatcher {
	return &verifyBatcher{
		srv:     srv,
		window:  window,
		max:     max,
		pending: make(map[string]*pendingBatch),
	}
}

// verify runs one request through the batcher, blocking until its
// window flushes. The returned batch size reports how many requests
// shared the pairing product.
func (b *verifyBatcher) verify(rec *modelRecord, proof *groth16.Proof, public []fr.Element) (error, int) {
	item := &verifyItem{proof: proof, public: public, done: make(chan verifyOutcome, 1)}

	b.mu.Lock()
	if pb, ok := b.pending[rec.ID]; ok && len(pb.items) < b.max {
		// Follower: ride the open window.
		pb.items = append(pb.items, item)
		b.mu.Unlock()
		out := <-item.done
		return out.err, out.batchSize
	}
	// Leader: open a window (also taken when the open window is full —
	// the full window's leader still flushes it on schedule).
	pb := &pendingBatch{items: []*verifyItem{item}}
	b.pending[rec.ID] = pb
	b.mu.Unlock()

	time.Sleep(b.window)

	b.mu.Lock()
	if b.pending[rec.ID] == pb {
		delete(b.pending, rec.ID)
	}
	items := pb.items
	b.mu.Unlock()

	b.flush(rec, items)
	out := <-item.done
	return out.err, out.batchSize
}

func (b *verifyBatcher) flush(rec *modelRecord, items []*verifyItem) {
	n := len(items)
	mVerifyBatchSize.Observe(float64(n))
	if n == 1 {
		err := b.srv.eng.Verify(rec.VK, items[0].proof, items[0].public)
		items[0].done <- verifyOutcome{err: err, batchSize: 1}
		return
	}

	proofs := make([]*groth16.Proof, n)
	publics := make([][]fr.Element, n)
	for i, it := range items {
		proofs[i] = it.proof
		publics[i] = it.public
	}
	b.srv.verifyBatchCalls.Add(1)
	b.srv.verifyBatchedRequests.Add(uint64(n))
	maxUpdate(&b.srv.verifyMaxBatch, uint64(n))

	err := b.srv.eng.VerifyMany(rec.VK, proofs, publics)
	if err == nil {
		for _, it := range items {
			it.done <- verifyOutcome{batchSize: n}
		}
		return
	}
	// The combined product rejected: at least one member is invalid (or
	// the engine is closing). Attribute per-request with individual
	// checks.
	b.srv.verifyFallbacks.Add(1)
	for _, it := range items {
		it.done <- verifyOutcome{
			err:       b.srv.eng.Verify(rec.VK, it.proof, it.public),
			batchSize: n,
		}
	}
}
