package service

import (
	"zkrownn/internal/obs"
)

// Service-level metrics on the process-wide obs registry (idempotent
// registration — servers in one process share the series). The queue
// depth gauge is registered per server in New, since it closes over the
// live queue.
var (
	mHTTPRequests = obs.Default().Counter("zkrownn_http_requests_total",
		"HTTP requests served (all routes).")
	mJobsSubmitted = obs.Default().Counter("zkrownn_jobs_submitted_total",
		"Prove jobs accepted onto the queue.")
	mJobsRejected = obs.Default().Counter("zkrownn_jobs_rejected_total",
		"Prove jobs rejected with 429 (queue full).")
	mJobsCompleted = obs.Default().Counter("zkrownn_jobs_completed_total",
		"Prove jobs finished successfully.")
	mJobsFailed = obs.Default().Counter("zkrownn_jobs_failed_total",
		"Prove jobs that failed (bind, solve, prove, or shutdown).")

	mQueueWaitSeconds = obs.Default().Histogram("zkrownn_queue_wait_seconds",
		"Time a prove job waited on the queue before dispatch.", obs.TimeBuckets())
	mVerifyBatchSize = obs.Default().Histogram("zkrownn_verify_batch_size",
		"Requests folded into one verify pairing product.",
		[]float64{1, 2, 4, 8, 16, 32, 64})

	mAggregateRequests = obs.Default().Counter("zkrownn_aggregate_requests_total",
		"Aggregation requests accepted (/v1/aggregate).")
	mAggregateRequestProofs = obs.Default().Histogram("zkrownn_aggregate_request_proofs",
		"Proofs carried by one aggregation request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
)

// histogramWire converts a registry snapshot into the /v1/stats shape.
func histogramWire(s obs.HistogramSnapshot) *HistogramWire {
	hw := &HistogramWire{Count: s.Count, Sum: s.Sum}
	for i, b := range s.Bounds {
		hw.Buckets = append(hw.Buckets, HistogramBucketWire{LE: b, Count: s.Counts[i]})
	}
	// The overflow bucket is implied by Count; expose the bounded ones.
	return hw
}
