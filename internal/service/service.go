// Package service is the ZKROWNN proof service: an HTTP JSON API that
// puts the prover engine to work as an online ownership-proof endpoint,
// the deployment shape the paper's dispute story implies (a model
// registry or auditor that third parties query over the wire).
//
// Three request families wrap engine.Engine:
//
//   - Registry: POST /v1/models registers an ownership circuit (model +
//     watermark key + parameters); the server compiles Algorithm 1, runs
//     — or reuses — trusted setup, and files the verifying key under the
//     circuit digest. Digest-keyed IDs make registration idempotent, and
//     VKs persist to the registry directory across restarts.
//
//   - Async proving: POST /v1/models/{id}/prove enqueues a job on a
//     bounded queue (a full queue answers 429) and returns a job ID;
//     GET /v1/jobs/{id} polls status; the finished job carries the proof
//     and public inputs, also available raw at GET /v1/jobs/{id}/proof.
//     A dispatcher drains the queue in batches through Engine.ProveMany.
//
//   - Batched verification: POST /v1/models/{id}/verify micro-batches
//     concurrent requests into single groth16.BatchVerify windows.
//
// GET /healthz and GET /v1/stats (engine + queue + batcher counters)
// round out the operational surface.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/core"
	"zkrownn/internal/engine"
	"zkrownn/internal/groth16"
	"zkrownn/internal/nn"
	"zkrownn/internal/obs"
	"zkrownn/internal/watermark"
)

// Options configures a Server. The zero value is usable: an in-memory
// registry, a fresh engine with default options, a 64-deep prove queue
// and a 2 ms verify window.
type Options struct {
	// Engine, when non-nil, is used (and NOT closed by Server.Close —
	// the caller owns its lifecycle). Otherwise the server builds its
	// own from EngineOptions and closes it on shutdown.
	Engine *engine.Engine
	// EngineOptions configures the server-owned engine (ignored when
	// Engine is set). Set EngineOptions.CacheDir to persist trusted-
	// setup keys across restarts.
	EngineOptions engine.Options
	// RegistryDir, when non-empty, persists verifying keys and model
	// metadata across restarts.
	RegistryDir string
	// QueueDepth bounds the async prove queue (default 64). Submissions
	// beyond it are rejected with 429.
	QueueDepth int
	// ProveBatch caps how many queued jobs one dispatcher pass fans
	// into Engine.ProveMany (default 8).
	ProveBatch int
	// JobRetention caps how many finished (done or failed) jobs remain
	// pollable; the oldest are evicted beyond it so a long-running
	// server's job table — proofs included — stays bounded (default
	// 1024; negative disables eviction).
	JobRetention int
	// VerifyWindow is how long the first verification request for a key
	// waits for concurrent neighbors before flushing the batch
	// (default 2ms).
	VerifyWindow time.Duration
	// VerifyBatch caps requests folded into one BatchVerify (default 32).
	VerifyBatch int
	// MaxBodyBytes bounds request bodies (default 64 MiB — model JSON
	// can be large).
	MaxBodyBytes int64
	// Logf, when set, receives one line per significant event.
	Logf func(format string, args ...any)
	// Logger, when set, receives structured request and job logs
	// (one record per HTTP request with request ID, route, status, and
	// latency; one per job state change with job and request IDs).
	// Unset, structured logs are discarded; Logf still works.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — off by
	// default because the profiling surface (heap dumps, symbol tables)
	// should not face untrusted networks.
	EnablePprof bool
}

// Server implements http.Handler for the proof-service API.
type Server struct {
	opts       Options
	eng        *engine.Engine
	ownsEngine bool
	reg        *registry
	queue      *jobQueue
	batcher    *verifyBatcher
	mux        *http.ServeMux
	log        *slog.Logger

	closed    atomic.Bool
	closeOnce sync.Once
	// shutdown is closed by Close; window leaders in the verify batcher
	// select on it so a pending batch flushes immediately instead of
	// sleeping out its window against a server that is already refusing
	// work.
	shutdown chan struct{}

	circuitsCompiled                        atomic.Uint64
	jobsSubmitted, jobsRejected             atomic.Uint64
	jobsCompleted, jobsFailed               atomic.Uint64
	verifyRequests                          atomic.Uint64
	verifyBatchCalls, verifyBatchedRequests atomic.Uint64
	verifyMaxBatch, verifyFallbacks         atomic.Uint64
	aggregateRequests, aggregateArtifacts   atomic.Uint64
	aggregateFallbacks                      atomic.Uint64

	// testJobStall, when set by tests, runs at the head of every
	// dispatcher batch — a hook to hold the queue busy deterministically.
	testJobStall func()
}

// New builds a Server and starts its job dispatcher.
func New(opts Options) (*Server, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.ProveBatch <= 0 {
		opts.ProveBatch = 8
	}
	if opts.JobRetention == 0 {
		opts.JobRetention = 1024
	}
	if opts.VerifyWindow <= 0 {
		opts.VerifyWindow = 2 * time.Millisecond
	}
	if opts.VerifyBatch <= 0 {
		opts.VerifyBatch = 32
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	reg, err := newRegistry(opts.RegistryDir, opts.Logf)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, reg: reg, shutdown: make(chan struct{})}
	s.log = opts.Logger
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if opts.Engine != nil {
		s.eng = opts.Engine
	} else {
		s.eng = engine.New(opts.EngineOptions)
		s.ownsEngine = true
	}
	s.queue = newJobQueue(s, opts.QueueDepth, opts.ProveBatch, opts.JobRetention)
	s.batcher = newVerifyBatcher(s, opts.VerifyWindow, opts.VerifyBatch)

	// The queue-depth gauge is read at scrape time; re-registration
	// replaces the closure, so the latest server in a process wins (the
	// registry is process-wide, servers in tests come and go).
	obs.Default().GaugeFunc("zkrownn_queue_depth",
		"Prove jobs waiting on the queue (excludes the batch being proved).",
		func() float64 { return float64(s.queue.depth()) })

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", obs.Handler(obs.Default()))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/models", s.handleRegister)
	mux.HandleFunc("GET /v1/models", s.handleListModels)
	mux.HandleFunc("GET /v1/models/{id}", s.handleGetModel)
	mux.HandleFunc("POST /v1/models/{id}/prove", s.handleProve)
	mux.HandleFunc("POST /v1/models/{id}/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/aggregate", s.handleAggregate)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/proof", s.handleJobProof)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	if opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	if n := reg.len(); n > 0 {
		s.logf("service: restored %d model(s) from %s", n, opts.RegistryDir)
	}
	return s, nil
}

// Engine exposes the backing prover engine (for embedders that want to
// share it or inspect raw stats).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Close shuts the service down gracefully: new requests are answered
// 503, the job dispatcher finishes its in-flight batch and fails
// whatever is still queued, and — when the server owns its engine — the
// engine drains in-flight provers and flushes its disk cache writes
// before rejecting further work with engine.ErrClosed. Idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.shutdown)
		s.queue.close()
		if s.ownsEngine {
			err = s.eng.Close()
		}
	})
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// reqIDKey carries the per-request ID through handler contexts.
type reqIDKey struct{}

// requestID returns the ID minted for this request by ServeHTTP.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler. Every request is tagged with a
// request ID (propagated to job logs through submission) and logged
// structurally with route, status, and latency.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mHTTPRequests.Inc()
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	reqID := obs.NewID()
	r = r.WithContext(context.WithValue(r.Context(), reqIDKey{}, reqID))
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	s.log.Info("http",
		"req_id", reqID, "method", r.Method, "path", r.URL.Path,
		"status", rec.status,
		"dur_ms", float64(time.Since(start).Microseconds())/1e3)
}

// --- handlers ---

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	es := s.eng.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Engine: EngineStatsWire{
			Setups:      es.Setups,
			MemHits:     es.MemHits,
			DiskHits:    es.DiskHits,
			Solves:      es.Solves,
			Proves:      es.Proves,
			Verifies:    es.Verifies,
			Aggregates:  es.Aggregates,
			SetupMS:     float64(es.SetupTime.Microseconds()) / 1e3,
			SolveMS:     float64(es.SolveTime.Microseconds()) / 1e3,
			ProveMS:     float64(es.ProveTime.Microseconds()) / 1e3,
			VerifyMS:    float64(es.VerifyTime.Microseconds()) / 1e3,
			AggregateMS: float64(es.AggregateTime.Microseconds()) / 1e3,
		},
		Service: ServiceStats{
			Models:                s.reg.len(),
			CircuitsCompiled:      s.circuitsCompiled.Load(),
			JobsSubmitted:         s.jobsSubmitted.Load(),
			JobsRejected:          s.jobsRejected.Load(),
			JobsCompleted:         s.jobsCompleted.Load(),
			JobsFailed:            s.jobsFailed.Load(),
			QueueDepth:            s.queue.depth(),
			QueueCapacity:         s.opts.QueueDepth,
			VerifyRequests:        s.verifyRequests.Load(),
			VerifyBatchCalls:      s.verifyBatchCalls.Load(),
			VerifyBatchedRequests: s.verifyBatchedRequests.Load(),
			VerifyMaxBatch:        s.verifyMaxBatch.Load(),
			VerifyFallbacks:       s.verifyFallbacks.Load(),
			AggregateRequests:     s.aggregateRequests.Load(),
			AggregateArtifacts:    s.aggregateArtifacts.Load(),
			AggregateFallbacks:    s.aggregateFallbacks.Load(),
			QueueWaitSeconds:      histogramWire(mQueueWaitSeconds.Snapshot()),
			VerifyBatchSize:       histogramWire(mVerifyBatchSize.Snapshot()),
		},
	})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed register request: "+err.Error())
		return
	}
	if len(req.Model) == 0 || len(req.Key) == 0 {
		writeError(w, http.StatusBadRequest, "register request needs both model and key")
		return
	}
	net, err := nn.Load(bytes.NewReader(req.Model))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad model: "+err.Error())
		return
	}
	var key watermark.Key
	if err := json.Unmarshal(req.Key, &key); err != nil {
		writeError(w, http.StatusBadRequest, "bad watermark key: "+err.Error())
		return
	}
	if err := key.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.FracBits <= 0 {
		req.FracBits = 16
	}
	if req.MaxErrors < 0 {
		writeError(w, http.StatusBadRequest, "max_errors must be >= 0")
		return
	}
	if req.BundleSlots == 0 {
		req.BundleSlots = 1
	}
	if req.BundleSlots < 1 || req.BundleSlots > maxBundleSlots {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bundle_slots must be in [1, %d], got %d", maxBundleSlots, req.BundleSlots))
		return
	}
	if req.Committed && req.BundleSlots > 1 {
		writeError(w, http.StatusBadRequest,
			"committed circuits bake the model into the constraints and cannot carry suspect bundle slots; use the non-committed variant for bundles")
		return
	}

	rec := &modelRecord{
		Name:       req.Name,
		Committed:  req.Committed,
		Slots:      req.BundleSlots,
		FracBits:   req.FracBits,
		MaxErrors:  req.MaxErrors,
		LayerIndex: key.LayerIndex,
		CreatedAt:  time.Now(),
		model:      net,
		key:        &key,
	}
	// frac_bits is remote input: an out-of-range value would silently
	// produce a degenerate quantization (2^64 scale wraps to 0), so run
	// the format validator the local pipelines get via their flags.
	if err := rec.params().Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := nn.Quantize(net, rec.params())
	if err != nil {
		writeError(w, http.StatusBadRequest, "quantization failed: "+err.Error())
		return
	}
	rec.quant = q
	if rec.Committed {
		// Pin the Fiat-Shamir digest binding committed proofs to this
		// model; it persists with the metadata so the binding check
		// survives restarts that drop the model itself.
		_, digest, derr := core.ModelDigest(q, rec.LayerIndex)
		if derr != nil {
			writeError(w, http.StatusBadRequest, "model digest failed: "+derr.Error())
			return
		}
		db := digest.Bytes()
		rec.CommittedDigest = fmt.Sprintf("%x", db[:])
	}
	// Compile once: the circuit is pinned to the record and every prove
	// job — registered model or same-architecture suspect — only binds
	// inputs and replays the solver program.
	art, err := rec.compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, "circuit compilation failed: "+err.Error())
		return
	}
	s.circuitsCompiled.Add(1)
	// Prove jobs re-solve witnesses from the assignment; the build-time
	// eager witness (NbWires × 32 B per model, for the life of the
	// record) is dead weight here.
	art.Witness = nil
	rec.art = art
	rec.ID = art.System.DigestHex()
	rec.Constraints = art.System.NbConstraints()
	rec.PublicInputs = art.System.NbPublic - 1

	// Eager setup: registration pays the trusted-setup cost once so
	// prove jobs hit the key cache. Same-digest re-registration reuses
	// the cached keys and therefore returns the identical VK.
	keys, cached, err := s.eng.Keys(art.System, nil)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, engine.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "trusted setup failed: "+err.Error())
		return
	}
	rec.VK = keys.VK

	existed, err := s.reg.put(rec)
	if err != nil {
		// The record is registered in memory; persistence is best-effort
		// but surfaced, matching the engine's PersistErr contract.
		s.logf("service: %v", err)
	}
	s.logf("service: registered model %s (%d constraints, cached=%v, already=%v)",
		rec.ID[:12], rec.Constraints, cached, existed)
	writeJSON(w, http.StatusOK, RegisterResponse{
		ModelID:           rec.ID,
		Name:              rec.Name,
		AlreadyRegistered: existed,
		SetupCached:       cached,
		Constraints:       rec.Constraints,
		PublicInputs:      rec.PublicInputs,
		Committed:         rec.Committed,
		BundleSlots:       rec.slotCount(),
		VK:                rec.VK,
	})
}

func (s *Server) handleListModels(w http.ResponseWriter, _ *http.Request) {
	recs := s.reg.list()
	infos := make([]ModelInfo, len(recs))
	for i, rec := range recs {
		infos[i] = rec.info()
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model")
		return
	}
	writeJSON(w, http.StatusOK, ModelResponse{ModelInfo: rec.info(), VK: rec.VK})
}

func (s *Server) handleProve(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model")
		return
	}
	if !rec.canProve() {
		writeError(w, http.StatusConflict,
			"model has no prove material (registered before a restart?); re-register it")
		return
	}
	var req ProveRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "malformed prove request: "+err.Error())
			return
		}
	}
	if len(req.SuspectModel) > 0 && len(req.SuspectModels) > 0 {
		writeError(w, http.StatusBadRequest, "use either suspect_model or suspect_models, not both")
		return
	}
	// Normalize the legacy single-suspect field into a 1-entry bundle.
	raws := req.SuspectModels
	if len(raws) == 0 && len(req.SuspectModel) > 0 {
		raws = []json.RawMessage{req.SuspectModel}
	}
	var suspects []*nn.Network
	if len(raws) > 0 {
		if len(raws) != rec.slotCount() {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bundle carries %d suspect models, model has %d claim slots", len(raws), rec.slotCount()))
			return
		}
		suspects = make([]*nn.Network, len(raws))
		any := false
		for i, raw := range raws {
			if len(raw) == 0 || string(raw) == "null" {
				continue // keep the registered model in this slot
			}
			net, err := nn.Load(bytes.NewReader(raw))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("bad suspect model in slot %d: %v", i, err))
				return
			}
			suspects[i] = net
			any = true
		}
		if !any {
			suspects = nil // all-null bundle == prove the registered model
		}
	}

	j, err := s.queue.submit(rec, suspects, requestID(r.Context()), req.Trace)
	switch {
	case errors.Is(err, errQueueFull):
		s.jobsRejected.Add(1)
		mJobsRejected.Inc()
		writeError(w, http.StatusTooManyRequests, "prove queue full, retry later")
		return
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.jobsSubmitted.Add(1)
	mJobsSubmitted.Inc()
	s.log.Info("job submitted",
		"req_id", requestID(r.Context()), "job_id", j.id, "model_id", rec.ID,
		"traced", req.Trace, "queue_depth", s.queue.depth())
	writeJSON(w, http.StatusAccepted, ProveAccepted{
		JobID:      j.id,
		ModelID:    rec.ID,
		Status:     JobQueued,
		QueueDepth: s.queue.depth(),
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobProof streams the finished proof in the compact binary
// encoding — the 128-byte artifact a dispute transcript files.
func (s *Server) handleJobProof(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	snap := j.snapshot()
	switch snap.Status {
	case JobDone:
	case JobFailed:
		writeError(w, http.StatusConflict, "job failed: "+snap.Error)
		return
	default:
		writeError(w, http.StatusConflict, "job not finished (status "+snap.Status+")")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := snap.Proof.WriteTo(w); err != nil {
		s.logf("service: proof stream: %v", err)
	}
}

// handleJobTrace serves a finished job's per-phase timeline in Chrome
// trace-event JSON — loadable directly in chrome://tracing or Perfetto.
// Jobs record one only when submitted with trace=true.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if j.trace == nil {
		writeError(w, http.StatusNotFound, "job has no trace (submit with \"trace\": true)")
		return
	}
	snap := j.snapshot()
	if snap.Status != JobDone && snap.Status != JobFailed {
		writeError(w, http.StatusConflict, "job not finished (status "+snap.Status+")")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := j.trace.WriteChrome(w); err != nil {
		s.logf("service: trace stream: %v", err)
	}
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model")
		return
	}
	var req VerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		// Malformed or tampered material (a proof point off the curve or
		// outside its subgroup fails here, in the envelope decoder) is a
		// client error, not a server one.
		writeError(w, http.StatusBadRequest, "malformed verify request: "+err.Error())
		return
	}
	if req.Proof == nil {
		writeError(w, http.StatusBadRequest, "verify request needs a proof")
		return
	}
	if got, want := len(req.PublicInputs), len(rec.VK.IC)-1; got != want {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("expected %d public inputs, got %d", want, got))
		return
	}
	s.verifyRequests.Add(1)

	err, batchSize := s.batcher.verify(rec, req.Proof, req.PublicInputs)
	if errors.Is(err, engine.ErrClosed) {
		writeError(w, http.StatusServiceUnavailable, "service shutting down")
		return
	}
	resp := VerifyResponse{BatchSize: batchSize}
	if err != nil {
		resp.Error = err.Error()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	resp.Valid = true
	if claims, cerr := core.ClaimBits(req.PublicInputs, rec.slotCount()); cerr == nil {
		resp.Claims = claims
		resp.Claim = true
		for _, c := range claims {
			resp.Claim = resp.Claim && c
		}
	}
	if rec.Committed {
		// Committed-model proofs additionally bind the registered model
		// through the Fiat-Shamir digest in the instance (public input
		// 0). The expected digest was pinned at registration and
		// persists with the record, so this check also holds on records
		// restored after a restart. A proof for a different model — even
		// one sharing the architecture — fails here by construction.
		if derr := checkCommittedDigest(rec, req.PublicInputs); derr != nil {
			resp.Valid = false
			resp.Claim = false
			resp.Claims = nil
			resp.Error = derr.Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAggregate folds N proofs for one registered model into a
// single O(log N) aggregation artifact (SnarkPack over the batch
// verifier's windows): the auditable registry object for "these N
// ownership claims all verify". The request rides the verify
// micro-batcher, so concurrent plain verifications of the same model
// share the fold; the response carries the artifact plus the SRS
// verifier key third parties must check it against.
func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	var req AggregateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed aggregate request: "+err.Error())
		return
	}
	rec, ok := s.reg.get(req.ModelID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown model")
		return
	}
	if len(req.Proofs) == 0 {
		writeError(w, http.StatusBadRequest, "aggregate request needs at least one proof")
		return
	}
	if len(req.Proofs) != len(req.PublicInputs) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d proofs but %d public-input sets", len(req.Proofs), len(req.PublicInputs)))
		return
	}
	want := len(rec.VK.IC) - 1
	for i, pub := range req.PublicInputs {
		if req.Proofs[i] == nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("proof %d is null", i))
			return
		}
		if len(pub) != want {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("proof %d: expected %d public inputs, got %d", i, want, len(pub)))
			return
		}
	}
	s.verifyRequests.Add(uint64(len(req.Proofs)))
	s.aggregateRequests.Add(1)
	mAggregateRequests.Inc()
	mAggregateRequestProofs.Observe(float64(len(req.Proofs)))

	if rec.Committed {
		// The digest binding is an instance property; check it before
		// spending pairings on the fold.
		for i, pub := range req.PublicInputs {
			if derr := checkCommittedDigest(rec, pub); derr != nil {
				writeJSON(w, http.StatusOK, AggregateResponse{
					Count: len(req.Proofs),
					Error: fmt.Sprintf("proof %d: %s", i, derr.Error()),
				})
				return
			}
		}
	}

	publics := make([][]fr.Element, len(req.PublicInputs))
	for i, pub := range req.PublicInputs {
		publics[i] = pub
	}
	outs := s.batcher.aggregateSet(rec, req.Proofs, publics)

	resp := AggregateResponse{Count: len(req.Proofs)}
	for i, out := range outs {
		if errors.Is(out.err, engine.ErrClosed) {
			writeError(w, http.StatusServiceUnavailable, "service shutting down")
			return
		}
		resp.BatchSize = out.batchSize
		if out.err != nil && resp.Error == "" {
			resp.Error = fmt.Sprintf("proof %d: %s", i, out.err.Error())
		}
		if out.agg != nil && resp.Aggregate == nil {
			resp.Aggregate = out.agg
			resp.SRSKey = out.srsVK
		}
	}
	if resp.Error == "" && resp.Aggregate == nil {
		// Every member verified individually but the shared window failed
		// as a whole (an invalid neighbor poisoned the fold): no artifact
		// was issued, though these proofs are individually valid.
		resp.Error = "window aggregation failed (invalid neighboring proof); retry for a fresh window"
	}
	if resp.Aggregate != nil {
		resp.Valid = true
		resp.Claim = true
		for _, pub := range req.PublicInputs {
			if claims, cerr := core.ClaimBits(pub, rec.slotCount()); cerr == nil {
				all := true
				for _, c := range claims {
					all = all && c
				}
				resp.Claims = append(resp.Claims, all)
				resp.Claim = resp.Claim && all
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func checkCommittedDigest(rec *modelRecord, public groth16.PublicInputs) error {
	if rec.CommittedDigest == "" {
		return errors.New("registered record carries no committed digest; re-register the model")
	}
	if len(public) == 0 {
		return errors.New("committed proof has no public inputs")
	}
	db := public[0].Bytes()
	if fmt.Sprintf("%x", db[:]) != rec.CommittedDigest {
		return errors.New("model digest mismatch: proof is not about the registered model")
	}
	return nil
}

// maxBundleSlots bounds bundle_slots at registration: a K-slot circuit
// is ~K times the single circuit, so an unbounded remote K would let one
// request commission an arbitrarily large compile + trusted setup.
const maxBundleSlots = 32

// --- helpers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// maxUpdate lifts v into the atomic maximum.
func maxUpdate(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}
