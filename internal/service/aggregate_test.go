package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"zkrownn/internal/bn254/fr"
	"zkrownn/internal/groth16"
)

// proveOne registers the fixture model and runs a single prove job to
// completion, returning the registration and the finished job (proof +
// public inputs).
func proveOne(t *testing.T, baseURL string) (RegisterResponse, JobStatus) {
	t.Helper()
	reg := register(t, baseURL, 4)
	resp, data := postJSON(t, baseURL+"/v1/models/"+reg.ModelID+"/prove", ProveRequest{})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("prove submit: status %d: %s", resp.StatusCode, data)
	}
	var acc ProveAccepted
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	js := waitJob(t, baseURL, acc.JobID)
	if js.Status != JobDone {
		t.Fatalf("prove job failed: %s", js.Error)
	}
	return reg, js
}

func TestAggregateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{VerifyWindow: time.Millisecond})
	reg, js := proveOne(t, ts.URL)

	const n = 3
	proofs := make([]*groth16.Proof, n)
	pubs := make([]groth16.PublicInputs, n)
	for i := range proofs {
		proofs[i] = js.Proof
		pubs[i] = js.PublicInputs
	}

	resp, data := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		ModelID: reg.ModelID, Proofs: proofs, PublicInputs: pubs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate: status %d: %s", resp.StatusCode, data)
	}
	var ar AggregateResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Valid || !ar.Claim || ar.Error != "" {
		t.Fatalf("aggregate rejected honest set: %+v", ar)
	}
	if ar.Count != n || ar.BatchSize < n || len(ar.Claims) != n {
		t.Fatalf("aggregate accounting wrong: count=%d batch=%d claims=%d",
			ar.Count, ar.BatchSize, len(ar.Claims))
	}
	if ar.Aggregate == nil || ar.SRSKey == nil {
		t.Fatal("no artifact or SRS key on a valid aggregation")
	}

	// Client-side audit: the returned artifact must verify against the
	// registered VK and the returned SRS key alone — no trust in the
	// service's verdict required.
	publics := make([][]fr.Element, n)
	for i := range pubs {
		publics[i] = pubs[i]
	}
	if err := groth16.VerifyAggregate(ar.SRSKey, reg.VK, ar.Aggregate, publics); err != nil {
		t.Fatalf("returned artifact does not verify client-side: %v", err)
	}

	// The artifact survives a JSON round trip (what a client stores).
	blob, err := json.Marshal(ar.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	var back groth16.AggregateProof
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := groth16.VerifyAggregate(ar.SRSKey, reg.VK, &back, publics); err != nil {
		t.Fatalf("re-decoded artifact does not verify: %v", err)
	}

	// One tampered member poisons the window: no artifact, failure
	// attributed to the bad index, honest members individually valid.
	bad := *js.Proof
	bad.Ar, bad.Krs = bad.Krs, bad.Ar
	resp, data = postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		ModelID:      reg.ModelID,
		Proofs:       []*groth16.Proof{js.Proof, &bad, js.Proof},
		PublicInputs: pubs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate(tampered): status %d: %s", resp.StatusCode, data)
	}
	var ar2 AggregateResponse
	if err := json.Unmarshal(data, &ar2); err != nil {
		t.Fatal(err)
	}
	if ar2.Valid || ar2.Aggregate != nil {
		t.Fatalf("tampered set produced an artifact: %+v", ar2)
	}
	if !strings.Contains(ar2.Error, "proof 1") {
		t.Fatalf("failure not attributed to the tampered member: %q", ar2.Error)
	}

	// Malformed requests.
	if resp, _ := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		ModelID: "nope", Proofs: proofs, PublicInputs: pubs,
	}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		ModelID: reg.ModelID,
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty set: status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/aggregate", AggregateRequest{
		ModelID: reg.ModelID, Proofs: proofs, PublicInputs: pubs[:1],
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("length mismatch: status %d", resp.StatusCode)
	}

	// Stats corroborate: two accepted requests, one artifact, one
	// per-proof fallback; the engine folded exactly one window.
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Service.AggregateRequests != 2 ||
		stats.Service.AggregateArtifacts != 1 ||
		stats.Service.AggregateFallbacks != 1 {
		t.Fatalf("aggregate stats wrong: %+v", stats.Service)
	}
	if stats.Engine.Aggregates != 1 || stats.Engine.AggregateMS <= 0 {
		t.Fatalf("engine aggregate stats wrong: %+v", stats.Engine)
	}

	// The obs registry exports the aggregate series on /metrics.
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"zkrownn_aggregate_requests_total",
		"zkrownn_aggregate_request_proofs",
		"zkrownn_aggregates_total",
		"zkrownn_aggregate_seconds",
	} {
		if !bytes.Contains(body, []byte(series)) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}

// TestBatcherShutdownRegression pins the fix for the window leader
// sleeping out its full batching window during shutdown: with a long
// VerifyWindow, a verify request in flight when the server closes must
// return promptly (the leader selects on the shutdown channel), not
// after the window expires.
func TestBatcherShutdownRegression(t *testing.T) {
	srv, ts := newTestServer(t, Options{VerifyWindow: 30 * time.Second})
	reg, js := proveOne(t, ts.URL)

	body, err := json.Marshal(VerifyRequest{Proof: js.Proof, PublicInputs: js.PublicInputs})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/models/"+reg.ModelID+"/verify",
			"application/json", bytes.NewReader(body))
		if err != nil {
			done <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode}
	}()

	// Let the request become the window leader before closing.
	time.Sleep(300 * time.Millisecond)
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("verify request errored: %v", res.err)
		}
		// The leader races engine shutdown inside Close: the flush either
		// completes the check (200) or observes the closed engine (503).
		// Either way it must not have slept out the 30s window.
		if res.status != http.StatusOK && res.status != http.StatusServiceUnavailable {
			t.Fatalf("verify status %d during shutdown", res.status)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("verify request still blocked 10s after Close — leader slept through shutdown")
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("shutdown flush took %v", waited)
	}
}
